#include "analysis/known_bounds.hpp"

#include <cassert>
#include <cmath>

#include "dist/tail_bounds.hpp"

namespace rumor::analysis {

namespace {

PredictionWindow window(double predicted, double rel_low, double rel_high, std::string law) {
  PredictionWindow w;
  w.predicted = predicted;
  w.low = predicted * rel_low;
  w.high = predicted * rel_high;
  w.law = std::move(law);
  return w;
}

}  // namespace

PredictionWindow star_sync_pushpull([[maybe_unused]] std::uint32_t n) {
  assert(n >= 3);
  PredictionWindow w;
  w.predicted = 2.0;
  w.low = 1.0;
  w.high = 2.0;
  w.law = "<= 2 rounds deterministically (leaf source)";
  return w;
}

PredictionWindow star_async_pushpull_mean(std::uint32_t n) {
  assert(n >= 3);
  // Completion requires every non-hub node to be touched by its own edge
  // clock; the per-leaf pull/push clocks combine to ~unit rate, so the mean
  // sits near H(n-1) plus the O(1) hub phase. Empirical constant is within
  // [0.8, 1.8] x H(n-1) across the tested range.
  const double h = dist::harmonic(n - 1);
  return window(h, 0.7, 2.0, "~ H(n-1) (max of unit-rate exponentials)");
}

PredictionWindow star_sync_push_mean(std::uint32_t n) {
  assert(n >= 3);
  // Hub pushes to a uniform leaf each round: coupon collector on n-1.
  const double cc = dist::coupon_collector_mean(n - 1);
  return window(cc, 0.8, 1.25, "(n-1) H(n-1) (coupon collector, hub source)");
}

PredictionWindow complete_sync_pushpull_mean(std::uint32_t n) {
  assert(n >= 4);
  // Growth: |I| multiplies by ~3 per round while small (push doubles, pull
  // adds again); finish: pull closes the last gap in O(log log n). Leading
  // term log3 n; slack covers the additive lower-order phases.
  const double log3 = std::log(static_cast<double>(n)) / std::log(3.0);
  return window(log3, 0.9, 2.5, "log3(n) + O(log log n)");
}

PredictionWindow complete_sync_push_mean(std::uint32_t n) {
  assert(n >= 4);
  const double nn = static_cast<double>(n);
  const double predicted = std::log2(nn) + std::log(nn);
  return window(predicted, 0.8, 1.3, "log2(n) + ln(n) + o(log n)");
}

PredictionWindow path_sync_pushpull_mean(std::uint32_t n) {
  assert(n >= 3);
  // Frontier advance per round: P[push right] + P[pull from left] -
  // P[both] = 1/2 + 1/2 - 1/4 = 3/4; advances are +1 at most.
  const double predicted = 4.0 * static_cast<double>(n - 1) / 3.0;
  return window(predicted, 0.85, 1.2, "4(n-1)/3 (frontier advances w.p. 3/4)");
}

PredictionWindow bundle_chain_sync_rounds(std::uint32_t len, std::uint32_t width) {
  assert(len >= 1);
  // Distance from relay 0 to relay len is 2*len; each bundle relays in
  // exactly 2 rounds once its near relay is informed (w.h.p. for width >>
  // log: half the helpers pull in one round, one pushes on). The +1 offset
  // comes from the first round informing helpers only.
  PredictionWindow w;
  w.predicted = 2.0 * len + 1.0;
  // For narrow bundles a relay can occasionally take an extra round.
  const double slack = width >= 16 ? 2.0 : 0.25 * len;
  w.low = 2.0 * len;
  w.high = w.predicted + slack;
  w.law = "2*len + 1 (distance-bound + 2-round bundle relay)";
  return w;
}

PredictionWindow conductance_bound(std::uint32_t n, double phi) {
  assert(phi > 0.0);
  PredictionWindow w;
  w.predicted = std::log(static_cast<double>(n)) / phi;
  w.low = 0.0;  // it is an upper bound, not a two-sided estimate
  w.high = 10.0 * w.predicted;
  w.law = "T_hp <= c * log(n)/phi  [6, 17]";
  return w;
}

}  // namespace rumor::analysis
