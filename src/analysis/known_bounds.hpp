// rumor/analysis: closed-form spreading-time predictions from the
// literature, used as oracles by tests and reported alongside measurements
// by the benches.
//
// Every prediction is an asymptotic law with explicit leading constant
// where one is known; `PredictionWindow` wraps it with multiplicative slack
// so Monte-Carlo estimates can be checked against theory mechanically:
//
//   star (sync pp, leaf source)      exactly <= 2 rounds          [paper §1]
//   star (async pp)                  ~ ln n (+ lower-order)       [paper §1]
//   star (sync push, hub source)     coupon collector (n-1)H(n-1) [paper §1]
//   complete graph (sync pp)         log3 n + O(log log n)        [22]
//   complete graph (sync push)       log2 n + ln n + o(log n)     [13, 22]
//   path/cycle                       Theta(n), rate in [2/3, 1] hops/round
//   hypercube, ER, random regular    Theta(log n)                 [13, 15]
//   conductance                      O(log n / phi)               [6, 17]
//   bundle chain (sync pp)           exactly 2*len + 1 rounds (distance
//                                    bound + per-bundle 2-round relay)
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.hpp"

namespace rumor::analysis {

/// A predicted value with a tolerance window [low, high] within which a
/// (sufficiently sampled) measurement must fall.
struct PredictionWindow {
  double predicted = 0.0;
  double low = 0.0;
  double high = 0.0;
  std::string law;  // human-readable formula, e.g. "ln n + ln ln n"

  [[nodiscard]] bool contains(double measured) const {
    return measured >= low && measured <= high;
  }
};

/// Star S_n, sync push-pull from a leaf: T <= 2 deterministically
/// (round 1: source pushes to hub — and every other leaf contacts the hub;
/// round 2: all leaves pull). Window [1, 2].
[[nodiscard]] PredictionWindow star_sync_pushpull(std::uint32_t n);

/// Star S_n, async push-pull (any source): mean ~ H(n-1) + O(1) — every
/// leaf's pull clock must fire once; max of n-1 unit-ish exponentials.
[[nodiscard]] PredictionWindow star_async_pushpull_mean(std::uint32_t n);

/// Star S_n, sync push from the hub: coupon collector (n-1) H(n-1).
[[nodiscard]] PredictionWindow star_sync_push_mean(std::uint32_t n);

/// Complete graph K_n, sync push-pull: log3-growth phase then doubly-log
/// pull finish; window built on log3(n) with generous slack for the
/// additive term.
[[nodiscard]] PredictionWindow complete_sync_pushpull_mean(std::uint32_t n);

/// Complete graph K_n, sync push: log2 n + ln n + o(log n) [13, 22].
[[nodiscard]] PredictionWindow complete_sync_push_mean(std::uint32_t n);

/// Path P_n from one end, sync push-pull: the frontier advances with
/// probability 3/4 per round (frontier pushes right w.p. 1/2; right
/// neighbor pulls w.p. 1/2) => mean ~ 4(n-1)/3.
[[nodiscard]] PredictionWindow path_sync_pushpull_mean(std::uint32_t n);

/// Bundle chain, sync push-pull from relay 0: exactly 2*len + 1 rounds
/// w.h.p. (distance 2*len, plus one round because the first helpers inform
/// in round 1 but the next relay needs round 2, cascading one extra).
[[nodiscard]] PredictionWindow bundle_chain_sync_rounds(std::uint32_t len,
                                                        std::uint32_t width);

/// Generic conductance bound: T_hp(pp) <= c * log(n) / phi for a universal
/// c (empirically <= 10 across families; we use the measured-phi value).
[[nodiscard]] PredictionWindow conductance_bound(std::uint32_t n, double phi);

}  // namespace rumor::analysis
