#include "dynamics/alias.hpp"

#include <cassert>

namespace rumor::dynamics {

std::vector<std::size_t> csr_offsets(const graph::Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<std::size_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v) offsets[v + 1] = offsets[v] + g.degree(v);
  return offsets;
}

void NeighborAliasTable::build(std::span<const std::size_t> offsets,
                               std::span<const double> weights) {
  assert(!offsets.empty());
  assert(weights.size() == offsets.back());
  offsets_.assign(offsets.begin(), offsets.end());
  const std::size_t entries = weights.size();
  prob_.assign(entries, 1.0);
  alias_.assign(entries, 0);

  // Vose's stable pairing, run independently per node slice. Work lists are
  // slice-local indices; reused across slices to keep the rebuild
  // allocation-free after the first epoch.
  std::vector<double> scaled;
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  const std::size_t n = offsets_.size() - 1;
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t lo = offsets_[v];
    const std::size_t k = offsets_[v + 1] - lo;
    if (k == 0) continue;
    double total = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      assert(weights[lo + i] >= 0.0 && "neighbor weights must be non-negative");
      total += weights[lo + i];
    }
    if (total <= 0.0) {
      // Degenerate slice: prob 1 everywhere is exactly uniform sampling.
      for (std::size_t i = 0; i < k; ++i) {
        prob_[lo + i] = 1.0;
        alias_[lo + i] = static_cast<std::uint32_t>(i);
      }
      continue;
    }
    scaled.resize(k);
    const double scale = static_cast<double>(k) / total;
    for (std::size_t i = 0; i < k; ++i) scaled[i] = weights[lo + i] * scale;
    small.clear();
    large.clear();
    for (std::size_t i = 0; i < k; ++i) {
      (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
      const std::uint32_t s = small.back();
      small.pop_back();
      const std::uint32_t l = large.back();
      prob_[lo + s] = scaled[s];
      alias_[lo + s] = l;
      scaled[l] = (scaled[l] + scaled[s]) - 1.0;  // ordered for fp stability
      if (scaled[l] < 1.0) {
        large.pop_back();
        small.push_back(l);
      }
    }
    // Residual columns are fp round-off; they accept with probability 1.
    for (const std::uint32_t l : large) prob_[lo + l] = 1.0;
    for (const std::uint32_t s : small) prob_[lo + s] = 1.0;
  }
}

}  // namespace rumor::dynamics
