// rumor/dynamics: O(1) weighted neighbor sampling over CSR adjacency.
//
// The protocol primitive under weighted contact rates is "v contacts
// neighbor w with probability proportional to the weight of {v, w}". A
// linear scan per contact would put an O(deg) factor into every engine's
// inner loop, so this module builds one Walker/Vose alias table per node,
// flattened over the CSR slices: sampling is one bounded uniform plus one
// uniform double plus two indexed loads, independent of degree — the
// weighted analogue of Graph::random_neighbor.
//
// The table is immutable after build() and safe to share across threads;
// static-weight campaign configurations build it once per configuration and
// every trial samples from the shared copy, while churn overlays
// (dynamics/churn.hpp) rebuild a private table per epoch.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "rng/rng.hpp"

namespace rumor::dynamics {

using graph::NodeId;

/// Per-node alias tables over a flat adjacency layout.
///
/// `offsets` is a CSR offsets array (size n + 1) and `weights` carries one
/// non-negative weight per directed adjacency entry (size offsets[n],
/// aligned with the owner's neighbor array). Each node's slice becomes an
/// independent alias table; a slice whose weights sum to zero (or an empty
/// slice) falls back to uniform acceptance, so callers only need the usual
/// degree > 0 precondition.
class NeighborAliasTable {
 public:
  NeighborAliasTable() = default;

  /// Rebuilds the tables in place; reuses the existing buffers, so a churn
  /// overlay can rebuild per epoch without reallocating.
  void build(std::span<const std::size_t> offsets, std::span<const double> weights);

  [[nodiscard]] bool empty() const noexcept { return offsets_.empty(); }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  [[nodiscard]] std::uint32_t degree(NodeId v) const noexcept {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Draws a slice-local neighbor index of v (in [0, degree(v))) with
  /// probability proportional to that entry's weight. The caller maps the
  /// local index back through its own neighbor array (Graph::neighbor_at
  /// for base adjacency, the overlay's flat array under churn).
  /// Precondition: !empty() and degree(v) > 0.
  template <class Eng>
  [[nodiscard]] std::uint32_t sample_local(NodeId v, Eng& eng) const noexcept {
    const std::size_t lo = offsets_[v];
    const auto deg = static_cast<std::uint64_t>(offsets_[v + 1] - lo);
    const std::size_t column = lo + rng::uniform_below(eng, deg);
    const std::size_t slot =
        rng::uniform01(eng) < prob_[column] ? column : lo + alias_[column];
    return static_cast<std::uint32_t>(slot - lo);
  }

 private:
  std::vector<std::size_t> offsets_;   // size n + 1
  std::vector<double> prob_;           // acceptance probability per entry
  std::vector<std::uint32_t> alias_;   // slice-local fallback index per entry
};

/// Convenience: CSR offsets of a graph (prefix sums of degrees), the layout
/// both the weight generators and the alias builder index by.
[[nodiscard]] std::vector<std::size_t> csr_offsets(const graph::Graph& g);

}  // namespace rumor::dynamics
