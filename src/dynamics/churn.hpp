// rumor/dynamics: temporal graph overlays — churn between rounds.
//
// The paper's bounds live on static graphs, but real contact networks
// churn: links fail and recover, and contacts rewire over time. A
// DynamicGraphView layers a deterministic, seed-derived mutation process on
// top of an immutable base CSR graph:
//
//   kMarkov  every base edge carries an on/off Markov state; once per epoch
//            an ON edge dies with probability `death` and an OFF edge is
//            (re)born with probability `birth`. The edge-Markovian dynamic
//            graph model; epoch 0 is the base graph.
//   kRewire  once per epoch every base edge {v, w} is independently, with
//            probability `rewire`, replaced by {v, u} with u uniform (a
//            Watts-Strogatz-style rewiring, re-drawn fresh each epoch so
//            the graph stays an overlay of the base, never drifts).
//
// Time is grouped into *epochs* of `period` rounds (sync engines) or time
// units (the async global clock): mutations apply at epoch boundaries and
// every round inside an epoch reuses the cached overlay adjacency — and
// when no churn model is configured the view delegates straight to the
// base CSR (plus the shared weighted sampler, if any), so unchanged rounds
// run at full base speed.
//
// Determinism contract: the mutation stream of (trial, epoch) is
// rng::derive_stream(mix(dynamics seed, protocol stream seed, trial),
// epoch) — a pure function of the configuration, candidate source, and
// trial index, drawn from engines disjoint from the protocol randomness.
// Campaign summaries over dynamic graphs are therefore bit-identical
// across thread counts and block sizes (tests/test_dynamics.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dynamics/alias.hpp"
#include "dynamics/weights.hpp"
#include "graph/graph.hpp"
#include "rng/rng.hpp"

namespace rumor::dynamics {

enum class ChurnModel : std::uint8_t { kNone, kMarkov, kRewire };

[[nodiscard]] constexpr const char* churn_model_name(ChurnModel m) noexcept {
  switch (m) {
    case ChurnModel::kNone: return "none";
    case ChurnModel::kMarkov: return "markov";
    case ChurnModel::kRewire: return "rewire";
  }
  return "?";
}

struct ChurnParams {
  ChurnModel model = ChurnModel::kNone;
  double birth = 0.05;   // kMarkov: off -> on probability per epoch
  double death = 0.05;   // kMarkov: on -> off probability per epoch
  double rewire = 0.1;   // kRewire: per-edge rewiring probability per epoch
  /// Rounds (sync) / time units (async global clock) per epoch.
  std::uint64_t period = 1;
};

/// A campaign configuration's complete dynamics description: a churn model,
/// a weight model, and the seed their randomness derives from.
struct DynamicsSpec {
  ChurnParams churn;
  WeightParams weights;
  /// Root of the churn streams and the weight hash; 0 = the owner derives
  /// it (the campaign uses the configuration seed).
  std::uint64_t seed = 0;

  /// True when the spec changes nothing (no churn, no weights): the
  /// engines then take their original static path untouched.
  [[nodiscard]] bool is_static() const noexcept {
    return churn.model == ChurnModel::kNone && weights.model == WeightModel::kNone;
  }
};

/// The base graph's undirected edge list in (v < w) CSR order — the churn
/// models' mutation universe. Campaigns compute it once per configuration
/// and share it read-only across that configuration's trial views.
[[nodiscard]] std::vector<graph::Edge> base_edge_list(const graph::Graph& g);

/// One trial's view of a (possibly) churning, (possibly) weighted graph.
///
/// Cheap to construct when no churn model is configured (a couple of
/// pointers; the weighted sampler is shared across trials). With churn it
/// holds a private overlay adjacency rebuilt once per epoch.
class DynamicGraphView {
 public:
  /// `base_weighted` is the configuration-level shared sampler for the
  /// static-weights fast path (required iff weights are configured without
  /// churn; ignored otherwise). `stream_seed` and `trial` identify the
  /// protocol stream this view accompanies, so churn is independent per
  /// trial and per race candidate. `shared_base_edges`, when non-null,
  /// must equal base_edge_list(base) and outlive the view; null makes the
  /// view extract its own copy (the campaign shares one per config).
  DynamicGraphView(const graph::Graph& base, const DynamicsSpec& spec,
                   const NeighborAliasTable* base_weighted, std::uint64_t stream_seed,
                   std::uint64_t trial,
                   const std::vector<graph::Edge>* shared_base_edges = nullptr);

  /// Sync engines: call at the top of round r (1-based); epoch (r-1)/period.
  void begin_round(std::uint64_t round);
  /// Async global clock: call after advancing the clock; epoch floor(now/period).
  void advance_time(double now);

  [[nodiscard]] std::uint32_t degree(NodeId v) const noexcept {
    return churned_ ? static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v])
                    : base_->degree(v);
  }

  /// The contact target of v: weighted by the spec's weight model, over the
  /// current epoch's adjacency. Precondition: degree(v) > 0.
  [[nodiscard]] NodeId sample(NodeId v, rng::Engine& eng) const noexcept {
    if (!churned_) {
      if (base_weighted_ == nullptr) return base_->random_neighbor(v, eng);
      return base_->neighbor_at(v, base_weighted_->sample_local(v, eng));
    }
    const std::size_t lo = offsets_[v];
    if (!weighted_) {
      return nbrs_[lo + rng::uniform_below(eng, offsets_[v + 1] - lo)];
    }
    return nbrs_[lo + sampler_.sample_local(v, eng)];
  }

  /// Current-epoch neighbors of v (test/diagnostic accessor).
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const noexcept {
    if (!churned_) return base_->neighbors(v);
    return {nbrs_.data() + offsets_[v], nbrs_.data() + offsets_[v + 1]};
  }

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

 private:
  void set_epoch(std::uint64_t epoch);
  void rebuild_overlay();

  const graph::Graph* base_;
  DynamicsSpec spec_;
  const NeighborAliasTable* base_weighted_ = nullptr;
  bool churned_ = false;   // a churn model is configured
  bool weighted_ = false;  // a weight model is configured
  std::uint64_t trial_stream_ = 0;
  std::uint64_t epoch_ = 0;

  // Churn state (untouched when !churned_).
  const std::vector<graph::Edge>* base_edges_ = nullptr;  // shared or owned_
  std::vector<graph::Edge> owned_base_edges_;  // backing store when not shared
  std::vector<std::uint8_t> on_;            // kMarkov per-base-edge state
  std::vector<graph::Edge> current_edges_;  // scratch: this epoch's edge set
  std::vector<std::size_t> offsets_;        // overlay CSR offsets
  std::vector<NodeId> nbrs_;                // overlay flat neighbors
  std::vector<double> weights_;             // scratch: per-entry weights
  NeighborAliasTable sampler_;              // overlay alias tables
};

}  // namespace rumor::dynamics
