// rumor/dynamics: per-edge contact weights.
//
// Real contact networks are not uniform: commuting and road networks (see
// PAPERS.md) carry heterogeneous contact intensities per link. This module
// assigns every undirected edge {v, w} a positive weight from one of three
// generators, and a protocol engine then contacts neighbors proportionally
// to weight (via dynamics/alias.hpp).
//
// Weights are a *pure function* of (model, seed, endpoints, base degrees):
// each edge's weight is a SplitMix64 hash of its endpoint pair, never a
// draw from a sequential stream. That makes the assignment symmetric
// (weight(v,w) == weight(w,v)), independent of construction order, stable
// across epochs of a churn overlay (a rewired edge gets the same weight it
// would get anywhere else), and bit-deterministic across thread counts.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace rumor::dynamics {

using graph::NodeId;

enum class WeightModel : std::uint8_t {
  kNone,          // all contacts uniform (the paper's model)
  kUniform,       // w ~ Uniform[0.5, 1.5): mild i.i.d. heterogeneity
  kDegree,        // w = deg(v) * deg(w) over base degrees: hub-biased
  kHeavyTailed,   // w ~ Pareto(alpha) on [1, inf): skewed intensities
};

[[nodiscard]] constexpr const char* weight_model_name(WeightModel m) noexcept {
  switch (m) {
    case WeightModel::kNone: return "none";
    case WeightModel::kUniform: return "uniform";
    case WeightModel::kDegree: return "degree";
    case WeightModel::kHeavyTailed: return "heavy_tailed";
  }
  return "?";
}

struct WeightParams {
  WeightModel model = WeightModel::kNone;
  /// Pareto tail exponent for kHeavyTailed; smaller = heavier tail.
  double alpha = 2.0;
};

/// The weight of undirected edge {v, w}. `base` supplies the degrees for
/// kDegree; `seed` selects the hash family (the campaign resolves it from
/// the configuration's dynamics seed). Always > 0. Precondition:
/// params.model != kNone.
[[nodiscard]] double edge_weight(const WeightParams& params, const graph::Graph& base,
                                 std::uint64_t seed, NodeId v, NodeId w) noexcept;

/// One weight per directed adjacency entry of `g`, aligned with `offsets`
/// (csr_offsets(g)) and Graph::neighbor_at order — the layout
/// NeighborAliasTable::build consumes. Symmetric entries get equal weights.
[[nodiscard]] std::vector<double> make_edge_weights(const graph::Graph& g,
                                                    const WeightParams& params,
                                                    std::uint64_t seed);

}  // namespace rumor::dynamics
