#include "dynamics/weights.hpp"

#include <cassert>
#include <cmath>

#include "dynamics/alias.hpp"
#include "rng/rng.hpp"

namespace rumor::dynamics {

namespace {

/// Uniform (0, 1] from a hash of (seed, unordered endpoint pair). Two
/// SplitMix64 rounds so adjacent pairs decorrelate; the +1 ulp shift keeps
/// the value strictly positive (safe under x^(-1/alpha)).
double pair_uniform(std::uint64_t seed, NodeId v, NodeId w) noexcept {
  const NodeId a = v < w ? v : w;
  const NodeId b = v < w ? w : v;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(b);
  rng::SplitMix64 sm(seed ^ (key * 0x9e3779b97f4a7c15ULL));
  sm.next();
  return (static_cast<double>(sm.next() >> 11) + 1.0) * 0x1.0p-53;
}

}  // namespace

double edge_weight(const WeightParams& params, const graph::Graph& base, std::uint64_t seed,
                   NodeId v, NodeId w) noexcept {
  switch (params.model) {
    case WeightModel::kUniform:
      return 0.5 + pair_uniform(seed, v, w);
    case WeightModel::kDegree:
      return static_cast<double>(base.degree(v)) * static_cast<double>(base.degree(w));
    case WeightModel::kHeavyTailed:
      return std::pow(pair_uniform(seed, v, w), -1.0 / params.alpha);
    case WeightModel::kNone: break;
  }
  assert(false && "edge_weight called with WeightModel::kNone");
  return 1.0;
}

std::vector<double> make_edge_weights(const graph::Graph& g, const WeightParams& params,
                                      std::uint64_t seed) {
  const NodeId n = g.num_nodes();
  std::vector<double> weights;
  weights.reserve(2 * g.num_edges());
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId w : g.neighbors(v)) {
      weights.push_back(edge_weight(params, g, seed, v, w));
    }
  }
  return weights;
}

}  // namespace rumor::dynamics
