#include "dynamics/churn.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rumor::dynamics {

namespace {

/// Order-sensitive two-input hash (SplitMix64 round per input); used to
/// fold (dynamics seed, protocol stream seed, trial) into one churn-stream
/// root that collides with neither the protocol streams nor the weight
/// hash family.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) noexcept {
  rng::SplitMix64 sm(a ^ (b * 0x9e3779b97f4a7c15ULL));
  return sm.next();
}

/// Stream tag separating churn randomness from everything else derived
/// from the same dynamics seed (the weight hash in particular).
constexpr std::uint64_t kChurnTag = 0x636875726e5f5f5fULL;  // "churn___"

}  // namespace

std::vector<graph::Edge> base_edge_list(const graph::Graph& g) {
  std::vector<graph::Edge> edges;
  edges.reserve(g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const NodeId w : g.neighbors(v)) {
      if (v < w) edges.push_back({v, w});
    }
  }
  return edges;
}

DynamicGraphView::DynamicGraphView(const graph::Graph& base, const DynamicsSpec& spec,
                                   const NeighborAliasTable* base_weighted,
                                   std::uint64_t stream_seed, std::uint64_t trial,
                                   const std::vector<graph::Edge>* shared_base_edges)
    : base_(&base),
      spec_(spec),
      churned_(spec.churn.model != ChurnModel::kNone),
      weighted_(spec.weights.model != WeightModel::kNone) {
  if (!churned_) {
    if (weighted_) {
      assert(base_weighted != nullptr && !base_weighted->empty() &&
             "static-weights view needs the shared sampler");
      base_weighted_ = base_weighted;
    }
    return;
  }
  trial_stream_ = mix(mix(spec_.seed ^ kChurnTag, stream_seed), trial);
  if (shared_base_edges != nullptr) {
    base_edges_ = shared_base_edges;
  } else {
    owned_base_edges_ = base_edge_list(base);
    base_edges_ = &owned_base_edges_;
  }
  if (spec_.churn.model == ChurnModel::kMarkov) {
    on_.assign(base_edges_->size(), 1);  // epoch 0 = the base graph as given
  }
  offsets_.assign(static_cast<std::size_t>(base.num_nodes()) + 1, 0);
  current_edges_ = *base_edges_;
  rebuild_overlay();
}

void DynamicGraphView::begin_round(std::uint64_t round) {
  assert(round >= 1);
  if (churned_) set_epoch((round - 1) / spec_.churn.period);
}

void DynamicGraphView::advance_time(double now) {
  if (!churned_) return;
  const double e = std::floor(now / static_cast<double>(spec_.churn.period));
  set_epoch(e <= 0.0 ? 0 : static_cast<std::uint64_t>(e));
}

void DynamicGraphView::set_epoch(std::uint64_t epoch) {
  if (epoch == epoch_) return;  // the epoch cache: unchanged rounds are free
  assert(epoch > epoch_ && "epochs only advance within a trial");
  switch (spec_.churn.model) {
    case ChurnModel::kMarkov: {
      // Sequential state: walk every intermediate epoch's transition, each
      // from its own derived stream, then rebuild the overlay once.
      for (std::uint64_t e = epoch_ + 1; e <= epoch; ++e) {
        rng::Engine eng = rng::derive_stream(trial_stream_, e);
        for (std::size_t i = 0; i < base_edges_->size(); ++i) {
          if (on_[i] != 0) {
            if (rng::bernoulli(eng, spec_.churn.death)) on_[i] = 0;
          } else {
            if (rng::bernoulli(eng, spec_.churn.birth)) on_[i] = 1;
          }
        }
      }
      current_edges_.clear();
      for (std::size_t i = 0; i < base_edges_->size(); ++i) {
        if (on_[i] != 0) current_edges_.push_back((*base_edges_)[i]);
      }
      break;
    }
    case ChurnModel::kRewire: {
      // Memoryless overlay: each epoch rewires the *base* graph afresh, so
      // skipped epochs (async quiet stretches) need no intermediate work.
      rng::Engine eng = rng::derive_stream(trial_stream_, epoch);
      const NodeId n = base_->num_nodes();
      current_edges_ = *base_edges_;
      for (graph::Edge& edge : current_edges_) {
        if (!rng::bernoulli(eng, spec_.churn.rewire)) continue;
        NodeId u = edge.b;
        do {
          u = static_cast<NodeId>(rng::uniform_below(eng, n));
        } while (u == edge.a);
        edge.b = u;
      }
      break;
    }
    case ChurnModel::kNone: break;
  }
  epoch_ = epoch;
  rebuild_overlay();
}

void DynamicGraphView::rebuild_overlay() {
  const NodeId n = base_->num_nodes();
  // Counting sort of the edge list into flat CSR: degrees, prefix sums, fill.
  std::fill(offsets_.begin(), offsets_.end(), 0);
  for (const graph::Edge& e : current_edges_) {
    ++offsets_[e.a + 1];
    ++offsets_[e.b + 1];
  }
  for (NodeId v = 0; v < n; ++v) offsets_[v + 1] += offsets_[v];
  nbrs_.resize(offsets_[n]);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const graph::Edge& e : current_edges_) {
    nbrs_[cursor[e.a]++] = e.b;
    nbrs_[cursor[e.b]++] = e.a;
  }
  if (!weighted_) return;
  weights_.resize(nbrs_.size());
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t i = offsets_[v]; i < offsets_[v + 1]; ++i) {
      weights_[i] = edge_weight(spec_.weights, *base_, spec_.seed, v, nbrs_[i]);
    }
  }
  sampler_.build(offsets_, weights_);
}

}  // namespace rumor::dynamics
