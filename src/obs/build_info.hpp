// rumor/obs: build provenance baked into every binary.
//
// Reports that gate perf trajectories are only attributable if they say
// what produced them: the git sha, the compiler, the build type, and the
// optimization flags. The values are compile-time constants (the sha and
// flags arrive as compile definitions on build_info.cpp, set by
// src/obs/CMakeLists.txt at configure time; the compiler identifies itself
// through predefined macros), so two reports from the same binary always
// carry byte-identical build_info — which is what keeps the CI byte-diff
// contracts (shard-merge vs plain, kill/resume vs plain) intact.
#pragma once

#include <string>

namespace rumor::obs {

struct BuildInfo {
  const char* git_sha;           // short sha at configure time, or "unknown"
  const char* compiler;          // "gcc" / "clang" / "unknown"
  const char* compiler_version;  // the compiler's own __VERSION__ string
  const char* build_type;        // CMAKE_BUILD_TYPE, or "unknown"
  const char* flags;             // the CXX flags the build used
};

/// The binary's build identity; every field non-null.
[[nodiscard]] const BuildInfo& build_info() noexcept;

/// One human line for --version: "rumor_bench <sha> (<compiler>
/// <version>, <build_type>)".
[[nodiscard]] std::string build_info_line(const std::string& program);

}  // namespace rumor::obs
