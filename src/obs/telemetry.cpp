#include "obs/telemetry.hpp"

#include <fstream>
#include <iostream>

#include "obs/progress.hpp"

namespace rumor::obs {

Telemetry::Telemetry() : Telemetry(Options{}) {}

Telemetry::Telemetry(Options options) : options_(options) {}

Telemetry::~Telemetry() { end(); }

void Telemetry::begin(std::vector<std::string> config_ids, unsigned workers,
                      std::string label) {
  config_ids_ = std::move(config_ids);
  label_ = std::move(label);
  epoch_ = std::chrono::steady_clock::now();
  sinks_.assign(workers, WorkerSink{});
  for (WorkerSink& sink : sinks_) {
    sink.epoch_ = epoch_;
    sink.tracing_ = options_.trace;
    sink.per_config.assign(config_ids_.size(), ConfigCost{});
  }
  began_ = true;
  ended_ = false;
  if (options_.progress) {
    std::ostream& out =
        options_.progress_stream != nullptr ? *options_.progress_stream : std::cerr;
    progress_ = std::make_unique<ProgressMeter>(out, options_.progress_interval);
    progress_->start(label_);
  }
}

void Telemetry::end() {
  if (!began_ || ended_) return;
  ended_ = true;
  wall_ns_ = now_ns();
  if (progress_) progress_->stop();
}

std::uint64_t Telemetry::now_ns() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Telemetry::on_blocks_scheduled(std::size_t n) {
  blocks_scheduled_ += n;
  if (progress_) progress_->on_scheduled(n);
}

void Telemetry::sample_queue_depth(std::size_t depth) { queue_depth_.add(depth); }

void Telemetry::on_block_done() {
  if (progress_) progress_->on_done();
}

void Telemetry::set_phase(const char* phase) {
  if (progress_) progress_->set_phase(phase);
}

void Telemetry::on_checkpoint_write(std::uint64_t begin_ns, std::uint64_t end_ns) {
  const std::scoped_lock lock(service_mutex_);
  checkpoint_writes_ += 1;
  checkpoint_write_ns_.add(end_ns - begin_ns);
  if (options_.trace) {
    service_spans_.push_back(TraceSpan{"checkpoint:write", begin_ns, end_ns, 0, -1, false});
  }
}

MetricsSnapshot Telemetry::snapshot() const {
  MetricsSnapshot snap;
  snap.config_ids = config_ids_;
  snap.per_config.assign(config_ids_.size(), ConfigCost{});
  snap.workers.reserve(sinks_.size());
  for (const WorkerSink& sink : sinks_) {
    snap.workers.push_back(sink.metrics);
    snap.totals.merge(sink.metrics);
    for (std::size_t c = 0; c < snap.per_config.size() && c < sink.per_config.size(); ++c) {
      snap.per_config[c].merge(sink.per_config[c]);
    }
  }
  snap.queue_depth = queue_depth_;
  snap.checkpoint_write_ns = checkpoint_write_ns_;
  snap.checkpoint_writes = checkpoint_writes_;
  snap.blocks_scheduled = blocks_scheduled_;
  snap.wall_ns = ended_ ? wall_ns_ : now_ns();
  return snap;
}

std::string Telemetry::render_trace() const {
  const MetricsSnapshot snap = snapshot();
  TraceRenderInput input;
  input.campaign = label_;
  input.config_ids = &config_ids_;
  input.metrics = &snap;
  input.lanes.reserve(sinks_.size() + 1);
  for (std::size_t w = 0; w < sinks_.size(); ++w) {
    input.lanes.emplace_back("worker " + std::to_string(w), &sinks_[w].spans_);
  }
  if (!service_spans_.empty()) {
    input.lanes.emplace_back("checkpoint", &service_spans_);
  }
  return render_chrome_trace(input);
}

bool Telemetry::write_trace(const std::string& path, std::string* error) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open trace file: " + path;
    return false;
  }
  out << render_trace();
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "failed writing trace file: " + path;
    return false;
  }
  return true;
}

}  // namespace rumor::obs
