#include "obs/build_info.hpp"

#ifndef RUMOR_GIT_SHA
#define RUMOR_GIT_SHA "unknown"
#endif
#ifndef RUMOR_BUILD_TYPE
#define RUMOR_BUILD_TYPE "unknown"
#endif
#ifndef RUMOR_CXX_FLAGS
#define RUMOR_CXX_FLAGS ""
#endif

namespace rumor::obs {

namespace {

constexpr const char* compiler_name() noexcept {
#if defined(__clang__)
  return "clang";
#elif defined(__GNUC__)
  return "gcc";
#else
  return "unknown";
#endif
}

constexpr const char* compiler_version() noexcept {
#if defined(__VERSION__)
  return __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace

const BuildInfo& build_info() noexcept {
  static const BuildInfo info{RUMOR_GIT_SHA, compiler_name(), compiler_version(),
                              RUMOR_BUILD_TYPE, RUMOR_CXX_FLAGS};
  return info;
}

std::string build_info_line(const std::string& program) {
  const BuildInfo& bi = build_info();
  return program + " " + bi.git_sha + " (" + bi.compiler + " " + bi.compiler_version + ", " +
         bi.build_type + ")";
}

}  // namespace rumor::obs
