// rumor/obs: the telemetry facade the campaign scheduler talks to.
//
// One Telemetry object per campaign run. The scheduler calls begin() once
// the worker count is known, hands each worker its WorkerSink (sharded, no
// locks on the hot path), and calls end() after the pool joins. The CLI
// then pulls a MetricsSnapshot and/or a rendered Chrome trace.
//
// Everything here is observational: a Telemetry never feeds back into
// scheduling, and a null Telemetry* in CampaignOptions (the default) means
// the scheduler takes zero-cost `if (tel)` branches and produces
// byte-identical reports (tested in tests/test_obs.cpp).
//
// Thread-safety map:
//  - WorkerSink: owned by exactly one worker thread between begin()/end().
//  - on_blocks_scheduled()/sample_queue_depth(): called under the block
//    queue's own mutex, which serializes them.
//  - on_block_done()/set_phase(): relaxed atomics via ProgressMeter.
//  - on_checkpoint_write(): serialized by the recorder's write mutex, but
//    guarded by a mutex here anyway since it is cold.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rumor::obs {

class ProgressMeter;

/// Per-worker telemetry shard: counters plus (when tracing) a span log.
class WorkerSink {
 public:
  WorkerMetrics metrics;
  std::vector<ConfigCost> per_config;  // indexed like the campaign's configs

  /// Nanoseconds since the campaign's begin(). Monotone within a worker.
  [[nodiscard]] std::uint64_t now_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Records a completed span when tracing; no-op otherwise. `name` must be
  /// a string literal.
  void span(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns,
            std::uint32_t config, std::int64_t slot = -1) {
    if (!tracing_) return;
    spans_.push_back(TraceSpan{name, begin_ns, end_ns, config, slot, true});
  }
  /// Span without a config attribution (e.g. the final merge).
  void span_plain(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns) {
    if (!tracing_) return;
    spans_.push_back(TraceSpan{name, begin_ns, end_ns, 0, -1, false});
  }

  [[nodiscard]] bool tracing() const noexcept { return tracing_; }

 private:
  friend class Telemetry;
  std::vector<TraceSpan> spans_;
  std::chrono::steady_clock::time_point epoch_;
  bool tracing_ = false;
};

class Telemetry {
 public:
  struct Options {
    bool trace = false;               // record spans for --trace export
    bool progress = false;            // heartbeat lines on progress_stream
    std::ostream* progress_stream = nullptr;  // nullptr means std::cerr
    std::chrono::milliseconds progress_interval{500};
  };

  Telemetry();
  explicit Telemetry(Options options);
  ~Telemetry();

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Called by the scheduler once configs and worker count are known.
  /// `label` names the campaign in progress lines and the trace.
  void begin(std::vector<std::string> config_ids, unsigned workers, std::string label);
  /// Called after the worker pool joins. Stops the heartbeat and stamps the
  /// campaign wall time. Idempotent; the destructor calls it too.
  void end();

  /// The shard for worker `worker` (0-based); valid between begin()/end().
  [[nodiscard]] WorkerSink& sink(unsigned worker) { return sinks_[worker]; }
  [[nodiscard]] std::uint64_t now_ns() const noexcept;

  // --- queue hooks (called under the BlockQueue mutex) -------------------
  void on_blocks_scheduled(std::size_t n);
  void sample_queue_depth(std::size_t depth);

  // --- worker hooks (lock-free) ------------------------------------------
  void on_block_done();
  /// `phase` must be a string literal.
  void set_phase(const char* phase);

  // --- checkpoint hook ----------------------------------------------------
  void on_checkpoint_write(std::uint64_t begin_ns, std::uint64_t end_ns);

  [[nodiscard]] bool tracing() const noexcept { return options_.trace; }

  /// Merged registry view; call after end(). Deterministic for the "exact"
  /// counters: shards merge in worker-index order and sums commute.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// The full Chrome trace-event JSON document; call after end().
  [[nodiscard]] std::string render_trace() const;
  /// Writes render_trace() to `path`. Returns false and fills `error` on
  /// I/O failure.
  bool write_trace(const std::string& path, std::string* error) const;

 private:
  Options options_;
  std::vector<std::string> config_ids_;
  std::string label_;
  std::vector<WorkerSink> sinks_;
  std::chrono::steady_clock::time_point epoch_;
  std::uint64_t wall_ns_ = 0;
  bool began_ = false;
  bool ended_ = false;

  // Queue-side state, serialized by the queue's mutex.
  std::uint64_t blocks_scheduled_ = 0;
  Histogram queue_depth_;

  // Checkpoint-service state.
  std::mutex service_mutex_;
  Histogram checkpoint_write_ns_;
  std::uint64_t checkpoint_writes_ = 0;
  std::vector<TraceSpan> service_spans_;

  std::unique_ptr<ProgressMeter> progress_;
};

}  // namespace rumor::obs
