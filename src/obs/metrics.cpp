#include "obs/metrics.hpp"

#include <bit>

namespace rumor::obs {

void Histogram::add(std::uint64_t value) noexcept {
  // bit_width(0) == 0, bit_width(1) == 1, ...: zeros land in bucket 0 and
  // [2^(b-1), 2^b) in bucket b, capped defensively at the top bucket.
  const auto b = static_cast<std::size_t>(std::bit_width(value));
  buckets[b < kBuckets ? b : kBuckets - 1] += 1;
  count += 1;
  sum += value;
  if (value < min) min = value;
  if (value > max) max = value;
}

void Histogram::merge(const Histogram& other) noexcept {
  for (std::size_t b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
  count += other.count;
  sum += other.sum;
  if (other.min < min) min = other.min;
  if (other.max > max) max = other.max;
}

void WorkerMetrics::merge(const WorkerMetrics& other) noexcept {
  blocks_executed += other.blocks_executed;
  trials_simulated += other.trials_simulated;
  sync_rounds += other.sync_rounds;
  async_events += other.async_events;
  graph_builds += other.graph_builds;
  graph_frees += other.graph_frees;
  busy_ns += other.busy_ns;
  idle_ns += other.idle_ns;
}

}  // namespace rumor::obs
