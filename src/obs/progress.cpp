#include "obs/progress.hpp"

#include <cstdio>
#include <ostream>

namespace rumor::obs {

ProgressMeter::ProgressMeter(std::ostream& out, std::chrono::milliseconds interval)
    : out_(out), interval_(interval) {}

ProgressMeter::~ProgressMeter() { stop(); }

void ProgressMeter::start(std::string label) {
  label_ = std::move(label);
  started_ = std::chrono::steady_clock::now();
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = false;
    running_ = true;
  }
  thread_ = std::thread([this] { run(); });
}

void ProgressMeter::stop() {
  {
    const std::scoped_lock lock(mutex_);
    if (!running_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  {
    const std::scoped_lock lock(mutex_);
    running_ = false;
  }
  print_line(true);
}

void ProgressMeter::run() {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (cv_.wait_for(lock, interval_, [this] { return stopping_; })) return;
    lock.unlock();
    print_line(false);
    lock.lock();
  }
}

void ProgressMeter::print_line(bool final_line) {
  const std::uint64_t done = done_.load(std::memory_order_relaxed);
  const std::uint64_t scheduled = scheduled_.load(std::memory_order_relaxed);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started_).count();
  const double rate = elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
  char tail[128];
  if (final_line) {
    std::snprintf(tail, sizeof tail, "%.1f blocks/s, %.1fs elapsed, done", rate, elapsed);
  } else {
    const std::uint64_t remaining = scheduled > done ? scheduled - done : 0;
    if (rate > 0.0) {
      std::snprintf(tail, sizeof tail, "%.1f blocks/s, eta %.1fs, phase %s", rate,
                    static_cast<double>(remaining) / rate,
                    phase_.load(std::memory_order_relaxed));
    } else {
      std::snprintf(tail, sizeof tail, "phase %s", phase_.load(std::memory_order_relaxed));
    }
  }
  // One formatted write per line, so concurrent stderr writers (other
  // processes of a sharded fleet) interleave at line granularity.
  out_ << "progress [" << label_ << "] " << done << "/" << scheduled << " blocks, " << tail
       << "\n";
  out_.flush();
}

}  // namespace rumor::obs
