// rumor/obs: live campaign progress.
//
// A heartbeat thread prints one status line per interval to a stream of the
// caller's choosing — the CLI always hands in stderr, so --json stdout
// stays machine-parseable (tested in tests/test_bench_cli.cpp). The
// scheduler feeds three atomics (blocks scheduled, blocks done, current
// phase); the printer reads them with relaxed loads, so workers never block
// on progress reporting.
//
// The denominator is the number of blocks *scheduled so far*: race
// configurations append their screen/refine passes while the campaign
// runs, so the total can grow. The heartbeat is honest about that — the
// percentage can step backwards when a race expands — rather than
// pretending a final total is known up front.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>

namespace rumor::obs {

class ProgressMeter {
 public:
  /// `out` must outlive the meter. `interval` is the heartbeat period.
  ProgressMeter(std::ostream& out, std::chrono::milliseconds interval);
  ~ProgressMeter();

  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  /// Starts the heartbeat thread. `label` names the campaign in each line.
  void start(std::string label);
  /// Stops the thread and prints one final summary line. Idempotent.
  void stop();

  // Scheduler-side feeds; safe from any thread, never blocking.
  void on_scheduled(std::uint64_t n) noexcept {
    scheduled_.fetch_add(n, std::memory_order_relaxed);
  }
  void on_done() noexcept { done_.fetch_add(1, std::memory_order_relaxed); }
  /// `phase` must be a string literal (stored as a pointer).
  void set_phase(const char* phase) noexcept {
    phase_.store(phase, std::memory_order_relaxed);
  }

 private:
  void print_line(bool final_line);
  void run();

  std::ostream& out_;
  std::chrono::milliseconds interval_;
  std::string label_;
  std::atomic<std::uint64_t> scheduled_{0};
  std::atomic<std::uint64_t> done_{0};
  std::atomic<const char*> phase_{"startup"};
  std::chrono::steady_clock::time_point started_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace rumor::obs
