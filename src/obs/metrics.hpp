// rumor/obs: the campaign metrics registry.
//
// Telemetry is sharded per worker: each scheduler worker owns a plain
// (non-atomic) WorkerMetrics it alone mutates, so the instrumented hot path
// costs an increment, never a contended atomic or lock. A MetricsSnapshot
// merges the shards *in worker-index order* after the pool joins.
//
// Determinism contract (tested in tests/test_obs.cpp): the counters below
// marked "exact" are integer totals of deterministic per-block quantities,
// and integer addition commutes — so blocks_executed, trials_simulated,
// graph_builds/graph_frees, and the engine round/event totals are identical
// at any thread count for a fixed campaign. Durations (busy/idle,
// checkpoint latency) and queue-depth samples are wall-clock observations:
// reported, never gated, and never allowed to feed back into scheduling.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace rumor::obs {

/// Log2-bucketed histogram for latency and depth samples: bucket b counts
/// values in [2^(b-1), 2^b), bucket 0 counts zeros. Fixed footprint, O(1)
/// add, exact count/sum/min/max alongside the bucketed shape.
struct Histogram {
  static constexpr std::size_t kBuckets = 64;

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max = 0;

  void add(std::uint64_t value) noexcept;
  void merge(const Histogram& other) noexcept;
  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// One worker's counter shard. "exact" fields obey the determinism contract
/// above; the rest are observational wall-clock quantities.
struct WorkerMetrics {
  std::uint64_t blocks_executed = 0;   // exact
  std::uint64_t trials_simulated = 0;  // exact (screen + refine trials included)
  std::uint64_t sync_rounds = 0;       // exact: rounds of round-based engines
  std::uint64_t async_events = 0;      // exact: steps of the async engine
  std::uint64_t graph_builds = 0;      // exact
  std::uint64_t graph_frees = 0;       // exact
  std::uint64_t busy_ns = 0;           // pop-to-finish time across blocks
  std::uint64_t idle_ns = 0;           // time blocked on the queue

  void merge(const WorkerMetrics& other) noexcept;
};

/// Per-configuration cost attribution (the breakdown stats.telemetry and
/// trace_report.py surface). blocks/trials are exact; busy_ns is wall time.
struct ConfigCost {
  std::uint64_t blocks = 0;
  std::uint64_t trials = 0;
  std::uint64_t busy_ns = 0;

  void merge(const ConfigCost& other) noexcept {
    blocks += other.blocks;
    trials += other.trials;
    busy_ns += other.busy_ns;
  }
};

/// The merged registry view: totals, the per-worker shards they came from
/// (worker-index order), and the per-config attribution (config order).
struct MetricsSnapshot {
  WorkerMetrics totals;
  std::vector<WorkerMetrics> workers;
  std::vector<ConfigCost> per_config;     // indexed like the campaign's configs
  std::vector<std::string> config_ids;    // same indexing
  Histogram queue_depth;                  // queue length sampled at every pop
  Histogram checkpoint_write_ns;          // latency of every snapshot write
  std::uint64_t checkpoint_writes = 0;
  std::uint64_t blocks_scheduled = 0;     // pushes observed by the queue
  std::uint64_t wall_ns = 0;              // begin() to snapshot time
};

}  // namespace rumor::obs
