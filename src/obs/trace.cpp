#include "obs/trace.hpp"

#include <cstdio>

#include "obs/build_info.hpp"

namespace rumor::obs {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_us_fixed(std::string& out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu.%03llu", static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

namespace {

void append_uint(std::string& out, std::uint64_t v) { out += std::to_string(v); }

void append_histogram(std::string& out, const Histogram& h) {
  out += "{\"count\":";
  append_uint(out, h.count);
  out += ",\"sum\":";
  append_uint(out, h.sum);
  out += ",\"min\":";
  append_uint(out, h.count == 0 ? 0 : h.min);
  out += ",\"max\":";
  append_uint(out, h.max);
  out += ",\"buckets\":[";
  bool first = true;
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    if (h.buckets[b] == 0) continue;
    if (!first) out += ',';
    first = false;
    // [lower bound of the bucket, count]: bucket 0 holds zeros, bucket b
    // holds [2^(b-1), 2^b).
    out += '[';
    append_uint(out, b == 0 ? 0 : (std::uint64_t{1} << (b - 1)));
    out += ',';
    append_uint(out, h.buckets[b]);
    out += ']';
  }
  out += "]}";
}

void append_worker_metrics(std::string& out, const WorkerMetrics& m) {
  out += "{\"blocks_executed\":";
  append_uint(out, m.blocks_executed);
  out += ",\"trials_simulated\":";
  append_uint(out, m.trials_simulated);
  out += ",\"sync_rounds\":";
  append_uint(out, m.sync_rounds);
  out += ",\"async_events\":";
  append_uint(out, m.async_events);
  out += ",\"graph_builds\":";
  append_uint(out, m.graph_builds);
  out += ",\"graph_frees\":";
  append_uint(out, m.graph_frees);
  out += ",\"busy_ns\":";
  append_uint(out, m.busy_ns);
  out += ",\"idle_ns\":";
  append_uint(out, m.idle_ns);
  out += '}';
}

void append_metrics(std::string& out, const MetricsSnapshot& snap) {
  out += "{\"wall_ns\":";
  append_uint(out, snap.wall_ns);
  out += ",\"blocks_scheduled\":";
  append_uint(out, snap.blocks_scheduled);
  out += ",\"checkpoint_writes\":";
  append_uint(out, snap.checkpoint_writes);
  out += ",\"queue_depth\":";
  append_histogram(out, snap.queue_depth);
  out += ",\"checkpoint_write_ns\":";
  append_histogram(out, snap.checkpoint_write_ns);
  out += ",\"totals\":";
  append_worker_metrics(out, snap.totals);
  out += ",\"workers\":[";
  for (std::size_t w = 0; w < snap.workers.size(); ++w) {
    if (w != 0) out += ',';
    append_worker_metrics(out, snap.workers[w]);
  }
  out += "],\"per_config\":[";
  for (std::size_t c = 0; c < snap.per_config.size(); ++c) {
    if (c != 0) out += ',';
    out += "{\"id\":";
    append_json_string(out, c < snap.config_ids.size() ? snap.config_ids[c] : "");
    out += ",\"blocks\":";
    append_uint(out, snap.per_config[c].blocks);
    out += ",\"trials\":";
    append_uint(out, snap.per_config[c].trials);
    out += ",\"busy_ns\":";
    append_uint(out, snap.per_config[c].busy_ns);
    out += '}';
  }
  out += "]}";
}

void append_span_event(std::string& out, const TraceSpan& span, std::size_t tid,
                       const std::vector<std::string>* config_ids) {
  out += "{\"name\":";
  append_json_string(out, span.name);
  out += ",\"cat\":\"campaign\",\"ph\":\"X\",\"ts\":";
  append_us_fixed(out, span.begin_ns);
  out += ",\"dur\":";
  append_us_fixed(out, span.end_ns - span.begin_ns);
  out += ",\"pid\":1,\"tid\":";
  append_uint(out, tid);
  out += ",\"args\":{";
  bool first = true;
  if (span.has_config && config_ids != nullptr && span.config < config_ids->size()) {
    out += "\"config\":";
    append_json_string(out, (*config_ids)[span.config]);
    first = false;
  }
  if (span.slot >= 0) {
    if (!first) out += ',';
    out += "\"slot\":";
    append_uint(out, static_cast<std::uint64_t>(span.slot));
  }
  out += "}}";
}

}  // namespace

std::string render_chrome_trace(const TraceRenderInput& input) {
  std::string out;
  out.reserve(4096);
  out += "{\"traceEvents\":[\n";
  bool first = true;
  for (std::size_t tid = 0; tid < input.lanes.size(); ++tid) {
    // A thread_name metadata event per lane, so Perfetto labels the tracks.
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    append_uint(out, tid);
    out += ",\"args\":{\"name\":";
    append_json_string(out, input.lanes[tid].first);
    out += "}}";
  }
  for (std::size_t tid = 0; tid < input.lanes.size(); ++tid) {
    for (const TraceSpan& span : *input.lanes[tid].second) {
      out += ",\n";
      append_span_event(out, span, tid, input.config_ids);
    }
  }
  // schema_version follows the report convention (sim/experiment.hpp,
  // kReportSchemaVersion): additive fields keep the number, renames bump
  // it, tools warn when a file is newer than they understand.
  out += "\n],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{\"schema_version\":1,\"campaign\":";
  append_json_string(out, input.campaign);
  const BuildInfo& bi = build_info();
  out += ",\"build_info\":{\"git_sha\":";
  append_json_string(out, bi.git_sha);
  out += ",\"compiler\":";
  append_json_string(out, bi.compiler);
  out += ",\"compiler_version\":";
  append_json_string(out, bi.compiler_version);
  out += ",\"build_type\":";
  append_json_string(out, bi.build_type);
  out += ",\"flags\":";
  append_json_string(out, bi.flags);
  out += "}}";
  if (input.metrics != nullptr) {
    out += ",\n\"metrics\":";
    append_metrics(out, *input.metrics);
  }
  out += "\n}\n";
  return out;
}

}  // namespace rumor::obs
