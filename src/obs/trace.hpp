// rumor/obs: Chrome trace-event / Perfetto-compatible trace export.
//
// Spans are collected per worker into plain vectors (owner-only writes, no
// locking) and rendered once, after the pool joins, as one JSON document in
// the trace-event format chrome://tracing and ui.perfetto.dev load
// directly:
//
//   { "traceEvents": [ {"name": "block:trials", "cat": "campaign",
//                       "ph": "X", "ts": 12.345, "dur": 3.210,
//                       "pid": 1, "tid": 0,
//                       "args": {"config": "star_n256_sync_push-pull",
//                                "slot": 4}}, ... ],
//     "displayTimeUnit": "ms",
//     "otherData": { "campaign": ..., "build_info": {...} },
//     "metrics": { ...the merged registry snapshot... } }
//
// ts/dur are microseconds. They are rendered in *fixed point* from the
// steady-clock nanosecond timestamps ("%llu.%03llu"), so values up to ~10^5
// seconds are exact in an IEEE double and consumers (tools/trace_report.py)
// can check span nesting and monotonicity without rounding slop. The
// top-level "metrics" key is an extension — the trace-event format ignores
// unknown top-level keys — and is what lets trace_report.py cross-check
// span counts against the metrics registry exactly.
//
// This module renders JSON text directly (integers and fixed-point only):
// it must not depend on sim::Json, which sits above it in the layering.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace rumor::obs {

/// One completed span. `name` must point at a string literal (spans are
/// recorded on the hot path; no per-span allocation). config indexes the
/// campaign's configuration list; slot < 0 means "not slot-addressed"
/// (graph builds, folds, checkpoint writes).
struct TraceSpan {
  const char* name = "";
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint32_t config = 0;
  std::int64_t slot = -1;
  bool has_config = true;
};

/// Everything the renderer needs, borrowed for the duration of the call.
struct TraceRenderInput {
  std::string campaign;
  /// Lane i renders as tid i with the given thread name ("worker 0", ...,
  /// "checkpoint"); spans need not be sorted.
  std::vector<std::pair<std::string, const std::vector<TraceSpan>*>> lanes;
  /// Resolves TraceSpan::config to the report id in span args.
  const std::vector<std::string>* config_ids = nullptr;
  /// Embedded registry snapshot (nullptr = omit the "metrics" key).
  const MetricsSnapshot* metrics = nullptr;
};

/// Renders the complete trace document (newline-terminated).
[[nodiscard]] std::string render_chrome_trace(const TraceRenderInput& input);

/// Appends `s` as a JSON string literal (quotes + escapes) to `out`.
void append_json_string(std::string& out, const std::string& s);

/// Appends nanoseconds as fixed-point microseconds ("12.345").
void append_us_fixed(std::string& out, std::uint64_t ns);

}  // namespace rumor::obs
