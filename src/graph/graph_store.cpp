#include "graph/graph_store.hpp"

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define RUMOR_GRAPH_STORE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "obs/build_info.hpp"

namespace rumor::graph {

// The on-disk format is defined little-endian and this implementation
// writes/reads arrays directly; a big-endian port must add byte-swapping
// (docs/GRAPH_FORMAT.md, "Endianness").
static_assert(std::endian::native == std::endian::little,
              "graph_store.cpp reads/writes the packed CSR format via direct array I/O "
              "and therefore requires a little-endian host");
static_assert(sizeof(NodeId) == 4, "the packed format stores neighbors as u32 node ids");

namespace detail {
/// Private construction hook declared in graph.hpp: wires a Graph's CSR
/// pointers into a mapped store and exposes the contiguous neighbor array
/// for packing.
struct GraphAccess {
  static Graph make_mapped(std::shared_ptr<const void> mapping, const std::uint32_t* offsets32,
                           const std::uint64_t* offsets64, const NodeId* neighbors,
                           NodeId num_nodes, std::size_t num_arcs, std::string name) {
    return Graph(std::move(mapping), offsets32, offsets64, neighbors, num_nodes, num_arcs,
                 std::move(name));
  }
  static const NodeId* neighbors_data(const Graph& g) noexcept { return g.neighbors_; }
};
}  // namespace detail

namespace {

constexpr std::uint64_t kFnvBasis = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a64(const void* data, std::size_t len, std::uint64_t h) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

// Header field byte offsets; error messages cite these so a corrupted file
// can be inspected with any hex dumper.
constexpr std::size_t kOffMagic = 0;     // 8 bytes
constexpr std::size_t kOffVersion = 8;   // u32
constexpr std::size_t kOffFlags = 12;    // u32, bit0 = wide (64-bit) offsets
constexpr std::size_t kOffN = 16;        // u64 node count
constexpr std::size_t kOffArcs = 24;     // u64 arc count = 2m
constexpr std::size_t kOffChecksum = 32; // u64 FNV-1a over offsets||neighbors||name
constexpr std::size_t kOffNameLen = 40;  // u64
constexpr std::size_t kOffProvLen = 48;  // u64
constexpr std::uint32_t kFlagWideOffsets = 1u << 0;

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("graph_store: " + path + ": " + what);
}

void put_u32(std::uint8_t* p, std::uint32_t v) noexcept { std::memcpy(p, &v, sizeof v); }
void put_u64(std::uint8_t* p, std::uint64_t v) noexcept { std::memcpy(p, &v, sizeof v); }
std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// Byte positions of every region, derived from a validated header.
struct Layout {
  bool wide = false;
  std::uint64_t n = 0;
  std::uint64_t arcs = 0;
  std::uint64_t name_len = 0;
  std::uint64_t prov_len = 0;

  [[nodiscard]] std::uint64_t offsets_bytes() const noexcept {
    return (n + 1) * (wide ? 8u : 4u);
  }
  [[nodiscard]] std::uint64_t neighbors_pos() const noexcept {
    return kGraphStoreHeaderBytes + offsets_bytes();
  }
  [[nodiscard]] std::uint64_t name_pos() const noexcept { return neighbors_pos() + arcs * 4; }
  [[nodiscard]] std::uint64_t prov_pos() const noexcept { return name_pos() + name_len; }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return prov_pos() + prov_len; }
  /// Bytes the checksum covers: offsets || neighbors || name (provenance is
  /// excluded so repacking the same graph from a different build leaves the
  /// checksum — and thus campaign spec hashes — unchanged).
  [[nodiscard]] std::uint64_t checksummed_bytes() const noexcept {
    return name_pos() + name_len - kGraphStoreHeaderBytes;
  }
};

/// Validates a 64-byte header against the file size; fills `info` and
/// returns the layout. All error messages name the path and the byte offset
/// of the offending field.
Layout parse_header(const std::uint8_t* hdr, std::uint64_t file_size, const std::string& path,
                    GraphStoreInfo& info) {
  if (file_size < kGraphStoreHeaderBytes) {
    fail(path, "truncated header: file is " + std::to_string(file_size) + " bytes, need " +
                   std::to_string(kGraphStoreHeaderBytes) + " (at byte 0)");
  }
  if (std::memcmp(hdr + kOffMagic, kGraphStoreMagic, sizeof kGraphStoreMagic) != 0) {
    fail(path, "bad magic at byte 0: not a rumor graph store");
  }
  const std::uint32_t version = get_u32(hdr + kOffVersion);
  if (version != kGraphStoreVersion) {
    fail(path, "unsupported format version " + std::to_string(version) + " at byte " +
                   std::to_string(kOffVersion) + " (this build reads version " +
                   std::to_string(kGraphStoreVersion) + ")");
  }
  const std::uint32_t flags = get_u32(hdr + kOffFlags);
  if ((flags & ~kFlagWideOffsets) != 0) {
    fail(path, "unknown flag bits at byte " + std::to_string(kOffFlags));
  }

  Layout lay;
  lay.wide = (flags & kFlagWideOffsets) != 0;
  lay.n = get_u64(hdr + kOffN);
  lay.arcs = get_u64(hdr + kOffArcs);
  lay.name_len = get_u64(hdr + kOffNameLen);
  lay.prov_len = get_u64(hdr + kOffProvLen);

  if (lay.n > 0xffffffffULL) {
    fail(path, "node count " + std::to_string(lay.n) + " at byte " + std::to_string(kOffN) +
                   " exceeds 32-bit node ids");
  }
  if (lay.wide != graph_store_wide_offsets(lay.arcs)) {
    // The width is a function of the arc count, so a mismatch means either
    // field is corrupt; rejecting keeps the encoding canonical.
    fail(path, "offset-width flag at byte " + std::to_string(kOffFlags) +
                   " is inconsistent with arc count at byte " + std::to_string(kOffArcs));
  }
  if (lay.total_bytes() != file_size) {
    fail(path, "file is " + std::to_string(file_size) + " bytes but the header at byte " +
                   std::to_string(kOffN) + " declares a layout of " +
                   std::to_string(lay.total_bytes()) + " bytes");
  }

  info.version = version;
  info.wide_offsets = lay.wide;
  info.n = lay.n;
  info.arcs = lay.arcs;
  info.checksum = get_u64(hdr + kOffChecksum);
  info.file_size = file_size;
  return lay;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string make_provenance(const std::string& source) {
  const obs::BuildInfo& bi = obs::build_info();
  std::string prov = "{\"writer\":\"rumor graph_store v" + std::to_string(kGraphStoreVersion) +
                     "\",\"git_sha\":\"" + json_escape(bi.git_sha) + "\",\"compiler\":\"" +
                     json_escape(bi.compiler) + "\",\"compiler_version\":\"" +
                     json_escape(bi.compiler_version) + "\",\"build_type\":\"" +
                     json_escape(bi.build_type) + "\"";
  if (!source.empty()) prov += ",\"source\":\"" + json_escape(source) + "\"";
  prov += "}";
  return prov;
}

}  // namespace

void write_graph_store(const Graph& g, const std::string& path, const std::string& source) {
  const std::uint64_t n = g.num_nodes();
  const std::uint64_t arcs = static_cast<std::uint64_t>(g.num_edges()) * 2;
  const bool wide = graph_store_wide_offsets(arcs);
  const std::string& name = g.name();
  const std::string provenance = make_provenance(source);

  // Rebuild the offsets array in the stored width from public degrees (so
  // any Graph — owned or already mapped — can be packed).
  std::vector<std::uint8_t> offsets((n + 1) * (wide ? 8u : 4u));
  {
    std::uint64_t off = 0;
    for (std::uint64_t v = 0; v <= n; ++v) {
      if (wide) {
        put_u64(offsets.data() + v * 8, off);
      } else {
        put_u32(offsets.data() + v * 4, static_cast<std::uint32_t>(off));
      }
      if (v < n) off += g.degree(static_cast<NodeId>(v));
    }
  }

  const NodeId* neighbors = detail::GraphAccess::neighbors_data(g);
  std::uint64_t checksum = fnv1a64(offsets.data(), offsets.size(), kFnvBasis);
  checksum = fnv1a64(neighbors, static_cast<std::size_t>(arcs) * sizeof(NodeId), checksum);
  checksum = fnv1a64(name.data(), name.size(), checksum);

  std::uint8_t hdr[kGraphStoreHeaderBytes] = {};
  std::memcpy(hdr + kOffMagic, kGraphStoreMagic, sizeof kGraphStoreMagic);
  put_u32(hdr + kOffVersion, kGraphStoreVersion);
  put_u32(hdr + kOffFlags, wide ? kFlagWideOffsets : 0u);
  put_u64(hdr + kOffN, n);
  put_u64(hdr + kOffArcs, arcs);
  put_u64(hdr + kOffChecksum, checksum);
  put_u64(hdr + kOffNameLen, name.size());
  put_u64(hdr + kOffProvLen, provenance.size());

  // Atomic publish: write a sibling temp file, then rename over the target,
  // so a crash mid-pack never leaves a torn store at `path`.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) fail(path, "cannot create temp file " + tmp);
    out.write(reinterpret_cast<const char*>(hdr), sizeof hdr);
    out.write(reinterpret_cast<const char*>(offsets.data()),
              static_cast<std::streamsize>(offsets.size()));
    out.write(reinterpret_cast<const char*>(neighbors),
              static_cast<std::streamsize>(arcs * sizeof(NodeId)));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    out.write(provenance.data(), static_cast<std::streamsize>(provenance.size()));
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      fail(path, "write failed on temp file " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    fail(path, std::string("rename from temp file failed: ") + std::strerror(err));
  }
}

GraphStoreInfo read_graph_store_info(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path, "cannot open graph store for reading");
  in.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);

  std::uint8_t hdr[kGraphStoreHeaderBytes] = {};
  in.read(reinterpret_cast<char*>(hdr),
          static_cast<std::streamsize>(std::min<std::uint64_t>(file_size, sizeof hdr)));
  if (!in && file_size >= kGraphStoreHeaderBytes) fail(path, "read failed on header");

  GraphStoreInfo info;
  const Layout lay = parse_header(hdr, file_size, path, info);

  info.name.resize(static_cast<std::size_t>(lay.name_len));
  info.provenance.resize(static_cast<std::size_t>(lay.prov_len));
  in.seekg(static_cast<std::streamoff>(lay.name_pos()));
  in.read(info.name.data(), static_cast<std::streamsize>(lay.name_len));
  in.read(info.provenance.data(), static_cast<std::streamsize>(lay.prov_len));
  if (!in) {
    fail(path, "read failed on trailing strings at byte " + std::to_string(lay.name_pos()));
  }
  return info;
}

GraphStoreInfo verify_graph_store(const std::string& path) {
  GraphStoreInfo info = read_graph_store_info(path);
  Layout lay;
  lay.wide = info.wide_offsets;
  lay.n = info.n;
  lay.arcs = info.arcs;
  lay.name_len = info.name.size();
  lay.prov_len = info.provenance.size();

  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path, "cannot open graph store for reading");
  in.seekg(static_cast<std::streamoff>(kGraphStoreHeaderBytes));
  std::uint64_t remaining = lay.checksummed_bytes();
  std::uint64_t checksum = kFnvBasis;
  std::vector<char> buf(1 << 20);
  while (remaining > 0) {
    const std::size_t chunk =
        static_cast<std::size_t>(std::min<std::uint64_t>(remaining, buf.size()));
    in.read(buf.data(), static_cast<std::streamsize>(chunk));
    if (!in) fail(path, "read failed while verifying payload");
    checksum = fnv1a64(buf.data(), chunk, checksum);
    remaining -= chunk;
  }
  if (checksum != info.checksum) {
    fail(path, "checksum mismatch: header at byte " + std::to_string(kOffChecksum) +
                   " declares fnv1a64:" + hex64(info.checksum) + " but the payload hashes to fnv1a64:" +
                   hex64(checksum) + " (corrupt or tampered store)");
  }
  return info;
}

namespace {

#ifdef RUMOR_GRAPH_STORE_MMAP
/// Owns one read-only mmap of a store file for the lifetime of every Graph
/// (and Graph copy) opened from it.
struct Mapping {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;

  Mapping(const Mapping&) = delete;
  Mapping& operator=(const Mapping&) = delete;
  Mapping(const std::uint8_t* d, std::size_t s) noexcept : data(d), size(s) {}
  ~Mapping() {
    if (data != nullptr) ::munmap(const_cast<std::uint8_t*>(data), size);
  }
};

/// mmap()s the whole file read-only; throws with path + errno on failure.
std::shared_ptr<Mapping> map_file(const std::string& path, std::uint64_t& file_size_out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    fail(path, std::string("cannot open graph store for reading: ") + std::strerror(errno));
  }
  struct ::stat st = {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    fail(path, std::string("fstat failed: ") + std::strerror(err));
  }
  file_size_out = static_cast<std::uint64_t>(st.st_size);
  if (file_size_out < kGraphStoreHeaderBytes) {
    ::close(fd);
    fail(path, "truncated header: file is " + std::to_string(file_size_out) + " bytes, need " +
                   std::to_string(kGraphStoreHeaderBytes) + " (at byte 0)");
  }
  // MAP_SHARED + PROT_READ: every process mapping the same store shares the
  // same page-cache pages — the cross-shard dedup the store exists for.
  void* mem = ::mmap(nullptr, static_cast<std::size_t>(file_size_out), PROT_READ, MAP_SHARED, fd, 0);
  const int map_err = errno;
  ::close(fd);
  if (mem == MAP_FAILED) {
    fail(path, std::string("mmap failed: ") + std::strerror(map_err));
  }
  return std::make_shared<Mapping>(static_cast<const std::uint8_t*>(mem),
                                   static_cast<std::size_t>(file_size_out));
}
#else
/// Fallback for platforms without mmap: the "mapping" is the file read into
/// an owned buffer. Same pointer wiring, no page sharing.
struct Mapping {
  std::vector<std::uint8_t> bytes;
  const std::uint8_t* data = nullptr;
};

std::shared_ptr<Mapping> map_file(const std::string& path, std::uint64_t& file_size_out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path, "cannot open graph store for reading");
  in.seekg(0, std::ios::end);
  file_size_out = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  auto m = std::make_shared<Mapping>();
  m->bytes.resize(static_cast<std::size_t>(file_size_out));
  in.read(reinterpret_cast<char*>(m->bytes.data()),
          static_cast<std::streamsize>(m->bytes.size()));
  if (!in) fail(path, "read failed");
  m->data = m->bytes.data();
  return m;
}
#endif

}  // namespace

GraphView open_graph_store(const std::string& path) {
  std::uint64_t file_size = 0;
  std::shared_ptr<Mapping> mapping = map_file(path, file_size);

  GraphStoreInfo info;
  const Layout lay = parse_header(mapping->data, file_size, path, info);

  const std::uint8_t* base = mapping->data;
  const std::uint32_t* offsets32 = nullptr;
  const std::uint64_t* offsets64 = nullptr;
  if (lay.wide) {
    offsets64 = reinterpret_cast<const std::uint64_t*>(base + kGraphStoreHeaderBytes);
  } else {
    offsets32 = reinterpret_cast<const std::uint32_t*>(base + kGraphStoreHeaderBytes);
  }
  const auto* neighbors = reinterpret_cast<const NodeId*>(base + lay.neighbors_pos());
  std::string name(reinterpret_cast<const char*>(base + lay.name_pos()),
                   static_cast<std::size_t>(lay.name_len));

  return detail::GraphAccess::make_mapped(
      std::shared_ptr<const void>(mapping, mapping->data), offsets32, offsets64, neighbors,
      static_cast<NodeId>(lay.n), static_cast<std::size_t>(lay.arcs), std::move(name));
}

std::string graph_store_info_dump(const GraphStoreInfo& info, const std::string& path,
                                  bool verified) {
  std::ostringstream out;
  out << "path:       " << path << "\n";
  out << "format:     RUMORCSR v" << info.version << " (little-endian packed CSR)\n";
  out << "file_size:  " << info.file_size << " bytes\n";
  out << "name:       " << info.name << "\n";
  out << "nodes:      " << info.n << "\n";
  out << "edges:      " << info.num_edges() << "\n";
  out << "arcs:       " << info.arcs << "\n";
  out << "offsets:    " << (info.wide_offsets ? "64-bit" : "32-bit") << "\n";
  out << "checksum:   fnv1a64:" << hex64(info.checksum)
      << (verified ? "  (payload verified)" : "") << "\n";
  out << "provenance: " << (info.provenance.empty() ? "(none)" : info.provenance) << "\n";
  return out.str();
}

}  // namespace rumor::graph
