// rumor/graph: expansion parameters of a graph.
//
// The paper notes (after Theorem 1) that its upper bound makes known
// synchronous push-pull bounds carry over to the asynchronous model — in
// particular the conductance bound T(pp) = O(log n / phi) [6, 17] and the
// vertex-expansion bound T(pp) = O(log^2 n / alpha) [18]. This module
// computes/estimates the parameters so bench E10 can verify those
// transferred bounds empirically:
//
//   * conductance phi(G) = min over cuts S of cut(S) / min(vol(S), vol(V-S)),
//     estimated by a sweep over spectral-ordering prefixes (exact on small
//     graphs via subset enumeration);
//   * vertex expansion alpha(G) = min |boundary(S)| / |S| over |S| <= n/2;
//   * the spectral gap of the lazy random walk, via power iteration.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace rumor::graph {

/// Exact conductance by enumerating all 2^(n-1) cuts. Precondition:
/// n <= 24 (it is O(2^n * n)); intended for tests.
[[nodiscard]] double conductance_exact(const Graph& g);

/// Conductance upper estimate by a spectral sweep: order vertices by the
/// second eigenvector of the lazy random walk (computed by power
/// iteration), scan prefix cuts, return the best. Cheeger's inequality
/// guarantees the result is within sqrt-factors of the truth:
///   phi(G)^2 / 2 <= gap <= 2 * phi_sweep.
[[nodiscard]] double conductance_sweep(const Graph& g);

/// Exact vertex expansion min_{0 < |S| <= n/2} |N(S) \ S| / |S| by subset
/// enumeration. Precondition: n <= 24; intended for tests.
[[nodiscard]] double vertex_expansion_exact(const Graph& g);

/// Spectral gap 1 - lambda_2 of the lazy random-walk matrix
/// W = (I + D^{-1}A)/2, computed by power iteration with deflation of the
/// known top eigenvector (the stationary distribution direction).
/// `iterations` controls convergence (error decays like (l3/l2)^k).
[[nodiscard]] double spectral_gap(const Graph& g, std::uint32_t iterations = 2000);

/// The sweep-cut vertex ordering used by conductance_sweep (exposed for
/// inspection and testing): vertices sorted by their second-eigenvector
/// entry, computed by power iteration.
[[nodiscard]] std::vector<NodeId> spectral_order(const Graph& g,
                                                 std::uint32_t iterations = 2000);

}  // namespace rumor::graph
