#include "graph/expansion.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace rumor::graph {

namespace {

/// Volume of a vertex subset: sum of degrees.
double volume(const Graph& g, std::uint32_t mask_bits, std::uint32_t mask) {
  double vol = 0.0;
  for (std::uint32_t v = 0; v < mask_bits; ++v) {
    if (mask & (1u << v)) vol += g.degree(v);
  }
  return vol;
}

/// Edges crossing the cut defined by `mask`.
double cut_size(const Graph& g, std::uint32_t mask) {
  double cut = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!(mask & (1u << v))) continue;
    for (NodeId w : g.neighbors(v)) {
      if (!(mask & (1u << w))) cut += 1.0;
    }
  }
  return cut;
}

/// Second eigenvector of the lazy walk by power iteration; also returns
/// lambda_2 through `lambda_out` if non-null.
std::vector<double> second_eigenvector(const Graph& g, std::uint32_t iterations,
                                       double* lambda_out) {
  const NodeId n = g.num_nodes();
  assert(n >= 2);
  // Stationary distribution of the walk: pi(v) ~ deg(v). Deflate against
  // it using the D-inner product, under which W is self-adjoint.
  double total_degree = 0.0;
  for (NodeId v = 0; v < n; ++v) total_degree += g.degree(v);

  std::vector<double> x(n);
  // Deterministic, seed-free start vector orthogonal-ish to constants.
  for (NodeId v = 0; v < n; ++v) x[v] = (v % 2 == 0 ? 1.0 : -1.0) + 1.0 / (1.0 + v);
  std::vector<double> next(n);

  auto deflate = [&] {
    // Remove the component along the all-ones right eigenvector with
    // respect to the pi-weighted inner product: x -= (<x,1>_pi) * 1.
    double dot = 0.0;
    for (NodeId v = 0; v < n; ++v) dot += x[v] * g.degree(v);
    dot /= total_degree;
    for (NodeId v = 0; v < n; ++v) x[v] -= dot;
  };
  auto normalize = [&] {
    double norm = 0.0;
    for (double xv : x) norm += xv * xv;
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (double& xv : x) xv /= norm;
    }
  };

  deflate();
  normalize();
  double lambda = 0.0;
  for (std::uint32_t it = 0; it < iterations; ++it) {
    // next = W x with W = (I + D^{-1} A) / 2.
    for (NodeId v = 0; v < n; ++v) {
      double acc = 0.0;
      for (NodeId w : g.neighbors(v)) acc += x[w];
      next[v] = 0.5 * x[v] + 0.5 * acc / static_cast<double>(g.degree(v));
    }
    // Rayleigh quotient before normalization.
    double num = 0.0;
    double den = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      num += x[v] * next[v];
      den += x[v] * x[v];
    }
    lambda = den > 0.0 ? num / den : 0.0;
    x.swap(next);
    deflate();
    normalize();
  }
  if (lambda_out != nullptr) *lambda_out = lambda;
  return x;
}

}  // namespace

double conductance_exact(const Graph& g) {
  const NodeId n = g.num_nodes();
  assert(n >= 2 && n <= 24);
  const double total_vol = 2.0 * static_cast<double>(g.num_edges());
  double best = std::numeric_limits<double>::infinity();
  const std::uint32_t limit = 1u << (n - 1);  // fix vertex n-1 outside S
  for (std::uint32_t mask = 1; mask < limit; ++mask) {
    const double vol = volume(g, n, mask);
    const double other = total_vol - vol;
    const double denom = std::min(vol, other);
    if (denom <= 0.0) continue;
    best = std::min(best, cut_size(g, mask) / denom);
  }
  return best;
}

double vertex_expansion_exact(const Graph& g) {
  const NodeId n = g.num_nodes();
  assert(n >= 2 && n <= 24);
  double best = std::numeric_limits<double>::infinity();
  for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
    const auto size = static_cast<std::uint32_t>(std::popcount(mask));
    if (size > n / 2) continue;
    // |N(S) \ S|
    std::uint32_t boundary = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (mask & (1u << v)) continue;
      for (NodeId w : g.neighbors(v)) {
        if (mask & (1u << w)) {
          ++boundary;
          break;
        }
      }
    }
    best = std::min(best, static_cast<double>(boundary) / size);
  }
  return best;
}

std::vector<NodeId> spectral_order(const Graph& g, std::uint32_t iterations) {
  const auto fiedler = second_eigenvector(g, iterations, nullptr);
  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(),
            [&](NodeId a, NodeId b) { return fiedler[a] < fiedler[b]; });
  return order;
}

double conductance_sweep(const Graph& g) {
  const NodeId n = g.num_nodes();
  assert(n >= 2);
  const auto order = spectral_order(g);
  const double total_vol = 2.0 * static_cast<double>(g.num_edges());

  // Incremental sweep: maintain cut and volume as vertices move into S.
  std::vector<std::uint8_t> in_s(n, 0);
  double vol = 0.0;
  double cut = 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    const NodeId v = order[i];
    in_s[v] = 1;
    vol += g.degree(v);
    for (NodeId w : g.neighbors(v)) {
      cut += in_s[w] ? -1.0 : 1.0;
    }
    const double denom = std::min(vol, total_vol - vol);
    if (denom > 0.0) best = std::min(best, cut / denom);
  }
  return best;
}

double spectral_gap(const Graph& g, std::uint32_t iterations) {
  double lambda = 0.0;
  (void)second_eigenvector(g, iterations, &lambda);
  return 1.0 - lambda;
}

}  // namespace rumor::graph
