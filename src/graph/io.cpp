#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

namespace rumor::graph {

void write_edge_list(const Graph& g, std::ostream& out) {
  out << "# rumor graph: " << g.name() << "\n";
  out << "# nodes: " << g.num_nodes() << " edges: " << g.num_edges() << "\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId w : g.neighbors(v)) {
      if (v < w) out << v << ' ' << w << '\n';
    }
  }
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_edge_list_file: cannot open " + path);
  write_edge_list(g, out);
}

Graph read_edge_list(std::istream& in, std::string name, bool compact_ids) {
  // Every error names the input (`name` is the path when coming through
  // read_edge_list_file) and the 1-based line, so a bad row in a
  // million-line SNAP dump is findable.
  auto fail = [&](std::size_t line_no, const std::string& what) -> std::runtime_error {
    return std::runtime_error("read_edge_list: " + name + ": line " + std::to_string(line_no) +
                              ": " + what);
  };

  std::unordered_map<std::uint64_t, NodeId> remap;
  auto intern = [&](std::uint64_t raw, std::size_t line_no) -> NodeId {
    if (compact_ids) {
      const auto it = remap.emplace(raw, static_cast<NodeId>(remap.size())).first;
      if (remap.size() > 0xffffffffULL) {
        throw fail(line_no, "more than 2^32 - 1 distinct node ids");
      }
      return it->second;
    }
    // Without compaction n = max id + 1 must itself fit a 32-bit NodeId.
    if (raw >= 0xffffffffULL) {
      throw fail(line_no, "id " + std::to_string(raw) + " too large (use compact_ids)");
    }
    return static_cast<NodeId>(raw);
  };

  auto parse_id = [&](const std::string& token, std::size_t line_no) -> std::uint64_t {
    if (token.empty() || token.find_first_not_of("0123456789") != std::string::npos) {
      throw fail(line_no, "malformed node id '" + token + "'");
    }
    try {
      return std::stoull(token);
    } catch (const std::out_of_range&) {
      throw fail(line_no, "id " + token + " out of 64-bit range");
    }
  };

  std::string line;
  std::size_t line_no = 0;
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::uint64_t max_id = 0;
  bool any = false;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and skip blanks.
    if (const auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t\r\v\f") == std::string::npos) continue;
    std::istringstream fields(line);
    std::string tu;
    std::string tv;
    fields >> tu;
    if (!(fields >> tv)) throw fail(line_no, "expected two node ids");
    const std::uint64_t u = parse_id(tu, line_no);
    const std::uint64_t v = parse_id(tv, line_no);
    edges.emplace_back(intern(u, line_no), intern(v, line_no));
    max_id = std::max({max_id, u, v});
    any = true;
  }

  const NodeId n = compact_ids ? static_cast<NodeId>(remap.size())
                               : (any ? static_cast<NodeId>(max_id + 1) : 0);
  GraphBuilder builder(n);
  for (const auto& [a, b] : edges) builder.add_edge(a, b);
  return std::move(builder).build(std::move(name));
}

Graph read_edge_list_file(const std::string& path, bool compact_ids) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_edge_list_file: cannot open " + path);
  return read_edge_list(in, path, compact_ids);
}

}  // namespace rumor::graph
