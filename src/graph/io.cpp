#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

namespace rumor::graph {

void write_edge_list(const Graph& g, std::ostream& out) {
  out << "# rumor graph: " << g.name() << "\n";
  out << "# nodes: " << g.num_nodes() << " edges: " << g.num_edges() << "\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId w : g.neighbors(v)) {
      if (v < w) out << v << ' ' << w << '\n';
    }
  }
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_edge_list_file: cannot open " + path);
  write_edge_list(g, out);
}

Graph read_edge_list(std::istream& in, std::string name, bool compact_ids) {
  std::unordered_map<std::uint64_t, NodeId> remap;
  auto intern = [&](std::uint64_t raw, std::size_t line_no) -> NodeId {
    if (compact_ids) {
      return remap.emplace(raw, static_cast<NodeId>(remap.size())).first->second;
    }
    if (raw > 0xffffffffULL) {
      throw std::runtime_error("read_edge_list: line " + std::to_string(line_no) +
                               ": id too large (use compact_ids)");
    }
    return static_cast<NodeId>(raw);
  };

  std::string line;
  std::size_t line_no = 0;
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::uint64_t max_id = 0;
  bool any = false;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and skip blanks.
    if (const auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    if (!(fields >> u)) continue;  // blank after comment strip
    if (!(fields >> v)) {
      throw std::runtime_error("read_edge_list: line " + std::to_string(line_no) +
                               ": expected two node ids");
    }
    edges.emplace_back(intern(u, line_no), intern(v, line_no));
    max_id = std::max({max_id, u, v});
    any = true;
  }

  const NodeId n = compact_ids ? static_cast<NodeId>(remap.size())
                               : (any ? static_cast<NodeId>(max_id + 1) : 0);
  GraphBuilder builder(n);
  for (const auto& [a, b] : edges) builder.add_edge(a, b);
  return std::move(builder).build(std::move(name));
}

Graph read_edge_list_file(const std::string& path, bool compact_ids) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_edge_list_file: cannot open " + path);
  return read_edge_list(in, path, compact_ids);
}

}  // namespace rumor::graph
