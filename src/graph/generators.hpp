// rumor/graph: generators for every topology the paper discusses.
//
// Deterministic families: complete, star, double-star, path, cycle, torus
// grid, hypercube, complete binary tree, lollipop, barbell, and the
// chain-of-stars "gap" family standing in for the Acan et al. construction
// (see DESIGN.md, Substitutions).
//
// Random families (all take an engine; connectivity is the caller's check):
// Erdos-Renyi G(n, p), random d-regular (configuration model with rejection
// and connectivity retry), Chung-Lu power-law, Barabasi-Albert preferential
// attachment.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "rng/rng.hpp"

namespace rumor::graph {

// --- Deterministic families ------------------------------------------------

/// K_n: every pair adjacent. Regular. Sync pp completes in O(log n) rounds.
[[nodiscard]] Graph complete(NodeId n);

/// Star S_n: node 0 is the hub, nodes 1..n-1 are leaves. The paper's
/// separating example: sync pp <= 2 rounds, async pp = Theta(log n).
[[nodiscard]] Graph star(NodeId n);

/// Double star: two hubs joined by an edge, each with (n-2)/2 leaves.
/// A classic sync-fast / async-slow topology used by E4.
[[nodiscard]] Graph double_star(NodeId n);

/// Path P_n: 0 - 1 - ... - n-1. Diameter n-1; spreading time Theta(n).
[[nodiscard]] Graph path(NodeId n);

/// Cycle C_n. 2-regular; spreading time Theta(n).
[[nodiscard]] Graph cycle(NodeId n);

/// 2-D torus of side `side` (n = side^2). 4-regular, diameter Theta(side).
[[nodiscard]] Graph torus(NodeId side);

/// Hypercube Q_d on n = 2^d nodes; node ids are bit strings, neighbors
/// differ in one bit. The topology where pp-a is Richardson's model.
[[nodiscard]] Graph hypercube(std::uint32_t dimension);

/// Complete binary tree with n nodes (heap indexing).
[[nodiscard]] Graph complete_binary_tree(NodeId n);

/// Lollipop: clique on `clique_size` nodes with a path of `path_len` nodes
/// attached. Mixes a fast expander with a slow tail.
[[nodiscard]] Graph lollipop(NodeId clique_size, NodeId path_len);

/// Barbell: two cliques of `clique_size` joined by a path of `path_len`.
[[nodiscard]] Graph barbell(NodeId clique_size, NodeId path_len);

/// Chain of stars: `hubs` hub nodes in a path, hub i joined to hub i+1, and
/// each hub dressed with `leaves_per_hub` pendant leaves. Sync and async
/// push-pull both pay ~deg/2 per chain hop here (the per-edge contact rates
/// coincide), making this a *null* family for the sync/async gap — used by
/// E4 as the control row and by E6 as a high-degree-relay stress case.
[[nodiscard]] Graph chain_of_stars(NodeId hubs, NodeId leaves_per_hub);

/// Bundle chain (the "Acan gap" family, DESIGN.md §3): relay nodes
/// r_0 .. r_{len} in a chain where consecutive relays are joined through
/// `width` parallel helper nodes (each helper adjacent to both relays; no
/// direct relay-relay edge).
///
/// Asynchronously, once r_i is informed, helpers pull from it (each at rate
/// 1/2), and every informed helper pushes to r_{i+1} at rate 1/2 — a
/// combined rate that grows linearly with the informed-helper count, so the
/// hop is crossed in Theta(1/sqrt(width)) expected time. Synchronously the
/// round barrier caps progress at one hop per round (and in fact ~2 rounds
/// per hop), so T(pp) = Theta(len) while T(pp-a) = O(len/sqrt(width) +
/// log n). With width ~ len^2 this realizes the polynomial sync/async gap
/// of Acan et al. (up to Theta(n^{1/3}) as len^3 ~ n), which Theorem 2
/// bounds by O(sqrt(n)).
[[nodiscard]] Graph bundle_chain(NodeId len, NodeId width);

/// Wheel W_n: a hub adjacent to every rim node, rim nodes in a cycle.
/// Interpolates between star (hub shortcuts) and cycle (local links).
[[nodiscard]] Graph wheel(NodeId n);

/// Complete bipartite K_{a,b}: sides [0, a) and [a, a+b). K_{1,n-1} is the
/// star; balanced sides give a dense 2-round spreader.
[[nodiscard]] Graph complete_bipartite(NodeId a, NodeId b);

/// 3-D torus of side `side` (n = side^3), 6-regular.
[[nodiscard]] Graph torus3d(NodeId side);

// --- Random families ---------------------------------------------------------

/// Watts-Strogatz small world: a ring lattice where each node links to its
/// `k/2` nearest neighbors per side, with each edge's far endpoint rewired
/// to a uniform node with probability `rewire_p`. Interpolates cycle
/// (p = 0, spreading Theta(n)) to near-random (p = 1, Theta(log n)).
/// Precondition: k even, 2 <= k < n.
[[nodiscard]] Graph watts_strogatz(NodeId n, std::uint32_t k, double rewire_p, rng::Engine& eng);

/// Erdos-Renyi G(n, p): each pair independently an edge. For connectivity
/// w.h.p. choose p >= (1 + eps) ln n / n. O(n^2) for p >= ~1/n; uses the
/// geometric skip method for sparse p, O(n + m).
[[nodiscard]] Graph erdos_renyi(NodeId n, double p, rng::Engine& eng);

/// Random d-regular graph by the configuration model: pair up n*d stubs
/// uniformly, reject self-loops/multi-edges, retry until simple (and
/// optionally connected). Precondition: n*d even, d < n.
struct RandomRegularOptions {
  bool require_connected = true;
  std::uint32_t max_attempts = 1000;
};
[[nodiscard]] Graph random_regular(NodeId n, std::uint32_t d, rng::Engine& eng,
                                   const RandomRegularOptions& options = {});

/// Chung-Lu graph with expected power-law degrees: node i gets weight
/// w_i = c * (i + i0)^{-1/(beta-1)}; edge {i,j} appears independently with
/// probability min(1, w_i w_j / sum_w). beta in (2, 3) models social
/// networks (the regime where async pp beats sync pp per [16], [9]).
struct ChungLuOptions {
  double beta = 2.5;          // power-law exponent
  double average_degree = 8;  // scales the weights
};
[[nodiscard]] Graph chung_lu(NodeId n, const ChungLuOptions& options, rng::Engine& eng);

/// Barabasi-Albert preferential attachment: start from a small clique, each
/// new node attaches `edges_per_node` edges to existing nodes chosen
/// proportional to degree (by the repeated-endpoint trick, O(m)).
[[nodiscard]] Graph preferential_attachment(NodeId n, std::uint32_t edges_per_node,
                                            rng::Engine& eng);

/// Extracts the largest connected component as its own graph (node ids are
/// re-labelled densely, order preserved). Random families use this to
/// guarantee the connectivity precondition of the spreading processes.
[[nodiscard]] Graph largest_component(const Graph& g);

}  // namespace rumor::graph
