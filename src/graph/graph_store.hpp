// rumor/graph: the packed, memory-mapped on-disk CSR graph store.
//
// Campaigns at planet scale (n ~ 10^8..10^9) cannot afford to rebuild — or
// even duplicate — their one dominant data structure per configuration. A
// *graph store* is the frozen CSR written to disk once, in a versioned
// little-endian format with compact offsets (32-bit whenever the arc count
// fits, halving the offsets array for every graph below ~2^31 edges), a
// payload checksum, and a provenance header. Opening a store mmap()s the
// file and returns an ordinary `Graph` whose CSR pointers aim straight into
// the mapping: no parse, no copy, demand-paged by the OS, shared read-only
// across every configuration, trial, thread, and `--shard` process that
// opens the same file (the page cache deduplicates them). `GraphView` below
// names that role; it is the same type the engines already consume, so a
// mapped graph is bit-for-bit interchangeable with the in-memory graph it
// was packed from.
//
// The normative byte-level format specification lives in
// docs/GRAPH_FORMAT.md; tools/graph_pack_main.cpp is the packing CLI.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.hpp"

namespace rumor::graph {

/// A graph opened from a packed store: an immutable, mmap-backed view. The
/// alias documents intent — the type is `Graph` on purpose, so engines,
/// couplings, and dynamics overlays consume mapped and in-memory graphs
/// through one adjacency interface.
using GraphView = Graph;

/// File identification. The 8-byte magic doubles as a human-greppable tag;
/// `version` bumps on any layout change and readers reject what they do not
/// understand.
inline constexpr char kGraphStoreMagic[8] = {'R', 'U', 'M', 'O', 'R', 'C', 'S', 'R'};
inline constexpr std::uint32_t kGraphStoreVersion = 1;
/// Fixed header size; the CSR payload starts here (64 bytes keeps the
/// offsets array 8-byte aligned for direct mapped access).
inline constexpr std::size_t kGraphStoreHeaderBytes = 64;

/// The offset-width selection rule: offsets index the flat neighbor array
/// of length `arcs` = 2m and the terminal offset equals `arcs` itself, so
/// the compact 32-bit encoding is usable exactly when arcs <= 2^32 - 1.
[[nodiscard]] constexpr bool graph_store_wide_offsets(std::uint64_t arcs) noexcept {
  return arcs > 0xffffffffULL;
}

/// A store's parsed header (plus the trailing strings): everything needed
/// to identify a file without touching the CSR payload. `checksum` is the
/// FNV-1a 64 fingerprint of the payload (offsets || neighbors || name) that
/// campaign checkpoints hash file-backed graphs by.
struct GraphStoreInfo {
  std::uint32_t version = 0;
  bool wide_offsets = false;   // 64-bit offsets (arcs exceeded 2^32 - 1)
  std::uint64_t n = 0;         // node count
  std::uint64_t arcs = 0;      // directed adjacency entries = 2m
  std::uint64_t checksum = 0;  // FNV-1a 64 over offsets || neighbors || name
  std::string name;            // the packed graph's Graph::name()
  std::string provenance;      // packer build provenance, one JSON object
  std::uint64_t file_size = 0;

  [[nodiscard]] std::uint64_t num_edges() const noexcept { return arcs / 2; }
};

/// Packs `g` into a store at `path` (atomically: sibling temp file +
/// rename, so a crashed pack never leaves a torn store). `source` is a free
/// note recorded in the provenance header, e.g. the edge-list file or
/// generator spec the graph came from. Throws std::runtime_error naming the
/// path on any I/O failure.
void write_graph_store(const Graph& g, const std::string& path, const std::string& source = "");

/// Reads and validates the header + trailing strings only — O(1) in the
/// graph size. Throws std::runtime_error naming the path and byte offset of
/// the first malformed field.
[[nodiscard]] GraphStoreInfo read_graph_store_info(const std::string& path);

/// Recomputes the payload checksum over the whole file (O(file size)) and
/// throws std::runtime_error on any mismatch or layout error; returns the
/// verified header. The expensive integrity pass `open_graph_store`
/// deliberately skips.
[[nodiscard]] GraphStoreInfo verify_graph_store(const std::string& path);

/// Opens a store as an immutable mmap-backed GraphView. Validates the
/// header and that the file size matches the declared layout (so no access
/// through the view can run off the mapping), but does not recompute the
/// payload checksum — use verify_graph_store for that. Throws
/// std::runtime_error naming the path and byte offset on any problem.
[[nodiscard]] GraphView open_graph_store(const std::string& path);

/// Human-readable header dump (the `graph_pack --info` output): one
/// "key: value" line per field. `verified` appends the integrity note.
[[nodiscard]] std::string graph_store_info_dump(const GraphStoreInfo& info,
                                                const std::string& path, bool verified = false);

}  // namespace rumor::graph
