// rumor/graph: immutable compressed-sparse-row graphs.
//
// Every protocol engine's inner loop is "pick a uniformly random neighbor of
// v", so the adjacency representation is a frozen CSR: one offsets array and
// one flat neighbor array. Uniform neighbor selection is a single bounded
// uniform plus one indexed load.
//
// Graphs in this library are simple (no self-loops, no parallel edges),
// undirected, and — for rumor-spreading purposes — expected to be connected;
// `is_connected()` in properties.hpp lets callers enforce that.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "rng/rng.hpp"

namespace rumor::graph {

/// Node identifier; dense in [0, n).
using NodeId = std::uint32_t;

/// An undirected edge as an (unordered) pair of endpoints.
struct Edge {
  NodeId a = 0;
  NodeId b = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

class Graph;

/// Mutable edge-list accumulator; `build()` freezes it into a CSR Graph.
///
/// The builder deduplicates and rejects self-loops at build time so that all
/// generators can add edges without tracking duplicates themselves.
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

  [[nodiscard]] NodeId num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] std::size_t num_edges_added() const noexcept { return edges_.size(); }

  /// Records an undirected edge {a, b}. Self-loops are ignored (they are
  /// meaningless for rumor spreading); duplicates are removed at build().
  /// Precondition: a < num_nodes() && b < num_nodes().
  void add_edge(NodeId a, NodeId b);

  /// Returns true if {a, b} was already added (linear in edges added so
  /// far for the exact check is avoided — uses a sorted snapshot; intended
  /// for generator-internal rejection loops on small candidate sets).
  [[nodiscard]] bool has_edge_slow(NodeId a, NodeId b) const noexcept;

  /// Freezes into an immutable Graph; the builder is left empty.
  [[nodiscard]] Graph build(std::string name) &&;

 private:
  NodeId num_nodes_;
  std::vector<Edge> edges_;
};

/// Immutable simple undirected graph in CSR form.
class Graph {
 public:
  /// Number of nodes n.
  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(offsets_.size() - 1);
  }

  /// Number of undirected edges m.
  [[nodiscard]] std::size_t num_edges() const noexcept { return neighbors_.size() / 2; }

  /// deg(v): the number of neighbors of v.
  [[nodiscard]] std::uint32_t degree(NodeId v) const noexcept {
    assert(v < num_nodes());
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Gamma(v): the neighbors of v, sorted ascending.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const noexcept {
    assert(v < num_nodes());
    return {neighbors_.data() + offsets_[v], neighbors_.data() + offsets_[v + 1]};
  }

  /// Uniformly random neighbor of v — the protocol primitive "v contacts a
  /// uniformly random neighbor". Precondition: degree(v) > 0.
  template <class Eng>
  [[nodiscard]] NodeId random_neighbor(NodeId v, Eng& eng) const noexcept {
    const auto deg = degree(v);
    assert(deg > 0 && "random_neighbor on an isolated node");
    return neighbors_[offsets_[v] + rng::uniform_below(eng, deg)];
  }

  /// The i-th neighbor of v in sorted order; used by couplings that need a
  /// stable enumeration of Gamma(v). Precondition: i < degree(v).
  [[nodiscard]] NodeId neighbor_at(NodeId v, std::uint32_t i) const noexcept {
    assert(i < degree(v));
    return neighbors_[offsets_[v] + i];
  }

  /// Index of w within neighbors(v), or degree(v) if absent. O(log deg).
  [[nodiscard]] std::uint32_t neighbor_index(NodeId v, NodeId w) const noexcept;

  /// True iff {v, w} is an edge. O(log deg(v)).
  [[nodiscard]] bool has_edge(NodeId v, NodeId w) const noexcept {
    return neighbor_index(v, w) < degree(v);
  }

  /// True iff every node has the same degree (Corollary 3's hypothesis).
  [[nodiscard]] bool is_regular() const noexcept;

  /// Human-readable generator tag, e.g. "hypercube(d=10)".
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  friend class GraphBuilder;

  Graph(std::vector<std::size_t> offsets, std::vector<NodeId> neighbors, std::string name)
      : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)), name_(std::move(name)) {}

  std::vector<std::size_t> offsets_;  // size n + 1
  std::vector<NodeId> neighbors_;     // size 2m, sorted within each node's slice
  std::string name_;
};

}  // namespace rumor::graph
