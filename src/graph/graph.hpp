// rumor/graph: immutable compressed-sparse-row graphs.
//
// Every protocol engine's inner loop is "pick a uniformly random neighbor of
// v", so the adjacency representation is a frozen CSR: one offsets array and
// one flat neighbor array. Uniform neighbor selection is a single bounded
// uniform plus one indexed load.
//
// A Graph reads its CSR arrays through raw pointers, so the same type serves
// two storage backends behind one adjacency interface:
//
//   * owned — GraphBuilder::build() freezes edges into vectors the Graph
//     owns (every generator and the edge-list reader produce these);
//   * mapped — graph_store.hpp opens a packed on-disk CSR via mmap and hands
//     the Graph pointers into the mapping (plus a shared handle keeping it
//     alive). Offsets in a packed store may be 32-bit (chosen at pack time
//     when 2m fits); the accessors branch once on the stored width.
//
// Engines, couplings, and dynamics overlays are agnostic to the backend: a
// mapped graph is bit-for-bit interchangeable with the in-memory graph it
// was packed from (tests/test_graph_store.cpp).
//
// Graphs in this library are simple (no self-loops, no parallel edges),
// undirected, and — for rumor-spreading purposes — expected to be connected;
// `is_connected()` in properties.hpp lets callers enforce that.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "rng/rng.hpp"

namespace rumor::graph {

/// Node identifier; dense in [0, n).
using NodeId = std::uint32_t;

/// An undirected edge as an (unordered) pair of endpoints.
struct Edge {
  NodeId a = 0;
  NodeId b = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

class Graph;

namespace detail {
/// graph_store.cpp's private construction hook for mapped graphs; keeps the
/// pointer-wiring constructor out of the public Graph surface.
struct GraphAccess;
}  // namespace detail

/// Mutable edge-list accumulator; `build()` freezes it into a CSR Graph.
///
/// The builder deduplicates and rejects self-loops at build time so that all
/// generators can add edges without tracking duplicates themselves.
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

  [[nodiscard]] NodeId num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] std::size_t num_edges_added() const noexcept { return edges_.size(); }

  /// Records an undirected edge {a, b}. Self-loops are ignored (they are
  /// meaningless for rumor spreading); duplicates are removed at build().
  /// Precondition: a < num_nodes() && b < num_nodes().
  void add_edge(NodeId a, NodeId b);

  /// Returns true if {a, b} was already added (linear in edges added so
  /// far for the exact check is avoided — uses a sorted snapshot; intended
  /// for generator-internal rejection loops on small candidate sets).
  [[nodiscard]] bool has_edge_slow(NodeId a, NodeId b) const noexcept;

  /// Freezes into an immutable Graph; the builder is left empty.
  [[nodiscard]] Graph build(std::string name) &&;

 private:
  NodeId num_nodes_;
  std::vector<Edge> edges_;
};

/// Immutable simple undirected graph in CSR form.
class Graph {
 public:
  /// Number of nodes n.
  [[nodiscard]] NodeId num_nodes() const noexcept { return num_nodes_; }

  /// Number of undirected edges m.
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_arcs_ / 2; }

  /// deg(v): the number of neighbors of v.
  [[nodiscard]] std::uint32_t degree(NodeId v) const noexcept {
    assert(v < num_nodes());
    return static_cast<std::uint32_t>(offset(v + 1) - offset(v));
  }

  /// Gamma(v): the neighbors of v, sorted ascending.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const noexcept {
    assert(v < num_nodes());
    return {neighbors_ + offset(v), neighbors_ + offset(v + 1)};
  }

  /// Uniformly random neighbor of v — the protocol primitive "v contacts a
  /// uniformly random neighbor". Precondition: degree(v) > 0.
  template <class Eng>
  [[nodiscard]] NodeId random_neighbor(NodeId v, Eng& eng) const noexcept {
    const auto deg = degree(v);
    assert(deg > 0 && "random_neighbor on an isolated node");
    return neighbors_[offset(v) + rng::uniform_below(eng, deg)];
  }

  /// The i-th neighbor of v in sorted order; used by couplings that need a
  /// stable enumeration of Gamma(v). Precondition: i < degree(v).
  [[nodiscard]] NodeId neighbor_at(NodeId v, std::uint32_t i) const noexcept {
    assert(i < degree(v));
    return neighbors_[offset(v) + i];
  }

  /// Index of w within neighbors(v), or degree(v) if absent. O(log deg).
  [[nodiscard]] std::uint32_t neighbor_index(NodeId v, NodeId w) const noexcept;

  /// True iff {v, w} is an edge. O(log deg(v)).
  [[nodiscard]] bool has_edge(NodeId v, NodeId w) const noexcept {
    return neighbor_index(v, w) < degree(v);
  }

  /// True iff every node has the same degree (Corollary 3's hypothesis).
  [[nodiscard]] bool is_regular() const noexcept;

  /// True when the CSR arrays live in a mapped graph store rather than
  /// owned vectors (diagnostics only; behavior is identical either way).
  [[nodiscard]] bool is_mapped() const noexcept { return mapping_ != nullptr; }

  /// Human-readable generator tag, e.g. "hypercube(d=10)".
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  friend class GraphBuilder;
  friend struct detail::GraphAccess;

  /// CSR offset of v's adjacency slice. Mapped stores may use the compact
  /// 32-bit encoding; owned storage is always 64-bit. The branch is
  /// perfectly predicted (the width never changes within a graph).
  [[nodiscard]] std::size_t offset(NodeId v) const noexcept {
    return offsets32_ != nullptr ? offsets32_[v] : static_cast<std::size_t>(offsets64_[v]);
  }

  /// Owned-storage constructor (GraphBuilder).
  Graph(std::vector<std::uint64_t> offsets, std::vector<NodeId> neighbors, std::string name)
      : owned_offsets_(std::move(offsets)),
        owned_neighbors_(std::move(neighbors)),
        offsets64_(owned_offsets_.data()),
        neighbors_(owned_neighbors_.data()),
        num_nodes_(static_cast<NodeId>(owned_offsets_.size() - 1)),
        num_arcs_(owned_neighbors_.size()),
        name_(std::move(name)) {}

  /// Mapped-storage constructor (detail::GraphAccess / graph_store.cpp).
  /// Exactly one of offsets32/offsets64 is non-null; `mapping` keeps the
  /// bytes the pointers reference alive for the Graph's lifetime.
  Graph(std::shared_ptr<const void> mapping, const std::uint32_t* offsets32,
        const std::uint64_t* offsets64, const NodeId* neighbors, NodeId num_nodes,
        std::size_t num_arcs, std::string name)
      : mapping_(std::move(mapping)),
        offsets32_(offsets32),
        offsets64_(offsets64),
        neighbors_(neighbors),
        num_nodes_(num_nodes),
        num_arcs_(num_arcs),
        name_(std::move(name)) {}

  // Owned backend (empty for mapped graphs). Copy/move rules: the compiler-
  // generated copy would leave the pointers aiming at the source's vectors,
  // so spell them out to re-anchor.
  std::vector<std::uint64_t> owned_offsets_;  // size n + 1
  std::vector<NodeId> owned_neighbors_;       // size 2m, sorted per node slice
  /// Mapped backend: opaque handle keeping an mmap'd store alive.
  std::shared_ptr<const void> mapping_;

  const std::uint32_t* offsets32_ = nullptr;  // mapped compact offsets, or null
  const std::uint64_t* offsets64_ = nullptr;  // owned / mapped wide offsets
  const NodeId* neighbors_ = nullptr;
  NodeId num_nodes_ = 0;
  std::size_t num_arcs_ = 0;  // 2m
  std::string name_;

 public:
  Graph(const Graph& other) { *this = other; }
  Graph& operator=(const Graph& other) {
    if (this == &other) return *this;
    owned_offsets_ = other.owned_offsets_;
    owned_neighbors_ = other.owned_neighbors_;
    mapping_ = other.mapping_;
    num_nodes_ = other.num_nodes_;
    num_arcs_ = other.num_arcs_;
    name_ = other.name_;
    if (other.mapping_ != nullptr) {
      offsets32_ = other.offsets32_;
      offsets64_ = other.offsets64_;
      neighbors_ = other.neighbors_;
    } else {
      offsets32_ = nullptr;
      offsets64_ = owned_offsets_.data();
      neighbors_ = owned_neighbors_.data();
    }
    return *this;
  }
  Graph(Graph&& other) noexcept { *this = std::move(other); }
  Graph& operator=(Graph&& other) noexcept {
    if (this == &other) return *this;
    owned_offsets_ = std::move(other.owned_offsets_);
    owned_neighbors_ = std::move(other.owned_neighbors_);
    mapping_ = std::move(other.mapping_);
    num_nodes_ = other.num_nodes_;
    num_arcs_ = other.num_arcs_;
    name_ = std::move(other.name_);
    if (mapping_ != nullptr) {
      offsets32_ = other.offsets32_;
      offsets64_ = other.offsets64_;
      neighbors_ = other.neighbors_;
    } else {
      // Moved vectors keep their heap buffers, so re-anchoring is exact.
      offsets32_ = nullptr;
      offsets64_ = owned_offsets_.data();
      neighbors_ = owned_neighbors_.data();
    }
    other.offsets32_ = nullptr;
    other.offsets64_ = nullptr;
    other.neighbors_ = nullptr;
    other.num_nodes_ = 0;
    other.num_arcs_ = 0;
    return *this;
  }
  ~Graph() = default;
};

}  // namespace rumor::graph
