// rumor/graph: structural properties used to sanity-check generators and to
// provide per-graph lower bounds for the experiments.
//
// Two facts from the literature anchor our measurements:
//   * T(pp) >= ecc(u) rounds (one round extends the informed set by at most
//     one hop from u), so eccentricity is a per-source lower bound.
//   * The paper's Theorem 1 footnote uses that T_{1/n}(pp) = Omega(log n)
//     on regular graphs; degree statistics let tests target that regime.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace rumor::graph {

/// Labels each node with a component id in [0, num_components).
struct Components {
  std::vector<NodeId> label;
  NodeId num_components = 0;
};

[[nodiscard]] Components connected_components(const Graph& g);

[[nodiscard]] bool is_connected(const Graph& g);

/// BFS hop distances from `source`; unreachable nodes get UINT32_MAX.
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source);

/// Eccentricity of `source`: max BFS distance to any node.
/// Precondition: g connected.
[[nodiscard]] std::uint32_t eccentricity(const Graph& g, NodeId source);

/// Exact diameter by BFS from every node — O(n m); intended for the test and
/// bench scales (n <= ~10^5 sparse).
[[nodiscard]] std::uint32_t diameter(const Graph& g);

/// Degree distribution summary.
struct DegreeStats {
  std::uint32_t min = 0;
  std::uint32_t max = 0;
  double mean = 0.0;
  bool regular = false;
};

[[nodiscard]] DegreeStats degree_stats(const Graph& g);

/// sum_v 1/deg(v) over neighbors of v for every v — the per-node contact
/// probability pi(v) = (1/n) * sum_{w in Gamma(v)} 1/deg(w) from the
/// Section 5 analysis (probability v is contacted in a random step).
/// Satisfies sum_v pi(v) = 1.
[[nodiscard]] std::vector<double> contact_probabilities(const Graph& g);

}  // namespace rumor::graph
