// rumor/graph: plain-text graph serialization.
//
// Interop format: the ubiquitous whitespace-separated edge list, one
// "u v" pair per line, '#' comments, as consumed and produced by SNAP,
// NetworkX, and most graph tools — so measured topologies (e.g. real
// social networks, the paper's motivating domain) can be loaded and the
// generated families exported for external plotting.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace rumor::graph {

/// Writes `g` as an edge list (one undirected edge per line, endpoints in
/// ascending order, preceded by a comment header with n and m).
void write_edge_list(const Graph& g, std::ostream& out);
void write_edge_list_file(const Graph& g, const std::string& path);

/// Reads an edge list. By default node ids are preserved (n = max id + 1),
/// so write/read round-trips exactly; with `compact_ids` set, sparse ids
/// are relabelled to [0, n) in first-appearance order (useful for SNAP
/// dumps with large arbitrary ids). Self-loops and duplicates are dropped
/// (Graph invariants). Lines starting with '#' and blank lines are
/// ignored; '#' also starts an inline comment; tokens after the first two
/// ids on a line are ignored (weight columns). Throws std::runtime_error —
/// always naming the input (`name`, the path when reading a file) and the
/// 1-based line — on malformed ids, a lone id, or (without compaction) ids
/// >= 2^32 - 1 (n = max id + 1 must fit a 32-bit NodeId).
[[nodiscard]] Graph read_edge_list(std::istream& in, std::string name = "edge_list",
                                   bool compact_ids = false);
[[nodiscard]] Graph read_edge_list_file(const std::string& path, bool compact_ids = false);

}  // namespace rumor::graph
