#include "graph/properties.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace rumor::graph {

Components connected_components(const Graph& g) {
  const NodeId n = g.num_nodes();
  Components comp;
  comp.label.assign(n, std::numeric_limits<NodeId>::max());
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < n; ++start) {
    if (comp.label[start] != std::numeric_limits<NodeId>::max()) continue;
    const NodeId id = comp.num_components++;
    comp.label[start] = id;
    stack.push_back(start);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (NodeId w : g.neighbors(v)) {
        if (comp.label[w] == std::numeric_limits<NodeId>::max()) {
          comp.label[w] = id;
          stack.push_back(w);
        }
      }
    }
  }
  return comp;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  return connected_components(g).num_components == 1;
}

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source) {
  assert(source < g.num_nodes());
  std::vector<std::uint32_t> dist(g.num_nodes(), std::numeric_limits<std::uint32_t>::max());
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    for (NodeId w : g.neighbors(v)) {
      if (dist[w] == std::numeric_limits<std::uint32_t>::max()) {
        dist[w] = dist[v] + 1;
        frontier.push(w);
      }
    }
  }
  return dist;
}

std::uint32_t eccentricity(const Graph& g, NodeId source) {
  const auto dist = bfs_distances(g, source);
  std::uint32_t ecc = 0;
  for (std::uint32_t d : dist) {
    assert(d != std::numeric_limits<std::uint32_t>::max() && "graph must be connected");
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t diameter(const Graph& g) {
  std::uint32_t diam = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) diam = std::max(diam, eccentricity(g, v));
  return diam;
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats s;
  const NodeId n = g.num_nodes();
  if (n == 0) return s;
  s.min = std::numeric_limits<std::uint32_t>::max();
  double total = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    const auto d = g.degree(v);
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
    total += d;
  }
  s.mean = total / static_cast<double>(n);
  s.regular = (s.min == s.max);
  return s;
}

std::vector<double> contact_probabilities(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<double> pi(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    double sum = 0.0;
    for (NodeId w : g.neighbors(v)) sum += 1.0 / static_cast<double>(g.degree(w));
    pi[v] = sum / static_cast<double>(n);
  }
  return pi;
}

}  // namespace rumor::graph
