#include "graph/generators.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "graph/properties.hpp"
#include "rng/discrete.hpp"

namespace rumor::graph {

namespace {

std::string fmt_name(const char* fmt, auto... args) {
  char buf[128];
  std::snprintf(buf, sizeof buf, fmt, args...);
  return std::string(buf);
}

}  // namespace

Graph complete(NodeId n) {
  assert(n >= 2);
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) b.add_edge(i, j);
  }
  return std::move(b).build(fmt_name("complete(n=%u)", n));
}

Graph star(NodeId n) {
  assert(n >= 2);
  GraphBuilder b(n);
  for (NodeId i = 1; i < n; ++i) b.add_edge(0, i);
  return std::move(b).build(fmt_name("star(n=%u)", n));
}

Graph double_star(NodeId n) {
  assert(n >= 4);
  GraphBuilder b(n);
  // Hubs 0 and 1; leaves alternate between them.
  b.add_edge(0, 1);
  for (NodeId i = 2; i < n; ++i) b.add_edge(i % 2 == 0 ? 0 : 1, i);
  return std::move(b).build(fmt_name("double_star(n=%u)", n));
}

Graph path(NodeId n) {
  assert(n >= 2);
  GraphBuilder b(n);
  for (NodeId i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1);
  return std::move(b).build(fmt_name("path(n=%u)", n));
}

Graph cycle(NodeId n) {
  assert(n >= 3);
  GraphBuilder b(n);
  for (NodeId i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1);
  b.add_edge(n - 1, 0);
  return std::move(b).build(fmt_name("cycle(n=%u)", n));
}

Graph torus(NodeId side) {
  assert(side >= 3);
  const NodeId n = side * side;
  GraphBuilder b(n);
  auto id = [side](NodeId r, NodeId c) { return r * side + c; };
  for (NodeId r = 0; r < side; ++r) {
    for (NodeId c = 0; c < side; ++c) {
      b.add_edge(id(r, c), id(r, (c + 1) % side));
      b.add_edge(id(r, c), id((r + 1) % side, c));
    }
  }
  return std::move(b).build(fmt_name("torus(side=%u)", side));
}

Graph hypercube(std::uint32_t dimension) {
  assert(dimension >= 1 && dimension < 31);
  const NodeId n = NodeId{1} << dimension;
  GraphBuilder b(n);
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t bit = 0; bit < dimension; ++bit) {
      const NodeId w = v ^ (NodeId{1} << bit);
      if (v < w) b.add_edge(v, w);
    }
  }
  return std::move(b).build(fmt_name("hypercube(d=%u)", dimension));
}

Graph complete_binary_tree(NodeId n) {
  assert(n >= 2);
  GraphBuilder b(n);
  for (NodeId v = 1; v < n; ++v) b.add_edge(v, (v - 1) / 2);
  return std::move(b).build(fmt_name("binary_tree(n=%u)", n));
}

Graph lollipop(NodeId clique_size, NodeId path_len) {
  assert(clique_size >= 2);
  const NodeId n = clique_size + path_len;
  GraphBuilder b(n);
  for (NodeId i = 0; i < clique_size; ++i) {
    for (NodeId j = i + 1; j < clique_size; ++j) b.add_edge(i, j);
  }
  for (NodeId i = 0; i < path_len; ++i) {
    const NodeId prev = i == 0 ? clique_size - 1 : clique_size + i - 1;
    b.add_edge(prev, clique_size + i);
  }
  return std::move(b).build(fmt_name("lollipop(k=%u,p=%u)", clique_size, path_len));
}

Graph barbell(NodeId clique_size, NodeId path_len) {
  assert(clique_size >= 2);
  const NodeId n = 2 * clique_size + path_len;
  GraphBuilder b(n);
  auto add_clique = [&](NodeId base) {
    for (NodeId i = 0; i < clique_size; ++i) {
      for (NodeId j = i + 1; j < clique_size; ++j) b.add_edge(base + i, base + j);
    }
  };
  add_clique(0);
  add_clique(clique_size + path_len);
  NodeId prev = clique_size - 1;
  for (NodeId i = 0; i < path_len; ++i) {
    b.add_edge(prev, clique_size + i);
    prev = clique_size + i;
  }
  b.add_edge(prev, clique_size + path_len);  // attach to second clique
  return std::move(b).build(fmt_name("barbell(k=%u,p=%u)", clique_size, path_len));
}

Graph chain_of_stars(NodeId hubs, NodeId leaves_per_hub) {
  assert(hubs >= 2);
  const NodeId n = hubs * (1 + leaves_per_hub);
  GraphBuilder b(n);
  // Hub i is node i * (1 + leaves); its leaves follow it contiguously.
  auto hub = [leaves_per_hub](NodeId i) { return i * (1 + leaves_per_hub); };
  for (NodeId i = 0; i + 1 < hubs; ++i) b.add_edge(hub(i), hub(i + 1));
  for (NodeId i = 0; i < hubs; ++i) {
    for (NodeId l = 1; l <= leaves_per_hub; ++l) b.add_edge(hub(i), hub(i) + l);
  }
  return std::move(b).build(fmt_name("chain_of_stars(h=%u,s=%u)", hubs, leaves_per_hub));
}

Graph wheel(NodeId n) {
  assert(n >= 4);
  GraphBuilder b(n);
  // Hub 0; rim 1..n-1 in a cycle.
  for (NodeId v = 1; v < n; ++v) {
    b.add_edge(0, v);
    b.add_edge(v, v + 1 == n ? 1 : v + 1);
  }
  return std::move(b).build(fmt_name("wheel(n=%u)", n));
}

Graph complete_bipartite(NodeId a, NodeId b_side) {
  assert(a >= 1 && b_side >= 1);
  GraphBuilder b(a + b_side);
  for (NodeId i = 0; i < a; ++i) {
    for (NodeId j = 0; j < b_side; ++j) b.add_edge(i, a + j);
  }
  return std::move(b).build(fmt_name("complete_bipartite(a=%u,b=%u)", a, b_side));
}

Graph torus3d(NodeId side) {
  assert(side >= 3);
  const NodeId n = side * side * side;
  GraphBuilder b(n);
  auto id = [side](NodeId x, NodeId y, NodeId z) { return (x * side + y) * side + z; };
  for (NodeId x = 0; x < side; ++x) {
    for (NodeId y = 0; y < side; ++y) {
      for (NodeId z = 0; z < side; ++z) {
        b.add_edge(id(x, y, z), id((x + 1) % side, y, z));
        b.add_edge(id(x, y, z), id(x, (y + 1) % side, z));
        b.add_edge(id(x, y, z), id(x, y, (z + 1) % side));
      }
    }
  }
  return std::move(b).build(fmt_name("torus3d(side=%u)", side));
}

Graph watts_strogatz(NodeId n, std::uint32_t k, double rewire_p, rng::Engine& eng) {
  assert(k >= 2 && k % 2 == 0);
  assert(k < n);
  assert(rewire_p >= 0.0 && rewire_p <= 1.0);
  GraphBuilder b(n);
  // Ring lattice edges (v, v + j) for j in [1, k/2], each independently
  // rewired to (v, random) with probability rewire_p. Collisions with
  // existing edges or self-loops fall back to keeping the lattice edge —
  // the builder deduplicates, matching the standard construction closely
  // enough for spreading experiments.
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t j = 1; j <= k / 2; ++j) {
      const NodeId lattice = static_cast<NodeId>((v + j) % n);
      if (rng::uniform01(eng) < rewire_p) {
        const NodeId target = static_cast<NodeId>(rng::uniform_below(eng, n));
        b.add_edge(v, target == v ? lattice : target);
      } else {
        b.add_edge(v, lattice);
      }
    }
  }
  return std::move(b).build(fmt_name("watts_strogatz(n=%u,k=%u,p=%.2f)", n, k, rewire_p));
}

Graph bundle_chain(NodeId len, NodeId width) {
  assert(len >= 1);
  assert(width >= 1);
  // Relays occupy [0, len]; bundle i's helpers occupy
  // [len + 1 + i*width, len + 1 + (i+1)*width).
  const NodeId n = (len + 1) + len * width;
  GraphBuilder b(n);
  for (NodeId i = 0; i < len; ++i) {
    const NodeId first_helper = len + 1 + i * width;
    for (NodeId h = 0; h < width; ++h) {
      b.add_edge(i, first_helper + h);
      b.add_edge(i + 1, first_helper + h);
    }
  }
  return std::move(b).build(fmt_name("bundle_chain(len=%u,w=%u)", len, width));
}

Graph erdos_renyi(NodeId n, double p, rng::Engine& eng) {
  assert(n >= 2);
  assert(p > 0.0 && p <= 1.0);
  GraphBuilder b(n);
  if (p >= 1.0) return complete(n);
  // Geometric skip over the lexicographic pair sequence: each skip is
  // Geom(p), visiting exactly the present edges, O(n + m).
  const std::uint64_t total_pairs = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  std::uint64_t idx = rng::geometric(eng, p) - 1;  // first edge position
  while (idx < total_pairs) {
    // Invert idx -> (i, j), i < j, over the row-major upper triangle.
    // Row i starts at offset i*n - i*(i+1)/2 - i ... use incremental search
    // via the quadratic formula for O(1) per edge.
    const double nn = static_cast<double>(n);
    const double fidx = static_cast<double>(idx);
    // Solve i from idx >= i*(2n - i - 1)/2.
    double fi = std::floor(nn - 0.5 - std::sqrt((nn - 0.5) * (nn - 0.5) - 2.0 * fidx));
    auto i = static_cast<std::uint64_t>(std::max(0.0, fi));
    auto row_start = [&](std::uint64_t r) { return r * (2 * n - r - 1) / 2; };
    while (i > 0 && row_start(i) > idx) --i;
    while (row_start(i + 1) <= idx) ++i;
    const std::uint64_t j = i + 1 + (idx - row_start(i));
    b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
    idx += rng::geometric(eng, p);
  }
  return std::move(b).build(fmt_name("erdos_renyi(n=%u,p=%.4f)", n, p));
}

namespace {

/// One configuration-model pairing with local repair: pair stubs uniformly,
/// then remove self-loops and duplicate edges by random double-edge swaps
/// (a,b),(c,d) -> (a,d),(c,b). Plain rejection of the whole pairing has
/// acceptance probability ~ e^{-(d^2-1)/4}, hopeless already for d = 6;
/// swap repair perturbs the uniform distribution only slightly (standard
/// practice for simulation). Returns false if repair failed to converge.
bool try_configuration_model(NodeId n, std::uint32_t d, rng::Engine& eng, GraphBuilder& out) {
  std::vector<NodeId> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * d);
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t i = 0; i < d; ++i) stubs.push_back(v);
  }
  rng::shuffle(eng, std::span<NodeId>(stubs));

  const std::size_t num_edges = stubs.size() / 2;
  std::vector<std::pair<NodeId, NodeId>> edges(num_edges);
  for (std::size_t i = 0; i < num_edges; ++i) edges[i] = {stubs[2 * i], stubs[2 * i + 1]};

  auto key = [](NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };
  // `seen` holds the keys of *good* edges only; a bad edge (self-loop, or a
  // duplicate whose key is owned by its first occurrence) contributes none.
  std::set<std::uint64_t> seen;
  std::vector<std::uint8_t> is_bad(num_edges, 0);
  std::vector<std::size_t> bad;
  for (std::size_t i = 0; i < num_edges; ++i) {
    const auto [a, b] = edges[i];
    if (a == b || !seen.insert(key(a, b)).second) {
      is_bad[i] = 1;
      bad.push_back(i);
    }
  }

  // Each round, re-wire every bad edge against a uniformly random *good*
  // partner: (a,b),(c,e) -> (a,e),(c,b).
  const std::size_t max_rounds = 100 + 2 * bad.size();
  for (std::size_t round = 0; !bad.empty() && round < max_rounds; ++round) {
    std::vector<std::size_t> still_bad;
    for (const std::size_t i : bad) {
      const std::size_t j = static_cast<std::size_t>(rng::uniform_below(eng, num_edges));
      auto& [a, b] = edges[i];
      auto& [c, e] = edges[j];
      const bool new_edges_ok = a != e && c != b && !seen.contains(key(a, e)) &&
                                !seen.contains(key(c, b)) && key(a, e) != key(c, b);
      if (i == j || is_bad[j] || !new_edges_ok) {
        still_bad.push_back(i);
        continue;
      }
      // Bad edge i owns no key; good partner j owns key(c, e).
      seen.erase(key(c, e));
      std::swap(b, e);
      seen.insert(key(a, b));
      seen.insert(key(c, e));
      is_bad[i] = 0;
    }
    bad = std::move(still_bad);
  }
  if (!bad.empty()) return false;
  for (const auto& [a, b] : edges) out.add_edge(a, b);
  return true;
}

}  // namespace

Graph random_regular(NodeId n, std::uint32_t d, rng::Engine& eng,
                     const RandomRegularOptions& options) {
  assert(d >= 1 && d < n);
  assert((static_cast<std::uint64_t>(n) * d) % 2 == 0 && "n*d must be even");
  for (std::uint32_t attempt = 0; attempt < options.max_attempts; ++attempt) {
    GraphBuilder b(n);
    if (!try_configuration_model(n, d, eng, b)) continue;
    Graph g = std::move(b).build(fmt_name("random_regular(n=%u,d=%u)", n, d));
    if (options.require_connected && !is_connected(g)) continue;
    return g;
  }
  throw std::runtime_error("random_regular: exceeded max_attempts (d too small for connectivity?)");
}

Graph chung_lu(NodeId n, const ChungLuOptions& options, rng::Engine& eng) {
  assert(n >= 2);
  assert(options.beta > 2.0);
  // Weights w_i proportional to (i + i0)^{-1/(beta-1)}, scaled so the mean
  // weight equals average_degree.
  const double gamma = 1.0 / (options.beta - 1.0);
  std::vector<double> w(n);
  double total = 0.0;
  for (NodeId i = 0; i < n; ++i) {
    w[i] = std::pow(static_cast<double>(i) + 1.0, -gamma);
    total += w[i];
  }
  const double scale = options.average_degree * static_cast<double>(n) / total;
  for (auto& wi : w) wi *= scale;
  total *= scale;

  GraphBuilder b(n);
  // Miller-Hagberg style: nodes sorted by descending weight (already true),
  // geometric skipping within each row with the row-max probability, then
  // acceptance by the true probability. O(n + m) in the sparse regime.
  for (NodeId i = 0; i < n; ++i) {
    NodeId j = i + 1;
    double p_row = std::min(1.0, w[i] * w[j == n ? i : j] / total);
    while (j < n && p_row > 0.0) {
      // Skip ahead geometrically with probability p_row.
      const std::uint64_t skip = rng::geometric(eng, p_row) - 1;
      if (j + skip >= n) break;
      j = static_cast<NodeId>(j + skip);
      const double p_true = std::min(1.0, w[i] * w[j] / total);
      if (rng::uniform01(eng) < p_true / p_row) b.add_edge(i, j);
      p_row = p_true;  // weights are non-increasing, so p_true bounds the rest
      ++j;
    }
  }
  return std::move(b).build(
      fmt_name("chung_lu(n=%u,beta=%.2f,avg=%.1f)", n, options.beta, options.average_degree));
}

Graph preferential_attachment(NodeId n, std::uint32_t m, rng::Engine& eng) {
  assert(m >= 1);
  assert(n > m + 1);
  GraphBuilder b(n);
  // Repeated-endpoint list: each edge contributes both endpoints, so a
  // uniform sample from the list is degree-proportional.
  std::vector<NodeId> endpoints;
  endpoints.reserve(static_cast<std::size_t>(n) * m * 2);
  // Seed: clique on m + 1 nodes.
  for (NodeId i = 0; i <= m; ++i) {
    for (NodeId j = i + 1; j <= m; ++j) {
      b.add_edge(i, j);
      endpoints.push_back(i);
      endpoints.push_back(j);
    }
  }
  for (NodeId v = m + 1; v < n; ++v) {
    std::set<NodeId> targets;
    while (targets.size() < m) {
      const NodeId t =
          endpoints[static_cast<std::size_t>(rng::uniform_below(eng, endpoints.size()))];
      targets.insert(t);
    }
    for (NodeId t : targets) {
      b.add_edge(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return std::move(b).build(fmt_name("preferential_attachment(n=%u,m=%u)", n, m));
}

Graph largest_component(const Graph& g) {
  const auto comp = connected_components(g);
  // Count component sizes, pick the largest.
  std::vector<NodeId> size(comp.num_components, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) ++size[comp.label[v]];
  const NodeId best =
      static_cast<NodeId>(std::max_element(size.begin(), size.end()) - size.begin());

  std::vector<NodeId> remap(g.num_nodes(), 0);
  NodeId next = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (comp.label[v] == best) remap[v] = next++;
  }
  GraphBuilder b(next);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (comp.label[v] != best) continue;
    for (NodeId w : g.neighbors(v)) {
      if (v < w && comp.label[w] == best) b.add_edge(remap[v], remap[w]);
    }
  }
  return std::move(b).build(g.name() + "|lcc");
}

}  // namespace rumor::graph
