#include "graph/graph.hpp"

#include <algorithm>

namespace rumor::graph {

void GraphBuilder::add_edge(NodeId a, NodeId b) {
  assert(a < num_nodes_ && b < num_nodes_);
  if (a == b) return;  // self-loops carry no rumor
  edges_.push_back(Edge{a, b});
}

bool GraphBuilder::has_edge_slow(NodeId a, NodeId b) const noexcept {
  for (const Edge& e : edges_) {
    if ((e.a == a && e.b == b) || (e.a == b && e.b == a)) return true;
  }
  return false;
}

Graph GraphBuilder::build(std::string name) && {
  // Expand to directed arcs, sort, dedupe, then prefix-sum into CSR.
  std::vector<std::pair<NodeId, NodeId>> arcs;
  arcs.reserve(edges_.size() * 2);
  for (const Edge& e : edges_) {
    arcs.emplace_back(e.a, e.b);
    arcs.emplace_back(e.b, e.a);
  }
  edges_.clear();
  std::sort(arcs.begin(), arcs.end());
  arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());

  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(num_nodes_) + 1, 0);
  for (const auto& [from, to] : arcs) {
    (void)to;
    ++offsets[static_cast<std::size_t>(from) + 1];
  }
  for (std::size_t v = 0; v < num_nodes_; ++v) offsets[v + 1] += offsets[v];

  std::vector<NodeId> neighbors;
  neighbors.reserve(arcs.size());
  for (const auto& [from, to] : arcs) {
    (void)from;
    neighbors.push_back(to);
  }
  return Graph(std::move(offsets), std::move(neighbors), std::move(name));
}

std::uint32_t Graph::neighbor_index(NodeId v, NodeId w) const noexcept {
  const auto nbrs = neighbors(v);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), w);
  if (it != nbrs.end() && *it == w) {
    return static_cast<std::uint32_t>(it - nbrs.begin());
  }
  return degree(v);
}

bool Graph::is_regular() const noexcept {
  const NodeId n = num_nodes();
  if (n == 0) return true;
  const auto d = degree(0);
  for (NodeId v = 1; v < n; ++v) {
    if (degree(v) != d) return false;
  }
  return true;
}

}  // namespace rumor::graph
