// rumor/dist: closed-form tail bounds and special sums from the analysis
// toolbox.
//
// These are the "theory oracles" the known-bounds module and the benches
// compare measurements against: harmonic numbers and coupon-collector
// moments (star-graph laws), Chernoff bounds for binomials (round-level
// concentration), and exact upper tails for the negative binomial and
// Erlang laws that Lemmas 9/10 reduce spreading times to.
#pragma once

#include <cstdint>

namespace rumor::dist {

/// The n-th harmonic number H_n = sum_{i=1}^n 1/i. Exact summation for
/// small n; the Euler-Maclaurin asymptotic ln n + gamma + 1/(2n) - 1/(12n^2)
/// beyond the crossover (the two branches agree to ~1e-12 there).
[[nodiscard]] double harmonic(std::uint64_t n);

/// Expected draws to collect all n coupons: n * H_n.
[[nodiscard]] double coupon_collector_mean(std::uint64_t n);

/// Union-bound tail: Pr[T > n ln n + c n] <= e^{-c} for the coupon
/// collector on n coupons (c >= 0).
[[nodiscard]] double coupon_collector_tail(std::uint64_t n, double c);

/// Chernoff bound Pr[X >= (1 + delta) mu] <= exp(-delta^2 mu / 3) for
/// X ~ Bin(n, p), mu = np, 0 < delta <= 1.
[[nodiscard]] double binomial_upper_tail(std::uint64_t n, double p, double delta);

/// Chernoff bound Pr[X <= (1 - delta) mu] <= exp(-delta^2 mu / 2).
[[nodiscard]] double binomial_lower_tail(std::uint64_t n, double p, double delta);

/// Exact upper tail Pr[NB(k, p) > t] = Pr[Bin(t, p) <= k - 1]; returns 1
/// for t < k (the support starts at k).
[[nodiscard]] double negbin_upper_tail(std::uint64_t k, double p, std::uint64_t t);

/// Exact upper tail Pr[Erlang(k, rate) > t] = sum_{i<k} e^{-rt} (rt)^i / i!.
[[nodiscard]] double erlang_upper_tail(std::uint64_t k, double rate, double t);

/// E[max of k i.i.d. Exponential(rate)] = H_k / rate — the star graph's
/// asynchronous completion law.
[[nodiscard]] double max_of_exponentials_mean(std::uint64_t k, double rate);

}  // namespace rumor::dist
