#include "dist/distributions.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rumor::dist {

namespace {

/// log C(n, k) via lgamma; exact enough for the pmf/cdf range we use.
double log_binomial(double n, double k) {
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) - std::lgamma(n - k + 1.0);
}

}  // namespace

double NegativeBinomial::pmf(std::uint64_t n) const noexcept {
  if (n < k_) return 0.0;
  const double nn = static_cast<double>(n);
  const double kk = static_cast<double>(k_);
  const double log_p = log_binomial(nn - 1.0, kk - 1.0) + kk * std::log(p_) +
                       (nn - kk) * std::log1p(-p_);
  return std::exp(log_p);
}

double NegativeBinomial::cdf(std::uint64_t n) const noexcept {
  if (n < k_) return 0.0;
  // Pr[NB <= n] = Pr[Bin(n, p) >= k] = 1 - sum_{i=0}^{k-1} C(n,i) p^i (1-p)^{n-i}.
  const double nn = static_cast<double>(n);
  double below = 0.0;
  for (std::uint64_t i = 0; i < k_; ++i) {
    const double ii = static_cast<double>(i);
    below += std::exp(log_binomial(nn, ii) + ii * std::log(p_) + (nn - ii) * std::log1p(-p_));
  }
  return std::max(0.0, 1.0 - below);
}

double Erlang::pdf(double x) const noexcept {
  if (x <= 0.0) return 0.0;
  const double kk = static_cast<double>(k_);
  return std::exp(kk * std::log(rate_) + (kk - 1.0) * std::log(x) - rate_ * x -
                  std::lgamma(kk));
}

double Erlang::cdf(double x) const noexcept {
  if (x <= 0.0) return 0.0;
  // For integer shape, 1 - cdf = sum_{i=0}^{k-1} e^{-rx} (rx)^i / i!. Each
  // term is computed in log space so that k = 500 neither overflows nor
  // underflows prematurely.
  const double rx = rate_ * x;
  const double log_rx = std::log(rx);
  double tail = 0.0;
  for (std::uint64_t i = 0; i < k_; ++i) {
    const double ii = static_cast<double>(i);
    tail += std::exp(-rx + ii * log_rx - std::lgamma(ii + 1.0));
  }
  return std::clamp(1.0 - tail, 0.0, 1.0);
}

Ecdf::Ecdf(std::vector<double> xs) : sorted_(std::move(xs)) {
  assert(!sorted_.empty() && "Ecdf of an empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const noexcept {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double ks_statistic(const Ecdf& a, const Ecdf& b) {
  // Sweep the merged sample points; the sup of |F_a - F_b| is attained just
  // after one of them.
  const auto& xa = a.sorted();
  const auto& xb = b.sorted();
  const double na = static_cast<double>(xa.size());
  const double nb = static_cast<double>(xb.size());
  std::size_t i = 0;
  std::size_t j = 0;
  double sup = 0.0;
  while (i < xa.size() || j < xb.size()) {
    const double x = (j >= xb.size() || (i < xa.size() && xa[i] <= xb[j])) ? xa[i] : xb[j];
    while (i < xa.size() && xa[i] <= x) ++i;
    while (j < xb.size() && xb[j] <= x) ++j;
    sup = std::max(sup, std::abs(static_cast<double>(i) / na - static_cast<double>(j) / nb));
  }
  return sup;
}

namespace {

/// Exact P(D < d) for samples of sizes na, nb by the lattice-path
/// recursion: u[j] after column i is the probability that a uniformly
/// random interleaving reaching lattice point (i, j) has stayed strictly
/// inside the band |i/na - j/nb| < d so far. The column weight
/// i / (i + nb) folds the 1 / C(na+nb, na) normalization into the sweep,
/// so every intermediate value stays in [0, 1] — no big-integer counts.
double ks_exact_cdf(double d, std::size_t na, std::size_t nb) {
  const double m = static_cast<double>(na);
  const double n = static_cast<double>(nb);
  // Snap d to the lattice: D takes values k/(na*nb) for integer k, so
  // testing against the half-open midpoint makes P(D < d) immune to the
  // float fuzz in d itself.
  const double q = (0.5 + std::floor(d * m * n - 1e-7)) / (m * n);
  std::vector<double> u(nb + 1);
  for (std::size_t j = 0; j <= nb; ++j) {
    u[j] = static_cast<double>(j) / n > q ? 0.0 : 1.0;
  }
  for (std::size_t i = 1; i <= na; ++i) {
    const double w = static_cast<double>(i) / (static_cast<double>(i) + n);
    const double fi = static_cast<double>(i) / m;
    u[0] = fi > q ? 0.0 : w * u[0];
    for (std::size_t j = 1; j <= nb; ++j) {
      u[j] = std::abs(fi - static_cast<double>(j) / n) > q ? 0.0 : w * u[j] + u[j - 1];
    }
  }
  return u[nb];
}

/// Kolmogorov's limiting tail 2 sum_k (-1)^{k-1} exp(-2 k^2 z^2).
double ks_asymptotic_p(double z) {
  if (z < 0.2) return 1.0;  // the series needs many terms; the answer is 1
  double p = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * static_cast<double>(k) * static_cast<double>(k) * z * z);
    p += sign * term;
    if (term < 1e-12) break;
    sign = -sign;
  }
  return std::clamp(2.0 * p, 0.0, 1.0);
}

}  // namespace

KsTest ks_two_sample_test(const std::vector<double>& a, const std::vector<double>& b) {
  assert(!a.empty() && !b.empty() && "ks_two_sample_test needs non-empty samples");
  const Ecdf fa(a);
  const Ecdf fb(b);
  KsTest test;
  test.statistic = ks_statistic(fa, fb);
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  test.exact = na * nb <= 4e6;
  if (test.exact) {
    test.p_value = std::clamp(1.0 - ks_exact_cdf(test.statistic, a.size(), b.size()), 0.0, 1.0);
  } else {
    test.p_value = ks_asymptotic_p(test.statistic * std::sqrt(na * nb / (na + nb)));
  }
  return test;
}

bool ks_gate(const std::vector<double>& a, const std::vector<double>& b, double alpha) {
  return ks_two_sample_test(a, b).p_value >= alpha;
}

DominationCheck check_domination(const std::vector<double>& x_samples,
                                 const std::vector<double>& y_samples) {
  // X preceq Y iff F_X(t) >= F_Y(t) for all t; report the worst positive
  // excess of F_Y over F_X across the merged sample points.
  const Ecdf fx(x_samples);
  const Ecdf fy(y_samples);
  const auto& xs = fx.sorted();
  const auto& ys = fy.sorted();
  const double nx = static_cast<double>(xs.size());
  const double ny = static_cast<double>(ys.size());
  std::size_t i = 0;
  std::size_t j = 0;
  DominationCheck check;
  while (i < xs.size() || j < ys.size()) {
    const double t = (j >= ys.size() || (i < xs.size() && xs[i] <= ys[j])) ? xs[i] : ys[j];
    while (i < xs.size() && xs[i] <= t) ++i;
    while (j < ys.size() && ys[j] <= t) ++j;
    const double violation = static_cast<double>(j) / ny - static_cast<double>(i) / nx;
    if (violation > check.max_violation) {
      check.max_violation = violation;
      check.at = t;
    }
  }
  return check;
}

}  // namespace rumor::dist
