// rumor/dist: analytic distributions, empirical CDFs, and stochastic-order
// checks.
//
// The paper's proofs manipulate a small set of laws — exponentials (Poisson
// clocks), geometrics (per-round success counts), negative binomials and
// Erlangs (sums of the former two) — and repeatedly compare processes in the
// usual stochastic order X preceq Y. This module provides those laws with
// exact pdf/pmf/cdf/quantile/moment formulas plus samplers driven by
// rng::Engine, an empirical CDF type, two-sample and analytic
// Kolmogorov-Smirnov statistics, and an empirical domination check used to
// validate the coupling lemmas (Lemmas 8, 10, 15).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "rng/rng.hpp"

namespace rumor::dist {

/// Exponential(rate): pdf rate * e^{-rate x} on x >= 0.
class Exponential {
 public:
  explicit Exponential(double rate) : rate_(rate) {}

  [[nodiscard]] double rate() const noexcept { return rate_; }
  [[nodiscard]] double mean() const noexcept { return 1.0 / rate_; }
  [[nodiscard]] double variance() const noexcept { return 1.0 / (rate_ * rate_); }

  [[nodiscard]] double pdf(double x) const noexcept {
    return x < 0.0 ? 0.0 : rate_ * std::exp(-rate_ * x);
  }
  [[nodiscard]] double cdf(double x) const noexcept {
    return x <= 0.0 ? 0.0 : -std::expm1(-rate_ * x);
  }
  /// Inverse CDF; quantile(q) = -ln(1-q)/rate for q in [0, 1).
  [[nodiscard]] double quantile(double q) const noexcept {
    return -std::log1p(-q) / rate_;
  }

  template <class Eng>
  [[nodiscard]] double sample(Eng& eng) const noexcept {
    return rng::exponential(eng, rate_);
  }

 private:
  double rate_;
};

/// Geometric(p) on {1, 2, ...}: the number of Bernoulli(p) trials up to and
/// including the first success. pmf(k) = p (1-p)^{k-1}.
class Geometric {
 public:
  explicit Geometric(double p) : p_(p) {}

  [[nodiscard]] double success_probability() const noexcept { return p_; }
  [[nodiscard]] double mean() const noexcept { return 1.0 / p_; }
  [[nodiscard]] double variance() const noexcept { return (1.0 - p_) / (p_ * p_); }

  [[nodiscard]] double pmf(std::uint64_t k) const noexcept {
    if (k < 1) return 0.0;
    return p_ * std::pow(1.0 - p_, static_cast<double>(k - 1));
  }
  /// Pr[X <= k] = 1 - (1-p)^k.
  [[nodiscard]] double cdf(std::uint64_t k) const noexcept {
    if (k < 1) return 0.0;
    return -std::expm1(static_cast<double>(k) * std::log1p(-p_));
  }

  template <class Eng>
  [[nodiscard]] std::uint64_t sample(Eng& eng) const noexcept {
    return rng::geometric(eng, p_);
  }

 private:
  double p_;
};

/// NegativeBinomial(k, p) on {k, k+1, ...}: the number of Bernoulli(p)
/// trials up to and including the k-th success — the sum of k independent
/// Geometric(p) variables. pmf(n) = C(n-1, k-1) p^k (1-p)^{n-k}.
class NegativeBinomial {
 public:
  NegativeBinomial(std::uint64_t k, double p) : k_(k), p_(p) {}

  [[nodiscard]] std::uint64_t successes() const noexcept { return k_; }
  [[nodiscard]] double success_probability() const noexcept { return p_; }
  [[nodiscard]] double mean() const noexcept { return static_cast<double>(k_) / p_; }
  [[nodiscard]] double variance() const noexcept {
    return static_cast<double>(k_) * (1.0 - p_) / (p_ * p_);
  }

  [[nodiscard]] double pmf(std::uint64_t n) const noexcept;
  /// Pr[X <= n] = Pr[Bin(n, p) >= k] (>= k successes within n trials).
  [[nodiscard]] double cdf(std::uint64_t n) const noexcept;

  template <class Eng>
  [[nodiscard]] std::uint64_t sample(Eng& eng) const noexcept {
    std::uint64_t total = 0;
    for (std::uint64_t i = 0; i < k_; ++i) total += rng::geometric(eng, p_);
    return total;
  }

 private:
  std::uint64_t k_;
  double p_;
};

/// Erlang(k, rate): the sum of k independent Exponential(rate) variables.
class Erlang {
 public:
  Erlang(std::uint64_t k, double rate) : k_(k), rate_(rate) {}

  [[nodiscard]] std::uint64_t shape() const noexcept { return k_; }
  [[nodiscard]] double rate() const noexcept { return rate_; }
  [[nodiscard]] double mean() const noexcept { return static_cast<double>(k_) / rate_; }
  [[nodiscard]] double variance() const noexcept {
    return static_cast<double>(k_) / (rate_ * rate_);
  }

  [[nodiscard]] double pdf(double x) const noexcept;
  /// Regularized lower incomplete gamma P(k, rate*x); stable for k >= 500.
  [[nodiscard]] double cdf(double x) const noexcept;

  template <class Eng>
  [[nodiscard]] double sample(Eng& eng) const noexcept {
    double total = 0.0;
    for (std::uint64_t i = 0; i < k_; ++i) total += rng::exponential(eng, rate_);
    return total;
  }

 private:
  std::uint64_t k_;
  double rate_;
};

/// Empirical CDF of a sample: F_n(x) = #{i : x_i <= x} / n.
class Ecdf {
 public:
  /// Copies and sorts the sample. Precondition: xs not empty.
  explicit Ecdf(std::vector<double> xs);

  /// F_n(x), a right-continuous step function.
  [[nodiscard]] double operator()(double x) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] const std::vector<double>& sorted() const noexcept { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Two-sample Kolmogorov-Smirnov statistic sup_x |F_a(x) - F_b(x)|.
[[nodiscard]] double ks_statistic(const Ecdf& a, const Ecdf& b);

/// Result of the two-sample KS test ks_two_sample_test.
struct KsTest {
  /// D = sup_x |F_a(x) - F_b(x)|.
  double statistic = 0.0;
  /// P(D >= observed) under the null hypothesis that both samples are drawn
  /// from one common (continuous) law. With ties — spreading times are
  /// integers — the test is conservative: the true rejection rate is at
  /// most the nominal alpha.
  double p_value = 1.0;
  /// True when p_value is the exact finite-sample probability (lattice-path
  /// count); false when the asymptotic Kolmogorov series was used.
  bool exact = false;
};

/// Two-sample KS test with p-value: the distributional-equality oracle for
/// engines that reproduce a law without reproducing a bit stream (the
/// batch_sync acceptance gate; see docs/ENGINES.md).
///
/// For small samples (n*m <= 4,000,000) the p-value is exact, computed by
/// the standard O(n*m) lattice-path recursion: P(D < d) is the fraction of
/// the C(n+m, n) orderings whose path (0,0) -> (n,m) keeps
/// |i/n - j/m| below d at every vertex, accumulated column by column with
/// incremental normalization so counts never overflow. Larger samples fall
/// back to the Kolmogorov asymptotic 2 sum_k (-1)^{k-1} exp(-2 k^2 z^2)
/// with z = D sqrt(nm/(n+m)). Precondition: both samples non-empty.
[[nodiscard]] KsTest ks_two_sample_test(const std::vector<double>& a,
                                        const std::vector<double>& b);

/// The equality gate: true iff ks_two_sample_test(a, b).p_value >= alpha.
/// alpha is the false-rejection rate for same-law samples; the default 1e-3
/// keeps a multi-cell CI sweep quiet while still rejecting any systematic
/// distributional drift at realistic sample sizes.
[[nodiscard]] bool ks_gate(const std::vector<double>& a, const std::vector<double>& b,
                           double alpha = 1e-3);

/// One-sample KS statistic sup_x |F_n(x) - F(x)| against an analytic law
/// with a `cdf(double)` member. The supremum over each step's left and
/// right limits is taken, as the textbook statistic requires.
template <class Dist>
[[nodiscard]] double ks_statistic_analytic(const Ecdf& ecdf, const Dist& d) {
  const auto& xs = ecdf.sorted();
  const double n = static_cast<double>(xs.size());
  double sup = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double f = d.cdf(xs[i]);
    const double lo = static_cast<double>(i) / n;        // F_n just below x_i
    const double hi = static_cast<double>(i + 1) / n;    // F_n at x_i
    sup = std::max(sup, std::max(std::abs(hi - f), std::abs(f - lo)));
  }
  return sup;
}

/// Result of an empirical stochastic-domination check of X preceq Y.
struct DominationCheck {
  /// sup_t max(0, F_Y(t) - F_X(t)): how much Y's CDF exceeds X's anywhere.
  /// X preceq Y requires F_X >= F_Y pointwise, so for true domination this
  /// is 0 up to sampling noise (~sqrt(1/n)).
  double max_violation = 0.0;
  /// The argument t where the worst violation occurs.
  double at = 0.0;
};

/// Empirically checks X preceq Y (X stochastically smaller) from samples.
[[nodiscard]] DominationCheck check_domination(const std::vector<double>& x_samples,
                                               const std::vector<double>& y_samples);

}  // namespace rumor::dist
