#include "dist/tail_bounds.hpp"

#include <algorithm>
#include <cmath>

#include "dist/distributions.hpp"

namespace rumor::dist {

namespace {

constexpr double kEulerMascheroni = 0.57721566490153286060651209008240243;

/// Direct summation stays cheap and accurate up to this crossover; the
/// asymptotic branch is already ~1e-13 accurate there.
constexpr std::uint64_t kHarmonicCrossover = 1u << 20;

}  // namespace

double harmonic(std::uint64_t n) {
  if (n == 0) return 0.0;
  if (n <= kHarmonicCrossover) {
    // Sum smallest terms first so the accumulator grows monotonically.
    double h = 0.0;
    for (std::uint64_t i = n; i >= 1; --i) h += 1.0 / static_cast<double>(i);
    return h;
  }
  const double x = static_cast<double>(n);
  return std::log(x) + kEulerMascheroni + 1.0 / (2.0 * x) - 1.0 / (12.0 * x * x);
}

double coupon_collector_mean(std::uint64_t n) {
  return static_cast<double>(n) * harmonic(n);
}

double coupon_collector_tail(std::uint64_t /*n*/, double c) {
  // Pr[T > n ln n + c n] <= n * (1 - 1/n)^{n ln n + c n} <= e^{-c}.
  return std::exp(-c);
}

double binomial_upper_tail(std::uint64_t n, double p, double delta) {
  const double mu = static_cast<double>(n) * p;
  return std::exp(-delta * delta * mu / 3.0);
}

double binomial_lower_tail(std::uint64_t n, double p, double delta) {
  const double mu = static_cast<double>(n) * p;
  return std::exp(-delta * delta * mu / 2.0);
}

double negbin_upper_tail(std::uint64_t k, double p, std::uint64_t t) {
  if (t < k) return 1.0;
  return std::clamp(1.0 - NegativeBinomial(k, p).cdf(t), 0.0, 1.0);
}

double erlang_upper_tail(std::uint64_t k, double rate, double t) {
  return std::clamp(1.0 - Erlang(k, rate).cdf(t), 0.0, 1.0);
}

double max_of_exponentials_mean(std::uint64_t k, double rate) {
  return harmonic(k) / rate;
}

}  // namespace rumor::dist
