// rumor/stats: mergeable fixed-memory accumulators for campaign sweeps.
//
// A campaign over thousands of configurations cannot hold every sample of
// every configuration (the harness's SpreadingTimeSample does exactly
// that). This module provides the three reductions the reports need, each
// in O(1) or O(k) memory and each *mergeable*, so worker threads can
// accumulate block-local partials and the campaign can combine them:
//
//   * RunningMoments (summary.hpp) — exact mean/variance/min/max, merged
//     with Chan et al.'s parallel combination;
//   * QuantileSketch — a deterministic KLL-style compactor sketch for the
//     paper's T_q quantiles, eps ~ O(log^2(n/k)/k) rank error;
//   * ReservoirSample — a bottom-k priority sample (uniform without
//     replacement) whose *contents are independent of insertion and merge
//     order*, which both keeps bootstrap CIs reproducible and lets
//     determinism tests recover exact per-trial values when k >= trials.
//
// Determinism contract: every operation here is a pure function of the
// inserted (value, tag) multiset and, for QuantileSketch, of the insertion
// order. Campaigns therefore merge block partials in block-index order (see
// sim/campaign.cpp), making summaries bit-identical across thread counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/summary.hpp"

namespace rumor::stats {

/// Mergeable epsilon-approximate quantile sketch (deterministic KLL-style
/// compactor hierarchy).
///
/// Level L holds items of weight 2^L in a buffer of capacity k. Growing a
/// level beyond k sorts it and promotes every second item (alternating
/// between odd and even positions on successive compactions, the classic
/// derandomized compactor) to level L+1, halving the item count. Memory is
/// O(k log(n/k)); the worst-case rank error of quantile() is bounded by
/// (log2(n/k) + 1)^2 / (2k) * n — with the default k = 256 and n = 1e6
/// samples that is under 0.3% of rank, far below the Monte-Carlo noise of
/// the experiments (tolerances are pinned down in tests/test_streaming.cpp).
///
/// merge() concatenates level-wise and re-compacts, so a merge tree applied
/// in a fixed order yields a bit-deterministic result.
class QuantileSketch {
 public:
  explicit QuantileSketch(std::size_t capacity_per_level = 256);

  void add(double x);
  /// Concatenates level-wise and re-compacts. Merging an *empty* sketch is
  /// an exact identity (no level-vector growth, no state change); merging
  /// *into* an empty sketch copies the other verbatim (adopting its
  /// capacity) — both are required for checkpoint/shard bit-determinism.
  void merge(const QuantileSketch& other);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  /// Total buffered items across levels (the memory footprint).
  [[nodiscard]] std::size_t stored() const noexcept;

  /// Approximate type-1 quantile: the smallest retained value whose
  /// cumulative weight reaches ceil(q * count). An empty sketch (count()
  /// == 0) has no quantiles and returns NaN — the documented empty-state
  /// contract (shards may own zero blocks of a configuration).
  [[nodiscard]] double quantile(double q) const;

  /// The paper's T_q = quantile(1 - q) (cf. SpreadingTimeSample::hp_time).
  /// NaN when empty, like quantile().
  [[nodiscard]] double hp_time(double q) const { return quantile(1.0 - q); }

  /// Exact serializable state (campaign checkpoints). Level-0 item *order*
  /// and the per-level keep_odd selectors are part of the state: both feed
  /// future compactions, so dropping either would break the bit-identity of
  /// a resumed campaign.
  struct LevelState {
    std::vector<double> items;
    bool keep_odd = false;
  };
  struct State {
    std::uint64_t count = 0;
    std::vector<LevelState> levels;
  };

  [[nodiscard]] State state() const;
  /// Restores a snapshot taken with state(); bit-exact. Keeps the sketch's
  /// own capacity (the checkpoint layer validates capacities match).
  void restore(const State& s);

 private:
  struct Level {
    std::vector<double> items;  // unsorted at level 0; sorted above
    bool keep_odd = false;      // alternating compaction selector
  };

  void compact(std::size_t level);
  Level& level_at(std::size_t level);

  std::size_t k_;
  std::vector<Level> levels_;
  std::uint64_t count_ = 0;
};

/// Bounded uniform sample by bottom-k priority sampling.
///
/// Each inserted value carries a caller-supplied 64-bit `tag` (the campaign
/// uses the global trial index, unique per configuration); its priority is
/// a SplitMix64 hash of (salt, tag). The reservoir keeps the k pairs with
/// the smallest priorities — a uniform sample without replacement whose
/// contents depend only on the inserted (tag, value) set, never on
/// insertion order, thread interleaving, or merge shape. With capacity >=
/// the number of insertions it retains everything, which determinism tests
/// exploit to recover exact per-trial results from a streamed campaign.
class ReservoirSample {
 public:
  explicit ReservoirSample(std::size_t capacity, std::uint64_t salt = 0);

  void add(double value, std::uint64_t tag);
  /// Keeps the bottom-k of the union. Merging an *empty* reservoir is an
  /// exact identity — in particular an empty operand's capacity does not
  /// shrink this reservoir — and merging *into* an empty reservoir copies
  /// the other verbatim (capacity and salt included).
  void merge(const ReservoirSample& other);

  /// Exact serializable state: the retained (tag, value) pairs in tag order
  /// (the canonical form — priorities are recomputed from the salt on
  /// restore) plus the total insertion count, which restore() cannot infer
  /// once the stream exceeded capacity.
  struct State {
    std::uint64_t count = 0;
    std::vector<std::pair<std::uint64_t, double>> entries;
  };

  [[nodiscard]] State state() const;
  /// Restores a snapshot taken with state(). The retained *set* is
  /// bit-exact; every observable output (values()/entries()/merges) is
  /// unchanged. Keeps this reservoir's capacity and salt.
  void restore(const State& s);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Retained values, ordered by tag (deterministic).
  [[nodiscard]] std::vector<double> values() const;
  /// Retained (tag, value) pairs, ordered by tag.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, double>> entries() const;

 private:
  struct Entry {
    std::uint64_t priority;
    std::uint64_t tag;
    double value;
  };

  /// Strict total order (priority, tag, value); "the k smallest" under it
  /// is a well-defined set, the basis of the order-independence guarantee.
  static bool entry_less(const Entry& a, const Entry& b) noexcept;

  void insert(const Entry& e);
  void shrink_to_capacity();

  std::size_t capacity_;
  std::uint64_t salt_;
  std::uint64_t count_ = 0;
  /// Plain append buffer while below capacity; a max-heap under entry_less
  /// from the moment it fills, so a full reservoir rejects the common
  /// above-threshold insertion in O(1) and replaces in O(log k).
  std::vector<Entry> entries_;
};

/// The campaign's per-configuration reduction: exact moments, sketched
/// quantiles, and a bounded reservoir, all advancing in one add() and
/// combining in one merge(). Constant memory per configuration.
class StreamingSummary {
 public:
  struct Options {
    std::size_t sketch_capacity = 256;
    std::size_t reservoir_capacity = 512;
    std::uint64_t reservoir_salt = 0;
  };

  StreamingSummary() : StreamingSummary(Options{}) {}
  explicit StreamingSummary(const Options& options);

  void add(double value, std::uint64_t tag);
  void merge(const StreamingSummary& other);

  /// Exact serializable state of all three accumulators (campaign
  /// checkpoints). restored() rebuilds a bit-identical summary given the
  /// same Options the original was constructed with.
  struct State {
    RunningMoments::State moments;
    QuantileSketch::State sketch;
    ReservoirSample::State reservoir;
  };

  [[nodiscard]] State state() const {
    return State{moments_.state(), sketch_.state(), reservoir_.state()};
  }
  [[nodiscard]] static StreamingSummary restored(const Options& options, const State& s);

  [[nodiscard]] const RunningMoments& moments() const noexcept { return moments_; }
  [[nodiscard]] const QuantileSketch& sketch() const noexcept { return sketch_; }
  [[nodiscard]] const ReservoirSample& reservoir() const noexcept { return reservoir_; }

  [[nodiscard]] std::uint64_t count() const noexcept { return moments_.count(); }
  [[nodiscard]] double mean() const noexcept { return moments_.mean(); }
  [[nodiscard]] double stddev() const noexcept { return moments_.stddev(); }
  [[nodiscard]] double stderr_mean() const noexcept { return moments_.stderr_mean(); }
  [[nodiscard]] double min() const noexcept { return moments_.min(); }
  [[nodiscard]] double max() const noexcept { return moments_.max(); }
  [[nodiscard]] double quantile(double q) const { return sketch_.quantile(q); }
  [[nodiscard]] double median() const { return sketch_.quantile(0.5); }
  [[nodiscard]] double hp_time(double q) const { return sketch_.hp_time(q); }

  /// Percentile-bootstrap CI for the mean, resampling the reservoir (the
  /// reservoir is itself a uniform subsample, so the interval is computed
  /// over min(capacity, count) points; with capacity >= count it coincides
  /// with the exact-sample bootstrap of SpreadingTimeSample::mean_ci).
  [[nodiscard]] BootstrapInterval mean_ci(double confidence = 0.95,
                                          std::size_t resamples = 400,
                                          std::uint64_t seed = 7) const;

 private:
  RunningMoments moments_;
  QuantileSketch sketch_;
  ReservoirSample reservoir_;
};

}  // namespace rumor::stats
