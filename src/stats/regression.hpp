// rumor/stats: least-squares fitting for growth-law estimation.
//
// The paper's claims are asymptotic (Theta(log n), Theta(n^{1/3}), O(sqrt n)
// gaps). The benches verify them by fitting measured spreading times against
// candidate growth laws:
//   * log-log slope  -> polynomial exponent (Acan gap graph: sync ~ n^{1/3})
//   * semi-log slope -> logarithmic growth (star graph: async ~ ln n)
#pragma once

#include <span>

namespace rumor::stats {

/// Ordinary least squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1]; 1 means a perfect line.
  double r_squared = 0.0;
};

/// Fits a line through (x[i], y[i]). Precondition: x.size() == y.size() >= 2
/// and the x values are not all identical.
[[nodiscard]] LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

/// Fits y = c * x^e by regressing log y on log x; returns e as `slope` and
/// log c as `intercept`. Preconditions as fit_linear, plus all inputs > 0.
/// Used to recover polynomial exponents from size sweeps.
[[nodiscard]] LinearFit fit_power_law(std::span<const double> x, std::span<const double> y);

/// Fits y = a * ln x + b by regressing y on log x; `slope` is a.
/// Used to verify logarithmic spreading-time laws (star graph, Theorem 1's
/// additive term). Preconditions as fit_linear, plus all x > 0.
[[nodiscard]] LinearFit fit_logarithmic(std::span<const double> x, std::span<const double> y);

}  // namespace rumor::stats
