#include "stats/curves.hpp"

#include <stdexcept>

namespace rumor::stats {

CurveAccumulator::CurveAccumulator(const Options& options)
    : sketch_capacity_(options.sketch_capacity),
      moments_(options.points),
      sketches_(options.points, QuantileSketch(options.sketch_capacity)) {}

void CurveAccumulator::add(const std::vector<double>& curve) {
  if (curve.empty()) {
    throw std::invalid_argument("CurveAccumulator::add: empty curve");
  }
  for (std::size_t k = 0; k < moments_.size(); ++k) {
    const double value = curve[k < curve.size() ? k : curve.size() - 1];
    moments_[k].add(value);
    sketches_[k].add(value);
  }
  ++trials_;
  if (curve.size() > max_len_) max_len_ = curve.size();
}

void CurveAccumulator::merge(const CurveAccumulator& other) {
  if (other.trials_ == 0) return;  // exact identity, whatever its grid
  if (trials_ == 0) {
    *this = other;  // adopt verbatim, grid included
    return;
  }
  if (points() != other.points()) {
    throw std::invalid_argument("CurveAccumulator::merge: grid length mismatch");
  }
  for (std::size_t k = 0; k < moments_.size(); ++k) {
    moments_[k].merge(other.moments_[k]);
    sketches_[k].merge(other.sketches_[k]);
  }
  trials_ += other.trials_;
  if (other.max_len_ > max_len_) max_len_ = other.max_len_;
}

CurveAccumulator::State CurveAccumulator::state() const {
  State s;
  s.trials = trials_;
  s.max_len = max_len_;
  s.moments.reserve(moments_.size());
  s.sketches.reserve(sketches_.size());
  for (const RunningMoments& m : moments_) s.moments.push_back(m.state());
  for (const QuantileSketch& q : sketches_) s.sketches.push_back(q.state());
  return s;
}

CurveAccumulator CurveAccumulator::restored(const Options& options, const State& s) {
  if (s.moments.size() != options.points || s.sketches.size() != options.points) {
    throw std::invalid_argument("CurveAccumulator::restored: grid length mismatch");
  }
  CurveAccumulator acc(options);
  acc.trials_ = s.trials;
  acc.max_len_ = s.max_len;
  for (std::size_t k = 0; k < options.points; ++k) {
    acc.moments_[k].restore(s.moments[k]);
    acc.sketches_[k].restore(s.sketches[k]);
  }
  return acc;
}

}  // namespace rumor::stats
