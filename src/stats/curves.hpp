// rumor/stats: mergeable streaming accumulator for spread curves (PR 9).
//
// A campaign trial instrumented with a core::SpreadProbe yields an
// informed-count curve — |informed| per synchronous round, or per fixed
// time bucket for the asynchronous engines. CurveAccumulator reduces those
// per-trial curves across a campaign the same way StreamingSummary reduces
// scalar spreading times: per grid point it keeps exact Welford moments and
// a deterministic quantile sketch, advances with one add() per trial, and
// combines with one merge() per block partial. Shorter curves are extended
// with their final value (the informed count is absorbing: once everyone
// knows, everyone keeps knowing), so every trial contributes to every grid
// point and the grid-point statistics are over the full trial count.
//
// Determinism contract (same as streaming.hpp): every operation is a pure
// function of the added curves and their order; campaigns add trials in
// trial order within a block and merge block partials in block-index order,
// so curve statistics are bit-identical across thread counts, block sizes,
// and checkpoint/resume/shard/merge flows. state()/restored() round-trip
// bit-exactly for the checkpoint layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/streaming.hpp"
#include "stats/summary.hpp"

namespace rumor::stats {

/// Campaign-level call-efficiency totals: the per-trial SpreadProbe
/// counters plus the trial's tick count and final informed count, summed
/// exactly (all integers, field-wise addition — merge order is irrelevant).
/// The conservation invariant tools/spread_report.py checks:
///   useful_push + useful_pull == informed_total - trials * |sources|.
struct ContactTotals {
  std::uint64_t contacts = 0;
  std::uint64_t useful_push = 0;
  std::uint64_t useful_pull = 0;
  std::uint64_t wasted_push = 0;
  std::uint64_t wasted_pull = 0;
  std::uint64_t empty_contacts = 0;
  /// Sum of result.rounds (round grids) or result.steps (time grids).
  std::uint64_t ticks = 0;
  /// Sum of the final informed counts (== trials * n for completed runs).
  std::uint64_t informed_total = 0;

  void merge(const ContactTotals& other) noexcept {
    contacts += other.contacts;
    useful_push += other.useful_push;
    useful_pull += other.useful_pull;
    wasted_push += other.wasted_push;
    wasted_pull += other.wasted_pull;
    empty_contacts += other.empty_contacts;
    ticks += other.ticks;
    informed_total += other.informed_total;
  }
};

/// Streaming reduction of informed-count curves at a fixed grid: per grid
/// point, exact moments plus a quantile sketch over the per-trial values.
class CurveAccumulator {
 public:
  struct Options {
    /// Grid length. Point k is round k (round grids) or time k * bucket
    /// (time grids); the accumulator itself is unit-agnostic.
    std::size_t points = 0;
    std::size_t sketch_capacity = 256;
  };

  CurveAccumulator() : CurveAccumulator(Options{}) {}
  explicit CurveAccumulator(const Options& options);

  /// Folds one trial's native curve (length >= 1) into the grid: point k
  /// takes curve[min(k, len - 1)] — curves shorter than the grid repeat
  /// their final (absorbing) value, longer ones are cut at the grid end
  /// but still recorded in max_len().
  void add(const std::vector<double>& curve);

  /// Merges another accumulator over the same grid. Merging an empty
  /// operand is an exact identity; merging *into* an empty accumulator
  /// adopts the other verbatim (grid included) — the same empty-state
  /// contract as QuantileSketch/ReservoirSample, required for shards that
  /// own zero blocks of a configuration. Throws std::invalid_argument when
  /// both sides are non-empty with different grid lengths.
  void merge(const CurveAccumulator& other);

  /// Exact serializable state (campaign checkpoints); moments and sketches
  /// are indexed by grid point.
  struct State {
    std::uint64_t trials = 0;
    std::uint64_t max_len = 0;
    std::vector<RunningMoments::State> moments;
    std::vector<QuantileSketch::State> sketches;
  };

  [[nodiscard]] State state() const;
  /// Rebuilds a bit-identical accumulator from state() given the Options
  /// the original was constructed with. Throws std::invalid_argument when
  /// the state's grid length disagrees with options.points.
  [[nodiscard]] static CurveAccumulator restored(const Options& options, const State& s);

  [[nodiscard]] std::size_t points() const noexcept { return moments_.size(); }
  [[nodiscard]] std::uint64_t trials() const noexcept { return trials_; }
  /// Longest native curve seen (max over trials; merged by max). For round
  /// grids this is rounds_max + 1, tying the curve back to the recorded
  /// spreading-time maximum exactly.
  [[nodiscard]] std::uint64_t max_len() const noexcept { return max_len_; }

  [[nodiscard]] const RunningMoments& moments_at(std::size_t k) const { return moments_[k]; }
  [[nodiscard]] double mean_at(std::size_t k) const { return moments_[k].mean(); }
  [[nodiscard]] double stddev_at(std::size_t k) const { return moments_[k].stddev(); }
  [[nodiscard]] double quantile_at(std::size_t k, double q) const {
    return sketches_[k].quantile(q);
  }

 private:
  std::size_t sketch_capacity_;
  std::uint64_t trials_ = 0;
  std::uint64_t max_len_ = 0;
  std::vector<RunningMoments> moments_;
  std::vector<QuantileSketch> sketches_;
};

}  // namespace rumor::stats
