// rumor/stats: numerically stable summary statistics for Monte-Carlo samples.
//
// Spreading-time experiments produce thousands of i.i.d. samples per
// configuration; this module reduces them to the quantities the paper's
// statements are about — expectations (Theorem 2) and high-probability
// quantiles T_q (Theorem 1) — together with uncertainty estimates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace rumor::stats {

/// Single-pass mean/variance accumulator (Welford's algorithm).
///
/// Welford is used instead of the naive sum-of-squares because spreading
/// times on large graphs can reach 1e6 with sub-unit variance, where the
/// naive form cancels catastrophically.
class RunningMoments {
 public:
  /// Exact serializable state (campaign checkpoints). `m2` is the raw sum
  /// of squared deviations — stored directly rather than recomputed from
  /// variance(), because the round-trip through variance would not be
  /// bit-exact.
  struct State {
    std::uint64_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  [[nodiscard]] State state() const noexcept { return {count_, mean_, m2_, min_, max_}; }

  /// Restores a snapshot taken with state(); bit-exact.
  void restore(const State& s) noexcept {
    count_ = s.count;
    mean_ = s.mean;
    m2_ = s.m2;
    min_ = s.min;
    max_ = s.max;
  }

  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_ || count_ == 1) min_ = x;
    if (x > max_ || count_ == 1) max_ = x;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean; 0 for fewer than two samples.
  [[nodiscard]] double stderr_mean() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merges another accumulator (Chan et al. parallel combination); used to
  /// combine per-thread partial results in the Monte-Carlo harness.
  void merge(const RunningMoments& other) noexcept;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Empirical quantile of `samples` at probability `q` in [0, 1].
///
/// Uses the inverted-CDF (type-1) definition: the smallest sample x such
/// that at least ceil(q * n) samples are <= x. This matches the paper's
/// definition T_q = min{t : Pr[T <= t] >= 1 - q} when called with
/// probability 1 - q. `samples` is copied and partially sorted; O(n).
[[nodiscard]] double quantile(std::span<const double> samples, double q);

/// In-place variant for repeated quantile queries: sorts `samples` once;
/// subsequent calls on the sorted span are O(1) via `quantile_sorted`.
[[nodiscard]] double quantile_sorted(std::span<const double> sorted_samples, double q);

/// The paper's T_q for a sample of spreading times: the empirical
/// (1 - q)-quantile, i.e. the time by which a fraction >= 1 - q of trials
/// had informed every node. For the "high probability" time T_{1/n} call
/// with q = 1/n (requires >= n samples to be meaningful; the harness caps
/// and documents this).
[[nodiscard]] double spreading_time_quantile(std::span<const double> samples, double q);

/// Percentile-bootstrap confidence interval for a statistic of the sample
/// mean. Re-samples `samples` with replacement `resamples` times. An empty
/// sample has no defined mean: all three fields are NaN (the documented
/// empty-state contract, reachable for e.g. a campaign shard that owns zero
/// blocks of a configuration).
struct BootstrapInterval {
  double lower = 0.0;
  double point = 0.0;
  double upper = 0.0;
};

[[nodiscard]] BootstrapInterval bootstrap_mean_ci(std::span<const double> samples,
                                                  double confidence, std::size_t resamples,
                                                  std::uint64_t seed);

[[nodiscard]] BootstrapInterval bootstrap_quantile_ci(std::span<const double> samples, double q,
                                                      double confidence, std::size_t resamples,
                                                      std::uint64_t seed);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; samples outside
/// the range are clamped into the edge buckets. Used by example programs to
/// render spreading-time distributions as ASCII plots.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_low(std::size_t bin) const noexcept;
  [[nodiscard]] double bin_high(std::size_t bin) const noexcept;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace rumor::stats
