#include "stats/streaming.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "rng/rng.hpp"

namespace rumor::stats {

// --- QuantileSketch ----------------------------------------------------------

QuantileSketch::QuantileSketch(std::size_t capacity_per_level)
    : k_(std::max<std::size_t>(capacity_per_level, 8)) {}

QuantileSketch::Level& QuantileSketch::level_at(std::size_t level) {
  if (level >= levels_.size()) levels_.resize(level + 1);
  return levels_[level];
}

void QuantileSketch::add(double x) {
  ++count_;
  level_at(0).items.push_back(x);
  // Compact only beyond capacity: a level may hold exactly k items, so
  // streams of up to k samples stay uncompacted (exact quantiles).
  if (levels_[0].items.size() > k_) compact(0);
}

void QuantileSketch::compact(std::size_t level) {
  // Sort, promote every second item of an even-sized prefix (each promoted
  // item doubles in weight, exactly representing the pair it came from); an
  // odd leftover item stays behind at its current weight so the sketch's
  // total stored weight always equals count(). The selector alternates
  // between even and odd positions on successive compactions so rank errors
  // cancel pairwise instead of accumulating with one sign.
  std::vector<double> promoted;
  {
    auto& lvl = level_at(level);
    std::sort(lvl.items.begin(), lvl.items.end());
    const std::size_t even = lvl.items.size() & ~std::size_t{1};
    promoted.reserve(even / 2);
    for (std::size_t i = lvl.keep_odd ? 1 : 0; i < even; i += 2) {
      promoted.push_back(lvl.items[i]);
    }
    lvl.keep_odd = !lvl.keep_odd;
    if (even < lvl.items.size()) {
      lvl.items.front() = lvl.items.back();
      lvl.items.resize(1);
    } else {
      lvl.items.clear();
    }
  }
  auto& next = level_at(level + 1);  // may reallocate levels_
  next.items.insert(next.items.end(), promoted.begin(), promoted.end());
  if (next.items.size() > k_) compact(level + 1);
}

void QuantileSketch::merge(const QuantileSketch& other) {
  // Empty operands must be exact identities: without the early-outs a merge
  // with an empty sketch could still grow levels_ (a bit-state change that
  // a checkpoint would faithfully — and wrongly — persist).
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  count_ += other.count_;
  for (std::size_t level = 0; level < other.levels_.size(); ++level) {
    auto& mine = level_at(level);
    const auto& theirs = other.levels_[level].items;
    mine.items.insert(mine.items.end(), theirs.begin(), theirs.end());
  }
  // Re-establish the capacity invariant bottom-up; a compaction can push
  // the next level over capacity, which the cascade inside compact handles.
  for (std::size_t level = 0; level < levels_.size(); ++level) {
    if (levels_[level].items.size() > k_) compact(level);
  }
}

std::size_t QuantileSketch::stored() const noexcept {
  std::size_t total = 0;
  for (const auto& lvl : levels_) total += lvl.items.size();
  return total;
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  std::vector<std::pair<double, std::uint64_t>> weighted;  // (value, weight)
  weighted.reserve(stored());
  for (std::size_t level = 0; level < levels_.size(); ++level) {
    const std::uint64_t weight = std::uint64_t{1} << level;
    for (double x : levels_[level].items) weighted.emplace_back(x, weight);
  }
  assert(!weighted.empty());
  std::sort(weighted.begin(), weighted.end());
  // Type-1 target rank, matching stats::quantile_sorted: the smallest value
  // whose cumulative weight reaches ceil(q * count).
  const double clamped = std::clamp(q, 0.0, 1.0);
  std::uint64_t target = 1;
  if (clamped > 0.0) {
    const double pos = std::ceil(clamped * static_cast<double>(count_));
    target = pos < 1.0 ? 1 : static_cast<std::uint64_t>(pos);
    if (target > count_) target = count_;
  }
  std::uint64_t cumulative = 0;
  for (const auto& [value, weight] : weighted) {
    cumulative += weight;
    if (cumulative >= target) return value;
  }
  return weighted.back().first;
}

QuantileSketch::State QuantileSketch::state() const {
  State s;
  s.count = count_;
  s.levels.reserve(levels_.size());
  for (const Level& lvl : levels_) s.levels.push_back(LevelState{lvl.items, lvl.keep_odd});
  return s;
}

void QuantileSketch::restore(const State& s) {
  count_ = s.count;
  levels_.clear();
  levels_.reserve(s.levels.size());
  for (const LevelState& lvl : s.levels) levels_.push_back(Level{lvl.items, lvl.keep_odd});
}

// --- ReservoirSample ---------------------------------------------------------

namespace {

/// Order-independent priority: a SplitMix64 hash of (salt, tag). Strict
/// total order via (priority, tag, value) ties means "the k smallest" is a
/// well-defined set, so reservoir contents cannot depend on merge shape.
std::uint64_t priority_of(std::uint64_t salt, std::uint64_t tag) {
  rng::SplitMix64 sm(salt ^ (tag * 0x9e3779b97f4a7c15ULL + 0x7f4a7c15ca01d9e3ULL));
  return sm.next();
}

}  // namespace

ReservoirSample::ReservoirSample(std::size_t capacity, std::uint64_t salt)
    : capacity_(std::max<std::size_t>(capacity, 1)), salt_(salt) {}

bool ReservoirSample::entry_less(const Entry& a, const Entry& b) noexcept {
  if (a.priority != b.priority) return a.priority < b.priority;
  if (a.tag != b.tag) return a.tag < b.tag;
  return a.value < b.value;
}

void ReservoirSample::add(double value, std::uint64_t tag) {
  ++count_;
  insert(Entry{priority_of(salt_, tag), tag, value});
}

void ReservoirSample::insert(const Entry& e) {
  if (entries_.size() < capacity_) {
    entries_.push_back(e);
    // Heap order is established exactly when the reservoir fills; below
    // capacity the vector is a plain append buffer.
    if (entries_.size() == capacity_) {
      std::make_heap(entries_.begin(), entries_.end(), entry_less);
    }
    return;
  }
  // Full: front() is the largest retained entry, so anything at or above
  // it — the overwhelmingly common case in a long stream — is rejected in
  // O(1); qualifying entries replace it in O(log k).
  if (!entry_less(e, entries_.front())) return;
  std::pop_heap(entries_.begin(), entries_.end(), entry_less);
  entries_.back() = e;
  std::push_heap(entries_.begin(), entries_.end(), entry_less);
}

void ReservoirSample::merge(const ReservoirSample& other) {
  // Exact-identity early-outs: an empty operand must not shrink this
  // reservoir's capacity, and merging into an empty reservoir adopts the
  // other verbatim (checkpoint/shard merges rely on both).
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  count_ += other.count_;
  if (other.capacity_ < capacity_) {
    capacity_ = other.capacity_;
    shrink_to_capacity();
  }
  for (const Entry& e : other.entries_) insert(e);
}

ReservoirSample::State ReservoirSample::state() const {
  State s;
  s.count = count_;
  s.entries = entries();  // tag-sorted: the canonical, layout-free form
  return s;
}

void ReservoirSample::restore(const State& s) {
  entries_.clear();
  for (const auto& [tag, value] : s.entries) insert(Entry{priority_of(salt_, tag), tag, value});
  count_ = s.count;
}

void ReservoirSample::shrink_to_capacity() {
  if (entries_.size() < capacity_) return;
  if (entries_.size() > capacity_) {
    std::nth_element(entries_.begin(),
                     entries_.begin() + static_cast<std::ptrdiff_t>(capacity_ - 1),
                     entries_.end(), entry_less);
    entries_.resize(capacity_);
  }
  std::make_heap(entries_.begin(), entries_.end(), entry_less);
}

std::vector<double> ReservoirSample::values() const {
  std::vector<double> out;
  out.reserve(entries_.size());
  for (const auto& [tag, value] : entries()) out.push_back(value);
  return out;
}

std::vector<std::pair<std::uint64_t, double>> ReservoirSample::entries() const {
  std::vector<std::pair<std::uint64_t, double>> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.emplace_back(e.tag, e.value);
  std::sort(out.begin(), out.end());
  return out;
}

// --- StreamingSummary --------------------------------------------------------

StreamingSummary::StreamingSummary(const Options& options)
    : sketch_(options.sketch_capacity),
      reservoir_(options.reservoir_capacity, options.reservoir_salt) {}

void StreamingSummary::add(double value, std::uint64_t tag) {
  moments_.add(value);
  sketch_.add(value);
  reservoir_.add(value, tag);
}

void StreamingSummary::merge(const StreamingSummary& other) {
  moments_.merge(other.moments_);
  sketch_.merge(other.sketch_);
  reservoir_.merge(other.reservoir_);
}

StreamingSummary StreamingSummary::restored(const Options& options, const State& s) {
  StreamingSummary out(options);
  out.moments_.restore(s.moments);
  out.sketch_.restore(s.sketch);
  out.reservoir_.restore(s.reservoir);
  return out;
}

BootstrapInterval StreamingSummary::mean_ci(double confidence, std::size_t resamples,
                                            std::uint64_t seed) const {
  // Sorted by value, so that with reservoir capacity >= count this interval
  // is bit-identical to SpreadingTimeSample::mean_ci (which bootstraps the
  // sorted sample vector).
  std::vector<double> values = reservoir_.values();
  std::sort(values.begin(), values.end());
  return bootstrap_mean_ci(values, confidence, resamples, seed);
}

}  // namespace rumor::stats
