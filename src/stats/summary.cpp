#include "stats/summary.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "rng/rng.hpp"

namespace rumor::stats {

double RunningMoments::stddev() const noexcept { return std::sqrt(variance()); }

double RunningMoments::stderr_mean() const noexcept {
  return count_ > 1 ? stddev() / std::sqrt(static_cast<double>(count_)) : 0.0;
}

void RunningMoments::merge(const RunningMoments& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double quantile(std::span<const double> samples, double q) {
  assert(!samples.empty());
  std::vector<double> copy(samples.begin(), samples.end());
  const double clamped = std::clamp(q, 0.0, 1.0);
  // Index of the type-1 quantile: smallest k with (k+1)/n >= q.
  const std::size_t n = copy.size();
  std::size_t k = 0;
  if (clamped > 0.0) {
    const double pos = std::ceil(clamped * static_cast<double>(n)) - 1.0;
    k = pos < 0.0 ? 0 : static_cast<std::size_t>(pos);
    if (k >= n) k = n - 1;
  }
  std::nth_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(k), copy.end());
  return copy[k];
}

double quantile_sorted(std::span<const double> sorted_samples, double q) {
  assert(!sorted_samples.empty());
  assert(std::is_sorted(sorted_samples.begin(), sorted_samples.end()));
  const double clamped = std::clamp(q, 0.0, 1.0);
  const std::size_t n = sorted_samples.size();
  std::size_t k = 0;
  if (clamped > 0.0) {
    const double pos = std::ceil(clamped * static_cast<double>(n)) - 1.0;
    k = pos < 0.0 ? 0 : static_cast<std::size_t>(pos);
    if (k >= n) k = n - 1;
  }
  return sorted_samples[k];
}

double spreading_time_quantile(std::span<const double> samples, double q) {
  return quantile(samples, 1.0 - q);
}

namespace {

template <class Statistic>
BootstrapInterval bootstrap_ci(std::span<const double> samples, double confidence,
                               std::size_t resamples, std::uint64_t seed, Statistic stat) {
  if (samples.empty()) {
    // No samples -> no defined statistic. NaN (not 0) so downstream
    // consumers cannot mistake the empty state for a measured value.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    return BootstrapInterval{nan, nan, nan};
  }
  assert(confidence > 0.0 && confidence < 1.0);
  rng::Engine eng = rng::derive_stream(seed, 0xb007ULL);
  std::vector<double> resample(samples.size());
  std::vector<double> estimates;
  estimates.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    for (auto& x : resample) {
      x = samples[static_cast<std::size_t>(rng::uniform_below(eng, samples.size()))];
    }
    estimates.push_back(stat(std::span<const double>(resample)));
  }
  std::sort(estimates.begin(), estimates.end());
  const double alpha = (1.0 - confidence) / 2.0;
  BootstrapInterval ci;
  ci.lower = quantile_sorted(estimates, alpha);
  ci.upper = quantile_sorted(estimates, 1.0 - alpha);
  ci.point = stat(samples);
  return ci;
}

}  // namespace

BootstrapInterval bootstrap_mean_ci(std::span<const double> samples, double confidence,
                                    std::size_t resamples, std::uint64_t seed) {
  return bootstrap_ci(samples, confidence, resamples, seed, [](std::span<const double> s) {
    double sum = 0.0;
    for (double x : s) sum += x;
    return sum / static_cast<double>(s.size());
  });
}

BootstrapInterval bootstrap_quantile_ci(std::span<const double> samples, double q,
                                        double confidence, std::size_t resamples,
                                        std::uint64_t seed) {
  return bootstrap_ci(samples, confidence, resamples, seed,
                      [q](std::span<const double> s) { return quantile(s, q); });
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  assert(hi > lo);
  assert(bins > 0);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width));
  bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_low(std::size_t bin) const noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_high(std::size_t bin) const noexcept {
  return bin_low(bin + 1);
}

}  // namespace rumor::stats
