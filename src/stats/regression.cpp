#include "stats/regression.hpp"

#include <cassert>
#include <cmath>
#include <vector>

namespace rumor::stats {

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  assert(x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  assert(sxx > 0.0 && "x values must not all be identical");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  // r^2 = explained / total variance; define as 1 when y is constant (the
  // fit then reproduces it exactly).
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

namespace {

std::vector<double> log_all(std::span<const double> v) {
  std::vector<double> out;
  out.reserve(v.size());
  for (double x : v) {
    assert(x > 0.0);
    out.push_back(std::log(x));
  }
  return out;
}

}  // namespace

LinearFit fit_power_law(std::span<const double> x, std::span<const double> y) {
  const auto lx = log_all(x);
  const auto ly = log_all(y);
  return fit_linear(lx, ly);
}

LinearFit fit_logarithmic(std::span<const double> x, std::span<const double> y) {
  const auto lx = log_all(x);
  return fit_linear(lx, std::span<const double>(y));
}

}  // namespace rumor::stats
