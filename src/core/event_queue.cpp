#include "core/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>

namespace rumor::core {

namespace {

/// Target number of imminent events per bucket. Larger buckets amortize the
/// per-bucket refinement and keep the header array small (L2-resident);
/// the per-event sort cost stays O(log k).
constexpr double kTargetOccupancy = 16.0;

std::size_t window_buckets(std::size_t expected_events) {
  // Enough buckets that a typical re-arm lands inside the window, clamped
  // so degenerate hints cannot balloon memory.
  const std::size_t want = std::clamp<std::size_t>(expected_events / 8, 64, 1u << 14);
  return std::bit_ceil(want);
}

}  // namespace

EventQueue::EventQueue(double expected_total_rate, std::size_t expected_events) {
  const double width =
      expected_total_rate > 0.0 ? kTargetOccupancy / expected_total_rate : 1.0;
  inv_width_ = 1.0 / width;
  buckets_.resize(window_buckets(expected_events));
}

void EventQueue::push(double t, std::uint64_t payload) {
  assert(t >= 0.0);
  ++size_;
  std::uint64_t idx = bucket_index(t);
  // Engines only push re-arms at or after the last popped time, whose
  // bucket the cursor has not passed; a generic caller pushing into the
  // swept past is clamped to the cursor bucket, which still pops in the
  // correct order (the bucket is kept sorted once the cursor entered it).
  if (idx < base_ + cursor_) idx = base_ + cursor_;
  if (idx >= base_ + buckets_.size()) {
    overflow_.push_back(Item{t, payload});
    return;
  }
  std::vector<Item>& bucket = buckets_[static_cast<std::size_t>(idx - base_)];
  if (idx == base_ + cursor_ && cursor_sorted_) {
    // The cursor already refined this bucket: keep it sorted, inserting
    // after equal timestamps (FIFO) and never before the next pop slot.
    std::size_t at = bucket.size();
    while (at > pop_pos_ && bucket[at - 1].t > t) --at;
    bucket.insert(bucket.begin() + static_cast<std::ptrdiff_t>(at), Item{t, payload});
    return;
  }
  bucket.push_back(Item{t, payload});
}

EventQueue::Event EventQueue::pop_min() {
  assert(size_ > 0);
  for (;;) {
    std::vector<Item>& bucket = buckets_[cursor_];
    if (!cursor_sorted_ && !bucket.empty()) {
      sort_bucket(bucket);
      pop_pos_ = 0;
      cursor_sorted_ = true;
    }
    if (cursor_sorted_ && pop_pos_ < bucket.size()) break;
    // Cursor bucket drained: release it and move on.
    bucket.clear();
    cursor_sorted_ = false;
    pop_pos_ = 0;
    ++cursor_;
    while (cursor_ < buckets_.size() && buckets_[cursor_].empty()) ++cursor_;
    if (cursor_ == buckets_.size()) advance_window();
  }
  const Item& item = buckets_[cursor_][pop_pos_++];
  --size_;
  return Event{item.t, item.payload};
}

void EventQueue::sort_bucket(std::vector<Item>& bucket) {
  // Insertion sort: stable (push order survives among equal timestamps)
  // and ideal for the O(kTargetOccupancy) items a bucket holds.
  for (std::size_t i = 1; i < bucket.size(); ++i) {
    const Item item = bucket[i];
    std::size_t j = i;
    while (j > 0 && bucket[j - 1].t > item.t) {
      bucket[j] = bucket[j - 1];
      --j;
    }
    bucket[j] = item;
  }
}

void EventQueue::advance_window() {
  assert(!overflow_.empty() && "pop_min on an empty window without overflow");
  ++refinements_;
  double min_t = std::numeric_limits<double>::infinity();
  for (const Item& item : overflow_) min_t = std::min(min_t, item.t);
  base_ = bucket_index(min_t);
  cursor_ = 0;
  pop_pos_ = 0;
  cursor_sorted_ = false;
  // Refine: move every overflow event that now falls inside the window into
  // its bucket (in push order, keeping ties FIFO); compact the remainder.
  std::size_t keep = 0;
  const std::uint64_t end = base_ + buckets_.size();
  for (const Item& item : overflow_) {
    const std::uint64_t idx = bucket_index(item.t);
    if (idx < end) {
      buckets_[static_cast<std::size_t>(idx - base_)].push_back(item);
    } else {
      overflow_[keep++] = item;
    }
  }
  overflow_.resize(keep);
  while (buckets_[cursor_].empty()) ++cursor_;  // min bucket is non-empty
}

}  // namespace rumor::core
