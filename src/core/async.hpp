// rumor/core: the asynchronous rumor-spreading engine (pp-a, push-a, pull-a).
//
// Section 2 of the paper gives three equivalent descriptions of pp-a, all of
// which are implemented here and verified equivalent by the test suite:
//
//   kPerNodeClocks  every node has an independent Poisson clock of rate 1;
//                   on a tick the node contacts a uniformly random neighbor.
//   kPerEdgeClocks  every ordered adjacent pair (v, w) has an independent
//                   Poisson clock of rate 1/deg(v); on a tick v contacts w.
//   kGlobalClock    a single Poisson clock of rate n; on a tick a uniformly
//                   random node contacts a uniformly random neighbor.
//
// The equivalence is the superposition/thinning property of Poisson
// processes plus the memorylessness of the exponential distribution. The
// global-clock view is the fastest (no priority queue) and is the default.
#pragma once

#include "core/protocol.hpp"
#include "core/spread_probe.hpp"
#include "core/trial.hpp"
#include "rng/rng.hpp"

namespace rumor::core {

/// Shared knobs (core/trial.hpp): max_ticks caps *steps* here (0 derives
/// ~200 n^2 log n steps, i.e. ~200 n log n time units); message_loss thins
/// contacts exactly like the sync engine; the probe counts every event
/// (a tick of an isolated node as an empty contact). record_history is
/// ignored — the async engine always reports per-node inform times.
/// Dynamics: epochs are `period` time units long and contacts route
/// through the view. Only the global-clock equivalent supports dynamics
/// (the per-node/per-edge heaps pre-draw clock ticks against a fixed
/// adjacency); run_async throws std::runtime_error on other views.
struct AsyncOptions : TrialOptions {
  AsyncView view = AsyncView::kGlobalClock;
};

/// Runs one asynchronous execution from `source`; reports the time (in time
/// units — the measure of Theorems 1 and 2) and the number of steps until
/// all nodes were informed. Precondition: source < g.num_nodes().
[[nodiscard]] AsyncResult run_async(const Graph& g, NodeId source, rng::Engine& eng,
                                    const AsyncOptions& options = {});

/// The retained reference engine: identical to run_async except that the
/// per-edge view runs on the original binary heap instead of the calendar
/// EventQueue (event_queue.hpp). Both pop events in strictly increasing
/// timestamp order with FIFO tie-breaking, so results — and engine state —
/// are bit-identical; kept as the acceptance oracle for the bucketed queue
/// (tests/test_fastpath.cpp), not for production use.
[[nodiscard]] AsyncResult run_async_reference(const Graph& g, NodeId source, rng::Engine& eng,
                                              const AsyncOptions& options = {});

/// Default step cap used when TrialOptions::max_ticks == 0.
[[nodiscard]] std::uint64_t default_step_cap(NodeId n) noexcept;

}  // namespace rumor::core
