// rumor/core: the asynchronous rumor-spreading engine (pp-a, push-a, pull-a).
//
// Section 2 of the paper gives three equivalent descriptions of pp-a, all of
// which are implemented here and verified equivalent by the test suite:
//
//   kPerNodeClocks  every node has an independent Poisson clock of rate 1;
//                   on a tick the node contacts a uniformly random neighbor.
//   kPerEdgeClocks  every ordered adjacent pair (v, w) has an independent
//                   Poisson clock of rate 1/deg(v); on a tick v contacts w.
//   kGlobalClock    a single Poisson clock of rate n; on a tick a uniformly
//                   random node contacts a uniformly random neighbor.
//
// The equivalence is the superposition/thinning property of Poisson
// processes plus the memorylessness of the exponential distribution. The
// global-clock view is the fastest (no priority queue) and is the default.
#pragma once

#include "core/protocol.hpp"
#include "core/spread_probe.hpp"
#include "rng/rng.hpp"

namespace rumor::dynamics {
class DynamicGraphView;
}  // namespace rumor::dynamics

namespace rumor::core {

enum class AsyncView : std::uint8_t {
  kGlobalClock,
  kPerNodeClocks,
  kPerEdgeClocks,
};

struct AsyncOptions {
  Mode mode = Mode::kPushPull;
  AsyncView view = AsyncView::kGlobalClock;
  /// Abort once this many steps have executed; 0 derives a generous cap from
  /// n (~200 n^2 log n steps, i.e. ~200 n log n time units).
  std::uint64_t max_steps = 0;
  /// Fault injection (extension): probability that a contact carries no
  /// rumor. See SyncOptions::message_loss.
  double message_loss = 0.0;
  /// Additional nodes informed at time 0 (extension: multi-source).
  std::vector<NodeId> extra_sources;
  /// Temporal/weighted overlay (extension, dynamics/churn.hpp): epochs are
  /// `period` time units long and contacts route through the view. Only
  /// the global-clock equivalent supports dynamics (the per-node/per-edge
  /// heaps pre-draw clock ticks against a fixed adjacency); run_async
  /// throws std::runtime_error on other views. Null = the static model,
  /// randomness consumption unchanged.
  dynamics::DynamicGraphView* dynamics = nullptr;
  /// Spread telemetry (spread_probe.hpp): every event is counted — a tick
  /// of an isolated node as an empty contact, everything else classified
  /// useful/wasted per direction at its event time. Null costs one
  /// predictable check per event; a probe never changes randomness
  /// consumption or the result.
  SpreadProbe* probe = nullptr;
};

/// Runs one asynchronous execution from `source`; reports the time (in time
/// units — the measure of Theorems 1 and 2) and the number of steps until
/// all nodes were informed. Precondition: source < g.num_nodes().
[[nodiscard]] AsyncResult run_async(const Graph& g, NodeId source, rng::Engine& eng,
                                    const AsyncOptions& options = {});

/// The retained reference engine: identical to run_async except that the
/// per-edge view runs on the original binary heap instead of the calendar
/// EventQueue (event_queue.hpp). Both pop events in strictly increasing
/// timestamp order with FIFO tie-breaking, so results — and engine state —
/// are bit-identical; kept as the acceptance oracle for the bucketed queue
/// (tests/test_fastpath.cpp), not for production use.
[[nodiscard]] AsyncResult run_async_reference(const Graph& g, NodeId source, rng::Engine& eng,
                                              const AsyncOptions& options = {});

/// Default step cap used when AsyncOptions::max_steps == 0.
[[nodiscard]] std::uint64_t default_step_cap(NodeId n) noexcept;

}  // namespace rumor::core
