#include "core/batch_sync.hpp"

#include <array>
#include <bit>
#include <cassert>
#include <numeric>
#include <stdexcept>
#include <string>

#include "core/sync.hpp"

namespace rumor::core {

namespace {

/// Serves engine output in 32-bit halves: two neighbor draws (or loss
/// coins) share one xoshiro step, half the stream cost of the single-trial
/// engines' 64-bit draws. Part of the engine's documented randomness-
/// consumption model (docs/ENGINES.md) — NOT interchangeable with
/// rng::uniform_below, which is exactly why batch_sync is held to
/// distributional rather than bit-identical equality.
struct HalfSource {
  rng::Engine& eng;
  std::uint64_t word = 0;
  bool have_low = false;

  std::uint32_t next32() {
    if (have_low) {
      have_low = false;
      return static_cast<std::uint32_t>(word);
    }
    word = eng.next();
    have_low = true;
    return static_cast<std::uint32_t>(word >> 32);
  }
};

/// Lemire's unbiased bounded draw on 32-bit halves (the 64-bit original is
/// rng::uniform_below). Bounds here are node degrees, always < 2^32.
std::uint32_t uniform_below32(HalfSource& src, std::uint32_t bound) {
  std::uint64_t m = static_cast<std::uint64_t>(src.next32()) * bound;
  auto low = static_cast<std::uint32_t>(m);
  if (low < bound) {
    const std::uint32_t threshold = (0u - bound) % bound;
    while (low < threshold) {
      m = static_cast<std::uint64_t>(src.next32()) * bound;
      low = static_cast<std::uint32_t>(m);
    }
  }
  return static_cast<std::uint32_t>(m >> 32);
}

/// The lane-parallel round loop, specialized per (mode, loss, regularity)
/// like run_sync's scan. Per node, two word aggregates over the neighbor
/// informed words — nbr_or (lanes with >= 1 informed neighbor) and nbr_and
/// (lanes where every neighbor is informed) — split each lane into one of
/// four per-node outcomes *before* any randomness is spent:
///
///   push, all neighbors informed   -> no-op, skipped (push cannot fire);
///   pull, no neighbor informed     -> no-op, skipped (pull cannot fire);
///   pull, all neighbors informed   -> fires surely: no neighbor draw, only
///                                     the loss coin (if any);
///   otherwise                      -> a real contact draw.
///
/// Skipped draws are ones run_sync performs but whose outcomes cannot
/// change the lane's informed set, and the sure-pull shortcut samples the
/// exact success law (any neighbor is informed, so which one is contacted
/// is irrelevant) — each lane's process law is unchanged; this is where
/// the batch engine's per-trial throughput comes from, since the mixing
/// phase makes most of the graph interior a no-op in every lane at once.
/// The aggregate loop exits early once the masks it feeds are settled
/// (monotone: nbr_and only loses candidate bits, nbr_or only covers more),
/// so sparse frontiers do not pay the full degree scan. The draw bodies
/// are branch-free in the lossless case: exchange outcomes are ORed into
/// the pending word as masked bits, so mixing rounds pay no
/// mispredictions. With loss, the Bernoulli is drawn iff the exchange
/// would fire (the same endpoint condition run_sync uses), at 2^-32 coin
/// resolution — far below anything a distributional gate can resolve.
template <Mode M, bool HasLoss, bool Regular>
void run_lane_rounds(const Graph& g, HalfSource& src, std::uint64_t loss_threshold,
                     std::uint64_t cap, std::vector<std::uint64_t>& informed,
                     std::vector<std::uint64_t>& pending,
                     std::array<NodeId, kMaxBatchLanes>& remaining, std::uint64_t& live,
                     BatchSyncResult& out) {
  const NodeId n = g.num_nodes();
  const std::uint32_t regular_degree = Regular ? g.degree(0) : 0;
  const NodeId* const flat_neighbors = Regular ? g.neighbors(0).data() : nullptr;
  std::uint64_t* const __restrict informed_words = informed.data();
  std::uint64_t* const __restrict pending_words = pending.data();

  for (std::uint64_t r = 1; live != 0 && r <= cap; ++r) {
    for (NodeId v = 0; v < n; ++v) {
      const std::uint64_t caller = informed_words[v];
      std::uint64_t push_cand = 0;
      std::uint64_t pull_cand = 0;
      if constexpr (M == Mode::kPush) {
        push_cand = live & caller;
        if (push_cand == 0) continue;
      } else if constexpr (M == Mode::kPull) {
        pull_cand = live & ~caller;
        if (pull_cand == 0) continue;
      } else {
        push_cand = live & caller;
        pull_cand = live & ~caller;
      }
      const NodeId* row;
      std::uint32_t deg;
      if constexpr (Regular) {
        deg = regular_degree;
        row = flat_neighbors + static_cast<std::uint64_t>(v) * regular_degree;
      } else {
        const auto nbrs = g.neighbors(v);
        deg = static_cast<std::uint32_t>(nbrs.size());
        if (deg == 0) continue;
        row = nbrs.data();
      }
      std::uint64_t nbr_or = 0;
      std::uint64_t nbr_and = ~std::uint64_t{0};
      for (std::uint32_t i = 0; i < deg; ++i) {
        nbr_or |= informed_words[row[i]];
        nbr_and &= informed_words[row[i]];
        // Settled once no candidate lane can still be a sure-fire or a
        // sure-skip: and-bits only shrink and or-bits only grow, so at
        // this point the three masks below equal their full-degree values.
        if (((push_cand | pull_cand) & nbr_and) == 0 && (pull_cand & ~nbr_or) == 0) break;
      }
      if constexpr (M != Mode::kPush) {
        const std::uint64_t sure = pull_cand & nbr_and;
        if (sure != 0) {
          if constexpr (!HasLoss) {
            pending_words[v] |= sure;
          } else {
            std::uint64_t coin = sure;
            do {
              const std::uint64_t bit = coin & (~coin + 1);
              coin &= coin - 1;
              if (static_cast<std::uint64_t>(src.next32()) >= loss_threshold) {
                pending_words[v] |= bit;
              }
            } while (coin != 0);
          }
        }
        std::uint64_t draw = pull_cand & nbr_or & ~nbr_and;
        while (draw != 0) {
          const auto lane = static_cast<unsigned>(std::countr_zero(draw));
          draw &= draw - 1;
          const std::uint64_t bit = 1ull << lane;
          const std::uint64_t w_word = informed_words[row[uniform_below32(src, deg)]];
          if constexpr (!HasLoss) {
            // Caller uninformed by construction: learn iff callee knows.
            pending_words[v] |= bit & w_word;
          } else {
            if ((w_word & bit) != 0 &&
                static_cast<std::uint64_t>(src.next32()) >= loss_threshold) {
              pending_words[v] |= bit;
            }
          }
        }
      }
      if constexpr (M != Mode::kPull) {
        std::uint64_t draw = push_cand & ~nbr_and;
        while (draw != 0) {
          const auto lane = static_cast<unsigned>(std::countr_zero(draw));
          draw &= draw - 1;
          const std::uint64_t bit = 1ull << lane;
          const NodeId w = row[uniform_below32(src, deg)];
          if constexpr (!HasLoss) {
            // Caller informed by construction: transmit iff callee is not.
            pending_words[w] |= bit & ~informed_words[w];
          } else {
            if ((informed_words[w] & bit) == 0 &&
                static_cast<std::uint64_t>(src.next32()) >= loss_threshold) {
              pending_words[w] |= bit;
            }
          }
        }
      }
    }
    // Commit after the scan so every exchange saw the pre-round snapshot;
    // the word scan stamps each newly informed (node, lane) pair once and
    // retires lanes whose last node just learned the rumor.
    for (NodeId v = 0; v < n; ++v) {
      std::uint64_t newly = pending_words[v] & ~informed_words[v];
      pending_words[v] = 0;
      if (newly == 0) continue;
      informed_words[v] |= newly;
      do {
        const auto lane = static_cast<unsigned>(std::countr_zero(newly));
        newly &= newly - 1;
        if (--remaining[lane] == 0) {
          out.rounds[lane] = r;
          live &= ~(1ull << lane);
        }
      } while (newly != 0);
    }
  }
}

template <Mode M, bool HasLoss>
void dispatch_scan(const Graph& g, HalfSource& src, std::uint64_t loss_threshold,
                   std::uint64_t cap, std::vector<std::uint64_t>& informed,
                   std::vector<std::uint64_t>& pending,
                   std::array<NodeId, kMaxBatchLanes>& remaining, std::uint64_t& live,
                   BatchSyncResult& out) {
  // Same regularity condition as run_sync's fast path: one flat neighbor
  // row, no per-node offset loads.
  if (g.num_nodes() > 0 && g.degree(0) > 0 && g.is_regular()) {
    run_lane_rounds<M, HasLoss, true>(g, src, loss_threshold, cap, informed, pending,
                                      remaining, live, out);
  } else {
    run_lane_rounds<M, HasLoss, false>(g, src, loss_threshold, cap, informed, pending,
                                       remaining, live, out);
  }
}

template <Mode M>
void dispatch_loss(const Graph& g, HalfSource& src, double message_loss, std::uint64_t cap,
                   std::vector<std::uint64_t>& informed, std::vector<std::uint64_t>& pending,
                   std::array<NodeId, kMaxBatchLanes>& remaining, std::uint64_t& live,
                   BatchSyncResult& out) {
  // Coin threshold in 32-bit halves: lost iff draw < loss * 2^32 (the
  // loss == 1.0 endpoint maps to 2^32, above every 32-bit draw).
  const auto loss_threshold = static_cast<std::uint64_t>(message_loss * 4294967296.0);
  if (message_loss > 0.0) {
    dispatch_scan<M, true>(g, src, loss_threshold, cap, informed, pending, remaining, live,
                           out);
  } else {
    dispatch_scan<M, false>(g, src, 0, cap, informed, pending, remaining, live, out);
  }
}

}  // namespace

BatchSyncResult run_batch_sync(const Graph& g, NodeId source, rng::Engine& eng,
                               const BatchSyncOptions& options) {
  const NodeId n = g.num_nodes();
  assert(source < n);
  if (options.lanes == 0 || options.lanes > kMaxBatchLanes) {
    throw std::invalid_argument("batch_sync: lanes must be in 1.." +
                                std::to_string(kMaxBatchLanes));
  }
  if (options.record_history || options.probe != nullptr || options.dynamics != nullptr) {
    throw std::runtime_error(
        "batch_sync: record_history, probe, and dynamics are unsupported "
        "(use the sync engine for per-trial telemetry)");
  }

  const std::uint32_t lanes = options.lanes;
  const std::uint64_t lane_mask =
      lanes == kMaxBatchLanes ? ~std::uint64_t{0} : (std::uint64_t{1} << lanes) - 1;
  const std::uint64_t cap = options.max_ticks != 0 ? options.max_ticks : default_round_cap(n);

  BatchSyncResult out;
  out.lanes = lanes;
  out.rounds.assign(lanes, cap);

  std::vector<std::uint64_t> informed(n, 0);
  std::vector<std::uint64_t> pending(n, 0);
  NodeId seeded = 1;
  informed[source] = lane_mask;
  for (NodeId extra : options.extra_sources) {
    assert(extra < n);
    if (informed[extra] == 0) {
      informed[extra] = lane_mask;
      ++seeded;
    }
  }

  std::array<NodeId, kMaxBatchLanes> remaining{};
  remaining.fill(n - seeded);
  std::uint64_t live = n - seeded == 0 ? 0 : lane_mask;
  if (live == 0) {
    out.rounds.assign(lanes, 0);
    out.completed = true;
    return out;
  }

  HalfSource src{eng};
  switch (options.mode) {
    case Mode::kPush:
      dispatch_loss<Mode::kPush>(g, src, options.message_loss, cap, informed, pending,
                                 remaining, live, out);
      break;
    case Mode::kPull:
      dispatch_loss<Mode::kPull>(g, src, options.message_loss, cap, informed, pending,
                                 remaining, live, out);
      break;
    case Mode::kPushPull:
      dispatch_loss<Mode::kPushPull>(g, src, options.message_loss, cap, informed, pending,
                                     remaining, live, out);
      break;
  }

  out.completed = live == 0;
  out.total_rounds = std::accumulate(out.rounds.begin(), out.rounds.end(), std::uint64_t{0});
  return out;
}

}  // namespace rumor::core
