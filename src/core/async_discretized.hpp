// rumor/core: time-sliced approximation of the asynchronous protocol.
//
// Ablation substrate for the design choice called out in DESIGN.md §5: the
// library simulates pp-a exactly (event-driven, exponential gaps); the
// common alternative in simulation codebases slices time into steps of
// width dt and runs each slice like a synchronous round with Poisson
// participation:
//
//   per slice, K ~ Poisson(n * dt) contacts are drawn (uniform caller,
//   uniform neighbor) and evaluated against the slice-start informed set.
//
// As dt -> 0 this converges in law to pp-a (each slice holds at most one
// relevant contact with probability -> 1); at coarse dt it inherits
// synchronous-like simultaneity and misses intra-slice relaying chains.
// bench_e12_discretization quantifies the bias-vs-cost trade-off against
// the exact engine; the test suite checks convergence by KS distance.
#pragma once

#include "core/protocol.hpp"
#include "core/spread_probe.hpp"
#include "core/trial.hpp"
#include "rng/rng.hpp"

namespace rumor::core {

/// Shared knobs (core/trial.hpp): mode and probe are honored — contacts
/// classify against the slice-start informed set, with the slice as the
/// freshness window (a second contact reaching the same node within one
/// slice is wasted). The cap is by simulated *time* (max_time below), not
/// ticks; the other shared fields are ignored (the ablation studies the
/// plain lossless single-source model).
struct DiscretizedOptions : TrialOptions {
  /// Slice width in time units. Smaller is more accurate and slower.
  double dt = 0.1;
  /// Abort after this much simulated time; 0 derives a cap from n.
  double max_time = 0.0;
};

/// Runs the time-sliced approximation from `source`. Reported inform times
/// are slice-end timestamps — quantized to multiples of dt by construction.
[[nodiscard]] AsyncResult run_async_discretized(const Graph& g, NodeId source, rng::Engine& eng,
                                                const DiscretizedOptions& options = {});

}  // namespace rumor::core
