// rumor/core: a calendar (bucketed) event queue for Poisson-clock engines.
//
// The per-edge asynchronous view schedules one event per ordered adjacent
// pair and, on every step, pops the global minimum and re-arms the fired
// clock — 2m events alive at all times, one pop + one push per step. A
// binary heap pays O(log 2m) cache-hostile swaps for each; this queue is a
// calendar structure (Brown 1988) with *lazy bucket refinement*:
//
//   * The timeline is cut into buckets of fixed width, sized from the
//     aggregate event rate so one bucket holds a handful of imminent
//     events. A sliding window of consecutive buckets covers the near
//     future; pushes beyond it land in one unsorted overflow list.
//   * Buckets are plain unsorted vectors until the pop cursor *enters*
//     one — only then is it insertion-sorted (ascending time, push order
//     among ties), after which every pop inside it is a pointer bump.
//     Events are refined exactly once, when they are about to matter.
//   * When the cursor exhausts the window, the window jumps to the
//     overflow's minimum and the overflow is redistributed — the second
//     level of the same deferral.
//
// The bucket partition guarantees every event in bucket b precedes every
// event in bucket b+1, so the sorted cursor bucket yields the global
// minimum. Determinism: pops follow non-decreasing timestamps; equal
// timestamps pop in push order (FIFO — buckets preserve push order until
// sorted, the sort is stable, and sorted-bucket inserts go after equal
// times). The engines' randomness is consumed in pop order, so replacing
// the heap cannot move a sampled bit unless two timestamps collide
// exactly — and then the FIFO rule is pinned here and verified against the
// retained heap reference in tests/test_fastpath.cpp.
#pragma once

#include <cstdint>
#include <vector>

namespace rumor::core {

class EventQueue {
 public:
  struct Event {
    double t = 0.0;
    std::uint64_t payload = 0;
  };

  /// `expected_total_rate` is the aggregate rate of all concurrent Poisson
  /// clocks (events per time unit; the per-edge view's is n) — it sets the
  /// bucket width so a bucket holds O(1) imminent events. `expected_events`
  /// sizes the window (number of buckets). Both are hints: any positive
  /// workload stays correct, only the constants degrade.
  EventQueue(double expected_total_rate, std::size_t expected_events);

  void push(double t, std::uint64_t payload);

  /// Removes and returns the event with the smallest timestamp (FIFO among
  /// exact ties). Precondition: !empty().
  [[nodiscard]] Event pop_min();

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Number of lazy window refinements so far (diagnostic; e9 reports it).
  [[nodiscard]] std::uint64_t refinements() const noexcept { return refinements_; }

 private:
  struct Item {
    double t;
    std::uint64_t payload;
  };

  [[nodiscard]] std::uint64_t bucket_index(double t) const noexcept {
    return static_cast<std::uint64_t>(t * inv_width_);
  }

  /// Stable insertion sort by time: buckets hold push order, so equal
  /// timestamps stay FIFO.
  static void sort_bucket(std::vector<Item>& bucket);

  /// Moves the window to the overflow's minimum bucket and refines every
  /// overflow event that now falls inside it. Precondition: all buckets
  /// empty, overflow non-empty. Leaves cursor_ on a non-empty bucket.
  void advance_window();

  double inv_width_;                        // 1 / bucket width
  std::uint64_t base_ = 0;                  // absolute index of buckets_[0]
  std::size_t cursor_ = 0;                  // the bucket pops come from
  std::size_t pop_pos_ = 0;                 // next item inside the cursor bucket
  bool cursor_sorted_ = false;              // cursor bucket has been refined
  std::vector<std::vector<Item>> buckets_;  // the window
  std::vector<Item> overflow_;              // unrefined far future
  std::size_t size_ = 0;
  std::uint64_t refinements_ = 0;
};

}  // namespace rumor::core
