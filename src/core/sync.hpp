// rumor/core: the synchronous rumor-spreading engine (pp, push, pull).
//
// Implements the round-based protocol of Section 2 exactly: in every round
// each node v contacts a uniformly random neighbor w; with push an informed
// caller informs its callee, with pull an uninformed caller gets informed by
// an informed callee, and push-pull allows both. All exchanges within a
// round are evaluated against the *pre-round* informed set ("if before the
// round exactly one of v, w knows the rumor, then the other node gets
// informed in round r as well").
#pragma once

#include "core/protocol.hpp"
#include "core/spread_probe.hpp"
#include "core/trial.hpp"
#include "rng/rng.hpp"

namespace rumor::core {

/// The shared per-trial knobs (core/trial.hpp) are the whole surface: mode,
/// max_ticks (= rounds here), message_loss, record_history, probe,
/// extra_sources, dynamics. The sync engine honors every one of them; the
/// dynamics view additionally begins each round with
/// dynamics->begin_round(r) so churn applies between rounds.
struct SyncOptions : TrialOptions {};

/// Runs one synchronous execution from `source` and reports when every node
/// was informed. Precondition: g connected (otherwise completed == false),
/// source < g.num_nodes().
///
/// Implementation: the word-packed InformedSet fast path (informed_set.hpp)
/// — membership tests read bitset words instead of the 64-bit stamp array,
/// and round commits are word scans over the pending set. The randomness
/// contract is bit-exact: run_sync and run_sync_reference consume the same
/// engine draws in the same order and return identical SyncResults.
[[nodiscard]] SyncResult run_sync(const Graph& g, NodeId source, rng::Engine& eng,
                                  const SyncOptions& options = {});

/// The retained reference engine: the original scan-and-stamp round loop
/// over the informed_round array. Semantically (and bit-for-bit, including
/// engine state) identical to run_sync; kept as the acceptance oracle for
/// the fast path (tests/test_fastpath.cpp) — not for production use.
[[nodiscard]] SyncResult run_sync_reference(const Graph& g, NodeId source, rng::Engine& eng,
                                            const SyncOptions& options = {});

/// Default round cap used when TrialOptions::max_ticks == 0.
[[nodiscard]] std::uint64_t default_round_cap(NodeId n) noexcept;

}  // namespace rumor::core
