// rumor/core: the synchronous rumor-spreading engine (pp, push, pull).
//
// Implements the round-based protocol of Section 2 exactly: in every round
// each node v contacts a uniformly random neighbor w; with push an informed
// caller informs its callee, with pull an uninformed caller gets informed by
// an informed callee, and push-pull allows both. All exchanges within a
// round are evaluated against the *pre-round* informed set ("if before the
// round exactly one of v, w knows the rumor, then the other node gets
// informed in round r as well").
#pragma once

#include "core/protocol.hpp"
#include "core/spread_probe.hpp"
#include "rng/rng.hpp"

namespace rumor::dynamics {
class DynamicGraphView;
}  // namespace rumor::dynamics

namespace rumor::core {

struct SyncOptions {
  /// Communication mode for every contact.
  Mode mode = Mode::kPushPull;
  /// Abort after this many rounds; 0 derives a generous cap from n
  /// (~200 n log n, far above the O(n log n) worst case for connected
  /// graphs) so runaway loops surface as `completed == false` instead of
  /// hanging.
  std::uint64_t max_rounds = 0;
  /// Record |informed| after every round into informed_count_history.
  /// Thin alias over the spread-probe layer: the history is derived from
  /// informed_round after the run (spread_probe.hpp), bit-identical to the
  /// old in-loop recording.
  bool record_history = false;
  /// Spread telemetry (spread_probe.hpp): when set, every contact is
  /// counted and its transmissions classified useful/wasted per direction.
  /// Null costs nothing — the instrumented scan is a separate template
  /// instantiation. A probe never changes randomness consumption or the
  /// result; counters accumulate across runs unless the caller resets them.
  SpreadProbe* probe = nullptr;
  /// Fault injection (extension): each contact independently carries no
  /// rumor with this probability — a lossy channel in the spirit of the
  /// protocol's original fault-tolerant applications [7, 26]. A loss
  /// thins every exchange identically, so it rescales time by
  /// ~1/(1 - loss) on both models without changing who-wins shapes
  /// (bench_e11_faults measures this).
  double message_loss = 0.0;
  /// Additional nodes informed at round 0, alongside `source` (extension:
  /// multi-source spreading, e.g. a write accepted by several replicas).
  std::vector<NodeId> extra_sources;
  /// Temporal/weighted overlay (extension, dynamics/churn.hpp): when set,
  /// every round begins with dynamics->begin_round(r) and contacts are
  /// drawn through the view (churned adjacency, weighted neighbor choice)
  /// instead of g.random_neighbor. Null = the paper's static model, with
  /// the engine's randomness consumption unchanged. The view is per-trial
  /// mutable state and must not be shared across concurrent runs.
  dynamics::DynamicGraphView* dynamics = nullptr;
};

/// Runs one synchronous execution from `source` and reports when every node
/// was informed. Precondition: g connected (otherwise completed == false),
/// source < g.num_nodes().
///
/// Implementation: the word-packed InformedSet fast path (informed_set.hpp)
/// — membership tests read bitset words instead of the 64-bit stamp array,
/// and round commits are word scans over the pending set. The randomness
/// contract is bit-exact: run_sync and run_sync_reference consume the same
/// engine draws in the same order and return identical SyncResults.
[[nodiscard]] SyncResult run_sync(const Graph& g, NodeId source, rng::Engine& eng,
                                  const SyncOptions& options = {});

/// The retained reference engine: the original scan-and-stamp round loop
/// over the informed_round array. Semantically (and bit-for-bit, including
/// engine state) identical to run_sync; kept as the acceptance oracle for
/// the fast path (tests/test_fastpath.cpp) — not for production use.
[[nodiscard]] SyncResult run_sync_reference(const Graph& g, NodeId source, rng::Engine& eng,
                                            const SyncOptions& options = {});

/// Default round cap used when SyncOptions::max_rounds == 0.
[[nodiscard]] std::uint64_t default_round_cap(NodeId n) noexcept;

}  // namespace rumor::core
