// rumor/core: shared vocabulary for the rumor-spreading protocols.
//
// The paper (Section 2) studies randomized rumor spreading on a connected
// undirected graph G: a source u knows a rumor at time 0, and nodes contact
// uniformly random neighbors to exchange it, either in synchronized rounds
// (pp) or at the ticks of independent rate-1 Poisson clocks (pp-a). This
// header defines the communication modes and the result types shared by the
// synchronous and asynchronous engines.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace rumor::core {

using graph::Graph;
using graph::NodeId;

/// Which direction(s) the rumor may travel when caller v contacts callee w.
enum class Mode : std::uint8_t {
  /// Informed caller hands the rumor to its callee.
  kPush,
  /// Uninformed caller receives the rumor from an informed callee.
  kPull,
  /// Both of the above (the paper's main object of study).
  kPushPull,
};

[[nodiscard]] constexpr const char* mode_name(Mode m) noexcept {
  switch (m) {
    case Mode::kPush: return "push";
    case Mode::kPull: return "pull";
    case Mode::kPushPull: return "push-pull";
  }
  return "?";
}

/// Sentinel for "never informed".
inline constexpr std::uint64_t kNeverRound = std::numeric_limits<std::uint64_t>::max();
inline constexpr double kNeverTime = std::numeric_limits<double>::infinity();

/// Result of one synchronous execution.
struct SyncResult {
  /// Rounds until every node was informed (valid iff `completed`).
  std::uint64_t rounds = 0;
  /// False if the round cap was hit first (disconnected graph or tiny cap).
  bool completed = false;
  /// Round in which each node was informed; source gets 0, never-informed
  /// nodes get kNeverRound.
  std::vector<std::uint64_t> informed_round;
  /// informed_count_history[r] = |informed| after round r (entry 0 is 1, the
  /// source). Filled only when SyncOptions::record_history is set.
  std::vector<NodeId> informed_count_history;
};

/// Result of one asynchronous execution.
struct AsyncResult {
  /// Time units until every node was informed (valid iff `completed`).
  double time = 0.0;
  /// Total clock ticks (protocol steps) consumed.
  std::uint64_t steps = 0;
  bool completed = false;
  /// Time at which each node was informed; source gets 0.0, never-informed
  /// nodes get kNeverTime.
  std::vector<double> informed_time;
};

}  // namespace rumor::core
