// rumor/core: the paper's auxiliary synchronous processes ppx and ppy.
//
// Definitions 5 and 7 introduce two synthetic round-based processes used as
// stepping stones between pp and pp-a. Both behave like pp on the push side
// (every informed node pushes to a uniformly random neighbor each round) but
// replace per-contact pulling with an aggregate pull probability that
// depends on the number k of informed neighbors of an uninformed node v:
//
//   ppx:  p = 1 - e^{-2k/deg(v)}  if k <  deg(v)/2
//         p = 1                   if k >= deg(v)/2
//   ppy:  p = 1 - e^{-2k/deg(v)}  always
//
// On success, v pulls from a uniformly random *informed* neighbor. These
// processes are not implementable protocols (a node cannot know its informed
// neighbors), but they are well-defined stochastic processes; the paper
// proves T(ppx) preceq T(pp) (Lemma 6) and sandwiches pp-a between them
// (Lemmas 9, 10). We implement their *marginal* definitions here — the
// coupled versions driven by shared randomness live in coupling_pull.hpp.
#pragma once

#include "core/protocol.hpp"
#include "core/trial.hpp"
#include "rng/rng.hpp"

namespace rumor::core {

// AuxKind (kPpx = Definition 5 with the deg/2 forced-pull rule, kPpy =
// Definition 7's plain aggregate pull probability) lives in core/trial.hpp
// so the unified dispatch can select the process without including this
// header.

/// Shared knobs (core/trial.hpp): max_ticks (rounds; 0 = run_sync's default
/// cap), record_history, and extra_sources are honored — extra sources let
/// tests pose exact one-round scenarios against the Definition 5/7 pull
/// formulas. mode, message_loss, probe, and dynamics are ignored: the aux
/// processes fix their own contact structure by definition.
struct AuxOptions : TrialOptions {
  AuxKind kind = AuxKind::kPpx;
};

/// Runs one execution of ppx or ppy from `source`.
[[nodiscard]] SyncResult run_aux(const Graph& g, NodeId source, rng::Engine& eng,
                                 const AuxOptions& options = {});

}  // namespace rumor::core
