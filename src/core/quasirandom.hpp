// rumor/core: quasirandom rumor spreading (Doerr, Friedrich, Kuennemann,
// Sauerwald [11]).
//
// The paper's related work cites the quasirandom model's experimental
// analysis [11]: each node holds a fixed cyclic list of its neighbors
// (here: the CSR order) and chooses only a uniformly random *starting
// position*; successive contacts then proceed cyclically. The model needs
// O(log deg) random bits per node instead of O(log deg) per round, yet
// provably matches the fully random protocol's spreading time on the
// classical families — which bench E15 reproduces against our random
// engine.
#pragma once

#include "core/protocol.hpp"
#include "core/sync.hpp"
#include "core/trial.hpp"
#include "rng/rng.hpp"

namespace rumor::core {

/// Shared knobs (core/trial.hpp): mode, max_ticks (rounds; 0 = run_sync's
/// default cap), record_history, and probe are honored; message_loss,
/// extra_sources, and dynamics are ignored (the quasirandom model is
/// studied in its classical lossless single-source static form).
struct QuasirandomOptions : TrialOptions {};

/// Runs one synchronous quasirandom execution from `source`: node v's
/// contact in round r is neighbor (start_v + r - 1) mod deg(v), with
/// start_v uniform per node, drawn once.
[[nodiscard]] SyncResult run_quasirandom(const Graph& g, NodeId source, rng::Engine& eng,
                                         const QuasirandomOptions& options = {});

}  // namespace rumor::core
