#include "core/informing_forest.hpp"

#include <cassert>

namespace rumor::core {

std::uint32_t InformingForest::path_length(NodeId v) const {
  std::uint32_t hops = 0;
  while (parent[v] != kNoParent) {
    v = parent[v];
    ++hops;
    assert(hops <= parent.size() && "cycle in informing forest");
  }
  return hops;
}

std::uint32_t InformingForest::depth() const {
  std::uint32_t deepest = 0;
  for (NodeId v = 0; v < parent.size(); ++v) {
    if (parent[v] != kNoParent) deepest = std::max(deepest, path_length(v));
  }
  return deepest;
}

SyncForestRun run_sync_with_forest(const Graph& g, NodeId source, rng::Engine& eng,
                                   const SyncOptions& options) {
  // Mirrors run_sync exactly (same draw order, same commit discipline) with
  // informer bookkeeping added; informing ties within a round resolve to
  // the first committed contact, a valid "first informer" under the
  // pre-round snapshot semantics.
  const NodeId n = g.num_nodes();
  assert(source < n);

  SyncForestRun run;
  run.result.informed_round.assign(n, kNeverRound);
  run.result.informed_round[source] = 0;
  run.forest.parent.assign(n, kNoParent);
  NodeId informed_count = 1;
  for (NodeId extra : options.extra_sources) {
    if (run.result.informed_round[extra] == kNeverRound) {
      run.result.informed_round[extra] = 0;
      ++informed_count;
    }
  }
  if (options.record_history) run.result.informed_count_history.push_back(informed_count);

  const std::uint64_t cap =
      options.max_ticks != 0 ? options.max_ticks : default_round_cap(n);

  struct Pending {
    NodeId node;
    NodeId informer;
  };
  std::vector<Pending> newly;
  for (std::uint64_t r = 1; informed_count < n && r <= cap; ++r) {
    newly.clear();
    auto informed_before = [&](NodeId v) { return run.result.informed_round[v] < r; };
    for (NodeId v = 0; v < n; ++v) {
      if (g.degree(v) == 0) continue;
      const NodeId w = g.random_neighbor(v, eng);
      const bool v_in = informed_before(v);
      const bool w_in = informed_before(w);
      if (v_in == w_in) continue;
      if (options.message_loss > 0.0 && rng::bernoulli(eng, options.message_loss)) continue;
      switch (options.mode) {
        case Mode::kPush:
          if (v_in && run.result.informed_round[w] == kNeverRound) newly.push_back({w, v});
          break;
        case Mode::kPull:
          if (w_in && run.result.informed_round[v] == kNeverRound) newly.push_back({v, w});
          break;
        case Mode::kPushPull:
          if (v_in) {
            if (run.result.informed_round[w] == kNeverRound) newly.push_back({w, v});
          } else {
            if (run.result.informed_round[v] == kNeverRound) newly.push_back({v, w});
          }
          break;
      }
    }
    for (const Pending& p : newly) {
      if (run.result.informed_round[p.node] == kNeverRound) {
        run.result.informed_round[p.node] = r;
        run.forest.parent[p.node] = p.informer;
        ++informed_count;
      }
    }
    if (options.record_history) run.result.informed_count_history.push_back(informed_count);
    run.result.rounds = r;
  }

  run.result.completed = (informed_count == n);
  if (!run.result.completed) run.result.rounds = cap;
  run.forest.completed = run.result.completed;
  return run;
}

AsyncForestRun run_async_with_forest(const Graph& g, NodeId source, rng::Engine& eng,
                                     const AsyncOptions& options) {
  // Global-clock view with informer bookkeeping (mirrors run_async's
  // kGlobalClock path draw for draw).
  const NodeId n = g.num_nodes();
  assert(source < n);
  const std::uint64_t cap =
      options.max_ticks != 0 ? options.max_ticks : default_step_cap(n);

  AsyncForestRun run;
  run.result.informed_time.assign(n, kNeverTime);
  run.result.informed_time[source] = 0.0;
  run.forest.parent.assign(n, kNoParent);
  NodeId informed_count = 1;
  for (NodeId extra : options.extra_sources) {
    if (run.result.informed_time[extra] == kNeverTime) {
      run.result.informed_time[extra] = 0.0;
      ++informed_count;
    }
  }

  double now = 0.0;
  std::uint64_t steps = 0;
  const double rate = static_cast<double>(n);
  while (informed_count < n && steps < cap) {
    now += rng::exponential(eng, rate);
    ++steps;
    const NodeId v = static_cast<NodeId>(rng::uniform_below(eng, n));
    if (g.degree(v) == 0) continue;
    const NodeId w = g.random_neighbor(v, eng);
    if (options.message_loss > 0.0 && rng::bernoulli(eng, options.message_loss)) continue;
    const bool v_in = run.result.informed_time[v] < now;
    const bool w_in = run.result.informed_time[w] < now;
    if (v_in == w_in) continue;
    if (options.mode == Mode::kPush && !v_in) continue;
    if (options.mode == Mode::kPull && !w_in) continue;
    const NodeId target = v_in ? w : v;
    const NodeId informer = v_in ? v : w;
    run.result.informed_time[target] = now;
    run.forest.parent[target] = informer;
    ++informed_count;
  }
  run.result.time = now;
  run.result.steps = steps;
  run.result.completed = (informed_count == n);
  run.forest.completed = run.result.completed;
  return run;
}

}  // namespace rumor::core
