#include "core/sync.hpp"

#include <cassert>
#include <cmath>

#include "core/informed_set.hpp"
#include "dynamics/churn.hpp"

namespace rumor::core {

std::uint64_t default_round_cap(NodeId n) noexcept {
  const double nn = static_cast<double>(n);
  const double cap = 200.0 * nn * std::log2(nn + 2.0) + 1000.0;
  return static_cast<std::uint64_t>(cap);
}

namespace {

/// Seeds source + extra_sources at round 0; returns the informed count.
/// Shared by the fast path and the reference.
NodeId seed_sources(NodeId source, const SyncOptions& options, SyncResult& result) {
  result.informed_round[source] = 0;
  NodeId count = 1;
  for (NodeId extra : options.extra_sources) {
    assert(extra < result.informed_round.size());
    if (result.informed_round[extra] == kNeverRound) {
      result.informed_round[extra] = 0;
      ++count;
    }
  }
  return count;
}

/// How the round scan draws the contacted neighbor.
enum class ScanKind : std::uint8_t {
  kView,     // through a dynamics overlay (churn and/or weights)
  kStatic,   // base CSR, per-node degree
  kRegular,  // base CSR, uniform degree: one flat row stride, no offsets
};

/// The round loop, specialized per (mode, loss, scan kind) so the inner
/// scan carries no per-node dispatch. Randomness consumption is identical
/// to the reference scan below for every specialization: one neighbor draw
/// per non-isolated node, plus one Bernoulli iff exactly one endpoint is
/// informed and loss is configured — membership moved from the 64-bit stamp
/// array into InformedSet words, which consumes nothing. The lossless
/// variants are additionally branch-free past the neighbor draw: the
/// exchange outcome is ORed into the pending word as a shifted 0/1 mask,
/// so the mixing rounds (informed set near half full, where the exchange
/// branch is unpredictable) pay no mispredictions.
//
// Why the bitset sees exactly the reference's informed set: stamps written
// during a round are always the round number r itself, so while round r is
// scanning, every entry of informed_round is either < r (informed before)
// or kNeverRound — "informed before the round" and "ever stamped" coincide.
// The bitset holds the committed (pre-round) set, `pending` collects this
// round's targets (always the uninformed endpoint, so overlap with the
// committed set is impossible), and the commit is a word-scan that stamps
// each newly informed node once, exactly like the reference's dedup loop.
template <Mode M, bool HasLoss, ScanKind K, bool HasProbe>
void run_rounds(const Graph& g, rng::Engine& eng, const SyncOptions& options,
                SyncResult& result, NodeId& informed_count, std::uint64_t cap) {
  const NodeId n = g.num_nodes();
  dynamics::DynamicGraphView* const view = options.dynamics;
  const double loss = options.message_loss;

  InformedSet informed(n);
  InformedSet pending(n);
  for (NodeId v = 0; v < n; ++v) {
    if (result.informed_round[v] == 0) informed.set(v);
  }

  const std::uint32_t regular_degree = K == ScanKind::kRegular ? g.degree(0) : 0;
  const NodeId* const flat_neighbors =
      K == ScanKind::kRegular ? g.neighbors(0).data() : nullptr;

  for (std::uint64_t r = 1; informed_count < n && r <= cap; ++r) {
    if constexpr (K == ScanKind::kView) view->begin_round(r);  // churn between rounds
    const std::uint64_t* const __restrict informed_words = informed.words().data();
    std::uint64_t* const __restrict pending_words = pending.words_data();
    const NodeId* row = flat_neighbors;  // kRegular: v's slice, advanced in step
    for (NodeId base = 0; base < n; base += 64) {
      // One sequential word load covers the caller side of 64 contacts; only
      // the callee membership probe below touches the words at random.
      std::uint64_t callers = informed_words[base >> 6];
      const NodeId limit = n - base < 64 ? n - base : 64;
      for (NodeId k = 0; k < limit; ++k, callers >>= 1) {
        const NodeId v = base + k;
        NodeId w;
        if constexpr (K == ScanKind::kView) {
          if (view->degree(v) == 0) continue;  // churned-out: nothing to contact
          w = view->sample(v, eng);
        } else if constexpr (K == ScanKind::kRegular) {
          w = row[rng::uniform_below(eng, regular_degree)];
          row += regular_degree;
        } else {
          const auto nbrs = g.neighbors(v);
          const auto deg = static_cast<std::uint32_t>(nbrs.size());
          if (deg == 0) continue;
          w = nbrs[rng::uniform_below(eng, deg)];
        }
        const std::uint64_t v_in = callers & 1u;
        const std::uint64_t w_in = (informed_words[w >> 6] >> (w & 63u)) & 1u;
        if constexpr (HasProbe) {
          // The probe path classifies and updates `pending` in one go:
          // probe_windowed's test_and_set fires exactly for the writes the
          // uninstrumented paths below perform (idempotent re-sets and
          // informed/lost targets set nothing), and the loss Bernoulli is
          // drawn under the same endpoint condition — so result bits and
          // randomness consumption are identical with and without a probe.
          const bool vi = v_in != 0;
          const bool wi = w_in != 0;
          bool lost = false;
          if constexpr (HasLoss) {
            if (vi != wi) lost = rng::bernoulli(eng, loss);
          }
          probe_windowed(*options.probe, M, vi, wi, lost, v, w, pending);
        } else if constexpr (HasLoss) {
          if (v_in == w_in) continue;  // both or neither informed: no exchange
          if (rng::bernoulli(eng, loss)) continue;
          if constexpr (M == Mode::kPush) {
            if (v_in != 0) pending.set(w);
          } else if constexpr (M == Mode::kPull) {
            if (w_in != 0) pending.set(v);
          } else {
            pending.set(v_in != 0 ? w : v);
          }
        } else {
          // Branch-free: exchange == 0 ORs a zero mask (a no-op store).
          std::uint64_t exchange;
          NodeId target;
          if constexpr (M == Mode::kPush) {
            exchange = v_in & ~w_in;
            target = w;
          } else if constexpr (M == Mode::kPull) {
            exchange = w_in & ~v_in;
            target = v;
          } else {
            exchange = v_in ^ w_in;
            target = v_in != 0 ? w : v;
          }
          pending_words[target >> 6] |= (exchange & 1u) << (target & 63u);
        }
      }
    }
    // Commit after the scan so every exchange saw the pre-round snapshot.
    // With a probe attached, pending bits double as the round's freshness
    // marks; draining here clears them for the next round either way.
    informed_count +=
        informed.absorb_drain(pending, [&](NodeId u) { result.informed_round[u] = r; });
    result.rounds = r;
  }
}

template <Mode M, bool HasLoss, ScanKind K>
void dispatch_probe(const Graph& g, rng::Engine& eng, const SyncOptions& options,
                    SyncResult& result, NodeId& informed_count, std::uint64_t cap) {
  options.probe != nullptr
      ? run_rounds<M, HasLoss, K, true>(g, eng, options, result, informed_count, cap)
      : run_rounds<M, HasLoss, K, false>(g, eng, options, result, informed_count, cap);
}

template <Mode M>
void dispatch_loss_view(const Graph& g, rng::Engine& eng, const SyncOptions& options,
                        SyncResult& result, NodeId& informed_count, std::uint64_t cap) {
  const bool has_loss = options.message_loss > 0.0;
  if (options.dynamics != nullptr) {
    has_loss ? dispatch_probe<M, true, ScanKind::kView>(g, eng, options, result, informed_count, cap)
             : dispatch_probe<M, false, ScanKind::kView>(g, eng, options, result, informed_count, cap);
  } else if (g.num_nodes() > 0 && g.degree(0) > 0 && g.is_regular()) {
    has_loss
        ? dispatch_probe<M, true, ScanKind::kRegular>(g, eng, options, result, informed_count, cap)
        : dispatch_probe<M, false, ScanKind::kRegular>(g, eng, options, result, informed_count, cap);
  } else {
    has_loss
        ? dispatch_probe<M, true, ScanKind::kStatic>(g, eng, options, result, informed_count, cap)
        : dispatch_probe<M, false, ScanKind::kStatic>(g, eng, options, result, informed_count, cap);
  }
}

}  // namespace

SyncResult run_sync(const Graph& g, NodeId source, rng::Engine& eng,
                    const SyncOptions& options) {
  const NodeId n = g.num_nodes();
  assert(source < n);

  SyncResult result;
  result.informed_round.assign(n, kNeverRound);
  NodeId informed_count = seed_sources(source, options, result);

  const std::uint64_t cap =
      options.max_ticks != 0 ? options.max_ticks : default_round_cap(n);

  switch (options.mode) {
    case Mode::kPush:
      dispatch_loss_view<Mode::kPush>(g, eng, options, result, informed_count, cap);
      break;
    case Mode::kPull:
      dispatch_loss_view<Mode::kPull>(g, eng, options, result, informed_count, cap);
      break;
    case Mode::kPushPull:
      dispatch_loss_view<Mode::kPushPull>(g, eng, options, result, informed_count, cap);
      break;
  }

  result.completed = (informed_count == n);
  if (!result.completed) result.rounds = cap;
  if (options.record_history) {
    result.informed_count_history = informed_round_curve(result.informed_round, result.rounds);
  }
  return result;
}

SyncResult run_sync_reference(const Graph& g, NodeId source, rng::Engine& eng,
                              const SyncOptions& options) {
  const NodeId n = g.num_nodes();
  assert(source < n);

  SyncResult result;
  result.informed_round.assign(n, kNeverRound);
  NodeId informed_count = seed_sources(source, options, result);

  const std::uint64_t cap =
      options.max_ticks != 0 ? options.max_ticks : default_round_cap(n);

  // Nodes informed strictly before the current round: informed_round < r.
  // Newly informed nodes are stamped with the current round number, so the
  // same array doubles as the pre-round snapshot.
  dynamics::DynamicGraphView* const view = options.dynamics;
  std::vector<NodeId> newly_informed;
  // Probe-only freshness marks for the current round; the commit loop
  // clears them. The scan itself keeps stamping through newly_informed, so
  // attaching a probe cannot change the reference's behavior.
  InformedSet probe_pending(options.probe != nullptr ? n : 0);
  for (std::uint64_t r = 1; informed_count < n && r <= cap; ++r) {
    if (view != nullptr) view->begin_round(r);  // churn applies between rounds
    newly_informed.clear();
    auto informed_before = [&](NodeId v) { return result.informed_round[v] < r; };

    for (NodeId v = 0; v < n; ++v) {
      const std::uint32_t deg = view != nullptr ? view->degree(v) : g.degree(v);
      if (deg == 0) continue;  // isolated node (possibly churned-out): nothing to contact
      const NodeId w = view != nullptr ? view->sample(v, eng) : g.random_neighbor(v, eng);
      const bool v_in = informed_before(v);
      const bool w_in = informed_before(w);
      // Same draw condition as below, hoisted so the probe can see the lost
      // flag: randomness consumption is unchanged.
      const bool lost = v_in != w_in && options.message_loss > 0.0 &&
                        rng::bernoulli(eng, options.message_loss);
      if (options.probe != nullptr) {
        probe_windowed(*options.probe, options.mode, v_in, w_in, lost, v, w, probe_pending);
      }
      if (v_in == w_in) continue;  // both or neither informed: no exchange
      if (lost) continue;
      switch (options.mode) {
        case Mode::kPush:
          if (v_in && result.informed_round[w] == kNeverRound) newly_informed.push_back(w);
          break;
        case Mode::kPull:
          if (w_in && result.informed_round[v] == kNeverRound) newly_informed.push_back(v);
          break;
        case Mode::kPushPull:
          if (v_in) {
            if (result.informed_round[w] == kNeverRound) newly_informed.push_back(w);
          } else {
            if (result.informed_round[v] == kNeverRound) newly_informed.push_back(v);
          }
          break;
      }
    }
    // Commit after the scan so every exchange saw the pre-round snapshot; a
    // node informed via several contacts in the same round is stamped once.
    for (NodeId v : newly_informed) {
      if (result.informed_round[v] == kNeverRound) {
        result.informed_round[v] = r;
        ++informed_count;
      }
      if (options.probe != nullptr) probe_pending.reset(v);
    }
    result.rounds = r;
  }

  result.completed = (informed_count == n);
  if (!result.completed) result.rounds = cap;
  if (options.record_history) {
    result.informed_count_history = informed_round_curve(result.informed_round, result.rounds);
  }
  return result;
}

}  // namespace rumor::core
