#include "core/sync.hpp"

#include <cassert>
#include <cmath>

#include "dynamics/churn.hpp"

namespace rumor::core {

std::uint64_t default_round_cap(NodeId n) noexcept {
  const double nn = static_cast<double>(n);
  const double cap = 200.0 * nn * std::log2(nn + 2.0) + 1000.0;
  return static_cast<std::uint64_t>(cap);
}

SyncResult run_sync(const Graph& g, NodeId source, rng::Engine& eng,
                    const SyncOptions& options) {
  const NodeId n = g.num_nodes();
  assert(source < n);

  SyncResult result;
  result.informed_round.assign(n, kNeverRound);
  result.informed_round[source] = 0;
  NodeId informed_count = 1;
  for (NodeId extra : options.extra_sources) {
    assert(extra < n);
    if (result.informed_round[extra] == kNeverRound) {
      result.informed_round[extra] = 0;
      ++informed_count;
    }
  }
  if (options.record_history) result.informed_count_history.push_back(informed_count);

  const std::uint64_t cap =
      options.max_rounds != 0 ? options.max_rounds : default_round_cap(n);

  // Nodes informed strictly before the current round: informed_round < r.
  // Newly informed nodes are stamped with the current round number, so the
  // same array doubles as the pre-round snapshot.
  dynamics::DynamicGraphView* const view = options.dynamics;
  std::vector<NodeId> newly_informed;
  for (std::uint64_t r = 1; informed_count < n && r <= cap; ++r) {
    if (view != nullptr) view->begin_round(r);  // churn applies between rounds
    newly_informed.clear();
    auto informed_before = [&](NodeId v) { return result.informed_round[v] < r; };

    for (NodeId v = 0; v < n; ++v) {
      const std::uint32_t deg = view != nullptr ? view->degree(v) : g.degree(v);
      if (deg == 0) continue;  // isolated node (possibly churned-out): nothing to contact
      const NodeId w = view != nullptr ? view->sample(v, eng) : g.random_neighbor(v, eng);
      const bool v_in = informed_before(v);
      const bool w_in = informed_before(w);
      if (v_in == w_in) continue;  // both or neither informed: no exchange
      if (options.message_loss > 0.0 && rng::bernoulli(eng, options.message_loss)) continue;
      switch (options.mode) {
        case Mode::kPush:
          if (v_in && result.informed_round[w] == kNeverRound) newly_informed.push_back(w);
          break;
        case Mode::kPull:
          if (w_in && result.informed_round[v] == kNeverRound) newly_informed.push_back(v);
          break;
        case Mode::kPushPull:
          if (v_in) {
            if (result.informed_round[w] == kNeverRound) newly_informed.push_back(w);
          } else {
            if (result.informed_round[v] == kNeverRound) newly_informed.push_back(v);
          }
          break;
      }
    }
    // Commit after the scan so every exchange saw the pre-round snapshot; a
    // node informed via several contacts in the same round is stamped once.
    for (NodeId v : newly_informed) {
      if (result.informed_round[v] == kNeverRound) {
        result.informed_round[v] = r;
        ++informed_count;
      }
    }
    if (options.record_history) result.informed_count_history.push_back(informed_count);
    result.rounds = r;
  }

  result.completed = (informed_count == n);
  if (!result.completed) result.rounds = cap;
  return result;
}

}  // namespace rumor::core
