// rumor/core: informing forests — who informed whom.
//
// Both of the paper's proofs argue along *informing paths* pi_v = v_0 = u,
// v_1, ..., v_l = v, where v_{i+1} first receives the rumor from v_i
// (Lemmas 9/10 decompose r_v over such a path). This module re-runs the
// synchronous or asynchronous protocol while recording each node's
// informer, yielding the informing forest (a spanning tree of the informed
// set, rooted at the source) plus per-node path lengths. Benches and tests
// use it to study path-length distributions and to validate that the
// engines' exchanges are structurally consistent (informer is adjacent,
// informed earlier, and reachable from the source).
#pragma once

#include <cstdint>
#include <vector>

#include "core/async.hpp"
#include "core/protocol.hpp"
#include "core/sync.hpp"
#include "rng/rng.hpp"

namespace rumor::core {

/// Sentinel parent for the source (and never-informed nodes).
inline constexpr NodeId kNoParent = static_cast<NodeId>(-1);

/// A spanning tree of "v was first informed by parent[v]".
struct InformingForest {
  std::vector<NodeId> parent;
  /// True if the recorded execution informed every node.
  bool completed = false;

  /// Number of informing hops from the source to v (0 for the source).
  /// Precondition: v was informed.
  [[nodiscard]] std::uint32_t path_length(NodeId v) const;

  /// Maximum path length over all informed nodes — the depth of the
  /// informing tree (the `l` in the paper's path decompositions).
  [[nodiscard]] std::uint32_t depth() const;
};

/// Runs the synchronous protocol recording informers.
/// The returned SyncResult matches run_sync with the same engine state.
struct SyncForestRun {
  SyncResult result;
  InformingForest forest;
};
[[nodiscard]] SyncForestRun run_sync_with_forest(const Graph& g, NodeId source, rng::Engine& eng,
                                                 const SyncOptions& options = {});

/// Runs the asynchronous protocol (global-clock view) recording informers.
struct AsyncForestRun {
  AsyncResult result;
  InformingForest forest;
};
[[nodiscard]] AsyncForestRun run_async_with_forest(const Graph& g, NodeId source, rng::Engine& eng,
                                                   const AsyncOptions& options = {});

}  // namespace rumor::core
