#include "core/trajectory.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rumor::core {

namespace {

std::size_t target_count(std::size_t n, double fraction) {
  assert(fraction > 0.0 && fraction <= 1.0);
  const auto target = static_cast<std::size_t>(std::ceil(fraction * static_cast<double>(n)));
  return std::max<std::size_t>(1, std::min(target, n));
}

}  // namespace

std::uint64_t round_to_fraction(std::span<const std::uint64_t> informed_round, double fraction) {
  const std::size_t target = target_count(informed_round.size(), fraction);
  std::vector<std::uint64_t> rounds(informed_round.begin(), informed_round.end());
  std::nth_element(rounds.begin(), rounds.begin() + static_cast<std::ptrdiff_t>(target - 1),
                   rounds.end());
  return rounds[target - 1];
}

double time_to_fraction(std::span<const double> informed_time, double fraction) {
  const std::size_t target = target_count(informed_time.size(), fraction);
  std::vector<double> times(informed_time.begin(), informed_time.end());
  std::nth_element(times.begin(), times.begin() + static_cast<std::ptrdiff_t>(target - 1),
                   times.end());
  return times[target - 1];
}

std::vector<double> async_trajectory(std::span<const double> informed_time) {
  std::vector<double> times;
  times.reserve(informed_time.size());
  for (double t : informed_time) {
    if (t != kNeverTime) times.push_back(t);
  }
  std::sort(times.begin(), times.end());
  return times;
}

}  // namespace rumor::core
