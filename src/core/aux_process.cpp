#include "core/aux_process.hpp"

#include <cassert>
#include <cmath>
#include <vector>

#include "core/sync.hpp"

namespace rumor::core {

SyncResult run_aux(const Graph& g, NodeId source, rng::Engine& eng, const AuxOptions& options) {
  const NodeId n = g.num_nodes();
  assert(source < n);

  SyncResult result;
  result.informed_round.assign(n, kNeverRound);
  result.informed_round[source] = 0;
  NodeId informed_count = 1;
  for (NodeId extra : options.extra_sources) {
    assert(extra < n);
    if (result.informed_round[extra] == kNeverRound) {
      result.informed_round[extra] = 0;
      ++informed_count;
    }
  }
  if (options.record_history) result.informed_count_history.push_back(informed_count);

  // k[v] = number of informed neighbors of v, maintained incrementally:
  // when a node becomes informed we bump each neighbor's count (total work
  // O(m) across the run).
  std::vector<std::uint32_t> informed_neighbors(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (result.informed_round[v] != kNeverRound) {
      for (NodeId w : g.neighbors(v)) ++informed_neighbors[w];
    }
  }

  const std::uint64_t cap =
      options.max_ticks != 0 ? options.max_ticks : default_round_cap(n);

  std::vector<NodeId> newly_informed;
  for (std::uint64_t r = 1; informed_count < n && r <= cap; ++r) {
    newly_informed.clear();
    auto informed_before = [&](NodeId v) { return result.informed_round[v] < r; };

    for (NodeId v = 0; v < n; ++v) {
      if (g.degree(v) == 0) continue;
      if (informed_before(v)) {
        // Push side: identical to pp.
        const NodeId w = g.random_neighbor(v, eng);
        if (result.informed_round[w] == kNeverRound) newly_informed.push_back(w);
      } else {
        // Pull side: aggregate probability from Definition 5 / 7.
        const std::uint32_t k = informed_neighbors[v];
        if (k == 0) continue;
        const auto deg = g.degree(v);
        double p = -std::expm1(-2.0 * static_cast<double>(k) / static_cast<double>(deg));
        if (options.kind == AuxKind::kPpx && 2 * k >= deg) p = 1.0;
        if (p < 1.0 && !rng::bernoulli(eng, p)) continue;
        // Definition 5/7 lets v pull from a uniformly random informed
        // neighbor; which one is irrelevant to the state evolution (v just
        // becomes informed), so the informer is not materialized.
        if (result.informed_round[v] == kNeverRound) newly_informed.push_back(v);
      }
    }
    for (NodeId v : newly_informed) {
      if (result.informed_round[v] == kNeverRound) {
        result.informed_round[v] = r;
        ++informed_count;
        for (NodeId w : g.neighbors(v)) ++informed_neighbors[w];
      }
    }
    if (options.record_history) result.informed_count_history.push_back(informed_count);
    result.rounds = r;
  }

  result.completed = (informed_count == n);
  if (!result.completed) result.rounds = cap;
  return result;
}

}  // namespace rumor::core
