#include "core/async.hpp"

#include <cassert>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/event_queue.hpp"
#include "dynamics/churn.hpp"

namespace rumor::core {

namespace {

/// Seeds the source set at time 0; returns the informed count.
NodeId seed_sources(NodeId source, const AsyncOptions& options,
                    std::vector<double>& informed_time) {
  informed_time[source] = 0.0;
  NodeId count = 1;
  for (NodeId extra : options.extra_sources) {
    assert(extra < informed_time.size());
    if (informed_time[extra] == kNeverTime) {
      informed_time[extra] = 0.0;
      ++count;
    }
  }
  return count;
}

/// Shared exchange rule: node v contacts node w at time `now`.
/// Returns true if somebody new was informed.
bool exchange(Mode mode, NodeId v, NodeId w, double now, std::vector<double>& informed_time,
              NodeId& informed_count) {
  const bool v_in = informed_time[v] < now;
  const bool w_in = informed_time[w] < now;
  if (v_in == w_in) return false;
  switch (mode) {
    case Mode::kPush:
      if (!v_in) return false;
      break;
    case Mode::kPull:
      if (!w_in) return false;
      break;
    case Mode::kPushPull:
      break;
  }
  NodeId target = v_in ? w : v;
  informed_time[target] = now;
  ++informed_count;
  return true;
}

AsyncResult run_global_clock(const Graph& g, NodeId source, rng::Engine& eng,
                             const AsyncOptions& options, std::uint64_t cap) {
  const NodeId n = g.num_nodes();
  AsyncResult result;
  result.informed_time.assign(n, kNeverTime);
  NodeId informed_count = seed_sources(source, options, result.informed_time);

  double now = 0.0;
  std::uint64_t steps = 0;
  const double rate = static_cast<double>(n);
  dynamics::DynamicGraphView* const view = options.dynamics;
  while (informed_count < n && steps < cap) {
    now += rng::exponential(eng, rate);
    ++steps;
    if (view != nullptr) view->advance_time(now);  // churn epochs track the clock
    const NodeId v = static_cast<NodeId>(rng::uniform_below(eng, n));
    const std::uint32_t deg = view != nullptr ? view->degree(v) : g.degree(v);
    if (deg == 0) {
      if (options.probe != nullptr) probe_empty_contact(*options.probe);
      continue;
    }
    const NodeId w = view != nullptr ? view->sample(v, eng) : g.random_neighbor(v, eng);
    const bool lost = options.message_loss > 0.0 && rng::bernoulli(eng, options.message_loss);
    if (options.probe != nullptr) {
      probe_instant(*options.probe, options.mode, result.informed_time[v] < now,
                    result.informed_time[w] < now, lost);
    }
    if (!lost) exchange(options.mode, v, w, now, result.informed_time, informed_count);
  }
  result.time = now;
  result.steps = steps;
  result.completed = (informed_count == n);
  return result;
}

AsyncResult run_per_node_clocks(const Graph& g, NodeId source, rng::Engine& eng,
                                const AsyncOptions& options, std::uint64_t cap) {
  const NodeId n = g.num_nodes();
  AsyncResult result;
  result.informed_time.assign(n, kNeverTime);
  NodeId informed_count = seed_sources(source, options, result.informed_time);

  // Min-heap of (next tick time, node). Each node re-arms itself after
  // firing with a fresh Exp(1) gap — memorylessness makes this exact.
  using Tick = std::pair<double, NodeId>;
  std::priority_queue<Tick, std::vector<Tick>, std::greater<>> clock;
  for (NodeId v = 0; v < n; ++v) clock.emplace(rng::exponential(eng, 1.0), v);

  double now = 0.0;
  std::uint64_t steps = 0;
  while (informed_count < n && steps < cap) {
    const auto [t, v] = clock.top();
    clock.pop();
    now = t;
    ++steps;
    clock.emplace(now + rng::exponential(eng, 1.0), v);
    if (g.degree(v) == 0) {
      if (options.probe != nullptr) probe_empty_contact(*options.probe);
      continue;
    }
    const NodeId w = g.random_neighbor(v, eng);
    const bool lost = options.message_loss > 0.0 && rng::bernoulli(eng, options.message_loss);
    if (options.probe != nullptr) {
      probe_instant(*options.probe, options.mode, result.informed_time[v] < now,
                    result.informed_time[w] < now, lost);
    }
    if (!lost) exchange(options.mode, v, w, now, result.informed_time, informed_count);
  }
  result.time = now;
  result.steps = steps;
  result.completed = (informed_count == n);
  return result;
}

/// Packs an ordered adjacent pair into an EventQueue payload.
constexpr std::uint64_t pack_edge(NodeId v, NodeId w) noexcept {
  return (static_cast<std::uint64_t>(v) << 32) | w;
}

AsyncResult run_per_edge_clocks(const Graph& g, NodeId source, rng::Engine& eng,
                                const AsyncOptions& options, std::uint64_t cap) {
  const NodeId n = g.num_nodes();
  AsyncResult result;
  result.informed_time.assign(n, kNeverTime);
  NodeId informed_count = seed_sources(source, options, result.informed_time);

  // One clock per ordered adjacent pair (v, w), rate 1/deg(v); re-armed
  // after each fire. The calendar queue replaces the old binary heap: the
  // aggregate rate is sum_v deg(v)/deg(v) = n, which sizes its buckets.
  // Pops follow strictly increasing timestamps, so the engine consumes
  // randomness in exactly the heap's order (run_async_reference below is
  // the retained oracle; equivalence is pinned in tests/test_fastpath.cpp).
  EventQueue clock(static_cast<double>(n), 2 * g.num_edges());
  for (NodeId v = 0; v < n; ++v) {
    const double rate = 1.0 / static_cast<double>(g.degree(v));
    for (NodeId w : g.neighbors(v)) {
      clock.push(rng::exponential(eng, rate), pack_edge(v, w));
    }
  }

  double now = 0.0;
  std::uint64_t steps = 0;
  while (informed_count < n && steps < cap && !clock.empty()) {
    const EventQueue::Event tick = clock.pop_min();
    const auto v = static_cast<NodeId>(tick.payload >> 32);
    const auto w = static_cast<NodeId>(tick.payload & 0xffffffffu);
    now = tick.t;
    ++steps;
    const double rate = 1.0 / static_cast<double>(g.degree(v));
    clock.push(now + rng::exponential(eng, rate), tick.payload);
    const bool lost = options.message_loss > 0.0 && rng::bernoulli(eng, options.message_loss);
    if (options.probe != nullptr) {
      probe_instant(*options.probe, options.mode, result.informed_time[v] < now,
                    result.informed_time[w] < now, lost);
    }
    if (!lost) exchange(options.mode, v, w, now, result.informed_time, informed_count);
  }
  result.time = now;
  result.steps = steps;
  result.completed = (informed_count == n);
  return result;
}

/// The retained per-edge reference: the original binary-heap event loop,
/// kept verbatim as the acceptance oracle for the calendar queue.
AsyncResult run_per_edge_clocks_heap(const Graph& g, NodeId source, rng::Engine& eng,
                                     const AsyncOptions& options, std::uint64_t cap) {
  const NodeId n = g.num_nodes();
  AsyncResult result;
  result.informed_time.assign(n, kNeverTime);
  NodeId informed_count = seed_sources(source, options, result.informed_time);

  struct EdgeTick {
    double t;
    NodeId v;
    NodeId w;
    std::uint64_t seq;
    bool operator>(const EdgeTick& o) const noexcept {
      return t != o.t ? t > o.t : seq > o.seq;  // FIFO among exact ties
    }
  };
  std::priority_queue<EdgeTick, std::vector<EdgeTick>, std::greater<>> clock;
  std::uint64_t seq = 0;
  for (NodeId v = 0; v < n; ++v) {
    const double rate = 1.0 / static_cast<double>(g.degree(v));
    for (NodeId w : g.neighbors(v)) {
      clock.push(EdgeTick{rng::exponential(eng, rate), v, w, seq++});
    }
  }

  double now = 0.0;
  std::uint64_t steps = 0;
  while (informed_count < n && steps < cap && !clock.empty()) {
    const EdgeTick tick = clock.top();
    clock.pop();
    now = tick.t;
    ++steps;
    const double rate = 1.0 / static_cast<double>(g.degree(tick.v));
    clock.push(EdgeTick{now + rng::exponential(eng, rate), tick.v, tick.w, seq++});
    const bool lost = options.message_loss > 0.0 && rng::bernoulli(eng, options.message_loss);
    if (options.probe != nullptr) {
      probe_instant(*options.probe, options.mode, result.informed_time[tick.v] < now,
                    result.informed_time[tick.w] < now, lost);
    }
    if (!lost) exchange(options.mode, tick.v, tick.w, now, result.informed_time, informed_count);
  }
  result.time = now;
  result.steps = steps;
  result.completed = (informed_count == n);
  return result;
}

/// Shared dispatcher: run_async and run_async_reference differ only in the
/// per-edge implementation, so the precondition guard and cap derivation
/// cannot drift apart between the production engine and its oracle.
AsyncResult dispatch_async(const Graph& g, NodeId source, rng::Engine& eng,
                           const AsyncOptions& options,
                           AsyncResult (*per_edge)(const Graph&, NodeId, rng::Engine&,
                                                   const AsyncOptions&, std::uint64_t)) {
  assert(source < g.num_nodes());
  if (options.dynamics != nullptr && options.view != AsyncView::kGlobalClock) {
    throw std::runtime_error("run_async: dynamics overlays need the global-clock view");
  }
  const std::uint64_t cap =
      options.max_ticks != 0 ? options.max_ticks : default_step_cap(g.num_nodes());
  switch (options.view) {
    case AsyncView::kGlobalClock: return run_global_clock(g, source, eng, options, cap);
    case AsyncView::kPerNodeClocks: return run_per_node_clocks(g, source, eng, options, cap);
    case AsyncView::kPerEdgeClocks: return per_edge(g, source, eng, options, cap);
  }
  return {};
}

}  // namespace

std::uint64_t default_step_cap(NodeId n) noexcept {
  const double nn = static_cast<double>(n);
  const double cap = 200.0 * nn * nn * std::log2(nn + 2.0) + 10000.0;
  return cap > 1e18 ? static_cast<std::uint64_t>(1e18) : static_cast<std::uint64_t>(cap);
}

AsyncResult run_async(const Graph& g, NodeId source, rng::Engine& eng,
                      const AsyncOptions& options) {
  return dispatch_async(g, source, eng, options, &run_per_edge_clocks);
}

AsyncResult run_async_reference(const Graph& g, NodeId source, rng::Engine& eng,
                                const AsyncOptions& options) {
  return dispatch_async(g, source, eng, options, &run_per_edge_clocks_heap);
}

}  // namespace rumor::core
