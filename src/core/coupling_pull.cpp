#include "core/coupling_pull.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>

#include "core/informed_set.hpp"
#include "core/sync.hpp"

namespace rumor::core {

namespace {

/// Lazily materialized shared table X_{v,i} (push targets) plus the fully
/// materialized Y_{v,w} (pull exponentials, indexed by v's neighbor slot).
/// Both sync processes and the async process read the same entries, which
/// is exactly what makes the runs coupled.
class SharedTables {
 public:
  SharedTables(const Graph& g, rng::Engine& eng) : g_(g), eng_(eng) {
    y_.resize(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const double rate = 2.0 / static_cast<double>(g.degree(v));
      y_[v].resize(g.degree(v));
      for (auto& y : y_[v]) y = rng::exponential(eng_, rate);
    }
    x_.resize(g.num_nodes());
  }

  /// X_{v,i}: i >= 1 is the tick/round index after v got informed.
  [[nodiscard]] NodeId push_target(NodeId v, std::uint64_t i) {
    auto& seq = x_[v];
    while (seq.size() < i) seq.push_back(g_.random_neighbor(v, eng_));
    return seq[i - 1];
  }

  /// Y_{v,w} addressed by w's slot in v's adjacency list.
  [[nodiscard]] double y(NodeId v, std::uint32_t neighbor_slot) const {
    return y_[v][neighbor_slot];
  }

 private:
  const Graph& g_;
  rng::Engine& eng_;
  std::vector<std::vector<NodeId>> x_;
  std::vector<std::vector<double>> y_;
};

constexpr double kInf = std::numeric_limits<double>::infinity();

/// State shared by the ppx and ppy round loops. Membership ("was v ever
/// stamped?") is backed by an InformedSet alongside the round stamps.
struct SyncPullState {
  std::vector<std::uint64_t> informed_round;
  InformedSet informed;           // v stamped <=> informed.test(v)
  std::vector<double> best_val;   // min over informed nbrs w of r_w + Y_{v,w}
  std::vector<std::uint32_t> informed_neighbors;
  std::vector<std::uint64_t> z_round;  // ppx only: first round with k >= deg/2
  NodeId informed_count = 1;
};

SyncPullState make_state(const Graph& g) {
  SyncPullState st;
  const NodeId n = g.num_nodes();
  st.informed_round.assign(n, kNeverRound);
  st.informed.assign(n);
  st.best_val.assign(n, kInf);
  st.informed_neighbors.assign(n, 0);
  st.z_round.assign(n, kNeverRound);
  st.informed_count = 0;
  return st;
}

/// Commits node v as informed in round r: bumps neighbor counters, seeds
/// pull candidates r + Y_{x,v} for uninformed neighbors x, records z.
void commit_informed(const Graph& g, SharedTables& tables, SyncPullState& st, NodeId v,
                     std::uint64_t r) {
  st.informed_round[v] = r;
  st.informed.set(v);
  ++st.informed_count;
  for (NodeId x : g.neighbors(v)) {
    ++st.informed_neighbors[x];
    if (st.informed.test(x)) continue;
    const std::uint32_t slot = g.neighbor_index(x, v);
    const double candidate = static_cast<double>(r) + tables.y(x, slot);
    st.best_val[x] = std::min(st.best_val[x], candidate);
    if (st.z_round[x] == kNeverRound &&
        2ULL * st.informed_neighbors[x] >= g.degree(x)) {
      st.z_round[x] = r;
    }
  }
}

/// One coupled synchronous run (ppx when `forced_pull`, ppy otherwise).
/// Both consume the same tables, which is what Lemma 9's proof prescribes.
std::vector<std::uint64_t> run_sync_coupled(const Graph& g, NodeId source, SharedTables& tables,
                                            bool forced_pull, std::uint64_t cap,
                                            bool& completed) {
  const NodeId n = g.num_nodes();
  SyncPullState st = make_state(g);
  // Source informed at round 0; this also seeds its neighbors' candidates.
  commit_informed(g, tables, st, source, 0);

  std::vector<NodeId> newly;
  for (std::uint64_t r = 1; st.informed_count < n && r <= cap; ++r) {
    newly.clear();

    // Push side: v pushes to X_{v, r - r_v}. During the scan every stamp is
    // < r (commits happen at round end), so the informed-set word scan
    // enumerates exactly the stamped nodes in the original ascending order —
    // X consumption, and hence every sampled bit, is unchanged.
    st.informed.for_each([&](NodeId v) {
      const NodeId w = tables.push_target(v, r - st.informed_round[v]);
      if (!st.informed.test(w)) newly.push_back(w);
    });

    // Pull side: fires per the coupling rule.
    for (NodeId v = 0; v < n; ++v) {
      if (st.informed.test(v)) continue;
      bool fires = false;
      if (forced_pull && st.z_round[v] != kNeverRound) {
        // ppx case (ii): half the neighborhood informed by end of round z —
        // pull in round z + 1 with probability 1. (A pull scheduled by case
        // (i) at an earlier round would already have fired.)
        fires = (r == st.z_round[v] + 1);
      } else if (st.best_val[v] < kInf) {
        // Case (i): pull in round min_w { r_w + ceil(Y_{v,w}) }, which
        // equals ceil(best_val) because ceil is monotone.
        fires = (static_cast<std::uint64_t>(std::ceil(st.best_val[v])) == r);
      }
      if (fires) newly.push_back(v);
    }

    for (NodeId v : newly) {
      if (!st.informed.test(v)) commit_informed(g, tables, st, v, r);
    }
  }
  completed = (st.informed_count == n);
  return std::move(st.informed_round);
}

/// The coupled asynchronous run: pushes at Poisson(1) ticks to the shared
/// X_{v,i} targets; pulls at t_w + 2*Y_{v,w} (the first tick of the per-edge
/// clock C_{v,w} after w got informed).
std::vector<double> run_async_coupled(const Graph& g, NodeId source, SharedTables& tables,
                                      rng::Engine& eng, double max_time, bool& completed) {
  const NodeId n = g.num_nodes();
  std::vector<double> informed_time(n, kNeverTime);

  struct Event {
    double t;
    NodeId node;      // push: the pusher; pull: the puller
    std::uint64_t i;  // push: tick index (>= 1); pull: 0
    bool operator>(const Event& o) const noexcept { return t > o.t; }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
  InformedSet informed(n);
  NodeId informed_count = 0;

  // Marks v informed at time t and schedules its consequences.
  auto inform = [&](NodeId v, double t) {
    informed_time[v] = t;
    informed.set(v);
    ++informed_count;
    // First push tick of v.
    queue.push(Event{t + rng::exponential(eng, 1.0), v, 1});
    // Pull candidates of uninformed neighbors x: first C_{x,v} tick after t.
    for (NodeId x : g.neighbors(v)) {
      if (informed.test(x)) continue;
      const std::uint32_t slot = g.neighbor_index(x, v);
      queue.push(Event{t + 2.0 * tables.y(x, slot), x, 0});
    }
  };

  inform(source, 0.0);

  while (informed_count < n && !queue.empty()) {
    const Event ev = queue.top();
    queue.pop();
    if (ev.t > max_time) break;
    if (ev.i >= 1) {
      // Push tick i of ev.node (informed by construction).
      const NodeId target = tables.push_target(ev.node, ev.i);
      if (!informed.test(target)) inform(target, ev.t);
      queue.push(Event{ev.t + rng::exponential(eng, 1.0), ev.node, ev.i + 1});
    } else {
      // Pull candidate: events pop in time order, so the first one that
      // finds ev.node still uninformed is exactly min_w { t_w + 2 Y }.
      if (!informed.test(ev.node)) inform(ev.node, ev.t);
    }
  }
  completed = (informed_count == n);
  return informed_time;
}

std::uint64_t max_informed(const std::vector<std::uint64_t>& rounds) {
  return *std::max_element(rounds.begin(), rounds.end());
}

}  // namespace

std::uint64_t CoupledRun::ppx_rounds() const { return max_informed(round_ppx); }
std::uint64_t CoupledRun::ppy_rounds() const { return max_informed(round_ppy); }

double CoupledRun::ppa_time() const {
  return *std::max_element(time_ppa.begin(), time_ppa.end());
}

CoupledRun run_pull_coupling(const Graph& g, NodeId source, rng::Engine& eng,
                             const PullCouplingOptions& options) {
  assert(source < g.num_nodes());
  const std::uint64_t cap =
      options.max_rounds != 0 ? options.max_rounds : default_round_cap(g.num_nodes());

  SharedTables tables(g, eng);
  CoupledRun run;
  bool ok_x = false;
  bool ok_y = false;
  bool ok_a = false;
  run.round_ppx = run_sync_coupled(g, source, tables, /*forced_pull=*/true, cap, ok_x);
  run.round_ppy = run_sync_coupled(g, source, tables, /*forced_pull=*/false, cap, ok_y);
  // Generous time cap: Lemma 10 bounds pp-a by ~4x ppy + log; 16x + slack
  // only guards against pathological table draws.
  const double time_cap =
      16.0 * static_cast<double>(cap) + 64.0 * std::log(static_cast<double>(g.num_nodes()) + 2.0);
  run.time_ppa = run_async_coupled(g, source, tables, eng, time_cap, ok_a);
  run.completed = ok_x && ok_y && ok_a;
  return run;
}

}  // namespace rumor::core
