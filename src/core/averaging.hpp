// rumor/core: randomized gossip averaging (Boyd, Ghosh, Prabhakar, Shah [4]).
//
// Reference [4] is where the paper's asynchronous time model originates:
// each node carries a value, and on each contact the pair replaces both
// values with their average; the protocol computes the global mean to any
// accuracy. We implement both clockings over the same Graph substrate:
//
//   synchronous   in each round every node contacts a random neighbor and
//                 the pair averages (contacts resolved in caller order —
//                 a node may average several times per round);
//   asynchronous  the global rate-n Poisson clock: one uniform caller per
//                 step averages with a random neighbor.
//
// The measured quantity is the epsilon-averaging time: the first
// round/time at which the *relative deviation* ||x - mean||_2 / ||x0 -
// mean||_2 drops below epsilon. Its link to the spectral gap (averaging is
// fast exactly where rumor spreading is fast) is exercised by bench E14.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/protocol.hpp"
#include "rng/rng.hpp"

namespace rumor::core {

struct AveragingOptions {
  /// Stop once the relative L2 deviation from the mean falls below this.
  double epsilon = 1e-3;
  /// Cap on rounds (sync) or steps (async); 0 derives one from n.
  std::uint64_t max_ticks = 0;
};

struct AveragingResult {
  /// Rounds (sync) or time units (async) until convergence.
  double time = 0.0;
  /// Total pairwise averaging operations performed.
  std::uint64_t interactions = 0;
  bool converged = false;
  /// Final values; their mean equals the initial mean exactly up to fp
  /// error (pairwise averaging conserves the sum).
  std::vector<double> values;
};

/// Synchronous gossip averaging of `initial` values on g.
/// Precondition: initial.size() == g.num_nodes(), g connected.
[[nodiscard]] AveragingResult run_averaging_sync(const Graph& g, std::span<const double> initial,
                                                 rng::Engine& eng,
                                                 const AveragingOptions& options = {});

/// Asynchronous (rate-n Poisson clock) gossip averaging.
[[nodiscard]] AveragingResult run_averaging_async(const Graph& g, std::span<const double> initial,
                                                  rng::Engine& eng,
                                                  const AveragingOptions& options = {});

}  // namespace rumor::core
