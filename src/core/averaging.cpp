#include "core/averaging.hpp"

#include <cassert>
#include <cmath>

namespace rumor::core {

namespace {

double mean_of(std::span<const double> values) {
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

/// Squared L2 deviation from the (conserved) mean.
double deviation_sq(std::span<const double> values, double mean) {
  double dev = 0.0;
  for (double v : values) dev += (v - mean) * (v - mean);
  return dev;
}

std::uint64_t default_tick_cap(NodeId n, bool async) {
  // Averaging time is O(log(1/eps) / gap); the worst tested family (cycle)
  // has gap ~ 1/n^2, so allow ~n^2 log n rounds / n^3 log n steps.
  const double nn = static_cast<double>(n);
  const double cap = (async ? nn : 1.0) * 50.0 * nn * nn * std::log2(nn + 2.0) + 10000.0;
  return cap > 1e15 ? static_cast<std::uint64_t>(1e15) : static_cast<std::uint64_t>(cap);
}

}  // namespace

AveragingResult run_averaging_sync(const Graph& g, std::span<const double> initial,
                                   rng::Engine& eng, const AveragingOptions& options) {
  const NodeId n = g.num_nodes();
  assert(initial.size() == n);
  assert(options.epsilon > 0.0);

  AveragingResult result;
  result.values.assign(initial.begin(), initial.end());
  const double mean = mean_of(initial);
  const double initial_dev = deviation_sq(initial, mean);
  if (initial_dev == 0.0) {
    result.converged = true;
    return result;
  }
  const double target = initial_dev * options.epsilon * options.epsilon;
  const std::uint64_t cap = options.max_ticks != 0 ? options.max_ticks
                                                   : default_tick_cap(n, /*async=*/false);

  for (std::uint64_t r = 1; r <= cap; ++r) {
    for (NodeId v = 0; v < n; ++v) {
      if (g.degree(v) == 0) continue;
      const NodeId w = g.random_neighbor(v, eng);
      const double avg = 0.5 * (result.values[v] + result.values[w]);
      result.values[v] = avg;
      result.values[w] = avg;
      ++result.interactions;
    }
    result.time = static_cast<double>(r);
    if (deviation_sq(result.values, mean) <= target) {
      result.converged = true;
      break;
    }
  }
  return result;
}

AveragingResult run_averaging_async(const Graph& g, std::span<const double> initial,
                                    rng::Engine& eng, const AveragingOptions& options) {
  const NodeId n = g.num_nodes();
  assert(initial.size() == n);
  assert(options.epsilon > 0.0);

  AveragingResult result;
  result.values.assign(initial.begin(), initial.end());
  const double mean = mean_of(initial);
  double dev = deviation_sq(initial, mean);
  if (dev == 0.0) {
    result.converged = true;
    return result;
  }
  const double target = dev * options.epsilon * options.epsilon;
  const std::uint64_t cap = options.max_ticks != 0 ? options.max_ticks
                                                   : default_tick_cap(n, /*async=*/true);

  double now = 0.0;
  const double rate = static_cast<double>(n);
  for (std::uint64_t step = 1; step <= cap; ++step) {
    now += rng::exponential(eng, rate);
    const NodeId v = static_cast<NodeId>(rng::uniform_below(eng, n));
    if (g.degree(v) == 0) continue;
    const NodeId w = g.random_neighbor(v, eng);
    // Maintain the deviation incrementally: averaging v, w changes only
    // their two terms. d_new = d_old - (xv - xw)^2 / 2.
    const double diff = result.values[v] - result.values[w];
    dev -= 0.5 * diff * diff;
    const double avg = 0.5 * (result.values[v] + result.values[w]);
    result.values[v] = avg;
    result.values[w] = avg;
    ++result.interactions;
    result.time = now;
    if (dev <= target) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace rumor::core
