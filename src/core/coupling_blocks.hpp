// rumor/core: the block coupling of Section 5 (lower bound, Theorem 2/11).
//
// The paper maps the step sequence S_1, S_2, ... of pp-a into blocks, and
// each block to one or more rounds of pp, such that the informed set of pp-a
// after each block is contained in the informed set of pp after the rounds
// mapped to it (Lemma 13). Block rules, with I the pp-a informed set before
// the block and H the steps accumulated so far in the block:
//
//   normal block: grows until (1) it holds sqrt(n) steps, or the next step
//   S_j = (x_j, y_j) is (2) *left-incompatible* (x_j already appears in H as
//   a caller or callee) or (3) *right-incompatible* (not left-incompatible,
//   and y_j got informed during H's execution from I). A normal block maps
//   to a single pp round executing exactly its pairs.
//
//   special block: follows a right-incompatible closure. pp runs fresh full
//   rounds until one contains a pair that is right-incompatible with the
//   previous block; those rounds map to the block, and pp-a executes a
//   single replacement step drawn from the right-incompatible pairs of that
//   round (distribution mu_{A|D}, Eq. 1 — see the implementation note in
//   coupling_blocks.cpp about how we realize it).
//
// The accounting of Lemma 14 — rho_t = rho_full + rho_left + rho_right +
// rho_special with E[rho_tau] = O(E[tau]/sqrt(n) + sqrt(n)) — is exposed in
// BlockStats so bench E6 can reproduce the bound's shape.
#pragma once

#include <cstdint>

#include "core/protocol.hpp"
#include "rng/rng.hpp"

namespace rumor::core {

/// Outcome of one coupled pp-a / pp execution.
struct BlockStats {
  /// tau: pp-a steps until pp-a informed every node.
  std::uint64_t steps = 0;
  /// pp-a spreading time: sum of tau i.i.d. Exp(n) gaps.
  double async_time = 0.0;
  /// rho_tau: total pp rounds mapped to those steps.
  std::uint64_t rounds = 0;

  /// Blocks that closed with exactly sqrt(n) steps (condition 1).
  std::uint64_t full_blocks = 0;
  /// Blocks closed by a left-incompatible next step (condition 2).
  std::uint64_t left_blocks = 0;
  /// Blocks closed by a right-incompatible next step (condition 3).
  std::uint64_t right_blocks = 0;
  /// Special blocks executed (== right_blocks unless the run ended first).
  std::uint64_t special_blocks = 0;
  /// pp rounds consumed by special blocks alone.
  std::uint64_t special_rounds = 0;

  /// Round at which pp had informed every node (pp usually finishes before
  /// pp-a under this coupling); kNeverRound if it had not by the end.
  std::uint64_t sync_rounds_to_complete = kNeverRound;

  /// Lemma 13: I_k(pp-a) subseteq I_k(pp) held after every block.
  bool subset_invariant_held = true;
  bool completed = false;
};

struct BlockCouplingOptions {
  /// Block capacity; 0 means floor(sqrt(n)) as in the paper.
  std::uint64_t block_capacity = 0;
  /// Step cap; 0 derives a generous default from n.
  std::uint64_t max_steps = 0;
};

/// Runs the coupled processes from `source` until pp-a informs every node.
/// Precondition: g connected, source < g.num_nodes().
[[nodiscard]] BlockStats run_block_coupling(const Graph& g, NodeId source, rng::Engine& eng,
                                            const BlockCouplingOptions& options = {});

}  // namespace rumor::core
