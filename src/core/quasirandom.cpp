#include "core/quasirandom.hpp"

#include <cassert>
#include <vector>

#include "core/informed_set.hpp"

namespace rumor::core {

SyncResult run_quasirandom(const Graph& g, NodeId source, rng::Engine& eng,
                           const QuasirandomOptions& options) {
  const NodeId n = g.num_nodes();
  assert(source < n);

  SyncResult result;
  result.informed_round.assign(n, kNeverRound);
  result.informed_round[source] = 0;
  NodeId informed_count = 1;

  // The model's only randomness: one starting slot per node.
  std::vector<std::uint32_t> start(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (g.degree(v) > 0) {
      start[v] = static_cast<std::uint32_t>(rng::uniform_below(eng, g.degree(v)));
    }
  }

  const std::uint64_t cap =
      options.max_ticks != 0 ? options.max_ticks : default_round_cap(n);

  std::vector<NodeId> newly;
  // Probe-only freshness marks for the current round (cleared at commit);
  // the protocol draws no randomness here, so the probe is purely passive.
  InformedSet probe_pending(options.probe != nullptr ? n : 0);
  for (std::uint64_t r = 1; informed_count < n && r <= cap; ++r) {
    newly.clear();
    auto informed_before = [&](NodeId v) { return result.informed_round[v] < r; };
    for (NodeId v = 0; v < n; ++v) {
      const auto deg = g.degree(v);
      if (deg == 0) continue;
      const auto slot = static_cast<std::uint32_t>((start[v] + (r - 1)) % deg);
      const NodeId w = g.neighbor_at(v, slot);
      const bool v_in = informed_before(v);
      const bool w_in = informed_before(w);
      if (options.probe != nullptr) {
        probe_windowed(*options.probe, options.mode, v_in, w_in, false, v, w, probe_pending);
      }
      if (v_in == w_in) continue;
      switch (options.mode) {
        case Mode::kPush:
          if (v_in && result.informed_round[w] == kNeverRound) newly.push_back(w);
          break;
        case Mode::kPull:
          if (w_in && result.informed_round[v] == kNeverRound) newly.push_back(v);
          break;
        case Mode::kPushPull:
          if (v_in) {
            if (result.informed_round[w] == kNeverRound) newly.push_back(w);
          } else {
            if (result.informed_round[v] == kNeverRound) newly.push_back(v);
          }
          break;
      }
    }
    for (NodeId v : newly) {
      if (result.informed_round[v] == kNeverRound) {
        result.informed_round[v] = r;
        ++informed_count;
      }
      if (options.probe != nullptr) probe_pending.reset(v);
    }
    result.rounds = r;
  }

  result.completed = (informed_count == n);
  if (!result.completed) result.rounds = cap;
  if (options.record_history) {
    result.informed_count_history = informed_round_curve(result.informed_round, result.rounds);
  }
  return result;
}

}  // namespace rumor::core
