// rumor/core: the shared-randomness coupling of Lemmas 9 and 10.
//
// The paper's upper bound (Theorem 1/4) is proved by coupling four processes
// through two shared tables of random variables:
//
//   X_{v,i} ~ Unif(Gamma(v))   the neighbor v pushes to in the i-th round
//                              (ppx, ppy) / at its i-th clock tick (pp-a)
//                              after v got informed;
//   Y_{v,w} ~ Exp(2/deg(v))    drives pulls: in ppx/ppy node v pulls in
//                              round r_w + ceil(Y_{v,w}) from the neighbor w
//                              minimizing r_w + Y_{v,w}; in pp-a node v
//                              pulls at time t_w + 2*Y_{v,w} (the factor 2
//                              makes 2Y ~ Exp(1/deg(v)), the rate of the
//                              per-edge clock C_{v,w}).
//
// ppx additionally forces a pull in round z+1 where z is the first round by
// the end of which at least deg(v)/2 neighbors of v are informed (case (ii)
// of Lemma 9's proof).
//
// This module executes ppx, ppy and pp-a *jointly* on one draw of the
// tables, returning the per-node inform rounds/times (r_v, r'_v, t_v). The
// proofs' pathwise inequalities — r'_v <= 2 r_v + O(log n) and
// t_v <= 4 r'_v + O(log n) with high probability — become measurable
// quantities, checked by tests and reported by bench E7.
#pragma once

#include <cstdint>
#include <vector>

#include "core/protocol.hpp"
#include "rng/rng.hpp"

namespace rumor::core {

/// Per-node outcome of one coupled execution.
struct CoupledRun {
  /// Rounds at which each node was informed in ppx (r_v).
  std::vector<std::uint64_t> round_ppx;
  /// Rounds at which each node was informed in ppy (r'_v).
  std::vector<std::uint64_t> round_ppy;
  /// Times at which each node was informed in pp-a (t_v).
  std::vector<double> time_ppa;
  /// True iff every process informed every node within its cap.
  bool completed = false;

  /// Spreading times (max over nodes); valid iff completed.
  [[nodiscard]] std::uint64_t ppx_rounds() const;
  [[nodiscard]] std::uint64_t ppy_rounds() const;
  [[nodiscard]] double ppa_time() const;
};

struct PullCouplingOptions {
  std::uint64_t max_rounds = 0;  // 0: default cap as in run_sync
};

/// Draws one instance of the shared tables and executes ppx, ppy, pp-a on it.
/// Precondition: g connected, source < g.num_nodes().
[[nodiscard]] CoupledRun run_pull_coupling(const Graph& g, NodeId source, rng::Engine& eng,
                                           const PullCouplingOptions& options = {});

}  // namespace rumor::core
