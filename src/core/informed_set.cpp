#include "core/informed_set.hpp"

#include <algorithm>

namespace rumor::core {

void InformedSet::assign(NodeId n) {
  size_ = n;
  words_.assign((static_cast<std::size_t>(n) + 63) / 64, 0);
}

void InformedSet::clear() { std::fill(words_.begin(), words_.end(), 0); }

NodeId InformedSet::count() const noexcept {
  NodeId total = 0;
  for (std::uint64_t word : words_) total += static_cast<NodeId>(std::popcount(word));
  return total;
}

bool InformedSet::is_subset_of(const InformedSet& other) const noexcept {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

}  // namespace rumor::core
