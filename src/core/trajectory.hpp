// rumor/core: spread-trajectory utilities.
//
// The social-network literature the paper builds on ([9], [16]) mostly
// measures the time for the rumor to reach a *fraction* of the nodes rather
// than all of them (asynchronous push-pull beats synchronous on power-law
// networks in exactly that metric). These helpers derive fraction-reach
// times from the per-node inform rounds/times every engine already records.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/protocol.hpp"

namespace rumor::core {

/// First round by which at least ceil(fraction * n) nodes were informed, per
/// a SyncResult's informed_round vector. Returns kNeverRound if the run
/// never reached that fraction. Precondition: 0 < fraction <= 1.
[[nodiscard]] std::uint64_t round_to_fraction(std::span<const std::uint64_t> informed_round,
                                              double fraction);

/// First time by which at least ceil(fraction * n) nodes were informed, per
/// an AsyncResult's informed_time vector. Returns kNeverTime if unreached.
[[nodiscard]] double time_to_fraction(std::span<const double> informed_time, double fraction);

/// The full informed-count trajectory of an asynchronous run, sampled at the
/// inform events: sorted inform times (the k-th entry is the time the
/// (k+1)-th node was informed). Never-informed nodes are omitted.
[[nodiscard]] std::vector<double> async_trajectory(std::span<const double> informed_time);

}  // namespace rumor::core
