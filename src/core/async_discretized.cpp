#include "core/async_discretized.hpp"

#include <cassert>
#include <cmath>
#include <vector>

namespace rumor::core {

AsyncResult run_async_discretized(const Graph& g, NodeId source, rng::Engine& eng,
                                  const DiscretizedOptions& options) {
  const NodeId n = g.num_nodes();
  assert(source < n);
  assert(options.dt > 0.0);

  AsyncResult result;
  result.informed_time.assign(n, kNeverTime);
  result.informed_time[source] = 0.0;
  NodeId informed_count = 1;

  const double time_cap = options.max_time > 0.0
                              ? options.max_time
                              : 400.0 * static_cast<double>(n) *
                                    std::log2(static_cast<double>(n) + 2.0);

  double now = 0.0;
  std::vector<NodeId> newly;
  // Probe-only freshness marks for the current slice (cleared at commit).
  InformedSet probe_pending(options.probe != nullptr ? n : 0);
  while (informed_count < n && now < time_cap) {
    const double slice_end = now + options.dt;
    const std::uint64_t contacts = rng::poisson(eng, static_cast<double>(n) * options.dt);
    result.steps += contacts;
    newly.clear();
    for (std::uint64_t c = 0; c < contacts; ++c) {
      const NodeId v = static_cast<NodeId>(rng::uniform_below(eng, n));
      if (g.degree(v) == 0) {
        if (options.probe != nullptr) probe_empty_contact(*options.probe);
        continue;
      }
      const NodeId w = g.random_neighbor(v, eng);
      // Evaluate against the slice-start state (informed_time < slice start
      // means informed strictly before this slice; times are quantized to
      // slice ends, so `< slice_end` does it).
      const bool v_in = result.informed_time[v] < slice_end && result.informed_time[v] != kNeverTime;
      const bool w_in = result.informed_time[w] < slice_end && result.informed_time[w] != kNeverTime;
      if (options.probe != nullptr) {
        probe_windowed(*options.probe, options.mode, v_in, w_in, false, v, w, probe_pending);
      }
      if (v_in == w_in) continue;
      switch (options.mode) {
        case Mode::kPush:
          if (!v_in) continue;
          break;
        case Mode::kPull:
          if (!w_in) continue;
          break;
        case Mode::kPushPull:
          break;
      }
      newly.push_back(v_in ? w : v);
    }
    for (NodeId v : newly) {
      if (result.informed_time[v] == kNeverTime) {
        result.informed_time[v] = slice_end;
        ++informed_count;
      }
      if (options.probe != nullptr) probe_pending.reset(v);
    }
    now = slice_end;
  }

  result.time = now;
  result.completed = (informed_count == n);
  return result;
}

}  // namespace rumor::core
