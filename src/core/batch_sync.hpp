// rumor/core: the batch-lane synchronous engine — up to 64 trials per word.
//
// The paper's quantities are distributional, so every experiment runs the
// same (graph, mode, loss) configuration hundreds of times. run_sync walks
// the graph once *per trial*; this engine walks it once per *lane batch*,
// holding the informed bit of the same node across W <= 64 independent
// trials ("lanes") in one 64-bit word, structure-of-arrays style:
//
//   informed[v] bit l  =  node v is informed in lane l.
//
// Per round, each node draws contacts only for the lanes where the draw can
// matter (push: lanes whose caller is informed; pull: lanes whose caller is
// uninformed; push-pull: every live lane), iterated branch-free via
// countr_zero over the lane mask. Graph rows, degrees, and the informed
// words are touched once per node for all lanes together, and neighbor
// draws use 32-bit halves of each engine output, so per-trial traversal and
// RNG cost amortize across the batch. Round commits are word scans of the
// pending set; a lane that informs its last node is recorded and retired
// from the live mask without stalling the others.
//
// Randomness contract — distributional, NOT bit-identical: all lanes share
// ONE engine, drawn lane-major within each node, so the stream interleaves
// across trials in an order no sequence of run_sync calls reproduces. Each
// lane is still an exact execution of the Section 2 protocol (contacts
// uniform over neighbors, exchanges evaluated against the pre-round set,
// loss thinning per transmission), so per-lane spreading times are i.i.d.
// samples from run_sync's distribution. The acceptance oracle is the
// two-sample KS gate (dist::ks_two_sample_test); see docs/ENGINES.md for
// the full consumption model.
#pragma once

#include <cstdint>
#include <vector>

#include "core/trial.hpp"
#include "rng/rng.hpp"

namespace rumor::core {

/// Lane width ceiling: one informed bit per lane in a 64-bit word.
inline constexpr std::uint32_t kMaxBatchLanes = 64;

/// Shared knobs (core/trial.hpp): mode, max_ticks (rounds; 0 = run_sync's
/// default cap, applied to every lane), message_loss, and extra_sources
/// (seeded in every lane) are honored. record_history, probe, and dynamics
/// are unsupported — run_batch_sync throws if they are set, so schedulers
/// cannot silently drop telemetry they asked for.
struct BatchSyncOptions : TrialOptions {
  /// Trials executed in this batch (1..kMaxBatchLanes).
  std::uint32_t lanes = kMaxBatchLanes;
};

/// Per-lane outcome of one batch execution.
struct BatchSyncResult {
  /// Lane count actually run (copied from the options).
  std::uint32_t lanes = 0;
  /// True iff every lane informed all nodes within the round cap.
  bool completed = false;
  /// rounds[l] = lane l's spreading time; the cap value for lanes that did
  /// not complete (mirrors run_sync's capped result).
  std::vector<std::uint64_t> rounds;
  /// Total rounds executed summed over lanes (feeds the obs metrics
  /// registry exactly like run_sync's per-trial round counts).
  std::uint64_t total_rounds = 0;
};

/// Runs `options.lanes` independent synchronous trials from `source` in one
/// lane-parallel pass. Precondition: source < g.num_nodes(); throws
/// std::invalid_argument on a lane count outside 1..kMaxBatchLanes and
/// std::runtime_error when record_history / probe / dynamics are set.
///
/// Determinism: the batch is a pure function of (graph, source, options,
/// engine state) — the campaign scheduler exploits this by pinning one
/// trial block to one lane batch, seeded as derive_stream(seed, first
/// trial index), so checkpoints and shards stay slot-addressable.
[[nodiscard]] BatchSyncResult run_batch_sync(const Graph& g, NodeId source, rng::Engine& eng,
                                             const BatchSyncOptions& options = {});

}  // namespace rumor::core
