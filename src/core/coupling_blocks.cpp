#include "core/coupling_blocks.hpp"

#include <cassert>
#include <cmath>
#include <utility>
#include <vector>

#include "core/async.hpp"
#include "core/informed_set.hpp"

namespace rumor::core {

namespace {

/// Flag set with O(1) membership, insert and O(members) clear — InformedSet
/// words back the membership test, a members list backs the cheap clear.
class NodeFlags {
 public:
  explicit NodeFlags(NodeId n) : flag_(n) {}

  void insert(NodeId v) {
    if (flag_.test_and_set(v)) members_.push_back(v);
  }
  [[nodiscard]] bool contains(NodeId v) const { return flag_.test(v); }
  [[nodiscard]] const std::vector<NodeId>& members() const { return members_; }
  [[nodiscard]] bool empty() const { return members_.empty(); }
  void clear() {
    for (NodeId v : members_) flag_.reset(v);
    members_.clear();
  }
  void swap(NodeFlags& other) noexcept {
    std::swap(flag_, other.flag_);
    members_.swap(other.members_);
  }

 private:
  InformedSet flag_;
  std::vector<NodeId> members_;
};

struct Pair {
  NodeId x;
  NodeId y;
};

/// pp-side state: informed set plus parallel round application.
struct SyncSide {
  explicit SyncSide(NodeId n) : informed(n) {}

  InformedSet informed;
  NodeId count = 0;
  std::vector<NodeId> scratch;

  void mark(NodeId v) {
    if (informed.test_and_set(v)) ++count;
  }

  /// Applies `pairs` as one synchronous push-pull round: all exchanges are
  /// evaluated against the pre-round snapshot, then committed.
  void apply_round(const std::vector<Pair>& pairs) {
    scratch.clear();
    for (const Pair& p : pairs) {
      const bool x_in = informed.test(p.x);
      const bool y_in = informed.test(p.y);
      if (x_in == y_in) continue;
      scratch.push_back(x_in ? p.y : p.x);
    }
    for (NodeId v : scratch) mark(v);
  }
};

}  // namespace

BlockStats run_block_coupling(const Graph& g, NodeId source, rng::Engine& eng,
                              const BlockCouplingOptions& options) {
  const NodeId n = g.num_nodes();
  assert(source < n);
  assert(n >= 2);

  const std::uint64_t capacity =
      options.block_capacity != 0
          ? options.block_capacity
          : std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                           std::floor(std::sqrt(static_cast<double>(n)))));
  const std::uint64_t step_cap =
      options.max_steps != 0 ? options.max_steps : default_step_cap(n);

  BlockStats stats;

  // pp-a side.
  InformedSet informed_a(n);
  NodeId count_a = 1;
  informed_a.set(source);
  // pp side.
  SyncSide pp(n);
  pp.mark(source);

  // Executes one pp-a step (x contacts y, push-pull). Advances time by one
  // Exp(n) clock gap.
  auto exec_step = [&](NodeId x, NodeId y) {
    ++stats.steps;
    stats.async_time += rng::exponential(eng, static_cast<double>(n));
    const bool x_in = informed_a.test(x);
    const bool y_in = informed_a.test(y);
    if (x_in == y_in) return static_cast<NodeId>(n);  // no-op step
    const NodeId target = x_in ? y : x;
    informed_a.set(target);
    ++count_a;
    return target;
  };

  // The paper's invariant I(pp-a) ⊆ I(pp), checked word-wise: n/64 ANDs
  // instead of n flag loads.
  auto check_subset = [&] {
    if (!informed_a.is_subset_of(pp.informed)) stats.subset_invariant_held = false;
  };

  NodeFlags touched(n);
  NodeFlags newly(n);
  NodeFlags prev_touched(n);
  NodeFlags prev_newly(n);
  std::vector<Pair> block_pairs;
  std::vector<Pair> round_pairs;  // scratch for special-block full rounds

  bool have_pending = false;   // step carried over from a left-incompatible closure
  Pair pending{0, 0};
  bool do_special = false;     // next block is special

  while (count_a < n && stats.steps < step_cap) {
    if (do_special) {
      // Special block: run fresh full pp rounds until one contains a pair
      // right-incompatible with the previous normal block, i.e. (v, c_v)
      // with v not touched by it and c_v informed during it.
      do_special = false;
      ++stats.special_blocks;
      std::vector<Pair> candidates;
      for (;;) {
        round_pairs.clear();
        candidates.clear();
        for (NodeId v = 0; v < n; ++v) {
          const NodeId c = g.random_neighbor(v, eng);
          round_pairs.push_back(Pair{v, c});
          if (!prev_touched.contains(v) && prev_newly.contains(c)) {
            candidates.push_back(Pair{v, c});
          }
        }
        pp.apply_round(round_pairs);
        ++stats.rounds;
        ++stats.special_rounds;
        if (!candidates.empty()) break;
      }
      // pp-a executes one replacement step drawn from the round's
      // right-incompatible pairs. Eq. (1) of the paper requires the choice
      // to average to S | S in A across rounds (mu_{A|D}); we realize the
      // natural member of that family — weight each candidate by its step
      // probability Pr[S = (a, b)] = 1/(n deg(a)) — which matches the
      // target marginal up to the round-composition correction the full
      // version constructs (see DESIGN.md, Substitutions).
      double total_w = 0.0;
      for (const Pair& p : candidates) total_w += 1.0 / static_cast<double>(g.degree(p.x));
      double pick = rng::uniform01(eng) * total_w;
      Pair chosen = candidates.back();
      for (const Pair& p : candidates) {
        pick -= 1.0 / static_cast<double>(g.degree(p.x));
        if (pick < 0.0) {
          chosen = p;
          break;
        }
      }
      exec_step(chosen.x, chosen.y);
      check_subset();
      if (pp.count == n && stats.sync_rounds_to_complete == kNeverRound) {
        stats.sync_rounds_to_complete = stats.rounds;
      }
      continue;  // next block is normal, nothing pending
    }

    // Normal block.
    touched.clear();
    newly.clear();
    block_pairs.clear();
    enum class Closure { kFull, kLeft, kRight, kRunEnded } closure = Closure::kRunEnded;

    while (stats.steps < step_cap) {
      Pair s{};
      if (have_pending) {
        s = pending;
        have_pending = false;
      } else {
        s.x = static_cast<NodeId>(rng::uniform_below(eng, n));
        s.y = g.random_neighbor(s.x, eng);
      }

      if (touched.contains(s.x)) {
        // Condition (2): left-incompatible. S starts the next block.
        pending = s;
        have_pending = true;
        closure = Closure::kLeft;
        break;
      }
      if (newly.contains(s.y)) {
        // Condition (3): right-incompatible. S is discarded and replaced by
        // the special block's draw.
        closure = Closure::kRight;
        break;
      }

      // Execute the step inside the block.
      const NodeId informed = exec_step(s.x, s.y);
      touched.insert(s.x);
      touched.insert(s.y);
      block_pairs.push_back(s);
      if (informed < n) newly.insert(informed);

      if (count_a == n) {
        closure = Closure::kRunEnded;
        break;
      }
      if (block_pairs.size() >= capacity) {
        closure = Closure::kFull;
        break;
      }
    }

    // Map the block to a single pp round executing exactly its pairs.
    if (!block_pairs.empty()) {
      pp.apply_round(block_pairs);
      ++stats.rounds;
    }
    switch (closure) {
      case Closure::kFull: ++stats.full_blocks; break;
      case Closure::kLeft: ++stats.left_blocks; break;
      case Closure::kRight:
        ++stats.right_blocks;
        do_special = true;
        prev_touched.swap(touched);
        prev_newly.swap(newly);
        break;
      case Closure::kRunEnded: break;
    }
    check_subset();
    if (pp.count == n && stats.sync_rounds_to_complete == kNeverRound) {
      stats.sync_rounds_to_complete = stats.rounds;
    }
  }

  stats.completed = (count_a == n);
  return stats;
}

}  // namespace rumor::core
