#include "core/coupling_push.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>
#include <utility>

#include "core/informed_set.hpp"
#include "core/sync.hpp"

namespace rumor::core {

namespace {

/// Lazily materialized push-target table X_{v,i}, shared by both runs.
class PushTable {
 public:
  PushTable(const Graph& g, rng::Engine& eng) : g_(g), eng_(eng), x_(g.num_nodes()) {}

  [[nodiscard]] NodeId target(NodeId v, std::uint64_t i) {
    auto& seq = x_[v];
    while (seq.size() < i) seq.push_back(g_.random_neighbor(v, eng_));
    return seq[i - 1];
  }

 private:
  const Graph& g_;
  rng::Engine& eng_;
  std::vector<std::vector<NodeId>> x_;
};

}  // namespace

std::uint64_t PushCoupledRun::push_rounds() const {
  return *std::max_element(round_push.begin(), round_push.end());
}

double PushCoupledRun::push_a_time() const {
  return *std::max_element(time_push_a.begin(), time_push_a.end());
}

PushCoupledRun run_push_coupling(const Graph& g, NodeId source, rng::Engine& eng,
                                 const PushCouplingOptions& options) {
  const NodeId n = g.num_nodes();
  assert(source < n);
  const std::uint64_t cap =
      options.max_rounds != 0 ? options.max_rounds : default_round_cap(n);

  PushTable table(g, eng);
  PushCoupledRun run;

  // --- Synchronous push on the table ---------------------------------------
  // Membership lives in an InformedSet (informed_set.hpp): the informed-set
  // word scan enumerates exactly the nodes the original full scan selected
  // (ascending ids with round_push < r), so the X_{v,i} consumption order —
  // and hence every sampled bit — is unchanged.
  run.round_push.assign(n, kNeverRound);
  run.round_push[source] = 0;
  InformedSet informed(n);
  InformedSet pending(n);
  informed.set(source);
  NodeId informed_sync = 1;
  for (std::uint64_t r = 1; informed_sync < n && r <= cap; ++r) {
    informed.for_each([&](NodeId v) {
      const NodeId w = table.target(v, r - run.round_push[v]);
      if (!informed.test(w)) pending.set(w);
    });
    informed_sync +=
        informed.absorb_drain(pending, [&](NodeId w) { run.round_push[w] = r; });
  }

  // --- Asynchronous push on the same table ----------------------------------
  // Each informed node's i-th tick after its inform time pushes to the same
  // X_{v,i}. Tick gaps are fresh Exp(1) draws — the coupling constrains the
  // *targets*, not the clocks.
  run.time_push_a.assign(n, kNeverTime);
  struct Tick {
    double t;
    NodeId v;
    std::uint64_t i;
    bool operator>(const Tick& o) const noexcept { return t > o.t; }
  };
  std::priority_queue<Tick, std::vector<Tick>, std::greater<>> ticks;
  InformedSet informed_a(n);
  NodeId informed_async = 0;
  auto inform = [&](NodeId v, double t) {
    run.time_push_a[v] = t;
    informed_a.set(v);
    ++informed_async;
    ticks.push(Tick{t + rng::exponential(eng, 1.0), v, 1});
  };
  inform(source, 0.0);
  // Async cap mirrors the sync cap: push spreading times coincide within
  // constants [24], so 8x + log-slack is ample.
  const double time_cap =
      8.0 * static_cast<double>(cap) + 64.0 * std::log(static_cast<double>(n) + 2.0);
  while (informed_async < n && !ticks.empty()) {
    const Tick tick = ticks.top();
    ticks.pop();
    if (tick.t > time_cap) break;
    const NodeId w = table.target(tick.v, tick.i);
    if (!informed_a.test(w)) inform(w, tick.t);
    ticks.push(Tick{tick.t + rng::exponential(eng, 1.0), tick.v, tick.i + 1});
  }

  run.completed = (informed_sync == n) && (informed_async == n);
  return run;
}

}  // namespace rumor::core
