// rumor/core: the unified engine-dispatch surface.
//
// Every protocol engine in this module measures the same thing — the spread
// of one rumor from a source over a graph — but historically each exposed
// its own options struct and call signature, so every scheduler
// (sim/campaign.cpp, sim/harness.cpp) hand-switched over engine kinds and
// re-copied the cross-engine knobs (mode, loss, probe, sources, dynamics,
// caps) at each call site. This header is the single surface they route
// through instead:
//
//   * EngineKind       names every dispatchable engine;
//   * TrialOptions     the shared per-trial knobs, embedded as the base of
//                      every per-engine options struct;
//   * run_trial        one dispatch running one trial of any kind.
//
// Equality contracts (docs/ENGINES.md): for the pre-existing kinds,
// run_trial forwards to the engine entry points with bit-identical
// randomness consumption — routing a caller through run_trial changes no
// output byte. kBatchSync is the exception by design: its lane-parallel
// execution consumes the engine stream in a different order, so it is held
// to *distributional* equality with run_sync (two-sample KS gate,
// dist::ks_two_sample_test), never bit-identity.
#pragma once

#include <cstdint>
#include <vector>

#include "core/protocol.hpp"
#include "core/spread_probe.hpp"
#include "rng/rng.hpp"

namespace rumor::dynamics {
class DynamicGraphView;
}  // namespace rumor::dynamics

namespace rumor::core {

/// Which protocol engine runs a trial.
enum class EngineKind : std::uint8_t {
  kSync,         // run_sync: the paper's round-based pp/push/pull
  kAsync,        // run_async: Poisson-clock pp-a/push-a/pull-a
  kAux,          // run_aux: the proof's auxiliary processes ppx/ppy
  kQuasirandom,  // run_quasirandom: cyclic neighbor lists [11]
  kBatchSync,    // run_batch_sync: 64 lane-parallel sync trials per word
};

[[nodiscard]] constexpr const char* engine_name(EngineKind e) noexcept {
  switch (e) {
    case EngineKind::kSync: return "sync";
    case EngineKind::kAsync: return "async";
    case EngineKind::kAux: return "aux";
    case EngineKind::kQuasirandom: return "quasirandom";
    case EngineKind::kBatchSync: return "batch_sync";
  }
  return "?";
}

/// How the asynchronous engine realizes its Poisson clocks (async.hpp
/// documents the three equivalent descriptions from Section 2).
enum class AsyncView : std::uint8_t {
  kGlobalClock,
  kPerNodeClocks,
  kPerEdgeClocks,
};

/// Which auxiliary process run_aux executes (aux_process.hpp).
enum class AuxKind : std::uint8_t {
  kPpx,  // Definition 5 (with the deg/2 forced-pull rule)
  kPpy,  // Definition 7 (plain aggregate pull probability)
};

/// The per-trial knobs shared across engines. Every per-engine options
/// struct (SyncOptions, AsyncOptions, AuxOptions, QuasirandomOptions,
/// DiscretizedOptions, BatchSyncOptions) derives from this, so one
/// TrialOptions value configures any engine through run_trial and the
/// per-engine structs add only what is genuinely theirs (async clock view,
/// aux kind, slice width, lane count). Engines ignore fields outside their
/// feature set — the support matrix is the engine table in docs/ENGINES.md;
/// schedulers that must reject unsupported combinations (the campaign spec
/// parser) do so at validation time.
struct TrialOptions {
  /// Communication mode for every contact.
  Mode mode = Mode::kPushPull;
  /// Abort cap in the engine's native tick unit: rounds for the round-based
  /// engines (sync, aux, quasirandom, batch_sync), steps for the async
  /// engine. 0 derives a generous per-engine default from n (~200 n log n
  /// rounds / ~200 n^2 log n steps, far above the O(n log n) worst case for
  /// connected graphs) so runaway loops surface as `completed == false`
  /// instead of hanging. The discretized engine caps by simulated time
  /// instead (DiscretizedOptions::max_time).
  std::uint64_t max_ticks = 0;
  /// Fault injection (extension): each contact independently carries no
  /// rumor with this probability — a lossy channel in the spirit of the
  /// protocol's original fault-tolerant applications [7, 26]. A loss
  /// thins every exchange identically, so it rescales time by
  /// ~1/(1 - loss) on both models without changing who-wins shapes
  /// (bench_e11_faults measures this). Honored by sync, async, batch_sync.
  double message_loss = 0.0;
  /// Record |informed| after every round into informed_count_history
  /// (round-based engines; the async engine always reports per-node inform
  /// times instead).
  bool record_history = false;
  /// Spread telemetry (spread_probe.hpp): when set, every contact is
  /// counted and its transmissions classified useful/wasted per direction.
  /// Null costs nothing — a probe never changes randomness consumption or
  /// the result; counters accumulate across runs unless the caller resets
  /// them. Unsupported by aux and batch_sync.
  SpreadProbe* probe = nullptr;
  /// Additional nodes informed at tick 0, alongside `source` (extension:
  /// multi-source spreading, e.g. a write accepted by several replicas).
  std::vector<NodeId> extra_sources;
  /// Temporal/weighted overlay (extension, dynamics/churn.hpp): contacts
  /// route through the view (churned adjacency, weighted neighbor choice)
  /// instead of the static CSR. Null = the paper's static model, with the
  /// engine's randomness consumption unchanged. The view is per-trial
  /// mutable state and must not be shared across concurrent runs.
  /// Supported by sync and async (global-clock view) only.
  dynamics::DynamicGraphView* dynamics = nullptr;
};

/// The per-engine selectors run_trial needs beyond the common options.
/// Fields are read only by the engine kind they belong to.
struct TrialExtras {
  AsyncView view = AsyncView::kGlobalClock;  // kAsync
  AuxKind aux = AuxKind::kPpx;               // kAux
};

/// One trial's result in engine-neutral shape.
struct TrialOutcome {
  /// The spreading time in the engine's native unit: rounds for round-based
  /// engines, time units for the async engine.
  double value = 0.0;
  /// Ticks the engine executed: rounds for round-based engines, events for
  /// the async engine (feeds the obs metrics registry).
  std::uint64_t ticks = 0;
  /// False when the engine hit its cap before informing every node.
  bool completed = false;
  /// Round-based engines with record_history: |informed| after round k.
  std::vector<NodeId> informed_count_history;
  /// Async engine: per-node inform times (moved out of AsyncResult).
  std::vector<double> informed_time;
};

/// Runs one trial of `kind` from `source` on `eng`. For every pre-existing
/// kind this is a pure forwarding layer: the underlying engine sees exactly
/// the options and engine state a direct call would, so results — and
/// randomness consumption — are bit-identical to the per-engine entry
/// points. kBatchSync dispatches a single-lane batch (lane width 1), the
/// batch engine's own execution order at its narrowest; fan-out to many
/// lanes is the scheduler's job via run_batch_sync (batch_sync.hpp).
/// Capped runs return completed == false; callers decide whether that is an
/// error (the campaign and harness both throw with their own context).
[[nodiscard]] TrialOutcome run_trial(EngineKind kind, const Graph& g, NodeId source,
                                     rng::Engine& eng, const TrialOptions& options = {},
                                     const TrialExtras& extras = {});

}  // namespace rumor::core
