// rumor/core: protocol-level spread telemetry (the observability face of
// the engines, PR 9).
//
// A SpreadProbe is an optional, zero-cost-when-off hook every engine
// accepts through its options struct: when attached it counts each contact
// the protocol draws and classifies the transmissions it carries as useful
// (the first copy of the rumor to reach an uninformed node within the
// engine's commit window) or wasted (the target already knew, the message
// was lost, or another contact of the same window got there first), split
// by push/pull direction. Contacts that carry no transmission at all — both
// endpoints uninformed, or an informed callee in push mode — are empty.
//
// The classification never draws randomness and never changes what an
// engine does: an engine with a probe attached consumes the same RNG stream
// and returns the same result as one without, and with the probe detached
// the instrumented code compiles away (sync fast path) or reduces to one
// predictable null check (event loops). The invariant the accounting is
// built around, checked end-to-end by tools/spread_report.py:
//
//   useful_push + useful_pull == final informed count - |sources|
//
// exactly, per execution, because "useful" is defined as first-to-reach.
#pragma once

#include <cmath>
#include <vector>

#include "core/informed_set.hpp"
#include "core/protocol.hpp"

namespace rumor::core {

/// Per-execution contact and transmission counters. Merging probes is
/// field-wise addition, so per-trial counts fold into campaign totals
/// exactly (all integers, no rounding).
struct SpreadProbe {
  std::uint64_t contacts = 0;        ///< contact events observed (incl. empty)
  std::uint64_t useful_push = 0;     ///< push transmissions that first informed their target
  std::uint64_t useful_pull = 0;     ///< pull transmissions that first informed their target
  std::uint64_t wasted_push = 0;     ///< push transmissions that changed nothing
  std::uint64_t wasted_pull = 0;     ///< pull transmissions that changed nothing
  std::uint64_t empty_contacts = 0;  ///< contacts carrying no transmission either way

  void merge(const SpreadProbe& other) noexcept {
    contacts += other.contacts;
    useful_push += other.useful_push;
    useful_pull += other.useful_pull;
    wasted_push += other.wasted_push;
    wasted_pull += other.wasted_pull;
    empty_contacts += other.empty_contacts;
  }

  [[nodiscard]] std::uint64_t useful() const noexcept { return useful_push + useful_pull; }
  [[nodiscard]] std::uint64_t wasted() const noexcept { return wasted_push + wasted_pull; }
};

/// A contact attempt with no partner to talk to (async tick of an isolated
/// node). The synchronous scans skip isolated nodes before drawing anything,
/// so they never record these.
inline void probe_empty_contact(SpreadProbe& probe) noexcept {
  ++probe.contacts;
  ++probe.empty_contacts;
}

/// Classifies one contact of an *instant-commit* engine (the async event
/// loops): a transmission is useful iff its target is uninformed at the
/// event time and the message was not lost. Endpoint states are the
/// pre-event states; call before the engine stamps the target.
inline void probe_instant(SpreadProbe& probe, Mode mode, bool v_in, bool w_in,
                          bool lost) noexcept {
  ++probe.contacts;
  const bool push_tx = mode != Mode::kPull && v_in;
  const bool pull_tx = mode != Mode::kPush && w_in;
  if (!push_tx && !pull_tx) {
    ++probe.empty_contacts;
    return;
  }
  if (push_tx) {
    if (!w_in && !lost) {
      ++probe.useful_push;
    } else {
      ++probe.wasted_push;
    }
  }
  if (pull_tx) {
    if (!v_in && !lost) {
      ++probe.useful_pull;
    } else {
      ++probe.wasted_pull;
    }
  }
}

/// Classifies one contact of a *windowed-commit* engine (synchronous rounds,
/// discretized slices): a transmission is useful iff its target is
/// uninformed at the window start AND this is the first transmission of the
/// window to reach it. `pending` is the window's freshness set — the probe
/// marks the targets it deems useful, and the caller clears those marks at
/// the window commit. Endpoint states are the window-start states.
inline void probe_windowed(SpreadProbe& probe, Mode mode, bool v_in, bool w_in, bool lost,
                           NodeId v, NodeId w, InformedSet& pending) {
  ++probe.contacts;
  const bool push_tx = mode != Mode::kPull && v_in;
  const bool pull_tx = mode != Mode::kPush && w_in;
  if (!push_tx && !pull_tx) {
    ++probe.empty_contacts;
    return;
  }
  if (push_tx) {
    if (!w_in && !lost && pending.test_and_set(w)) {
      ++probe.useful_push;
    } else {
      ++probe.wasted_push;
    }
  }
  if (pull_tx) {
    if (!v_in && !lost && pending.test_and_set(v)) {
      ++probe.useful_pull;
    } else {
      ++probe.wasted_pull;
    }
  }
}

/// Derives the per-round informed-count history from first-informed rounds:
/// curve[r] = |{v : informed_round[v] <= r}| for r = 0..rounds. Bit-identical
/// to recording |informed| after every round in the loop (all integers), so
/// SyncOptions::record_history is now a thin alias for this derivation.
[[nodiscard]] inline std::vector<NodeId> informed_round_curve(
    const std::vector<std::uint64_t>& informed_round, std::uint64_t rounds) {
  std::vector<NodeId> curve(static_cast<std::size_t>(rounds) + 1, 0);
  for (const std::uint64_t r : informed_round) {
    if (r <= rounds) ++curve[static_cast<std::size_t>(r)];
  }
  for (std::size_t i = 1; i < curve.size(); ++i) curve[i] += curve[i - 1];
  return curve;
}

/// Derives a bucketed informed-count history from first-informed times:
/// curve[k] = |{v : informed_time[v] <= k * bucket}|, with just enough
/// buckets that the last entry covers the latest (finite) inform time.
/// Nodes never informed (kNeverTime) are not counted by any bucket.
/// Precondition: bucket > 0.
[[nodiscard]] inline std::vector<NodeId> informed_time_curve(
    const std::vector<double>& informed_time, double bucket) {
  // Minimal k with k * bucket >= t, computed with an explicit fix-up so the
  // curve matches the comparison-based definition exactly (ceil of the
  // division alone can land one bucket off after float rounding).
  auto bucket_of = [bucket](double t) {
    if (t <= 0.0) return std::uint64_t{0};
    auto k = static_cast<std::uint64_t>(std::ceil(t / bucket));
    while (k > 0 && static_cast<double>(k - 1) * bucket >= t) --k;
    while (static_cast<double>(k) * bucket < t) ++k;
    return k;
  };
  std::uint64_t buckets = 0;
  for (const double t : informed_time) {
    if (t == kNeverTime) continue;
    const std::uint64_t k = bucket_of(t);
    if (k > buckets) buckets = k;
  }
  std::vector<NodeId> curve(static_cast<std::size_t>(buckets) + 1, 0);
  for (const double t : informed_time) {
    if (t == kNeverTime) continue;
    ++curve[static_cast<std::size_t>(bucket_of(t))];
  }
  for (std::size_t i = 1; i < curve.size(); ++i) curve[i] += curve[i - 1];
  return curve;
}

}  // namespace rumor::core
