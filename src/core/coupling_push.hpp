// rumor/core: the basic push coupling of Section 3 (after Sauerwald [24]).
//
// The paper's upper-bound technique extends this classical coupling: once a
// node v is informed, it contacts the same sequence of neighbors X_{v,1},
// X_{v,2}, ... in both the synchronous push protocol (in rounds r_v + i)
// and the asynchronous push protocol (at its i-th clock tick after t_v).
// Along any informing path v_0 = u, ..., v_l = v the increments satisfy
// E[t_{v_{i+1}} - t_{v_i} | d_i] <= d_i, hence E[t_v] <= E[r_v]: the
// asynchronous push time is dominated in expectation by the synchronous
// one, node by node.
//
// This module executes both processes jointly on one draw of the table and
// returns (r_v, t_v) so tests and bench E8 can observe the domination the
// paper cites as observation (1) of Corollary 3.
#pragma once

#include <cstdint>
#include <vector>

#include "core/protocol.hpp"
#include "rng/rng.hpp"

namespace rumor::core {

struct PushCoupledRun {
  /// Round each node was informed in synchronous push (r_v).
  std::vector<std::uint64_t> round_push;
  /// Time each node was informed in asynchronous push (t_v).
  std::vector<double> time_push_a;
  bool completed = false;

  [[nodiscard]] std::uint64_t push_rounds() const;
  [[nodiscard]] double push_a_time() const;
};

struct PushCouplingOptions {
  std::uint64_t max_rounds = 0;  // 0: default cap as in run_sync
};

/// Draws one instance of the shared push-target table and runs synchronous
/// and asynchronous push on it. Precondition: g connected, source valid.
[[nodiscard]] PushCoupledRun run_push_coupling(const Graph& g, NodeId source, rng::Engine& eng,
                                               const PushCouplingOptions& options = {});

}  // namespace rumor::core
