// rumor/core: word-packed informed-set representation for the hot engines.
//
// Every protocol engine's membership question is "was v informed before the
// current round?". The original engines answered it by loading a 64-bit
// stamp from an n-entry array — an L2-sized random access for the graphs
// the benchmarks care about (n = 2^14 is a 128 KiB array). An InformedSet
// packs the same predicate into n/64 machine words (2 KiB at n = 2^14), so
// the random probe for the contacted neighbor stays L1-resident, and the
// commit step of a synchronous round becomes a word-scan over the pending
// set instead of a re-check of every recorded contact.
//
// The container is deliberately tiny: test/set/count on single bits,
// whole-set popcount, ascending set-bit iteration (for_each), and the
// engines' commit primitive absorb_drain — OR a pending set into this one,
// visiting exactly the *newly contributed* bits in ascending order while
// zeroing the pending words. None of these operations consumes randomness,
// so swapping the representation cannot move a single sampled bit; the
// bit-for-bit acceptance test against the retained reference engines lives
// in tests/test_fastpath.cpp.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace rumor::core {

using graph::NodeId;

class InformedSet {
 public:
  InformedSet() = default;
  explicit InformedSet(NodeId n) { assign(n); }

  /// Resizes to n bits, all clear.
  void assign(NodeId n);

  /// Clears every bit, keeping the size.
  void clear();

  [[nodiscard]] NodeId size() const noexcept { return size_; }

  [[nodiscard]] bool test(NodeId v) const noexcept {
    return (words_[v >> 6] >> (v & 63u)) & 1u;
  }

  void set(NodeId v) noexcept { words_[v >> 6] |= std::uint64_t{1} << (v & 63u); }

  void reset(NodeId v) noexcept { words_[v >> 6] &= ~(std::uint64_t{1} << (v & 63u)); }

  /// Sets bit v; returns true iff it was previously clear.
  bool test_and_set(NodeId v) noexcept {
    std::uint64_t& word = words_[v >> 6];
    const std::uint64_t mask = std::uint64_t{1} << (v & 63u);
    const bool was_clear = (word & mask) == 0;
    word |= mask;
    return was_clear;
  }

  /// Number of set bits (popcount over the words).
  [[nodiscard]] NodeId count() const noexcept;

  /// True iff every set bit of *this is also set in `other`. Word-wise, so
  /// checking an n-node subset invariant costs n/64 ANDs, not n loads.
  /// Precondition: same size.
  [[nodiscard]] bool is_subset_of(const InformedSet& other) const noexcept;

  /// The backing words, low bit = node 0. words()[i] covers nodes
  /// [64 i, 64 i + 64); trailing bits past size() are zero.
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept { return words_; }

  /// Mutable word access for the engines' branchless inner loops (OR a
  /// shifted 0/1 exchange mask into the target's word instead of branching
  /// on it). Callers must not set bits at or past size().
  [[nodiscard]] std::uint64_t* words_data() noexcept { return words_.data(); }

  /// Calls f(v) for every set bit in ascending order (word scan via
  /// countr_zero — the engines' iterate-informed primitive).
  template <class F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      std::uint64_t word = words_[i];
      while (word != 0) {
        const auto bit = static_cast<unsigned>(std::countr_zero(word));
        f(static_cast<NodeId>((i << 6) + bit));
        word &= word - 1;
      }
    }
  }

  /// The engines' commit primitive: ORs `pending` into this set, calling
  /// f(v) in ascending order for every bit that was newly contributed (set
  /// in pending, clear here), zeroing pending's words as it goes. Returns
  /// the number of new bits. Preconditions: same size; pending may overlap
  /// this set (overlapping bits are skipped and still cleared).
  template <class F>
  NodeId absorb_drain(InformedSet& pending, F&& on_new) {
    NodeId added = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      std::uint64_t incoming = pending.words_[i];
      if (incoming == 0) continue;
      pending.words_[i] = 0;
      std::uint64_t fresh = incoming & ~words_[i];
      words_[i] |= incoming;
      added += static_cast<NodeId>(std::popcount(fresh));
      while (fresh != 0) {
        const auto bit = static_cast<unsigned>(std::countr_zero(fresh));
        on_new(static_cast<NodeId>((i << 6) + bit));
        fresh &= fresh - 1;
      }
    }
    return added;
  }

 private:
  std::vector<std::uint64_t> words_;
  NodeId size_ = 0;
};

}  // namespace rumor::core
