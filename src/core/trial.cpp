#include "core/trial.hpp"

#include <stdexcept>
#include <utility>

#include "core/async.hpp"
#include "core/aux_process.hpp"
#include "core/batch_sync.hpp"
#include "core/quasirandom.hpp"
#include "core/sync.hpp"

namespace rumor::core {

TrialOutcome run_trial(EngineKind kind, const Graph& g, NodeId source, rng::Engine& eng,
                       const TrialOptions& options, const TrialExtras& extras) {
  TrialOutcome out;
  switch (kind) {
    case EngineKind::kSync: {
      const SyncOptions engine_options{options};
      auto result = run_sync(g, source, eng, engine_options);
      out.value = static_cast<double>(result.rounds);
      out.ticks = result.rounds;
      out.completed = result.completed;
      out.informed_count_history = std::move(result.informed_count_history);
      return out;
    }
    case EngineKind::kAsync: {
      AsyncOptions engine_options{options};
      engine_options.view = extras.view;
      auto result = run_async(g, source, eng, engine_options);
      out.value = result.time;
      out.ticks = result.steps;
      out.completed = result.completed;
      out.informed_time = std::move(result.informed_time);
      return out;
    }
    case EngineKind::kAux: {
      AuxOptions engine_options{options};
      engine_options.kind = extras.aux;
      auto result = run_aux(g, source, eng, engine_options);
      out.value = static_cast<double>(result.rounds);
      out.ticks = result.rounds;
      out.completed = result.completed;
      out.informed_count_history = std::move(result.informed_count_history);
      return out;
    }
    case EngineKind::kQuasirandom: {
      const QuasirandomOptions engine_options{options};
      auto result = run_quasirandom(g, source, eng, engine_options);
      out.value = static_cast<double>(result.rounds);
      out.ticks = result.rounds;
      out.completed = result.completed;
      out.informed_count_history = std::move(result.informed_count_history);
      return out;
    }
    case EngineKind::kBatchSync: {
      // The single-trial face of the batch engine: one lane, so the lane
      // loop degenerates to the batch execution order at width 1. Fan-out
      // belongs to schedulers via run_batch_sync directly.
      BatchSyncOptions engine_options{options};
      engine_options.lanes = 1;
      const auto result = run_batch_sync(g, source, eng, engine_options);
      out.value = static_cast<double>(result.rounds[0]);
      out.ticks = result.rounds[0];
      out.completed = result.completed;
      return out;
    }
  }
  throw std::runtime_error("run_trial: unknown engine kind");
}

}  // namespace rumor::core
