// Umbrella header for the rumor-spreading library.
//
// Pulls in the full public API: graphs and generators, the synchronous and
// asynchronous protocol engines, the paper's auxiliary processes and
// couplings, and the Monte-Carlo measurement harness lives in sim/harness.hpp
// (not included here to keep core free of threading concerns).
#pragma once

#include "core/async.hpp"              // IWYU pragma: export
#include "core/async_discretized.hpp"  // IWYU pragma: export
#include "core/aux_process.hpp"        // IWYU pragma: export
#include "core/averaging.hpp"          // IWYU pragma: export
#include "core/batch_sync.hpp"         // IWYU pragma: export
#include "core/coupling_blocks.hpp"    // IWYU pragma: export
#include "core/coupling_pull.hpp"      // IWYU pragma: export
#include "core/event_queue.hpp"        // IWYU pragma: export
#include "core/informed_set.hpp"       // IWYU pragma: export
#include "core/informing_forest.hpp"   // IWYU pragma: export
#include "core/coupling_push.hpp"      // IWYU pragma: export
#include "core/protocol.hpp"           // IWYU pragma: export
#include "core/quasirandom.hpp"        // IWYU pragma: export
#include "core/sync.hpp"               // IWYU pragma: export
#include "core/trajectory.hpp"         // IWYU pragma: export
#include "core/trial.hpp"              // IWYU pragma: export
#include "graph/expansion.hpp"         // IWYU pragma: export
#include "graph/generators.hpp"        // IWYU pragma: export
#include "graph/graph.hpp"             // IWYU pragma: export
#include "graph/io.hpp"                // IWYU pragma: export
#include "graph/properties.hpp"        // IWYU pragma: export
