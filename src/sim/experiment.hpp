// rumor/sim: the unified experiment registry behind the rumor_bench driver.
//
// Every paper experiment (E1..E15) registers itself here by name. The
// driver binary selects experiments from the command line, applies
// --trials/--seed/--threads/--scale overrides, and renders each result
// either as the familiar aligned table (human mode) or as JSON (--json) so
// that perf-trajectory tooling has one stable machine-readable producer.
//
// An experiment is a function from ExperimentContext to a Json object of
// the shape
//   { "rows":  [ {column: value, ...}, ... ],   // the result table
//     "stats": { name: value, ... },            // headline scalars (fits...)
//     "notes": "one-paragraph interpretation" }
// The driver adds "experiment" and "params" and renders "rows" as the
// aligned table, so entries describe *what* they measured exactly once.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/harness.hpp"

namespace rumor::sim {

/// Minimal JSON document: ordered objects, arrays, numbers, strings,
/// booleans, null. Supports both serialization (the bench driver's output)
/// and parsing (validation and future BENCH_*.json consumers). Not a
/// general-purpose JSON library — just enough for experiment reports.
/// Numbers are IEEE doubles: integers above 2^53 lose precision, so the
/// CLI rejects --seed/--trials values beyond that.
class Json {
 public:
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() noexcept : type_(Type::kNull) {}
  Json(bool b) noexcept : type_(Type::kBool), bool_(b) {}                    // NOLINT(google-explicit-constructor)
  Json(double v) noexcept : type_(Type::kNumber), number_(v) {}              // NOLINT(google-explicit-constructor)
  Json(int v) noexcept : Json(static_cast<double>(v)) {}                     // NOLINT(google-explicit-constructor)
  Json(unsigned v) noexcept : Json(static_cast<double>(v)) {}                // NOLINT(google-explicit-constructor)
  Json(std::uint64_t v) noexcept : Json(static_cast<double>(v)) {}           // NOLINT(google-explicit-constructor)
  Json(std::int64_t v) noexcept : Json(static_cast<double>(v)) {}            // NOLINT(google-explicit-constructor)
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}       // NOLINT(google-explicit-constructor)
  Json(const char* s) : type_(Type::kString), string_(s) {}                  // NOLINT(google-explicit-constructor)

  [[nodiscard]] static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  [[nodiscard]] static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_object() const noexcept { return type_ == Type::kObject; }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_number() const noexcept { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return type_ == Type::kString; }

  [[nodiscard]] bool as_bool() const noexcept { return bool_; }
  [[nodiscard]] double as_number() const noexcept { return number_; }
  [[nodiscard]] const std::string& as_string() const noexcept { return string_; }

  /// Array append. Precondition: is_array().
  void push_back(Json v);
  /// Object insert-or-assign, preserving first-insertion order.
  /// Precondition: is_object(). Returns *this for chaining.
  Json& set(const std::string& key, Json value);
  /// Object lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;

  /// Array elements / object entries (empty for scalar types).
  [[nodiscard]] const std::vector<Json>& elements() const noexcept { return elements_; }
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& entries() const noexcept {
    return entries_;
  }
  /// Mutable entries view, so callers can move values out of a document
  /// they are consuming instead of deep-copying row arrays.
  [[nodiscard]] std::vector<std::pair<std::string, Json>>& mutable_entries() noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return type_ == Type::kObject ? entries_.size() : elements_.size();
  }

  /// Serializes; indent < 0 renders compact single-line JSON.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parses a complete JSON document; nullopt on any syntax error or
  /// trailing garbage.
  [[nodiscard]] static std::optional<Json> parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> elements_;                         // kArray
  std::vector<std::pair<std::string, Json>> entries_;  // kObject
};

/// CLI-level knobs shared by every experiment. Zero means "use the
/// experiment's registered default".
struct ExperimentOptions {
  std::uint64_t trials = 0;
  std::uint64_t seed = 0;
  unsigned threads = 0;
  /// Workload multiplier (the former RUMOR_BENCH_SCALE): scales trial
  /// counts and sweep ranges. Clamped to [1, 64].
  unsigned scale = 1;
};

/// Per-run view handed to an experiment body.
class ExperimentContext {
 public:
  explicit ExperimentContext(ExperimentOptions opts) : opts_(opts) {}

  [[nodiscard]] const ExperimentOptions& options() const noexcept { return opts_; }
  [[nodiscard]] unsigned scale() const noexcept { return opts_.scale; }

  /// Resolves the trial count: the --trials override verbatim, otherwise
  /// the experiment default grown by the scale factor.
  [[nodiscard]] std::uint64_t trials(std::uint64_t experiment_default) const noexcept {
    return opts_.trials != 0 ? opts_.trials : experiment_default * opts_.scale;
  }

  /// Resolves the root seed: the --seed override, else the default.
  [[nodiscard]] std::uint64_t seed(std::uint64_t experiment_default) const noexcept {
    return opts_.seed != 0 ? opts_.seed : experiment_default;
  }

  /// Assembles a harness TrialConfig from the resolved knobs.
  [[nodiscard]] TrialConfig trial_config(std::uint64_t default_trials,
                                         std::uint64_t default_seed) const noexcept {
    TrialConfig config;
    config.trials = trials(default_trials);
    config.seed = seed(default_seed);
    config.threads = opts_.threads;
    return config;
  }

 private:
  ExperimentOptions opts_;
};

using ExperimentFn = std::function<Json(const ExperimentContext&)>;

/// One registered experiment.
struct ExperimentInfo {
  std::string name;      // stable CLI id, e.g. "e3_star"
  std::string title;     // one-line banner
  std::string claim;     // the paper-expected shape being checked
  std::string defaults;  // human summary of default params, e.g. "trials=100 seed=42"
  ExperimentFn run;
};

/// Name-keyed singleton registry; entries self-register at static
/// initialization via ExperimentRegistrar.
class ExperimentRegistry {
 public:
  [[nodiscard]] static ExperimentRegistry& instance();

  /// Registers an experiment; aborts on duplicate names (a programming
  /// error in the bench tree, best caught loudly at startup).
  void add(ExperimentInfo info);

  [[nodiscard]] const ExperimentInfo* find(std::string_view name) const noexcept;
  /// All experiments sorted by name (natural order: e1 < e2 < ... < e15).
  [[nodiscard]] std::vector<const ExperimentInfo*> all() const;

 private:
  std::vector<ExperimentInfo> experiments_;
};

/// Static-initialization hook: `static ExperimentRegistrar r{{...}};`
struct ExperimentRegistrar {
  explicit ExperimentRegistrar(ExperimentInfo info) {
    ExperimentRegistry::instance().add(std::move(info));
  }
};

/// Version of the JSON report layout rumor_bench emits (experiment reports
/// and campaign reports alike) and of the campaign checkpoint snapshot's
/// report-facing fields, stamped top-level as "schema_version". Bump it on
/// renames/removals/semantic changes of existing keys; purely additive keys
/// keep the number (consumers must ignore keys they do not know). The
/// Python tools under tools/ warn on versions newer than they understand;
/// documents without the key predate versioning and are read as version 1.
/// Compatibility policy: bench/README.md, "Report schema versioning".
inline constexpr std::uint64_t kReportSchemaVersion = 1;

/// Runs one experiment end-to-end and returns the full report object:
/// { "experiment": name, "schema_version": ..., "params": {...},
///   "rows": [...], ... }.
[[nodiscard]] Json run_experiment(const ExperimentInfo& info, const ExperimentOptions& opts);

/// The binary's build provenance (obs/build_info.hpp) as the JSON object
/// every report embeds under "build_info": git sha, compiler + version,
/// build type, flags. Constant for a given binary, so same-binary report
/// comparisons (the CI byte-diff contracts) are unaffected.
[[nodiscard]] Json build_info_json();

/// Durably writes `contents` to `path`: a sibling temp file in the
/// destination's directory is written, flushed, fsync'd, atomically renamed
/// over `path`, and the parent directory is fsync'd so the rename itself
/// survives a crash. The temp file is unlinked on every error path. On
/// failure returns false with a description in `error` (no stream prefix —
/// callers add their program name). Used for --out reports and for campaign
/// checkpoints, where a torn or vanished file would silently lose progress.
[[nodiscard]] bool write_file_atomic(const std::string& path, const std::string& contents,
                                     std::string& error);

/// The rumor_bench command line:
///   rumor_bench --list [--json]
///   rumor_bench [--json] [--out FILE] [--trials N] [--seed S] [--threads T]
///               [--scale K] (--all | <name>...)
///   rumor_bench --campaign spec.json [--json] [--out FILE] [--threads T]
///               [--batch B]
/// Returns the process exit code. Split from main() so the test suite can
/// drive the CLI in-process. --out writes the report through a temp file +
/// rename, so a crashed or interrupted run never leaves a truncated report.
int run_bench_cli(int argc, const char* const* argv, std::ostream& out, std::ostream& err);

}  // namespace rumor::sim
