#include "sim/table.hpp"

#include <algorithm>
#include <cassert>
#include <iostream>

namespace rumor::sim {

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print() const { print(std::cout); }

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> width(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << "  ";
      out << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c == 0 ? 0 : 2);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
}

}  // namespace rumor::sim
