#include "sim/harness.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace rumor::sim {

std::vector<double> run_trials(const TrialConfig& config, const TrialFn& fn) {
  assert(config.trials > 0);
  std::vector<double> results(config.trials, 0.0);

  unsigned workers = config.threads != 0 ? config.threads : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  workers = static_cast<unsigned>(
      std::min<std::uint64_t>(workers, config.trials));

  if (workers == 1) {
    for (std::uint64_t t = 0; t < config.trials; ++t) {
      rng::Engine eng = rng::derive_stream(config.seed, t);
      results[t] = fn(t, eng);
    }
    return results;
  }

  std::atomic<std::uint64_t> next{0};
  // First exception thrown by any trial, rethrown on the caller's thread
  // after the pool drains (letting it escape a worker would terminate).
  std::exception_ptr error;
  std::mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      const std::uint64_t t = next.fetch_add(1, std::memory_order_relaxed);
      if (t >= config.trials) return;
      try {
        rng::Engine eng = rng::derive_stream(config.seed, t);
        results[t] = fn(t, eng);
      } catch (...) {
        const std::scoped_lock lock(error_mutex);
        if (!error) error = std::current_exception();
        next.store(config.trials, std::memory_order_relaxed);  // drain fast
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  if (error) std::rethrow_exception(error);
  return results;
}

SpreadingTimeSample::SpreadingTimeSample(std::vector<double> samples)
    : samples_(std::move(samples)) {
  assert(!samples_.empty());
  std::sort(samples_.begin(), samples_.end());
  for (double x : samples_) moments_.add(x);
}

double SpreadingTimeSample::median() const { return quantile(0.5); }

double SpreadingTimeSample::quantile(double p) const {
  return stats::quantile_sorted(samples_, p);
}

stats::BootstrapInterval SpreadingTimeSample::mean_ci(double confidence, std::size_t resamples,
                                                      std::uint64_t seed) const {
  return stats::bootstrap_mean_ci(samples_, confidence, resamples, seed);
}

// The measure_* wrappers all route through core::run_trial — the same
// dispatch the campaign scheduler uses — so an engine keeps exactly one
// option-assembly path. Each keeps its historical engine-specific error
// text (the cap name differs per engine).
namespace {

SpreadingTimeSample measure_trial(core::EngineKind kind, const Graph& g, NodeId source,
                                  const TrialConfig& config, const core::TrialOptions& options,
                                  const core::TrialExtras& extras, const char* cap_error) {
  auto samples = run_trials(config, [&](std::uint64_t, rng::Engine& eng) {
    const auto outcome = core::run_trial(kind, g, source, eng, options, extras);
    if (!outcome.completed) throw std::runtime_error(cap_error);
    return outcome.value;
  });
  return SpreadingTimeSample(std::move(samples));
}

}  // namespace

SpreadingTimeSample measure_sync(const Graph& g, NodeId source, core::Mode mode,
                                 const TrialConfig& config) {
  core::TrialOptions options;
  options.mode = mode;
  return measure_trial(core::EngineKind::kSync, g, source, config, options, {},
                       "run_sync: execution hit the round cap (disconnected graph?)");
}

SpreadingTimeSample measure_async(const Graph& g, NodeId source, core::Mode mode,
                                  const TrialConfig& config, core::AsyncView view) {
  core::TrialOptions options;
  options.mode = mode;
  core::TrialExtras extras;
  extras.view = view;
  return measure_trial(core::EngineKind::kAsync, g, source, config, options, extras,
                       "run_async: execution hit the step cap (disconnected graph?)");
}

SpreadingTimeSample measure_aux(const Graph& g, NodeId source, core::AuxKind kind,
                                const TrialConfig& config) {
  core::TrialOptions options;
  core::TrialExtras extras;
  extras.aux = kind;
  return measure_trial(core::EngineKind::kAux, g, source, config, options, extras,
                       "run_aux: execution hit the round cap (disconnected graph?)");
}

}  // namespace rumor::sim
