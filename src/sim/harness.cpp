#include "sim/harness.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace rumor::sim {

std::vector<double> run_trials(const TrialConfig& config, const TrialFn& fn) {
  assert(config.trials > 0);
  std::vector<double> results(config.trials, 0.0);

  unsigned workers = config.threads != 0 ? config.threads : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  workers = static_cast<unsigned>(
      std::min<std::uint64_t>(workers, config.trials));

  if (workers == 1) {
    for (std::uint64_t t = 0; t < config.trials; ++t) {
      rng::Engine eng = rng::derive_stream(config.seed, t);
      results[t] = fn(t, eng);
    }
    return results;
  }

  std::atomic<std::uint64_t> next{0};
  // First exception thrown by any trial, rethrown on the caller's thread
  // after the pool drains (letting it escape a worker would terminate).
  std::exception_ptr error;
  std::mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      const std::uint64_t t = next.fetch_add(1, std::memory_order_relaxed);
      if (t >= config.trials) return;
      try {
        rng::Engine eng = rng::derive_stream(config.seed, t);
        results[t] = fn(t, eng);
      } catch (...) {
        const std::scoped_lock lock(error_mutex);
        if (!error) error = std::current_exception();
        next.store(config.trials, std::memory_order_relaxed);  // drain fast
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  if (error) std::rethrow_exception(error);
  return results;
}

SpreadingTimeSample::SpreadingTimeSample(std::vector<double> samples)
    : samples_(std::move(samples)) {
  assert(!samples_.empty());
  std::sort(samples_.begin(), samples_.end());
  for (double x : samples_) moments_.add(x);
}

double SpreadingTimeSample::median() const { return quantile(0.5); }

double SpreadingTimeSample::quantile(double p) const {
  return stats::quantile_sorted(samples_, p);
}

stats::BootstrapInterval SpreadingTimeSample::mean_ci(double confidence, std::size_t resamples,
                                                      std::uint64_t seed) const {
  return stats::bootstrap_mean_ci(samples_, confidence, resamples, seed);
}

SpreadingTimeSample measure_sync(const Graph& g, NodeId source, core::Mode mode,
                                 const TrialConfig& config) {
  core::SyncOptions options;
  options.mode = mode;
  auto samples = run_trials(config, [&](std::uint64_t, rng::Engine& eng) {
    const auto result = core::run_sync(g, source, eng, options);
    if (!result.completed) {
      throw std::runtime_error("run_sync: execution hit the round cap (disconnected graph?)");
    }
    return static_cast<double>(result.rounds);
  });
  return SpreadingTimeSample(std::move(samples));
}

SpreadingTimeSample measure_async(const Graph& g, NodeId source, core::Mode mode,
                                  const TrialConfig& config, core::AsyncView view) {
  core::AsyncOptions options;
  options.mode = mode;
  options.view = view;
  auto samples = run_trials(config, [&](std::uint64_t, rng::Engine& eng) {
    const auto result = core::run_async(g, source, eng, options);
    if (!result.completed) {
      throw std::runtime_error("run_async: execution hit the step cap (disconnected graph?)");
    }
    return result.time;
  });
  return SpreadingTimeSample(std::move(samples));
}

SpreadingTimeSample measure_aux(const Graph& g, NodeId source, core::AuxKind kind,
                                const TrialConfig& config) {
  core::AuxOptions options;
  options.kind = kind;
  auto samples = run_trials(config, [&](std::uint64_t, rng::Engine& eng) {
    const auto result = core::run_aux(g, source, eng, options);
    if (!result.completed) {
      throw std::runtime_error("run_aux: execution hit the round cap (disconnected graph?)");
    }
    return static_cast<double>(result.rounds);
  });
  return SpreadingTimeSample(std::move(samples));
}

}  // namespace rumor::sim
