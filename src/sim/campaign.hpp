// rumor/sim: batched multi-graph trial scheduling with streaming statistics.
//
// The paper's claims are sweeps: spreading-time distributions across graph
// families, sizes, protocol modes, and sources. run_trials (harness.hpp)
// parallelizes *within* one configuration and materializes every sample, so
// a sweep over thousands of configurations drains one thread pool after
// another and holds all samples in memory. A campaign instead schedules the
// whole configuration set as one shared work queue of fixed-size *trial
// blocks*, keeping every core busy across configuration boundaries, and
// reduces each configuration to a constant-size stats::StreamingSummary as
// its blocks complete — graphs and partials are freed the moment their last
// block finishes, so memory is bounded by the number of in-flight
// configurations, not by the campaign size.
//
// Determinism contract (the harness's guarantee, extended): trial t of a
// configuration with root seed s always runs on rng::derive_stream(s, t),
// so per-trial results are bit-identical regardless of thread count, block
// size, or interleaving. Block partials are merged in block-index order, so
// the full summary is additionally bit-identical across thread counts at a
// fixed block size; across block sizes, moments/quantiles agree to sketch
// tolerance, and reservoir *contents* (bottom-k priority sampling) are
// bit-identical always. Verified in tests/test_campaign.cpp.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/async.hpp"
#include "core/aux_process.hpp"
#include "core/batch_sync.hpp"
#include "core/protocol.hpp"
#include "core/sync.hpp"
#include "core/trial.hpp"
#include "dynamics/churn.hpp"
#include "graph/graph.hpp"
#include "stats/curves.hpp"
#include "stats/streaming.hpp"

namespace rumor::obs {
class Telemetry;  // obs/telemetry.hpp
}

namespace rumor::sim {

class Json;  // experiment.hpp

/// Which protocol engine a configuration runs. The enum (and its names)
/// moved to core/trial.hpp with the unified run_trial dispatch; the
/// aliases keep the campaign's historical spelling working.
using EngineKind = core::EngineKind;
using core::engine_name;

/// How a configuration picks its source vertex.
///
/// kFixed measures from CampaignConfig::source. kRace estimates the
/// *worst-case* source (the paper's "for any vertex u") with the two-stage
/// racing scheme of sim/adversary.hpp — screen every candidate cheaply,
/// refine the leaders — except that both passes are scheduled as trial
/// blocks on the campaign's shared queue: racing shares workers with
/// ordinary cells, and the raced source is bit-deterministic across thread
/// counts because every per-candidate partial merges in slot order.
enum class SourcePolicy : std::uint8_t { kFixed, kRace };

[[nodiscard]] constexpr const char* source_policy_name(SourcePolicy p) noexcept {
  return p == SourcePolicy::kRace ? "race" : "fixed";
}

/// Tuning for SourcePolicy::kRace (mirrors WorstSourceOptions, which
/// sim/adversary.hpp now implements on top of this).
struct SourceRaceOptions {
  /// Trials per candidate in the screening pass.
  std::uint64_t screen_trials = 10;
  /// Candidates kept for the refinement pass.
  std::uint32_t finalists = 4;
  /// Trials per finalist in the refinement pass; 0 = the config's `trials`.
  std::uint64_t final_trials = 0;
  /// Screen at most this many candidate sources, stratified by degree
  /// (always including min- and max-degree nodes). 0 = screen all nodes.
  std::uint32_t max_candidates = 64;
};

/// A graph described by name, for campaigns built from a JSON spec. The
/// generator runs lazily on a worker thread when the configuration's first
/// block is scheduled, from an engine derived from `graph_seed` — never
/// from a shared generator stream — so construction is deterministic and
/// campaigns of thousands of graphs never hold more than the in-flight few.
struct GraphSpec {
  std::string family;        // generator name (or "file"), see build_graph()
  /// family == "file": path of a packed graph store (graph/graph_store.hpp)
  /// opened via mmap instead of generated; n/params are ignored (the store
  /// knows its own shape) and the scheduler shares one mapping across every
  /// config naming the same path.
  std::string path;
  std::uint64_t n = 0;       // requested node count (families round as needed)
  double p = 0.0;            // erdos_renyi edge probability / watts_strogatz rewire
  std::uint32_t degree = 0;  // random_regular d / watts_strogatz k / pa edges_per_node
  double beta = 2.5;         // chung_lu exponent
  double average_degree = 8.0;  // chung_lu average degree
  std::uint64_t graph_seed = 0;  // 0 = derive from the config seed
};

/// Builds the graph a spec describes (always connected: random families are
/// reduced to their largest component or generated with connectivity
/// retries). Throws std::runtime_error on an unknown family or bad sizes.
/// `fallback_seed` seeds random families when spec.graph_seed == 0.
[[nodiscard]] graph::Graph build_graph(const GraphSpec& spec, std::uint64_t fallback_seed);

/// Spread-telemetry request for one configuration (the campaign face of
/// core::SpreadProbe + stats::CurveAccumulator). Off by default: with
/// enabled == false the trial path passes no probe and campaign output is
/// byte-identical to a build that predates the feature. Curves require a
/// fixed source (racing interleaves two trial populations whose curves
/// would not be comparable) and a sync/async/quasirandom engine (the aux
/// processes have no contact structure to classify); parse_campaign_spec
/// rejects the invalid combinations with an error naming the key.
struct CurveSpec {
  bool enabled = false;
  /// Grid length: point k is round k (sync/quasirandom) or time
  /// k * time_bucket (async). Trials past the grid still count via the
  /// accumulator's absorbing-extension rule and max_len.
  std::uint32_t points = 64;
  /// Time-grid bucket width for async engines; ignored by round grids.
  double time_bucket = 1.0;
};

/// One (graph, protocol, trial-count) cell of a campaign.
struct CampaignConfig {
  std::string id;   // stable report id; auto-derived from the spec if empty
  GraphSpec graph;  // used when `prebuilt` is empty
  /// Experiments migrating onto the campaign path hand in graphs they
  /// already built; shared_ptr because several configs (e.g. sync and async
  /// over one topology) typically share a graph.
  std::shared_ptr<const graph::Graph> prebuilt;
  EngineKind engine = EngineKind::kSync;
  core::Mode mode = core::Mode::kPushPull;
  core::AsyncView view = core::AsyncView::kGlobalClock;
  core::AuxKind aux = core::AuxKind::kPpx;
  /// kBatchSync only: trials per lane batch (1..core::kMaxBatchLanes).
  /// Also this configuration's *block size* — the scheduler pins one trial
  /// block to one lane batch so batches stay slot-addressable for
  /// checkpoints and shards (see effective_block_size).
  std::uint32_t lanes = core::kMaxBatchLanes;
  /// Per-contact loss probability (the e11 fault extension); thins sync and
  /// async contacts identically. Ignored by aux/quasirandom engines.
  double message_loss = 0.0;
  graph::NodeId source = 0;  // measured source under SourcePolicy::kFixed
  SourcePolicy source_policy = SourcePolicy::kFixed;
  SourceRaceOptions race;  // used when source_policy == kRace
  /// Temporal/weighted dynamics (dynamics/churn.hpp): a churn model applied
  /// between rounds and/or per-edge contact weights. A static spec (the
  /// default) leaves the engines' original paths — and their randomness
  /// consumption — untouched. Requires a sync or async engine; the async
  /// engine must use the global-clock view. Composes with every source
  /// policy, including kRace. dynamics.seed == 0 derives from `seed`.
  dynamics::DynamicsSpec dynamics;
  std::uint64_t trials = 200;
  std::uint64_t seed = 1;  // trial t runs on derive_stream(seed, t)
  /// T_q tail probability reported as hp_time; 0 means 1/trials (the
  /// harness's documented convention for large n).
  double hp_q = 0.0;
  /// Per-config reservoir override (0 = CampaignOptions default). Configs
  /// needing exact samples downstream (e.g. KS tests) set this >= trials.
  std::size_t reservoir_capacity = 0;
  /// Spread telemetry: per-trial informed-count curves and contact
  /// classification, reduced like the summary (per-block partials merged in
  /// slot order, so bit-identical across thread counts and resumable).
  CurveSpec curves;
};

struct CampaignOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  unsigned threads = 0;
  /// Trials per scheduled block. Small blocks interleave configurations
  /// more finely (better load balance); large blocks amortize scheduling.
  /// Also the checkpoint/shard granularity: snapshots address progress by
  /// (config, block slot), so resume and merge require the same block size.
  std::uint64_t block_size = 32;
  std::size_t sketch_capacity = 256;
  std::size_t reservoir_capacity = 512;

  // Checkpoint / shard / resume knobs (sim/checkpoint.hpp). Only honored by
  // run_campaign_resumable; plain run_campaign ignores them.
  /// This run's 1-based shard under `shard_count`-way block partitioning.
  std::uint32_t shard_index = 1;
  /// Total shards; 1 = unsharded (every block owned by this run).
  std::uint32_t shard_count = 1;
  /// When non-empty, write a crash-safe snapshot here every
  /// `checkpoint_every` completed blocks and once at the end.
  std::string checkpoint_file;
  std::uint64_t checkpoint_every = 16;
  /// Testing/ops hook: stop scheduling after this many blocks completed by
  /// this process (0 = run to completion). The stopped campaign's outcome
  /// has complete == false; resume from the checkpoint to continue.
  std::uint64_t stop_after_blocks = 0;

  /// Observability sink (obs/telemetry.hpp), borrowed for the run; null (the
  /// default) disables all telemetry. Strictly observational: the scheduler
  /// only ever *feeds* it, so results are byte-identical with or without a
  /// sink attached (tested in tests/test_obs.cpp).
  obs::Telemetry* telemetry = nullptr;
  /// Name shown in progress lines and stamped into the trace. Empty falls
  /// back to the campaign name the scheduler was invoked with ("campaign"
  /// for plain run_campaign, which has no name parameter).
  std::string telemetry_label;
};

/// The trial-block size one configuration actually schedules under the
/// campaign-wide `block_size`. Batch-lane configurations override it with
/// their lane count: a block IS one lane batch (a deterministic function of
/// (seed, first trial index)), so slots keep addressing the same trials in
/// every scheduler, checkpoint loader, and snapshot merger — all three
/// compute slot counts through this one helper.
[[nodiscard]] inline std::uint64_t effective_block_size(const CampaignConfig& cfg,
                                                        std::uint64_t block_size) noexcept {
  if (cfg.engine == EngineKind::kBatchSync) return cfg.lanes;
  return block_size == 0 ? 1 : block_size;
}

/// One configuration's reduced result: identification plus the streaming
/// summary. No per-trial vectors.
///
/// Under SourcePolicy::kRace the summary is the refined measurement of the
/// *worst* source found; `source` names it and the best finalist is kept
/// alongside so source-sensitivity reports (e13) can quote the spread.
struct CampaignResult {
  std::string id;
  std::string graph_name;    // the built graph's own name
  std::uint64_t n = 0;       // actual node count of the built graph
  std::string engine;        // "sync" / "async" / "aux" / "quasirandom" / "batch_sync"
  std::string mode;          // "push" / "pull" / "push-pull"
  std::uint32_t lanes = 0;   // batch_sync: lane-batch width (0 otherwise)
  std::uint64_t trials = 0;  // refine trials per finalist under kRace
  std::uint64_t seed = 0;
  double hp_q = 0.0;         // resolved (never 0)
  SourcePolicy source_policy = SourcePolicy::kFixed;
  graph::NodeId source = 0;       // fixed source, or the raced worst source
  graph::NodeId best_source = 0;  // kRace: best finalist
  double best_mean = 0.0;         // kRace: its refined mean
  dynamics::DynamicsSpec dynamics;  // resolved copy (seed never 0 when active)
  stats::StreamingSummary summary;
  /// Spread telemetry (CurveSpec; only meaningful when has_curves). The
  /// accumulator's grid is rounds for sync/quasirandom engines and
  /// time buckets of curves_spec.time_bucket for async.
  bool has_curves = false;
  CurveSpec curves_spec;
  stats::CurveAccumulator curves;
  stats::ContactTotals contacts;
};

/// Runs every configuration's trials over one shared block queue. Results
/// are ordered like `configs`. Race configurations enqueue their screen and
/// refine passes onto the same queue as they become ready, so adversary
/// searches interleave with ordinary cells instead of serializing behind
/// them. Throws the first trial/build exception after draining the pool
/// (mirroring run_trials).
[[nodiscard]] std::vector<CampaignResult> run_campaign(const std::vector<CampaignConfig>& configs,
                                                       const CampaignOptions& options = {});

/// The identification/metadata half of a CampaignResult, exactly as
/// run_campaign initializes it before any trial runs (id, engine, mode,
/// seed, resolved trials/hp_q/dynamics). Shared with the checkpoint/merge
/// layer (sim/checkpoint.hpp) so merged and resumed reports are built from
/// skeletons identical to the scheduler's.
[[nodiscard]] CampaignResult campaign_result_skeleton(const CampaignConfig& cfg,
                                                      std::size_t index);

/// Parses a campaign spec document into configurations. Grammar (all
/// `defaults` keys optional, every config key overridable per entry):
///
///   { "name": "sweep",                     // optional campaign id prefix
///     "defaults": { "trials": 200, "seed": 1, "engine": "sync",
///                   "mode": "push-pull", "source": 0, "hp_q": 0 },
///     "configs": [
///       { "graph": "star", "n": [256, 1024, 4096] },   // arrays expand
///       { "graph": "random_regular", "n": 512, "degree": 6,
///         "engine": ["sync", "async"], "graph_seed": 42 },
///       { "graph": {"kind": "file", "path": "web.rgs"} },  // packed store
///       { "graph": {"kind": "chung_lu", "beta": 2.1,       // object form
///                   "average_degree": 6}, "n": 10000 },
///       { "graph": "star", "n": 512, "source": "race",  // worst-source race
///         "race": { "screen_trials": 10, "finalists": 4 } },
///       { "graph": "hypercube", "n": 1024,               // churn + weights
///         "dynamics": { "churn": "markov", "birth": 0.05, "death": 0.05,
///                       "weights": "heavy_tailed", "weight_alpha": 1.5 } },
///       { "graph": "hypercube", "n": 1024,               // spread telemetry
///         "curves": { "points": 96, "time_bucket": 0.25 } },
///       { "graph": "hypercube", "n": 4096,               // batch lanes
///         "engine": { "kind": "batch_sync", "lanes": 64 } } ] }
///
/// "n", "engine", and "mode" accept scalars or arrays; array-valued keys
/// expand to their cross product, so a compact spec can describe thousands
/// of configurations. "graph" is a family name, or an object
/// {"kind": <family>, ...family params...} — where kind "file" instead
/// takes "path" (a packed graph store; "n" and generator params are then
/// rejected, the store knows its own shape). "engine" entries are engine
/// names, or the object {"kind": "batch_sync", "lanes": 1..64} for the
/// lane-parallel sync engine (distributional contract, docs/ENGINES.md;
/// incompatible with "race", "dynamics", and "curves"). "source" is a node
/// id (fixed policy) or the string
/// "race" (worst-source racing, tuned by the nested "race" block — or the
/// equivalent flat keys "screen_trials" / "finalists" / "final_trials" /
/// "max_candidates"). "dynamics" configures churn overlays and weighted
/// contact rates. A "curves" block ({"points", "time_bucket"}) enables
/// spread telemetry — informed-count curves, phase decomposition, and
/// contact accounting under the report's stats.curves — and requires a
/// sync/async/quasirandom engine with a fixed source. Unknown keys inside
/// the nested blocks are rejected with an error naming the key. See
/// bench/README.md for the full reference.
struct CampaignSpec {
  std::string name;  // defaults to "campaign"
  std::vector<CampaignConfig> configs;
  std::string error;  // non-empty = parse failure (other fields unspecified)
};

[[nodiscard]] CampaignSpec parse_campaign_spec(const Json& doc);

/// Renders one result as a report in the established experiment schema:
/// { "experiment": "<campaign>/<id>", "params": {...}, "rows": [one row of
/// summary statistics], "stats": {...}, "notes": ... }.
[[nodiscard]] Json campaign_report(const CampaignResult& result, const std::string& campaign_name);

}  // namespace rumor::sim
