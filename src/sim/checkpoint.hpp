// rumor/sim: crash-safe checkpoints, deterministic sharding, and the
// bit-identical merge layer for campaigns.
//
// A campaign reduces every configuration to mergeable accumulators whose
// block partials land in fixed slots (sim/campaign.cpp). This module
// persists that progress: a *snapshot* is a versioned JSON document holding
// each configuration's completed block partials (exact serialized
// accumulator state), its race phase (candidates / finalists), or its final
// result. The same document serves three flows:
//
//   * checkpoint / resume — run_campaign_resumable writes snapshots
//     periodically (atomic temp + fsync + rename); a resumed campaign
//     re-runs only the missing blocks and produces a final report
//     bit-identical to an uninterrupted run at any thread count;
//   * sharding — `--shard i/k` partitions the block space by a stable hash
//     of (config id, slot), independent of thread count and enqueue order
//     (race configurations hash by config id alone, so every successor
//     block of a plan block lands on the same shard), and emits a finished
//     partial snapshot;
//   * merge — merge_campaign_snapshots folds k partial snapshots into the
//     final results, validating format/version, spec hash, shard coverage
//     and overlap first; the merged reports are bit-identical to the
//     unsharded run's.
//
// Bit-identity rests on two facts: accumulator serialization round-trips
// exactly (stats/streaming.hpp state() / restore(), doubles rendered by the
// exact shortest-round-trip formatter of sim/experiment.cpp), and partials
// are always folded in slot order, so a resumed or merged fold performs the
// same merge sequence on bit-identical operands.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/campaign.hpp"
#include "sim/experiment.hpp"

namespace rumor::sim {

/// Snapshot document identification. `version` bumps on any schema change;
/// loaders reject versions they do not understand.
inline constexpr const char* kSnapshotFormat = "rumor-campaign-checkpoint";
inline constexpr int kSnapshotVersion = 1;

/// Stable fingerprint of (campaign name, fully-resolved configurations) —
/// FNV-1a over a canonical rendering of every parameter that affects
/// results. Recorded in every snapshot as `spec_hash`; resume and merge
/// refuse snapshots whose hash does not match the spec they are given
/// (including CLI --trials/--seed/--scale overrides, which must be repeated
/// verbatim).
[[nodiscard]] std::string campaign_fingerprint(const std::string& campaign_name,
                                               const std::vector<CampaignConfig>& configs);

/// The shard partition rule: which 0-based shard owns block `slot` of the
/// configuration `config_id`. Race configurations pass whole_config = true
/// and are owned wholesale by one shard (their screen/refine successor
/// blocks must follow their plan block). Pure function of its arguments —
/// never of thread count, enqueue order, or completion order.
[[nodiscard]] std::uint32_t shard_of_block(const std::string& config_id, std::size_t slot,
                                           bool whole_config, std::uint32_t shard_count);

/// The configuration id run_campaign reports: cfg.id, or "cfg<index>" when
/// the spec left it empty.
[[nodiscard]] std::string resolved_config_id(const CampaignConfig& cfg, std::size_t index);

/// What run_campaign_resumable returns beyond the plain result vector.
struct CampaignOutcome {
  /// Ordered like the input configs. Configurations whose blocks this run
  /// did not finish (stopped early, or owned by other shards) carry only
  /// their metadata skeleton — their progress lives in `snapshot`.
  std::vector<CampaignResult> results;
  /// False when the run stopped early (CampaignOptions::stop_after_blocks).
  bool complete = true;
  /// Blocks completed by this run, including restored progress from resume.
  std::uint64_t blocks_done = 0;
  /// The final snapshot document (checkpoint / shard partial); a null Json
  /// when the run recorded nothing (no checkpoint, shard, stop, or resume).
  Json snapshot;
};

/// run_campaign with checkpoint / shard / resume support. `resume` is a
/// parsed snapshot document (nullptr = fresh start); it is validated
/// against the configs, options, and campaign name before any work is
/// scheduled, and a mismatch throws std::runtime_error naming the field.
/// The determinism contract of run_campaign extends across interruptions:
/// a resumed campaign's final report is bit-identical to an uninterrupted
/// run at any thread count.
[[nodiscard]] CampaignOutcome run_campaign_resumable(const std::vector<CampaignConfig>& configs,
                                                     const CampaignOptions& options,
                                                     const std::string& campaign_name,
                                                     const Json* resume = nullptr);

/// Folds k finished shard snapshots into the campaign's final results,
/// bit-identical to the unsharded run. Validates before merging, throwing
/// std::runtime_error on: format/version mismatch, campaign name or spec
/// hash mismatch, block size or capacity disagreement between snapshots,
/// wrong shard count, duplicate or missing shard indices, an unfinished
/// shard, a coverage gap (a block slot no shard recorded), or an overlap (a
/// slot or race result recorded by two shards) — each error names the
/// configuration and slot/shards involved.
[[nodiscard]] std::vector<CampaignResult> merge_campaign_snapshots(
    const std::vector<CampaignConfig>& configs, const std::string& campaign_name,
    const std::vector<Json>& snapshots);

/// The streaming-summary options a campaign gives configuration `cfg`
/// (per-config reservoir override, reservoir salted by the config seed).
/// One definition shared by the scheduler and the merge tool, so restored
/// summaries are always rebuilt with the exact construction parameters.
[[nodiscard]] stats::StreamingSummary::Options summary_options_for(
    const CampaignConfig& cfg, std::size_t sketch_capacity, std::size_t reservoir_capacity);

/// The curve-accumulator options a campaign gives configuration `cfg`
/// (grid length from the config's curve spec, sketch capacity shared with
/// the scalar summaries). Like summary_options_for, one definition shared
/// by the scheduler and the merge tool so restored curve partials are
/// always rebuilt with the exact construction parameters.
[[nodiscard]] stats::CurveAccumulator::Options curve_options_for(const CampaignConfig& cfg,
                                                                 std::size_t sketch_capacity);

/// Loads a campaign spec file and applies the rumor_bench CLI override
/// semantics (--trials replaces every trial count, --scale multiplies the
/// spec's own counts otherwise, --seed replaces every root seed). Shared by
/// rumor_bench and tools/campaign_merge so both resolve identical configs —
/// a prerequisite for spec-hash validation. Returns nullopt after printing
/// a `prog`-prefixed diagnostic to `err`.
[[nodiscard]] std::optional<CampaignSpec> load_campaign_spec_file(const std::string& path,
                                                                  std::uint64_t trials_override,
                                                                  std::uint64_t seed_override,
                                                                  unsigned scale, const char* prog,
                                                                  std::ostream& err);

/// Reads and parses one JSON file; nullopt (with a `prog`-prefixed
/// diagnostic on `err`) on a missing file or malformed document.
[[nodiscard]] std::optional<Json> read_json_file(const std::string& path, const char* prog,
                                                 std::ostream& err);

/// Stale-shard advisory for merge flows: snapshots carry an optional
/// `written_at` wall-clock stamp (unix seconds, recorded on every
/// checkpoint write); when the shards handed to a merge were written more
/// than an hour apart, each laggard gets a `prog`-prefixed warning on `err`
/// naming its file (`names` parallels `snapshots`). Advisory only — byte
/// determinism makes mixing old and new shards safe when the spec really is
/// unchanged, and the spec-hash check still rejects true mismatches — and
/// snapshots without the stamp (pre-dating it) are silently tolerated.
void report_stale_snapshots(const std::vector<Json>& snapshots,
                            const std::vector<std::string>& names, const char* prog,
                            std::ostream& err);

/// The tools/campaign_merge entry point:
///   campaign_merge --campaign spec.json [--out FILE] [--trials N]
///                  [--seed S] [--scale K] shard1.json shard2.json ...
/// Exit codes match rumor_bench: 0 = merged, 1 = merge validation failure,
/// 2 = bad input. rumor_bench --merge drives the same merge path.
int run_campaign_merge_cli(int argc, const char* const* argv, std::ostream& out,
                           std::ostream& err);

/// Thread-safe campaign progress store: the machinery behind snapshots.
/// Internal to run_campaign_resumable — declared here only so the
/// scheduler (campaign.cpp) and the snapshot codec (checkpoint.cpp) can
/// share it; not part of the stable API surface.
class CampaignRecorder {
 public:
  /// One configuration's progress restored from a snapshot, in
  /// scheduler-neutral form (the scheduler rebuilds its internal state and
  /// re-enqueues only the missing blocks).
  struct Restored {
    enum class Phase : std::uint8_t { kPending, kTrials, kScreen, kRefine, kDone };
    Phase phase = Phase::kPending;
    std::vector<std::pair<std::size_t, stats::StreamingSummary::State>> trial_slots;
    /// Parallel to trial_slots when the configuration has curves enabled:
    /// every recorded slot carries its curve partial and contact totals.
    std::vector<std::tuple<std::size_t, stats::CurveAccumulator::State, stats::ContactTotals>>
        curve_slots;
    std::vector<graph::NodeId> candidates;
    std::vector<std::tuple<std::uint32_t, std::size_t, stats::RunningMoments::State>> screen_slots;
    std::vector<graph::NodeId> finalists;
    std::vector<std::tuple<std::uint32_t, std::size_t, stats::StreamingSummary::State>>
        refine_slots;
    // Phase::kDone only:
    std::string graph_name;
    std::uint64_t n = 0;
    graph::NodeId source = 0;
    graph::NodeId best_source = 0;
    double best_mean = 0.0;
    stats::StreamingSummary::State summary;
    /// Phase::kDone with curves enabled only.
    stats::CurveAccumulator::State curves;
    stats::ContactTotals contacts;
  };

  CampaignRecorder(const std::vector<CampaignConfig>& configs, const CampaignOptions& options,
                   std::string campaign_name);

  /// Validates `snapshot` against the configs/options/name and adopts it as
  /// the starting state (subsequent snapshots re-emit the restored
  /// progress). Returns per-config restored progress, indexed like configs.
  /// Throws std::runtime_error naming the first mismatch.
  [[nodiscard]] std::vector<Restored> load(const Json& snapshot);

  // Worker-side recording. All thread-safe; each call serializes the
  // partial's exact state under the store mutex.
  void record_graph(std::size_t config, const std::string& graph_name, std::uint64_t n);
  void record_trial_slot(std::size_t config, std::size_t slot,
                         const stats::StreamingSummary& partial,
                         const stats::CurveAccumulator* curves = nullptr,
                         const stats::ContactTotals* contacts = nullptr);
  void record_plan(std::size_t config, const std::vector<graph::NodeId>& candidates);
  void record_screen_slot(std::size_t config, std::uint32_t entrant, std::size_t slot,
                          const stats::RunningMoments& partial);
  void record_finalists(std::size_t config, const std::vector<graph::NodeId>& finalists);
  void record_refine_slot(std::size_t config, std::uint32_t entrant, std::size_t slot,
                          const stats::StreamingSummary& partial);
  void record_done(std::size_t config, const CampaignResult& result);

  /// Called by a worker after each completed block: advances the block
  /// counter, writes a periodic checkpoint when one is due, and returns
  /// true when the stop_after_blocks budget is exhausted (the caller then
  /// drains the queue). Throws std::runtime_error if a checkpoint write
  /// fails (a campaign that cannot persist progress should fail loudly).
  [[nodiscard]] bool block_finished();

  /// Serializes the full snapshot document. `finished` marks a snapshot
  /// whose owned work is complete — what merge requires of shard partials.
  [[nodiscard]] Json snapshot(bool finished) const;

  /// Writes snapshot(finished) to the options' checkpoint_file through the
  /// durable atomic-rename path. Throws std::runtime_error on failure.
  void write_checkpoint(bool finished) const;

  [[nodiscard]] std::uint64_t blocks_done() const;

 private:
  /// Mirror of one snapshot config entry; values are stored pre-serialized
  /// (deterministically ordered maps) so snapshot() is a pure render.
  struct StoredConfig {
    std::string phase = "pending";
    std::string graph_name;
    std::uint64_t n = 0;
    bool has_graph = false;
    std::map<std::size_t, Json> slots;
    /// Curve partial per slot (curves-enabled configs only): pre-serialized
    /// curve state with its contact totals, emitted as the slot entry's
    /// optional "curves" key.
    std::map<std::size_t, Json> slot_curves;
    std::vector<graph::NodeId> candidates;
    bool has_candidates = false;
    std::map<std::pair<std::uint32_t, std::size_t>, Json> screen;
    std::vector<graph::NodeId> finalists;
    bool has_finalists = false;
    std::map<std::pair<std::uint32_t, std::size_t>, Json> refine;
    Json result;  // is_object() once done
  };

  const std::vector<CampaignConfig>& configs_;
  CampaignOptions options_;
  std::string campaign_name_;
  std::string spec_hash_;
  mutable std::mutex mutex_;
  /// Serializes checkpoint writes: concurrent periodic writers would share
  /// one pid-derived temp file and tear it. Separate from mutex_ so workers
  /// keep recording while a snapshot is on its way to disk.
  mutable std::mutex write_mutex_;
  std::vector<StoredConfig> store_;
  std::uint64_t blocks_done_ = 0;    // total, including progress restored by load()
  std::uint64_t session_blocks_ = 0; // completed by this process (drives the
                                     // checkpoint cadence and the stop budget)
};

}  // namespace rumor::sim
