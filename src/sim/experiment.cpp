#include "sim/experiment.hpp"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include <fcntl.h>
#include <unistd.h>

#include "obs/build_info.hpp"
#include "obs/telemetry.hpp"
#include "sim/checkpoint.hpp"

#include "sim/campaign.hpp"
#include "sim/table.hpp"

namespace rumor::sim {

// --- Json -------------------------------------------------------------------

void Json::push_back(Json v) {
  assert(type_ == Type::kArray);
  elements_.push_back(std::move(v));
}

Json& Json::set(const std::string& key, Json value) {
  assert(type_ == Type::kObject);
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  entries_.emplace_back(key, std::move(value));
  return *this;
}

const Json* Json::find(std::string_view key) const noexcept {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Numbers print as integers when they are integers (the common case:
/// node counts, trial counts, rounds), otherwise with the shortest
/// precision that round-trips through strtod — dump/parse cycles of
/// BENCH_*.json reports must reproduce values exactly.
std::string format_number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  char buf[40];
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  for (int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad = pretty ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ') : "";
  const std::string close_pad = pretty ? std::string(static_cast<std::size_t>(indent * depth), ' ') : "";
  const char* nl = pretty ? "\n" : "";
  const char* kv_sep = pretty ? ": " : ":";
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: out += format_number(number_); break;
    case Type::kString: append_escaped(out, string_); break;
    case Type::kArray: {
      if (elements_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        out += pad;
        elements_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < elements_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Type::kObject: {
      if (entries_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < entries_.size(); ++i) {
        out += pad;
        append_escaped(out, entries_[i].first);
        out += kv_sep;
        entries_[i].second.dump_to(out, indent, depth + 1);
        if (i + 1 < entries_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent JSON parser over a string_view cursor. Nesting depth
/// is bounded so a truncated or hostile document ("[[[[...") yields the
/// documented nullopt instead of overflowing the stack.
class JsonParser {
 public:
  static constexpr int kMaxDepth = 256;

  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<Json> parse_document() {
    auto v = parse_value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  std::optional<std::string> parse_string_body() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return std::nullopt;
            }
            // Reports only use ASCII; encode BMP code points as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> parse_value() {  // NOLINT(misc-no-recursion)
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    if (depth_ >= kMaxDepth) return std::nullopt;
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      auto s = parse_string_body();
      if (!s) return std::nullopt;
      return Json(std::move(*s));
    }
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    if (consume_literal("null")) return Json();
    return parse_number();
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return std::nullopt;
    return Json(v);
  }

  std::optional<Json> parse_array() {  // NOLINT(misc-no-recursion)
    if (!consume('[')) return std::nullopt;
    ++depth_;
    Json arr = Json::array();
    skip_ws();
    if (consume(']')) {
      --depth_;
      return arr;
    }
    for (;;) {
      auto v = parse_value();
      if (!v) return std::nullopt;
      arr.push_back(std::move(*v));
      if (consume(',')) continue;
      if (consume(']')) {
        --depth_;
        return arr;
      }
      return std::nullopt;
    }
  }

  std::optional<Json> parse_object() {  // NOLINT(misc-no-recursion)
    if (!consume('{')) return std::nullopt;
    ++depth_;
    Json obj = Json::object();
    skip_ws();
    if (consume('}')) {
      --depth_;
      return obj;
    }
    for (;;) {
      skip_ws();
      auto key = parse_string_body();
      if (!key) return std::nullopt;
      if (!consume(':')) return std::nullopt;
      auto v = parse_value();
      if (!v) return std::nullopt;
      obj.set(*key, std::move(*v));
      if (consume(',')) continue;
      if (consume('}')) {
        --depth_;
        return obj;
      }
      return std::nullopt;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

// --- Registry ---------------------------------------------------------------

ExperimentRegistry& ExperimentRegistry::instance() {
  static ExperimentRegistry registry;
  return registry;
}

void ExperimentRegistry::add(ExperimentInfo info) {
  if (find(info.name) != nullptr) {
    std::fprintf(stderr, "duplicate experiment registration: %s\n", info.name.c_str());
    std::abort();
  }
  experiments_.push_back(std::move(info));
}

const ExperimentInfo* ExperimentRegistry::find(std::string_view name) const noexcept {
  for (const auto& e : experiments_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

namespace {

/// Natural order: digit runs compare numerically, so e2 < e10.
bool natural_less(const std::string& a, const std::string& b) {
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const bool da = std::isdigit(static_cast<unsigned char>(a[i])) != 0;
    const bool db = std::isdigit(static_cast<unsigned char>(b[j])) != 0;
    if (da && db) {
      std::size_t ia = i;
      std::size_t jb = j;
      while (ia < a.size() && std::isdigit(static_cast<unsigned char>(a[ia]))) ++ia;
      while (jb < b.size() && std::isdigit(static_cast<unsigned char>(b[jb]))) ++jb;
      const auto na = std::stoull(a.substr(i, ia - i));
      const auto nb = std::stoull(b.substr(j, jb - j));
      if (na != nb) return na < nb;
      i = ia;
      j = jb;
    } else {
      if (a[i] != b[j]) return a[i] < b[j];
      ++i;
      ++j;
    }
  }
  return a.size() < b.size();
}

}  // namespace

std::vector<const ExperimentInfo*> ExperimentRegistry::all() const {
  std::vector<const ExperimentInfo*> out;
  out.reserve(experiments_.size());
  for (const auto& e : experiments_) out.push_back(&e);
  std::sort(out.begin(), out.end(), [](const ExperimentInfo* a, const ExperimentInfo* b) {
    return natural_less(a->name, b->name);
  });
  return out;
}

// --- Running and rendering ---------------------------------------------------

Json run_experiment(const ExperimentInfo& info, const ExperimentOptions& opts) {
  ExperimentContext ctx(opts);
  Json body = info.run(ctx);
  Json report = Json::object();
  report.set("experiment", info.name);
  report.set("schema_version", kReportSchemaVersion);
  report.set("title", info.title);
  report.set("claim", info.claim);
  Json params = Json::object();
  params.set("trials", opts.trials);  // 0 = per-experiment defaults in effect
  params.set("seed", opts.seed);
  params.set("threads", opts.threads);
  params.set("scale", opts.scale);
  report.set("params", params);
  for (auto& [key, value] : body.mutable_entries()) report.set(key, std::move(value));
  report.set("build_info", build_info_json());
  return report;
}

Json build_info_json() {
  const obs::BuildInfo& bi = obs::build_info();
  Json info = Json::object();
  info.set("git_sha", bi.git_sha);
  info.set("compiler", bi.compiler);
  info.set("compiler_version", bi.compiler_version);
  info.set("build_type", bi.build_type);
  info.set("flags", bi.flags);
  return info;
}

namespace {

std::string cell_text(const Json& v) {
  switch (v.type()) {
    case Json::Type::kString: return v.as_string();
    case Json::Type::kNumber: {
      const double d = v.as_number();
      char buf[40];
      if (d == std::floor(d) && std::abs(d) < 1e15) {
        std::snprintf(buf, sizeof buf, "%.0f", d);
      } else {
        std::snprintf(buf, sizeof buf, "%.4g", d);
      }
      return buf;
    }
    case Json::Type::kBool: return v.as_bool() ? "true" : "false";
    default: return "-";
  }
}

/// Renders a report's "rows" array as the aligned table the stand-alone
/// benches used to print, plus "stats" and "notes" afterwards.
void print_human(const Json& report, std::ostream& out) {
  const Json* title = report.find("title");
  const Json* claim = report.find("claim");
  const Json* name = report.find("experiment");
  out << "== " << (name ? name->as_string() : "?") << ": "
      << (title ? title->as_string() : "") << " ==\n";
  if (claim) out << claim->as_string() << "\n";
  out << "\n";

  const Json* rows = report.find("rows");
  if (rows != nullptr && rows->is_array() && !rows->elements().empty()) {
    std::vector<std::string> headers;
    for (const auto& [key, value] : rows->elements().front().entries()) headers.push_back(key);
    Table table(headers);
    for (const auto& row : rows->elements()) {
      std::vector<std::string> cells;
      cells.reserve(headers.size());
      for (const auto& h : headers) {
        const Json* v = row.find(h);
        cells.push_back(v != nullptr ? cell_text(*v) : "-");
      }
      table.add_row(std::move(cells));
    }
    table.print(out);
  }

  const Json* stats = report.find("stats");
  if (stats != nullptr && stats->is_object() && stats->size() > 0) {
    out << "\n";
    for (const auto& [key, value] : stats->entries()) {
      out << "  " << key << " = " << cell_text(value) << "\n";
    }
  }
  const Json* notes = report.find("notes");
  if (notes != nullptr && notes->is_string()) out << "\n" << notes->as_string() << "\n";
  out << "\n";
}

unsigned env_scale() {
  const char* env = std::getenv("RUMOR_BENCH_SCALE");
  if (env == nullptr) return 1;
  const long v = std::strtol(env, nullptr, 10);
  return static_cast<unsigned>(std::clamp(v, 1L, 64L));
}

void print_usage(std::ostream& out) {
  out << "usage: rumor_bench [options] (--all | <experiment>...)\n"
         "       rumor_bench --list [--json]\n"
         "       rumor_bench --campaign spec.json [--json] [--threads T] [--batch B]\n"
         "                   [--shard i/k] [--checkpoint FILE [--checkpoint-every N]]\n"
         "                   [--resume FILE]\n"
         "       rumor_bench --campaign spec.json --merge shard1.json shard2.json ...\n"
         "\n"
         "options:\n"
         "  --list           list registered experiments (title, claim, defaults) and exit\n"
         "  --all            run every registered experiment\n"
         "  --json           emit machine-readable JSON instead of tables\n"
         "  --out FILE       write the report to FILE via temp-file + atomic rename\n"
         "  --campaign FILE  run a JSON campaign spec over one shared trial-block queue\n"
         "                   (spec grammar: see bench/README.md)\n"
         "  --batch B        campaign trials per scheduled block (default 32); also the\n"
         "                   checkpoint/shard granularity\n"
         "  --shard i/k      run only shard i of k (deterministic block partition) and\n"
         "                   emit the partial snapshot instead of a report\n"
         "  --checkpoint FILE      write a crash-safe snapshot every --checkpoint-every\n"
         "                         completed blocks (default 16) and at completion\n"
         "  --resume FILE    restore progress from a snapshot; only missing blocks run,\n"
         "                   and the final report is bit-identical to an unbroken run\n"
         "  --stop-after-blocks N  stop after N blocks (exit 3; testing/ops hook)\n"
         "  --merge          fold finished shard snapshots (positional args) into the\n"
         "                   final report (also available as tools/campaign_merge)\n"
         "  --trace FILE     write a Chrome/Perfetto trace of the campaign run to FILE\n"
         "                   (per-worker block/graph-build/merge spans + metrics; fold\n"
         "                   with tools/trace_report.py)\n"
         "  --progress       print live heartbeat lines (blocks done, rate, eta) to\n"
         "                   stderr while the campaign runs; stdout stays parseable\n"
         "  --telemetry      embed a stats.telemetry cost breakdown (campaign wall time,\n"
         "                   per-config blocks/trials/busy time) in campaign reports\n"
         "  --curves         enable spread telemetry on every campaign cell: stats.curves\n"
         "                   informed-count curves, phase decomposition, and contact\n"
         "                   accounting (fold with tools/spread_report.py)\n"
         "  --trials N       override the trial count of every measurement\n"
         "  --seed S         override the root seed (trial i uses stream i)\n"
         "  --threads T      worker threads (0 = hardware concurrency)\n"
         "  --scale K        workload multiplier in [1, 64] (default: $RUMOR_BENCH_SCALE or 1)\n"
         "  --version        print build provenance (git sha, compiler, build type) and exit\n"
         "  --help           this text\n";
}

/// fsync on a directory makes the rename of a child durable. Failure is
/// reported like any other error: a checkpoint that silently is not on disk
/// defeats the whole contract.
bool fsync_parent_dir(const std::string& path, std::string& error) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    error = "cannot open directory " + dir + " for fsync: " + std::strerror(errno);
    return false;
  }
  if (::fsync(fd) != 0) {
    error = "cannot fsync directory " + dir + ": " + std::strerror(errno);
    ::close(fd);
    return false;
  }
  ::close(fd);
  return true;
}

}  // namespace

bool write_file_atomic(const std::string& path, const std::string& contents,
                       std::string& error) {
  // The temp file is a *sibling* of the destination (same directory, hence
  // same filesystem) so the rename is atomic, and pid-unique so concurrent
  // writers with the same destination cannot interleave into one temp file;
  // last rename wins with a complete file either way.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    error = "cannot open " + tmp + " for writing: " + std::strerror(errno);
    return false;
  }
  auto fail = [&](const std::string& what) {
    error = what;
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  };
  std::size_t written = 0;
  while (written < contents.size()) {
    const ::ssize_t n = ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail("short write to " + tmp + ": " + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  // fsync before rename: otherwise a crash can leave the *renamed* file
  // empty (metadata ordered before data), which for a checkpoint is worse
  // than no file at all.
  if (::fsync(fd) != 0) return fail("cannot fsync " + tmp + ": " + std::strerror(errno));
  if (::close(fd) != 0) {
    error = "cannot close " + tmp + ": " + std::strerror(errno);
    ::unlink(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    error = "cannot rename " + tmp + " to " + path + ": " + std::strerror(errno);
    ::unlink(tmp.c_str());
    return false;
  }
  return fsync_parent_dir(path, error);
}

int run_bench_cli(int argc, const char* const* argv, std::ostream& out, std::ostream& err) {
  ExperimentOptions opts;
  opts.scale = env_scale();
  bool list = false;
  bool all = false;
  bool json = false;
  std::string campaign_file;
  std::string out_file;
  std::uint64_t batch = 32;
  bool batch_explicit = false;
  bool merge = false;
  bool shard_explicit = false;
  std::uint32_t shard_index = 1;
  std::uint32_t shard_count = 1;
  std::string checkpoint_file;
  std::uint64_t checkpoint_every = 16;
  std::string resume_file;
  std::uint64_t stop_after_blocks = 0;
  std::string trace_file;
  bool progress = false;
  bool telemetry_stats = false;
  bool curves_flag = false;
  std::vector<std::string> names;

  auto numeric_arg = [&](int& i, const char* flag) -> std::optional<std::uint64_t> {
    if (i + 1 >= argc) {
      err << "rumor_bench: " << flag << " requires a value\n";
      return std::nullopt;
    }
    ++i;
    // strtoull silently wraps negative input ("-5" -> ~1.8e19), so reject
    // any sign character up front.
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(argv[i], &end, 10);
    if (argv[i][0] == '-' || argv[i][0] == '+' || end == argv[i] || *end != '\0') {
      err << "rumor_bench: bad value for " << flag << ": " << argv[i] << "\n";
      return std::nullopt;
    }
    // Values travel through Json's IEEE-double numbers (exact only up to
    // 2^53), so cap CLI inputs where the report could no longer reproduce
    // them exactly.
    if (v > (std::uint64_t{1} << 53)) {
      err << "rumor_bench: " << flag << " must be <= 2^53 (values are recorded as JSON numbers)\n";
      return std::nullopt;
    }
    return v;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--list") {
      list = true;
    } else if (arg == "--all") {
      all = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      print_usage(out);
      return 0;
    } else if (arg == "--version") {
      out << obs::build_info_line("rumor_bench") << "\n";
      return 0;
    } else if (arg == "--trace") {
      if (i + 1 >= argc) {
        err << "rumor_bench: --trace requires a file path\n";
        return 2;
      }
      trace_file = argv[++i];
    } else if (arg == "--progress") {
      progress = true;
    } else if (arg == "--telemetry") {
      telemetry_stats = true;
    } else if (arg == "--curves") {
      curves_flag = true;
    } else if (arg == "--trials") {
      const auto v = numeric_arg(i, "--trials");
      if (!v) return 2;
      if (*v == 0) {  // 0 is the internal "use defaults" sentinel
        err << "rumor_bench: --trials must be >= 1 (omit the flag for per-experiment defaults)\n";
        return 2;
      }
      opts.trials = *v;
    } else if (arg == "--seed") {
      const auto v = numeric_arg(i, "--seed");
      if (!v) return 2;
      if (*v == 0) {  // 0 is the internal "use defaults" sentinel
        err << "rumor_bench: --seed must be >= 1 (omit the flag for per-experiment defaults)\n";
        return 2;
      }
      opts.seed = *v;
    } else if (arg == "--threads") {
      const auto v = numeric_arg(i, "--threads");
      if (!v) return 2;
      opts.threads = static_cast<unsigned>(*v);
    } else if (arg == "--batch") {
      const auto v = numeric_arg(i, "--batch");
      if (!v) return 2;
      if (*v == 0) {
        err << "rumor_bench: --batch must be >= 1\n";
        return 2;
      }
      batch = *v;
      batch_explicit = true;
    } else if (arg == "--shard") {
      if (i + 1 >= argc) {
        err << "rumor_bench: --shard requires a value of the form i/k\n";
        return 2;
      }
      ++i;
      unsigned si = 0;
      unsigned sk = 0;
      char extra = 0;
      // sscanf's %u silently accepts sign characters (strtoul semantics), so
      // screen them out before parsing.
      const bool signless = std::string_view(argv[i]).find_first_of("+-") == std::string_view::npos;
      if (!signless || std::sscanf(argv[i], "%u/%u%c", &si, &sk, &extra) != 2 || si < 1 ||
          si > sk) {
        err << "rumor_bench: --shard wants i/k with 1 <= i <= k, got '" << argv[i] << "'\n";
        return 2;
      }
      shard_index = si;
      shard_count = sk;
      shard_explicit = true;
    } else if (arg == "--merge") {
      merge = true;
    } else if (arg == "--checkpoint") {
      if (i + 1 >= argc) {
        err << "rumor_bench: --checkpoint requires a file path\n";
        return 2;
      }
      checkpoint_file = argv[++i];
    } else if (arg == "--checkpoint-every") {
      const auto v = numeric_arg(i, "--checkpoint-every");
      if (!v) return 2;
      if (*v == 0) {
        err << "rumor_bench: --checkpoint-every must be >= 1\n";
        return 2;
      }
      checkpoint_every = *v;
    } else if (arg == "--resume") {
      if (i + 1 >= argc) {
        err << "rumor_bench: --resume requires a file path\n";
        return 2;
      }
      resume_file = argv[++i];
    } else if (arg == "--stop-after-blocks") {
      const auto v = numeric_arg(i, "--stop-after-blocks");
      if (!v) return 2;
      if (*v == 0) {
        err << "rumor_bench: --stop-after-blocks must be >= 1\n";
        return 2;
      }
      stop_after_blocks = *v;
    } else if (arg == "--campaign") {
      if (i + 1 >= argc) {
        err << "rumor_bench: --campaign requires a file path\n";
        return 2;
      }
      campaign_file = argv[++i];
    } else if (arg == "--out") {
      if (i + 1 >= argc) {
        err << "rumor_bench: --out requires a file path\n";
        return 2;
      }
      out_file = argv[++i];
    } else if (arg == "--scale") {
      const auto v = numeric_arg(i, "--scale");
      if (!v) return 2;
      opts.scale = static_cast<unsigned>(std::clamp<std::uint64_t>(*v, 1, 64));
    } else if (!arg.empty() && arg.front() == '-') {
      err << "rumor_bench: unknown option " << arg << "\n";
      print_usage(err);
      return 2;
    } else {
      names.emplace_back(arg);
    }
  }

  const auto& registry = ExperimentRegistry::instance();

  // With --out, reports accumulate in a buffer and land on disk in one
  // atomic rename at the end; diagnostics still go to `err` immediately.
  std::ostringstream buffer;
  std::ostream& sink = out_file.empty() ? out : static_cast<std::ostream&>(buffer);
  auto finish = [&]() -> int {
    if (!out_file.empty()) {
      std::string werr;
      if (!write_file_atomic(out_file, buffer.str(), werr)) {
        err << "rumor_bench: " << werr << "\n";
        return 1;
      }
    }
    return 0;
  };

  if (list) {
    if (json) {
      Json arr = Json::array();
      for (const ExperimentInfo* e : registry.all()) {
        Json entry = Json::object();
        entry.set("experiment", e->name);
        entry.set("title", e->title);
        entry.set("claim", e->claim);
        entry.set("defaults", e->defaults);
        arr.push_back(std::move(entry));
      }
      sink << arr.dump(2) << "\n";
    } else {
      for (const ExperimentInfo* e : registry.all()) {
        sink << e->name << "\n    " << e->title << "\n";
        if (!e->claim.empty()) sink << "    claim: " << e->claim << "\n";
        if (!e->defaults.empty()) sink << "    defaults: " << e->defaults << "\n";
      }
    }
    return finish();
  }

  if (campaign_file.empty() &&
      (merge || shard_explicit || !checkpoint_file.empty() || !resume_file.empty() ||
       stop_after_blocks != 0 || !trace_file.empty() || progress || telemetry_stats ||
       curves_flag)) {
    err << "rumor_bench: --merge/--shard/--checkpoint/--resume/--stop-after-blocks/--trace/"
           "--progress/--telemetry/--curves require --campaign\n";
    return 2;
  }

  if (!campaign_file.empty()) {
    // --merge consumes the positionals as shard snapshot files; everything
    // else rejects them as stray experiment names.
    if (all || (!merge && !names.empty())) {
      err << "rumor_bench: --campaign cannot be combined with experiment names or --all\n";
      return 2;
    }
    if (stop_after_blocks != 0 && checkpoint_file.empty()) {
      err << "rumor_bench: --stop-after-blocks requires --checkpoint\n";
      return 2;
    }
    auto spec =
        load_campaign_spec_file(campaign_file, opts.trials, opts.seed, opts.scale, "rumor_bench",
                                err);
    if (!spec) return 2;

    if (curves_flag) {
      // Equivalent to adding a default "curves" block to every cell of the
      // spec; a merge with --curves therefore expects shards that were run
      // with --curves (the snapshot fingerprint covers the curve spec).
      for (std::size_t c = 0; c < spec->configs.size(); ++c) {
        CampaignConfig& cfg = spec->configs[c];
        if (cfg.engine == EngineKind::kAux) {
          err << "rumor_bench: --curves: configs[" << c
              << "] uses engine 'aux', which has no contact structure\n";
          return 2;
        }
        if (cfg.source_policy == SourcePolicy::kRace) {
          err << "rumor_bench: --curves: configs[" << c
              << "] uses source \"race\"; curves need a fixed source\n";
          return 2;
        }
        cfg.curves.enabled = true;
      }
    }

    // Telemetry wiring: any of the three faces instantiates the registry;
    // --telemetry additionally surfaces the snapshot in report stats. The
    // heartbeat goes to `err` (the CLI hands in stderr) so --json stdout
    // stays machine-parseable.
    std::unique_ptr<obs::Telemetry> telemetry;
    if (!trace_file.empty() || progress || telemetry_stats) {
      obs::Telemetry::Options topt;
      topt.trace = !trace_file.empty();
      topt.progress = progress;
      topt.progress_stream = &err;
      telemetry = std::make_unique<obs::Telemetry>(topt);
    }
    std::optional<obs::MetricsSnapshot> telemetry_metrics;

    /// Writes the --trace file once the campaign has run (also on an early
    /// stop, so partial runs are inspectable). Returns false on I/O failure.
    auto finish_telemetry = [&]() -> bool {
      if (telemetry == nullptr) return true;
      telemetry->end();  // idempotent; run_campaign already ended it
      telemetry_metrics = telemetry->snapshot();
      if (!trace_file.empty()) {
        std::string terr;
        if (!telemetry->write_trace(trace_file, &terr)) {
          err << "rumor_bench: " << terr << "\n";
          return false;
        }
      }
      return true;
    };

    auto render_results = [&](const std::vector<CampaignResult>& results) -> int {
      // When both probes and the metrics registry ran for the whole campaign
      // (no resume: a resumed registry only saw this session's blocks), the
      // two independent tick counts must agree exactly — probes fold
      // result.rounds/result.steps per trial, the registry folds the same
      // values per worker.
      if (telemetry_stats && telemetry_metrics.has_value() && resume_file.empty() &&
          !results.empty()) {
        bool all_curves = true;
        std::uint64_t probe_ticks = 0;
        for (const CampaignResult& r : results) {
          all_curves = all_curves && r.has_curves;
          probe_ticks += r.contacts.ticks;
        }
        const std::uint64_t registry_ticks =
            telemetry_metrics->totals.sync_rounds + telemetry_metrics->totals.async_events;
        if (all_curves && probe_ticks != registry_ticks) {
          err << "rumor_bench: engine-tick accounting mismatch: spread probes counted "
              << probe_ticks << " ticks but the metrics registry recorded " << registry_ticks
              << "\n";
          return 1;
        }
      }
      Json reports = Json::array();
      for (std::size_t i = 0; i < results.size(); ++i) {
        const CampaignResult& r = results[i];
        Json report = campaign_report(r, spec->name);
        if (telemetry_stats && telemetry_metrics.has_value()) {
          // Results are ordered like the spec's configs, which is exactly
          // the registry's per_config indexing.
          for (auto& [key, value] : report.mutable_entries()) {
            if (key != "stats" || !value.is_object()) continue;
            Json t = Json::object();
            t.set("campaign_wall_ms",
                  static_cast<double>(telemetry_metrics->wall_ns) / 1e6);
            if (i < telemetry_metrics->per_config.size()) {
              const obs::ConfigCost& cost = telemetry_metrics->per_config[i];
              t.set("blocks", cost.blocks);
              t.set("trials", cost.trials);
              t.set("busy_ms", static_cast<double>(cost.busy_ns) / 1e6);
            }
            if (r.has_curves) t.set("engine_ticks", r.contacts.ticks);
            value.set("telemetry", std::move(t));
          }
        }
        if (json) {
          reports.push_back(std::move(report));
        } else {
          print_human(report, sink);
        }
      }
      if (json) {
        if (reports.size() == 1) {
          sink << reports.elements().front().dump(2) << "\n";
        } else {
          sink << reports.dump(2) << "\n";
        }
      }
      return finish();
    };

    if (merge) {
      if (shard_explicit || !checkpoint_file.empty() || !resume_file.empty() ||
          !trace_file.empty() || progress || telemetry_stats) {
        err << "rumor_bench: --merge cannot be combined with "
               "--shard/--checkpoint/--resume/--trace/--progress/--telemetry\n";
        return 2;
      }
      if (names.empty()) {
        err << "rumor_bench: --merge needs shard snapshot files as positional arguments\n";
        return 2;
      }
      std::vector<Json> snapshots;
      for (const std::string& f : names) {
        auto doc = read_json_file(f, "rumor_bench", err);
        if (!doc) return 2;
        snapshots.push_back(std::move(*doc));
      }
      // Tolerated, but reported: shards whose snapshots were written far
      // apart usually mean a forgotten re-run of one shard after a spec or
      // binary change (warnings only; byte-determinism makes mixing safe
      // when the inputs really are the same).
      report_stale_snapshots(snapshots, names, "rumor_bench", err);
      std::vector<CampaignResult> results;
      try {
        results = merge_campaign_snapshots(spec->configs, spec->name, snapshots);
      } catch (const std::exception& e) {
        err << "rumor_bench: merge failed: " << e.what() << "\n";
        return 1;
      }
      return render_results(results);
    }

    CampaignOptions campaign_options;
    campaign_options.threads = opts.threads;
    campaign_options.block_size = batch;
    campaign_options.shard_index = shard_index;
    campaign_options.shard_count = shard_count;
    campaign_options.checkpoint_file = checkpoint_file;
    campaign_options.checkpoint_every = checkpoint_every;
    campaign_options.stop_after_blocks = stop_after_blocks;
    campaign_options.telemetry = telemetry.get();
    campaign_options.telemetry_label = spec->name;

    const bool featured =
        shard_explicit || !checkpoint_file.empty() || !resume_file.empty() ||
        stop_after_blocks != 0;
    if (!featured) {
      // The historical path: no snapshot layer, byte-identical output.
      std::vector<CampaignResult> results;
      try {
        results = run_campaign(spec->configs, campaign_options);
      } catch (const std::exception& e) {
        err << "rumor_bench: campaign failed: " << e.what() << "\n";
        return 1;
      }
      if (!finish_telemetry()) return 1;
      return render_results(results);
    }

    std::optional<Json> resume_doc;
    if (!resume_file.empty()) {
      resume_doc = read_json_file(resume_file, "rumor_bench", err);
      if (!resume_doc) return 2;
      // A resume adopts the checkpoint's own block size and shard
      // assignment unless the flags are repeated explicitly (in which case
      // the loader validates that they match the snapshot).
      if (!batch_explicit) {
        if (const Json* v = resume_doc->find("block_size"); v != nullptr && v->is_number()) {
          campaign_options.block_size = static_cast<std::uint64_t>(v->as_number());
        }
      }
      if (!shard_explicit) {
        if (const Json* v = resume_doc->find("shard_index"); v != nullptr && v->is_number()) {
          campaign_options.shard_index = static_cast<std::uint32_t>(v->as_number());
        }
        if (const Json* v = resume_doc->find("shard_count"); v != nullptr && v->is_number()) {
          campaign_options.shard_count = static_cast<std::uint32_t>(v->as_number());
        }
      }
    }

    CampaignOutcome outcome;
    try {
      outcome = run_campaign_resumable(spec->configs, campaign_options, spec->name,
                                       resume_doc ? &*resume_doc : nullptr);
    } catch (const std::exception& e) {
      err << "rumor_bench: campaign failed: " << e.what() << "\n";
      return 1;
    }
    if (!finish_telemetry()) return 1;
    if (!outcome.complete) {
      err << "rumor_bench: campaign stopped after " << outcome.blocks_done
          << " blocks; progress saved to " << checkpoint_file << " (continue with --resume "
          << checkpoint_file << ")\n";
      return 3;
    }
    if (campaign_options.shard_count > 1 || shard_explicit) {
      // A shard emits its partial snapshot, not a report; campaign_merge
      // (or rumor_bench --merge) folds the partials into the final report.
      sink << outcome.snapshot.dump(2) << "\n";
      return finish();
    }
    return render_results(outcome.results);
  }

  std::vector<const ExperimentInfo*> selected;
  if (all) {
    selected = registry.all();
  } else {
    if (names.empty()) {
      err << "rumor_bench: no experiments selected\n";
      print_usage(err);
      return 2;
    }
    for (const auto& name : names) {
      const ExperimentInfo* e = registry.find(name);
      if (e == nullptr) {
        err << "rumor_bench: unknown experiment '" << name << "' (see --list)\n";
        return 2;
      }
      selected.push_back(e);
    }
  }

  Json reports = Json::array();
  for (const ExperimentInfo* e : selected) {
    Json report = run_experiment(*e, opts);
    if (json) {
      reports.push_back(std::move(report));
    } else {
      print_human(report, sink);
    }
  }
  if (json) {
    // A single selected experiment emits its object directly (the common
    // scripted case); multiple selections emit the array.
    if (reports.size() == 1) {
      sink << reports.elements().front().dump(2) << "\n";
    } else {
      sink << reports.dump(2) << "\n";
    }
  }
  return finish();
}

}  // namespace rumor::sim
