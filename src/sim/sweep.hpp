// rumor/sim: structured size sweeps with growth-law fitting.
//
// The theorems are asymptotic, so every experiment ultimately runs the same
// shape: generate the family at increasing n, measure a statistic, and ask
// which growth law fits. SizeSweep packages that loop with the stats
// module's estimators so benches and tests share one tested implementation.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "stats/regression.hpp"

namespace rumor::sim {

/// One measured point of a sweep.
struct SweepPoint {
  std::uint64_t n = 0;     // graph size actually built
  double value = 0.0;      // measured statistic (mean, quantile, ratio...)
  std::string graph_name;  // generator tag for reporting
};

/// A completed sweep with growth-law fits over its points.
class SweepResult {
 public:
  explicit SweepResult(std::vector<SweepPoint> points);

  [[nodiscard]] const std::vector<SweepPoint>& points() const noexcept { return points_; }

  /// Fits value ~ c * n^e; returns e and r^2. Requires >= 2 points.
  [[nodiscard]] stats::LinearFit power_law() const;

  /// Fits value ~ a ln n + b. Requires >= 2 points.
  [[nodiscard]] stats::LinearFit logarithmic() const;

  /// True when the values are flat: max/min <= 1 + tolerance.
  [[nodiscard]] bool is_bounded(double tolerance) const;

 private:
  std::vector<SweepPoint> points_;
};

/// Runs `measure` on `make(n)` for each n in `sizes`.
/// `make` returns the graph (its actual size may differ from the request,
/// e.g. hypercubes round to powers of two — the built size is recorded);
/// `measure` maps a graph to the statistic under study.
[[nodiscard]] SweepResult run_size_sweep(
    const std::vector<std::uint64_t>& sizes,
    const std::function<graph::Graph(std::uint64_t)>& make,
    const std::function<double(const graph::Graph&)>& measure);

}  // namespace rumor::sim
