// rumor/sim: aligned table output for the experiment binaries.
//
// Every bench binary prints its results as a fixed-width table (one row per
// configuration), mirroring how the reproduced claims would appear as a
// table or figure series in the paper. A CSV sink is provided so the same
// rows can be post-processed or plotted.
#pragma once

#include <cstdio>
#include <fstream>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace rumor::sim {

/// Collects rows of string cells and renders them with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders to stdout with a header underline, columns padded to content.
  void print() const;

  /// Renders to an arbitrary stream (same format as print()).
  void print(std::ostream& out) const;

  /// Writes headers + rows as CSV.
  void write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style cell formatting helper: fmt_cell("%.2f", x).
template <class... Args>
[[nodiscard]] std::string fmt_cell(const char* fmt, Args... args) {
  char buf[160];
  std::snprintf(buf, sizeof buf, fmt, args...);
  return std::string(buf);
}

}  // namespace rumor::sim
