// rumor/sim: worst-case source search.
//
// The paper's statements quantify over the source ("for any vertex u"), but
// a Monte-Carlo experiment must pick one. This module estimates the
// worst-case source: it screens every node (or a degree-stratified subset
// on large graphs) with a few trials each, then refines the leaders with a
// full measurement — the standard two-stage racing scheme. Benches use it
// to make "for all u" claims honest; E13 reports how much the source
// placement actually matters per family.
//
// Implementation: both entry points are thin wrappers over a single
// SourcePolicy::kRace campaign configuration (sim/campaign.hpp), so the
// screen and refine passes run as trial blocks on a shared worker queue
// and the raced source is bit-deterministic across thread counts —
// identical to what `rumor_bench --campaign` reports for a
// `source: "race"` configuration with the same parameters.
#pragma once

#include <cstdint>

#include "core/protocol.hpp"
#include "sim/harness.hpp"

namespace rumor::sim {

struct WorstSourceOptions {
  /// Trials per candidate in the screening pass.
  std::uint64_t screen_trials = 10;
  /// Candidates kept for the refinement pass.
  std::uint32_t finalists = 4;
  /// Trials per finalist in the refinement pass.
  std::uint64_t final_trials = 100;
  /// Screen at most this many candidate sources, stratified by degree
  /// (always including min- and max-degree nodes). 0 = screen all nodes.
  std::uint32_t max_candidates = 64;
  std::uint64_t seed = 1;
};

struct WorstSourceResult {
  NodeId source = 0;          // the worst source found
  double mean_time = 0.0;     // its refined mean spreading time
  NodeId best_source = 0;     // the best finalist (for the spread report)
  double best_mean_time = 0.0;
};

/// Estimates the source maximizing the mean synchronous spreading time.
[[nodiscard]] WorstSourceResult find_worst_source_sync(const Graph& g, core::Mode mode,
                                                       const WorstSourceOptions& options = {});

/// Estimates the source maximizing the mean asynchronous spreading time.
[[nodiscard]] WorstSourceResult find_worst_source_async(const Graph& g, core::Mode mode,
                                                        const WorstSourceOptions& options = {});

}  // namespace rumor::sim
