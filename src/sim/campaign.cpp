#include "sim/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <numeric>
#include <optional>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/quasirandom.hpp"
#include "graph/generators.hpp"
#include "graph/graph_store.hpp"
#include "obs/telemetry.hpp"
#include "rng/rng.hpp"
#include "sim/checkpoint.hpp"
#include "sim/experiment.hpp"

namespace rumor::sim {

using graph::Graph;

// --- Graph construction from a spec -----------------------------------------

Graph build_graph(const GraphSpec& spec, std::uint64_t fallback_seed) {
  if (spec.family == "file") {
    // A packed store: mmap it. Its shape is whatever was packed — n and the
    // generator params play no role (the parser rejects them up front).
    if (spec.path.empty()) {
      throw std::runtime_error("build_graph: graph kind 'file' needs a non-empty path");
    }
    return graph::open_graph_store(spec.path);
  }
  if (spec.n < 2 || spec.n > std::numeric_limits<graph::NodeId>::max()) {
    throw std::runtime_error("build_graph: '" + spec.family + "' needs 2 <= n <= 2^32-1");
  }
  const auto n = static_cast<graph::NodeId>(spec.n);
  const std::uint64_t graph_seed = spec.graph_seed != 0 ? spec.graph_seed : fallback_seed;
  // A dedicated stream tag keeps graph randomness disjoint from the trial
  // streams derive_stream(seed, 0..trials) of the same configuration.
  rng::Engine eng = rng::derive_stream(graph_seed, 0x67726170685f5f5fULL);

  const std::string& f = spec.family;
  if (f == "complete") return graph::complete(n);
  if (f == "star") return graph::star(n);
  if (f == "double_star") return graph::double_star(n);
  if (f == "path") return graph::path(n);
  if (f == "cycle") return graph::cycle(n);
  if (f == "wheel") return graph::wheel(n);
  if (f == "tree" || f == "complete_binary_tree") return graph::complete_binary_tree(n);
  if (f == "complete_bipartite") return graph::complete_bipartite(n / 2, n - n / 2);
  if (f == "torus") {
    const auto side = std::max<graph::NodeId>(
        2, static_cast<graph::NodeId>(std::llround(std::sqrt(static_cast<double>(n)))));
    return graph::torus(side);
  }
  if (f == "torus3d") {
    const auto side = std::max<graph::NodeId>(
        2, static_cast<graph::NodeId>(std::llround(std::cbrt(static_cast<double>(n)))));
    return graph::torus3d(side);
  }
  if (f == "hypercube") {
    const auto dim = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::llround(std::log2(static_cast<double>(n)))));
    return graph::hypercube(dim);
  }
  if (f == "erdos_renyi") {
    const double p =
        spec.p > 0.0 ? spec.p : 3.0 * std::log(static_cast<double>(n)) / static_cast<double>(n);
    return graph::largest_component(graph::erdos_renyi(n, p, eng));
  }
  if (f == "random_regular") {
    const std::uint32_t d = spec.degree != 0 ? spec.degree : 6;
    // The configuration model needs n*d even; round the odd case up so
    // size sweeps over arbitrary n stay valid (the actual n is reported).
    const graph::NodeId nn = (std::uint64_t{n} * d) % 2 == 0 ? n : n + 1;
    return graph::random_regular(nn, d, eng);
  }
  if (f == "chung_lu") {
    graph::ChungLuOptions options;
    options.beta = spec.beta;
    options.average_degree = spec.average_degree;
    return graph::largest_component(graph::chung_lu(n, options, eng));
  }
  if (f == "preferential_attachment") {
    return graph::preferential_attachment(n, spec.degree != 0 ? spec.degree : 3, eng);
  }
  if (f == "watts_strogatz") {
    std::uint32_t k = spec.degree != 0 ? spec.degree : 4;
    if (k % 2 != 0) ++k;  // the lattice needs an even k
    const double rewire = spec.p > 0.0 ? spec.p : 0.1;
    return graph::largest_component(graph::watts_strogatz(n, k, rewire, eng));
  }
  throw std::runtime_error("build_graph: unknown graph family '" + f + "'");
}

// --- The shared-queue scheduler ----------------------------------------------

namespace {

/// The configuration's dynamics spec with its seed resolved (0 = derive
/// from the configuration seed) — what views and reports actually use.
dynamics::DynamicsSpec resolved_dynamics(const CampaignConfig& cfg) noexcept {
  dynamics::DynamicsSpec spec = cfg.dynamics;
  if (spec.seed == 0) spec.seed = cfg.seed;
  return spec;
}

/// Folds one trial's probe counters plus its tick count (rounds for round
/// grids, events for time grids) and final informed count into the
/// configuration's exact contact totals. The tick definition mirrors what
/// run_one adds to WorkerMetrics, so the obs registry cross-check in
/// rumor_bench can compare the two sums exactly.
void fold_probe(stats::ContactTotals& totals, const core::SpreadProbe& probe,
                std::uint64_t ticks, std::uint64_t informed) noexcept {
  totals.contacts += probe.contacts;
  totals.useful_push += probe.useful_push;
  totals.useful_pull += probe.useful_pull;
  totals.wasted_push += probe.wasted_push;
  totals.wasted_pull += probe.wasted_pull;
  totals.empty_contacts += probe.empty_contacts;
  totals.ticks += ticks;
  totals.informed_total += informed;
}

/// One execution of the configured protocol from `source`; the campaign
/// analogue of the measure_* wrappers in harness.cpp. The trial engine is
/// derive_stream(stream_seed, trial); a non-static dynamics spec adds a
/// per-trial overlay view whose churn streams derive from the same
/// (stream_seed, trial) identity, so dynamic configurations keep the
/// bit-determinism contract across thread counts and block sizes.
///
/// Spread telemetry: when `curve_out` is non-null the trial runs with a
/// core::SpreadProbe attached (never changing its randomness or result),
/// `curve_out` receives the informed-count curve on the configuration's
/// native grid — per round for sync/quasirandom, per cfg.curves.time_bucket
/// for async — and the probe counters fold into `totals`.
double run_one(const CampaignConfig& cfg, const Graph& g,
               const dynamics::NeighborAliasTable* shared_weighted,
               const std::vector<graph::Edge>* shared_edges, graph::NodeId source,
               std::uint64_t stream_seed, std::uint64_t trial, obs::WorkerMetrics* metrics,
               std::vector<double>* curve_out = nullptr,
               stats::ContactTotals* totals = nullptr) {
  rng::Engine eng = rng::derive_stream(stream_seed, trial);
  std::optional<dynamics::DynamicGraphView> view;
  core::TrialOptions options;
  options.mode = cfg.mode;
  options.message_loss = cfg.message_loss;
  if (!cfg.dynamics.is_static()) {
    view.emplace(g, resolved_dynamics(cfg), shared_weighted, stream_seed, trial, shared_edges);
    options.dynamics = &*view;
  }
  core::SpreadProbe probe;
  if (curve_out != nullptr) {
    if (cfg.engine == EngineKind::kAux || cfg.engine == EngineKind::kBatchSync) {
      throw std::runtime_error(std::string("campaign: curves are not supported for engine '") +
                               engine_name(cfg.engine) + "'");
    }
    options.record_history = true;  // round grids; the async engine reports times regardless
    options.probe = &probe;
  }
  core::TrialExtras extras;
  extras.view = cfg.view;
  extras.aux = cfg.aux;
  const auto outcome = core::run_trial(cfg.engine, g, source, eng, options, extras);
  if (!outcome.completed) {
    throw std::runtime_error(std::string("campaign: engine '") + engine_name(cfg.engine) +
                             "' hit its tick cap (disconnected or churned-out graph?)");
  }
  if (metrics != nullptr) {
    if (cfg.engine == EngineKind::kAsync) {
      metrics->async_events += outcome.ticks;
    } else {
      metrics->sync_rounds += outcome.ticks;
    }
  }
  if (curve_out != nullptr) {
    if (cfg.engine == EngineKind::kAsync) {
      const auto curve =
          core::informed_time_curve(outcome.informed_time, cfg.curves.time_bucket);
      curve_out->assign(curve.begin(), curve.end());
    } else {
      curve_out->assign(outcome.informed_count_history.begin(),
                        outcome.informed_count_history.end());
    }
    fold_probe(*totals, probe, outcome.ticks, g.num_nodes());
  }
  return outcome.value;
}

/// The per-source stream family of the two-stage race (kept identical to
/// the historical sim/adversary scheme): candidate u's screening trial t
/// runs on derive_stream(seed + kSourceStride * u, t) and its refinement
/// trial on derive_stream(seed + 1 + kSourceStride * u, t).
constexpr std::uint64_t kSourceStride = 0x9e3779b9ULL;

/// What a scheduled block does. Fixed-source configurations only ever see
/// kTrials blocks. A race configuration starts as a single kPlan block
/// (build the graph, pick candidates, enqueue the screen pass); the last
/// kScreen block enqueues the refine pass; the last kRefine block picks the
/// worst source and publishes the result.
enum class BlockKind : std::uint8_t { kTrials, kPlan, kScreen, kRefine };

/// Trace span names per block kind (string literals: TraceSpan stores the
/// pointer) and the short phase labels the progress heartbeat shows.
constexpr const char* block_span_name(BlockKind k) noexcept {
  switch (k) {
    case BlockKind::kTrials: return "block:trials";
    case BlockKind::kPlan: return "block:plan";
    case BlockKind::kScreen: return "block:screen";
    case BlockKind::kRefine: return "block:refine";
  }
  return "block";
}

constexpr const char* block_phase_name(BlockKind k) noexcept {
  switch (k) {
    case BlockKind::kTrials: return "trials";
    case BlockKind::kPlan: return "plan";
    case BlockKind::kScreen: return "screen";
    case BlockKind::kRefine: return "refine";
  }
  return "?";
}

struct Block {
  std::size_t config = 0;   // index into `configs`
  BlockKind kind = BlockKind::kTrials;
  std::uint32_t entrant = 0;  // candidate (kScreen) / finalist (kRefine) index
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::size_t slot = 0;     // block ordinal within its (config, phase, entrant)
};

/// Degree-stratified candidate list: sort nodes by degree and take every
/// k-th, guaranteeing the extremes are included. Spreading-time extremes
/// correlate strongly with degree (peripheral low-degree nodes are slow
/// sources), so stratification loses little versus screening everything.
std::vector<graph::NodeId> candidate_sources(const Graph& g, std::uint32_t max_candidates) {
  const graph::NodeId n = g.num_nodes();
  std::vector<graph::NodeId> order(n);
  std::iota(order.begin(), order.end(), graph::NodeId{0});
  if (max_candidates == 0 || n <= max_candidates) return order;
  std::sort(order.begin(), order.end(),
            [&](graph::NodeId a, graph::NodeId b) { return g.degree(a) < g.degree(b); });
  // A single-candidate race keeps the min-degree node (the best worst-source
  // guess); it also keeps the stride below finite.
  if (max_candidates == 1) return {order.front()};
  std::vector<graph::NodeId> picked;
  picked.reserve(max_candidates);
  const double stride = static_cast<double>(n - 1) / (max_candidates - 1);
  for (std::uint32_t i = 0; i < max_candidates; ++i) {
    picked.push_back(order[static_cast<std::size_t>(i * stride)]);
  }
  return picked;
}

/// Mutable per-configuration scheduling state. Partials are indexed by
/// block slot and merged in slot order by whichever worker finishes the
/// last block of a pass — a fixed-order reduction tree, so the final
/// summary does not depend on completion order or thread count.
struct ConfigState {
  std::once_flag build_once;
  std::shared_ptr<const Graph> graph;
  /// Static-weights fast path: one alias sampler per configuration, built
  /// alongside the graph and shared (read-only) by every trial. Null when
  /// the config is unweighted or churned (churn overlays build their own
  /// per-epoch tables).
  std::shared_ptr<const dynamics::NeighborAliasTable> weighted;
  /// Churn configs: the base edge list, extracted once per configuration
  /// and shared read-only by every trial's overlay view.
  std::shared_ptr<const std::vector<graph::Edge>> edges;
  // Fixed-source pass (also the refine pass reuses refine_* below).
  std::vector<stats::StreamingSummary> partials;
  /// Spread telemetry (cfg.curves.enabled only): per-slot curve and
  /// contact partials, parallel to `partials` and folded in the same slot
  /// order by the same last-block worker.
  std::vector<stats::CurveAccumulator> curve_partials;
  std::vector<stats::ContactTotals> contact_partials;
  std::atomic<std::uint64_t> blocks_left{0};
  // Race state, populated by the kPlan block.
  std::vector<graph::NodeId> candidates;
  std::vector<std::vector<stats::RunningMoments>> screen_partials;  // [candidate][slot]
  std::atomic<std::uint64_t> screen_left{0};
  std::vector<graph::NodeId> finalists;
  std::vector<std::vector<stats::StreamingSummary>> refine_partials;  // [finalist][slot]
  std::atomic<std::uint64_t> refine_left{0};
};

/// The shared work queue. Unlike a fixed block list with an atomic cursor,
/// race configurations *append* blocks while the campaign runs (screen
/// after plan, refine after screen), so the queue tracks how many pushed
/// blocks have not finished yet: workers exit when the queue is empty AND
/// nothing is in flight (an in-flight block may still push successors).
class BlockQueue {
 public:
  /// `tel` may be null (telemetry disabled). The queue's own mutex
  /// serializes the telemetry's queue-side hooks (scheduling counter and
  /// depth histogram) — no extra synchronization inside the telemetry.
  explicit BlockQueue(obs::Telemetry* tel) noexcept : tel_(tel) {}

  void push(std::vector<Block> blocks) {
    {
      const std::scoped_lock lock(mutex_);
      outstanding_ += blocks.size();
      for (Block& b : blocks) queue_.push_back(b);
      if (tel_ != nullptr) tel_->on_blocks_scheduled(blocks.size());
    }
    cv_.notify_all();
  }

  /// Blocks until work is available or the campaign is finished/aborted.
  /// Returns false when the worker should exit.
  bool pop(Block& out) {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return aborted_ || !queue_.empty() || outstanding_ == 0; });
    if (aborted_ || queue_.empty()) return false;
    out = queue_.front();
    queue_.pop_front();
    if (tel_ != nullptr) tel_->sample_queue_depth(queue_.size());
    return true;
  }

  /// Marks one popped block as finished (after any successor pushes).
  void finish_one() {
    bool drained = false;
    {
      const std::scoped_lock lock(mutex_);
      drained = --outstanding_ == 0;
    }
    if (drained) cv_.notify_all();
  }

  void abort() {
    {
      const std::scoped_lock lock(mutex_);
      aborted_ = true;
      outstanding_ -= queue_.size();
      queue_.clear();
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Block> queue_;
  std::size_t outstanding_ = 0;  // queued + currently processing
  bool aborted_ = false;
  obs::Telemetry* tel_;  // borrowed; hooks called under mutex_
};

/// Splits `trials` into block_size'd slots appended as (kind, entrant)
/// blocks for `config`.
void plan_blocks(std::vector<Block>& out, std::size_t config, BlockKind kind,
                 std::uint32_t entrant, std::uint64_t trials, std::uint64_t block_size) {
  std::size_t slot = 0;
  for (std::uint64_t begin = 0; begin < trials; begin += block_size) {
    out.push_back(Block{config, kind, entrant, begin, std::min(begin + block_size, trials), slot++});
  }
}

/// One specific slot's block (resume re-enqueues only the missing slots).
Block block_for_slot(std::size_t config, BlockKind kind, std::uint32_t entrant,
                     std::uint64_t trials, std::uint64_t block_size, std::size_t slot) {
  const std::uint64_t begin = static_cast<std::uint64_t>(slot) * block_size;
  return Block{config, kind, entrant, begin, std::min(begin + block_size, trials), slot};
}

std::size_t slot_count(std::uint64_t trials, std::uint64_t block_size) {
  return static_cast<std::size_t>((trials + block_size - 1) / block_size);
}

}  // namespace

CampaignResult campaign_result_skeleton(const CampaignConfig& cfg, std::size_t index) {
  CampaignResult r;
  r.id = resolved_config_id(cfg, index);
  if (cfg.trials == 0) {
    throw std::runtime_error("campaign: configuration '" + r.id + "' has trials == 0");
  }
  r.engine = engine_name(cfg.engine);
  r.mode = core::mode_name(cfg.mode);
  if (cfg.engine == EngineKind::kBatchSync) r.lanes = cfg.lanes;
  r.seed = cfg.seed;
  r.source = cfg.source;
  r.source_policy = cfg.source_policy;
  r.dynamics = resolved_dynamics(cfg);
  const std::uint64_t measured_trials =
      cfg.source_policy == SourcePolicy::kRace && cfg.race.final_trials != 0
          ? cfg.race.final_trials
          : cfg.trials;
  r.trials = measured_trials;
  r.hp_q = cfg.hp_q > 0.0 ? cfg.hp_q : 1.0 / static_cast<double>(measured_trials);
  r.has_curves = cfg.curves.enabled;
  r.curves_spec = cfg.curves;
  return r;
}

namespace {

/// The scheduler core behind run_campaign and run_campaign_resumable.
/// `recording` switches on the snapshot layer (checkpoints, shards,
/// resume); without it the scheduler is the original zero-overhead path.
CampaignOutcome run_campaign_impl(const std::vector<CampaignConfig>& configs,
                                  const CampaignOptions& options,
                                  const std::string& campaign_name, const Json* resume,
                                  bool recording) {
  const std::uint64_t block_size = std::max<std::uint64_t>(options.block_size, 1);
  const std::uint32_t shard_count = std::max<std::uint32_t>(options.shard_count, 1);
  if (options.shard_index < 1 || options.shard_index > shard_count) {
    throw std::runtime_error("campaign: shard index " + std::to_string(options.shard_index) +
                             " out of range 1.." + std::to_string(shard_count));
  }
  const std::uint32_t shard = options.shard_index - 1;  // 0-based internally

  std::unique_ptr<CampaignRecorder> recorder;
  if (recording) {
    // Snapshots address configurations by id, so recorded campaigns need
    // unique ids (the spec parser already rejects collisions; this guards
    // API callers handing in configs directly).
    std::map<std::string, std::size_t> seen;
    for (std::size_t c = 0; c < configs.size(); ++c) {
      const auto [it, inserted] = seen.emplace(resolved_config_id(configs[c], c), c);
      if (!inserted) {
        throw std::runtime_error("campaign: configurations " + std::to_string(it->second) +
                                 " and " + std::to_string(c) + " share the id '" + it->first +
                                 "' (checkpoints and shards address configs by id)");
      }
    }
    recorder = std::make_unique<CampaignRecorder>(configs, options, campaign_name);
  }
  std::vector<CampaignRecorder::Restored> restored(configs.size());
  if (resume != nullptr) restored = recorder->load(*resume);

  auto summary_opts = [&](const CampaignConfig& cfg) {
    return summary_options_for(cfg, options.sketch_capacity, options.reservoir_capacity);
  };
  auto curve_opts = [&](const CampaignConfig& cfg) {
    return curve_options_for(cfg, options.sketch_capacity);
  };

  std::vector<Block> initial;
  std::vector<ConfigState> states(configs.size());
  std::vector<CampaignResult> results(configs.size());
  // finalize_here[c]: this run folds the configuration's partials into its
  // final result (it owns every block). A sharded run leaves foreign or
  // split configurations to merge_campaign_snapshots.
  std::vector<char> finalize_here(configs.size(), 1);
  // For the worker-count heuristic only: a generous upper bound on how many
  // blocks the campaign can ever schedule (race passes expand lazily).
  std::size_t block_estimate = 0;
  for (std::size_t c = 0; c < configs.size(); ++c) {
    const CampaignConfig& cfg = configs[c];
    results[c] = campaign_result_skeleton(cfg, c);
    CampaignResult& r = results[c];
    if (!cfg.dynamics.is_static()) {
      // Validate here (not in run_one, where a worker thread would race to
      // report it) so API callers get the same guarantees the spec parser
      // enforces. The engines only support dynamics where the contact
      // sequence is drawn against the live adjacency.
      if (cfg.engine != EngineKind::kSync && cfg.engine != EngineKind::kAsync) {
        throw std::runtime_error("campaign: configuration '" + r.id +
                                 "' has dynamics but engine '" + engine_name(cfg.engine) +
                                 "' (dynamics needs sync or async)");
      }
      if (cfg.engine == EngineKind::kAsync && cfg.view != core::AsyncView::kGlobalClock) {
        throw std::runtime_error("campaign: configuration '" + r.id +
                                 "' has dynamics but a non-global-clock async view");
      }
      const dynamics::ChurnParams& churn = cfg.dynamics.churn;
      const bool churn_probs_ok =
          churn.model != dynamics::ChurnModel::kMarkov ||
          (churn.birth >= 0.0 && churn.birth <= 1.0 && churn.death >= 0.0 && churn.death <= 1.0);
      const bool rewire_ok = churn.model != dynamics::ChurnModel::kRewire ||
                             (churn.rewire >= 0.0 && churn.rewire <= 1.0);
      if (!churn_probs_ok || !rewire_ok || churn.period == 0 ||
          cfg.dynamics.weights.alpha <= 0.0) {
        throw std::runtime_error("campaign: configuration '" + r.id +
                                 "' has out-of-range dynamics parameters");
      }
    }
    if (cfg.engine == EngineKind::kBatchSync) {
      // Same guarantees the spec parser enforces, for API callers handing
      // in configs directly: the batch engine has no per-trial telemetry or
      // per-source stream family, so races, curves, and dynamics are out.
      if (cfg.lanes == 0 || cfg.lanes > core::kMaxBatchLanes) {
        throw std::runtime_error("campaign: configuration '" + r.id + "' has lanes " +
                                 std::to_string(cfg.lanes) + " outside 1.." +
                                 std::to_string(core::kMaxBatchLanes));
      }
      if (cfg.source_policy == SourcePolicy::kRace) {
        throw std::runtime_error("campaign: configuration '" + r.id +
                                 "' races sources but engine 'batch_sync' batches trials "
                                 "per stream (use engine 'sync' for races)");
      }
    }
    if (cfg.curves.enabled) {
      // Same guarantees the spec parser enforces, for API callers handing
      // in configs directly.
      if (cfg.engine == EngineKind::kAux || cfg.engine == EngineKind::kBatchSync) {
        throw std::runtime_error("campaign: configuration '" + r.id +
                                 "' requests curves but engine '" + engine_name(cfg.engine) +
                                 "' has no per-trial contact structure");
      }
      if (cfg.source_policy == SourcePolicy::kRace) {
        throw std::runtime_error("campaign: configuration '" + r.id +
                                 "' requests curves with a raced source (curves need a fixed "
                                 "source)");
      }
      if (cfg.curves.points == 0) {
        throw std::runtime_error("campaign: configuration '" + r.id +
                                 "' has curves.points == 0");
      }
      if (cfg.engine == EngineKind::kAsync && !(cfg.curves.time_bucket > 0.0)) {
        throw std::runtime_error("campaign: configuration '" + r.id +
                                 "' has curves.time_bucket <= 0");
      }
    }
    if (cfg.source_policy == SourcePolicy::kRace) {
      if (cfg.race.screen_trials == 0 || cfg.race.finalists == 0) {
        throw std::runtime_error("campaign: race configuration '" + r.id +
                                 "' needs screen_trials >= 1 and finalists >= 1");
      }
      const std::uint64_t final_trials =
          cfg.race.final_trials != 0 ? cfg.race.final_trials : cfg.trials;
      const std::size_t cand_bound = cfg.race.max_candidates != 0
                                         ? cfg.race.max_candidates
                                         : (cfg.prebuilt != nullptr ? cfg.prebuilt->num_nodes()
                                                                    : cfg.graph.n);
      block_estimate += 1 + cand_bound * (cfg.race.screen_trials / block_size + 1) +
                        cfg.race.finalists * (final_trials / block_size + 1);
      // Races are owned wholesale by one shard, so the screen/refine
      // successors of the plan block always stay with their owner.
      finalize_here[c] =
          shard_of_block(r.id, 0, /*whole_config=*/true, shard_count) == shard ? 1 : 0;
      if (finalize_here[c] == 0) continue;
      ConfigState& st = states[c];
      CampaignRecorder::Restored& rest = restored[c];
      using Phase = CampaignRecorder::Restored::Phase;
      switch (rest.phase) {
        case Phase::kPending:
        case Phase::kTrials:  // load() never reports kTrials for a race
          initial.push_back(Block{c, BlockKind::kPlan, 0, 0, 0, 0});
          break;
        case Phase::kScreen: {
          st.candidates = std::move(rest.candidates);
          const auto count = static_cast<std::uint32_t>(st.candidates.size());
          const std::size_t slots = slot_count(cfg.race.screen_trials, block_size);
          st.screen_partials.assign(count, {});
          for (auto& per : st.screen_partials) per.resize(slots);
          std::set<std::pair<std::uint32_t, std::size_t>> have;
          for (const auto& [entrant, slot, state] : rest.screen_slots) {
            st.screen_partials[entrant][slot].restore(state);
            have.emplace(entrant, slot);
          }
          std::vector<Block> missing;
          for (std::uint32_t i = 0; i < count; ++i) {
            for (std::size_t s = 0; s < slots; ++s) {
              if (have.count({i, s}) == 0) {
                missing.push_back(block_for_slot(c, BlockKind::kScreen, i,
                                                 cfg.race.screen_trials, block_size, s));
              }
            }
          }
          if (missing.empty()) {
            // Snapshot fell between the pass's last block and its hand-off:
            // re-run one restored block to re-trigger the fold (recording is
            // idempotent and re-running a block is bit-neutral).
            const auto [i, s] = *have.rbegin();
            missing.push_back(
                block_for_slot(c, BlockKind::kScreen, i, cfg.race.screen_trials, block_size, s));
          }
          st.screen_left.store(missing.size(), std::memory_order_relaxed);
          initial.insert(initial.end(), missing.begin(), missing.end());
          break;
        }
        case Phase::kRefine: {
          st.finalists = std::move(rest.finalists);
          const auto count = static_cast<std::uint32_t>(st.finalists.size());
          const std::size_t slots = slot_count(final_trials, block_size);
          st.refine_partials.assign(count, {});
          for (auto& per : st.refine_partials) per.resize(slots);
          std::set<std::pair<std::uint32_t, std::size_t>> have;
          for (const auto& [entrant, slot, state] : rest.refine_slots) {
            st.refine_partials[entrant][slot] =
                stats::StreamingSummary::restored(summary_opts(cfg), state);
            have.emplace(entrant, slot);
          }
          std::vector<Block> missing;
          for (std::uint32_t i = 0; i < count; ++i) {
            for (std::size_t s = 0; s < slots; ++s) {
              if (have.count({i, s}) == 0) {
                missing.push_back(
                    block_for_slot(c, BlockKind::kRefine, i, final_trials, block_size, s));
              }
            }
          }
          if (missing.empty()) {
            const auto [i, s] = *have.rbegin();
            missing.push_back(block_for_slot(c, BlockKind::kRefine, i, final_trials, block_size, s));
          }
          st.refine_left.store(missing.size(), std::memory_order_relaxed);
          initial.insert(initial.end(), missing.begin(), missing.end());
          break;
        }
        case Phase::kDone:
          r.graph_name = rest.graph_name;
          r.n = rest.n;
          r.source = rest.source;
          r.best_source = rest.best_source;
          r.best_mean = rest.best_mean;
          r.summary = stats::StreamingSummary::restored(summary_opts(cfg), rest.summary);
          break;
      }
    } else {
      ConfigState& st = states[c];
      CampaignRecorder::Restored& rest = restored[c];
      using Phase = CampaignRecorder::Restored::Phase;
      if (rest.phase == Phase::kDone) {
        r.graph_name = rest.graph_name;
        r.n = rest.n;
        r.summary = stats::StreamingSummary::restored(summary_opts(cfg), rest.summary);
        if (cfg.curves.enabled) {
          r.curves = stats::CurveAccumulator::restored(curve_opts(cfg), rest.curves);
          r.contacts = rest.contacts;
        }
        continue;
      }
      // Batch configs pin the slot grid to the lane width (a trial block IS
      // one lane batch), so slot boundaries stay a pure function of the
      // config — never of --block-size — and checkpoints stay addressable.
      const std::uint64_t cfg_block = effective_block_size(cfg, block_size);
      const std::size_t slots = slot_count(cfg.trials, cfg_block);
      st.partials.resize(slots);
      if (cfg.curves.enabled) {
        st.curve_partials.resize(slots);
        st.contact_partials.resize(slots);
      }
      std::vector<char> done_slot(slots, 0);
      for (const auto& [slot, state] : rest.trial_slots) {
        st.partials[slot] = stats::StreamingSummary::restored(summary_opts(cfg), state);
        done_slot[slot] = 1;
      }
      for (const auto& [slot, state, totals] : rest.curve_slots) {
        st.curve_partials[slot] = stats::CurveAccumulator::restored(curve_opts(cfg), state);
        st.contact_partials[slot] = totals;
      }
      std::size_t owned = 0;
      std::vector<Block> missing;
      for (std::size_t s = 0; s < slots; ++s) {
        if (shard_of_block(r.id, s, /*whole_config=*/false, shard_count) != shard) continue;
        ++owned;
        if (done_slot[s] == 0) {
          missing.push_back(block_for_slot(c, BlockKind::kTrials, 0, cfg.trials, cfg_block, s));
        }
      }
      finalize_here[c] = owned == slots ? 1 : 0;
      if (finalize_here[c] != 0 && missing.empty()) {
        // Every block was restored but the snapshot predates the final fold:
        // re-run the highest slot to re-trigger it (bit-neutral).
        missing.push_back(
            block_for_slot(c, BlockKind::kTrials, 0, cfg.trials, cfg_block, slots - 1));
      }
      st.blocks_left.store(missing.size(), std::memory_order_relaxed);
      block_estimate += missing.size();
      initial.insert(initial.end(), missing.begin(), missing.end());
    }
  }

  unsigned workers = options.threads != 0 ? options.threads : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  workers = static_cast<unsigned>(std::min<std::size_t>(workers, block_estimate));

  // Telemetry is strictly observational: every hook below sits behind an
  // `if (tel)` (or a sink pointer), so a null sink is the exact pre-existing
  // code path and attached telemetry never influences scheduling decisions.
  obs::Telemetry* const tel = options.telemetry;
  if (tel != nullptr) {
    std::vector<std::string> ids;
    ids.reserve(results.size());
    for (const CampaignResult& r : results) ids.push_back(r.id);
    tel->begin(std::move(ids), std::max(workers, 1u),
               options.telemetry_label.empty() ? campaign_name : options.telemetry_label);
  }

  BlockQueue queue(tel);
  std::exception_ptr error;
  std::mutex error_mutex;

  auto resolved_final_trials = [](const CampaignConfig& cfg) {
    return cfg.race.final_trials != 0 ? cfg.race.final_trials : cfg.trials;
  };

  // Shared read-only graph cache for file-backed configs: every config
  // naming the same packed store shares one mmap for the whole campaign (the
  // OS page cache extends the sharing across --shard processes), so N cells
  // over one giant graph materialize it once — graph_builds records 1, not N.
  std::mutex file_graph_mutex;
  std::map<std::string, std::shared_ptr<const Graph>> file_graphs;

  auto build_graph_once = [&](std::size_t c, obs::WorkerSink* sink) {
    const CampaignConfig& cfg = configs[c];
    ConfigState& st = states[c];
    // Lazy one-shot graph construction on whichever worker gets there
    // first; prebuilt graphs are shared as-is. call_once re-runs on a later
    // caller if the builder throws, but the error capture below drains the
    // queue before that matters.
    std::call_once(st.build_once, [&] {
      const std::uint64_t build_begin = sink != nullptr ? sink->now_ns() : 0;
      bool opened_store = false;
      if (cfg.prebuilt != nullptr) {
        st.graph = cfg.prebuilt;
      } else if (cfg.graph.family == "file") {
        // Open under the cache lock: a concurrent config wanting the same
        // store waits for the first mapping instead of opening its own.
        const std::lock_guard<std::mutex> lock(file_graph_mutex);
        auto it = file_graphs.find(cfg.graph.path);
        if (it == file_graphs.end()) {
          auto g = std::make_shared<const Graph>(graph::open_graph_store(cfg.graph.path));
          it = file_graphs.emplace(cfg.graph.path, std::move(g)).first;
          opened_store = true;
        }
        st.graph = it->second;
      } else {
        st.graph = std::make_shared<const Graph>(build_graph(cfg.graph, cfg.seed));
      }
      // Snapshot the built graph's identity: merge needs it to assemble
      // results for configurations whose blocks were split across shards.
      if (recorder != nullptr) recorder->record_graph(c, st.graph->name(), st.graph->num_nodes());
      if (cfg.dynamics.weights.model != dynamics::WeightModel::kNone &&
          cfg.dynamics.churn.model == dynamics::ChurnModel::kNone) {
        const dynamics::DynamicsSpec spec = resolved_dynamics(cfg);
        auto sampler = std::make_shared<dynamics::NeighborAliasTable>();
        sampler->build(dynamics::csr_offsets(*st.graph),
                       dynamics::make_edge_weights(*st.graph, spec.weights, spec.seed));
        st.weighted = std::move(sampler);
      }
      if (cfg.dynamics.churn.model != dynamics::ChurnModel::kNone) {
        st.edges = std::make_shared<const std::vector<graph::Edge>>(
            dynamics::base_edge_list(*st.graph));
      }
      if (sink != nullptr) {
        // File-backed configs that hit the cache did not materialize
        // anything: graph_builds counts mappings/constructions, so N cells
        // sharing one store contribute exactly one build (the issue's
        // "materialized once, not N times" acceptance check).
        if (cfg.graph.family != "file" || opened_store) sink->metrics.graph_builds += 1;
        sink->span("graph:build", build_begin, sink->now_ns(),
                   static_cast<std::uint32_t>(c));
      }
    });
  };

  // Block bodies. Each may push successor blocks onto the queue; partials
  // always land in their slot, and every cross-pass hand-off happens on the
  // worker that decrements the pass counter to zero — a deterministic
  // reduction no matter which threads ran which blocks.
  auto process_block = [&](const Block& block, obs::WorkerSink* sink) {
    const CampaignConfig& cfg = configs[block.config];
    ConfigState& st = states[block.config];
    CampaignResult& r = results[block.config];
    obs::WorkerMetrics* const metrics = sink != nullptr ? &sink->metrics : nullptr;
    build_graph_once(block.config, sink);
    const Graph& g = *st.graph;

    switch (block.kind) {
      case BlockKind::kTrials: {
        // The engines only assert() this precondition, which compiles out in
        // Release — and spec-driven sources are user input, so check it here.
        if (cfg.source >= g.num_nodes()) {
          throw std::runtime_error("campaign: configuration '" + r.id + "' source " +
                                   std::to_string(cfg.source) + " is out of range for " +
                                   g.name());
        }
        const bool curves_on = cfg.curves.enabled;
        stats::StreamingSummary partial(summary_opts(cfg));
        stats::CurveAccumulator curve_partial(curves_on ? curve_opts(cfg)
                                                        : stats::CurveAccumulator::Options{});
        stats::ContactTotals contact_partial;
        std::vector<double> curve;
        if (cfg.engine == EngineKind::kBatchSync) {
          // One block = one lane batch on one shared engine, seeded by the
          // block's first trial index — the batch analogue of run_one's
          // derive_stream(seed, t) identity. effective_block_size pinned
          // the slot grid to cfg.lanes, so lane l of this block is trial
          // block.begin + l under every thread count, shard split, and
          // resume.
          core::BatchSyncOptions batch_options;
          batch_options.mode = cfg.mode;
          batch_options.message_loss = cfg.message_loss;
          batch_options.lanes = static_cast<std::uint32_t>(block.end - block.begin);
          rng::Engine eng = rng::derive_stream(cfg.seed, block.begin);
          const core::BatchSyncResult batch = core::run_batch_sync(g, cfg.source, eng,
                                                                   batch_options);
          if (!batch.completed) {
            throw std::runtime_error(
                "campaign: engine 'batch_sync' hit its round cap (disconnected graph?)");
          }
          for (std::uint32_t l = 0; l < batch.lanes; ++l) {
            partial.add(static_cast<double>(batch.rounds[l]), block.begin + l);
          }
          if (metrics != nullptr) metrics->sync_rounds += batch.total_rounds;
        } else {
          for (std::uint64_t t = block.begin; t < block.end; ++t) {
            partial.add(run_one(cfg, g, st.weighted.get(), st.edges.get(), cfg.source, cfg.seed,
                                t, metrics, curves_on ? &curve : nullptr,
                                curves_on ? &contact_partial : nullptr),
                        t);
            if (curves_on) curve_partial.add(curve);
          }
        }
        st.partials[block.slot] = std::move(partial);
        if (curves_on) {
          st.curve_partials[block.slot] = std::move(curve_partial);
          st.contact_partials[block.slot] = contact_partial;
        }
        if (recorder != nullptr) {
          recorder->record_trial_slot(block.config, block.slot, st.partials[block.slot],
                                      curves_on ? &st.curve_partials[block.slot] : nullptr,
                                      curves_on ? &st.contact_partials[block.slot] : nullptr);
        }
        if (st.blocks_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          // Last owned block of this configuration: fold partials in slot
          // order (when this run owns every slot) and release the graph and
          // per-block state — from here on the configuration occupies only
          // its constant-size summary.
          if (finalize_here[block.config] != 0) {
            const std::uint64_t merge_begin = sink != nullptr ? sink->now_ns() : 0;
            stats::StreamingSummary total = std::move(st.partials.front());
            for (std::size_t s = 1; s < st.partials.size(); ++s) total.merge(st.partials[s]);
            if (curves_on) {
              stats::CurveAccumulator curve_total = std::move(st.curve_partials.front());
              stats::ContactTotals contact_total = st.contact_partials.front();
              for (std::size_t s = 1; s < st.curve_partials.size(); ++s) {
                curve_total.merge(st.curve_partials[s]);
                contact_total.merge(st.contact_partials[s]);
              }
              r.curves = std::move(curve_total);
              r.contacts = contact_total;
            }
            r.graph_name = g.name();
            r.n = g.num_nodes();
            r.summary = std::move(total);
            if (sink != nullptr) {
              sink->span("merge", merge_begin, sink->now_ns(),
                         static_cast<std::uint32_t>(block.config));
            }
            if (recorder != nullptr) recorder->record_done(block.config, r);
          }
          st.partials.clear();
          st.partials.shrink_to_fit();
          st.curve_partials.clear();
          st.curve_partials.shrink_to_fit();
          st.contact_partials.clear();
          st.contact_partials.shrink_to_fit();
          st.graph.reset();
          st.weighted.reset();
          st.edges.reset();
          // File-backed graphs are not freed here: the campaign's shared
          // cache keeps the one mapping alive until the run ends, so only
          // per-config owned graphs count as frees.
          if (metrics != nullptr && (cfg.prebuilt != nullptr || cfg.graph.family != "file")) {
            metrics->graph_frees += 1;
          }
        }
        break;
      }
      case BlockKind::kPlan: {
        st.candidates = candidate_sources(g, cfg.race.max_candidates);
        const std::uint32_t count = static_cast<std::uint32_t>(st.candidates.size());
        st.screen_partials.assign(count, {});
        std::vector<Block> screen;
        for (std::uint32_t i = 0; i < count; ++i) {
          const std::size_t before = screen.size();
          plan_blocks(screen, block.config, BlockKind::kScreen, i, cfg.race.screen_trials,
                      block_size);
          st.screen_partials[i].resize(screen.size() - before);
        }
        // Recorded before the screen blocks can run, so no snapshot ever
        // holds screen partials without the candidate list they index.
        if (recorder != nullptr) recorder->record_plan(block.config, st.candidates);
        st.screen_left.store(screen.size(), std::memory_order_relaxed);
        queue.push(std::move(screen));
        break;
      }
      case BlockKind::kScreen: {
        const graph::NodeId u = st.candidates[block.entrant];
        stats::RunningMoments partial;
        const std::uint64_t stream_seed = cfg.seed + kSourceStride * u;
        for (std::uint64_t t = block.begin; t < block.end; ++t) {
          partial.add(run_one(cfg, g, st.weighted.get(), st.edges.get(), u, stream_seed, t,
                              metrics));
        }
        st.screen_partials[block.entrant][block.slot] = partial;
        if (recorder != nullptr) {
          recorder->record_screen_slot(block.config, block.entrant, block.slot, partial);
        }
        if (st.screen_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          // Screening complete: rank candidates by mean (descending, node id
          // as the deterministic tie-break) and enqueue the refine pass for
          // the leaders.
          std::vector<std::pair<double, graph::NodeId>> screened;
          screened.reserve(st.candidates.size());
          for (std::size_t i = 0; i < st.candidates.size(); ++i) {
            stats::RunningMoments total = st.screen_partials[i].front();
            for (std::size_t s = 1; s < st.screen_partials[i].size(); ++s) {
              total.merge(st.screen_partials[i][s]);
            }
            screened.emplace_back(total.mean(), st.candidates[i]);
          }
          std::sort(screened.begin(), screened.end(), std::greater<>());
          const std::uint32_t finalists = std::min<std::uint32_t>(
              cfg.race.finalists, static_cast<std::uint32_t>(screened.size()));
          st.finalists.clear();
          for (std::uint32_t i = 0; i < finalists; ++i) st.finalists.push_back(screened[i].second);
          st.screen_partials.clear();
          st.screen_partials.shrink_to_fit();

          const std::uint64_t final_trials = resolved_final_trials(cfg);
          st.refine_partials.assign(finalists, {});
          std::vector<Block> refine;
          for (std::uint32_t i = 0; i < finalists; ++i) {
            const std::size_t before = refine.size();
            plan_blocks(refine, block.config, BlockKind::kRefine, i, final_trials, block_size);
            st.refine_partials[i].resize(refine.size() - before);
          }
          // As with record_plan: finalists land in the snapshot before any
          // refine partial can reference them.
          if (recorder != nullptr) recorder->record_finalists(block.config, st.finalists);
          st.refine_left.store(refine.size(), std::memory_order_relaxed);
          queue.push(std::move(refine));
        }
        break;
      }
      case BlockKind::kRefine: {
        const graph::NodeId u = st.finalists[block.entrant];
        stats::StreamingSummary partial(summary_opts(cfg));
        const std::uint64_t stream_seed = cfg.seed + 1 + kSourceStride * u;
        for (std::uint64_t t = block.begin; t < block.end; ++t) {
          partial.add(run_one(cfg, g, st.weighted.get(), st.edges.get(), u, stream_seed, t,
                              metrics),
                      t);
        }
        st.refine_partials[block.entrant][block.slot] = std::move(partial);
        if (recorder != nullptr) {
          recorder->record_refine_slot(block.config, block.entrant, block.slot,
                                       st.refine_partials[block.entrant][block.slot]);
        }
        if (st.refine_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          // Refinement complete: fold each finalist in slot order, keep the
          // worst finalist's full summary as the configuration's result
          // (first-seen wins ties, matching the historical adversary scan).
          const std::uint64_t merge_begin = sink != nullptr ? sink->now_ns() : 0;
          bool first = true;
          for (std::size_t i = 0; i < st.finalists.size(); ++i) {
            stats::StreamingSummary total = std::move(st.refine_partials[i].front());
            for (std::size_t s = 1; s < st.refine_partials[i].size(); ++s) {
              total.merge(st.refine_partials[i][s]);
            }
            const double mean = total.mean();
            if (first || mean > r.summary.mean()) {
              r.source = st.finalists[i];
              r.summary = std::move(total);
            }
            if (first || mean < r.best_mean) {
              r.best_source = st.finalists[i];
              r.best_mean = mean;
            }
            first = false;
          }
          r.graph_name = g.name();
          r.n = g.num_nodes();
          if (sink != nullptr) {
            sink->span("merge", merge_begin, sink->now_ns(),
                       static_cast<std::uint32_t>(block.config));
          }
          if (recorder != nullptr) recorder->record_done(block.config, r);
          st.refine_partials.clear();
          st.refine_partials.shrink_to_fit();
          st.finalists.clear();
          st.candidates.clear();
          st.graph.reset();
          st.weighted.reset();
          st.edges.reset();
          // File-backed graphs are not freed here: the campaign's shared
          // cache keeps the one mapping alive until the run ends, so only
          // per-config owned graphs count as frees.
          if (metrics != nullptr && (cfg.prebuilt != nullptr || cfg.graph.family != "file")) {
            metrics->graph_frees += 1;
          }
        }
        break;
      }
    }
  };

  queue.push(std::move(initial));

  std::atomic<bool> stopped{false};

  auto worker = [&](unsigned wid) {
    obs::WorkerSink* const sink = tel != nullptr ? &tel->sink(wid) : nullptr;
    std::uint64_t wait_begin = sink != nullptr ? sink->now_ns() : 0;
    Block block;
    while (queue.pop(block)) {
      const std::uint64_t started = sink != nullptr ? sink->now_ns() : 0;
      if (sink != nullptr) sink->metrics.idle_ns += started - wait_begin;
      if (tel != nullptr) tel->set_phase(block_phase_name(block.kind));
      bool ok = false;
      try {
        process_block(block, sink);
        ok = true;
        if (recorder != nullptr && recorder->block_finished()) {
          // stop_after_blocks budget exhausted: drain the queue; in-flight
          // blocks still finish and record, so the final checkpoint below
          // loses nothing that was computed.
          stopped.store(true, std::memory_order_relaxed);
          queue.abort();
        }
      } catch (...) {
        {
          const std::scoped_lock lock(error_mutex);
          if (!error) error = std::current_exception();
        }
        queue.abort();
      }
      queue.finish_one();
      if (sink != nullptr) {
        const std::uint64_t finished = sink->now_ns();
        sink->metrics.busy_ns += finished - started;
        if (ok) {
          // Exact counters count *successful* blocks only; kPlan blocks have
          // begin == end, so trial attribution is uniform across kinds.
          sink->metrics.blocks_executed += 1;
          sink->metrics.trials_simulated += block.end - block.begin;
          obs::ConfigCost& cost = sink->per_config[block.config];
          cost.blocks += 1;
          cost.trials += block.end - block.begin;
          cost.busy_ns += finished - started;
          sink->span(block_span_name(block.kind), started, finished,
                     static_cast<std::uint32_t>(block.config),
                     static_cast<std::int64_t>(block.slot));
        }
        wait_begin = finished;
      }
      if (ok && tel != nullptr) tel->on_block_done();
    }
    if (sink != nullptr) sink->metrics.idle_ns += sink->now_ns() - wait_begin;
  };

  if (workers <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) pool.emplace_back(worker, i);
    for (auto& th : pool) th.join();
  }
  if (error) {
    if (tel != nullptr) tel->end();
    std::rethrow_exception(error);
  }

  CampaignOutcome outcome;
  outcome.results = std::move(results);
  outcome.complete = !stopped.load(std::memory_order_relaxed);
  if (recorder != nullptr) {
    outcome.blocks_done = recorder->blocks_done();
    outcome.snapshot = recorder->snapshot(outcome.complete);
    if (!options.checkpoint_file.empty()) recorder->write_checkpoint(outcome.complete);
  }
  if (tel != nullptr) tel->end();
  return outcome;
}

}  // namespace

std::vector<CampaignResult> run_campaign(const std::vector<CampaignConfig>& configs,
                                         const CampaignOptions& options) {
  // Strip the snapshot knobs so existing callers keep the original
  // zero-overhead scheduling path regardless of what they left in options.
  CampaignOptions plain = options;
  plain.shard_index = 1;
  plain.shard_count = 1;
  plain.checkpoint_file.clear();
  plain.stop_after_blocks = 0;
  return std::move(
      run_campaign_impl(configs, plain, "campaign", nullptr, /*recording=*/false).results);
}

CampaignOutcome run_campaign_resumable(const std::vector<CampaignConfig>& configs,
                                       const CampaignOptions& options,
                                       const std::string& campaign_name, const Json* resume) {
  return run_campaign_impl(configs, options, campaign_name, resume, /*recording=*/true);
}

// --- Spec parsing ------------------------------------------------------------

namespace {

/// Returns the key's number if present; `fallback` when absent. Records an
/// error when the key exists with a non-numeric value.
double number_or(const Json& obj, const std::string& key, double fallback, std::string& error) {
  const Json* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    error = "key '" + key + "' must be a number";
    return fallback;
  }
  return v->as_number();
}

/// Non-negative integer variant: rejects negatives and fractions before the
/// value reaches an unsigned cast (where a negative double would be UB).
std::uint64_t uint_or(const Json& obj, const std::string& key, std::uint64_t fallback,
                      std::string& error) {
  const double v = number_or(obj, key, static_cast<double>(fallback), error);
  if (v < 0.0 || v != std::floor(v)) {
    error = "key '" + key + "' must be a non-negative integer";
    return fallback;
  }
  return static_cast<std::uint64_t>(v);
}

std::string string_or(const Json& obj, const std::string& key, const std::string& fallback,
                      std::string& error) {
  const Json* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_string()) {
    error = "key '" + key + "' must be a string";
    return fallback;
  }
  return v->as_string();
}

bool parse_engine(const std::string& s, EngineKind& out) {
  if (s == "sync") out = EngineKind::kSync;
  else if (s == "async") out = EngineKind::kAsync;
  else if (s == "aux") out = EngineKind::kAux;
  else if (s == "quasirandom") out = EngineKind::kQuasirandom;
  else if (s == "batch_sync") out = EngineKind::kBatchSync;
  else return false;
  return true;
}

bool parse_mode(const std::string& s, core::Mode& out) {
  if (s == "push") out = core::Mode::kPush;
  else if (s == "pull") out = core::Mode::kPull;
  else if (s == "push-pull") out = core::Mode::kPushPull;
  else return false;
  return true;
}

/// Collects a scalar-or-array key as a vector of Json scalars (one-element
/// vector for scalars; `fallback` when the key is absent).
std::vector<const Json*> scalar_or_array(const Json& obj, const std::string& key) {
  std::vector<const Json*> out;
  const Json* v = obj.find(key);
  if (v == nullptr) return out;
  if (v->is_array()) {
    for (const Json& e : v->elements()) out.push_back(&e);
  } else {
    out.push_back(v);
  }
  return out;
}

constexpr const char* kKnownKeys[] = {
    "id",     "graph",  "n",    "p",       "degree", "beta",
    "average_degree", "graph_seed", "engine", "mode", "view", "aux",
    "source", "trials", "seed", "hp_q",    "reservoir_capacity",
    "message_loss", "screen_trials", "finalists", "final_trials", "max_candidates",
    "race", "dynamics", "curves",
};

template <std::size_t N>
bool known_key(const std::string& key, const char* const (&keys)[N]) {
  return std::find_if(std::begin(keys), std::end(keys),
                      [&key](const char* k) { return key == k; }) != std::end(keys);
}

/// Prefixes `error` with the nested block's name, so "unknown key" and
/// range errors inside `race`/`dynamics` name both the block and the key.
void prefix_block_error(std::string& error, const char* block) {
  if (!error.empty() && error.rfind(block, 0) != 0) {
    error = std::string(block) + error;
  }
}

/// The nested `race` tuning block; the flat top-level keys remain as
/// aliases (parsed after this, so they win on conflict).
void apply_race_block(const Json& obj, SourceRaceOptions& race, std::string& error) {
  // Bail on a pre-existing error: prefix_block_error below must only ever
  // label errors that actually originated inside this block.
  if (!error.empty()) return;
  const Json* block = obj.find("race");
  if (block == nullptr) return;
  if (!block->is_object()) {
    error = "key 'race' must be an object";
    return;
  }
  static constexpr const char* kRaceKeys[] = {"screen_trials", "finalists", "final_trials",
                                              "max_candidates"};
  for (const auto& [key, value] : block->entries()) {
    if (!known_key(key, kRaceKeys)) {
      error = "race: unknown key '" + key + "'";
      return;
    }
  }
  race.screen_trials = uint_or(*block, "screen_trials", race.screen_trials, error);
  race.finalists = static_cast<std::uint32_t>(uint_or(*block, "finalists", race.finalists, error));
  race.final_trials = uint_or(*block, "final_trials", race.final_trials, error);
  race.max_candidates =
      static_cast<std::uint32_t>(uint_or(*block, "max_candidates", race.max_candidates, error));
  prefix_block_error(error, "race: ");
}

/// The nested `curves` block (spread telemetry): its presence enables
/// per-round/per-time informed-count curve and contact accounting for the
/// cell. {"points": <grid length>, "time_bucket": <async bucket width>}.
void apply_curves_block(const Json& obj, CurveSpec& curves, std::string& error) {
  // Bail on a pre-existing error: prefix_block_error below must only ever
  // label errors that actually originated inside this block.
  if (!error.empty()) return;
  const Json* block = obj.find("curves");
  if (block == nullptr) return;
  if (!block->is_object()) {
    error = "key 'curves' must be an object";
    return;
  }
  static constexpr const char* kCurvesKeys[] = {"points", "time_bucket"};
  for (const auto& [key, value] : block->entries()) {
    if (!known_key(key, kCurvesKeys)) {
      error = "curves: unknown key '" + key + "'";
      return;
    }
  }
  curves.enabled = true;
  curves.points =
      static_cast<std::uint32_t>(uint_or(*block, "points", curves.points, error));
  if (curves.points == 0) error = "key 'points' must be >= 1";
  curves.time_bucket = number_or(*block, "time_bucket", curves.time_bucket, error);
  if (!(curves.time_bucket > 0.0)) error = "key 'time_bucket' must be > 0";
  prefix_block_error(error, "curves: ");
}

/// The nested `dynamics` block: churn model + parameters and weight model
/// + parameters. Merges over the defaults' block key by key.
void apply_dynamics_block(const Json& obj, dynamics::DynamicsSpec& spec, std::string& error) {
  // Bail on a pre-existing error: prefix_block_error below must only ever
  // label errors that actually originated inside this block.
  if (!error.empty()) return;
  const Json* block = obj.find("dynamics");
  if (block == nullptr) return;
  if (!block->is_object()) {
    error = "key 'dynamics' must be an object";
    return;
  }
  static constexpr const char* kDynamicsKeys[] = {"churn",  "birth",        "death",
                                                  "rewire_p", "period",     "weights",
                                                  "weight_alpha", "dynamics_seed"};
  for (const auto& [key, value] : block->entries()) {
    if (!known_key(key, kDynamicsKeys)) {
      error = "dynamics: unknown key '" + key + "'";
      return;
    }
  }
  const std::string churn = string_or(*block, "churn", "", error);
  if (churn == "none") spec.churn.model = dynamics::ChurnModel::kNone;
  else if (churn == "markov") spec.churn.model = dynamics::ChurnModel::kMarkov;
  else if (churn == "rewire") spec.churn.model = dynamics::ChurnModel::kRewire;
  else if (!churn.empty()) error = "unknown churn model '" + churn + "'";
  spec.churn.birth = number_or(*block, "birth", spec.churn.birth, error);
  spec.churn.death = number_or(*block, "death", spec.churn.death, error);
  if (spec.churn.birth < 0.0 || spec.churn.birth > 1.0 || spec.churn.death < 0.0 ||
      spec.churn.death > 1.0) {
    error = "keys 'birth' and 'death' must be in [0, 1]";
  }
  spec.churn.rewire = number_or(*block, "rewire_p", spec.churn.rewire, error);
  if (spec.churn.rewire < 0.0 || spec.churn.rewire > 1.0) {
    error = "key 'rewire_p' must be in [0, 1]";
  }
  spec.churn.period = uint_or(*block, "period", spec.churn.period, error);
  if (spec.churn.period == 0) error = "key 'period' must be >= 1";
  const std::string weights = string_or(*block, "weights", "", error);
  if (weights == "none") spec.weights.model = dynamics::WeightModel::kNone;
  else if (weights == "uniform") spec.weights.model = dynamics::WeightModel::kUniform;
  else if (weights == "degree") spec.weights.model = dynamics::WeightModel::kDegree;
  else if (weights == "heavy_tailed") spec.weights.model = dynamics::WeightModel::kHeavyTailed;
  else if (!weights.empty()) error = "unknown weight model '" + weights + "'";
  spec.weights.alpha = number_or(*block, "weight_alpha", spec.weights.alpha, error);
  if (spec.weights.alpha <= 0.0) error = "key 'weight_alpha' must be > 0";
  spec.seed = uint_or(*block, "dynamics_seed", spec.seed, error);
  prefix_block_error(error, "dynamics: ");
}

/// The "graph" key: a family-name string, or an object
/// {"kind": <family> | "file", ...} carrying per-graph parameter overrides.
/// Kind "file" instead takes "path" (a packed graph store,
/// graph/graph_store.hpp) and rejects generator parameters — the store
/// knows its own shape.
void apply_graph_key(const Json& obj, CampaignConfig& cfg, std::string& error) {
  if (!error.empty()) return;
  const Json* g = obj.find("graph");
  if (g == nullptr) return;
  if (g->is_string()) {
    cfg.graph.family = g->as_string();
    return;
  }
  if (!g->is_object()) {
    error = "key 'graph' must be a family name or an object with 'kind'";
    return;
  }
  static constexpr const char* kGraphKeys[] = {"kind", "path",           "p",
                                               "degree", "beta", "average_degree",
                                               "graph_seed"};
  for (const auto& [key, value] : g->entries()) {
    if (!known_key(key, kGraphKeys)) {
      error = "graph: unknown key '" + key + "'";
      return;
    }
  }
  cfg.graph.family = string_or(*g, "kind", "", error);
  if (cfg.graph.family.empty() && error.empty()) error = "missing required key 'kind'";
  cfg.graph.path = string_or(*g, "path", "", error);
  if (cfg.graph.family == "file") {
    if (cfg.graph.path.empty() && error.empty()) error = "kind 'file' needs a non-empty 'path'";
    static constexpr const char* kGeneratorOnly[] = {"p", "degree", "beta", "average_degree",
                                                     "graph_seed"};
    for (const char* key : kGeneratorOnly) {
      if (g->find(key) != nullptr && error.empty()) {
        error = std::string("key '") + key +
                "' is not allowed with kind 'file' (the store knows its own shape)";
      }
    }
  } else if (!cfg.graph.path.empty()) {
    if (error.empty()) error = "key 'path' is only allowed with kind 'file'";
  } else {
    cfg.graph.p = number_or(*g, "p", cfg.graph.p, error);
    if (cfg.graph.p < 0.0 || cfg.graph.p > 1.0) error = "key 'p' must be in [0, 1]";
    cfg.graph.degree = static_cast<std::uint32_t>(uint_or(*g, "degree", cfg.graph.degree, error));
    cfg.graph.beta = number_or(*g, "beta", cfg.graph.beta, error);
    cfg.graph.average_degree = number_or(*g, "average_degree", cfg.graph.average_degree, error);
    if (cfg.graph.beta <= 0.0 || cfg.graph.average_degree <= 0.0) {
      error = "keys 'beta' and 'average_degree' must be positive";
    }
    cfg.graph.graph_seed = uint_or(*g, "graph_seed", cfg.graph.graph_seed, error);
  }
  prefix_block_error(error, "graph: ");
}

}  // namespace

CampaignSpec parse_campaign_spec(const Json& doc) {
  CampaignSpec spec;
  if (!doc.is_object()) {
    spec.error = "campaign spec must be a JSON object";
    return spec;
  }
  std::string error;
  spec.name = string_or(doc, "name", "campaign", error);

  // Defaults applied to every config entry (each entry may override).
  CampaignConfig proto;
  const Json* defaults = doc.find("defaults");
  Json empty_defaults = Json::object();
  if (defaults == nullptr) defaults = &empty_defaults;
  if (!defaults->is_object()) {
    spec.error = "'defaults' must be an object";
    return spec;
  }

  auto apply_scalars = [&error](const Json& obj, CampaignConfig& cfg) {
    cfg.trials = uint_or(obj, "trials", cfg.trials, error);
    cfg.seed = uint_or(obj, "seed", cfg.seed, error);
    // "source" is a node id (fixed policy) or the policy string "race" /
    // "fixed"; anything else is a spec error.
    if (const Json* src = obj.find("source"); src != nullptr) {
      if (src->is_number()) {
        const double v = src->as_number();
        if (v < 0.0 || v != std::floor(v)) {
          error = "key 'source' must be a non-negative integer node id or \"race\"";
        } else {
          cfg.source = static_cast<graph::NodeId>(v);
          cfg.source_policy = SourcePolicy::kFixed;
        }
      } else if (src->is_string() && src->as_string() == "race") {
        cfg.source_policy = SourcePolicy::kRace;
      } else if (src->is_string() && src->as_string() == "fixed") {
        cfg.source_policy = SourcePolicy::kFixed;
      } else {
        error = "key 'source' must be a non-negative integer node id, \"fixed\", or \"race\"";
      }
    }
    apply_race_block(obj, cfg.race, error);
    cfg.race.screen_trials = uint_or(obj, "screen_trials", cfg.race.screen_trials, error);
    if (cfg.race.screen_trials == 0) error = "key 'screen_trials' must be >= 1";
    cfg.race.finalists = static_cast<std::uint32_t>(
        uint_or(obj, "finalists", cfg.race.finalists, error));
    if (cfg.race.finalists == 0) error = "key 'finalists' must be >= 1";
    cfg.race.final_trials = uint_or(obj, "final_trials", cfg.race.final_trials, error);
    cfg.race.max_candidates = static_cast<std::uint32_t>(
        uint_or(obj, "max_candidates", cfg.race.max_candidates, error));
    cfg.message_loss = number_or(obj, "message_loss", cfg.message_loss, error);
    if (cfg.message_loss < 0.0 || cfg.message_loss >= 1.0) {
      error = "key 'message_loss' must be in [0, 1)";
    }
    apply_dynamics_block(obj, cfg.dynamics, error);
    apply_curves_block(obj, cfg.curves, error);
    cfg.hp_q = number_or(obj, "hp_q", cfg.hp_q, error);
    if (cfg.hp_q < 0.0 || cfg.hp_q >= 1.0) error = "key 'hp_q' must be in [0, 1)";
    cfg.reservoir_capacity =
        static_cast<std::size_t>(uint_or(obj, "reservoir_capacity", cfg.reservoir_capacity, error));
    cfg.graph.p = number_or(obj, "p", cfg.graph.p, error);
    if (cfg.graph.p < 0.0 || cfg.graph.p > 1.0) error = "key 'p' must be in [0, 1]";
    cfg.graph.degree = static_cast<std::uint32_t>(uint_or(obj, "degree", cfg.graph.degree, error));
    cfg.graph.beta = number_or(obj, "beta", cfg.graph.beta, error);
    cfg.graph.average_degree = number_or(obj, "average_degree", cfg.graph.average_degree, error);
    if (cfg.graph.beta <= 0.0 || cfg.graph.average_degree <= 0.0) {
      error = "keys 'beta' and 'average_degree' must be positive";
    }
    cfg.graph.graph_seed = uint_or(obj, "graph_seed", cfg.graph.graph_seed, error);
    const std::string view = string_or(obj, "view", "", error);
    if (view == "per-node") cfg.view = core::AsyncView::kPerNodeClocks;
    else if (view == "per-edge") cfg.view = core::AsyncView::kPerEdgeClocks;
    else if (view == "global-clock") cfg.view = core::AsyncView::kGlobalClock;
    else if (!view.empty()) error = "unknown async view '" + view + "'";
    const std::string aux = string_or(obj, "aux", "", error);
    if (aux == "ppx") cfg.aux = core::AuxKind::kPpx;
    else if (aux == "ppy") cfg.aux = core::AuxKind::kPpy;
    else if (!aux.empty()) error = "unknown aux kind '" + aux + "'";
  };

  // The same typo protection configs get: every defaults key must be known,
  // and per-entry-only keys (id/graph/n) make no sense as shared values.
  for (const auto& [key, value] : defaults->entries()) {
    if (!known_key(key, kKnownKeys) || key == "id" || key == "graph" || key == "n") {
      spec.error = "defaults: key '" + key + "' is not allowed here";
      return spec;
    }
  }
  apply_scalars(*defaults, proto);
  const std::string default_engine = string_or(*defaults, "engine", "sync", error);
  const std::string default_mode = string_or(*defaults, "mode", "push-pull", error);
  if (!error.empty()) {
    spec.error = "defaults: " + error;
    return spec;
  }

  const Json* entries = doc.find("configs");
  if (entries == nullptr || !entries->is_array() || entries->elements().empty()) {
    spec.error = "'configs' must be a non-empty array";
    return spec;
  }

  // id -> the spec entry that first produced it. Collisions (explicit or
  // auto-derived) are rejected: checkpoints, shards, and merge address
  // configurations by id, so silently suffixing "#1" would make snapshot
  // identity depend on spec order.
  std::map<std::string, std::size_t> id_first;
  for (std::size_t e = 0; e < entries->elements().size(); ++e) {
    const Json& entry = entries->elements()[e];
    const std::string where = "configs[" + std::to_string(e) + "]";
    if (!entry.is_object()) {
      spec.error = where + " must be an object";
      return spec;
    }
    for (const auto& [key, value] : entry.entries()) {
      if (!known_key(key, kKnownKeys)) {
        spec.error = where + ": unknown key '" + key + "'";
        return spec;
      }
    }

    CampaignConfig base = proto;
    apply_scalars(entry, base);
    apply_graph_key(entry, base, error);
    if (!error.empty()) {
      spec.error = where + ": " + error;
      return spec;
    }
    if (base.graph.family.empty()) {
      spec.error = where + ": missing required key 'graph'";
      return spec;
    }
    const bool file_graph = base.graph.family == "file";
    const std::string explicit_id = string_or(entry, "id", "", error);
    if (!error.empty()) {
      spec.error = where + ": " + error;
      return spec;
    }

    // "n", "engine", and "mode" may be arrays; expand their cross product.
    // File-backed cells have no "n" (the store knows its own), so their
    // n-dimension is a single pass-through slot.
    const auto ns = scalar_or_array(entry, "n");
    const auto engines = scalar_or_array(entry, "engine");
    const auto modes = scalar_or_array(entry, "mode");
    if (file_graph && !ns.empty()) {
      spec.error = where + ": key 'n' is not allowed with graph kind 'file' "
                           "(the store knows its own node count)";
      return spec;
    }
    if (!file_graph && ns.empty()) {
      spec.error = where + ": missing required key 'n'";
      return spec;
    }
    for (std::size_t ni = 0; ni < std::max<std::size_t>(ns.size(), 1); ++ni) {
      const Json* n_value = ns.empty() ? nullptr : ns[ni];
      if (n_value != nullptr && (!n_value->is_number() || n_value->as_number() < 2.0)) {
        spec.error = where + ": 'n' entries must be numbers >= 2";
        return spec;
      }
      for (std::size_t ei = 0; ei < std::max<std::size_t>(engines.size(), 1); ++ei) {
        for (std::size_t mi = 0; mi < std::max<std::size_t>(modes.size(), 1); ++mi) {
          CampaignConfig cfg = base;
          if (n_value != nullptr) cfg.graph.n = static_cast<std::uint64_t>(n_value->as_number());
          std::string engine_str = default_engine;
          if (!engines.empty()) {
            const Json& engine_value = *engines[ei];
            if (engine_value.is_string()) {
              engine_str = engine_value.as_string();
            } else if (engine_value.is_object()) {
              // Object form {"kind": ..., "lanes": ...}: lanes is the batch
              // engine's lane width — and, via effective_block_size, the
              // cell's trial block size — the only per-engine knob so far.
              static constexpr const char* kEngineKeys[] = {"kind", "lanes"};
              for (const auto& [key, value] : engine_value.entries()) {
                if (!known_key(key, kEngineKeys)) {
                  spec.error = where + ": engine: unknown key '" + key + "'";
                  return spec;
                }
              }
              std::string engine_error;
              engine_str = string_or(engine_value, "kind", "", engine_error);
              if (engine_str.empty() && engine_error.empty()) {
                engine_error = "missing required key 'kind'";
              }
              const std::uint64_t lanes =
                  uint_or(engine_value, "lanes", core::kMaxBatchLanes, engine_error);
              if (engine_error.empty() && engine_value.find("lanes") != nullptr &&
                  engine_str != "batch_sync") {
                engine_error = "key 'lanes' is only allowed with kind 'batch_sync'";
              }
              if (engine_error.empty() && (lanes == 0 || lanes > core::kMaxBatchLanes)) {
                engine_error =
                    "key 'lanes' must be in 1.." + std::to_string(core::kMaxBatchLanes);
              }
              if (!engine_error.empty()) {
                spec.error = where + ": engine: " + engine_error;
                return spec;
              }
              cfg.lanes = static_cast<std::uint32_t>(lanes);
            } else {
              spec.error = where + ": 'engine' entries must be names or {\"kind\": ...} objects";
              return spec;
            }
          }
          if (!parse_engine(engine_str, cfg.engine)) {
            spec.error = where + ": unknown engine '" + engine_str + "'";
            return spec;
          }
          std::string mode_str = default_mode;
          if (!modes.empty()) {
            if (!modes[mi]->is_string()) {
              spec.error = where + ": 'mode' entries must be strings";
              return spec;
            }
            mode_str = modes[mi]->as_string();
          }
          if (!parse_mode(mode_str, cfg.mode)) {
            spec.error = where + ": unknown mode '" + mode_str + "'";
            return spec;
          }
          if (!cfg.dynamics.is_static()) {
            // The same guarantees run_campaign enforces, caught at parse
            // time where the message can cite the spec entry.
            if (cfg.engine != EngineKind::kSync && cfg.engine != EngineKind::kAsync) {
              spec.error = where + ": 'dynamics' needs engine 'sync' or 'async' (got '" +
                           engine_str + "')";
              return spec;
            }
            if (cfg.engine == EngineKind::kAsync && cfg.view != core::AsyncView::kGlobalClock) {
              spec.error = where + ": 'dynamics' needs the global-clock async view";
              return spec;
            }
          }
          if (cfg.engine == EngineKind::kBatchSync &&
              cfg.source_policy == SourcePolicy::kRace) {
            // Races need run_one's per-source stream family; the batch
            // engine interleaves 64 trials on one stream. Caught here so
            // the message can cite the spec entry (run_campaign re-checks
            // for API callers).
            spec.error = where + ": engine 'batch_sync' needs a fixed source (not \"race\")";
            return spec;
          }
          if (cfg.curves.enabled) {
            // Curves need a per-trial contact structure to classify and one
            // fixed trial population per cell; caught here so the message
            // can cite the spec entry (run_campaign re-checks for API
            // callers).
            if (cfg.engine == EngineKind::kAux || cfg.engine == EngineKind::kBatchSync) {
              spec.error = where + ": 'curves' is not supported for engine '" +
                           std::string(engine_name(cfg.engine)) + "'";
              return spec;
            }
            if (cfg.source_policy == SourcePolicy::kRace) {
              spec.error = where + ": 'curves' needs a fixed source (not \"race\")";
              return spec;
            }
          }
          std::string id = explicit_id;
          if (id.empty()) {
            std::string graph_tag = cfg.graph.family + "_n" + std::to_string(cfg.graph.n);
            if (file_graph) {
              // Tag by the store's file stem ("file-web" for "data/web.rgs");
              // two stores with one stem collide below — give explicit ids.
              std::string stem = cfg.graph.path;
              if (const auto slash = stem.find_last_of("/\\"); slash != std::string::npos) {
                stem = stem.substr(slash + 1);
              }
              if (const auto dot = stem.rfind('.'); dot != std::string::npos && dot > 0) {
                stem.resize(dot);
              }
              graph_tag = "file-" + stem;
            }
            id = graph_tag + "_" + engine_name(cfg.engine) + "_" + core::mode_name(cfg.mode);
            // Lane width is part of a batch cell's identity: two cells
            // differing only in lanes run different block grids.
            if (cfg.engine == EngineKind::kBatchSync) {
              id += "_lanes" + std::to_string(cfg.lanes);
            }
            if (cfg.source_policy == SourcePolicy::kRace) id += "_race";
            if (cfg.dynamics.churn.model != dynamics::ChurnModel::kNone) {
              id += std::string("_") + dynamics::churn_model_name(cfg.dynamics.churn.model);
            }
            if (cfg.dynamics.weights.model != dynamics::WeightModel::kNone) {
              id += std::string("_w-") + dynamics::weight_model_name(cfg.dynamics.weights.model);
            }
          }
          const auto [first, inserted] = id_first.emplace(id, e);
          if (!inserted) {
            spec.error = where + ": config id '" + id + "' collides with a cell of configs[" +
                         std::to_string(first->second) + "]" +
                         (explicit_id.empty() ? "; give the entries distinct explicit \"id\"s"
                                              : "");
            return spec;
          }
          cfg.id = id;
          spec.configs.push_back(std::move(cfg));
        }
      }
    }
  }
  return spec;
}

// --- Reporting ---------------------------------------------------------------

Json campaign_report(const CampaignResult& result, const std::string& campaign_name) {
  const stats::StreamingSummary& s = result.summary;
  Json report = Json::object();
  report.set("experiment", campaign_name + "/" + result.id);
  report.set("schema_version", kReportSchemaVersion);
  report.set("title", result.graph_name + " — " + result.engine + " " + result.mode + ", " +
                          std::to_string(result.trials) + " trials");

  Json params = Json::object();
  params.set("graph", result.graph_name);
  params.set("n", result.n);
  params.set("engine", result.engine);
  if (result.engine == "batch_sync") {
    // Lane width only appears for batch cells, so every pre-existing
    // report keeps its exact key set.
    params.set("lanes", static_cast<std::uint64_t>(result.lanes));
  }
  params.set("mode", result.mode);
  params.set("trials", result.trials);
  params.set("seed", result.seed);
  params.set("hp_q", result.hp_q);
  params.set("source_policy", source_policy_name(result.source_policy));
  if (!result.dynamics.is_static()) {
    // Dynamics parameters only appear when configured, so static reports
    // (and every pre-dynamics baseline) keep their exact key set.
    Json dyn = Json::object();
    dyn.set("churn", dynamics::churn_model_name(result.dynamics.churn.model));
    if (result.dynamics.churn.model == dynamics::ChurnModel::kMarkov) {
      dyn.set("birth", result.dynamics.churn.birth);
      dyn.set("death", result.dynamics.churn.death);
    } else if (result.dynamics.churn.model == dynamics::ChurnModel::kRewire) {
      dyn.set("rewire_p", result.dynamics.churn.rewire);
    }
    if (result.dynamics.churn.model != dynamics::ChurnModel::kNone) {
      dyn.set("period", result.dynamics.churn.period);
    }
    dyn.set("weights", dynamics::weight_model_name(result.dynamics.weights.model));
    if (result.dynamics.weights.model == dynamics::WeightModel::kHeavyTailed) {
      dyn.set("weight_alpha", result.dynamics.weights.alpha);
    }
    dyn.set("dynamics_seed", result.dynamics.seed);
    params.set("dynamics", std::move(dyn));
  }
  report.set("params", std::move(params));

  const auto ci = s.mean_ci();
  Json row = Json::object();
  row.set("graph", result.graph_name);
  row.set("n", result.n);
  row.set("trials", result.trials);
  row.set("mean", s.mean());
  row.set("stddev", s.stddev());
  row.set("stderr", s.stderr_mean());
  row.set("min", s.min());
  row.set("max", s.max());
  row.set("median", s.median());
  row.set("p95", s.quantile(0.95));
  row.set("hp_time", s.hp_time(result.hp_q));
  row.set("mean_ci_lower", ci.lower);
  row.set("mean_ci_upper", ci.upper);
  Json rows = Json::array();
  rows.push_back(std::move(row));
  report.set("rows", std::move(rows));

  Json stats = Json::object();
  stats.set("mean", s.mean());
  stats.set("stderr_mean", s.stderr_mean());
  stats.set("hp_time", s.hp_time(result.hp_q));
  if (result.source_policy == SourcePolicy::kRace) {
    // The summary above is the refined measurement of the worst source; the
    // best finalist quantifies how much source placement matters.
    stats.set("worst_source", result.source);
    stats.set("best_source", result.best_source);
    stats.set("best_mean", result.best_mean);
  }
  if (result.has_curves) {
    // Spread telemetry: mean/band informed-count curves on the config's
    // grid, the derived phase decomposition, and exact contact totals. Only
    // present when the config enabled curves, so plain reports keep their
    // exact pre-existing key set.
    const stats::CurveAccumulator& c = result.curves;
    const bool time_grid = result.engine == "async";
    const double step = time_grid ? result.curves_spec.time_bucket : 1.0;
    Json curves = Json::object();
    curves.set("grid", time_grid ? "time" : "rounds");
    curves.set("time_bucket", time_grid ? Json(result.curves_spec.time_bucket) : Json());
    curves.set("points", static_cast<std::uint64_t>(c.points()));
    curves.set("trials", c.trials());
    curves.set("max_len", c.max_len());
    // Fixed-source cells start with exactly one informed node; the
    // conservation check needs the count explicit.
    curves.set("sources", 1);
    Json mean = Json::array();
    Json stddev = Json::array();
    Json p10 = Json::array();
    Json p50 = Json::array();
    Json p90 = Json::array();
    for (std::size_t k = 0; k < c.points(); ++k) {
      mean.push_back(c.mean_at(k));
      stddev.push_back(c.stddev_at(k));
      p10.push_back(c.quantile_at(k, 0.10));
      p50.push_back(c.quantile_at(k, 0.50));
      p90.push_back(c.quantile_at(k, 0.90));
    }
    curves.set("mean", std::move(mean));
    curves.set("stddev", std::move(stddev));
    curves.set("p10", std::move(p10));
    curves.set("p50", std::move(p50));
    curves.set("p90", std::move(p90));
    // Phase decomposition of the mean curve: startup until 10% informed,
    // exponential growth until 90%, shrink until everyone (n - 0.5 guards
    // against float fuzz in the mean of integer counts). A threshold the
    // grid never reaches renders as null — the curve was cut short.
    const double nn = static_cast<double>(result.n);
    auto first_reach = [&](double threshold) -> Json {
      for (std::size_t k = 0; k < c.points(); ++k) {
        if (c.mean_at(k) >= threshold) return Json(static_cast<double>(k) * step);
      }
      return Json();
    };
    const Json startup_end = first_reach(0.1 * nn);
    const Json growth_end = first_reach(0.9 * nn);
    const Json spread_end = first_reach(nn - 0.5);
    Json phases = Json::object();
    phases.set("startup_end", startup_end);
    phases.set("growth_end", growth_end);
    phases.set("spread_end", spread_end);
    phases.set("startup_duration", startup_end);
    phases.set("growth_duration",
               !startup_end.is_null() && !growth_end.is_null()
                   ? Json(growth_end.as_number() - startup_end.as_number())
                   : Json());
    phases.set("shrink_duration", !growth_end.is_null() && !spread_end.is_null()
                                      ? Json(spread_end.as_number() - growth_end.as_number())
                                      : Json());
    curves.set("phases", std::move(phases));
    const stats::ContactTotals& t = result.contacts;
    Json contacts = Json::object();
    contacts.set("contacts", t.contacts);
    contacts.set("useful_push", t.useful_push);
    contacts.set("useful_pull", t.useful_pull);
    contacts.set("wasted_push", t.wasted_push);
    contacts.set("wasted_pull", t.wasted_pull);
    contacts.set("empty_contacts", t.empty_contacts);
    contacts.set("ticks", t.ticks);
    contacts.set("informed_total", t.informed_total);
    curves.set("contacts", std::move(contacts));
    stats.set("curves", std::move(curves));
  }
  report.set("stats", std::move(stats));

  report.set("notes",
             "Streaming summary: mean/min/max exact (merged Welford moments); median/p95/"
             "hp_time from a mergeable quantile sketch (rank error bounds documented in "
             "tests/test_streaming.cpp); CI bootstrapped from a bounded uniform reservoir.");
  report.set("build_info", build_info_json());
  return report;
}

}  // namespace rumor::sim
