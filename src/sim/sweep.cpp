#include "sim/sweep.hpp"

#include <algorithm>
#include <cassert>

namespace rumor::sim {

SweepResult::SweepResult(std::vector<SweepPoint> points) : points_(std::move(points)) {
  assert(!points_.empty());
}

namespace {

std::pair<std::vector<double>, std::vector<double>> split(const std::vector<SweepPoint>& pts) {
  std::vector<double> x;
  std::vector<double> y;
  x.reserve(pts.size());
  y.reserve(pts.size());
  for (const auto& p : pts) {
    x.push_back(static_cast<double>(p.n));
    y.push_back(p.value);
  }
  return {std::move(x), std::move(y)};
}

}  // namespace

stats::LinearFit SweepResult::power_law() const {
  const auto [x, y] = split(points_);
  return stats::fit_power_law(x, y);
}

stats::LinearFit SweepResult::logarithmic() const {
  const auto [x, y] = split(points_);
  return stats::fit_logarithmic(x, y);
}

bool SweepResult::is_bounded(double tolerance) const {
  double lo = points_.front().value;
  double hi = lo;
  for (const auto& p : points_) {
    lo = std::min(lo, p.value);
    hi = std::max(hi, p.value);
  }
  return lo > 0.0 && hi / lo <= 1.0 + tolerance;
}

SweepResult run_size_sweep(const std::vector<std::uint64_t>& sizes,
                           const std::function<graph::Graph(std::uint64_t)>& make,
                           const std::function<double(const graph::Graph&)>& measure) {
  assert(!sizes.empty());
  std::vector<SweepPoint> points;
  points.reserve(sizes.size());
  for (std::uint64_t n : sizes) {
    const graph::Graph g = make(n);
    SweepPoint p;
    p.n = g.num_nodes();
    p.value = measure(g);
    p.graph_name = g.name();
    points.push_back(std::move(p));
  }
  return SweepResult(std::move(points));
}

}  // namespace rumor::sim
