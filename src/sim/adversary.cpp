#include "sim/adversary.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <vector>

namespace rumor::sim {

namespace {

/// Degree-stratified candidate list: sort nodes by degree and take every
/// k-th, guaranteeing the extremes are included. Spreading-time extremes
/// correlate strongly with degree (peripheral low-degree nodes are slow
/// sources), so stratification loses little versus screening everything.
std::vector<NodeId> candidate_sources(const Graph& g, std::uint32_t max_candidates) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  if (max_candidates == 0 || n <= max_candidates) return order;
  std::sort(order.begin(), order.end(),
            [&](NodeId a, NodeId b) { return g.degree(a) < g.degree(b); });
  std::vector<NodeId> picked;
  picked.reserve(max_candidates);
  const double stride = static_cast<double>(n - 1) / (max_candidates - 1);
  for (std::uint32_t i = 0; i < max_candidates; ++i) {
    picked.push_back(order[static_cast<std::size_t>(i * stride)]);
  }
  return picked;
}

template <class MeasureFn>
WorstSourceResult race(const Graph& g, const WorstSourceOptions& options, MeasureFn measure) {
  assert(g.num_nodes() >= 2);
  const auto candidates = candidate_sources(g, options.max_candidates);

  // Stage 1: screen every candidate cheaply.
  std::vector<std::pair<double, NodeId>> screened;
  screened.reserve(candidates.size());
  for (NodeId u : candidates) {
    screened.emplace_back(measure(u, options.screen_trials, options.seed), u);
  }
  std::sort(screened.begin(), screened.end(), std::greater<>());

  // Stage 2: refine the leaders with a full measurement.
  const std::uint32_t finalists =
      std::min<std::uint32_t>(options.finalists, static_cast<std::uint32_t>(screened.size()));
  WorstSourceResult result;
  bool first = true;
  for (std::uint32_t i = 0; i < finalists; ++i) {
    const NodeId u = screened[i].second;
    const double mean = measure(u, options.final_trials, options.seed + 1);
    if (first || mean > result.mean_time) {
      result.source = u;
      result.mean_time = mean;
    }
    if (first || mean < result.best_mean_time) {
      result.best_source = u;
      result.best_mean_time = mean;
    }
    first = false;
  }
  return result;
}

}  // namespace

WorstSourceResult find_worst_source_sync(const Graph& g, core::Mode mode,
                                         const WorstSourceOptions& options) {
  return race(g, options, [&](NodeId u, std::uint64_t trials, std::uint64_t seed) {
    TrialConfig config;
    config.trials = trials;
    config.seed = seed + 0x9e3779b9ULL * u;  // per-source stream family
    return measure_sync(g, u, mode, config).mean();
  });
}

WorstSourceResult find_worst_source_async(const Graph& g, core::Mode mode,
                                          const WorstSourceOptions& options) {
  return race(g, options, [&](NodeId u, std::uint64_t trials, std::uint64_t seed) {
    TrialConfig config;
    config.trials = trials;
    config.seed = seed + 0x9e3779b9ULL * u;
    return measure_async(g, u, mode, config).mean();
  });
}

}  // namespace rumor::sim
