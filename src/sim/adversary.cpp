#include "sim/adversary.hpp"

#include <cassert>
#include <memory>

#include "sim/campaign.hpp"

namespace rumor::sim {

namespace {

/// Both searches are one-configuration race campaigns: the screen and
/// refine passes run as trial blocks on a campaign queue, which makes the
/// raced source and its refined statistics bit-identical for any thread
/// count — and identical to what `rumor_bench --campaign` reports for a
/// `source: "race"` configuration with the same parameters (verified in
/// tests/test_campaign.cpp).
WorstSourceResult race(const Graph& g, EngineKind engine, core::Mode mode,
                       const WorstSourceOptions& options) {
  assert(g.num_nodes() >= 2);
  CampaignConfig cfg;
  cfg.id = "race";
  // Non-owning alias: the campaign only reads the graph for the duration of
  // the (synchronous) run_campaign call, which the caller's reference outlives.
  cfg.prebuilt = std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(), &g);
  cfg.engine = engine;
  cfg.mode = mode;
  cfg.source_policy = SourcePolicy::kRace;
  cfg.race.screen_trials = options.screen_trials;
  cfg.race.finalists = options.finalists;
  cfg.race.final_trials = options.final_trials;
  cfg.race.max_candidates = options.max_candidates;
  cfg.seed = options.seed;
  cfg.trials = options.final_trials;

  const auto results = run_campaign({cfg}, {});
  const CampaignResult& r = results.front();
  WorstSourceResult out;
  out.source = r.source;
  out.mean_time = r.summary.mean();
  out.best_source = r.best_source;
  out.best_mean_time = r.best_mean;
  return out;
}

}  // namespace

WorstSourceResult find_worst_source_sync(const Graph& g, core::Mode mode,
                                         const WorstSourceOptions& options) {
  return race(g, EngineKind::kSync, mode, options);
}

WorstSourceResult find_worst_source_async(const Graph& g, core::Mode mode,
                                          const WorstSourceOptions& options) {
  return race(g, EngineKind::kAsync, mode, options);
}

}  // namespace rumor::sim
