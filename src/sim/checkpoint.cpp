#include "sim/checkpoint.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "graph/graph_store.hpp"
#include "obs/telemetry.hpp"
#include "rng/rng.hpp"

namespace rumor::sim {

// --- Fingerprint and shard partition -----------------------------------------

namespace {

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// Canonical field renderings for the fingerprint. Doubles go through the
/// exact round-trip formatter (Json::dump), so any value change — however
/// small — changes the hash.
void put(std::string& out, const std::string& s) {
  out += s;
  out += '|';
}
void put(std::string& out, const char* s) {
  out += s;
  out += '|';
}
void put(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
  out += '|';
}
void put(std::string& out, double v) {
  out += Json(v).dump();
  out += '|';
}

std::size_t slot_count(std::uint64_t trials, std::uint64_t block_size) {
  return static_cast<std::size_t>((trials + block_size - 1) / block_size);
}

}  // namespace

std::string resolved_config_id(const CampaignConfig& cfg, std::size_t index) {
  return !cfg.id.empty() ? cfg.id : "cfg" + std::to_string(index);
}

std::string campaign_fingerprint(const std::string& campaign_name,
                                 const std::vector<CampaignConfig>& configs) {
  std::string canon = campaign_name;
  canon += '\n';
  for (std::size_t c = 0; c < configs.size(); ++c) {
    const CampaignConfig& cfg = configs[c];
    put(canon, resolved_config_id(cfg, c));
    if (cfg.prebuilt != nullptr) {
      // Prebuilt graphs are hashed by identity (name, nodes, edges), not
      // structure: API campaigns that hand in a graph must hand in the same
      // graph on resume, and this is the cheap stand-in for that contract.
      put(canon, "prebuilt");
      put(canon, cfg.prebuilt->name());
      put(canon, static_cast<std::uint64_t>(cfg.prebuilt->num_nodes()));
      put(canon, static_cast<std::uint64_t>(cfg.prebuilt->num_edges()));
    } else if (cfg.graph.family == "file") {
      // File-backed graphs are hashed by the store's content identity —
      // the packed checksum plus shape — never the path: moving or
      // renaming the store keeps checkpoints valid, while repacking a
      // different graph at the same path is refused on resume.
      const graph::GraphStoreInfo info = graph::read_graph_store_info(cfg.graph.path);
      put(canon, "file");
      put(canon, hex64(info.checksum));
      put(canon, info.n);
      put(canon, info.arcs);
    } else {
      put(canon, cfg.graph.family);
      put(canon, cfg.graph.n);
      put(canon, cfg.graph.p);
      put(canon, static_cast<std::uint64_t>(cfg.graph.degree));
      put(canon, cfg.graph.beta);
      put(canon, cfg.graph.average_degree);
      put(canon, cfg.graph.graph_seed);
    }
    put(canon, engine_name(cfg.engine));
    put(canon, core::mode_name(cfg.mode));
    put(canon, static_cast<std::uint64_t>(cfg.view));
    put(canon, static_cast<std::uint64_t>(cfg.aux));
    put(canon, cfg.message_loss);
    put(canon, static_cast<std::uint64_t>(cfg.source));
    put(canon, source_policy_name(cfg.source_policy));
    put(canon, cfg.race.screen_trials);
    put(canon, static_cast<std::uint64_t>(cfg.race.finalists));
    put(canon, cfg.race.final_trials);
    put(canon, static_cast<std::uint64_t>(cfg.race.max_candidates));
    put(canon, dynamics::churn_model_name(cfg.dynamics.churn.model));
    put(canon, cfg.dynamics.churn.birth);
    put(canon, cfg.dynamics.churn.death);
    put(canon, cfg.dynamics.churn.rewire);
    put(canon, cfg.dynamics.churn.period);
    put(canon, dynamics::weight_model_name(cfg.dynamics.weights.model));
    put(canon, cfg.dynamics.weights.alpha);
    put(canon, cfg.dynamics.seed);
    put(canon, cfg.trials);
    put(canon, cfg.seed);
    put(canon, cfg.hp_q);
    put(canon, static_cast<std::uint64_t>(cfg.reservoir_capacity));
    if (cfg.curves.enabled) {
      // Appended only when the cell records curves, so every fingerprint of
      // a curve-free spec — including all pre-existing snapshots — is
      // unchanged.
      put(canon, "curves");
      put(canon, static_cast<std::uint64_t>(cfg.curves.points));
      put(canon, cfg.curves.time_bucket);
    }
    if (cfg.engine == EngineKind::kBatchSync) {
      // Lane width defines the batch cell's block grid and RNG streams, so
      // it is part of the snapshot identity; conditional for the same
      // reason as the curves block above.
      put(canon, "lanes");
      put(canon, static_cast<std::uint64_t>(cfg.lanes));
    }
    canon += '\n';
  }
  return hex64(fnv1a(canon));
}

std::uint32_t shard_of_block(const std::string& config_id, std::size_t slot, bool whole_config,
                             std::uint32_t shard_count) {
  if (shard_count <= 1) return 0;
  std::uint64_t h = fnv1a(config_id);
  if (!whole_config) {
    // Mix the slot in multiplicatively so neighboring slots scatter across
    // shards (balanced partials even for single-config campaigns).
    h ^= static_cast<std::uint64_t>(slot) * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL;
  }
  rng::SplitMix64 sm(h);
  return static_cast<std::uint32_t>(sm.next() % shard_count);
}

stats::StreamingSummary::Options summary_options_for(const CampaignConfig& cfg,
                                                     std::size_t sketch_capacity,
                                                     std::size_t reservoir_capacity) {
  stats::StreamingSummary::Options options;
  options.sketch_capacity = sketch_capacity;
  options.reservoir_capacity =
      cfg.reservoir_capacity != 0 ? cfg.reservoir_capacity : reservoir_capacity;
  options.reservoir_salt = cfg.seed;
  return options;
}

stats::CurveAccumulator::Options curve_options_for(const CampaignConfig& cfg,
                                                   std::size_t sketch_capacity) {
  stats::CurveAccumulator::Options options;
  options.points = cfg.curves.points;
  options.sketch_capacity = sketch_capacity;
  return options;
}

// --- Accumulator-state <-> JSON codecs ---------------------------------------

namespace {

[[noreturn]] void fail(const std::string& ctx, const std::string& what) {
  throw std::runtime_error(ctx + ": " + what);
}

const Json& require(const Json& obj, const char* key, const std::string& ctx) {
  if (!obj.is_object()) fail(ctx, "expected a JSON object");
  const Json* v = obj.find(key);
  if (v == nullptr) fail(ctx, std::string("missing key '") + key + "'");
  return *v;
}

double req_number(const Json& obj, const char* key, const std::string& ctx) {
  const Json& v = require(obj, key, ctx);
  if (!v.is_number()) fail(ctx, std::string("key '") + key + "' must be a number");
  return v.as_number();
}

std::uint64_t req_uint(const Json& obj, const char* key, const std::string& ctx) {
  const double v = req_number(obj, key, ctx);
  if (v < 0.0 || v != std::floor(v) || v > 9007199254740992.0) {
    fail(ctx, std::string("key '") + key + "' must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(v);
}

std::string req_string(const Json& obj, const char* key, const std::string& ctx) {
  const Json& v = require(obj, key, ctx);
  if (!v.is_string()) fail(ctx, std::string("key '") + key + "' must be a string");
  return v.as_string();
}

bool req_bool(const Json& obj, const char* key, const std::string& ctx) {
  const Json& v = require(obj, key, ctx);
  if (v.type() != Json::Type::kBool) fail(ctx, std::string("key '") + key + "' must be a boolean");
  return v.as_bool();
}

const Json& req_array(const Json& obj, const char* key, const std::string& ctx) {
  const Json& v = require(obj, key, ctx);
  if (!v.is_array()) fail(ctx, std::string("key '") + key + "' must be an array");
  return v;
}

// A phase's partial-block array may be legally absent: a snapshot taken
// between a phase transition and that phase's first completed block has
// nothing to record yet.
const std::vector<Json>& opt_array(const Json& obj, const char* key, const std::string& ctx) {
  static const std::vector<Json> empty;
  const Json* v = obj.find(key);
  if (v == nullptr) return empty;
  if (!v->is_array()) fail(ctx, std::string("key '") + key + "' must be an array");
  return v->elements();
}

Json moments_to_json(const stats::RunningMoments::State& s) {
  Json o = Json::object();
  o.set("count", s.count);
  o.set("mean", s.mean);
  o.set("m2", s.m2);
  o.set("min", s.min);
  o.set("max", s.max);
  return o;
}

stats::RunningMoments::State moments_from_json(const Json& o, const std::string& ctx) {
  stats::RunningMoments::State s;
  s.count = req_uint(o, "count", ctx);
  s.mean = req_number(o, "mean", ctx);
  s.m2 = req_number(o, "m2", ctx);
  s.min = req_number(o, "min", ctx);
  s.max = req_number(o, "max", ctx);
  return s;
}

Json sketch_to_json(const stats::QuantileSketch::State& s) {
  Json levels = Json::array();
  for (const auto& lvl : s.levels) {
    Json items = Json::array();
    for (const double x : lvl.items) items.push_back(x);
    Json level = Json::object();
    level.set("items", std::move(items));
    level.set("keep_odd", lvl.keep_odd);
    levels.push_back(std::move(level));
  }
  Json o = Json::object();
  o.set("count", s.count);
  o.set("levels", std::move(levels));
  return o;
}

stats::QuantileSketch::State sketch_from_json(const Json& o, const std::string& ctx) {
  stats::QuantileSketch::State s;
  s.count = req_uint(o, "count", ctx);
  for (const Json& level : req_array(o, "levels", ctx).elements()) {
    stats::QuantileSketch::LevelState lvl;
    for (const Json& item : req_array(level, "items", ctx).elements()) {
      if (!item.is_number()) fail(ctx, "sketch items must be numbers");
      lvl.items.push_back(item.as_number());
    }
    lvl.keep_odd = req_bool(level, "keep_odd", ctx);
    s.levels.push_back(std::move(lvl));
  }
  return s;
}

Json reservoir_to_json(const stats::ReservoirSample::State& s) {
  Json entries = Json::array();
  for (const auto& [tag, value] : s.entries) {
    Json pair = Json::array();
    pair.push_back(tag);
    pair.push_back(value);
    entries.push_back(std::move(pair));
  }
  Json o = Json::object();
  o.set("count", s.count);
  o.set("entries", std::move(entries));
  return o;
}

stats::ReservoirSample::State reservoir_from_json(const Json& o, const std::string& ctx) {
  stats::ReservoirSample::State s;
  s.count = req_uint(o, "count", ctx);
  for (const Json& pair : req_array(o, "entries", ctx).elements()) {
    if (!pair.is_array() || pair.elements().size() != 2 || !pair.elements()[0].is_number() ||
        !pair.elements()[1].is_number()) {
      fail(ctx, "reservoir entries must be [tag, value] number pairs");
    }
    const double tag = pair.elements()[0].as_number();
    if (tag < 0.0 || tag != std::floor(tag)) fail(ctx, "reservoir tags must be non-negative integers");
    s.entries.emplace_back(static_cast<std::uint64_t>(tag), pair.elements()[1].as_number());
  }
  return s;
}

Json summary_to_json(const stats::StreamingSummary::State& s) {
  Json o = Json::object();
  o.set("moments", moments_to_json(s.moments));
  o.set("sketch", sketch_to_json(s.sketch));
  o.set("reservoir", reservoir_to_json(s.reservoir));
  return o;
}

stats::StreamingSummary::State summary_from_json(const Json& o, const std::string& ctx) {
  stats::StreamingSummary::State s;
  s.moments = moments_from_json(require(o, "moments", ctx), ctx);
  s.sketch = sketch_from_json(require(o, "sketch", ctx), ctx);
  s.reservoir = reservoir_from_json(require(o, "reservoir", ctx), ctx);
  return s;
}

Json totals_to_json(const stats::ContactTotals& t) {
  Json o = Json::object();
  o.set("contacts", t.contacts);
  o.set("useful_push", t.useful_push);
  o.set("useful_pull", t.useful_pull);
  o.set("wasted_push", t.wasted_push);
  o.set("wasted_pull", t.wasted_pull);
  o.set("empty_contacts", t.empty_contacts);
  o.set("ticks", t.ticks);
  o.set("informed_total", t.informed_total);
  return o;
}

stats::ContactTotals totals_from_json(const Json& o, const std::string& ctx) {
  stats::ContactTotals t;
  t.contacts = req_uint(o, "contacts", ctx);
  t.useful_push = req_uint(o, "useful_push", ctx);
  t.useful_pull = req_uint(o, "useful_pull", ctx);
  t.wasted_push = req_uint(o, "wasted_push", ctx);
  t.wasted_pull = req_uint(o, "wasted_pull", ctx);
  t.empty_contacts = req_uint(o, "empty_contacts", ctx);
  t.ticks = req_uint(o, "ticks", ctx);
  t.informed_total = req_uint(o, "informed_total", ctx);
  return t;
}

/// One curve partial with its contact totals: the value of a slot entry's
/// optional "curves" key, and of the done result's "curves" key.
Json curves_to_json(const stats::CurveAccumulator::State& s, const stats::ContactTotals& t) {
  Json moments = Json::array();
  for (const auto& m : s.moments) moments.push_back(moments_to_json(m));
  Json sketches = Json::array();
  for (const auto& q : s.sketches) sketches.push_back(sketch_to_json(q));
  Json o = Json::object();
  o.set("trials", s.trials);
  o.set("max_len", s.max_len);
  o.set("moments", std::move(moments));
  o.set("sketches", std::move(sketches));
  o.set("contacts", totals_to_json(t));
  return o;
}

stats::CurveAccumulator::State curve_state_from_json(const Json& o, std::size_t points,
                                                     const std::string& ctx) {
  stats::CurveAccumulator::State s;
  s.trials = req_uint(o, "trials", ctx);
  s.max_len = req_uint(o, "max_len", ctx);
  for (const Json& m : req_array(o, "moments", ctx).elements()) {
    s.moments.push_back(moments_from_json(m, ctx));
  }
  for (const Json& q : req_array(o, "sketches", ctx).elements()) {
    s.sketches.push_back(sketch_from_json(q, ctx));
  }
  if (s.moments.size() != points || s.sketches.size() != points) {
    fail(ctx, "curve partial has grid length " + std::to_string(s.moments.size()) + "/" +
                  std::to_string(s.sketches.size()) + ", the spec's curves.points is " +
                  std::to_string(points));
  }
  return s;
}

Json ids_to_json(const std::vector<graph::NodeId>& ids) {
  Json arr = Json::array();
  for (const graph::NodeId u : ids) arr.push_back(static_cast<std::uint64_t>(u));
  return arr;
}

std::vector<graph::NodeId> ids_from_json(const Json& arr, const char* what,
                                         const std::string& ctx) {
  if (!arr.is_array()) fail(ctx, std::string("key '") + what + "' must be an array");
  std::vector<graph::NodeId> out;
  out.reserve(arr.elements().size());
  for (const Json& v : arr.elements()) {
    if (!v.is_number() || v.as_number() < 0.0 || v.as_number() != std::floor(v.as_number()) ||
        v.as_number() > static_cast<double>(std::numeric_limits<graph::NodeId>::max())) {
      fail(ctx, std::string("'") + what + "' entries must be node ids");
    }
    out.push_back(static_cast<graph::NodeId>(v.as_number()));
  }
  return out;
}

/// One snapshot's validated header.
struct SnapshotHeader {
  std::string campaign;
  std::string spec_hash;
  std::uint64_t block_size = 0;
  std::uint64_t sketch_capacity = 0;
  std::uint64_t reservoir_capacity = 0;
  std::uint32_t shard_index = 1;
  std::uint32_t shard_count = 1;
  bool finished = false;
  std::uint64_t blocks_done = 0;
};

SnapshotHeader parse_header(const Json& doc, const std::string& ctx) {
  if (!doc.is_object()) fail(ctx, "document is not a JSON object");
  const std::string format = req_string(doc, "format", ctx);
  if (format != kSnapshotFormat) {
    fail(ctx, "not a campaign checkpoint (format '" + format + "', expected '" +
                  kSnapshotFormat + "')");
  }
  const std::uint64_t version = req_uint(doc, "version", ctx);
  if (version != static_cast<std::uint64_t>(kSnapshotVersion)) {
    fail(ctx, "unsupported checkpoint version " + std::to_string(version) + " (this build reads " +
                  std::to_string(kSnapshotVersion) + ")");
  }
  SnapshotHeader h;
  h.campaign = req_string(doc, "campaign", ctx);
  h.spec_hash = req_string(doc, "spec_hash", ctx);
  h.block_size = req_uint(doc, "block_size", ctx);
  h.sketch_capacity = req_uint(doc, "sketch_capacity", ctx);
  h.reservoir_capacity = req_uint(doc, "reservoir_capacity", ctx);
  h.shard_index = static_cast<std::uint32_t>(req_uint(doc, "shard_index", ctx));
  h.shard_count = static_cast<std::uint32_t>(req_uint(doc, "shard_count", ctx));
  h.finished = req_bool(doc, "finished", ctx);
  h.blocks_done = req_uint(doc, "blocks_done", ctx);
  return h;
}

/// Header checks shared by resume and merge: the snapshot must describe
/// exactly this spec (name + fingerprint).
void check_spec_identity(const SnapshotHeader& h, const std::string& campaign_name,
                         const std::string& spec_hash, const std::string& ctx) {
  if (h.campaign != campaign_name) {
    fail(ctx, "snapshot is for campaign '" + h.campaign + "', this spec is '" + campaign_name +
                  "'");
  }
  if (h.spec_hash != spec_hash) {
    fail(ctx, "spec hash mismatch (snapshot " + h.spec_hash + ", spec " + spec_hash +
                  "): the spec file or its --trials/--seed/--scale overrides changed");
  }
}

}  // namespace

// --- CampaignRecorder --------------------------------------------------------

CampaignRecorder::CampaignRecorder(const std::vector<CampaignConfig>& configs,
                                   const CampaignOptions& options, std::string campaign_name)
    : configs_(configs), options_(options), campaign_name_(std::move(campaign_name)) {
  options_.block_size = std::max<std::uint64_t>(options_.block_size, 1);
  options_.shard_count = std::max<std::uint32_t>(options_.shard_count, 1);
  spec_hash_ = campaign_fingerprint(campaign_name_, configs_);
  store_.resize(configs_.size());
}

void CampaignRecorder::record_graph(std::size_t config, const std::string& graph_name,
                                    std::uint64_t n) {
  const std::scoped_lock lock(mutex_);
  StoredConfig& sc = store_[config];
  sc.graph_name = graph_name;
  sc.n = n;
  sc.has_graph = true;
}

void CampaignRecorder::record_trial_slot(std::size_t config, std::size_t slot,
                                         const stats::StreamingSummary& partial,
                                         const stats::CurveAccumulator* curves,
                                         const stats::ContactTotals* contacts) {
  Json s = summary_to_json(partial.state());
  Json c = curves != nullptr ? curves_to_json(curves->state(), *contacts) : Json();
  const std::scoped_lock lock(mutex_);
  StoredConfig& sc = store_[config];
  sc.phase = "trials";
  sc.slots[slot] = std::move(s);
  if (curves != nullptr) sc.slot_curves[slot] = std::move(c);
}

void CampaignRecorder::record_plan(std::size_t config,
                                   const std::vector<graph::NodeId>& candidates) {
  const std::scoped_lock lock(mutex_);
  StoredConfig& sc = store_[config];
  sc.phase = "screen";
  sc.candidates = candidates;
  sc.has_candidates = true;
}

void CampaignRecorder::record_screen_slot(std::size_t config, std::uint32_t entrant,
                                          std::size_t slot,
                                          const stats::RunningMoments& partial) {
  Json m = moments_to_json(partial.state());
  const std::scoped_lock lock(mutex_);
  store_[config].screen[{entrant, slot}] = std::move(m);
}

void CampaignRecorder::record_finalists(std::size_t config,
                                        const std::vector<graph::NodeId>& finalists) {
  const std::scoped_lock lock(mutex_);
  StoredConfig& sc = store_[config];
  sc.phase = "refine";
  sc.finalists = finalists;
  sc.has_finalists = true;
  // The screen pass is folded and gone; the snapshot drops it with it.
  sc.screen.clear();
  sc.candidates.clear();
  sc.has_candidates = false;
}

void CampaignRecorder::record_refine_slot(std::size_t config, std::uint32_t entrant,
                                          std::size_t slot,
                                          const stats::StreamingSummary& partial) {
  Json s = summary_to_json(partial.state());
  const std::scoped_lock lock(mutex_);
  store_[config].refine[{entrant, slot}] = std::move(s);
}

void CampaignRecorder::record_done(std::size_t config, const CampaignResult& result) {
  Json r = Json::object();
  r.set("graph", result.graph_name);
  r.set("n", result.n);
  r.set("source", static_cast<std::uint64_t>(result.source));
  r.set("best_source", static_cast<std::uint64_t>(result.best_source));
  r.set("best_mean", result.best_mean);
  r.set("summary", summary_to_json(result.summary.state()));
  if (result.has_curves) {
    r.set("curves", curves_to_json(result.curves.state(), result.contacts));
  }
  const std::scoped_lock lock(mutex_);
  StoredConfig& sc = store_[config];
  sc.phase = "done";
  sc.result = std::move(r);
  sc.slots.clear();
  sc.slot_curves.clear();
  sc.screen.clear();
  sc.refine.clear();
  sc.candidates.clear();
  sc.finalists.clear();
  sc.has_candidates = false;
  sc.has_finalists = false;
}

bool CampaignRecorder::block_finished() {
  bool write = false;
  bool stop = false;
  {
    const std::scoped_lock lock(mutex_);
    ++blocks_done_;
    ++session_blocks_;
    stop = options_.stop_after_blocks != 0 && session_blocks_ >= options_.stop_after_blocks;
    write = !stop && !options_.checkpoint_file.empty() && options_.checkpoint_every != 0 &&
            session_blocks_ % options_.checkpoint_every == 0;
  }
  // The stop path skips the periodic write: run_campaign_resumable writes
  // the final (authoritative) snapshot after the queue drains.
  if (write) write_checkpoint(false);
  return stop;
}

Json CampaignRecorder::snapshot(bool finished) const {
  const std::scoped_lock lock(mutex_);
  Json doc = Json::object();
  doc.set("format", kSnapshotFormat);
  doc.set("version", kSnapshotVersion);
  // The report-layout version (sim/experiment.hpp): snapshots embed
  // report-facing summaries, and loaders ignore unknown keys, so stamping
  // it is load-compatible with every pre-existing snapshot.
  doc.set("schema_version", kReportSchemaVersion);
  doc.set("campaign", campaign_name_);
  doc.set("spec_hash", spec_hash_);
  doc.set("block_size", options_.block_size);
  doc.set("sketch_capacity", static_cast<std::uint64_t>(options_.sketch_capacity));
  doc.set("reservoir_capacity", static_cast<std::uint64_t>(options_.reservoir_capacity));
  doc.set("shard_index", options_.shard_index);
  doc.set("shard_count", options_.shard_count);
  doc.set("finished", finished);
  doc.set("blocks_done", blocks_done_);
  // Wall-clock provenance for operators juggling shard fleets: merge
  // tolerates skew but warns when shards were written far apart (see
  // report_stale_snapshots). Loaders treat the key as optional, so
  // pre-existing snapshots (and the version number) stay valid.
  doc.set("written_at", static_cast<std::uint64_t>(std::time(nullptr)));
  Json arr = Json::array();
  for (std::size_t c = 0; c < store_.size(); ++c) {
    const StoredConfig& sc = store_[c];
    Json e = Json::object();
    e.set("id", resolved_config_id(configs_[c], c));
    e.set("phase", sc.phase);
    if (sc.phase == "done") {
      e.set("result", sc.result);
      arr.push_back(std::move(e));
      continue;
    }
    if (sc.has_graph) {
      e.set("graph", sc.graph_name);
      e.set("n", sc.n);
    }
    if (!sc.slots.empty()) {
      Json slots = Json::array();
      for (const auto& [slot, summary] : sc.slots) {
        Json s = Json::object();
        s.set("slot", static_cast<std::uint64_t>(slot));
        s.set("summary", summary);
        if (const auto it = sc.slot_curves.find(slot); it != sc.slot_curves.end()) {
          s.set("curves", it->second);
        }
        slots.push_back(std::move(s));
      }
      e.set("slots", std::move(slots));
    }
    if (sc.has_candidates) e.set("candidates", ids_to_json(sc.candidates));
    if (!sc.screen.empty()) {
      Json screen = Json::array();
      for (const auto& [key, moments] : sc.screen) {
        Json s = Json::object();
        s.set("entrant", static_cast<std::uint64_t>(key.first));
        s.set("slot", static_cast<std::uint64_t>(key.second));
        s.set("moments", moments);
        screen.push_back(std::move(s));
      }
      e.set("screen", std::move(screen));
    }
    if (sc.has_finalists) e.set("finalists", ids_to_json(sc.finalists));
    if (!sc.refine.empty()) {
      Json refine = Json::array();
      for (const auto& [key, summary] : sc.refine) {
        Json s = Json::object();
        s.set("entrant", static_cast<std::uint64_t>(key.first));
        s.set("slot", static_cast<std::uint64_t>(key.second));
        s.set("summary", summary);
        refine.push_back(std::move(s));
      }
      e.set("refine", std::move(refine));
    }
    arr.push_back(std::move(e));
  }
  doc.set("configs", std::move(arr));
  return doc;
}

void CampaignRecorder::write_checkpoint(bool finished) const {
  const std::scoped_lock write_lock(write_mutex_);
  const Json doc = snapshot(finished);
  obs::Telemetry* const tel = options_.telemetry;
  const std::uint64_t write_begin = tel != nullptr ? tel->now_ns() : 0;
  std::string error;
  if (!write_file_atomic(options_.checkpoint_file, doc.dump(2) + "\n", error)) {
    throw std::runtime_error("checkpoint: cannot write " + options_.checkpoint_file + ": " +
                             error);
  }
  // Serialization happens above under the same lock, so this measures the
  // durable-write path alone (write + fsync + rename + dir fsync).
  if (tel != nullptr) tel->on_checkpoint_write(write_begin, tel->now_ns());
}

std::uint64_t CampaignRecorder::blocks_done() const {
  const std::scoped_lock lock(mutex_);
  return blocks_done_;
}

std::vector<CampaignRecorder::Restored> CampaignRecorder::load(const Json& doc) {
  const std::string ctx = "checkpoint";
  const SnapshotHeader h = parse_header(doc, ctx);
  check_spec_identity(h, campaign_name_, spec_hash_, ctx);
  if (h.block_size != options_.block_size) {
    fail(ctx, "snapshot used block size " + std::to_string(h.block_size) + ", this run uses " +
                  std::to_string(options_.block_size));
  }
  if (h.sketch_capacity != options_.sketch_capacity ||
      h.reservoir_capacity != options_.reservoir_capacity) {
    fail(ctx, "snapshot used sketch/reservoir capacities " + std::to_string(h.sketch_capacity) +
                  "/" + std::to_string(h.reservoir_capacity) + ", this run uses " +
                  std::to_string(options_.sketch_capacity) + "/" +
                  std::to_string(options_.reservoir_capacity));
  }
  if (h.shard_index != options_.shard_index || h.shard_count != options_.shard_count) {
    fail(ctx, "snapshot is shard " + std::to_string(h.shard_index) + "/" +
                  std::to_string(h.shard_count) + " but this run is shard " +
                  std::to_string(options_.shard_index) + "/" +
                  std::to_string(options_.shard_count));
  }
  const Json& entries = req_array(doc, "configs", ctx);
  if (entries.elements().size() != configs_.size()) {
    fail(ctx, "snapshot has " + std::to_string(entries.elements().size()) + " configs, spec has " +
                  std::to_string(configs_.size()));
  }

  std::vector<Restored> out(configs_.size());
  std::vector<StoredConfig> loaded(configs_.size());
  for (std::size_t c = 0; c < configs_.size(); ++c) {
    const CampaignConfig& cfg = configs_[c];
    const Json& e = entries.elements()[c];
    const std::string id = resolved_config_id(cfg, c);
    const std::string ectx = ctx + ": configs[" + std::to_string(c) + "] ('" + id + "')";
    if (req_string(e, "id", ectx) != id) {
      fail(ectx, "id mismatch (snapshot '" + req_string(e, "id", ectx) + "')");
    }
    const std::string phase = req_string(e, "phase", ectx);
    const bool race = cfg.source_policy == SourcePolicy::kRace;
    Restored& r = out[c];
    StoredConfig& sc = loaded[c];
    sc.phase = phase;
    if (const Json* g = e.find("graph"); g != nullptr && g->is_string()) {
      sc.graph_name = g->as_string();
      sc.n = req_uint(e, "n", ectx);
      sc.has_graph = true;
    }

    if (phase == "pending") {
      r.phase = Restored::Phase::kPending;
    } else if (phase == "trials") {
      if (race) fail(ectx, "race configuration cannot be in phase 'trials'");
      r.phase = Restored::Phase::kTrials;
      // Batch configs pin their slot grid to the lane width, matching the
      // scheduler (one trial block = one lane batch).
      const std::size_t slots =
          slot_count(cfg.trials, effective_block_size(cfg, options_.block_size));
      for (const Json& s : opt_array(e, "slots", ectx)) {
        const std::size_t slot = static_cast<std::size_t>(req_uint(s, "slot", ectx));
        if (slot >= slots) {
          fail(ectx, "slot " + std::to_string(slot) + " out of range (config has " +
                         std::to_string(slots) + " blocks)");
        }
        if (!sc.slots.emplace(slot, require(s, "summary", ectx)).second) {
          fail(ectx, "duplicate slot " + std::to_string(slot));
        }
        // Curve partials travel with their slot: a curves-enabled config
        // must have one per recorded slot (and a curve-free config none),
        // so resume never silently drops telemetry that was computed.
        const Json* cv = s.find("curves");
        if (cfg.curves.enabled) {
          if (cv == nullptr) {
            fail(ectx, "slot " + std::to_string(slot) +
                           " has no curve partial but the spec enables curves");
          }
          sc.slot_curves[slot] = *cv;
        } else if (cv != nullptr) {
          fail(ectx, "slot " + std::to_string(slot) +
                         " has a curve partial but the spec does not enable curves");
        }
      }
      for (const auto& [slot, summary] : sc.slots) {
        r.trial_slots.emplace_back(slot, summary_from_json(summary, ectx));
      }
      for (const auto& [slot, cv] : sc.slot_curves) {
        r.curve_slots.emplace_back(slot, curve_state_from_json(cv, cfg.curves.points, ectx),
                                   totals_from_json(require(cv, "contacts", ectx), ectx));
      }
    } else if (phase == "screen") {
      if (!race) fail(ectx, "fixed-source configuration cannot be in phase 'screen'");
      r.phase = Restored::Phase::kScreen;
      r.candidates = ids_from_json(require(e, "candidates", ectx), "candidates", ectx);
      if (r.candidates.empty()) fail(ectx, "'candidates' must be non-empty");
      sc.candidates = r.candidates;
      sc.has_candidates = true;
      const std::size_t slots = slot_count(cfg.race.screen_trials, options_.block_size);
      for (const Json& s : opt_array(e, "screen", ectx)) {
        const auto entrant = static_cast<std::uint32_t>(req_uint(s, "entrant", ectx));
        const std::size_t slot = static_cast<std::size_t>(req_uint(s, "slot", ectx));
        if (entrant >= r.candidates.size() || slot >= slots) {
          fail(ectx, "screen block (entrant " + std::to_string(entrant) + ", slot " +
                         std::to_string(slot) + ") out of range");
        }
        if (!sc.screen.emplace(std::make_pair(entrant, slot), require(s, "moments", ectx))
                 .second) {
          fail(ectx, "duplicate screen block (entrant " + std::to_string(entrant) + ", slot " +
                         std::to_string(slot) + ")");
        }
      }
      for (const auto& [key, moments] : sc.screen) {
        r.screen_slots.emplace_back(key.first, key.second, moments_from_json(moments, ectx));
      }
    } else if (phase == "refine") {
      if (!race) fail(ectx, "fixed-source configuration cannot be in phase 'refine'");
      r.phase = Restored::Phase::kRefine;
      r.finalists = ids_from_json(require(e, "finalists", ectx), "finalists", ectx);
      if (r.finalists.empty()) fail(ectx, "'finalists' must be non-empty");
      sc.finalists = r.finalists;
      sc.has_finalists = true;
      const std::uint64_t final_trials =
          cfg.race.final_trials != 0 ? cfg.race.final_trials : cfg.trials;
      const std::size_t slots = slot_count(final_trials, options_.block_size);
      for (const Json& s : opt_array(e, "refine", ectx)) {
        const auto entrant = static_cast<std::uint32_t>(req_uint(s, "entrant", ectx));
        const std::size_t slot = static_cast<std::size_t>(req_uint(s, "slot", ectx));
        if (entrant >= r.finalists.size() || slot >= slots) {
          fail(ectx, "refine block (entrant " + std::to_string(entrant) + ", slot " +
                         std::to_string(slot) + ") out of range");
        }
        if (!sc.refine.emplace(std::make_pair(entrant, slot), require(s, "summary", ectx))
                 .second) {
          fail(ectx, "duplicate refine block (entrant " + std::to_string(entrant) + ", slot " +
                         std::to_string(slot) + ")");
        }
      }
      for (const auto& [key, summary] : sc.refine) {
        r.refine_slots.emplace_back(key.first, key.second, summary_from_json(summary, ectx));
      }
    } else if (phase == "done") {
      r.phase = Restored::Phase::kDone;
      const Json& result = require(e, "result", ectx);
      r.graph_name = req_string(result, "graph", ectx);
      r.n = req_uint(result, "n", ectx);
      r.source = static_cast<graph::NodeId>(req_uint(result, "source", ectx));
      r.best_source = static_cast<graph::NodeId>(req_uint(result, "best_source", ectx));
      r.best_mean = req_number(result, "best_mean", ectx);
      r.summary = summary_from_json(require(result, "summary", ectx), ectx);
      if (cfg.curves.enabled) {
        const Json& cv = require(result, "curves", ectx);
        r.curves = curve_state_from_json(cv, cfg.curves.points, ectx);
        r.contacts = totals_from_json(require(cv, "contacts", ectx), ectx);
      }
      sc.result = result;
      sc.has_graph = false;  // the result carries the graph identity
    } else {
      fail(ectx, "unknown phase '" + phase + "'");
    }
  }

  const std::scoped_lock lock(mutex_);
  store_ = std::move(loaded);
  blocks_done_ = h.blocks_done;
  return out;
}

// --- Merge -------------------------------------------------------------------

std::vector<CampaignResult> merge_campaign_snapshots(const std::vector<CampaignConfig>& configs,
                                                     const std::string& campaign_name,
                                                     const std::vector<Json>& snapshots) {
  if (snapshots.empty()) throw std::runtime_error("merge: no shard snapshots given");
  const std::string spec_hash = campaign_fingerprint(campaign_name, configs);
  const auto k = static_cast<std::uint32_t>(snapshots.size());

  std::vector<const Json*> by_shard(k, nullptr);  // 0-based: shard i -> snapshot doc
  std::uint64_t block_size = 0;
  std::uint64_t sketch_capacity = 0;
  std::uint64_t reservoir_capacity = 0;
  for (std::size_t f = 0; f < snapshots.size(); ++f) {
    const std::string ctx = "merge: snapshot " + std::to_string(f + 1);
    const SnapshotHeader h = parse_header(snapshots[f], ctx);
    check_spec_identity(h, campaign_name, spec_hash, ctx);
    if (h.shard_count != k) {
      fail(ctx, "declares " + std::to_string(h.shard_count) + " shards but " + std::to_string(k) +
                    " snapshot files were given");
    }
    if (h.shard_index < 1 || h.shard_index > k) {
      fail(ctx, "shard index " + std::to_string(h.shard_index) + " out of range 1.." +
                    std::to_string(k));
    }
    if (!h.finished) {
      fail(ctx, "shard " + std::to_string(h.shard_index) +
                    " is unfinished — resume it to completion before merging");
    }
    if (by_shard[h.shard_index - 1] != nullptr) {
      fail(ctx, "duplicate shard " + std::to_string(h.shard_index));
    }
    by_shard[h.shard_index - 1] = &snapshots[f];
    if (f == 0) {
      block_size = h.block_size;
      sketch_capacity = h.sketch_capacity;
      reservoir_capacity = h.reservoir_capacity;
    } else if (h.block_size != block_size || h.sketch_capacity != sketch_capacity ||
               h.reservoir_capacity != reservoir_capacity) {
      fail(ctx, "block size or capacities disagree with snapshot 1 (block " +
                    std::to_string(h.block_size) + " vs " + std::to_string(block_size) + ")");
    }
  }
  // k files with k distinct in-range indices fill every slot; any gap has
  // already been reported as a duplicate of some other index.

  // Validate per-shard config arrays once up front.
  for (std::uint32_t s = 0; s < k; ++s) {
    const std::string ctx = "merge: shard " + std::to_string(s + 1);
    const Json& entries = req_array(*by_shard[s], "configs", ctx);
    if (entries.elements().size() != configs.size()) {
      fail(ctx, "snapshot has " + std::to_string(entries.elements().size()) +
                    " configs, spec has " + std::to_string(configs.size()));
    }
  }

  std::vector<CampaignResult> results;
  results.reserve(configs.size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    const CampaignConfig& cfg = configs[c];
    CampaignResult r = campaign_result_skeleton(cfg, c);
    const std::string ctx = "merge: config '" + r.id + "'";
    const stats::StreamingSummary::Options summary_options = summary_options_for(
        cfg, static_cast<std::size_t>(sketch_capacity),
        static_cast<std::size_t>(reservoir_capacity));

    std::uint32_t done_shard = 0;  // 1-based; 0 = none
    const Json* done_result = nullptr;
    // slot -> (shard, full slot entry: "summary" plus optional "curves")
    std::map<std::size_t, std::pair<std::uint32_t, const Json*>> slots;
    std::string graph_name;
    std::uint64_t graph_n = 0;
    std::uint32_t graph_shard = 0;

    for (std::uint32_t s = 0; s < k; ++s) {
      const Json& e = by_shard[s]->find("configs")->elements()[c];
      const std::string id = req_string(e, "id", ctx);
      if (id != r.id) {
        fail(ctx, "shard " + std::to_string(s + 1) + " calls configs[" + std::to_string(c) +
                      "] '" + id + "'");
      }
      const std::string phase = req_string(e, "phase", ctx);
      if (phase == "pending") continue;
      if (phase == "done") {
        if (done_shard != 0) {
          fail(ctx, "final result recorded by both shard " + std::to_string(done_shard) +
                        " and shard " + std::to_string(s + 1));
        }
        done_shard = s + 1;
        done_result = &require(e, "result", ctx);
        continue;
      }
      if (phase != "trials") {
        fail(ctx, "shard " + std::to_string(s + 1) + " left this config mid-race (phase '" +
                      phase + "'); shard snapshots must be finished");
      }
      if (cfg.source_policy == SourcePolicy::kRace) {
        fail(ctx, "race configuration has trial blocks in shard " + std::to_string(s + 1) +
                      " (races are owned wholesale by one shard)");
      }
      const std::string shard_graph = req_string(e, "graph", ctx);
      const std::uint64_t shard_n = req_uint(e, "n", ctx);
      if (graph_shard == 0) {
        graph_name = shard_graph;
        graph_n = shard_n;
        graph_shard = s + 1;
      } else if (shard_graph != graph_name || shard_n != graph_n) {
        fail(ctx, "graph metadata disagrees between shard " + std::to_string(graph_shard) +
                      " and shard " + std::to_string(s + 1));
      }
      for (const Json& slot_entry : req_array(e, "slots", ctx).elements()) {
        const std::size_t slot = static_cast<std::size_t>(req_uint(slot_entry, "slot", ctx));
        (void)require(slot_entry, "summary", ctx);
        const auto [it, inserted] = slots.emplace(slot, std::make_pair(s + 1, &slot_entry));
        if (!inserted) {
          fail(ctx, "slot " + std::to_string(slot) + " recorded by both shard " +
                        std::to_string(it->second.first) + " and shard " + std::to_string(s + 1));
        }
      }
    }

    if (done_shard != 0) {
      if (!slots.empty()) {
        fail(ctx, "shard " + std::to_string(done_shard) + " has the final result but shard " +
                      std::to_string(slots.begin()->second.first) + " also recorded block slots");
      }
      r.graph_name = req_string(*done_result, "graph", ctx);
      r.n = req_uint(*done_result, "n", ctx);
      r.source = static_cast<graph::NodeId>(req_uint(*done_result, "source", ctx));
      r.best_source = static_cast<graph::NodeId>(req_uint(*done_result, "best_source", ctx));
      r.best_mean = req_number(*done_result, "best_mean", ctx);
      r.summary = stats::StreamingSummary::restored(
          summary_options, summary_from_json(require(*done_result, "summary", ctx), ctx));
      if (cfg.curves.enabled) {
        const Json& cv = require(*done_result, "curves", ctx);
        r.curves = stats::CurveAccumulator::restored(
            curve_options_for(cfg, static_cast<std::size_t>(sketch_capacity)),
            curve_state_from_json(cv, cfg.curves.points, ctx));
        r.contacts = totals_from_json(require(cv, "contacts", ctx), ctx);
      }
    } else {
      if (cfg.source_policy == SourcePolicy::kRace) {
        fail(ctx, "no shard finished this race configuration (coverage gap)");
      }
      const std::size_t expected =
          slot_count(cfg.trials, effective_block_size(cfg, block_size));
      for (std::size_t slot = 0; slot < expected; ++slot) {
        if (slots.find(slot) == slots.end()) {
          fail(ctx, "missing block slot " + std::to_string(slot) + " of " +
                        std::to_string(expected) + " (coverage gap — were all " +
                        std::to_string(k) + " shard files provided?)");
        }
      }
      // Fold in slot order, exactly like the scheduler's last-block fold, so
      // the merged summary is bit-identical to the unsharded run's.
      auto it = slots.begin();
      stats::StreamingSummary total = stats::StreamingSummary::restored(
          summary_options, summary_from_json(require(*it->second.second, "summary", ctx), ctx));
      for (++it; it != slots.end(); ++it) {
        total.merge(stats::StreamingSummary::restored(
            summary_options, summary_from_json(require(*it->second.second, "summary", ctx), ctx)));
      }
      r.summary = std::move(total);
      if (cfg.curves.enabled) {
        // Curve partials fold in the same slot order with the same restored
        // construction options, so merged curves match the unsharded run's
        // bit for bit.
        const stats::CurveAccumulator::Options curve_options =
            curve_options_for(cfg, static_cast<std::size_t>(sketch_capacity));
        auto restore_slot = [&](const Json& entry) {
          const Json& cv = require(entry, "curves", ctx);
          return std::make_pair(
              stats::CurveAccumulator::restored(
                  curve_options, curve_state_from_json(cv, cfg.curves.points, ctx)),
              totals_from_json(require(cv, "contacts", ctx), ctx));
        };
        auto cit = slots.begin();
        auto [curve_total, contact_total] = restore_slot(*cit->second.second);
        for (++cit; cit != slots.end(); ++cit) {
          auto [cpart, tpart] = restore_slot(*cit->second.second);
          curve_total.merge(cpart);
          contact_total.merge(tpart);
        }
        r.curves = std::move(curve_total);
        r.contacts = contact_total;
      }
      r.graph_name = graph_name;
      r.n = graph_n;
    }
    results.push_back(std::move(r));
  }
  return results;
}

// --- File helpers and the merge CLI ------------------------------------------

std::optional<Json> read_json_file(const std::string& path, const char* prog,
                                   std::ostream& err) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    err << prog << ": cannot read " << path << "\n";
    return std::nullopt;
  }
  std::ostringstream text;
  text << file.rdbuf();
  auto doc = Json::parse(text.str());
  if (!doc) {
    err << prog << ": " << path << " is not valid JSON\n";
    return std::nullopt;
  }
  return doc;
}

std::optional<CampaignSpec> load_campaign_spec_file(const std::string& path,
                                                    std::uint64_t trials_override,
                                                    std::uint64_t seed_override, unsigned scale,
                                                    const char* prog, std::ostream& err) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    err << prog << ": cannot read campaign spec " << path << "\n";
    return std::nullopt;
  }
  std::ostringstream text;
  text << file.rdbuf();
  const auto doc = Json::parse(text.str());
  if (!doc) {
    err << prog << ": " << path << " is not valid JSON\n";
    return std::nullopt;
  }
  CampaignSpec spec = parse_campaign_spec(*doc);
  if (!spec.error.empty()) {
    err << prog << ": bad campaign spec: " << spec.error << "\n";
    return std::nullopt;
  }
  // The global overrides keep their documented meaning here: --trials
  // replaces every configuration's trial count (--scale multiplies the
  // spec's own counts otherwise) and --seed replaces every root seed.
  for (CampaignConfig& cfg : spec.configs) {
    cfg.trials = trials_override != 0 ? trials_override : cfg.trials * scale;
    if (seed_override != 0) cfg.seed = seed_override;
  }
  return spec;
}

namespace {

void print_merge_usage(std::ostream& out) {
  out << "usage: campaign_merge --campaign spec.json [options] shard1.json shard2.json ...\n"
         "\n"
         "Folds the finished shard snapshots of one campaign (produced by\n"
         "rumor_bench --campaign spec.json --shard i/k) into the final reports,\n"
         "bit-identical to the unsharded run's --json output.\n"
         "\n"
         "options:\n"
         "  --campaign FILE  the campaign spec the shards were run from (required)\n"
         "  --out FILE       write the merged report via temp-file + atomic rename\n"
         "  --trials N       repeat the override the shard runs used, if any\n"
         "  --seed S         repeat the override the shard runs used, if any\n"
         "  --scale K        repeat the override the shard runs used, if any\n"
         "  --help           this text\n";
}

}  // namespace

void report_stale_snapshots(const std::vector<Json>& snapshots,
                            const std::vector<std::string>& names, const char* prog,
                            std::ostream& err) {
  constexpr double kStaleSeconds = 3600.0;  // an hour of skew is suspicious
  std::vector<double> written(snapshots.size(), -1.0);
  double newest = -1.0;
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    const Json* v = snapshots[i].find("written_at");
    if (v != nullptr && v->is_number() && v->as_number() > 0.0) {
      written[i] = v->as_number();
      newest = std::max(newest, written[i]);
    }
  }
  if (newest < 0.0) return;  // no snapshot carries the stamp
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    if (written[i] < 0.0) continue;
    const double lag = newest - written[i];
    if (lag <= kStaleSeconds) continue;
    const std::string name = i < names.size() ? names[i] : "shard " + std::to_string(i + 1);
    err << prog << ": warning: snapshot '" << name << "' was written "
        << static_cast<long long>(std::llround(lag / 60.0)) << " min before the newest shard"
        << " (stale shard? re-run it if the spec or binary changed since)\n";
  }
}

int run_campaign_merge_cli(int argc, const char* const* argv, std::ostream& out,
                           std::ostream& err) {
  constexpr const char* kProg = "campaign_merge";
  std::string campaign_file;
  std::string out_file;
  std::uint64_t trials = 0;
  std::uint64_t seed = 0;
  unsigned scale = 1;
  std::vector<std::string> files;

  auto numeric_arg = [&](int& i, const char* flag) -> std::optional<std::uint64_t> {
    if (i + 1 >= argc) {
      err << kProg << ": " << flag << " requires a value\n";
      return std::nullopt;
    }
    ++i;
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(argv[i], &end, 10);
    if (argv[i][0] == '-' || argv[i][0] == '+' || end == argv[i] || *end != '\0' ||
        v > (std::uint64_t{1} << 53)) {
      err << kProg << ": bad value for " << flag << ": " << argv[i] << "\n";
      return std::nullopt;
    }
    return v;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_merge_usage(out);
      return 0;
    } else if (arg == "--campaign") {
      if (i + 1 >= argc) {
        err << kProg << ": --campaign requires a file path\n";
        return 2;
      }
      campaign_file = argv[++i];
    } else if (arg == "--out") {
      if (i + 1 >= argc) {
        err << kProg << ": --out requires a file path\n";
        return 2;
      }
      out_file = argv[++i];
    } else if (arg == "--trials") {
      const auto v = numeric_arg(i, "--trials");
      if (!v) return 2;
      trials = *v;
    } else if (arg == "--seed") {
      const auto v = numeric_arg(i, "--seed");
      if (!v) return 2;
      seed = *v;
    } else if (arg == "--scale") {
      const auto v = numeric_arg(i, "--scale");
      if (!v) return 2;
      scale = static_cast<unsigned>(std::clamp<std::uint64_t>(*v, 1, 64));
    } else if (!arg.empty() && arg.front() == '-') {
      err << kProg << ": unknown option " << arg << "\n";
      print_merge_usage(err);
      return 2;
    } else {
      files.emplace_back(arg);
    }
  }

  if (campaign_file.empty()) {
    err << kProg << ": --campaign spec.json is required\n";
    print_merge_usage(err);
    return 2;
  }
  if (files.empty()) {
    err << kProg << ": at least one shard snapshot file is required\n";
    print_merge_usage(err);
    return 2;
  }

  const auto spec = load_campaign_spec_file(campaign_file, trials, seed, scale, kProg, err);
  if (!spec) return 2;
  std::vector<Json> snapshots;
  snapshots.reserve(files.size());
  for (const std::string& f : files) {
    auto doc = read_json_file(f, kProg, err);
    if (!doc) return 2;
    snapshots.push_back(std::move(*doc));
  }
  report_stale_snapshots(snapshots, files, kProg, err);

  std::vector<CampaignResult> results;
  try {
    results = merge_campaign_snapshots(spec->configs, spec->name, snapshots);
  } catch (const std::exception& e) {
    err << kProg << ": " << e.what() << "\n";
    return 1;
  }

  Json reports = Json::array();
  for (const CampaignResult& r : results) reports.push_back(campaign_report(r, spec->name));
  const std::string payload =
      (reports.size() == 1 ? reports.elements().front().dump(2) : reports.dump(2)) + "\n";
  if (!out_file.empty()) {
    std::string error;
    if (!write_file_atomic(out_file, payload, error)) {
      err << kProg << ": " << error << "\n";
      return 1;
    }
  } else {
    out << payload;
  }
  return 0;
}

}  // namespace rumor::sim
