// rumor/sim: single-configuration Monte-Carlo measurement harness.
//
// The paper's quantities are distributional: E[T(alpha, G, u)] (Theorem 2)
// and the high-probability time T_q(alpha, G, u) = min{t : Pr[T <= t] >=
// 1 - q} (Theorem 1, with q = 1/n). The harness estimates both by repeated
// independent executions:
//
//   * each trial runs on its own engine, derived as derive_stream(seed,
//     trial_index) — results are bit-reproducible regardless of thread count
//     or scheduling;
//   * trials are distributed over a worker pool via an atomic work index;
//   * estimates carry bootstrap confidence intervals on request.
//
// Scope note: this is the *one-configuration* path — it materializes every
// sample and drains its own thread pool, which is exactly right for the
// structural benches (e3/e6/e7/e10/e12/e14) and the examples that study a
// single graph in depth. Anything shaped like a sweep — many (graph,
// engine, mode, source) cells — belongs on sim/campaign.hpp, which
// schedules all cells over one shared block queue and reduces each to a
// constant-size streaming summary; the former sweep experiments (e1, e2,
// e4, e5, e8, e11, e13, e15) all run there.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/async.hpp"
#include "core/aux_process.hpp"
#include "core/protocol.hpp"
#include "core/sync.hpp"
#include "rng/rng.hpp"
#include "stats/summary.hpp"

namespace rumor::sim {

using core::Graph;
using core::NodeId;

struct TrialConfig {
  /// Number of independent executions.
  std::uint64_t trials = 200;
  /// Root seed; trial i uses rng::derive_stream(seed, i).
  std::uint64_t seed = 1;
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  unsigned threads = 0;
};

/// A trial body: receives the trial index and its private engine, returns
/// the measured value (spreading time in rounds or time units).
using TrialFn = std::function<double(std::uint64_t trial, rng::Engine& eng)>;

/// Runs `config.trials` executions of `fn` in parallel; the result vector is
/// ordered by trial index (deterministic given the seed).
[[nodiscard]] std::vector<double> run_trials(const TrialConfig& config, const TrialFn& fn);

/// Samples of one protocol's spreading time plus derived estimates.
class SpreadingTimeSample {
 public:
  explicit SpreadingTimeSample(std::vector<double> samples);

  [[nodiscard]] const std::vector<double>& samples() const noexcept { return samples_; }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] double mean() const noexcept { return moments_.mean(); }
  [[nodiscard]] double stddev() const noexcept { return moments_.stddev(); }
  [[nodiscard]] double stderr_mean() const noexcept { return moments_.stderr_mean(); }
  [[nodiscard]] double min() const noexcept { return moments_.min(); }
  [[nodiscard]] double max() const noexcept { return moments_.max(); }
  [[nodiscard]] double median() const;

  /// Empirical quantile at probability p.
  [[nodiscard]] double quantile(double p) const;

  /// The paper's T_q: the smallest t such that a fraction >= 1 - q of trials
  /// finished by t. With q = 1/n this is the high-probability spreading
  /// time; it needs >= 1/q samples to be meaningful, so callers with large n
  /// typically fix q = 1/trials instead (documented in EXPERIMENTS.md).
  [[nodiscard]] double hp_time(double q) const { return quantile(1.0 - q); }

  [[nodiscard]] stats::BootstrapInterval mean_ci(double confidence = 0.95,
                                                 std::size_t resamples = 400,
                                                 std::uint64_t seed = 7) const;

 private:
  std::vector<double> samples_;        // sorted
  stats::RunningMoments moments_;
};

// ---------------------------------------------------------------------------
// One-call measurements for the protocols under study.
// ---------------------------------------------------------------------------

/// Spreading time (rounds) of the synchronous protocol in `mode`.
[[nodiscard]] SpreadingTimeSample measure_sync(const Graph& g, NodeId source, core::Mode mode,
                                               const TrialConfig& config);

/// Spreading time (time units) of the asynchronous protocol in `mode`.
[[nodiscard]] SpreadingTimeSample measure_async(const Graph& g, NodeId source, core::Mode mode,
                                                const TrialConfig& config,
                                                core::AsyncView view = core::AsyncView::kGlobalClock);

/// Spreading time (rounds) of the auxiliary process ppx or ppy.
[[nodiscard]] SpreadingTimeSample measure_aux(const Graph& g, NodeId source, core::AuxKind kind,
                                              const TrialConfig& config);

}  // namespace rumor::sim
