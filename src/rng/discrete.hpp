// rumor/rng: O(1) sampling from arbitrary discrete distributions.
//
// Used by the Chung-Lu and preferential-attachment graph generators (sampling
// nodes proportional to weight/degree) and by the block-coupling machinery of
// Section 5, which must sample a "right-incompatible pair" from the
// non-uniform conditional distribution mu_A (Eq. 1 of the paper).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rng/rng.hpp"

namespace rumor::rng {

/// Walker/Vose alias table: after O(k) preprocessing of k non-negative
/// weights, draws index i with probability w_i / sum(w) in O(1).
class AliasTable {
 public:
  AliasTable() = default;

  /// Builds the table from `weights`. Negative weights are invalid; an
  /// all-zero or empty weight vector yields an empty table (`empty()` true,
  /// sampling is then a precondition violation).
  explicit AliasTable(std::span<const double> weights);

  [[nodiscard]] bool empty() const noexcept { return prob_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

  /// Total weight the table was built from.
  [[nodiscard]] double total_weight() const noexcept { return total_; }

  /// Draws an index in [0, size()) proportional to its weight.
  /// Precondition: !empty().
  template <class Eng>
  [[nodiscard]] std::size_t sample(Eng& eng) const noexcept {
    const std::size_t column = static_cast<std::size_t>(uniform_below(eng, prob_.size()));
    return uniform01(eng) < prob_[column] ? column : alias_[column];
  }

 private:
  std::vector<double> prob_;        // acceptance probability per column
  std::vector<std::uint32_t> alias_;  // fallback index per column
  double total_ = 0.0;
};

/// Samples an index proportional to weights by one linear scan (O(k)).
/// Preferable to AliasTable when the weights are used exactly once.
/// Precondition: weights non-empty with positive total.
template <class Eng>
[[nodiscard]] std::size_t sample_weighted_once(Eng& eng, std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  double x = uniform01(eng) * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

/// Fisher-Yates shuffle of a span, using the library engine.
template <class Eng, class T>
void shuffle(Eng& eng, std::span<T> items) noexcept {
  for (std::size_t i = items.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(uniform_below(eng, i));
    using std::swap;
    swap(items[i - 1], items[j]);
  }
}

}  // namespace rumor::rng
