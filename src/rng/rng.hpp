// rumor/rng: deterministic, splittable pseudo-random number generation.
//
// Every stochastic process in this library (synchronous rounds, Poisson-clock
// steps, coupled auxiliary processes, Monte-Carlo trials) draws its randomness
// through this module. Design goals:
//
//   * Reproducibility: a (seed, stream) pair fully determines a trial,
//     independent of thread scheduling.
//   * Statistical quality: Xoshiro256++ passes BigCrush; SplitMix64 is used
//     only for seeding / stream derivation, as its author recommends.
//   * Speed: uniform-neighbor selection is the inner loop of every protocol
//     engine, so bounded uniforms use Lemire's multiply-shift rejection method
//     rather than modulo.
//
// No <random> engines are used: libstdc++'s distributions are not
// cross-version reproducible, and reproducibility is a stated design goal
// (DESIGN.md §5).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace rumor::rng {

/// SplitMix64: a tiny 64-bit generator with a simple additive state update.
///
/// Used exclusively for (a) expanding a user seed into the 256-bit state of
/// Xoshiro256++ and (b) deriving independent per-trial streams (see
/// `derive_stream`). Reference: Steele, Lea, Flood, "Fast Splittable
/// Pseudorandom Number Generators", OOPSLA 2014.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Advances the state and returns the next 64-bit output.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256++ 1.0 (Blackman & Vigna, 2019): the workhorse engine.
///
/// 256 bits of state, period 2^256 - 1, passes BigCrush. `jump()` advances by
/// 2^128 steps, giving 2^128 non-overlapping subsequences for parallel use;
/// we additionally provide cheap stream derivation via `derive_stream`, which
/// is what the Monte-Carlo harness uses (one derived stream per trial).
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state by pumping SplitMix64, per Vigna's guidance.
  constexpr explicit Xoshiro256pp(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : state_) w = sm.next();
  }

  /// Constructs from a full 256-bit state (must not be all-zero).
  constexpr explicit Xoshiro256pp(const std::array<std::uint64_t, 4>& state) noexcept
      : state_(state) {}

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  /// Advances the state by 2^128 calls to next(); used to partition the
  /// period into provably non-overlapping parallel streams.
  constexpr void jump() noexcept {
    constexpr std::array<std::uint64_t, 4> kJump = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
        0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    apply_polynomial(kJump);
  }

  /// Advances the state by 2^192 calls to next().
  constexpr void long_jump() noexcept {
    constexpr std::array<std::uint64_t, 4> kLongJump = {
        0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL,
        0x77710069854ee241ULL, 0x39109bb02acbe635ULL};
    apply_polynomial(kLongJump);
  }

  [[nodiscard]] constexpr const std::array<std::uint64_t, 4>& state() const noexcept {
    return state_;
  }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  constexpr void apply_polynomial(const std::array<std::uint64_t, 4>& poly) noexcept {
    std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
    for (std::uint64_t word : poly) {
      for (int b = 0; b < 64; ++b) {
        if (word & (1ULL << b)) {
          for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= state_[static_cast<std::size_t>(i)];
        }
        next();
      }
    }
    state_ = acc;
  }

  std::array<std::uint64_t, 4> state_;
};

/// The engine type used throughout the library.
using Engine = Xoshiro256pp;

/// Derives the `stream`-th independent engine from a root seed.
///
/// Implementation: hash (seed, stream) through SplitMix64 with distinct
/// tweaks, then expand to full engine state. Streams with distinct indices
/// are computationally independent — the Monte-Carlo harness assigns stream
/// = trial index so results do not depend on how trials land on threads.
[[nodiscard]] constexpr Engine derive_stream(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Mix the stream index into the seed with a distinct odd constant so that
  // (seed, 0) differs from (seed + 1, 0)'s neighborhood.
  SplitMix64 sm(seed ^ (stream * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL));
  std::array<std::uint64_t, 4> st{};
  for (auto& w : st) w = sm.next();
  // All-zero state is the one invalid state for xoshiro; perturb if hit.
  if ((st[0] | st[1] | st[2] | st[3]) == 0) st[0] = 0x1ULL;
  return Engine(st);
}

// ---------------------------------------------------------------------------
// Variate generation. Free functions over any engine with 64-bit output.
// ---------------------------------------------------------------------------

/// Uniform integer in [0, bound) by Lemire's multiply-shift method.
/// Precondition: bound > 0.
template <class Eng>
[[nodiscard]] std::uint64_t uniform_below(Eng& eng, std::uint64_t bound) noexcept {
  // Fast path rejects with probability < 2^-32 for bounds below 2^32 (the
  // common case: neighbor counts), so the loop almost never iterates.
  for (;;) {
    const std::uint64_t x = eng.next();
    const __uint128_t m = static_cast<__uint128_t>(x) * bound;
    const auto lo = static_cast<std::uint64_t>(m);
    if (lo >= bound) return static_cast<std::uint64_t>(m >> 64);
    // Threshold test (only reached when lo < bound, i.e. rarely).
    const std::uint64_t threshold = (0 - bound) % bound;
    if (lo >= threshold) return static_cast<std::uint64_t>(m >> 64);
  }
}

/// Uniform integer in the inclusive range [lo, hi]. Precondition: lo <= hi.
template <class Eng>
[[nodiscard]] std::uint64_t uniform_range(Eng& eng, std::uint64_t lo, std::uint64_t hi) noexcept {
  return lo + uniform_below(eng, hi - lo + 1);
}

/// Uniform double in [0, 1) with 53 bits of precision.
template <class Eng>
[[nodiscard]] double uniform01(Eng& eng) noexcept {
  return static_cast<double>(eng.next() >> 11) * 0x1.0p-53;
}

/// Uniform double in (0, 1]; safe as an argument to log().
template <class Eng>
[[nodiscard]] double uniform01_open_low(Eng& eng) noexcept {
  return (static_cast<double>(eng.next() >> 11) + 1.0) * 0x1.0p-53;
}

/// Bernoulli(p) trial.
template <class Eng>
[[nodiscard]] bool bernoulli(Eng& eng, double p) noexcept {
  return uniform01(eng) < p;
}

/// Exponential(rate) variate by inversion. Precondition: rate > 0.
///
/// This is the primitive behind every Poisson clock in the asynchronous
/// engine and behind the coupling variables Y_{v,w} ~ Exp(2/deg(v)) of
/// Lemmas 9/10.
template <class Eng>
[[nodiscard]] double exponential(Eng& eng, double rate) noexcept {
  return -std::log(uniform01_open_low(eng)) / rate;
}

/// Geometric(p) on {1, 2, ...}: number of Bernoulli(p) trials up to and
/// including the first success. Sampled by inversion in O(1).
template <class Eng>
[[nodiscard]] std::uint64_t geometric(Eng& eng, double p) noexcept {
  if (p >= 1.0) return 1;
  // ceil(log(U) / log(1-p)) with U ~ Unif(0,1]
  const double u = uniform01_open_low(eng);
  const double g = std::ceil(std::log(u) / std::log1p(-p));
  return g < 1.0 ? 1 : static_cast<std::uint64_t>(g);
}

/// Poisson(mean) variate. Knuth's product method for small means, PTRS
/// (Hörmann 1993) transformed rejection for large means.
template <class Eng>
[[nodiscard]] std::uint64_t poisson(Eng& eng, double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double prod = uniform01_open_low(eng);
    while (prod > limit) {
      ++k;
      prod *= uniform01_open_low(eng);
    }
    return k;
  }
  // PTRS rejection sampler.
  const double b = 0.931 + 2.53 * std::sqrt(mean);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);
  for (;;) {
    const double u = uniform01(eng) - 0.5;
    const double v = uniform01_open_low(eng);
    const double us = 0.5 - std::abs(u);
    const double k = std::floor((2.0 * a / us + b) * u + mean + 0.43);
    if (us >= 0.07 && v <= v_r) return static_cast<std::uint64_t>(k);
    if (k < 0.0 || (us < 0.013 && v > us)) continue;
    if (std::log(v) + std::log(inv_alpha) - std::log(a / (us * us) + b) <=
        k * std::log(mean) - mean - std::lgamma(k + 1.0)) {
      return static_cast<std::uint64_t>(k);
    }
  }
}

}  // namespace rumor::rng
