#include "rng/discrete.hpp"

#include <cassert>

namespace rumor::rng {

AliasTable::AliasTable(std::span<const double> weights) {
  total_ = 0.0;
  for (double w : weights) {
    assert(w >= 0.0 && "AliasTable weights must be non-negative");
    total_ += w;
  }
  if (weights.empty() || total_ <= 0.0) return;

  const std::size_t k = weights.size();
  prob_.assign(k, 0.0);
  alias_.assign(k, 0);

  // Scale weights so the average is 1, then split columns into those below
  // (small) and at-or-above (large) the average. Vose's stable pairing.
  std::vector<double> scaled(k);
  const double scale = static_cast<double>(k) / total_;
  for (std::size_t i = 0; i < k; ++i) scaled[i] = weights[i] * scale;

  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(k);
  large.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;  // ordered for fp stability
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Residual columns are hit by fp round-off; they accept with prob 1.
  for (std::uint32_t l : large) prob_[l] = 1.0;
  for (std::uint32_t s : small) prob_[s] = 1.0;
}

}  // namespace rumor::rng
