#!/usr/bin/env python3
"""Fold rumor_bench --curves campaign reports into spread-profile tables.

The input is the --json output of a campaign run with spread telemetry
enabled (the --curves flag, or per-cell ``curves`` blocks in the spec):
each report carries a ``stats.curves`` object with the informed-count
curve on a fixed grid (per-round for round-based engines, per-time-bucket
for the async engine), its phase decomposition, and the contact
accounting folded from the protocol probes (see docs/OBSERVABILITY.md).
This report answers what the raw arrays make you eyeball manually:

* **Per-config spread profile**: the mean/p10/p50/p90 informed-count
  curve on a down-sampled grid, the phase boundaries (startup to 10% of
  the graph, growth to 90%, spread to full), and call efficiency — which
  fraction of push/pull transmissions were useful (informed a new node)
  rather than wasted on already-informed targets.

* **Sync-vs-async comparison**: for each (graph, mode, n) cell measured
  under both a round-based and the async engine, the phase durations and
  efficiency side by side — the paper's point that the async
  Poisson-clock dynamics change the constant, not the shape.

* ``--check``: validates invariants the plumbing must preserve —
  informed-count curves are monotone non-decreasing, curves end exactly
  at n (every trial runs to full informedness), the grid length agrees
  with the spreading-time extremes in the report rows, and the exact
  integer conservation law: every node except the source is informed by
  exactly one useful transmission, so
  ``useful_push + useful_pull == informed_total - trials * sources``.
  Probes count on the engine's contact path and the summary rows on the
  result path, so agreement is a real consistency check, not a
  tautology. CI runs this on the curves smoke campaign.

Usage:
  spread_report.py REPORT.json [--rows N] [--check]

Exit status: 0 = ok, 1 = --check failure, 2 = bad input.
"""

import argparse
import json
import sys

# Curve values are means of integer counts over up to 2^53 trials; a
# relative epsilon absorbs accumulation rounding without masking a real
# monotonicity violation.
EPS = 1e-9


# The report schema this tool was written against (kReportSchemaVersion in
# src/sim/experiment.hpp); missing key = version 1. Policy: bench/README.md,
# "Report schema versioning".
KNOWN_SCHEMA_VERSION = 1


def load_reports(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    reports = doc if isinstance(doc, list) else [doc]
    for r in reports:
        if not isinstance(r, dict) or "stats" not in r:
            raise ValueError(f"{path}: not a rumor_bench report (no stats key)")
        version = r.get("schema_version")
        if isinstance(version, int) and version > KNOWN_SCHEMA_VERSION:
            print(
                f"{path}: warning: report schema_version {version} is newer "
                f"than this tool understands ({KNOWN_SCHEMA_VERSION}); fields "
                f"may have moved or been renamed",
                file=sys.stderr,
            )
    return reports


def curve_configs(reports):
    """Returns [(report, curves)] for the reports that carry spread curves."""
    out = []
    for r in reports:
        curves = r.get("stats", {}).get("curves")
        if isinstance(curves, dict):
            out.append((r, curves))
    return out


def grid_coord(curves, k):
    """Grid coordinate of curve point k (rounds, or time in bucket units)."""
    if curves["grid"] == "time":
        return k * curves["time_bucket"]
    return float(k)


def efficiency(contacts):
    """Returns (useful, wasted, useful fraction) over both directions."""
    useful = contacts["useful_push"] + contacts["useful_pull"]
    wasted = contacts["wasted_push"] + contacts["wasted_pull"]
    total = useful + wasted
    return useful, wasted, useful / total if total > 0 else 0.0


def profile_table(report, curves, rows):
    """Prints one config's down-sampled curve table and its summary lines."""
    params = report.get("params", {})
    n = params.get("n", 0)
    print(f"{report.get('experiment', '?')}")
    print(f"  grid: {curves['grid']}"
          + (f" (bucket {curves['time_bucket']})" if curves["grid"] == "time" else "")
          + f", {curves['points']} point(s), {curves['trials']} trial(s), "
          f"max_len {curves['max_len']}")
    mean = curves["mean"]
    points = len(mean)
    step = max(1, (points + rows - 1) // rows)
    unit = "t" if curves["grid"] == "time" else "round"
    print(f"  {unit:>7}  {'mean':>10}  {'stddev':>9}  {'p10':>7}  {'p50':>7}  "
          f"{'p90':>7}  frac")
    picked = sorted(set(range(0, points, step)) | {points - 1})
    for k in picked:
        frac = mean[k] / n if n > 0 else 0.0
        print(f"  {grid_coord(curves, k):>7.4g}  {mean[k]:>10.2f}  "
              f"{curves['stddev'][k]:>9.2f}  {curves['p10'][k]:>7.4g}  "
              f"{curves['p50'][k]:>7.4g}  {curves['p90'][k]:>7.4g}  {frac:5.1%}")
    phases = curves.get("phases", {})
    parts = []
    for key in ("startup_duration", "growth_duration", "shrink_duration"):
        v = phases.get(key)
        parts.append(f"{key.split('_')[0]} {v:.4g}" if v is not None else
                     f"{key.split('_')[0]} -")
    unit_name = "time units" if curves["grid"] == "time" else "rounds"
    print(f"  phases ({unit_name}): " + ", ".join(parts))
    contacts = curves["contacts"]
    useful, wasted, frac = efficiency(contacts)
    per_node = contacts["contacts"] / contacts["informed_total"] \
        if contacts["informed_total"] > 0 else 0.0
    print(f"  contacts: {contacts['contacts']} over {contacts['ticks']} tick(s) "
          f"({per_node:.2f} per informed node); useful {useful}, wasted {wasted} "
          f"({frac:.1%} useful), empty {contacts['empty_contacts']}")


def comparison_table(configs):
    """Prints round-based vs async phase/efficiency rows per (graph, mode, n)."""
    cells = {}
    for report, curves in configs:
        params = report.get("params", {})
        key = (params.get("graph", "?"), params.get("mode", "?"), params.get("n", 0))
        cells.setdefault(key, []).append((params.get("engine", "?"), curves))
    pairs = {k: v for k, v in cells.items()
             if any(c["grid"] == "rounds" for _, c in v)
             and any(c["grid"] == "time" for _, c in v)}
    if not pairs:
        return
    print("sync vs async (phase durations in native units: rounds | time):")
    header = (f"  {'cell':<34}  {'engine':<11}  {'startup':>8}  {'growth':>8}  "
              f"{'shrink':>8}  useful")
    print(header)
    for (graph, mode, n), engines in sorted(pairs.items()):
        cell = f"{graph} {mode} n={n}"
        for engine, curves in engines:
            phases = curves.get("phases", {})
            cols = []
            for key in ("startup_duration", "growth_duration", "shrink_duration"):
                v = phases.get(key)
                cols.append(f"{v:>8.4g}" if v is not None else f"{'-':>8}")
            _, _, frac = efficiency(curves["contacts"])
            print(f"  {cell:<34}  {engine:<11}  {cols[0]}  {cols[1]}  {cols[2]}  "
                  f"{frac:5.1%}")
            cell = ""


def check_config(report, curves):
    """Validates one config's curve invariants; returns violation strings."""
    problems = []
    name = report.get("experiment", "?")
    params = report.get("params", {})
    n = params.get("n", 0)
    points = curves["points"]
    arrays = {k: curves[k] for k in ("mean", "stddev", "p10", "p50", "p90")}
    for key, arr in arrays.items():
        if len(arr) != points:
            problems.append(f"{name}: {key} has {len(arr)} point(s), spec says {points}")
    for key in ("mean", "p10", "p50", "p90"):
        arr = arrays[key]
        for k in range(1, len(arr)):
            if arr[k] < arr[k - 1] - EPS * max(1.0, abs(arr[k - 1])):
                problems.append(
                    f"{name}: {key} decreases at grid point {k} "
                    f"({arr[k - 1]} -> {arr[k]})")
                break
    # Every trial runs to full informedness, so once the grid covers the
    # slowest trial (max_len points) the curve sits exactly at n.
    max_len = curves["max_len"]
    mean = arrays["mean"]
    if max_len <= points and mean:
        tail = mean[max_len - 1:]
        if any(abs(v - n) > EPS * n for v in tail):
            problems.append(
                f"{name}: mean curve does not saturate at n={n} from grid "
                f"point {max_len - 1} (tail starts at {tail[0]})")
    # The grid length must agree with the spreading-time extremes measured
    # independently on the result path (report rows).
    rows = report.get("rows", [])
    stat_max = rows[0].get("max") if rows else None
    if stat_max is not None:
        if curves["grid"] == "rounds":
            # A trial that finishes in R rounds contributes R+1 curve points.
            if max_len != int(round(stat_max)) + 1:
                problems.append(
                    f"{name}: max_len {max_len} but slowest trial took "
                    f"{stat_max} round(s) (expected {int(round(stat_max)) + 1})")
        else:
            bucket = curves["time_bucket"]
            lo, hi = (max_len - 2) * bucket, (max_len - 1) * bucket
            slack = EPS * max(1.0, stat_max)
            if not (lo - slack < stat_max <= hi + slack):
                problems.append(
                    f"{name}: max_len {max_len} spans ({lo}, {hi}] at bucket "
                    f"{bucket} but the slowest trial took {stat_max}")
    # Conservation: each node beyond the source is informed by exactly one
    # useful transmission. Exact integer identity, no epsilon.
    contacts = curves["contacts"]
    useful = contacts["useful_push"] + contacts["useful_pull"]
    informed = contacts["informed_total"] - curves["trials"] * curves["sources"]
    if useful != informed:
        problems.append(
            f"{name}: {useful} useful transmission(s) but "
            f"{informed} non-source node(s) were informed")
    if contacts["informed_total"] != curves["trials"] * n:
        problems.append(
            f"{name}: informed_total {contacts['informed_total']} != "
            f"trials * n = {curves['trials'] * n}")
    return problems


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="JSON report from rumor_bench --campaign --curves")
    parser.add_argument(
        "--rows", type=int, default=12,
        help="approximate rows per curve table (default: 12)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="validate monotonicity, saturation, grid-endpoint agreement, and "
        "the useful-transmission conservation law; exit 1 on any violation",
    )
    args = parser.parse_args()

    try:
        reports = load_reports(args.report)
    except (OSError, ValueError) as err:
        print(f"spread_report: {err}", file=sys.stderr)
        return 2

    configs = curve_configs(reports)
    if not configs:
        print("spread_report: no stats.curves in any report "
              "(run the campaign with --curves)", file=sys.stderr)
        return 2
    skipped = len(reports) - len(configs)
    if skipped:
        print(f"({skipped} report(s) without spread curves skipped)\n")

    for i, (report, curves) in enumerate(configs):
        if i:
            print()
        profile_table(report, curves, args.rows)
    print()
    comparison_table(configs)

    if args.check:
        problems = []
        for report, curves in configs:
            problems += check_config(report, curves)
        if problems:
            print(f"\nspread_report: {len(problems)} check failure(s):",
                  file=sys.stderr)
            for p in problems:
                print(f"  {p}", file=sys.stderr)
            return 1
        print(f"\nspread_report: check passed — monotone saturated curves and "
              f"exact useful-transmission conservation across "
              f"{len(configs)} config(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
