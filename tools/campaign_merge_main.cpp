// tools/campaign_merge: folds finished shard snapshots (rumor_bench
// --campaign ... --shard i/k) into the campaign's final report,
// bit-identical to an unsharded run. All logic lives in
// sim/checkpoint.cpp; this is the thin process entry point.
#include <iostream>

#include "sim/checkpoint.hpp"

int main(int argc, char** argv) {
  return rumor::sim::run_campaign_merge_cli(argc, argv, std::cout, std::cerr);
}
