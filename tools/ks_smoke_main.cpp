// ks_smoke: the batch-engine distributional gate as a CI step.
//
// Runs the batch_sync acceptance sweep — graph families x protocol modes x
// loss on/off — and KS-gates each cell's batch spreading times against
// run_sync samples of the same law (dist::ks_two_sample_test, exact
// p-values at these sample sizes). Prints a Markdown table so CI can tee
// the output straight into $GITHUB_STEP_SUMMARY, and exits 1 when any cell
// fails the gate. The same sweep runs wider in tests/test_batch_sync.cpp;
// this binary exists so the contract is visible per CI run, not only when
// a test fails.
//
// Usage: ks_smoke [trials-per-side] [alpha]
//   defaults: 192 trials per side, alpha 1e-3.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/rumor.hpp"
#include "dist/distributions.hpp"
#include "rng/rng.hpp"

namespace {

using namespace rumor;

std::vector<double> batch_samples(const graph::Graph& g, core::Mode mode, double loss,
                                  std::uint64_t seed, std::uint64_t trials) {
  std::vector<double> out;
  out.reserve(trials);
  core::BatchSyncOptions options;
  options.mode = mode;
  options.message_loss = loss;
  for (std::uint64_t b = 0; b < trials; b += core::kMaxBatchLanes) {
    options.lanes =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(core::kMaxBatchLanes, trials - b));
    rng::Engine eng = rng::derive_stream(seed, b);
    const auto result = core::run_batch_sync(g, 0, eng, options);
    for (const std::uint64_t rounds : result.rounds) out.push_back(static_cast<double>(rounds));
  }
  return out;
}

std::vector<double> sync_samples(const graph::Graph& g, core::Mode mode, double loss,
                                 std::uint64_t seed, std::uint64_t trials) {
  std::vector<double> out;
  out.reserve(trials);
  core::SyncOptions options;
  options.mode = mode;
  options.message_loss = loss;
  for (std::uint64_t t = 0; t < trials; ++t) {
    rng::Engine eng = rng::derive_stream(seed, t);
    out.push_back(static_cast<double>(core::run_sync(g, 0, eng, options).rounds));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t trials = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 192;
  const double alpha = argc > 2 ? std::strtod(argv[2], nullptr) : 1e-3;
  if (trials == 0) {
    std::fprintf(stderr, "ks_smoke: trials must be positive\n");
    return 2;
  }

  const graph::Graph families[] = {graph::hypercube(7), graph::complete(64), graph::star(129),
                                   graph::torus(8)};

  std::printf("### batch_sync KS gate (n=%llu per side, alpha=%g)\n\n",
              static_cast<unsigned long long>(trials), alpha);
  std::printf("| graph | mode | loss | D | p | gate |\n");
  std::printf("|---|---|---|---|---|---|\n");

  int failures = 0;
  std::uint64_t cell = 0;
  for (const auto& g : families) {
    for (const core::Mode mode : {core::Mode::kPush, core::Mode::kPull, core::Mode::kPushPull}) {
      for (const double loss : {0.0, 0.3}) {
        const auto batch = batch_samples(g, mode, loss, 820'000 + cell, trials);
        const auto sync = sync_samples(g, mode, loss, 840'000 + cell, trials);
        const auto test = dist::ks_two_sample_test(batch, sync);
        const bool pass = test.p_value >= alpha;
        if (!pass) ++failures;
        std::printf("| %s | %s | %.1f | %.4f | %.4g | %s |\n", g.name().c_str(),
                    core::mode_name(mode), loss, test.statistic, test.p_value,
                    pass ? "pass" : "**FAIL**");
        ++cell;
      }
    }
  }

  std::printf("\n%llu cells, %d failure(s)\n", static_cast<unsigned long long>(cell), failures);
  if (failures != 0) {
    std::fprintf(stderr, "ks_smoke: %d cell(s) failed the KS gate at alpha=%g\n", failures,
                 alpha);
    return 1;
  }
  return 0;
}
