// tools/graph_pack: packs graphs into the memory-mapped store format
// (docs/GRAPH_FORMAT.md) that campaign cells open with
// graph: {kind: "file", path: ...}.
//
//   graph_pack --edges FILE [--compact-ids] [--name NAME] --out STORE
//       Pack a SNAP-style edge list ('u v' per line, '#' comments).
//       --compact-ids relabels sparse ids to [0, n) in first-appearance
//       order (required for dumps with arbitrary 64-bit ids).
//
//   graph_pack --family FAM --n N [--degree D] [--p P] [--beta B]
//              [--average-degree A] [--graph-seed S] --out STORE
//       Pack a generated family through the exact spec resolution campaign
//       cells use (sim::build_graph), so the packed graph is bit-identical
//       to the in-memory graph a campaign cell with the same spec builds.
//       Without --graph-seed, random families use seed 1 (a campaign
//       cell's default seed).
//
//   graph_pack --info STORE [--verify]
//       Dump the store header; --verify additionally recomputes the
//       payload checksum.
//
// Exit codes: 0 success, 1 runtime failure (I/O, corrupt store), 2 usage.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "graph/graph_store.hpp"
#include "graph/io.hpp"
#include "sim/campaign.hpp"

namespace {

int usage(std::ostream& err) {
  err << "usage: graph_pack --edges FILE [--compact-ids] [--name NAME] --out STORE\n"
         "       graph_pack --family FAM --n N [--degree D] [--p P] [--beta B]\n"
         "                  [--average-degree A] [--graph-seed S] --out STORE\n"
         "       graph_pack --info STORE [--verify]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string edges;
  std::string out;
  std::string info;
  std::string name;
  bool compact_ids = false;
  bool verify = false;
  rumor::sim::GraphSpec spec;

  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "graph_pack: missing value after " << argv[i] << "\n";
      std::exit(usage(std::cerr));
    }
    return argv[i + 1];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--edges") edges = need_value(i++);
      else if (arg == "--out") out = need_value(i++);
      else if (arg == "--info") info = need_value(i++);
      else if (arg == "--name") name = need_value(i++);
      else if (arg == "--compact-ids") compact_ids = true;
      else if (arg == "--verify") verify = true;
      else if (arg == "--family") spec.family = need_value(i++);
      else if (arg == "--n") spec.n = std::stoull(need_value(i++));
      else if (arg == "--degree") spec.degree = static_cast<std::uint32_t>(std::stoul(need_value(i++)));
      else if (arg == "--p") spec.p = std::stod(need_value(i++));
      else if (arg == "--beta") spec.beta = std::stod(need_value(i++));
      else if (arg == "--average-degree") spec.average_degree = std::stod(need_value(i++));
      else if (arg == "--graph-seed") spec.graph_seed = std::stoull(need_value(i++));
      else if (arg == "--help" || arg == "-h") {
        usage(std::cout);
        return 0;
      }
      else {
        std::cerr << "graph_pack: unknown argument '" << arg << "'\n";
        return usage(std::cerr);
      }
    } catch (const std::exception&) {
      std::cerr << "graph_pack: bad numeric value after " << arg << "\n";
      return usage(std::cerr);
    }
  }

  try {
    if (!info.empty()) {
      if (!edges.empty() || !spec.family.empty() || !out.empty()) return usage(std::cerr);
      const rumor::graph::GraphStoreInfo store_info =
          verify ? rumor::graph::verify_graph_store(info)
                 : rumor::graph::read_graph_store_info(info);
      std::cout << rumor::graph::graph_store_info_dump(store_info, info, verify);
      return 0;
    }

    if (out.empty() || edges.empty() == spec.family.empty()) {
      // Exactly one input mode (--edges xor --family), and --out required.
      return usage(std::cerr);
    }

    rumor::graph::Graph g = [&] {
      if (!edges.empty()) return rumor::graph::read_edge_list_file(edges, compact_ids);
      return rumor::sim::build_graph(spec, /*fallback_seed=*/1);
    }();
    if (!name.empty()) {
      // Re-tag through the edge-list reader's naming hook: rebuilds are
      // avoidable, but names only matter for small curated stores.
      rumor::graph::GraphBuilder builder(g.num_nodes());
      for (rumor::graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        for (const rumor::graph::NodeId w : g.neighbors(v)) {
          if (v < w) builder.add_edge(v, w);
        }
      }
      g = std::move(builder).build(name);
    }
    const std::string source = !edges.empty()
                                   ? "edge_list:" + edges + (compact_ids ? " (compact_ids)" : "")
                                   : "family:" + spec.family + " n=" + std::to_string(spec.n) +
                                         " graph_seed=" + std::to_string(spec.graph_seed);
    rumor::graph::write_graph_store(g, out, source);
    const rumor::graph::GraphStoreInfo written = rumor::graph::read_graph_store_info(out);
    std::cout << "packed " << written.name << ": " << written.n << " nodes, "
              << written.num_edges() << " edges, " << written.file_size << " bytes ("
              << (written.wide_offsets ? "64" : "32") << "-bit offsets) -> " << out << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "graph_pack: " << e.what() << "\n";
    return 1;
  }
}
