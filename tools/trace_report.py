#!/usr/bin/env python3
"""Fold a rumor_bench --trace file into per-config cost and utilization tables.

The trace is Chrome trace-event JSON (chrome://tracing / Perfetto "JSON
Object Format"): complete spans (``ph:"X"``, ts/dur in microseconds) on one
lane per worker, tagged with the campaign config id and block slot, plus a
top-level ``metrics`` object holding the campaign's merged counter registry
(see src/obs/trace.cpp for the writer). This report answers the questions a
trace viewer makes you eyeball manually:

* **Per-config cost**: how many blocks each config executed, total and mean
  wall time inside its ``block:*`` spans, and its share of all busy time —
  i.e. which configs dominate the campaign.

* **Worker utilization**: per-worker busy time (sum of top-level block
  spans) against the trace's wall span, exposing load imbalance from the
  shared block queue.

* **Stragglers**: the longest individual spans and the campaign's tail —
  how long the last-finishing block ran after every other worker went
  idle. A long tail with idle peers means a config's block size is too
  coarse to load-balance (split its trials across more blocks).

* ``--check``: cross-verifies the spans against the embedded metrics
  registry — per-config block span counts must equal the registry's
  ``per_config[].blocks`` exactly, total spans must equal
  ``totals.blocks_executed``, checkpoint spans must equal
  ``checkpoint_writes`` — and validates span geometry (non-negative
  durations, per-worker block spans non-overlapping, graph/merge spans
  nested inside a block span on the same worker). Spans and counters are
  recorded by independent code paths, so agreement is a real consistency
  check on the telemetry plumbing, not a tautology. CI runs this on the
  smoke campaign's trace.

Usage:
  trace_report.py TRACE.json [--top N] [--check]

Exit status: 0 = ok, 1 = --check failure, 2 = bad input.
"""

import argparse
import json
import sys

# Span timestamps are fixed-point microseconds with nanosecond resolution
# (three decimals); half a nanosecond absorbs float-parse rounding without
# masking any real geometry violation.
EPS_US = 0.0005


# The trace schema this tool was written against (otherData.schema_version,
# stamped by obs/trace.cpp); traces without the key predate it and are
# version 1. Policy: bench/README.md, "Report schema versioning".
KNOWN_SCHEMA_VERSION = 1


def load_trace(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError(f"{path}: not a trace file (no traceEvents key)")
    version = doc.get("otherData", {}).get("schema_version")
    if isinstance(version, int) and version > KNOWN_SCHEMA_VERSION:
        print(
            f"{path}: warning: trace schema_version {version} is newer than "
            f"this tool understands ({KNOWN_SCHEMA_VERSION}); fields may have "
            f"moved or been renamed",
            file=sys.stderr,
        )
    return doc


def lane_names(events):
    """Returns {tid: lane name} from thread_name metadata events."""
    names = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            names[ev["tid"]] = ev["args"]["name"]
    return names


def spans(events):
    """Returns the complete-span events, each with a computed end time."""
    out = []
    for ev in events:
        if ev.get("ph") != "X":
            continue
        ev = dict(ev)
        ev["end"] = float(ev["ts"]) + float(ev["dur"])
        out.append(ev)
    return out


def block_spans(all_spans):
    return [s for s in all_spans if s["name"].startswith("block:")]


def per_config_table(blocks):
    """Prints per-config block counts and costs; returns {config: count}."""
    stats = {}
    for s in blocks:
        config = s["args"]["config"]
        entry = stats.setdefault(config, {"blocks": 0, "total_us": 0.0, "max_us": 0.0})
        entry["blocks"] += 1
        entry["total_us"] += float(s["dur"])
        entry["max_us"] = max(entry["max_us"], float(s["dur"]))
    total_us = sum(e["total_us"] for e in stats.values()) or 1.0
    width = max((len(c) for c in stats), default=6)
    print(f"{'config':<{width}}  {'blocks':>6}  {'total ms':>9}  {'mean ms':>8}  "
          f"{'max ms':>8}  share")
    for config, e in sorted(stats.items(), key=lambda kv: -kv[1]["total_us"]):
        print(
            f"{config:<{width}}  {e['blocks']:>6}  {e['total_us'] / 1e3:>9.2f}  "
            f"{e['total_us'] / e['blocks'] / 1e3:>8.2f}  {e['max_us'] / 1e3:>8.2f}  "
            f"{100.0 * e['total_us'] / total_us:4.1f}%"
        )
    return {config: e["blocks"] for config, e in stats.items()}


def utilization_table(blocks, all_spans, lanes):
    """Prints per-worker busy time against the trace's wall span."""
    if not all_spans:
        # An empty trace (campaign with zero blocks, or a flush that lost
        # every span) has no wall span; a 0/0 utilization table would just
        # print garbage percentages.
        print("no spans recorded — worker utilization is undefined for an empty trace")
        return
    begin = min(float(s["ts"]) for s in all_spans)
    end = max(s["end"] for s in all_spans)
    wall_us = end - begin
    busy = {}
    count = {}
    for s in blocks:
        busy[s["tid"]] = busy.get(s["tid"], 0.0) + float(s["dur"])
        count[s["tid"]] = count.get(s["tid"], 0) + 1
    print(f"{'worker':<12}  {'blocks':>6}  {'busy ms':>9}  util")
    for tid in sorted(busy):
        name = lanes.get(tid, f"tid {tid}")
        util = 100.0 * busy[tid] / wall_us if wall_us > 0 else 0.0
        print(f"{name:<12}  {count[tid]:>6}  {busy[tid] / 1e3:>9.2f}  {util:4.1f}%")
    print(f"(trace wall span: {wall_us / 1e3:.2f} ms)")


def straggler_report(blocks, top):
    """Prints the longest spans and the campaign's idle tail."""
    if not blocks:
        return
    print(f"longest {min(top, len(blocks))} block span(s):")
    for s in sorted(blocks, key=lambda s: -float(s["dur"]))[:top]:
        slot = s["args"].get("slot", "-")
        print(
            f"  {float(s['dur']) / 1e3:>9.2f} ms  {s['name']:<13} "
            f"{s['args']['config']} (slot {slot}, worker {s['tid']})"
        )
    last = max(blocks, key=lambda s: s["end"])
    other_ends = [s["end"] for s in blocks if s["tid"] != last["tid"]]
    if not other_ends:
        # All block spans ran on one lane (--threads 1, or a one-block
        # campaign); there is no cross-worker tail to measure, and max()
        # over the empty end list would throw.
        print("tail: all block spans ran on one worker — no cross-worker tail")
        return
    tail_us = last["end"] - max(other_ends)
    if tail_us > 0:
        print(
            f"tail: {last['args']['config']} (worker {last['tid']}) ran "
            f"{tail_us / 1e3:.2f} ms after every other worker finished"
        )


def check_geometry(blocks, all_spans, lanes):
    """Validates span shape; returns a list of violation strings.

    Workers execute one block at a time and record graph builds and merges
    from inside the executing block, so block spans on one lane must not
    overlap and every non-block campaign span must nest inside a block span
    on its own lane. The checkpoint lane is a service lane — its spans
    happen during blocks on *other* lanes — so only its durations are
    checked.
    """
    problems = []
    for s in all_spans:
        if float(s["dur"]) < 0 or float(s["ts"]) < 0:
            problems.append(f"negative ts/dur in span {s['name']} on tid {s['tid']}")
    by_tid = {}
    for s in blocks:
        by_tid.setdefault(s["tid"], []).append(s)
    for tid, lane in by_tid.items():
        lane.sort(key=lambda s: float(s["ts"]))
        for prev, cur in zip(lane, lane[1:]):
            if float(cur["ts"]) < prev["end"] - EPS_US:
                problems.append(
                    f"overlapping block spans on worker {tid}: "
                    f"{prev['args']['config']} and {cur['args']['config']}"
                )
    for s in all_spans:
        if s["name"].startswith("block:") or lanes.get(s["tid"]) == "checkpoint":
            continue
        nested = any(
            float(parent["ts"]) - EPS_US <= float(s["ts"])
            and s["end"] <= parent["end"] + EPS_US
            for parent in by_tid.get(s["tid"], [])
        )
        if not nested:
            problems.append(
                f"span {s['name']} ({s['args'].get('config', '?')}) on tid "
                f"{s['tid']} is not nested in any block span"
            )
    return problems


def check_against_metrics(doc, span_counts, all_spans, lanes):
    """Cross-verifies span counts against the embedded metrics registry."""
    problems = []
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        return ["trace has no embedded metrics object (run with --trace)"]
    registry = {row["id"]: row["blocks"] for row in metrics.get("per_config", [])}
    for config in sorted(set(registry) | set(span_counts)):
        got = span_counts.get(config, 0)
        want = registry.get(config, 0)
        if got != want:
            problems.append(
                f"config {config}: {got} block span(s) but metrics registry "
                f"counts {want}"
            )
    total_spans = sum(span_counts.values())
    executed = metrics.get("totals", {}).get("blocks_executed")
    if executed is not None and total_spans != executed:
        problems.append(
            f"{total_spans} block span(s) but totals.blocks_executed == {executed}"
        )
    ck_spans = sum(
        1 for s in all_spans
        if lanes.get(s["tid"]) == "checkpoint" and s["name"] == "checkpoint:write"
    )
    ck_writes = metrics.get("checkpoint_writes")
    if ck_writes is not None and ck_spans != ck_writes:
        problems.append(
            f"{ck_spans} checkpoint span(s) but checkpoint_writes == {ck_writes}"
        )
    return problems


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="trace file written by rumor_bench --trace")
    parser.add_argument(
        "--top", type=int, default=5,
        help="number of longest spans to list (default: 5)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="cross-verify spans against the embedded metrics registry and "
        "validate span geometry; exit 1 on any mismatch",
    )
    args = parser.parse_args()

    try:
        doc = load_trace(args.trace)
    except (OSError, ValueError) as err:
        print(f"trace_report: {err}", file=sys.stderr)
        return 2

    events = doc["traceEvents"]
    lanes = lane_names(events)
    all_spans = spans(events)
    blocks = block_spans(all_spans)
    other = doc.get("otherData", {})
    build = other.get("build_info", {})
    if build:
        print(
            f"campaign '{other.get('campaign', '?')}' — built from "
            f"{build.get('git_sha', '?')} ({build.get('compiler', '?')} "
            f"{build.get('compiler_version', '?')}, {build.get('build_type', '?')})"
        )
    print(f"{len(all_spans)} span(s), {len(blocks)} block(s), "
          f"{len(lanes)} lane(s)\n")

    span_counts = per_config_table(blocks)
    print()
    utilization_table(blocks, all_spans, lanes)
    print()
    straggler_report(blocks, args.top)

    if args.check:
        problems = check_geometry(blocks, all_spans, lanes)
        problems += check_against_metrics(doc, span_counts, all_spans, lanes)
        if problems:
            print(f"\ntrace_report: {len(problems)} check failure(s):",
                  file=sys.stderr)
            for p in problems:
                print(f"  {p}", file=sys.stderr)
            return 1
        print(
            f"\ntrace_report: check passed — {sum(span_counts.values())} block "
            f"span(s) match the metrics registry across "
            f"{len(span_counts)} config(s)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
