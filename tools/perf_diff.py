#!/usr/bin/env python3
"""Perf-trajectory gate: diff a rumor_bench report against a baseline.

Compares the e9_micro ns_per_op columns of a freshly produced
``rumor_bench --all --json --out BENCH_pr.json`` report against a
checked-in baseline (bench/BASELINE_e9.json) and fails when any primitive
slowed down by more than the tolerance factor.

The baseline was recorded on one particular machine and CI runners differ,
so the default tolerance is deliberately loose (5x): this gate catches
catastrophic regressions (an accidentally quadratic inner loop, a dropped
compiler flag), not single-digit-percent drift. Tighten --tolerance when
baseline and runner hardware match.

Usage:
  perf_diff.py BENCH_pr.json bench/BASELINE_e9.json [--tolerance 5.0]

Exit status: 0 = within tolerance, 1 = regression, 2 = bad input.
"""

import argparse
import json
import sys


def load_e9_rows(path):
    """Returns {primitive: ns_per_op} from a report file.

    Accepts either a single e9_micro report object or an array of reports
    (the --all shape), in the stable schema of sim/experiment.hpp.
    """
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    reports = doc if isinstance(doc, list) else [doc]
    for report in reports:
        if report.get("experiment") == "e9_micro":
            return {
                row["primitive"]: float(row["ns_per_op"])
                for row in report.get("rows", [])
            }
    raise KeyError(f"{path}: no e9_micro report found")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="fresh report (BENCH_pr.json)")
    parser.add_argument("baseline", help="checked-in baseline report")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=5.0,
        help="max allowed ns_per_op ratio current/baseline (default: 5.0)",
    )
    args = parser.parse_args()

    try:
        current = load_e9_rows(args.current)
        baseline = load_e9_rows(args.baseline)
    except (OSError, ValueError, KeyError) as err:
        print(f"perf_diff: {err}", file=sys.stderr)
        return 2

    regressions = []
    width = max(len(name) for name in baseline) if baseline else 0
    print(f"{'primitive':<{width}}  {'base ns':>10}  {'pr ns':>10}  ratio")
    for name, base_ns in sorted(baseline.items()):
        if name not in current:
            print(f"{name:<{width}}  {base_ns:>10.2f}  {'MISSING':>10}  -")
            regressions.append((name, "missing from current report"))
            continue
        cur_ns = current[name]
        ratio = cur_ns / base_ns if base_ns > 0 else float("inf")
        flag = " REGRESSION" if ratio > args.tolerance else ""
        print(f"{name:<{width}}  {base_ns:>10.2f}  {cur_ns:>10.2f}  {ratio:5.2f}x{flag}")
        if ratio > args.tolerance:
            regressions.append((name, f"{ratio:.2f}x > {args.tolerance:.2f}x"))
    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<{width}}  {'NEW':>10}  {current[name]:>10.2f}  -")

    if regressions:
        print(
            f"\nperf_diff: {len(regressions)} primitive(s) regressed beyond "
            f"{args.tolerance:.2f}x:",
            file=sys.stderr,
        )
        for name, why in regressions:
            print(f"  {name}: {why}", file=sys.stderr)
        return 1
    print(f"\nperf_diff: all {len(baseline)} primitives within {args.tolerance:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
