#!/usr/bin/env python3
"""Perf-trajectory gate: diff a rumor_bench report against baselines.

Two gates, both reading the stable report schema of sim/experiment.hpp:

* **Throughput** (``e9_micro``): compares ns_per_op per primitive against a
  checked-in baseline (bench/BASELINE_e9.json) and fails when any primitive
  slowed down by more than ``--tolerance``. The baseline was recorded on one
  particular machine and CI runners differ, so the default tolerance is
  deliberately loose (5x): this catches catastrophic regressions (an
  accidentally quadratic inner loop, a dropped compiler flag), not
  single-digit-percent drift.

* **Spreading times** (``--times``, gating ``e1_overview``): compares the
  per-family sync/async mean spreading times — and, when the baseline
  records them, the hp-time quantiles ``sync_hp_time`` / ``async_hp_time``
  (the paper's T_q, from the KLL sketch at q = 1/trials) — against
  bench/BASELINE_times.json (recorded at ``--trials 8``). Spreading times
  are simulation outcomes — deterministic given the seed and bit-identical
  across thread counts (the campaign contract) — so unlike ns_per_op they
  do NOT vary with runner hardware; only libm/compiler rounding drift and
  *behavioral* changes to the engines move them. ``--time-tolerance``
  (default 1.25x, both directions) absorbs the former and fails on the
  latter: an engine change that alters trial-level randomness must ship
  with a refreshed baseline (see bench/README.md for the refresh command).
  Gating quantiles alongside means catches tail-only drift a mean gate
  would wave through (e.g. a rare-path change that stretches stragglers).

* **Normalized throughput** (``--normalize PRIMITIVE``, typically
  ``rng_next``): before comparing, divide every ns_per_op by the named
  primitive's ns_per_op *within its own report* — current and baseline
  alike. The gate then compares relative costs (how many rng_next calls a
  primitive is worth), which cancels the runner's overall clock/IPC and
  makes a much tighter ``--tolerance`` viable across heterogeneous
  hardware. The reference primitive itself always ratios at 1.0 under this
  mode, so its absolute regression is *not* gated — keep one un-normalized
  run if that matters (ROADMAP "perf trajectory, phase 3").

Usage:
  perf_diff.py BENCH_pr.json bench/BASELINE_e9.json [--tolerance 5.0] \
      [--normalize rng_next] \
      [--times bench/BASELINE_times.json] [--time-tolerance 1.25]

Exit status: 0 = within tolerance, 1 = regression, 2 = bad input.
"""

import argparse
import json
import sys

# The report schema this tool was written against (kReportSchemaVersion in
# src/sim/experiment.hpp). Reports with no schema_version key predate the
# field and are version 1; newer reports may have renamed the fields gated
# below, so the loader warns rather than silently misreading them. Policy:
# bench/README.md, "Report schema versioning".
KNOWN_SCHEMA_VERSION = 1


def warn_unknown_schema(report, path):
    version = report.get("schema_version")
    if isinstance(version, int) and version > KNOWN_SCHEMA_VERSION:
        print(
            f"{path}: warning: report schema_version {version} is newer than "
            f"this tool understands ({KNOWN_SCHEMA_VERSION}); fields may have "
            f"moved or been renamed",
            file=sys.stderr,
        )


def load_reports(path):
    """Returns the list of report objects in a report file (one or many)."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    reports = doc if isinstance(doc, list) else [doc]
    for report in reports:
        if isinstance(report, dict):
            warn_unknown_schema(report, path)
    return reports


def describe_build(path):
    """One line naming what produced a report file, from its build_info.

    Reports grew a "build_info" block (git sha, compiler, build type) so
    that gate failures are attributable: a 3x "regression" that compares a
    Debug build against a Release baseline is a setup error, not a perf
    bug, and this diagnostic makes that visible. Reports predating the
    block yield None and print nothing.
    """
    try:
        reports = load_reports(path)
    except (OSError, ValueError):
        return None
    for report in reports:
        info = report.get("build_info")
        if isinstance(info, dict):
            return (
                f"{info.get('git_sha', '?')}"
                f" ({info.get('compiler', '?')} {info.get('compiler_version', '?')},"
                f" {info.get('build_type', '?')}"
                f"{', ' + info['flags'] if info.get('flags') else ''})"
            )
    return None


def find_report(path, experiment):
    for report in load_reports(path):
        if report.get("experiment") == experiment:
            return report
    raise KeyError(f"{path}: no {experiment} report found")


def load_e9_rows(path):
    """Returns {primitive: ns_per_op} from a report file.

    A report with no rows, or a primitive timed at <= 0 ns, is corrupt or
    truncated input — comparing against it would either gate nothing
    (vacuous pass) or divide by zero (spurious inf-ratio "regression"), so
    both are rejected as bad input (exit 2) rather than diffed.
    """
    report = find_report(path, "e9_micro")
    rows = report.get("rows", [])
    if not rows:
        raise ValueError(f"{path}: e9_micro report has no rows (truncated run?)")
    out = {}
    for row in rows:
        ns = float(row["ns_per_op"])
        if not ns > 0.0:
            raise ValueError(
                f"{path}: primitive '{row['primitive']}' has ns_per_op == "
                f"{row['ns_per_op']} (corrupt report; must be > 0)"
            )
        out[row["primitive"]] = ns
    return out


def load_family_means(path):
    """Returns {family: {metric: value}} from a report file's e1_overview.

    Means are required; the hp-time quantile columns are picked up when
    present, so a baseline recorded before they existed still gates the
    means it has.
    """
    report = find_report(path, "e1_overview")
    if not report.get("rows"):
        raise ValueError(f"{path}: e1_overview report has no rows (truncated run?)")
    optional = ("sync_hp_time", "async_hp_time")
    return {
        row["graph"]: {
            "sync_mean": float(row["sync_mean"]),
            "async_mean": float(row["async_mean"]),
            **{m: float(row[m]) for m in optional if m in row},
        }
        for row in report.get("rows", [])
    }


def normalize_rows(rows, primitive, path):
    """Divides every ns_per_op by `primitive`'s value within the same report."""
    ref = rows.get(primitive)
    if ref is None:
        have = ", ".join(sorted(rows)) or "none"
        raise ValueError(
            f"{path}: cannot normalize by '{primitive}' — report has no such "
            f"primitive (rows: {have})"
        )
    return {name: ns / ref for name, ns in rows.items()}


def diff_e9(current, baseline, tolerance):
    """Prints the ns_per_op table; returns the list of regressions."""
    regressions = []
    width = max(len(name) for name in baseline) if baseline else 0
    print(f"{'primitive':<{width}}  {'base ns':>10}  {'pr ns':>10}  ratio")
    for name, base_ns in sorted(baseline.items()):
        if name not in current:
            print(f"{name:<{width}}  {base_ns:>10.2f}  {'MISSING':>10}  -")
            regressions.append((name, "missing from current report"))
            continue
        cur_ns = current[name]
        ratio = cur_ns / base_ns if base_ns > 0 else float("inf")
        flag = " REGRESSION" if ratio > tolerance else ""
        print(f"{name:<{width}}  {base_ns:>10.2f}  {cur_ns:>10.2f}  {ratio:5.2f}x{flag}")
        if ratio > tolerance:
            regressions.append((name, f"{ratio:.2f}x > {tolerance:.2f}x"))
    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<{width}}  {'NEW':>10}  {current[name]:>10.2f}  -")
    return regressions


def diff_times(current, baseline, tolerance):
    """Prints the spreading-time table; returns the list of drifts.

    Both directions count: a family spreading suspiciously *faster* than the
    baseline is the same class of behavioral drift as one spreading slower.
    """
    drifts = []
    width = max(len(name) for name in baseline) if baseline else 0
    print(f"{'family':<{width}}  {'metric':<10}  {'base':>9}  {'pr':>9}  ratio")
    for family, metrics in sorted(baseline.items()):
        if family not in current:
            print(f"{family:<{width}}  {'-':<10}  {'-':>9}  {'MISSING':>9}  -")
            drifts.append((family, "missing from current report"))
            continue
        for metric, base_mean in sorted(metrics.items()):
            cur_mean = current[family].get(metric)
            if cur_mean is None:
                drifts.append((f"{family}/{metric}", "missing metric"))
                continue
            ratio = cur_mean / base_mean if base_mean > 0 else float("inf")
            ok = 1.0 / tolerance <= ratio <= tolerance
            flag = "" if ok else " DRIFT"
            print(
                f"{family:<{width}}  {metric:<10}  {base_mean:>9.3f}  "
                f"{cur_mean:>9.3f}  {ratio:5.2f}x{flag}"
            )
            if not ok:
                drifts.append(
                    (f"{family}/{metric}", f"{ratio:.2f}x outside 1/{tolerance:.2f}..{tolerance:.2f}x")
                )
    for family in sorted(set(current) - set(baseline)):
        print(f"{family:<{width}}  {'NEW':<10}  -")
    return drifts


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="fresh report (BENCH_pr.json)")
    parser.add_argument("baseline", help="checked-in e9_micro baseline report")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=5.0,
        help="max allowed ns_per_op ratio current/baseline (default: 5.0)",
    )
    parser.add_argument(
        "--normalize",
        metavar="PRIMITIVE",
        help="divide each report's ns_per_op by this primitive's own value "
        "before comparing (e.g. rng_next); gates relative costs, which are "
        "hardware-independent, so the tolerance can be much tighter",
    )
    parser.add_argument(
        "--times",
        help="checked-in spreading-time baseline (bench/BASELINE_times.json); "
        "enables the e1_overview per-family mean gate",
    )
    parser.add_argument(
        "--time-tolerance",
        type=float,
        default=1.25,
        help="allowed spreading-time mean ratio band, both directions "
        "(default: 1.25; times are hardware-independent, see module doc)",
    )
    args = parser.parse_args()

    try:
        current = load_e9_rows(args.current)
        baseline = load_e9_rows(args.baseline)
        if args.normalize:
            current = normalize_rows(current, args.normalize, args.current)
            baseline = normalize_rows(baseline, args.normalize, args.baseline)
            print(f"(ns_per_op normalized by each report's own '{args.normalize}')")
        time_pairs = None
        if args.times:
            time_pairs = (
                load_family_means(args.current),
                load_family_means(args.times),
            )
    except (OSError, ValueError, KeyError) as err:
        print(f"perf_diff: {err}", file=sys.stderr)
        return 2

    for label, path in (("current", args.current), ("baseline", args.baseline)):
        build = describe_build(path)
        if build is not None:
            print(f"({label}: built from {build})")

    failures = [(name, why, "regressed") for name, why in
                diff_e9(current, baseline, args.tolerance)]
    if time_pairs is not None:
        print()
        failures += [
            (name, why, "drifted")
            for name, why in diff_times(time_pairs[0], time_pairs[1], args.time_tolerance)
        ]

    if failures:
        print(f"\nperf_diff: {len(failures)} gate failure(s):", file=sys.stderr)
        for name, why, verb in failures:
            print(f"  {name} {verb}: {why}", file=sys.stderr)
        return 1
    gates = f"all {len(baseline)} primitives within {args.tolerance:.2f}x"
    if time_pairs is not None:
        gates += (
            f"; all {len(time_pairs[1])} family spreading times within "
            f"{args.time_tolerance:.2f}x"
        )
    print(f"\nperf_diff: {gates}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
