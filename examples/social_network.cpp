// Social-network scenario: how fast does a rumor reach most of a power-law
// network, synchronously vs asynchronously?
//
// The paper's introduction motivates the asynchronous model with
// information spread in social networks: on Chung-Lu power-law graphs [16]
// and preferential-attachment graphs [9], asynchronous push-pull reaches a
// large fraction of the nodes *faster* than the synchronous protocol, even
// though (Theorem 1) it can never be much slower to reach everyone.
//
// This example builds both topologies, spreads a rumor from a random
// low-degree node, and prints the time to reach 50% / 90% / 100% of the
// network under each model, plus an ASCII trajectory.
#include <cstdio>
#include <vector>

#include "core/rumor.hpp"
#include "sim/harness.hpp"
#include "sim/table.hpp"

using namespace rumor;

namespace {

struct FractionTimes {
  double half = 0.0;
  double ninety = 0.0;
  double all = 0.0;
};

FractionTimes measure_sync_fractions(const graph::Graph& g, graph::NodeId source,
                                     std::uint64_t trials) {
  FractionTimes acc;
  for (std::uint64_t t = 0; t < trials; ++t) {
    auto eng = rng::derive_stream(101, t);
    const auto r = core::run_sync(g, source, eng);
    acc.half += static_cast<double>(core::round_to_fraction(r.informed_round, 0.5));
    acc.ninety += static_cast<double>(core::round_to_fraction(r.informed_round, 0.9));
    acc.all += static_cast<double>(r.rounds);
  }
  acc.half /= static_cast<double>(trials);
  acc.ninety /= static_cast<double>(trials);
  acc.all /= static_cast<double>(trials);
  return acc;
}

FractionTimes measure_async_fractions(const graph::Graph& g, graph::NodeId source,
                                      std::uint64_t trials) {
  FractionTimes acc;
  for (std::uint64_t t = 0; t < trials; ++t) {
    auto eng = rng::derive_stream(102, t);
    const auto r = core::run_async(g, source, eng);
    acc.half += core::time_to_fraction(r.informed_time, 0.5);
    acc.ninety += core::time_to_fraction(r.informed_time, 0.9);
    acc.all += r.time;
  }
  acc.half /= static_cast<double>(trials);
  acc.ninety /= static_cast<double>(trials);
  acc.all /= static_cast<double>(trials);
  return acc;
}

void print_trajectory(const graph::Graph& g, graph::NodeId source) {
  auto eng = rng::derive_stream(103, 0);
  const auto r = core::run_async(g, source, eng);
  const auto traj = core::async_trajectory(r.informed_time);
  std::printf("\n  one async run on %s (informed fraction over time):\n", g.name().c_str());
  const int rows = 12;
  for (int i = 1; i <= rows; ++i) {
    const double frac = static_cast<double>(i) / rows;
    const auto idx = static_cast<std::size_t>(frac * static_cast<double>(traj.size())) - 1;
    const double t = traj[std::min(idx, traj.size() - 1)];
    const int bars = static_cast<int>(frac * 50);
    std::printf("  t=%6.2f  |%-50.*s| %3.0f%%\n", t, bars,
                "##################################################", frac * 100);
  }
}

}  // namespace

int main() {
  constexpr graph::NodeId kNodes = 4096;
  constexpr std::uint64_t kTrials = 100;
  rng::Engine gen_eng = rng::derive_stream(100, 0);

  std::vector<graph::Graph> graphs;
  graphs.push_back(graph::largest_component(
      graph::chung_lu(kNodes, {.beta = 2.5, .average_degree = 8.0}, gen_eng)));
  graphs.push_back(graph::preferential_attachment(kNodes, 3, gen_eng));

  std::printf("Rumor spreading in social-network topologies (%llu trials each)\n",
              static_cast<unsigned long long>(kTrials));
  std::printf("sync times in rounds, async in time units; both are 'n contacts per unit'.\n\n");

  sim::Table table({"graph", "model", "t(50%)", "t(90%)", "t(100%)"});
  for (const auto& g : graphs) {
    // A low-degree source: the last node added (PA) / lowest-weight node
    // (Chung-Lu) sits at the network's periphery.
    const graph::NodeId source = g.num_nodes() - 1;
    const auto sync = measure_sync_fractions(g, source, kTrials);
    const auto async = measure_async_fractions(g, source, kTrials);
    table.add_row({g.name(), "sync pp", sim::fmt_cell("%.2f", sync.half),
                   sim::fmt_cell("%.2f", sync.ninety), sim::fmt_cell("%.2f", sync.all)});
    table.add_row({g.name(), "async pp", sim::fmt_cell("%.2f", async.half),
                   sim::fmt_cell("%.2f", async.ninety), sim::fmt_cell("%.2f", async.all)});
  }
  table.print();

  print_trajectory(graphs[1], graphs[1].num_nodes() - 1);

  std::printf(
      "\nReading: async reaches 50%%/90%% faster on these heavy-tailed graphs\n"
      "(the [9],[16] effect), while the 100%% column stays within Theorem 1's\n"
      "O(sync + log n) envelope.\n");
  return 0;
}
