// Quickstart: simulate synchronous vs asynchronous push-pull on a hypercube.
//
// Demonstrates the two protocol engines and the Monte-Carlo harness in ~40
// lines. Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/rumor.hpp"
#include "sim/harness.hpp"

int main() {
  // 1. Build a graph: the 10-dimensional hypercube (n = 1024).
  const auto g = rumor::graph::hypercube(10);
  std::printf("graph: %s, n=%u, m=%zu, diameter-lower-bound=%u\n", g.name().c_str(),
              g.num_nodes(), g.num_edges(), rumor::graph::eccentricity(g, 0));

  // 2. One synchronous run, watching the informed set grow.
  rumor::rng::Engine eng = rumor::rng::derive_stream(/*seed=*/42, /*stream=*/0);
  rumor::core::SyncOptions sync_opts;
  sync_opts.record_history = true;
  const auto sync = rumor::core::run_sync(g, /*source=*/0, eng, sync_opts);
  std::printf("\none sync push-pull run: %llu rounds\n",
              static_cast<unsigned long long>(sync.rounds));
  for (std::size_t r = 0; r < sync.informed_count_history.size(); ++r) {
    std::printf("  round %2zu: %4u informed\n", r, sync.informed_count_history[r]);
  }

  // 3. One asynchronous run (Poisson clocks, measured in time units).
  const auto async = rumor::core::run_async(g, 0, eng);
  std::printf("\none async push-pull run: %.2f time units (%llu steps)\n", async.time,
              static_cast<unsigned long long>(async.steps));

  // 4. Monte-Carlo estimates across 300 trials, in parallel.
  rumor::sim::TrialConfig config;
  config.trials = 300;
  config.seed = 7;
  const auto sync_sample =
      rumor::sim::measure_sync(g, 0, rumor::core::Mode::kPushPull, config);
  const auto async_sample =
      rumor::sim::measure_async(g, 0, rumor::core::Mode::kPushPull, config);
  std::printf("\nover %llu trials:\n", static_cast<unsigned long long>(config.trials));
  std::printf("  sync  pp : mean %.2f rounds      (p99 %.2f)\n", sync_sample.mean(),
              sync_sample.quantile(0.99));
  std::printf("  async pp : mean %.2f time units  (p99 %.2f)\n", async_sample.mean(),
              async_sample.quantile(0.99));
  std::printf("\nTheorem 1 predicts async stays within O(sync + log n): ratio %.2f\n",
              async_sample.mean() / sync_sample.mean());
  return 0;
}
