// Proof anatomy: executing the paper's two couplings and watching the
// quantities its lemmas bound.
//
// For readers studying the paper, this example makes the proof machinery
// tangible on a single graph:
//
//   * the Lemma 9/10 shared-randomness coupling — per-node inform rounds in
//     ppx / ppy and inform times in pp-a, with the pathwise gaps
//     r'_v - 2 r_v and t_v - 4 r'_v that the lemmas show are O(log n);
//   * the Section 5 block coupling — the live block decomposition of a
//     pp-a step sequence and the Lemma 14 round budget.
#include <algorithm>
#include <cstdio>

#include "core/rumor.hpp"

using namespace rumor;

int main() {
  const auto g = graph::hypercube(8);  // n = 256
  const double ln_n = std::log(256.0);
  std::printf("graph: %s (n=%u, ln n = %.2f)\n", g.name().c_str(), g.num_nodes(), ln_n);

  // --- Upper-bound coupling (Lemmas 9/10) ----------------------------------
  auto eng = rng::derive_stream(300, 0);
  const auto run = core::run_pull_coupling(g, 0, eng);
  std::printf("\n[pull coupling]  one draw of the shared tables X_{v,i}, Y_{v,w}:\n");
  std::printf("  ppx finished in %llu rounds, ppy in %llu rounds, pp-a at time %.2f\n",
              static_cast<unsigned long long>(run.ppx_rounds()),
              static_cast<unsigned long long>(run.ppy_rounds()), run.ppa_time());

  double gap9 = 0.0;
  double gap10 = 0.0;
  graph::NodeId worst9 = 0;
  graph::NodeId worst10 = 0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const double rx = static_cast<double>(run.round_ppx[v]);
    const double ry = static_cast<double>(run.round_ppy[v]);
    if (ry - 2.0 * rx > gap9) {
      gap9 = ry - 2.0 * rx;
      worst9 = v;
    }
    if (run.time_ppa[v] - 4.0 * ry > gap10) {
      gap10 = run.time_ppa[v] - 4.0 * ry;
      worst10 = v;
    }
  }
  std::printf("  Lemma 9 gap  max_v (r'_v - 2 r_v)  = %5.2f  (%.2f * ln n, at node %u)\n", gap9,
              gap9 / ln_n, worst9);
  std::printf("  Lemma 10 gap max_v (t_v  - 4 r'_v) = %5.2f  (%.2f * ln n, at node %u)\n", gap10,
              gap10 / ln_n, worst10);

  // A few nodes' full (r_v, r'_v, t_v) triples.
  std::printf("\n  node   r_v(ppx)   r'_v(ppy)   t_v(pp-a)\n");
  for (graph::NodeId v : {0u, 1u, 17u, 128u, 255u}) {
    std::printf("  %4u   %8llu   %9llu   %9.2f\n", v,
                static_cast<unsigned long long>(run.round_ppx[v]),
                static_cast<unsigned long long>(run.round_ppy[v]), run.time_ppa[v]);
  }

  // --- Lower-bound coupling (Section 5) -------------------------------------
  auto eng2 = rng::derive_stream(300, 1);
  const auto blocks = core::run_block_coupling(g, 0, eng2);
  const double sqrt_n = std::sqrt(256.0);
  std::printf("\n[block coupling]  pp-a steps partitioned into blocks (capacity sqrt(n) = %.0f):\n",
              sqrt_n);
  std::printf("  tau = %llu steps  ->  rho = %llu pp rounds\n",
              static_cast<unsigned long long>(blocks.steps),
              static_cast<unsigned long long>(blocks.rounds));
  std::printf("  closures: %llu full, %llu left-incompatible, %llu right-incompatible\n",
              static_cast<unsigned long long>(blocks.full_blocks),
              static_cast<unsigned long long>(blocks.left_blocks),
              static_cast<unsigned long long>(blocks.right_blocks));
  std::printf("  special blocks: %llu (consuming %llu rounds)\n",
              static_cast<unsigned long long>(blocks.special_blocks),
              static_cast<unsigned long long>(blocks.special_rounds));
  std::printf("  Lemma 13 subset invariant: %s\n",
              blocks.subset_invariant_held ? "held at every block boundary" : "VIOLATED");
  const double budget = static_cast<double>(blocks.steps) / sqrt_n + sqrt_n;
  std::printf("  Lemma 14 budget tau/sqrt(n) + sqrt(n) = %.1f  ->  rho/budget = %.2f\n", budget,
              static_cast<double>(blocks.rounds) / budget);
  std::printf("  async time %.2f vs pp completion at round %llu: Theorem 11's O(sqrt n) gap.\n",
              blocks.async_time,
              static_cast<unsigned long long>(blocks.sync_rounds_to_complete));
  return 0;
}
