// Replicated-database scenario: choosing a gossip mode and clocking model
// for update dissemination in a replica cluster.
//
// The original application of rumor spreading (Demers et al. [7]): a write
// lands on one replica and must reach all others via randomized
// anti-entropy exchanges. This example models a 512-replica cluster as a
// random 6-regular overlay and answers two operational questions:
//
//  1. Which exchange mode (push / pull / push-pull) disseminates fastest,
//     and what do the tail percentiles look like?
//  2. Does replacing the synchronized gossip ticker with per-replica
//     independent timers (the asynchronous model) cost dissemination
//     latency? Theorem 1 says: at most an additive O(log n) — and
//     Corollary 3 says push-only loses nothing on a regular overlay.
#include <cstdio>

#include "core/rumor.hpp"
#include "sim/harness.hpp"
#include "sim/table.hpp"

using namespace rumor;

int main() {
  constexpr graph::NodeId kReplicas = 512;
  constexpr std::uint32_t kFanout = 6;
  rng::Engine gen_eng = rng::derive_stream(200, 0);
  const auto overlay = graph::random_regular(kReplicas, kFanout, gen_eng);

  std::printf("Update dissemination over a %u-replica, %u-regular overlay\n", kReplicas,
              kFanout);
  std::printf("(rounds ~ gossip ticks; one async time unit ~ one mean timer interval)\n\n");

  sim::TrialConfig config;
  config.trials = 500;
  config.seed = 201;

  sim::Table table({"clocking", "mode", "mean", "p50", "p99", "p99.9"});
  for (const core::Mode mode : {core::Mode::kPush, core::Mode::kPull, core::Mode::kPushPull}) {
    const auto sync = sim::measure_sync(overlay, 0, mode, config);
    table.add_row({"synchronized", core::mode_name(mode), sim::fmt_cell("%.2f", sync.mean()),
                   sim::fmt_cell("%.1f", sync.median()), sim::fmt_cell("%.1f", sync.quantile(0.99)),
                   sim::fmt_cell("%.1f", sync.quantile(0.999))});
  }
  for (const core::Mode mode : {core::Mode::kPush, core::Mode::kPull, core::Mode::kPushPull}) {
    const auto async = sim::measure_async(overlay, 0, mode, config);
    table.add_row({"independent", core::mode_name(mode), sim::fmt_cell("%.2f", async.mean()),
                   sim::fmt_cell("%.1f", async.median()),
                   sim::fmt_cell("%.1f", async.quantile(0.99)),
                   sim::fmt_cell("%.1f", async.quantile(0.999))});
  }
  table.print();

  // The operational take-aways the theory predicts.
  const auto sync_pp = sim::measure_sync(overlay, 0, core::Mode::kPushPull, config);
  const auto async_pp = sim::measure_async(overlay, 0, core::Mode::kPushPull, config);
  const auto sync_push = sim::measure_sync(overlay, 0, core::Mode::kPush, config);
  std::printf("\nfindings:\n");
  std::printf("  * dropping the synchronized ticker changes mean pp latency by %+.1f%%\n",
              100.0 * (async_pp.mean() / sync_pp.mean() - 1.0));
  std::printf("  * push-only costs %.2fx over push-pull on this regular overlay\n",
              sync_push.mean() / sync_pp.mean());
  std::printf(
      "  * both are the Theta(1) factors Theorem 1 / Corollary 3 predict: no\n"
      "    asymptotic penalty for decentralized clocks or one-way exchanges.\n");
  return 0;
}
