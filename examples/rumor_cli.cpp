// rumor_cli: command-line driver for one-off spreading measurements.
//
//   rumor_cli --graph hypercube --n 1024 --model async --mode pushpull
//             --trials 500 --seed 7 [--source 0] [--loss 0.1] [--csv out.csv]
//   rumor_cli --edge-list my_network.edges --model both
//
// Families: complete star double_star path cycle torus torus3d hypercube
//           tree wheel lollipop barbell chain_of_stars bundle_chain
//           erdos_renyi random_regular chung_lu pref_attachment
//           watts_strogatz
// Models:   sync | async | both      Modes: push | pull | pushpull
//
// Prints mean / median / p99 / hp spreading time with a bootstrap CI on the
// mean, and optionally appends a CSV row for scripting.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "core/rumor.hpp"
#include "sim/harness.hpp"
#include "sim/table.hpp"

using namespace rumor;

namespace {

struct Args {
  std::string graph = "hypercube";
  std::string edge_list;
  graph::NodeId n = 1024;
  std::string model = "both";
  std::string mode = "pushpull";
  std::uint64_t trials = 300;
  std::uint64_t seed = 1;
  graph::NodeId source = 0;
  double loss = 0.0;
  std::string csv;
  // family-specific knobs
  double p = 0.0;          // ER edge probability (0: 3 ln n / n)
  std::uint32_t degree = 6;  // random_regular / watts_strogatz / PA
  double rewire = 0.1;     // watts_strogatz
};

[[noreturn]] void usage_and_exit(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--graph FAMILY | --edge-list FILE] [--n N] [--model sync|async|both]\n"
               "          [--mode push|pull|pushpull] [--trials T] [--seed S] [--source V]\n"
               "          [--loss P] [--degree D] [--p P] [--rewire P] [--csv FILE]\n",
               argv0);
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage_and_exit(argv[0]);
      }
      return argv[++i];
    };
    const char* a = argv[i];
    if (std::strcmp(a, "--graph") == 0) {
      args.graph = need_value(a);
    } else if (std::strcmp(a, "--edge-list") == 0) {
      args.edge_list = need_value(a);
    } else if (std::strcmp(a, "--n") == 0) {
      args.n = static_cast<graph::NodeId>(std::strtoul(need_value(a), nullptr, 10));
    } else if (std::strcmp(a, "--model") == 0) {
      args.model = need_value(a);
    } else if (std::strcmp(a, "--mode") == 0) {
      args.mode = need_value(a);
    } else if (std::strcmp(a, "--trials") == 0) {
      args.trials = std::strtoull(need_value(a), nullptr, 10);
    } else if (std::strcmp(a, "--seed") == 0) {
      args.seed = std::strtoull(need_value(a), nullptr, 10);
    } else if (std::strcmp(a, "--source") == 0) {
      args.source = static_cast<graph::NodeId>(std::strtoul(need_value(a), nullptr, 10));
    } else if (std::strcmp(a, "--loss") == 0) {
      args.loss = std::strtod(need_value(a), nullptr);
    } else if (std::strcmp(a, "--degree") == 0) {
      args.degree = static_cast<std::uint32_t>(std::strtoul(need_value(a), nullptr, 10));
    } else if (std::strcmp(a, "--p") == 0) {
      args.p = std::strtod(need_value(a), nullptr);
    } else if (std::strcmp(a, "--rewire") == 0) {
      args.rewire = std::strtod(need_value(a), nullptr);
    } else if (std::strcmp(a, "--csv") == 0) {
      args.csv = need_value(a);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      usage_and_exit(argv[0]);
    }
  }
  return args;
}

std::optional<graph::Graph> build_graph(const Args& args) {
  if (!args.edge_list.empty()) {
    return graph::read_edge_list_file(args.edge_list, /*compact_ids=*/true);
  }
  rng::Engine eng = rng::derive_stream(args.seed, 0xf00dULL);
  const graph::NodeId n = args.n;
  const std::string& f = args.graph;
  if (f == "complete") return graph::complete(n);
  if (f == "star") return graph::star(n);
  if (f == "double_star") return graph::double_star(n);
  if (f == "path") return graph::path(n);
  if (f == "cycle") return graph::cycle(n);
  if (f == "torus") {
    return graph::torus(static_cast<graph::NodeId>(std::lround(std::sqrt(n))));
  }
  if (f == "torus3d") {
    return graph::torus3d(static_cast<graph::NodeId>(std::lround(std::cbrt(n))));
  }
  if (f == "hypercube") {
    return graph::hypercube(static_cast<std::uint32_t>(std::lround(std::log2(n))));
  }
  if (f == "tree") return graph::complete_binary_tree(n);
  if (f == "wheel") return graph::wheel(n);
  if (f == "lollipop") return graph::lollipop(n / 2, n - n / 2);
  if (f == "barbell") return graph::barbell(n / 3, n - 2 * (n / 3));
  if (f == "chain_of_stars") {
    const auto k = static_cast<graph::NodeId>(std::lround(std::sqrt(n)));
    return graph::chain_of_stars(k, k);
  }
  if (f == "bundle_chain") {
    const auto len = static_cast<graph::NodeId>(std::lround(std::cbrt(4.0 * n)));
    return graph::bundle_chain(len, len * len / 4);
  }
  if (f == "erdos_renyi") {
    const double p = args.p > 0.0 ? args.p : 3.0 * std::log(n) / n;
    return graph::largest_component(graph::erdos_renyi(n, p, eng));
  }
  if (f == "random_regular") return graph::random_regular(n, args.degree, eng);
  if (f == "chung_lu") {
    return graph::largest_component(
        graph::chung_lu(n, {.beta = 2.5, .average_degree = 8.0}, eng));
  }
  if (f == "pref_attachment") return graph::preferential_attachment(n, args.degree / 2 + 1, eng);
  if (f == "watts_strogatz") {
    return graph::largest_component(graph::watts_strogatz(n, args.degree, args.rewire, eng));
  }
  return std::nullopt;
}

core::Mode parse_mode(const std::string& mode) {
  if (mode == "push") return core::Mode::kPush;
  if (mode == "pull") return core::Mode::kPull;
  return core::Mode::kPushPull;
}

void report(const char* model, const graph::Graph& g, const Args& args,
            const sim::SpreadingTimeSample& sample, sim::Table& table) {
  const auto ci = sample.mean_ci();
  const double hp = sample.quantile(1.0 - 1.0 / static_cast<double>(args.trials));
  table.add_row({model, sim::fmt_cell("%.3f", sample.mean()),
                 sim::fmt_cell("[%.3f, %.3f]", ci.lower, ci.upper),
                 sim::fmt_cell("%.3f", sample.median()), sim::fmt_cell("%.3f", sample.quantile(0.99)),
                 sim::fmt_cell("%.3f", hp)});
  if (!args.csv.empty()) {
    std::FILE* f = std::fopen(args.csv.c_str(), "a");
    if (f != nullptr) {
      std::fprintf(f, "%s,%u,%s,%s,%llu,%llu,%.3f,%.6f,%.6f,%.6f,%.6f\n", g.name().c_str(),
                   g.num_nodes(), model, args.mode.c_str(),
                   static_cast<unsigned long long>(args.trials),
                   static_cast<unsigned long long>(args.seed), args.loss, sample.mean(),
                   sample.median(), sample.quantile(0.99), hp);
      std::fclose(f);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  const auto maybe_graph = build_graph(args);
  if (!maybe_graph) {
    std::fprintf(stderr, "unknown graph family: %s\n", args.graph.c_str());
    usage_and_exit(argv[0]);
  }
  const graph::Graph& g = *maybe_graph;
  if (args.source >= g.num_nodes()) {
    std::fprintf(stderr, "source %u out of range (n = %u)\n", args.source, g.num_nodes());
    return 2;
  }
  if (!graph::is_connected(g)) {
    std::fprintf(stderr, "warning: graph is disconnected; runs will not complete\n");
  }

  std::printf("graph: %s  (n=%u, m=%zu)\n", g.name().c_str(), g.num_nodes(), g.num_edges());
  std::printf("mode: %s  source: %u  trials: %llu  seed: %llu  loss: %.2f\n\n",
              args.mode.c_str(), args.source, static_cast<unsigned long long>(args.trials),
              static_cast<unsigned long long>(args.seed), args.loss);

  const core::Mode mode = parse_mode(args.mode);
  sim::TrialConfig config;
  config.trials = args.trials;
  config.seed = args.seed;

  sim::Table table({"model", "mean", "mean 95% CI", "p50", "p99", "hp"});
  if (args.model == "sync" || args.model == "both") {
    auto samples = sim::run_trials(config, [&](std::uint64_t, rng::Engine& eng) {
      core::SyncOptions opts;
      opts.mode = mode;
      opts.message_loss = args.loss;
      return static_cast<double>(core::run_sync(g, args.source, eng, opts).rounds);
    });
    report("sync", g, args, sim::SpreadingTimeSample(std::move(samples)), table);
  }
  if (args.model == "async" || args.model == "both") {
    auto samples = sim::run_trials(config, [&](std::uint64_t, rng::Engine& eng) {
      core::AsyncOptions opts;
      opts.mode = mode;
      opts.message_loss = args.loss;
      return core::run_async(g, args.source, eng, opts).time;
    });
    report("async", g, args, sim::SpreadingTimeSample(std::move(samples)), table);
  }
  table.print();
  std::printf("\n(sync in rounds, async in time units; hp = empirical (1 - 1/trials)-quantile)\n");
  return 0;
}
