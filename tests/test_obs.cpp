// Observability tests: the obs metrics registry, trace export, progress
// meter, and build provenance — and above all the telemetry contract of
// sim/campaign.hpp: telemetry is observational only. Reports are
// byte-identical with telemetry off or on at any thread count, the "exact"
// counters are bit-stable across thread counts, and a rendered trace is
// valid JSON whose block spans cover exactly the blocks the registry
// counted.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "obs/build_info.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/telemetry.hpp"
#include "sim/campaign.hpp"
#include "sim/experiment.hpp"

using namespace rumor;

namespace {

std::shared_ptr<const graph::Graph> shared(graph::Graph g) {
  return std::make_shared<const graph::Graph>(std::move(g));
}

/// A small mixed campaign: both engines, a race cell, and a weighted cell,
/// so every counter (sync rounds, async events, screen/refine trials) is
/// exercised.
std::vector<sim::CampaignConfig> obs_configs(std::uint64_t trials) {
  static const auto kHypercube = shared(graph::hypercube(5));
  static const auto kStar = shared(graph::star(64));
  std::vector<sim::CampaignConfig> configs;
  std::uint64_t seed = 900;
  for (const auto& g : {kHypercube, kStar}) {
    for (const sim::EngineKind engine : {sim::EngineKind::kSync, sim::EngineKind::kAsync}) {
      sim::CampaignConfig cfg;
      cfg.id = g->name() + std::string("_") + sim::engine_name(engine);
      cfg.prebuilt = g;
      cfg.engine = engine;
      cfg.trials = trials;
      cfg.seed = ++seed;
      configs.push_back(std::move(cfg));
    }
  }
  sim::CampaignConfig race;
  race.id = "star_race";
  race.prebuilt = kStar;
  race.source_policy = sim::SourcePolicy::kRace;
  race.race.screen_trials = 4;
  race.race.final_trials = trials;
  race.race.max_candidates = 8;
  race.trials = trials;
  race.seed = 41;
  configs.push_back(std::move(race));
  return configs;
}

/// The exact-counter fields of a snapshot, per the determinism contract of
/// obs/metrics.hpp (durations and depth samples excluded by design).
std::vector<std::uint64_t> exact_fingerprint(const obs::MetricsSnapshot& s) {
  std::vector<std::uint64_t> out = {s.totals.blocks_executed, s.totals.trials_simulated,
                                    s.totals.sync_rounds,     s.totals.async_events,
                                    s.totals.graph_builds,    s.totals.graph_frees,
                                    s.blocks_scheduled};
  for (const auto& c : s.per_config) {
    out.push_back(c.blocks);
    out.push_back(c.trials);
  }
  return out;
}

obs::MetricsSnapshot run_with_telemetry(const std::vector<sim::CampaignConfig>& configs,
                                        unsigned threads, bool trace = false) {
  obs::Telemetry::Options topt;
  topt.trace = trace;
  obs::Telemetry tel(topt);
  sim::CampaignOptions options;
  options.threads = threads;
  options.block_size = 8;
  options.telemetry = &tel;
  (void)sim::run_campaign(configs, options);
  return tel.snapshot();
}

}  // namespace

// --- Histogram ---------------------------------------------------------------

TEST(ObsHistogram, BucketsByPowerOfTwo) {
  obs::Histogram h;
  h.add(0);  // bucket 0: zeros
  h.add(1);  // bucket 1: [1, 2)
  h.add(2);  // bucket 2: [2, 4)
  h.add(3);
  h.add(4);  // bucket 3: [4, 8)
  h.add(7);
  h.add(1u << 20);  // bucket 21
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 2u);
  EXPECT_EQ(h.buckets[3], 2u);
  EXPECT_EQ(h.buckets[21], 1u);
  EXPECT_EQ(h.count, 7u);
  EXPECT_EQ(h.sum, 0u + 1 + 2 + 3 + 4 + 7 + (1u << 20));
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, 1u << 20);
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(h.sum) / 7.0);
}

TEST(ObsHistogram, EmptyAndMerge) {
  obs::Histogram empty;
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);

  obs::Histogram a;
  a.add(5);
  a.add(100);
  obs::Histogram b;
  b.add(2);
  a.merge(b);
  a.merge(empty);  // merging an empty histogram must not disturb min
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.sum, 107u);
  EXPECT_EQ(a.min, 2u);
  EXPECT_EQ(a.max, 100u);
  EXPECT_EQ(a.buckets[2], 1u);
  EXPECT_EQ(a.buckets[3], 1u);
  EXPECT_EQ(a.buckets[7], 1u);  // 100 in [64, 128)
}

// --- Build provenance --------------------------------------------------------

TEST(ObsBuildInfo, FieldsArePopulated) {
  const obs::BuildInfo& info = obs::build_info();
  for (const char* field : {info.git_sha, info.compiler, info.compiler_version,
                            info.build_type, info.flags}) {
    ASSERT_NE(field, nullptr);
    EXPECT_NE(field[0], '\0');
  }
  const std::string line = obs::build_info_line("unit_test");
  EXPECT_EQ(line.rfind("unit_test ", 0), 0u) << line;
  EXPECT_NE(line.find(info.compiler), std::string::npos) << line;
}

TEST(ObsBuildInfo, StampedIntoEveryReport) {
  const auto results = sim::run_campaign(obs_configs(4), {});
  const sim::Json report = sim::campaign_report(results[0], "unit");
  const sim::Json* build = report.find("build_info");
  ASSERT_NE(build, nullptr);
  for (const char* key :
       {"git_sha", "compiler", "compiler_version", "build_type", "flags"}) {
    const sim::Json* v = build->find(key);
    ASSERT_NE(v, nullptr) << key;
    EXPECT_TRUE(v->is_string()) << key;
    EXPECT_FALSE(v->as_string().empty()) << key;
  }
  // build_info_json() (what rumor_bench stamps) matches the report's block.
  EXPECT_EQ(build->dump(), sim::build_info_json().dump());
}

// --- Progress meter ----------------------------------------------------------

TEST(ObsProgress, HeartbeatAndFinalLineOnOwnStream) {
  std::ostringstream out;
  obs::ProgressMeter meter(out, std::chrono::milliseconds(1));
  meter.start("unit");
  meter.on_scheduled(3);
  meter.set_phase("trials");
  meter.on_done();
  meter.on_done();
  meter.on_done();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  meter.stop();
  meter.stop();  // idempotent
  const std::string text = out.str();
  EXPECT_NE(text.find("progress [unit]"), std::string::npos) << text;
  EXPECT_NE(text.find("3/3 blocks"), std::string::npos) << text;
  EXPECT_NE(text.find("done"), std::string::npos) << text;
  // Every line is a complete progress line — no interleaved fragments.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.rfind("progress [unit]", 0), 0u) << line;
  }
}

// --- Telemetry counters ------------------------------------------------------

TEST(ObsTelemetry, ExactCountersBitStableAcrossThreadCounts) {
  const auto configs = obs_configs(16);
  const auto serial = run_with_telemetry(configs, 1);
  const auto two = run_with_telemetry(configs, 2);
  const auto eight = run_with_telemetry(configs, 8);

  EXPECT_EQ(exact_fingerprint(serial), exact_fingerprint(two));
  EXPECT_EQ(exact_fingerprint(serial), exact_fingerprint(eight));

  // Shards merge to the totals they claim to.
  obs::WorkerMetrics remerged;
  for (const auto& w : eight.workers) remerged.merge(w);
  EXPECT_EQ(remerged.blocks_executed, eight.totals.blocks_executed);
  EXPECT_EQ(remerged.trials_simulated, eight.totals.trials_simulated);
  EXPECT_EQ(remerged.sync_rounds, eight.totals.sync_rounds);
  EXPECT_EQ(remerged.async_events, eight.totals.async_events);

  // Every scheduled block ran, every pop was depth-sampled, and the fixed
  // cells' trials are all attributed (the race cell adds screen trials on
  // top, so totals are >= the spec'd trial counts).
  EXPECT_EQ(serial.blocks_scheduled, serial.totals.blocks_executed);
  EXPECT_EQ(eight.queue_depth.count, eight.totals.blocks_executed);
  ASSERT_EQ(serial.per_config.size(), configs.size());
  ASSERT_EQ(serial.config_ids.size(), configs.size());
  std::uint64_t spec_trials = 0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(serial.config_ids[i], configs[i].id);
    if (configs[i].source_policy == sim::SourcePolicy::kFixed) {
      EXPECT_EQ(serial.per_config[i].trials, configs[i].trials) << configs[i].id;
    } else {
      EXPECT_GT(serial.per_config[i].trials, configs[i].trials) << configs[i].id;
    }
    spec_trials += configs[i].trials;
  }
  EXPECT_GT(serial.totals.trials_simulated, spec_trials);
  EXPECT_GT(serial.totals.sync_rounds, 0u);
  EXPECT_GT(serial.totals.async_events, 0u);
  EXPECT_EQ(serial.totals.graph_builds, serial.totals.graph_frees);
  EXPECT_GT(serial.wall_ns, 0u);
}

// --- The observational contract ----------------------------------------------

TEST(ObsTelemetry, ReportsByteIdenticalWithTelemetryOnOrOff) {
  const auto configs = obs_configs(12);
  std::vector<std::string> baseline;
  {
    sim::CampaignOptions options;
    options.threads = 1;
    for (const auto& r : sim::run_campaign(configs, options)) {
      baseline.push_back(sim::campaign_report(r, "unit").dump(2));
    }
  }
  for (const unsigned threads : {1u, 2u, 8u}) {
    obs::Telemetry::Options topt;
    topt.trace = true;
    topt.progress = true;
    topt.progress_interval = std::chrono::milliseconds(1);
    std::ostringstream progress_out;
    topt.progress_stream = &progress_out;
    obs::Telemetry tel(topt);
    sim::CampaignOptions options;
    options.threads = threads;
    options.telemetry = &tel;
    const auto results = sim::run_campaign(configs, options);
    ASSERT_EQ(results.size(), baseline.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(sim::campaign_report(results[i], "unit").dump(2), baseline[i])
          << configs[i].id << " threads=" << threads;
    }
  }
}

// --- Trace export ------------------------------------------------------------

namespace {

struct ParsedSpan {
  std::string name;
  double ts = 0.0;
  double end = 0.0;
  std::int64_t tid = 0;
  std::string config;
};

}  // namespace

TEST(ObsTrace, ValidJsonWithNestedMonotoneSpansCoveringEveryBlock) {
  const auto configs = obs_configs(16);
  obs::Telemetry::Options topt;
  topt.trace = true;
  obs::Telemetry tel(topt);
  sim::CampaignOptions options;
  options.threads = 4;
  options.block_size = 8;
  options.telemetry = &tel;
  (void)sim::run_campaign(configs, options);
  const auto snapshot = tel.snapshot();

  const auto doc = sim::Json::parse(tel.render_trace());
  ASSERT_TRUE(doc.has_value());
  const sim::Json* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::vector<ParsedSpan> spans;
  for (const auto& ev : events->elements()) {
    const std::string ph = ev.find("ph")->as_string();
    if (ph == "M") continue;
    ASSERT_EQ(ph, "X");
    ParsedSpan s;
    s.name = ev.find("name")->as_string();
    s.ts = ev.find("ts")->as_number();
    const double dur = ev.find("dur")->as_number();
    ASSERT_GE(s.ts, 0.0) << s.name;
    ASSERT_GE(dur, 0.0) << s.name;
    s.end = s.ts + dur;
    s.tid = static_cast<std::int64_t>(ev.find("tid")->as_number());
    const sim::Json* args = ev.find("args");
    ASSERT_NE(args, nullptr) << s.name;
    if (const sim::Json* config = args->find("config")) s.config = config->as_string();
    spans.push_back(std::move(s));
  }

  // Coverage: one block:* span per executed block, counted per config
  // exactly as the metrics registry counted them.
  std::vector<std::uint64_t> span_blocks(configs.size(), 0);
  std::uint64_t total_block_spans = 0;
  for (const auto& s : spans) {
    if (s.name.rfind("block:", 0) != 0) continue;
    ++total_block_spans;
    const auto it = std::find(snapshot.config_ids.begin(), snapshot.config_ids.end(), s.config);
    ASSERT_NE(it, snapshot.config_ids.end()) << s.config;
    ++span_blocks[static_cast<std::size_t>(it - snapshot.config_ids.begin())];
  }
  EXPECT_EQ(total_block_spans, snapshot.totals.blocks_executed);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(span_blocks[i], snapshot.per_config[i].blocks) << snapshot.config_ids[i];
  }

  // Geometry: per worker, block spans are disjoint and time-ordered; every
  // non-block span nests inside a block span on its own lane (workers run
  // one block at a time and record graph builds/merges from inside it).
  std::map<std::int64_t, std::vector<const ParsedSpan*>> blocks_by_tid;
  for (const auto& s : spans) {
    if (s.name.rfind("block:", 0) == 0) blocks_by_tid[s.tid].push_back(&s);
  }
  for (auto& [tid, lane] : blocks_by_tid) {
    std::sort(lane.begin(), lane.end(),
              [](const ParsedSpan* a, const ParsedSpan* b) { return a->ts < b->ts; });
    for (std::size_t i = 1; i < lane.size(); ++i) {
      EXPECT_GE(lane[i]->ts, lane[i - 1]->end) << "worker " << tid;
    }
  }
  for (const auto& s : spans) {
    if (s.name.rfind("block:", 0) == 0 || s.name.rfind("checkpoint:", 0) == 0) continue;
    bool nested = false;
    for (const ParsedSpan* parent : blocks_by_tid[s.tid]) {
      if (parent->ts <= s.ts && s.end <= parent->end) {
        nested = true;
        break;
      }
    }
    EXPECT_TRUE(nested) << s.name << " on tid " << s.tid;
  }

  // The embedded registry matches the live snapshot on the exact counters.
  const sim::Json* metrics = doc->find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(metrics->find("blocks_scheduled")->as_number()),
            snapshot.blocks_scheduled);
  const sim::Json* totals = metrics->find("totals");
  ASSERT_NE(totals, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(totals->find("blocks_executed")->as_number()),
            snapshot.totals.blocks_executed);
  EXPECT_EQ(static_cast<std::uint64_t>(totals->find("trials_simulated")->as_number()),
            snapshot.totals.trials_simulated);
  const sim::Json* per_config = metrics->find("per_config");
  ASSERT_NE(per_config, nullptr);
  ASSERT_EQ(per_config->size(), configs.size());
}

TEST(ObsTrace, WriteTraceReportsIoFailure) {
  obs::Telemetry::Options topt;
  topt.trace = true;
  obs::Telemetry tel(topt);
  tel.begin({"cfg"}, 1, "unit");
  tel.end();
  std::string error;
  EXPECT_FALSE(tel.write_trace("/nonexistent-dir/trace.json", &error));
  EXPECT_FALSE(error.empty());
}
