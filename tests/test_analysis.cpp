// Tests for rumor::analysis and rumor::dist tail bounds — the theory
// oracles. Each known-law prediction window is checked against fresh
// Monte-Carlo measurements of the actual engines, closing the loop between
// the literature's formulas and this implementation.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/known_bounds.hpp"
#include "core/rumor.hpp"
#include "dist/distributions.hpp"
#include "dist/tail_bounds.hpp"
#include "graph/expansion.hpp"
#include "rng/rng.hpp"
#include "sim/harness.hpp"

using namespace rumor;

// --- Tail-bound machinery -----------------------------------------------------

TEST(TailBounds, HarmonicNumbers) {
  EXPECT_DOUBLE_EQ(dist::harmonic(1), 1.0);
  EXPECT_DOUBLE_EQ(dist::harmonic(2), 1.5);
  EXPECT_NEAR(dist::harmonic(100), 5.18737751763962, 1e-10);
  // Asymptotic branch agrees with direct summation at the crossover.
  EXPECT_NEAR(dist::harmonic(2000000), std::log(2e6) + 0.5772156649, 1e-6);
}

TEST(TailBounds, CouponCollectorMean) {
  EXPECT_NEAR(dist::coupon_collector_mean(10), 10.0 * dist::harmonic(10), 1e-12);
}

TEST(TailBounds, BinomialChernoffBoundsEmpiricalTails) {
  // Empirical tail frequencies must never exceed the Chernoff bound.
  auto eng = rng::derive_stream(900, 0);
  constexpr std::uint64_t kN = 200;
  constexpr double kP = 0.3;
  constexpr int kSamples = 20000;
  const double mu = kN * kP;
  for (double delta : {0.2, 0.5}) {
    int upper = 0;
    int lower = 0;
    for (int s = 0; s < kSamples; ++s) {
      int x = 0;
      for (std::uint64_t i = 0; i < kN; ++i) x += rng::bernoulli(eng, kP) ? 1 : 0;
      if (x >= (1.0 + delta) * mu) ++upper;
      if (x <= (1.0 - delta) * mu) ++lower;
    }
    EXPECT_LE(static_cast<double>(upper) / kSamples,
              dist::binomial_upper_tail(kN, kP, delta) + 0.01);
    EXPECT_LE(static_cast<double>(lower) / kSamples,
              dist::binomial_lower_tail(kN, kP, delta) + 0.01);
  }
}

TEST(TailBounds, NegBinTailIsExact) {
  // Cross-check the binomial-complement formula against the summed pmf.
  const dist::NegativeBinomial nb(4, 0.35);
  for (std::uint64_t t : {4ull, 8ull, 16ull, 30ull}) {
    EXPECT_NEAR(dist::negbin_upper_tail(4, 0.35, t), 1.0 - nb.cdf(t), 1e-9) << t;
  }
}

TEST(TailBounds, NegBinTailBelowK) {
  EXPECT_DOUBLE_EQ(dist::negbin_upper_tail(5, 0.5, 4), 1.0);
  EXPECT_DOUBLE_EQ(dist::negbin_upper_tail(5, 0.5, 3), 1.0);
}

TEST(TailBounds, ErlangTailMatchesCdf) {
  const dist::Erlang erl(3, 2.0);
  for (double t : {0.5, 1.5, 4.0}) {
    EXPECT_NEAR(dist::erlang_upper_tail(3, 2.0, t), 1.0 - erl.cdf(t), 1e-12);
  }
}

TEST(TailBounds, CouponCollectorTailBoundsEmpirical) {
  auto eng = rng::derive_stream(901, 0);
  constexpr std::uint64_t kCoupons = 50;
  constexpr int kSamples = 10000;
  const double threshold = 50.0 * std::log(50.0) + 1.5 * 50.0;  // c = 1.5
  int exceeded = 0;
  for (int s = 0; s < kSamples; ++s) {
    std::vector<bool> seen(kCoupons, false);
    std::uint64_t draws = 0;
    std::uint64_t distinct = 0;
    while (distinct < kCoupons) {
      ++draws;
      const auto c = rng::uniform_below(eng, kCoupons);
      if (!seen[c]) {
        seen[c] = true;
        ++distinct;
      }
    }
    if (static_cast<double>(draws) > threshold) ++exceeded;
  }
  EXPECT_LE(static_cast<double>(exceeded) / kSamples,
            dist::coupon_collector_tail(kCoupons, 1.5) + 0.01);
}

TEST(TailBounds, MaxOfExponentialsMean) {
  auto eng = rng::derive_stream(902, 0);
  constexpr int kVars = 64;
  constexpr int kSamples = 20000;
  double sum = 0.0;
  for (int s = 0; s < kSamples; ++s) {
    double mx = 0.0;
    for (int i = 0; i < kVars; ++i) mx = std::max(mx, rng::exponential(eng, 2.0));
    sum += mx;
  }
  EXPECT_NEAR(sum / kSamples, dist::max_of_exponentials_mean(kVars, 2.0), 0.05);
}

// --- Known-law windows vs the engines -------------------------------------------

TEST(KnownBounds, StarSyncPushPull) {
  const auto w = analysis::star_sync_pushpull(256);
  sim::TrialConfig config;
  config.trials = 200;
  config.seed = 903;
  const auto sample = sim::measure_sync(graph::star(256), 1, core::Mode::kPushPull, config);
  EXPECT_TRUE(w.contains(sample.max())) << sample.max() << " vs " << w.law;
}

TEST(KnownBounds, StarAsyncMean) {
  const auto w = analysis::star_async_pushpull_mean(1024);
  sim::TrialConfig config;
  config.trials = 300;
  config.seed = 904;
  const auto sample = sim::measure_async(graph::star(1024), 1, core::Mode::kPushPull, config);
  EXPECT_TRUE(w.contains(sample.mean()))
      << sample.mean() << " not in [" << w.low << ", " << w.high << "] (" << w.law << ")";
}

TEST(KnownBounds, StarSyncPushCouponCollector) {
  const auto w = analysis::star_sync_push_mean(128);
  sim::TrialConfig config;
  config.trials = 100;
  config.seed = 905;
  const auto sample = sim::measure_sync(graph::star(128), 0, core::Mode::kPush, config);
  EXPECT_TRUE(w.contains(sample.mean()))
      << sample.mean() << " not in [" << w.low << ", " << w.high << "] (" << w.law << ")";
}

TEST(KnownBounds, CompleteSyncPushPull) {
  const auto w = analysis::complete_sync_pushpull_mean(512);
  sim::TrialConfig config;
  config.trials = 200;
  config.seed = 906;
  const auto sample = sim::measure_sync(graph::complete(512), 0, core::Mode::kPushPull, config);
  EXPECT_TRUE(w.contains(sample.mean()))
      << sample.mean() << " not in [" << w.low << ", " << w.high << "] (" << w.law << ")";
}

TEST(KnownBounds, CompleteSyncPush) {
  const auto w = analysis::complete_sync_push_mean(512);
  sim::TrialConfig config;
  config.trials = 200;
  config.seed = 907;
  const auto sample = sim::measure_sync(graph::complete(512), 0, core::Mode::kPush, config);
  EXPECT_TRUE(w.contains(sample.mean()))
      << sample.mean() << " not in [" << w.low << ", " << w.high << "] (" << w.law << ")";
}

TEST(KnownBounds, PathSyncPushPull) {
  const auto w = analysis::path_sync_pushpull_mean(200);
  sim::TrialConfig config;
  config.trials = 100;
  config.seed = 908;
  const auto sample = sim::measure_sync(graph::path(200), 0, core::Mode::kPushPull, config);
  EXPECT_TRUE(w.contains(sample.mean()))
      << sample.mean() << " not in [" << w.low << ", " << w.high << "] (" << w.law << ")";
}

TEST(KnownBounds, BundleChainSyncRounds) {
  const auto w = analysis::bundle_chain_sync_rounds(16, 64);
  sim::TrialConfig config;
  config.trials = 100;
  config.seed = 909;
  const auto sample =
      sim::measure_sync(graph::bundle_chain(16, 64), 0, core::Mode::kPushPull, config);
  EXPECT_TRUE(w.contains(sample.mean()))
      << sample.mean() << " not in [" << w.low << ", " << w.high << "] (" << w.law << ")";
  EXPECT_TRUE(w.contains(sample.quantile(0.99)));
}

TEST(KnownBounds, ConductanceBoundHolds) {
  auto gen_eng = rng::derive_stream(910, 0);
  for (const auto& g : {graph::cycle(256), graph::hypercube(8),
                        graph::random_regular(256, 4, gen_eng), graph::barbell(32, 0)}) {
    const double phi = graph::conductance_sweep(g);
    const auto w = analysis::conductance_bound(g.num_nodes(), phi);
    sim::TrialConfig config;
    config.trials = 150;
    config.seed = 911;
    const auto sample = sim::measure_sync(g, 0, core::Mode::kPushPull, config);
    const double hp = sample.quantile(1.0 - 1.0 / 150.0);
    EXPECT_LE(hp, w.high) << g.name() << ": " << hp << " vs " << w.law;
  }
}

// Theorem 1 transfer: the same conductance envelope holds for pp-a.
TEST(KnownBounds, ConductanceBoundTransfersToAsync) {
  auto gen_eng = rng::derive_stream(912, 0);
  for (const auto& g : {graph::cycle(256), graph::hypercube(8),
                        graph::random_regular(256, 4, gen_eng)}) {
    const double phi = graph::conductance_sweep(g);
    const auto w = analysis::conductance_bound(g.num_nodes(), phi);
    sim::TrialConfig config;
    config.trials = 150;
    config.seed = 913;
    const auto sample = sim::measure_async(g, 0, core::Mode::kPushPull, config);
    EXPECT_LE(sample.quantile(1.0 - 1.0 / 150.0), w.high) << g.name();
  }
}

// --- One-round semantics of the aux processes (Definitions 5 and 7) ------------

namespace {

/// One-round probe scenario for the Definition 5/7 pull formulas.
///
/// Probe = node 0 with degree d: its first k neighbors are informed at
/// round 0, and each of those has degree D (probe + D-1 pendant dummies),
/// so an informed neighbor's push hits the probe only with probability
/// 1/D. The remaining d-k probe neighbors are uninformed pendants. The
/// probability the probe is informed in round 1 is then exactly
///     1 - (1 - p_pull) * (1 - 1/D)^k
/// with p_pull from Definition 5/7; everything is analytic.
struct ProbeScenario {
  graph::Graph g;
  core::AuxOptions opts;
  std::uint32_t k;
  std::uint32_t big_degree;
};

ProbeScenario make_probe(std::uint32_t d, std::uint32_t k, std::uint32_t big_degree,
                         core::AuxKind kind) {
  const graph::NodeId n = 1 + d + k * (big_degree - 1);
  graph::GraphBuilder b(n);
  graph::NodeId next = 1 + d;  // dummies start after the probe's neighbors
  for (graph::NodeId i = 1; i <= d; ++i) {
    b.add_edge(0, i);
    if (i <= k) {
      for (std::uint32_t j = 0; j + 1 < big_degree; ++j) b.add_edge(i, next++);
    }
  }
  ProbeScenario s{std::move(b).build("probe"), {}, k, big_degree};
  s.opts.kind = kind;
  s.opts.max_ticks = 1;
  for (graph::NodeId i = 2; i <= k; ++i) s.opts.extra_sources.push_back(i);
  return s;  // run with source = node 1
}

double probe_inform_frequency(const ProbeScenario& s, std::uint64_t seed, int trials) {
  int informed = 0;
  for (int t = 0; t < trials; ++t) {
    auto eng = rumor::rng::derive_stream(seed, static_cast<std::uint64_t>(t));
    const auto r = core::run_aux(s.g, 1, eng, s.opts);
    if (r.informed_round[0] == 1) ++informed;
  }
  return static_cast<double>(informed) / trials;
}

double expected_inform_probability(std::uint32_t d, std::uint32_t k, std::uint32_t big_degree,
                                   double p_pull) {
  const double push_miss = std::pow(1.0 - 1.0 / static_cast<double>(big_degree), k);
  (void)d;
  return 1.0 - (1.0 - p_pull) * push_miss;
}

}  // namespace

TEST(AuxSemantics, PpyPullProbabilityMatchesFormula) {
  const std::uint32_t d = 10;
  const std::uint32_t big = 50;
  for (std::uint32_t k : {1u, 3u, 5u, 9u}) {
    const auto s = make_probe(d, k, big, core::AuxKind::kPpy);
    const double p_pull = -std::expm1(-2.0 * k / static_cast<double>(d));
    const double expected = expected_inform_probability(d, k, big, p_pull);
    EXPECT_NEAR(probe_inform_frequency(s, 914 + k, 40000), expected, 0.01) << "k=" << k;
  }
}

TEST(AuxSemantics, PpxForcesPullAtHalfDegree) {
  // k >= d/2: ppx pulls with probability 1 regardless of pushes.
  const auto s = make_probe(10, 5, 50, core::AuxKind::kPpx);
  EXPECT_DOUBLE_EQ(probe_inform_frequency(s, 915, 300), 1.0);
}

TEST(AuxSemantics, PpxBelowHalfMatchesPpyFormula) {
  const std::uint32_t d = 12;
  const std::uint32_t k = 3;
  const std::uint32_t big = 50;
  const auto s = make_probe(d, k, big, core::AuxKind::kPpx);
  const double p_pull = -std::expm1(-2.0 * k / static_cast<double>(d));
  const double expected = expected_inform_probability(d, k, big, p_pull);
  EXPECT_NEAR(probe_inform_frequency(s, 916, 40000), expected, 0.01);
}

// --- One-round semantics of pp itself -------------------------------------------

TEST(SyncSemantics, SingleUninformedNodePullProbability) {
  // Probe = hub of a star with k of d leaves informed: in pp, the hub
  // pulls iff its own contact lands on an informed leaf (probability k/d)
  // OR any informed leaf... leaves contact only the hub; informed leaves
  // *push* to the hub with probability 1 each. So the hub is informed in
  // round 1 with probability 1 whenever k >= 1. Use a 2-regular probe
  // instead: cycle of 4, node 2 informed, probe 0 (neighbors 1, 3
  // uninformed): probability 0. Inform 1: probe pulls w.p. 1/2 plus 1
  // pushes w.p. 1/2 -> 3/4.
  const auto g = graph::cycle(4);
  core::SyncOptions opts;
  opts.max_ticks = 1;
  constexpr int kTrials = 40000;
  int informed = 0;
  for (int t = 0; t < kTrials; ++t) {
    auto eng = rng::derive_stream(917, static_cast<std::uint64_t>(t));
    const auto r = core::run_sync(g, 1, eng, opts);
    if (r.informed_round[0] == 1) ++informed;
  }
  EXPECT_NEAR(static_cast<double>(informed) / kTrials, 0.75, 0.01);
}

TEST(SyncSemantics, PushOnlyProbability) {
  // Same cycle, push-only: node 0 informed in round 1 only if node 1
  // pushes to it: probability 1/2.
  const auto g = graph::cycle(4);
  core::SyncOptions opts;
  opts.mode = core::Mode::kPush;
  opts.max_ticks = 1;
  constexpr int kTrials = 40000;
  int informed = 0;
  for (int t = 0; t < kTrials; ++t) {
    auto eng = rng::derive_stream(918, static_cast<std::uint64_t>(t));
    const auto r = core::run_sync(g, 1, eng, opts);
    if (r.informed_round[0] == 1) ++informed;
  }
  EXPECT_NEAR(static_cast<double>(informed) / kTrials, 0.5, 0.01);
}

TEST(SyncSemantics, PullOnlyProbability) {
  // Pull-only: node 0 informed in round 1 only if it contacts node 1: 1/2.
  const auto g = graph::cycle(4);
  core::SyncOptions opts;
  opts.mode = core::Mode::kPull;
  opts.max_ticks = 1;
  constexpr int kTrials = 40000;
  int informed = 0;
  for (int t = 0; t < kTrials; ++t) {
    auto eng = rng::derive_stream(919, static_cast<std::uint64_t>(t));
    const auto r = core::run_sync(g, 1, eng, opts);
    if (r.informed_round[0] == 1) ++informed;
  }
  EXPECT_NEAR(static_cast<double>(informed) / kTrials, 0.5, 0.01);
}
