// Tests for the worst-case-source search (sim/adversary.hpp, a thin
// wrapper over SourcePolicy::kRace campaigns) and for the campaign-native
// size-sweep pattern that replaced the retired sim/sweep module: build one
// configuration per size, run them over the shared block queue, and fit
// growth laws on the resulting means with stats/regression directly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/rumor.hpp"
#include "sim/adversary.hpp"
#include "sim/campaign.hpp"
#include "stats/regression.hpp"

using namespace rumor;

// --- Campaign-native size sweeps ---------------------------------------------

namespace {

/// One (size -> mean spreading time) curve measured as a campaign: the
/// idiom every retired run_size_sweep call site migrates to.
std::vector<std::pair<double, double>> campaign_size_curve(sim::EngineKind engine,
                                                           std::uint64_t trials,
                                                           std::uint64_t seed) {
  std::vector<sim::CampaignConfig> configs;
  for (const std::uint64_t n : {128u, 512u, 2048u}) {
    sim::CampaignConfig cfg;
    cfg.graph.family = "star";
    cfg.graph.n = n;
    cfg.engine = engine;
    cfg.source = 1;
    cfg.trials = trials;
    cfg.seed = seed;
    configs.push_back(std::move(cfg));
  }
  const auto results = sim::run_campaign(configs, {});
  std::vector<std::pair<double, double>> curve;
  for (const auto& r : results) {
    curve.emplace_back(static_cast<double>(r.n), r.summary.mean());
  }
  return curve;
}

}  // namespace

TEST(CampaignSizeSweep, StarLawsEndToEnd) {
  // The E3 star laws, measured through the campaign path: async push-pull
  // grows ~ ln n, sync push-pull is bounded (2 rounds from a leaf).
  const auto async_curve = campaign_size_curve(sim::EngineKind::kAsync, 120, 1234);
  std::vector<double> x;
  std::vector<double> y;
  for (const auto& [n, mean] : async_curve) {
    x.push_back(n);
    y.push_back(mean);
  }
  const auto fit = stats::fit_logarithmic(x, y);
  EXPECT_NEAR(fit.slope, 1.0, 0.35);  // ~ ln n growth
  EXPECT_GT(fit.r_squared, 0.97);

  const auto sync_curve = campaign_size_curve(sim::EngineKind::kSync, 60, 1235);
  double lo = sync_curve.front().second;
  double hi = lo;
  for (const auto& [n, mean] : sync_curve) {
    lo = std::min(lo, mean);
    hi = std::max(hi, mean);
  }
  EXPECT_LE(hi / lo, 1.05);  // constant at 2
}

TEST(CampaignSizeSweep, PowerLawFitRecoversLinearGrowth) {
  // The regression plumbing the sweep module used to wrap, exercised on a
  // campaign-shaped curve with a known exact law (path graphs: m = n - 1).
  std::vector<double> x;
  std::vector<double> y;
  for (const std::uint64_t n : {64u, 128u, 256u, 512u}) {
    sim::GraphSpec spec;
    spec.family = "path";
    spec.n = n;
    const auto g = sim::build_graph(spec, 1);
    x.push_back(static_cast<double>(g.num_nodes()));
    y.push_back(3.0 * static_cast<double>(g.num_nodes()));
  }
  const auto fit = stats::fit_power_law(x, y);
  EXPECT_NEAR(fit.slope, 1.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

// --- Worst-case source -----------------------------------------------------------

TEST(WorstSource, FindsLollipopTailEnd) {
  // On a lollipop the slowest sync source is deep in the tail (the rumor
  // must cross the whole path before the clique amplifies it)... actually
  // any source must traverse the path; the worst is at the tail tip, the
  // best inside the clique. The search must rank them in that order.
  const auto g = graph::lollipop(24, 24);  // tail tip = node 47
  sim::WorstSourceOptions opts;
  opts.max_candidates = 0;  // screen everything: n = 48 is small
  opts.screen_trials = 8;
  opts.final_trials = 40;
  const auto result = sim::find_worst_source_sync(g, core::Mode::kPushPull, opts);
  // Worst source lies in the far half of the tail.
  EXPECT_GE(result.source, 36u) << "worst=" << result.source;
  EXPECT_GT(result.mean_time, result.best_mean_time);
}

TEST(WorstSource, StarSourcesAreNearlyEquivalentSync) {
  // Sync pp on the star: hub takes 1 round, leaves take 2 — the gap is
  // tiny; the search must report a small worst/best spread.
  const auto g = graph::star(64);
  sim::WorstSourceOptions opts;
  opts.max_candidates = 16;
  const auto result = sim::find_worst_source_sync(g, core::Mode::kPushPull, opts);
  EXPECT_LE(result.mean_time, 2.05);
  EXPECT_GE(result.best_mean_time, 0.95);
}

TEST(WorstSource, AsyncSearchRunsAndOrdersFinalists) {
  const auto g = graph::double_star(64);
  sim::WorstSourceOptions opts;
  opts.max_candidates = 12;
  opts.final_trials = 60;
  const auto result = sim::find_worst_source_async(g, core::Mode::kPushPull, opts);
  EXPECT_GE(result.mean_time, result.best_mean_time);
  EXPECT_LT(result.source, g.num_nodes());
}

TEST(WorstSource, DeterministicGivenSeed) {
  const auto g = graph::barbell(10, 6);
  sim::WorstSourceOptions opts;
  opts.seed = 99;
  const auto a = sim::find_worst_source_sync(g, core::Mode::kPushPull, opts);
  const auto b = sim::find_worst_source_sync(g, core::Mode::kPushPull, opts);
  EXPECT_EQ(a.source, b.source);
  EXPECT_DOUBLE_EQ(a.mean_time, b.mean_time);
}
