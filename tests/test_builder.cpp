// Tests for graph::GraphBuilder — the mutable edge accumulator every
// generator builds through. The builder's contract: self-loops are ignored,
// parallel edges are deduplicated at build(), and the pre-freeze
// has_edge_slow answers agree with the frozen CSR's has_edge.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/properties.hpp"
#include "rng/rng.hpp"

namespace graph = rumor::graph;
namespace rng = rumor::rng;

TEST(GraphBuilder, DeduplicatesParallelEdges) {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // same undirected edge, reversed
  b.add_edge(0, 1);  // exact duplicate
  b.add_edge(2, 3);
  EXPECT_EQ(b.num_edges_added(), 4u);  // raw additions are all recorded
  const auto g = std::move(b).build("dedup");
  EXPECT_EQ(g.num_edges(), 2u);  // {0,1} once, {2,3} once
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(GraphBuilder, IgnoresSelfLoops) {
  graph::GraphBuilder b(3);
  b.add_edge(0, 0);
  b.add_edge(1, 1);
  b.add_edge(0, 1);
  const auto g = std::move(b).build("loops");
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(GraphBuilder, SelfLoopsOnlyYieldEmptyGraph) {
  graph::GraphBuilder b(2);
  b.add_edge(0, 0);
  b.add_edge(1, 1);
  const auto g = std::move(b).build("only-loops");
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphBuilder, NeighborsAreSortedAfterBuild) {
  graph::GraphBuilder b(5);
  b.add_edge(2, 4);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  b.add_edge(2, 1);
  const auto g = std::move(b).build("sorted");
  const auto nb = g.neighbors(2);
  ASSERT_EQ(nb.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
}

TEST(GraphBuilder, HasEdgeSlowSeesAddedEdges) {
  graph::GraphBuilder b(4);
  EXPECT_FALSE(b.has_edge_slow(0, 1));
  b.add_edge(0, 1);
  EXPECT_TRUE(b.has_edge_slow(0, 1));
  EXPECT_TRUE(b.has_edge_slow(1, 0));  // orientation-insensitive
  EXPECT_FALSE(b.has_edge_slow(1, 2));
  b.add_edge(2, 1);
  EXPECT_TRUE(b.has_edge_slow(1, 2));
}

TEST(GraphBuilder, HasEdgeSlowAgreesWithFrozenCsrOnRandomGraphs) {
  auto eng = rng::derive_stream(4242, 0);
  for (int round = 0; round < 20; ++round) {
    const graph::NodeId n = 30;
    graph::GraphBuilder b(n);
    // Random multigraph additions, self-loops included on purpose: the
    // builder must filter them exactly the way the frozen graph reports.
    std::set<std::pair<graph::NodeId, graph::NodeId>> expected;
    for (int i = 0; i < 120; ++i) {
      const auto a = static_cast<graph::NodeId>(rng::uniform_below(eng, n));
      const auto c = static_cast<graph::NodeId>(rng::uniform_below(eng, n));
      b.add_edge(a, c);
      if (a != c) expected.insert({std::min(a, c), std::max(a, c)});
    }
    // Pre-freeze answers match the set of distinct non-loop edges...
    for (graph::NodeId u = 0; u < n; ++u) {
      for (graph::NodeId v = 0; v < n; ++v) {
        const bool want = u != v && expected.count({std::min(u, v), std::max(u, v)}) > 0;
        EXPECT_EQ(b.has_edge_slow(u, v), want) << "pre-freeze {" << u << "," << v << "}";
      }
    }
    // ...and the frozen CSR agrees on every pair.
    const auto g = std::move(b).build("random");
    EXPECT_EQ(g.num_edges(), expected.size());
    for (graph::NodeId u = 0; u < n; ++u) {
      for (graph::NodeId v = 0; v < n; ++v) {
        const bool want = u != v && expected.count({std::min(u, v), std::max(u, v)}) > 0;
        EXPECT_EQ(g.has_edge(u, v), want) << "frozen {" << u << "," << v << "}";
      }
    }
  }
}

TEST(GraphBuilder, GeneratorsProduceSimpleGraphs) {
  // End-to-end: random generators route everything through the builder, so
  // their outputs must be simple (no loops — CSR can't represent them once
  // deduped — and strictly sorted unique neighbor lists).
  auto eng = rng::derive_stream(4243, 0);
  const graph::Graph graphs[] = {
      graph::erdos_renyi(200, 0.05, eng),
      graph::random_regular(200, 4, eng),
      graph::preferential_attachment(200, 3, eng),
  };
  for (const auto& g : graphs) {
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto nb = g.neighbors(v);
      for (std::size_t i = 0; i < nb.size(); ++i) {
        EXPECT_NE(nb[i], v) << g.name() << ": self-loop at " << v;
        if (i > 0) {
          EXPECT_LT(nb[i - 1], nb[i]) << g.name() << ": dup/unsorted at " << v;
        }
      }
    }
  }
}
