// Tests for the asynchronous engine — semantics, the equivalence of the
// three Poisson-clock views (Section 2 of the paper), the steps/time
// relation E[time] = E[steps]/n, and the star-graph Theta(log n) law.
#include <gtest/gtest.h>

#include <cmath>

#include "core/async.hpp"
#include "dist/distributions.hpp"
#include "graph/generators.hpp"
#include "rng/rng.hpp"
#include "sim/harness.hpp"

using namespace rumor;
using core::AsyncView;
using core::Mode;

namespace {

core::AsyncResult run(const graph::Graph& g, graph::NodeId source, Mode mode, AsyncView view,
                      std::uint64_t stream) {
  auto eng = rng::derive_stream(3030, stream);
  core::AsyncOptions opts;
  opts.mode = mode;
  opts.view = view;
  return core::run_async(g, source, eng, opts);
}

}  // namespace

TEST(AsyncEngine, TwoNodeGraphCompletes) {
  const auto g = graph::path(2);
  for (AsyncView view :
       {AsyncView::kGlobalClock, AsyncView::kPerNodeClocks, AsyncView::kPerEdgeClocks}) {
    const auto r = run(g, 0, Mode::kPushPull, view, static_cast<std::uint64_t>(view));
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.time, 0.0);
    EXPECT_EQ(r.informed_time[0], 0.0);
    EXPECT_GT(r.informed_time[1], 0.0);
  }
}

TEST(AsyncEngine, InformTimesAreOrderedAndBounded) {
  const auto g = graph::hypercube(6);
  const auto r = run(g, 0, Mode::kPushPull, AsyncView::kGlobalClock, 10);
  ASSERT_TRUE(r.completed);
  double max_time = 0.0;
  for (double t : r.informed_time) {
    EXPECT_NE(t, core::kNeverTime);
    max_time = std::max(max_time, t);
  }
  EXPECT_DOUBLE_EQ(max_time, r.time);
}

TEST(AsyncEngine, DeterministicGivenSeed) {
  const auto g = graph::torus(8);
  const auto a = run(g, 3, Mode::kPushPull, AsyncView::kGlobalClock, 11);
  const auto b = run(g, 3, Mode::kPushPull, AsyncView::kGlobalClock, 11);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_DOUBLE_EQ(a.time, b.time);
}

TEST(AsyncEngine, RespectsStepCap) {
  const auto g = graph::path(50);
  auto eng = rng::derive_stream(3030, 12);
  core::AsyncOptions opts;
  opts.max_ticks = 10;
  const auto r = core::run_async(g, 0, eng, opts);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.steps, 10u);
}

TEST(AsyncEngine, DisconnectedGraphHitsCap) {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const auto g = std::move(b).build("disc");
  auto eng = rng::derive_stream(3030, 13);
  core::AsyncOptions opts;
  opts.max_ticks = 500;
  const auto r = core::run_async(g, 0, eng, opts);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.informed_time[2], core::kNeverTime);
}

TEST(AsyncEngine, TimePerStepIsOneOverN) {
  // The global clock has rate n, so time/steps -> 1/n.
  const auto g = graph::cycle(64);
  double ratio_sum = 0.0;
  int trials = 30;
  for (int i = 0; i < trials; ++i) {
    const auto r = run(g, 0, Mode::kPushPull, AsyncView::kGlobalClock,
                       100 + static_cast<std::uint64_t>(i));
    ASSERT_TRUE(r.completed);
    ratio_sum += r.time / static_cast<double>(r.steps);
  }
  EXPECT_NEAR(ratio_sum / trials * 64.0, 1.0, 0.05);
}

// --- Equivalence of the three views (Section 2) -------------------------------
//
// The spreading-time distributions must agree across views; we compare
// Monte-Carlo samples with a two-sample KS test at a loose threshold.

class AsyncViewEquivalence : public ::testing::TestWithParam<std::pair<AsyncView, AsyncView>> {};

TEST_P(AsyncViewEquivalence, SpreadingTimeDistributionsAgree) {
  const auto [view_a, view_b] = GetParam();
  const auto g = graph::hypercube(6);
  sim::TrialConfig config;
  config.trials = 600;
  config.seed = 77;
  const auto a = sim::measure_async(g, 0, Mode::kPushPull, config, view_a);
  config.seed = 78;
  const auto b = sim::measure_async(g, 0, Mode::kPushPull, config, view_b);
  const double ks =
      dist::ks_statistic(dist::Ecdf(a.samples()), dist::Ecdf(b.samples()));
  // Two-sample KS 99.9% critical value for n=m=600 is ~1.95*sqrt(2/600)=0.113.
  EXPECT_LT(ks, 0.113);
}

INSTANTIATE_TEST_SUITE_P(
    Views, AsyncViewEquivalence,
    ::testing::Values(std::pair{AsyncView::kGlobalClock, AsyncView::kPerNodeClocks},
                      std::pair{AsyncView::kGlobalClock, AsyncView::kPerEdgeClocks},
                      std::pair{AsyncView::kPerNodeClocks, AsyncView::kPerEdgeClocks}));

// --- The paper's asynchronous star law (Section 1) ----------------------------

TEST(AsyncStar, IsLogarithmic) {
  // "In the asynchronous model it takes with high probability Theta(log n)
  // time until sufficiently many different Poisson clocks have ticked for
  // all nodes to get informed."
  sim::TrialConfig config;
  config.trials = 200;
  config.seed = 88;
  const auto t256 = sim::measure_async(graph::star(256), 1, Mode::kPushPull, config);
  const auto t4096 = sim::measure_async(graph::star(4096), 1, Mode::kPushPull, config);
  // Growth by a factor ~ log(4096)/log(256) = 1.5, certainly not 16x.
  const double growth = t4096.mean() / t256.mean();
  EXPECT_GT(growth, 1.1);
  EXPECT_LT(growth, 2.5);
  // Absolute scale ~ ln n + ln ln n; allow wide constants.
  EXPECT_GT(t4096.mean(), 0.7 * std::log(4096.0));
  EXPECT_LT(t4096.mean(), 3.0 * std::log(4096.0));
}

TEST(AsyncModes, PushPullFastestOnHypercube) {
  sim::TrialConfig config;
  config.trials = 100;
  config.seed = 89;
  const auto g = graph::hypercube(7);
  const auto push = sim::measure_async(g, 0, Mode::kPush, config);
  const auto pull = sim::measure_async(g, 0, Mode::kPull, config);
  const auto pp = sim::measure_async(g, 0, Mode::kPushPull, config);
  EXPECT_LT(pp.mean(), push.mean());
  EXPECT_LT(pp.mean(), pull.mean());
}

TEST(AsyncModes, PushAndPullSymmetricOnRegularGraphs) {
  // On regular graphs push-a and pull-a are time reversals of each other;
  // their spreading-time distributions coincide.
  sim::TrialConfig config;
  config.trials = 400;
  config.seed = 90;
  const auto g = graph::hypercube(6);
  const auto push = sim::measure_async(g, 0, Mode::kPush, config);
  const auto pull = sim::measure_async(g, 0, Mode::kPull, config);
  const double ks =
      dist::ks_statistic(dist::Ecdf(push.samples()), dist::Ecdf(pull.samples()));
  EXPECT_LT(ks, 0.14);  // 99.9% critical for n=m=400
}
