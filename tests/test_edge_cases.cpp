// Edge-case tests: the smallest legal inputs and boundary configurations of
// every public entry point — the places production users trip first.
#include <gtest/gtest.h>

#include "core/rumor.hpp"
#include "rng/rng.hpp"
#include "sim/harness.hpp"

using namespace rumor;

// --- Minimal graphs ------------------------------------------------------------

TEST(EdgeCases, TwoNodeGraphEverywhere) {
  const auto g = graph::path(2);
  auto eng = rng::derive_stream(1500, 0);
  EXPECT_TRUE(core::run_sync(g, 0, eng).completed);
  EXPECT_TRUE(core::run_async(g, 0, eng).completed);
  EXPECT_TRUE(core::run_aux(g, 0, eng).completed);
  EXPECT_TRUE(core::run_quasirandom(g, 0, eng).completed);
  EXPECT_TRUE(core::run_pull_coupling(g, 0, eng).completed);
  EXPECT_TRUE(core::run_push_coupling(g, 0, eng).completed);
  EXPECT_TRUE(core::run_block_coupling(g, 0, eng).completed);
  EXPECT_TRUE(core::run_sync_with_forest(g, 0, eng).result.completed);
  EXPECT_TRUE(core::run_async_with_forest(g, 0, eng).result.completed);
  EXPECT_TRUE(core::run_async_discretized(g, 0, eng).completed);
}

TEST(EdgeCases, SourceIsLastNode) {
  const auto g = graph::cycle(17);
  auto eng = rng::derive_stream(1500, 1);
  const auto r = core::run_sync(g, 16, eng);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.informed_round[16], 0u);
}

TEST(EdgeCases, IsolatedNodeInEngineDoesNotCrash) {
  // Engines must tolerate isolated nodes (they just never complete).
  graph::GraphBuilder b(3);
  b.add_edge(0, 1);
  const auto g = std::move(b).build("isolated");
  auto eng = rng::derive_stream(1500, 2);
  core::SyncOptions sopts;
  sopts.max_ticks = 20;
  EXPECT_FALSE(core::run_sync(g, 0, eng, sopts).completed);
  core::AsyncOptions aopts;
  aopts.max_ticks = 100;
  EXPECT_FALSE(core::run_async(g, 0, eng, aopts).completed);
}

TEST(EdgeCases, SingleTrialMonteCarlo) {
  sim::TrialConfig config;
  config.trials = 1;
  config.seed = 4;
  const auto sample = sim::measure_sync(graph::complete(8), 0, core::Mode::kPushPull, config);
  EXPECT_EQ(sample.size(), 1u);
  EXPECT_DOUBLE_EQ(sample.mean(), sample.median());
  EXPECT_DOUBLE_EQ(sample.quantile(0.0), sample.quantile(1.0));
}

TEST(EdgeCases, MeasureThrowsOnDisconnectedGraph) {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const auto g = std::move(b).build("disc");
  sim::TrialConfig config;
  config.trials = 4;
  config.seed = 5;
  config.threads = 2;  // exception must propagate out of the worker pool
  // The engines' default caps are enormous; give the trial body a small one
  // by going through the lambda API instead.
  EXPECT_THROW(
      (void)sim::run_trials(config,
                            [&](std::uint64_t, rng::Engine& eng) -> double {
                              core::SyncOptions opts;
                              opts.max_ticks = 10;
                              const auto r = core::run_sync(g, 0, eng, opts);
                              if (!r.completed) throw std::runtime_error("incomplete");
                              return static_cast<double>(r.rounds);
                            }),
      std::runtime_error);
}

TEST(EdgeCases, BlockCouplingOnTinyStar) {
  // n = 3 star: block capacity floor(sqrt(3)) = 1.
  const auto g = graph::star(3);
  auto eng = rng::derive_stream(1500, 3);
  const auto stats = core::run_block_coupling(g, 1, eng);
  EXPECT_TRUE(stats.completed);
  EXPECT_TRUE(stats.subset_invariant_held);
}

TEST(EdgeCases, QuantileExtremes) {
  sim::SpreadingTimeSample s({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 3.0);
  EXPECT_DOUBLE_EQ(s.hp_time(1.0), 1.0);
}

TEST(EdgeCases, MessageLossZeroMatchesCleanRun) {
  // loss = 0.0 must take the exact same code path (no extra RNG draws).
  const auto g = graph::hypercube(5);
  auto e1 = rng::derive_stream(1500, 4);
  auto e2 = rng::derive_stream(1500, 4);
  core::SyncOptions clean;
  core::SyncOptions zero_loss;
  zero_loss.message_loss = 0.0;
  const auto a = core::run_sync(g, 0, e1, clean);
  const auto b = core::run_sync(g, 0, e2, zero_loss);
  EXPECT_EQ(a.informed_round, b.informed_round);
}

TEST(EdgeCases, ExtraSourceEqualsPrimarySource) {
  const auto g = graph::cycle(8);
  auto eng = rng::derive_stream(1500, 5);
  core::SyncOptions opts;
  opts.extra_sources = {0};  // duplicate of the primary source
  const auto r = core::run_sync(g, 0, eng, opts);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.informed_round[0], 0u);
}

TEST(EdgeCases, TrajectoryOnSingleInformedNode) {
  const std::vector<double> times{0.0};
  EXPECT_DOUBLE_EQ(core::time_to_fraction(times, 1.0), 0.0);
  EXPECT_EQ(core::async_trajectory(times).size(), 1u);
}

TEST(EdgeCases, CouplingCapsReportIncomplete) {
  const auto g = graph::cycle(64);
  auto eng = rng::derive_stream(1500, 6);
  core::PullCouplingOptions opts;
  opts.max_rounds = 2;  // far too few for a 64-cycle
  const auto run = core::run_pull_coupling(g, 0, eng, opts);
  EXPECT_FALSE(run.completed);
}

TEST(EdgeCases, AveragingSingleValuePair) {
  const auto g = graph::path(2);
  const std::vector<double> initial{0.0, 10.0};
  auto eng = rng::derive_stream(1500, 7);
  const auto r = core::run_averaging_sync(g, initial, eng, {.epsilon = 1e-6});
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.values[0], 5.0, 1e-6);
  EXPECT_NEAR(r.values[1], 5.0, 1e-6);
}
