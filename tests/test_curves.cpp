// CurveAccumulator tests: the mergeable per-grid-point reduction behind
// campaign spread telemetry (stats/curves.hpp). Mirrors the
// StreamingEmptyState suite's bit-level contracts — sharded campaigns
// legally produce curve partials that saw zero trials, and
// checkpoint/resume/merge folds restored states — plus the grid-alignment
// contract: folding block partials of different trial counts in slot order
// is bit-identical to one sequential pass in trial order.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "stats/curves.hpp"

using namespace rumor;
using stats::ContactTotals;
using stats::CurveAccumulator;

namespace {

std::uint64_t bits(double x) {
  std::uint64_t u = 0;
  static_assert(sizeof(u) == sizeof(x));
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

/// Deterministic synthetic informed-count curve for trial `i`: monotone,
/// integer-valued, starting at 1 and absorbing at `n`, with trial-dependent
/// length and growth so partials carry distinct state.
std::vector<double> synthetic_curve(std::size_t i, double n) {
  std::vector<double> curve{1.0};
  const std::size_t growth = 1 + i % 4;
  while (curve.back() < n) {
    const double next =
        std::min(n, curve.back() + static_cast<double>(1 + (i + curve.size() * growth) % 7));
    curve.push_back(next);
  }
  // A couple of absorbing tail points, length varying by trial.
  for (std::size_t k = 0; k < i % 3; ++k) curve.push_back(n);
  return curve;
}

void expect_same_state(const CurveAccumulator::State& a, const CurveAccumulator::State& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.max_len, b.max_len);
  ASSERT_EQ(a.moments.size(), b.moments.size());
  for (std::size_t k = 0; k < a.moments.size(); ++k) {
    EXPECT_EQ(a.moments[k].count, b.moments[k].count) << "grid point " << k;
    EXPECT_EQ(bits(a.moments[k].mean), bits(b.moments[k].mean)) << "grid point " << k;
    EXPECT_EQ(bits(a.moments[k].m2), bits(b.moments[k].m2)) << "grid point " << k;
    EXPECT_EQ(bits(a.moments[k].min), bits(b.moments[k].min)) << "grid point " << k;
    EXPECT_EQ(bits(a.moments[k].max), bits(b.moments[k].max)) << "grid point " << k;
  }
  ASSERT_EQ(a.sketches.size(), b.sketches.size());
  for (std::size_t k = 0; k < a.sketches.size(); ++k) {
    EXPECT_EQ(a.sketches[k].count, b.sketches[k].count) << "grid point " << k;
    ASSERT_EQ(a.sketches[k].levels.size(), b.sketches[k].levels.size()) << "grid point " << k;
    for (std::size_t l = 0; l < a.sketches[k].levels.size(); ++l) {
      EXPECT_EQ(a.sketches[k].levels[l].keep_odd, b.sketches[k].levels[l].keep_odd);
      ASSERT_EQ(a.sketches[k].levels[l].items.size(), b.sketches[k].levels[l].items.size());
      for (std::size_t j = 0; j < a.sketches[k].levels[l].items.size(); ++j) {
        EXPECT_EQ(bits(a.sketches[k].levels[l].items[j]), bits(b.sketches[k].levels[l].items[j]));
      }
    }
  }
}

}  // namespace

// --- Grid semantics ----------------------------------------------------------

TEST(CurveGrid, ShortCurvesExtendWithAbsorbingValueLongOnesAreCut) {
  CurveAccumulator acc({.points = 8});
  acc.add({1.0, 3.0, 6.0});                                      // shorter than grid
  acc.add({1.0, 2.0, 4.0, 5.0, 6.0, 6.0, 6.0, 6.0, 6.0, 6.0});  // longer than grid

  EXPECT_EQ(acc.trials(), 2u);
  EXPECT_EQ(acc.points(), 8u);
  EXPECT_EQ(acc.max_len(), 10u);  // longest native curve, not the grid length
  // Point 1 sees both curves' native values; point 5 sees the short
  // curve's absorbing 6.0 against the long curve's native 6.0.
  EXPECT_EQ(acc.mean_at(0), 1.0);
  EXPECT_EQ(acc.mean_at(1), 2.5);
  EXPECT_EQ(acc.mean_at(5), 6.0);
  EXPECT_EQ(acc.mean_at(7), 6.0);
  // Exact per-point quantiles while under sketch capacity.
  EXPECT_EQ(acc.quantile_at(2, 0.0), 4.0);
  EXPECT_EQ(acc.quantile_at(2, 1.0), 6.0);

  EXPECT_THROW(acc.add({}), std::invalid_argument);
}

TEST(CurveGrid, MergeRejectsMismatchedGrids) {
  CurveAccumulator a({.points = 8});
  CurveAccumulator b({.points = 16});
  a.add({1.0, 2.0});
  b.add({1.0, 2.0});
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

// --- Grid-aligned partial folding (the campaign block contract) --------------

TEST(CurveGrid, FoldingPartialsAtDifferentTrialCountsIsDeterministicAndExact) {
  const CurveAccumulator::Options options{.points = 24, .sketch_capacity = 64};
  constexpr std::size_t kTrials = 40;
  constexpr double kN = 64.0;

  CurveAccumulator sequential(options);
  for (std::size_t i = 0; i < kTrials; ++i) sequential.add(synthetic_curve(i, kN));

  // An uneven block partition (trial counts 3, 17, 1, 19) folded in slot
  // order: integer components (trial count, max_len, per-point min/max and
  // sample counts) are exactly the sequential pass's, and the Welford
  // moments agree up to floating-point associativity (the same 1e-12
  // contract StreamingMoments asserts).
  auto fold = [&] {
    const std::size_t cuts[] = {0, 3, 20, 21, kTrials};
    CurveAccumulator folded(options);
    for (std::size_t s = 0; s + 1 < std::size(cuts); ++s) {
      CurveAccumulator partial(options);
      for (std::size_t i = cuts[s]; i < cuts[s + 1]; ++i) partial.add(synthetic_curve(i, kN));
      folded.merge(partial);
    }
    return folded;
  };
  const CurveAccumulator folded = fold();
  EXPECT_EQ(folded.trials(), sequential.trials());
  EXPECT_EQ(folded.max_len(), sequential.max_len());
  for (std::size_t k = 0; k < folded.points(); ++k) {
    EXPECT_EQ(folded.moments_at(k).count(), sequential.moments_at(k).count());
    EXPECT_EQ(folded.moments_at(k).min(), sequential.moments_at(k).min()) << "grid point " << k;
    EXPECT_EQ(folded.moments_at(k).max(), sequential.moments_at(k).max()) << "grid point " << k;
    EXPECT_NEAR(folded.mean_at(k), sequential.mean_at(k), 1e-12 * (1.0 + sequential.mean_at(k)))
        << "grid point " << k;
    EXPECT_NEAR(folded.stddev_at(k), sequential.stddev_at(k), 1e-12 * kN) << "grid point " << k;
  }

  // The fold itself is a pure function of the partials: repeating it gives
  // a bit-identical accumulator — the property behind thread-count
  // independence (the block partition, not the fold, fixes the grouping).
  expect_same_state(fold().state(), folded.state());
}

// --- Empty-state contract & checkpoint round-trips ---------------------------

TEST(CurveEmptyState, MergingAnEmptyOperandIsAnExactIdentityBothWays) {
  const CurveAccumulator::Options options{.points = 16, .sketch_capacity = 32};
  CurveAccumulator full(options);
  for (std::size_t i = 0; i < 50; ++i) full.add(synthetic_curve(i, 32.0));
  const auto before = full.state();

  // nonempty.merge(empty): bit-identical state afterwards.
  full.merge(CurveAccumulator(options));
  expect_same_state(full.state(), before);

  // empty.merge(nonempty): adopts the other verbatim (a shard that owned
  // zero blocks of this configuration).
  CurveAccumulator adopted(options);
  adopted.merge(full);
  expect_same_state(adopted.state(), before);
  EXPECT_EQ(adopted.max_len(), full.max_len());
}

TEST(CurveEmptyState, StateRoundTripsBitExactlyThroughRestore) {
  // Push past sketch capacity so compaction levels carry non-trivial state.
  const CurveAccumulator::Options options{.points = 12, .sketch_capacity = 16};
  CurveAccumulator original(options);
  for (std::size_t i = 0; i < 200; ++i) original.add(synthetic_curve(i, 48.0));

  const CurveAccumulator copy = CurveAccumulator::restored(options, original.state());
  expect_same_state(copy.state(), original.state());
  for (std::size_t k = 0; k < copy.points(); ++k) {
    EXPECT_EQ(bits(copy.mean_at(k)), bits(original.mean_at(k)));
    EXPECT_EQ(bits(copy.stddev_at(k)), bits(original.stddev_at(k)));
    for (double q : {0.1, 0.5, 0.9}) {
      EXPECT_EQ(bits(copy.quantile_at(k, q)), bits(original.quantile_at(k, q)));
    }
  }

  // Restored accumulators must also *continue* identically: same future
  // adds produce the same future state (the resume contract in miniature).
  CurveAccumulator a = original;
  CurveAccumulator b = CurveAccumulator::restored(options, original.state());
  for (std::size_t i = 200; i < 260; ++i) {
    a.add(synthetic_curve(i, 48.0));
    b.add(synthetic_curve(i, 48.0));
  }
  expect_same_state(a.state(), b.state());

  // An *empty* state round-trips too, and a grid mismatch is rejected.
  const CurveAccumulator empty(options);
  expect_same_state(CurveAccumulator::restored(options, empty.state()).state(), empty.state());
  EXPECT_THROW(CurveAccumulator::restored({.points = 13}, original.state()),
               std::invalid_argument);
}

// --- Contact totals ----------------------------------------------------------

TEST(ContactTotalsTest, MergeIsExactFieldWiseAddition) {
  ContactTotals a{.contacts = 100, .useful_push = 10, .useful_pull = 20, .wasted_push = 30,
                  .wasted_pull = 25, .empty_contacts = 15, .ticks = 40, .informed_total = 31};
  const ContactTotals b{.contacts = 7, .useful_push = 1, .useful_pull = 2, .wasted_push = 1,
                        .wasted_pull = 1, .empty_contacts = 2, .ticks = 3, .informed_total = 4};
  a.merge(b);
  EXPECT_EQ(a.contacts, 107u);
  EXPECT_EQ(a.useful_push, 11u);
  EXPECT_EQ(a.useful_pull, 22u);
  EXPECT_EQ(a.wasted_push, 31u);
  EXPECT_EQ(a.wasted_pull, 26u);
  EXPECT_EQ(a.empty_contacts, 17u);
  EXPECT_EQ(a.ticks, 43u);
  EXPECT_EQ(a.informed_total, 35u);
}
