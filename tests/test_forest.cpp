// Tests for informing forests: structural validity (parents adjacent and
// informed strictly earlier, forest spans, acyclic by construction), exact
// agreement with the plain engines under the same seed, and path-length
// facts the proofs rely on (path length <= informing round; depth bounds).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/informing_forest.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "rng/rng.hpp"

using namespace rumor;

namespace {

void expect_valid_sync_forest(const graph::Graph& g, const core::SyncForestRun& run,
                              graph::NodeId source) {
  ASSERT_TRUE(run.forest.completed);
  EXPECT_EQ(run.forest.parent[source], core::kNoParent);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v == source) continue;
    const graph::NodeId p = run.forest.parent[v];
    ASSERT_NE(p, core::kNoParent) << "node " << v << " informed without informer";
    EXPECT_TRUE(g.has_edge(v, p)) << "informer not adjacent";
    EXPECT_LT(run.result.informed_round[p], run.result.informed_round[v])
        << "informer not earlier";
    // Path length can't exceed the informing round: each hop costs >= 1.
    EXPECT_LE(run.forest.path_length(v), run.result.informed_round[v]);
  }
}

}  // namespace

TEST(SyncForest, ValidOnCanonicalGraphs) {
  for (const auto& g : {graph::hypercube(6), graph::star(64), graph::cycle(48),
                        graph::complete(32), graph::bundle_chain(4, 9)}) {
    auto eng = rng::derive_stream(1200, 0);
    const auto run = core::run_sync_with_forest(g, 0, eng);
    expect_valid_sync_forest(g, run, 0);
  }
}

TEST(SyncForest, MatchesPlainEngineGivenSameSeed) {
  const auto g = graph::torus(8);
  auto e1 = rng::derive_stream(1201, 0);
  auto e2 = rng::derive_stream(1201, 0);
  const auto plain = core::run_sync(g, 0, e1);
  const auto forest = core::run_sync_with_forest(g, 0, e2);
  EXPECT_EQ(plain.rounds, forest.result.rounds);
  EXPECT_EQ(plain.informed_round, forest.result.informed_round);
}

TEST(SyncForest, RespectsModesAndLoss) {
  const auto g = graph::hypercube(6);
  for (core::Mode mode : {core::Mode::kPush, core::Mode::kPull, core::Mode::kPushPull}) {
    auto eng = rng::derive_stream(1202, static_cast<std::uint64_t>(mode));
    core::SyncOptions opts;
    opts.mode = mode;
    opts.message_loss = 0.2;
    const auto run = core::run_sync_with_forest(g, 0, eng, opts);
    expect_valid_sync_forest(g, run, 0);
  }
}

TEST(SyncForest, StarDepthIsAtMostTwo) {
  // Informing paths on the star: leaf -> hub -> leaves; depth <= 2.
  const auto g = graph::star(128);
  for (int i = 0; i < 20; ++i) {
    auto eng = rng::derive_stream(1203, static_cast<std::uint64_t>(i));
    const auto run = core::run_sync_with_forest(g, 1, eng);
    ASSERT_TRUE(run.forest.completed);
    EXPECT_LE(run.forest.depth(), 2u);
  }
}

TEST(SyncForest, PathDepthIsExactlyDistance) {
  // On a path from node 0 there is a single informing route.
  const auto g = graph::path(32);
  auto eng = rng::derive_stream(1204, 0);
  const auto run = core::run_sync_with_forest(g, 0, eng);
  ASSERT_TRUE(run.forest.completed);
  for (graph::NodeId v = 0; v < 32; ++v) {
    EXPECT_EQ(run.forest.path_length(v), v);
  }
}

TEST(SyncForest, DepthBoundedByEccentricityPlusSlack) {
  // Informing paths are real paths, so depth >= eccentricity never holds in
  // reverse: depth >= BFS distance of the deepest node; and depth <= rounds.
  const auto g = graph::hypercube(7);
  auto eng = rng::derive_stream(1205, 0);
  const auto run = core::run_sync_with_forest(g, 0, eng);
  ASSERT_TRUE(run.forest.completed);
  EXPECT_GE(run.forest.depth(), graph::eccentricity(g, 0));
  EXPECT_LE(run.forest.depth(), run.result.rounds);
}

TEST(AsyncForest, ValidStructure) {
  const auto g = graph::hypercube(6);
  auto eng = rng::derive_stream(1206, 0);
  const auto run = core::run_async_with_forest(g, 0, eng);
  ASSERT_TRUE(run.forest.completed);
  EXPECT_EQ(run.forest.parent[0], core::kNoParent);
  for (graph::NodeId v = 1; v < g.num_nodes(); ++v) {
    const graph::NodeId p = run.forest.parent[v];
    ASSERT_NE(p, core::kNoParent);
    EXPECT_TRUE(g.has_edge(v, p));
    EXPECT_LT(run.result.informed_time[p], run.result.informed_time[v]);
    EXPECT_LE(run.forest.path_length(v), g.num_nodes());
  }
}

TEST(AsyncForest, MatchesPlainEngineGivenSameSeed) {
  const auto g = graph::cycle(64);
  auto e1 = rng::derive_stream(1207, 0);
  auto e2 = rng::derive_stream(1207, 0);
  const auto plain = core::run_async(g, 0, e1);
  const auto forest = core::run_async_with_forest(g, 0, e2);
  EXPECT_EQ(plain.steps, forest.result.steps);
  EXPECT_EQ(plain.informed_time, forest.result.informed_time);
}

TEST(AsyncForest, MultiSourceForestHasMultipleRoots) {
  const auto g = graph::path(64);
  auto eng = rng::derive_stream(1208, 0);
  core::AsyncOptions opts;
  opts.extra_sources = {63};
  const auto run = core::run_async_with_forest(g, 0, eng, opts);
  ASSERT_TRUE(run.forest.completed);
  EXPECT_EQ(run.forest.parent[0], core::kNoParent);
  EXPECT_EQ(run.forest.parent[63], core::kNoParent);
  // Every other node descends from one of the two roots.
  for (graph::NodeId v = 1; v < 63; ++v) {
    graph::NodeId root = v;
    while (run.forest.parent[root] != core::kNoParent) root = run.forest.parent[root];
    EXPECT_TRUE(root == 0 || root == 63) << "node " << v << " root " << root;
  }
}

TEST(AsyncForest, DepthNeverBelowBfsDistance) {
  const auto g = graph::torus(8);
  auto eng = rng::derive_stream(1209, 0);
  const auto run = core::run_async_with_forest(g, 0, eng);
  ASSERT_TRUE(run.forest.completed);
  const auto dist = graph::bfs_distances(g, 0);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GE(run.forest.path_length(v), dist[v]);
  }
}
