#!/usr/bin/env python3
"""CTest-invoked CLI checks for tools/spread_report.py.

Covers the exit-code contract the CI curves-smoke job relies on (0 = ok,
1 = --check failure, 2 = bad input) with synthetic reports in the schema
rumor_bench --campaign --curves --json emits: monotone/saturating curves
that pass, and targeted corruptions of each checked invariant — a
decreasing mean, a curve that never reaches n, a grid length disagreeing
with the row maximum, and a broken useful-transmission conservation sum.
The real-binary end of the contract — that rumor_bench --curves emits
reports this script passes — is covered by the CI smoke job and
tests/test_campaign.cpp.

Usage: test_spread_report.py /path/to/spread_report.py
"""

import copy
import json
import subprocess
import sys
import tempfile
import os

N = 32
TRIALS = 4


def report(engine, grid, curve, max_len, contacts, bucket=0.5, stat_max=None):
    points = len(curve)
    if stat_max is None:
        stat_max = float(max_len - 1) if grid == "rounds" else (max_len - 1.25) * bucket
    curves = {
        "grid": grid,
        "time_bucket": bucket if grid == "time" else None,
        "points": points,
        "trials": TRIALS,
        "max_len": max_len,
        "sources": 1,
        "mean": curve,
        "stddev": [0.0] * points,
        "p10": curve,
        "p50": curve,
        "p90": curve,
        "phases": {"startup_end": 1, "growth_end": 2, "spread_end": 3,
                   "startup_duration": 1, "growth_duration": 1,
                   "shrink_duration": 1},
        "contacts": contacts,
    }
    return {
        "experiment": f"unit/ring_n{N}_{engine}_push-pull",
        "title": f"ring — {engine} push-pull, {TRIALS} trials",
        "params": {"graph": f"ring({N})", "n": N, "engine": engine,
                   "mode": "push-pull", "trials": TRIALS, "seed": 1},
        "rows": [{"graph": f"ring({N})", "n": N, "trials": TRIALS,
                  "mean": stat_max / 2, "max": stat_max, "min": 1.0}],
        "stats": {"mean": stat_max / 2, "curves": curves},
    }


def contacts_for(useful):
    return {"contacts": 4 * useful, "useful_push": useful // 2,
            "useful_pull": useful - useful // 2, "wasted_push": useful,
            "wasted_pull": useful, "empty_contacts": useful,
            "ticks": 100, "informed_total": TRIALS * N}


def base_reports():
    """One round-grid and one time-grid cell over the same graph, both
    satisfying every checked invariant exactly."""
    useful = TRIALS * (N - 1)
    sync_curve = [1.0, 4.0, 16.0, float(N), float(N), float(N)]
    async_curve = [1.0, 2.0, 6.0, 14.0, 27.0, 31.0, float(N), float(N)]
    return [
        report("sync", "rounds", sync_curve, max_len=4, contacts=contacts_for(useful)),
        report("async", "time", async_curve, max_len=7, contacts=contacts_for(useful)),
    ]


def write(tmp, name, doc):
    path = os.path.join(tmp, name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return path


def run(spread_report, *args):
    proc = subprocess.run(
        [sys.executable, spread_report, *args], capture_output=True, text=True
    )
    return proc.returncode, proc.stdout + proc.stderr


def check(condition, message, output=""):
    if not condition:
        print(f"FAIL: {message}\n{output}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {message}")


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    spread_report = sys.argv[1]

    with tempfile.TemporaryDirectory() as tmp:
        clean = write(tmp, "clean.json", base_reports())
        code, out = run(spread_report, clean)
        check(code == 0, "report over clean curves exits 0", out)
        check("sync vs async" in out, "comparison table is rendered", out)
        check("phases" in out and "contacts:" in out,
              "phase and contact summaries are rendered", out)

        code, out = run(spread_report, clean, "--check")
        check(code == 0, "--check passes on clean curves", out)
        check("check passed" in out, "--check reports the pass", out)

        # A single report object (not an array) is accepted too.
        single = write(tmp, "single.json", base_reports()[0])
        code, out = run(spread_report, single, "--check")
        check(code == 0, "a single report object checks cleanly", out)

        # A decreasing mean curve violates monotonicity.
        dec = base_reports()
        dec[0]["stats"]["curves"]["mean"] = [1.0, 4.0, 3.0, float(N), float(N), float(N)]
        code, out = run(spread_report, write(tmp, "dec.json", dec), "--check")
        check(code == 1, "decreasing mean curve fails --check", out)
        check("decreases" in out, "monotonicity diagnostic is specific", out)

        # A curve that never saturates at n means a trial was cut short.
        unsat = base_reports()
        unsat[0]["stats"]["curves"]["mean"] = [1.0, 4.0, 16.0, 30.0, 30.0, 30.0]
        unsat[0]["stats"]["curves"]["p10"] = unsat[0]["stats"]["curves"]["mean"]
        unsat[0]["stats"]["curves"]["p50"] = unsat[0]["stats"]["curves"]["mean"]
        unsat[0]["stats"]["curves"]["p90"] = unsat[0]["stats"]["curves"]["mean"]
        code, out = run(spread_report, write(tmp, "unsat.json", unsat), "--check")
        check(code == 1, "non-saturating curve fails --check", out)
        check("saturate" in out, "saturation diagnostic is specific", out)

        # Grid length must agree with the slowest trial in the report rows.
        short = base_reports()
        short[0]["rows"][0]["max"] = 9.0  # max_len 4 implies 3 rounds
        code, out = run(spread_report, write(tmp, "short.json", short), "--check")
        check(code == 1, "round-grid/row-max disagreement fails --check", out)

        tshort = base_reports()
        tshort[1]["rows"][0]["max"] = 9.0  # outside the (2.5, 3.0] bucket span
        code, out = run(spread_report, write(tmp, "tshort.json", tshort), "--check")
        check(code == 1, "time-grid/row-max disagreement fails --check", out)

        # Conservation: useful transmissions must equal informed non-sources.
        leak = base_reports()
        leak[1]["stats"]["curves"]["contacts"]["useful_push"] += 1
        code, out = run(spread_report, write(tmp, "leak.json", leak), "--check")
        check(code == 1, "broken conservation sum fails --check", out)
        check("useful transmission" in out, "conservation diagnostic is specific", out)

        # Reports without curves are skipped; all-skipped is bad input.
        mixed = base_reports()
        del mixed[0]["stats"]["curves"]
        code, out = run(spread_report, write(tmp, "mixed.json", mixed), "--check")
        check(code == 0, "reports without curves are skipped", out)
        check("skipped" in out, "the skip is reported", out)
        bare = copy.deepcopy(mixed)
        del bare[1]["stats"]["curves"]
        code, out = run(spread_report, write(tmp, "bare.json", bare))
        check(code == 2, "a report with no curves anywhere exits 2", out)

        # Bad input: missing file, JSON without a stats key.
        code, out = run(spread_report, os.path.join(tmp, "nope.json"))
        check(code == 2, "missing report exits 2", out)
        code, out = run(spread_report, write(tmp, "norows.json", {"rows": []}))
        check(code == 2, "JSON without stats exits 2", out)

    print("test_spread_report: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
