// Tests for the quasirandom protocol [11]: completion, determinism given
// the start slots, the cycle's deterministic frontier fact, and parity with
// the fully random protocol on expanders (the [11] experimental finding).
#include <gtest/gtest.h>

#include <cmath>

#include "core/quasirandom.hpp"
#include "core/sync.hpp"
#include "graph/generators.hpp"
#include "rng/rng.hpp"
#include "sim/harness.hpp"

using namespace rumor;

TEST(Quasirandom, CompletesOnCanonicalGraphs) {
  for (const auto& g : {graph::hypercube(6), graph::star(64), graph::cycle(48),
                        graph::complete(32), graph::torus(7)}) {
    auto eng = rng::derive_stream(1300, 0);
    const auto r = core::run_quasirandom(g, 0, eng);
    ASSERT_TRUE(r.completed) << g.name();
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_NE(r.informed_round[v], core::kNeverRound);
    }
  }
}

TEST(Quasirandom, DeterministicGivenSeed) {
  const auto g = graph::torus(8);
  auto e1 = rng::derive_stream(1301, 0);
  auto e2 = rng::derive_stream(1301, 0);
  const auto a = core::run_quasirandom(g, 0, e1);
  const auto b = core::run_quasirandom(g, 0, e2);
  EXPECT_EQ(a.informed_round, b.informed_round);
}

TEST(Quasirandom, ConsumesOneDrawPerNodeOnly) {
  // The model draws exactly one start slot per non-isolated node; engine
  // state afterwards must be exactly n draws ahead.
  const auto g = graph::cycle(32);
  auto eng = rng::derive_stream(1302, 0);
  auto reference = rng::derive_stream(1302, 0);
  (void)core::run_quasirandom(g, 0, eng);
  for (int i = 0; i < 32; ++i) (void)rng::uniform_below(reference, 2);
  EXPECT_EQ(eng.next(), reference.next());
}

TEST(Quasirandom, CycleCoversInTwoRoundsPerHopWorstCase) {
  // On the cycle each informed node alternates between its two neighbors,
  // so the frontier advances every <= 2 rounds deterministically once a
  // node is informed: total <= 2 * ceil(n/2) + O(1), and >= n/2 - 1.
  const auto g = graph::cycle(64);
  for (int i = 0; i < 20; ++i) {
    auto eng = rng::derive_stream(1303, static_cast<std::uint64_t>(i));
    const auto r = core::run_quasirandom(g, 0, eng);
    ASSERT_TRUE(r.completed);
    EXPECT_GE(r.rounds, 31u);
    EXPECT_LE(r.rounds, 66u);
  }
}

TEST(Quasirandom, StarFromLeafIsTwoRounds) {
  // Quasirandom or not, leaves have one neighbor and the hub informs in
  // round 1 via the source's push; round 2 pulls everywhere.
  const auto g = graph::star(64);
  auto eng = rng::derive_stream(1304, 0);
  const auto r = core::run_quasirandom(g, 1, eng);
  ASSERT_TRUE(r.completed);
  EXPECT_LE(r.rounds, 2u);
}

TEST(Quasirandom, MatchesFullyRandomScaleOnHypercube) {
  // The [11] finding: quasirandom spreading time is within a small constant
  // of the fully random protocol on classical families.
  const auto g = graph::hypercube(8);
  constexpr int kTrials = 150;
  double quasi = 0.0;
  for (int i = 0; i < kTrials; ++i) {
    auto eng = rng::derive_stream(1305, static_cast<std::uint64_t>(i));
    quasi += static_cast<double>(core::run_quasirandom(g, 0, eng).rounds);
  }
  quasi /= kTrials;
  sim::TrialConfig config;
  config.trials = kTrials;
  config.seed = 1306;
  const auto random = sim::measure_sync(g, 0, core::Mode::kPushPull, config);
  EXPECT_NEAR(quasi / random.mean(), 1.0, 0.25);
}

TEST(Quasirandom, PushOnlyStillCompletes) {
  const auto g = graph::hypercube(6);
  auto eng = rng::derive_stream(1307, 0);
  core::QuasirandomOptions opts;
  opts.mode = core::Mode::kPush;
  const auto r = core::run_quasirandom(g, 0, eng, opts);
  EXPECT_TRUE(r.completed);
}

TEST(Quasirandom, RespectsRoundCap) {
  const auto g = graph::path(64);
  auto eng = rng::derive_stream(1308, 0);
  core::QuasirandomOptions opts;
  opts.max_ticks = 3;
  const auto r = core::run_quasirandom(g, 0, eng, opts);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.rounds, 3u);
}
