// Tests for rumor::graph — CSR integrity, every generator's structural
// invariants, and the property computations (connectivity, BFS, degrees,
// contact probabilities).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/properties.hpp"
#include "rng/rng.hpp"

namespace graph = rumor::graph;
namespace rng = rumor::rng;
using graph::Graph;
using graph::NodeId;

namespace {

/// CSR invariants every built graph must satisfy: neighbor lists sorted,
/// no self-loops, no duplicates, symmetric adjacency.
void expect_well_formed(const Graph& g) {
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.neighbors(v);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    EXPECT_EQ(std::adjacent_find(nbrs.begin(), nbrs.end()), nbrs.end()) << "dup at " << v;
    for (NodeId w : nbrs) {
      EXPECT_NE(w, v) << "self loop at " << v;
      EXPECT_LT(w, g.num_nodes());
      EXPECT_TRUE(g.has_edge(w, v)) << "asymmetric edge " << v << "-" << w;
    }
  }
  std::size_t arc_count = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) arc_count += g.degree(v);
  EXPECT_EQ(arc_count, 2 * g.num_edges());
}

}  // namespace

TEST(GraphBuilder, DeduplicatesAndDropsSelfLoops) {
  graph::GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // duplicate, reversed
  b.add_edge(0, 1);  // duplicate
  b.add_edge(2, 2);  // self loop
  b.add_edge(1, 2);
  const Graph g = std::move(b).build("t");
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
  expect_well_formed(g);
}

TEST(Graph, NeighborIndexRoundTrips) {
  const Graph g = graph::cycle(10);
  for (NodeId v = 0; v < 10; ++v) {
    for (std::uint32_t i = 0; i < g.degree(v); ++i) {
      const NodeId w = g.neighbor_at(v, i);
      EXPECT_EQ(g.neighbor_index(v, w), i);
    }
  }
  EXPECT_EQ(g.neighbor_index(0, 5), g.degree(0));  // absent -> degree sentinel
}

TEST(Graph, RandomNeighborIsUniform) {
  const Graph g = graph::star(5);  // hub 0 with 4 leaves
  auto eng = rng::derive_stream(1, 0);
  std::array<int, 5> counts{};
  constexpr int kSamples = 40000;
  for (int i = 0; i < kSamples; ++i) ++counts[g.random_neighbor(0, eng)];
  EXPECT_EQ(counts[0], 0);  // hub never its own neighbor
  for (NodeId leaf = 1; leaf < 5; ++leaf) {
    EXPECT_NEAR(static_cast<double>(counts[leaf]) / kSamples, 0.25, 0.01);
  }
}

// --- Deterministic generators ------------------------------------------------

TEST(Generators, Complete) {
  const Graph g = graph::complete(8);
  EXPECT_EQ(g.num_nodes(), 8u);
  EXPECT_EQ(g.num_edges(), 28u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_EQ(graph::diameter(g), 1u);
  expect_well_formed(g);
}

TEST(Generators, Star) {
  const Graph g = graph::star(10);
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_EQ(g.degree(0), 9u);
  for (NodeId v = 1; v < 10; ++v) EXPECT_EQ(g.degree(v), 1u);
  EXPECT_FALSE(g.is_regular());
  EXPECT_EQ(graph::diameter(g), 2u);
  expect_well_formed(g);
}

TEST(Generators, DoubleStar) {
  const Graph g = graph::double_star(12);
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_TRUE(g.has_edge(0, 1));
  // 10 leaves split evenly between the two hubs.
  EXPECT_EQ(g.degree(0), 6u);  // 5 leaves + other hub
  EXPECT_EQ(g.degree(1), 6u);
  EXPECT_EQ(graph::diameter(g), 3u);
  expect_well_formed(g);
}

TEST(Generators, Path) {
  const Graph g = graph::path(6);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(graph::diameter(g), 5u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(3), 2u);
  expect_well_formed(g);
}

TEST(Generators, Cycle) {
  const Graph g = graph::cycle(7);
  EXPECT_EQ(g.num_edges(), 7u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(graph::diameter(g), 3u);
  expect_well_formed(g);
}

TEST(Generators, Torus) {
  const Graph g = graph::torus(4);
  EXPECT_EQ(g.num_nodes(), 16u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(graph::degree_stats(g).max, 4u);
  EXPECT_EQ(graph::diameter(g), 4u);  // 2 + 2 wrap-around hops
  EXPECT_TRUE(graph::is_connected(g));
  expect_well_formed(g);
}

TEST(Generators, Hypercube) {
  const Graph g = graph::hypercube(5);
  EXPECT_EQ(g.num_nodes(), 32u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(0), 5u);
  EXPECT_EQ(graph::diameter(g), 5u);
  expect_well_formed(g);
}

TEST(Generators, BinaryTree) {
  const Graph g = graph::complete_binary_tree(15);
  EXPECT_EQ(g.num_edges(), 14u);
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(14), 1u);
  expect_well_formed(g);
}

TEST(Generators, Lollipop) {
  const Graph g = graph::lollipop(6, 4);
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_EQ(g.degree(9), 1u);  // end of the tail
  expect_well_formed(g);
}

TEST(Generators, Barbell) {
  const Graph g = graph::barbell(5, 3);
  EXPECT_EQ(g.num_nodes(), 13u);
  EXPECT_TRUE(graph::is_connected(g));
  expect_well_formed(g);
}

TEST(Generators, ChainOfStars) {
  const Graph g = graph::chain_of_stars(4, 10);
  EXPECT_EQ(g.num_nodes(), 44u);
  EXPECT_TRUE(graph::is_connected(g));
  // Interior hubs: 10 leaves + 2 chain edges.
  EXPECT_EQ(g.degree(11), 12u);
  // End hubs: 10 leaves + 1 chain edge.
  EXPECT_EQ(g.degree(0), 11u);
  // Leaves are pendant.
  EXPECT_EQ(g.degree(1), 1u);
  expect_well_formed(g);
}

TEST(Generators, BundleChain) {
  const graph::NodeId len = 5;
  const graph::NodeId width = 7;
  const graph::Graph g = graph::bundle_chain(len, width);
  EXPECT_EQ(g.num_nodes(), (len + 1) + len * width);
  EXPECT_EQ(g.num_edges(), static_cast<std::size_t>(2 * len * width));
  EXPECT_TRUE(graph::is_connected(g));
  // No direct relay-relay edges: the chain routes through helpers only.
  for (graph::NodeId i = 0; i < len; ++i) EXPECT_FALSE(g.has_edge(i, i + 1));
  // Interior relays touch two bundles, end relays one.
  EXPECT_EQ(g.degree(0), width);
  EXPECT_EQ(g.degree(len), width);
  EXPECT_EQ(g.degree(1), 2 * width);
  // Helpers have degree exactly 2 (their two relays).
  EXPECT_EQ(g.degree(len + 1), 2u);
  // Distance between chain ends is 2 * len (relay, helper, relay, ...).
  EXPECT_EQ(graph::bfs_distances(g, 0)[len], 2 * len);
  expect_well_formed(g);
}

// --- Random generators -------------------------------------------------------

TEST(Generators, ErdosRenyiEdgeCount) {
  auto eng = rng::derive_stream(2, 0);
  const NodeId n = 400;
  const double p = 0.05;
  const Graph g = graph::erdos_renyi(n, p, eng);
  const double expected = p * n * (n - 1) / 2.0;
  const double sd = std::sqrt(expected * (1 - p));
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 6 * sd);
  expect_well_formed(g);
}

TEST(Generators, ErdosRenyiDense) {
  auto eng = rng::derive_stream(2, 1);
  const Graph g = graph::erdos_renyi(30, 1.0, eng);
  EXPECT_EQ(g.num_edges(), 435u);  // complete
}

TEST(Generators, ErdosRenyiConnectedAboveThreshold) {
  auto eng = rng::derive_stream(2, 2);
  const NodeId n = 500;
  const double p = 3.0 * std::log(n) / n;
  const Graph g = graph::erdos_renyi(n, p, eng);
  EXPECT_TRUE(graph::is_connected(g));
}

TEST(Generators, RandomRegularIsRegularAndConnected) {
  auto eng = rng::derive_stream(3, 0);
  const Graph g = graph::random_regular(200, 4, eng);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(0), 4u);
  EXPECT_TRUE(graph::is_connected(g));
  expect_well_formed(g);
}

TEST(Generators, RandomRegularOddDegreeEvenN) {
  auto eng = rng::derive_stream(3, 1);
  const Graph g = graph::random_regular(100, 3, eng);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(0), 3u);
}

TEST(Generators, ChungLuDegreesScaleWithTarget) {
  auto eng = rng::derive_stream(4, 0);
  graph::ChungLuOptions opts;
  opts.beta = 2.5;
  opts.average_degree = 10.0;
  const Graph g = graph::chung_lu(2000, opts, eng);
  const auto stats = graph::degree_stats(g);
  // Heavy-tailed: max degree far above mean; mean near the target (edge
  // probability truncation loses a little mass).
  EXPECT_GT(stats.mean, 5.0);
  EXPECT_LT(stats.mean, 14.0);
  EXPECT_GT(stats.max, 4 * static_cast<std::uint32_t>(stats.mean));
  expect_well_formed(g);
}

TEST(Generators, PreferentialAttachment) {
  auto eng = rng::derive_stream(5, 0);
  const Graph g = graph::preferential_attachment(1000, 3, eng);
  EXPECT_EQ(g.num_nodes(), 1000u);
  EXPECT_TRUE(graph::is_connected(g));  // PA graphs are connected by construction
  const auto stats = graph::degree_stats(g);
  EXPECT_GE(stats.min, 3u);
  EXPECT_GT(stats.max, 30u);  // hubs emerge
  expect_well_formed(g);
}

TEST(Generators, LargestComponent) {
  // Two disjoint triangles {0,1,2} and {3,4,5} plus isolated 6: LCC has 3 nodes.
  graph::GraphBuilder b(7);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  const Graph g = std::move(b).build("two-comps");
  const Graph lcc = graph::largest_component(g);
  EXPECT_EQ(lcc.num_nodes(), 3u);
  EXPECT_TRUE(graph::is_connected(lcc));
  EXPECT_EQ(lcc.num_edges(), 3u);  // picks the triangle, not the path
}

// --- Properties --------------------------------------------------------------

TEST(Properties, ComponentsOnDisconnectedGraph) {
  graph::GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = std::move(b).build("disc");
  const auto comp = graph::connected_components(g);
  EXPECT_EQ(comp.num_components, 3u);
  EXPECT_EQ(comp.label[0], comp.label[1]);
  EXPECT_EQ(comp.label[2], comp.label[3]);
  EXPECT_NE(comp.label[0], comp.label[2]);
  EXPECT_NE(comp.label[4], comp.label[0]);
  EXPECT_FALSE(graph::is_connected(g));
}

TEST(Properties, BfsDistancesOnPath) {
  const Graph g = graph::path(6);
  const auto dist = graph::bfs_distances(g, 0);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(dist[v], v);
}

TEST(Properties, EccentricityOnStar) {
  const Graph g = graph::star(10);
  EXPECT_EQ(graph::eccentricity(g, 0), 1u);
  EXPECT_EQ(graph::eccentricity(g, 1), 2u);
}

TEST(Properties, DegreeStatsOnStar) {
  const auto stats = graph::degree_stats(graph::star(11));
  EXPECT_EQ(stats.min, 1u);
  EXPECT_EQ(stats.max, 10u);
  EXPECT_NEAR(stats.mean, 20.0 / 11.0, 1e-9);
  EXPECT_FALSE(stats.regular);
}

TEST(Properties, ContactProbabilitiesSumToOne) {
  for (const Graph& g : {graph::star(20), graph::cycle(15), graph::hypercube(4)}) {
    const auto pi = graph::contact_probabilities(g);
    const double total = std::accumulate(pi.begin(), pi.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9) << g.name();
  }
}

TEST(Properties, ContactProbabilityOfStarHub) {
  // Every leaf contacts the hub with probability 1, so pi(hub) = (n-1)/n.
  const NodeId n = 10;
  const auto pi = graph::contact_probabilities(graph::star(n));
  EXPECT_NEAR(pi[0], static_cast<double>(n - 1) / n, 1e-9);
  EXPECT_NEAR(pi[1], 1.0 / (n * 9.0), 1e-9);
}
