// Tests for the Monte-Carlo harness — thread-schedule-independent
// reproducibility, trial seeding, SpreadingTimeSample derived statistics,
// and the Table/CSV sink.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "graph/generators.hpp"
#include "sim/harness.hpp"
#include "sim/table.hpp"

using namespace rumor;

TEST(RunTrials, ResultsOrderedByTrialIndex) {
  sim::TrialConfig config;
  config.trials = 64;
  config.seed = 3;
  config.threads = 4;
  const auto results =
      sim::run_trials(config, [](std::uint64_t t, rng::Engine&) { return static_cast<double>(t); });
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i], static_cast<double>(i));
  }
}

TEST(RunTrials, SameSeedSameResultsAcrossThreadCounts) {
  const auto g = graph::hypercube(5);
  auto body = [&](std::uint64_t, rng::Engine& eng) {
    return static_cast<double>(core::run_sync(g, 0, eng).rounds);
  };
  sim::TrialConfig serial;
  serial.trials = 40;
  serial.seed = 5;
  serial.threads = 1;
  sim::TrialConfig parallel = serial;
  parallel.threads = 8;
  EXPECT_EQ(sim::run_trials(serial, body), sim::run_trials(parallel, body));
}

TEST(RunTrials, EnginesAreTrialSpecific) {
  // Two trials must see different randomness.
  sim::TrialConfig config;
  config.trials = 2;
  config.seed = 9;
  const auto results = sim::run_trials(
      config, [](std::uint64_t, rng::Engine& eng) { return rng::uniform01(eng); });
  EXPECT_NE(results[0], results[1]);
}

TEST(SpreadingTimeSample, DerivedStatistics) {
  sim::SpreadingTimeSample s({4.0, 2.0, 6.0, 8.0});  // sorted internally
  EXPECT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  EXPECT_DOUBLE_EQ(s.median(), 4.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 8.0);
  EXPECT_DOUBLE_EQ(s.hp_time(0.25), 6.0);  // smallest t with >= 75% of mass
}

TEST(SpreadingTimeSample, MeanCiContainsMean) {
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(static_cast<double>(i % 10));
  sim::SpreadingTimeSample s(std::move(xs));
  const auto ci = s.mean_ci();
  EXPECT_LE(ci.lower, s.mean());
  EXPECT_GE(ci.upper, s.mean());
}

TEST(MeasureFunctions, AgreeWithDirectRuns) {
  const auto g = graph::complete(32);
  sim::TrialConfig config;
  config.trials = 10;
  config.seed = 31;
  config.threads = 1;
  const auto sample = sim::measure_sync(g, 0, core::Mode::kPushPull, config);
  // Reproduce trial 0 by hand: same derived stream.
  auto eng = rng::derive_stream(31, 0);
  const auto direct = core::run_sync(g, 0, eng);
  // measure_sync sorts; the direct value must be among the samples.
  bool found = false;
  for (double x : sample.samples()) {
    if (x == static_cast<double>(direct.rounds)) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Table, PrintsAlignedColumns) {
  sim::Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  EXPECT_EQ(t.num_rows(), 2u);
  t.print();  // smoke: must not crash
}

TEST(Table, WritesCsv) {
  sim::Table t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  const auto path = std::filesystem::temp_directory_path() / "rumor_table_test.csv";
  t.write_csv(path.string());
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "x,y\n1,2\n3,4\n");
  std::filesystem::remove(path);
}

TEST(FmtCell, FormatsNumbers) {
  EXPECT_EQ(sim::fmt_cell("%.2f", 3.14159), "3.14");
  EXPECT_EQ(sim::fmt_cell("%u", 42u), "42");
}
