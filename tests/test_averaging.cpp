// Tests for randomized gossip averaging (Boyd et al. [4] substrate):
// sum conservation, convergence to the mean, clocking equivalence of the
// epsilon-averaging time scale, and the spectral-gap ordering across
// topologies.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "core/averaging.hpp"
#include "graph/expansion.hpp"
#include "graph/generators.hpp"
#include "rng/rng.hpp"

using namespace rumor;

namespace {

std::vector<double> ramp_values(graph::NodeId n) {
  std::vector<double> v(n);
  std::iota(v.begin(), v.end(), 0.0);
  return v;
}

double mean_of(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

}  // namespace

TEST(Averaging, SyncConservesMeanAndConverges) {
  const auto g = graph::hypercube(6);
  const auto initial = ramp_values(g.num_nodes());
  const double mean = mean_of(initial);
  auto eng = rng::derive_stream(1100, 0);
  const auto r = core::run_averaging_sync(g, initial, eng, {.epsilon = 1e-4});
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(mean_of(r.values), mean, 1e-9);
  for (double v : r.values) EXPECT_NEAR(v, mean, 1e-2 * mean + 0.5);
}

TEST(Averaging, AsyncConservesMeanAndConverges) {
  const auto g = graph::hypercube(6);
  const auto initial = ramp_values(g.num_nodes());
  const double mean = mean_of(initial);
  auto eng = rng::derive_stream(1100, 1);
  const auto r = core::run_averaging_async(g, initial, eng, {.epsilon = 1e-4});
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(mean_of(r.values), mean, 1e-9);
  EXPECT_GT(r.time, 0.0);
  EXPECT_GT(r.interactions, 0u);
}

TEST(Averaging, ConstantInputConvergesImmediately) {
  const auto g = graph::cycle(16);
  const std::vector<double> initial(16, 3.5);
  auto eng = rng::derive_stream(1100, 2);
  const auto r = core::run_averaging_sync(g, initial, eng);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.time, 0.0);
}

TEST(Averaging, TighterEpsilonTakesLonger) {
  const auto g = graph::cycle(64);
  const auto initial = ramp_values(64);
  auto e1 = rng::derive_stream(1100, 3);
  auto e2 = rng::derive_stream(1100, 3);
  const auto coarse = core::run_averaging_sync(g, initial, e1, {.epsilon = 1e-1});
  const auto fine = core::run_averaging_sync(g, initial, e2, {.epsilon = 1e-4});
  ASSERT_TRUE(coarse.converged);
  ASSERT_TRUE(fine.converged);
  EXPECT_GT(fine.time, coarse.time);
}

TEST(Averaging, ExpanderBeatsCycle) {
  // Averaging time ~ log(1/eps)/gap: the random-regular expander must be
  // far faster than the cycle at equal n.
  auto gen = rng::derive_stream(1100, 4);
  const auto expander = graph::random_regular(128, 6, gen);
  const auto cyc = graph::cycle(128);
  const auto initial = ramp_values(128);
  auto e1 = rng::derive_stream(1100, 5);
  auto e2 = rng::derive_stream(1100, 6);
  const auto fast = core::run_averaging_async(expander, initial, e1, {.epsilon = 1e-3});
  const auto slow = core::run_averaging_async(cyc, initial, e2, {.epsilon = 1e-3});
  ASSERT_TRUE(fast.converged);
  ASSERT_TRUE(slow.converged);
  EXPECT_LT(10.0 * fast.time, slow.time);
}

TEST(Averaging, RespectsTickCap) {
  const auto g = graph::cycle(128);
  const auto initial = ramp_values(128);
  auto eng = rng::derive_stream(1100, 7);
  core::AveragingOptions opts;
  opts.epsilon = 1e-9;
  opts.max_ticks = 5;
  const auto r = core::run_averaging_sync(g, initial, eng, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_DOUBLE_EQ(r.time, 5.0);
}

TEST(Averaging, AsyncIncrementalDeviationMatchesDirect) {
  // The async engine tracks the deviation incrementally; cross-check the
  // final values against a direct computation.
  const auto g = graph::torus(6);
  const auto initial = ramp_values(36);
  auto eng = rng::derive_stream(1100, 8);
  const auto r = core::run_averaging_async(g, initial, eng, {.epsilon = 1e-2});
  ASSERT_TRUE(r.converged);
  const double mean = mean_of(initial);
  double dev = 0.0;
  double dev0 = 0.0;
  for (std::size_t i = 0; i < initial.size(); ++i) {
    dev += (r.values[i] - mean) * (r.values[i] - mean);
    dev0 += (initial[i] - mean) * (initial[i] - mean);
  }
  // Converged means relative deviation <= eps (small fp slack).
  EXPECT_LE(std::sqrt(dev / dev0), 1e-2 * 1.05);
}

TEST(Averaging, SyncAsyncTimesComparableOnExpander) {
  // One async time unit ~ one sync round (n contacts); on a good expander
  // the epsilon-averaging times agree within a small factor.
  const auto g = graph::hypercube(7);
  const auto initial = ramp_values(128);
  auto e1 = rng::derive_stream(1100, 9);
  auto e2 = rng::derive_stream(1100, 10);
  const auto sync = core::run_averaging_sync(g, initial, e1, {.epsilon = 1e-3});
  const auto async = core::run_averaging_async(g, initial, e2, {.epsilon = 1e-3});
  ASSERT_TRUE(sync.converged);
  ASSERT_TRUE(async.converged);
  const double ratio = async.time / sync.time;
  EXPECT_GT(ratio, 0.3);
  EXPECT_LT(ratio, 3.5);
}
