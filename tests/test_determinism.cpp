// Regression tests for the harness's documented bit-reproducibility
// contract: sim::run_trials derives one engine per trial index
// (rng::derive_stream(seed, i)), so the result vector must be bit-identical
// regardless of how trials land on worker threads.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/rumor.hpp"
#include "rng/rng.hpp"
#include "sim/harness.hpp"

using namespace rumor;

namespace {

/// A representative trial body: a full synchronous execution, so the test
/// exercises real engine work rather than a toy function.
std::vector<double> run_with_threads(unsigned threads, std::uint64_t trials,
                                     std::uint64_t seed) {
  const auto g = graph::hypercube(6);
  sim::TrialConfig config;
  config.trials = trials;
  config.seed = seed;
  config.threads = threads;
  return sim::run_trials(config, [&](std::uint64_t, rng::Engine& eng) {
    return static_cast<double>(core::run_sync(g, 0, eng).rounds);
  });
}

}  // namespace

TEST(Determinism, RunTrialsBitIdenticalAcrossThreadCounts) {
  const auto t1 = run_with_threads(1, 64, 99);
  const auto t2 = run_with_threads(2, 64, 99);
  const auto t8 = run_with_threads(8, 64, 99);
  ASSERT_EQ(t1.size(), 64u);
  // EXPECT_EQ on the vectors is exact (bitwise) equality for doubles —
  // precisely the contract under test.
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
}

TEST(Determinism, RunTrialsBitIdenticalAcrossRepeats) {
  const auto a = run_with_threads(4, 48, 1234);
  const auto b = run_with_threads(4, 48, 1234);
  EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsDiffer) {
  const auto a = run_with_threads(2, 64, 1);
  const auto b = run_with_threads(2, 64, 2);
  EXPECT_NE(a, b);
}

TEST(Determinism, TrialValueDependsOnIndexNotSchedule) {
  // The i-th result must equal a serial re-run of trial i alone.
  const auto g = graph::complete(64);
  sim::TrialConfig config;
  config.trials = 32;
  config.seed = 77;
  config.threads = 8;
  const auto parallel = sim::run_trials(config, [&](std::uint64_t, rng::Engine& eng) {
    return core::run_async(g, 0, eng).time;
  });
  for (std::uint64_t i : {0ull, 7ull, 31ull}) {
    auto eng = rng::derive_stream(77, i);
    EXPECT_EQ(parallel[i], core::run_async(g, 0, eng).time) << "trial " << i;
  }
}

TEST(Determinism, MeasureSyncStableAcrossThreadCounts) {
  // The one-call measurement wrappers inherit the contract.
  const auto g = graph::star(128);
  sim::TrialConfig c1;
  c1.trials = 50;
  c1.seed = 5;
  c1.threads = 1;
  sim::TrialConfig c8 = c1;
  c8.threads = 8;
  const auto s1 = sim::measure_sync(g, 1, core::Mode::kPushPull, c1);
  const auto s8 = sim::measure_sync(g, 1, core::Mode::kPushPull, c8);
  EXPECT_EQ(s1.samples(), s8.samples());
}
