// Tests for the auxiliary processes ppx (Definition 5) and ppy (Definition 7)
// and the domination chain of the paper's upper-bound proof:
//   Lemma 6   T(ppx) preceq T(pp)
//   Lemma 9   T_d(ppy) = O(T_d(ppx) + log(n/d))
//   Lemma 10  T_d(pp-a) = O(T_d(ppy) + log(n/d))
#include <gtest/gtest.h>

#include <cmath>

#include "core/aux_process.hpp"
#include "core/sync.hpp"
#include "dist/distributions.hpp"
#include "graph/generators.hpp"
#include "rng/rng.hpp"
#include "sim/harness.hpp"

using namespace rumor;
using core::AuxKind;

namespace {

sim::SpreadingTimeSample measure(const graph::Graph& g, AuxKind kind, std::uint64_t seed,
                                 std::uint64_t trials = 300) {
  sim::TrialConfig config;
  config.trials = trials;
  config.seed = seed;
  return sim::measure_aux(g, 0, kind, config);
}

}  // namespace

TEST(AuxEngine, CompletesOnCanonicalGraphs) {
  auto eng = rng::derive_stream(4040, 0);
  for (const auto& g : {graph::complete(32), graph::star(32), graph::cycle(32),
                        graph::hypercube(5)}) {
    for (AuxKind kind : {AuxKind::kPpx, AuxKind::kPpy}) {
      const auto r = core::run_aux(g, 0, eng, {.kind = kind});
      EXPECT_TRUE(r.completed) << g.name();
      EXPECT_GT(r.rounds, 0u) << g.name();
    }
  }
}

TEST(AuxEngine, SourceAtRoundZeroAllInformedAtEnd) {
  auto eng = rng::derive_stream(4040, 1);
  const auto g = graph::hypercube(6);
  const auto r = core::run_aux(g, 0, eng, {.kind = AuxKind::kPpx});
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.informed_round[0], 0u);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NE(r.informed_round[v], core::kNeverRound);
  }
}

TEST(AuxEngine, DeterministicGivenSeed) {
  const auto g = graph::torus(6);
  auto a_eng = rng::derive_stream(4040, 2);
  auto b_eng = rng::derive_stream(4040, 2);
  const auto a = core::run_aux(g, 0, a_eng, {.kind = AuxKind::kPpy});
  const auto b = core::run_aux(g, 0, b_eng, {.kind = AuxKind::kPpy});
  EXPECT_EQ(a.informed_round, b.informed_round);
}

TEST(AuxEngine, PpxForcedPullOnStar) {
  // On a star with a leaf source, the hub has 1 >= deg/2... no: the hub has
  // n-1 neighbors, one informed, so k < deg/2 and the pull is probabilistic
  // with p = 1 - e^{-2/(n-1)}. For every *leaf*, once the hub is informed,
  // k = 1 >= deg(leaf)/2 = 0.5, so ppx forces the pull: every leaf is
  // informed exactly one round after the hub. This is ppx's sharpest
  // distinguishing behaviour.
  auto eng = rng::derive_stream(4040, 3);
  const auto g = graph::star(64);
  for (int i = 0; i < 30; ++i) {
    const auto r = core::run_aux(g, 1, eng, {.kind = AuxKind::kPpx});
    ASSERT_TRUE(r.completed);
    const auto hub_round = r.informed_round[0];
    for (graph::NodeId leaf = 1; leaf < 64; ++leaf) {
      if (leaf == 1) continue;
      EXPECT_LE(r.informed_round[leaf], hub_round + 1) << "leaf " << leaf;
    }
  }
}

TEST(AuxEngine, PpyLeafPullIsGeometricNotForced) {
  // ppy never forces: a leaf with informed hub pulls with p = 1 - e^{-2}
  // each round, so some leaves take > 1 round after the hub. With 63 leaves
  // the probability all pull immediately is (1-e^{-2})^63 ~ 8e-5.
  auto eng = rng::derive_stream(4040, 4);
  const auto g = graph::star(64);
  int slow_leaf_runs = 0;
  for (int i = 0; i < 30; ++i) {
    const auto r = core::run_aux(g, 1, eng, {.kind = AuxKind::kPpy});
    ASSERT_TRUE(r.completed);
    const auto hub_round = r.informed_round[0];
    for (graph::NodeId leaf = 2; leaf < 64; ++leaf) {
      if (r.informed_round[leaf] > hub_round + 1) {
        ++slow_leaf_runs;
        break;
      }
    }
  }
  EXPECT_GT(slow_leaf_runs, 25);
}

// --- Lemma 6: T(ppx) preceq T(pp) ---------------------------------------------

class Lemma6Domination : public ::testing::TestWithParam<int> {};

TEST_P(Lemma6Domination, PpxDominatedBySyncPushPull) {
  graph::Graph g = [&] {
    switch (GetParam()) {
      case 0: return graph::hypercube(6);
      case 1: return graph::complete(64);
      case 2: return graph::star(128);
      case 3: return graph::cycle(48);
      default: return graph::torus(8);
    }
  }();
  sim::TrialConfig config;
  config.trials = 500;
  config.seed = 91;
  const auto ppx = measure(g, AuxKind::kPpx, 91, 500);
  const auto pp = sim::measure_sync(g, 0, core::Mode::kPushPull, config);
  // T(ppx) preceq T(pp): pp's ECDF must never exceed ppx's beyond MC noise.
  const auto check = dist::check_domination(ppx.samples(), pp.samples());
  EXPECT_LE(check.max_violation, 0.09) << g.name() << " at " << check.at;
}

INSTANTIATE_TEST_SUITE_P(Graphs, Lemma6Domination, ::testing::Range(0, 5));

// --- Lemma 9 / Lemma 10 shaped bounds (marginal processes) --------------------

class AuxChainBound : public ::testing::TestWithParam<int> {};

TEST_P(AuxChainBound, PpyWithinAffineBoundOfPpx) {
  graph::Graph g = [&] {
    switch (GetParam()) {
      case 0: return graph::hypercube(6);
      case 1: return graph::complete(64);
      case 2: return graph::star(128);
      default: return graph::torus(8);
    }
  }();
  const auto ppx = measure(g, AuxKind::kPpx, 92);
  const auto ppy = measure(g, AuxKind::kPpy, 93);
  const double n = g.num_nodes();
  // Lemma 9 with the proof's constants: T(ppy) <= 2 T(ppx) + O(log n); we
  // allow constant 8 on the log term.
  EXPECT_LE(ppy.quantile(0.9), 2.0 * ppx.quantile(0.9) + 8.0 * std::log(n)) << g.name();
}

TEST_P(AuxChainBound, AsyncWithinAffineBoundOfPpy) {
  graph::Graph g = [&] {
    switch (GetParam()) {
      case 0: return graph::hypercube(6);
      case 1: return graph::complete(64);
      case 2: return graph::star(128);
      default: return graph::torus(8);
    }
  }();
  sim::TrialConfig config;
  config.trials = 300;
  config.seed = 94;
  const auto ppy = measure(g, AuxKind::kPpy, 94);
  const auto ppa = sim::measure_async(g, 0, core::Mode::kPushPull, config);
  const double n = g.num_nodes();
  // Lemma 10: T(pp-a) <= 4 T(ppy) + O(log n).
  EXPECT_LE(ppa.quantile(0.9), 4.0 * ppy.quantile(0.9) + 8.0 * std::log(n)) << g.name();
}

INSTANTIATE_TEST_SUITE_P(Graphs, AuxChainBound, ::testing::Range(0, 4));

// --- Theorem 4 end-to-end shape ------------------------------------------------

class Theorem4Shape : public ::testing::TestWithParam<int> {};

TEST_P(Theorem4Shape, AsyncWithinConstantTimesSyncPlusLog) {
  graph::Graph g = [&] {
    switch (GetParam()) {
      case 0: return graph::hypercube(7);
      case 1: return graph::complete(128);
      case 2: return graph::star(256);
      case 3: return graph::cycle(64);
      case 4: return graph::complete_binary_tree(127);
      default: return graph::torus(10);
    }
  }();
  sim::TrialConfig config;
  config.trials = 400;
  config.seed = 95;
  const auto sync = sim::measure_sync(g, 0, core::Mode::kPushPull, config);
  const auto async = sim::measure_async(g, 0, core::Mode::kPushPull, config);
  const double n = g.num_nodes();
  // Empirical Theorem 1 at the 99th percentile with constant 16 — loose
  // enough to be robust, tight enough to catch a broken engine (the star
  // would fail a pure multiplicative bound).
  EXPECT_LE(async.quantile(0.99), 16.0 * (sync.quantile(0.99) + std::log(n))) << g.name();
}

INSTANTIATE_TEST_SUITE_P(Graphs, Theorem4Shape, ::testing::Range(0, 6));
