// Tests for rumor::dist — analytic distribution correctness (pdf/cdf/moments
// vs samples), ECDF/KS machinery, and property tests for the paper's
// probability lemmas:
//   Lemma 8   conditioned minimum of shifted exponentials is Exp(k*lambda)
//   Lemma 15  adaptively dominated geometric sums are NegBin-dominated
//   (proof of Lemma 10)  Erl(k, lambda) preceq NegBin(k, 1 - e^{-lambda})
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "dist/distributions.hpp"
#include "rng/rng.hpp"

namespace dist = rumor::dist;
namespace rng = rumor::rng;

namespace {

std::vector<double> sample_many(auto& distribution, std::uint64_t seed, int count) {
  auto eng = rng::derive_stream(seed, 0);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(static_cast<double>(distribution.sample(eng)));
  return out;
}

}  // namespace

// --- Exponential -------------------------------------------------------------

TEST(Exponential, CdfBasics) {
  const dist::Exponential d(2.0);
  EXPECT_DOUBLE_EQ(d.cdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(0.0), 0.0);
  EXPECT_NEAR(d.cdf(0.5), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(d.cdf(100.0), 1.0, 1e-12);
}

TEST(Exponential, QuantileInvertsCdf) {
  const dist::Exponential d(0.7);
  for (double q : {0.01, 0.25, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(d.cdf(d.quantile(q)), q, 1e-12);
  }
}

TEST(Exponential, MomentsMatchSamples) {
  const dist::Exponential d(3.0);
  const auto samples = sample_many(d, 100, 100000);
  double sum = 0.0;
  for (double x : samples) sum += x;
  EXPECT_NEAR(sum / static_cast<double>(samples.size()), d.mean(), 0.01);
}

TEST(Exponential, SamplesPassKsAgainstAnalyticCdf) {
  const dist::Exponential d(1.5);
  const auto samples = sample_many(d, 101, 20000);
  const dist::Ecdf ecdf(samples);
  // KS critical value at alpha=0.001 is ~1.95/sqrt(n) ~ 0.0138.
  EXPECT_LT(dist::ks_statistic_analytic(ecdf, d), 0.0138);
}

TEST(Exponential, PdfIntegratesToCdf) {
  const dist::Exponential d(1.0);
  // Trapezoid integral of the pdf over [0, 2] vs cdf(2).
  double integral = 0.0;
  const int steps = 20000;
  const double h = 2.0 / steps;
  for (int i = 0; i < steps; ++i) {
    integral += 0.5 * h * (d.pdf(i * h) + d.pdf((i + 1) * h));
  }
  EXPECT_NEAR(integral, d.cdf(2.0), 1e-6);
}

// --- Geometric ---------------------------------------------------------------

TEST(Geometric, PmfSumsToCdf) {
  const dist::Geometric d(0.3);
  double sum = 0.0;
  for (std::uint64_t k = 1; k <= 20; ++k) {
    sum += d.pmf(k);
    EXPECT_NEAR(sum, d.cdf(k), 1e-12) << "k=" << k;
  }
}

TEST(Geometric, SupportStartsAtOne) {
  const dist::Geometric d(0.4);
  EXPECT_DOUBLE_EQ(d.pmf(0), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(0), 0.0);
  EXPECT_NEAR(d.pmf(1), 0.4, 1e-12);
}

TEST(Geometric, MeanAndVarianceMatchSamples) {
  const dist::Geometric d(0.25);
  const auto samples = sample_many(d, 102, 100000);
  double sum = 0.0;
  double sumsq = 0.0;
  for (double x : samples) {
    sum += x;
    sumsq += x * x;
  }
  const double m = sum / static_cast<double>(samples.size());
  EXPECT_NEAR(m, d.mean(), 0.05);
  EXPECT_NEAR(sumsq / static_cast<double>(samples.size()) - m * m, d.variance(), 0.5);
}

// --- NegativeBinomial ----------------------------------------------------------

TEST(NegativeBinomial, SupportStartsAtK) {
  const dist::NegativeBinomial d(4, 0.5);
  EXPECT_DOUBLE_EQ(d.pmf(3), 0.0);
  EXPECT_GT(d.pmf(4), 0.0);
  EXPECT_NEAR(d.pmf(4), std::pow(0.5, 4), 1e-12);
}

TEST(NegativeBinomial, PmfMatchesGeometricForKOne) {
  const dist::NegativeBinomial nb(1, 0.3);
  const dist::Geometric geo(0.3);
  for (std::uint64_t n = 1; n <= 15; ++n) {
    EXPECT_NEAR(nb.pmf(n), geo.pmf(n), 1e-12);
  }
}

TEST(NegativeBinomial, CdfApproachesOne) {
  const dist::NegativeBinomial d(3, 0.4);
  EXPECT_NEAR(d.cdf(100), 1.0, 1e-9);
}

TEST(NegativeBinomial, MeanMatchesSamples) {
  const dist::NegativeBinomial d(5, 0.35);
  const auto samples = sample_many(d, 103, 50000);
  double sum = 0.0;
  for (double x : samples) sum += x;
  EXPECT_NEAR(sum / static_cast<double>(samples.size()), d.mean(), 0.1);
}

// --- Erlang --------------------------------------------------------------------

TEST(Erlang, CdfMatchesExponentialForKOne) {
  const dist::Erlang erl(1, 2.0);
  const dist::Exponential exp_d(2.0);
  for (double x : {0.1, 0.5, 1.0, 3.0}) {
    EXPECT_NEAR(erl.cdf(x), exp_d.cdf(x), 1e-10);
  }
}

TEST(Erlang, CdfIsMonotone) {
  const dist::Erlang d(4, 1.0);
  double prev = 0.0;
  for (double x = 0.0; x <= 20.0; x += 0.25) {
    const double c = d.cdf(x);
    EXPECT_GE(c, prev);
    EXPECT_LE(c, 1.0 + 1e-12);
    prev = c;
  }
}

TEST(Erlang, MeanMatchesSamples) {
  const dist::Erlang d(7, 2.5);
  const auto samples = sample_many(d, 104, 50000);
  double sum = 0.0;
  for (double x : samples) sum += x;
  EXPECT_NEAR(sum / static_cast<double>(samples.size()), d.mean(), 0.03);
}

TEST(Erlang, SamplesPassKsAgainstAnalyticCdf) {
  const dist::Erlang d(3, 1.0);
  const auto samples = sample_many(d, 105, 20000);
  const dist::Ecdf ecdf(samples);
  EXPECT_LT(dist::ks_statistic_analytic(ecdf, d), 0.0138);
}

TEST(Erlang, LargeKIsStable) {
  // Regularized gamma must not overflow for k = 500.
  const dist::Erlang d(500, 1.0);
  EXPECT_NEAR(d.cdf(500.0), 0.5, 0.05);  // CLT: median ~ mean
  EXPECT_NEAR(d.cdf(10000.0), 1.0, 1e-9);
  EXPECT_NEAR(d.cdf(1.0), 0.0, 1e-9);
}

// --- Ecdf / KS ------------------------------------------------------------------

TEST(Ecdf, StepFunctionValues) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const dist::Ecdf f(xs);
  EXPECT_DOUBLE_EQ(f(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f(1.0), 0.25);
  EXPECT_DOUBLE_EQ(f(2.5), 0.5);
  EXPECT_DOUBLE_EQ(f(4.0), 1.0);
  EXPECT_DOUBLE_EQ(f(9.0), 1.0);
}

TEST(KsStatistic, IdenticalSamplesGiveZero) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(dist::ks_statistic(dist::Ecdf(xs), dist::Ecdf(xs)), 0.0);
}

TEST(KsStatistic, DisjointSamplesGiveOne) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{10.0, 20.0};
  EXPECT_DOUBLE_EQ(dist::ks_statistic(dist::Ecdf(a), dist::Ecdf(b)), 1.0);
}

TEST(KsStatistic, SameDistributionIsSmall) {
  auto eng = rng::derive_stream(106, 0);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 20000; ++i) {
    a.push_back(rng::exponential(eng, 1.0));
    b.push_back(rng::exponential(eng, 1.0));
  }
  EXPECT_LT(dist::ks_statistic(dist::Ecdf(a), dist::Ecdf(b)), 0.02);
}

// Hand-countable exact case: a = {1,2}, b = {3,4} gives D = 1. Under the
// null, all C(4,2) = 6 interleavings of ranks are equally likely and
// exactly two of them (aabb and bbaa) ever drive |F_a - F_b| to 1, so
// P(D >= 1) = 2/6 = 1/3.
TEST(KsTwoSample, TinyExactCaseMatchesHandCount) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{3.0, 4.0};
  const auto test = dist::ks_two_sample_test(a, b);
  EXPECT_TRUE(test.exact);
  EXPECT_DOUBLE_EQ(test.statistic, 1.0);
  EXPECT_NEAR(test.p_value, 1.0 / 3.0, 1e-12);
}

TEST(KsTwoSample, IdenticalSamplesGivePOne) {
  const std::vector<double> xs{1.0, 2.0, 5.0, 9.0};
  const auto test = dist::ks_two_sample_test(xs, xs);
  EXPECT_DOUBLE_EQ(test.statistic, 0.0);
  EXPECT_DOUBLE_EQ(test.p_value, 1.0);
}

TEST(KsTwoSample, SameLawPassesGate) {
  auto eng = rng::derive_stream(112, 0);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 1500; ++i) {
    a.push_back(rng::exponential(eng, 1.0));
    b.push_back(rng::exponential(eng, 1.0));
  }
  const auto test = dist::ks_two_sample_test(a, b);
  EXPECT_TRUE(test.exact);
  EXPECT_GE(test.p_value, 1e-3);
  EXPECT_TRUE(dist::ks_gate(a, b));
}

TEST(KsTwoSample, DifferentLawsAreRejected) {
  // Exp(1) vs Exp(1.5) at n = 2000 per side: the sup CDF gap is ~0.11,
  // far above the ~0.06 detection threshold at this size.
  auto eng = rng::derive_stream(112, 1);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(rng::exponential(eng, 1.0));
    b.push_back(rng::exponential(eng, 1.5));
  }
  const auto test = dist::ks_two_sample_test(a, b);
  EXPECT_LT(test.p_value, 1e-3);
  EXPECT_FALSE(dist::ks_gate(a, b));
}

TEST(KsTwoSample, ExactAgreesWithKolmogorovLimit) {
  // n = m = 1500 sits under the exact cutoff. Recompute the asymptotic
  // p-value from the same statistic with the textbook series
  // 2 sum (-1)^{k-1} exp(-2 k^2 z^2), z = D sqrt(nm/(n+m)); at this size
  // the limit is good to a couple of percent across the moderate-p range,
  // so a close match validates both code paths at once.
  auto eng = rng::derive_stream(112, 2);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 1500; ++i) {
    a.push_back(rng::exponential(eng, 1.0));
    b.push_back(rng::exponential(eng, 1.0));
  }
  const auto test = dist::ks_two_sample_test(a, b);
  ASSERT_TRUE(test.exact);
  const double z = test.statistic * std::sqrt(1500.0 * 1500.0 / 3000.0);
  double p_asym = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    p_asym += sign * 2.0 * std::exp(-2.0 * k * k * z * z);
    sign = -sign;
  }
  EXPECT_NEAR(test.p_value, p_asym, 0.05);
}

TEST(DominationCheck, DetectsTrueDomination) {
  auto eng = rng::derive_stream(107, 0);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 20000; ++i) {
    const double e = rng::exponential(eng, 1.0);
    x.push_back(e);
    y.push_back(e + rng::exponential(eng, 2.0));  // Y = X + extra => X preceq Y
  }
  const auto check = dist::check_domination(x, y);
  EXPECT_LE(check.max_violation, 0.02);
}

TEST(DominationCheck, DetectsViolation) {
  // X ~ Exp(1), Y ~ Exp(2): Y is stochastically SMALLER, so X preceq Y fails.
  auto eng = rng::derive_stream(107, 1);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 20000; ++i) {
    x.push_back(rng::exponential(eng, 1.0));
    y.push_back(rng::exponential(eng, 2.0));
  }
  const auto check = dist::check_domination(x, y);
  EXPECT_GT(check.max_violation, 0.15);  // true sup gap is 0.25 at x = ln 2
}

// --- Paper lemmas ---------------------------------------------------------------

// Lemma 8: Z_1..Z_k i.i.d. Exp(lambda); J = argmin Z_i; alpha_i >= 0
// integers; A the event {forall i: Z_i > alpha_i}. Then conditioned on
// {J = j} and A, Z = min_i (Z_i - alpha_i) ~ Exp(k*lambda).
TEST(Lemma8, ConditionedMinimumIsExponential) {
  constexpr int kVars = 4;
  const double lambda = 0.8;
  const std::array<double, kVars> alpha{0.0, 1.0, 2.0, 1.0};
  constexpr int kTarget = 2;  // condition on J = 2 (an arbitrary fixed index)

  auto eng = rng::derive_stream(108, 0);
  std::vector<double> accepted;
  while (accepted.size() < 20000) {
    std::array<double, kVars> z{};
    for (auto& zi : z) zi = rng::exponential(eng, lambda);
    // Event A: all Z_i > alpha_i.
    bool a_holds = true;
    for (int i = 0; i < kVars; ++i) {
      if (z[static_cast<std::size_t>(i)] <= alpha[static_cast<std::size_t>(i)]) a_holds = false;
    }
    if (!a_holds) continue;
    const int j = static_cast<int>(
        std::min_element(z.begin(), z.end()) - z.begin());
    if (j != kTarget) continue;
    double zmin = z[0] - alpha[0];
    for (int i = 1; i < kVars; ++i) {
      zmin = std::min(zmin, z[static_cast<std::size_t>(i)] - alpha[static_cast<std::size_t>(i)]);
    }
    accepted.push_back(zmin);
  }
  const dist::Exponential expected(kVars * lambda);
  const dist::Ecdf ecdf(accepted);
  EXPECT_LT(dist::ks_statistic_analytic(ecdf, expected), 0.0138);
}

// Lemma 8 corollary used in the proof: the expectation of the conditioned
// minimum is 1/(k*lambda).
TEST(Lemma8, ConditionedMinimumMean) {
  constexpr int kVars = 3;
  const double lambda = 1.0;
  const std::array<double, kVars> alpha{1.0, 0.0, 2.0};
  auto eng = rng::derive_stream(108, 1);
  double sum = 0.0;
  int count = 0;
  while (count < 30000) {
    std::array<double, kVars> z{};
    for (auto& zi : z) zi = rng::exponential(eng, lambda);
    bool a_holds = true;
    for (int i = 0; i < kVars; ++i) {
      if (z[static_cast<std::size_t>(i)] <= alpha[static_cast<std::size_t>(i)]) a_holds = false;
    }
    if (!a_holds) continue;
    double zmin = z[0] - alpha[0];
    for (int i = 1; i < kVars; ++i) {
      zmin = std::min(zmin, z[static_cast<std::size_t>(i)] - alpha[static_cast<std::size_t>(i)]);
    }
    sum += zmin;
    ++count;
  }
  EXPECT_NEAR(sum / count, 1.0 / (kVars * lambda), 0.01);
}

// Lemma 15: if Pr[Z_i <= j | Z_1..Z_{i-1}] >= 1 - q^j for all i, j, then
// sum Z_i preceq NegBin(k, 1 - q). We build adversarially *dependent* Z_i
// (each Z_i's distribution is shifted by the parity of Z_{i-1} while still
// satisfying the hypothesis) and check empirical domination.
TEST(Lemma15, AdaptiveGeometricSumIsNegBinDominated) {
  const double q = 1.0 / std::exp(1.0);  // the value used in Lemma 9's proof
  constexpr int kTerms = 6;
  constexpr int kSamples = 30000;

  auto eng = rng::derive_stream(109, 0);
  std::vector<double> sums;
  sums.reserve(kSamples);
  for (int s = 0; s < kSamples; ++s) {
    std::uint64_t total = 0;
    std::uint64_t prev = 0;
    for (int i = 0; i < kTerms; ++i) {
      // With the hypothesis Pr[Z <= j] >= 1 - q^j: Geom(1-q) satisfies it
      // with equality; conditionally mixing in a strictly smaller variable
      // (here: forcing Z = 0 when the previous term was even) keeps it.
      std::uint64_t z;
      if (prev % 2 == 0 && i > 0) {
        z = 0;
      } else {
        z = rng::geometric(eng, 1.0 - q);
      }
      total += z;
      prev = z;
    }
    sums.push_back(static_cast<double>(total));
  }

  const dist::NegativeBinomial bound(kTerms, 1.0 - q);
  std::vector<double> negbin_samples;
  negbin_samples.reserve(kSamples);
  auto eng2 = rng::derive_stream(109, 1);
  for (int s = 0; s < kSamples; ++s) {
    negbin_samples.push_back(static_cast<double>(bound.sample(eng2)));
  }
  const auto check = dist::check_domination(sums, negbin_samples);
  EXPECT_LE(check.max_violation, 0.02);
}

// Used in Lemma 10's proof: Erl(k, lambda) preceq NegBin(k, 1 - e^{-lambda}).
TEST(Lemma10Ingredient, ErlangDominatedByNegBin) {
  const std::uint64_t k = 5;
  const double lambda = 1.0;
  const dist::Erlang erl(k, lambda);
  const dist::NegativeBinomial nb(k, -std::expm1(-lambda));

  auto eng = rng::derive_stream(110, 0);
  std::vector<double> erl_samples;
  std::vector<double> nb_samples;
  for (int i = 0; i < 30000; ++i) {
    erl_samples.push_back(erl.sample(eng));
    nb_samples.push_back(static_cast<double>(nb.sample(eng)));
  }
  const auto check = dist::check_domination(erl_samples, nb_samples);
  EXPECT_LE(check.max_violation, 0.02);
}

// Geom(p) analytic CDF vs the sampler (ties the two modules together).
TEST(CrossCheck, GeometricSamplerMatchesAnalyticCdf) {
  const double p = 0.42;
  const dist::Geometric d(p);
  auto eng = rng::derive_stream(111, 0);
  constexpr int kSamples = 50000;
  std::vector<int> counts(30, 0);
  for (int i = 0; i < kSamples; ++i) {
    const auto v = rng::geometric(eng, p);
    if (v < counts.size()) ++counts[static_cast<std::size_t>(v)];
  }
  double cumulative = 0.0;
  for (std::uint64_t k = 1; k < 10; ++k) {
    cumulative += static_cast<double>(counts[static_cast<std::size_t>(k)]) / kSamples;
    EXPECT_NEAR(cumulative, d.cdf(k), 0.01) << "k=" << k;
  }
}
