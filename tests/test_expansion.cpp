// Tests for rumor::graph expansion parameters — exact conductance / vertex
// expansion on graphs with known values, the spectral sweep against the
// exact answer (Cheeger sandwich), and spectral gaps of known families.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/expansion.hpp"
#include "graph/generators.hpp"
#include "rng/rng.hpp"

namespace graph = rumor::graph;
namespace rng = rumor::rng;

TEST(ConductanceExact, CompleteGraph) {
  // K_n: the worst cut is the balanced one; for K_6, S of size 3 gives
  // cut = 9, vol(S) = 15, phi = 9/15 = 0.6.
  EXPECT_NEAR(graph::conductance_exact(graph::complete(6)), 0.6, 1e-12);
}

TEST(ConductanceExact, CycleIsTwoOverN) {
  // C_n: best cut is an arc of n/2 vertices: cut = 2, vol = n, phi = 2/n.
  EXPECT_NEAR(graph::conductance_exact(graph::cycle(12)), 2.0 / 12.0, 1e-12);
  EXPECT_NEAR(graph::conductance_exact(graph::cycle(16)), 2.0 / 16.0, 1e-12);
}

TEST(ConductanceExact, PathIsOneOverFloorVol) {
  // P_n: cutting the middle edge gives cut 1, vol n-1 per side; phi ~ 1/(n-1).
  const auto g = graph::path(10);
  EXPECT_NEAR(graph::conductance_exact(g), 1.0 / 9.0, 1e-12);
}

TEST(ConductanceExact, StarIsLeafCut) {
  // Star S_n: min(vol) side is any leaf set; a single leaf has cut 1 /
  // vol 1 = 1... the balanced cut: S = (n-1)/2 leaves: cut = |S|, vol = |S|.
  // So phi = 1 for every cut that avoids the hub; cuts containing the hub
  // have vol >= n-1 >= other side. phi(star) = 1 when the smaller side is
  // all leaves... For n=8: S = 3 leaves + hub? vol(S) = 3 + 7 = 10 > 7.
  // Actual minimum: any S of leaves only: cut=|S|=vol(S) -> 1. phi = 1.
  EXPECT_NEAR(graph::conductance_exact(graph::star(8)), 1.0, 1e-12);
}

TEST(ConductanceSweep, UpperBoundsAndFindsCycleCut) {
  // The sweep returns a real cut's conductance, so it upper-bounds the
  // exact value; on the cycle the spectral order recovers the optimal arc.
  const auto g = graph::cycle(16);
  const double exact = graph::conductance_exact(g);
  const double sweep = graph::conductance_sweep(g);
  EXPECT_GE(sweep, exact - 1e-12);
  EXPECT_NEAR(sweep, exact, 1e-9);
}

TEST(ConductanceSweep, NearExactOnBarbell) {
  // Barbell: the bottleneck is the path between the cliques; the sweep must
  // find a cut within a small factor of exact.
  const auto g = graph::barbell(8, 2);  // n = 18
  const double exact = graph::conductance_exact(g);
  const double sweep = graph::conductance_sweep(g);
  EXPECT_GE(sweep, exact - 1e-12);
  EXPECT_LE(sweep, 3.0 * exact);
}

TEST(ConductanceSweep, ScalesToLargerGraphs) {
  auto eng = rng::derive_stream(61, 0);
  const auto g = graph::random_regular(512, 6, eng);
  const double phi = graph::conductance_sweep(g);
  // Random regular graphs are expanders: phi = Theta(1), well above 0.05.
  EXPECT_GT(phi, 0.05);
  EXPECT_LE(phi, 1.0);
}

TEST(VertexExpansionExact, CompleteGraph) {
  // K_n: any S with |S| <= n/2 has N(S)\S = V\S, so alpha = min (n-|S|)/|S|
  // = (n - n/2)/(n/2) = 1 for even n.
  EXPECT_NEAR(graph::vertex_expansion_exact(graph::complete(8)), 1.0, 1e-12);
}

TEST(VertexExpansionExact, CycleIsTwoOverHalf) {
  // C_n: a contiguous arc of n/2 has boundary 2: alpha = 2/(n/2) = 4/n.
  EXPECT_NEAR(graph::vertex_expansion_exact(graph::cycle(12)), 2.0 / 6.0, 1e-12);
}

TEST(VertexExpansionExact, PathEndpointHeavy) {
  // P_4 {0,1,2,3}: S = {0,1} has boundary {2}: alpha = 1/2.
  EXPECT_NEAR(graph::vertex_expansion_exact(graph::path(4)), 0.5, 1e-12);
}

TEST(SpectralGap, CompleteGraphIsHalfNOverNMinusOne) {
  // Lazy walk on K_n: lambda_2 = (1 - 1/(n-1))/2 + 1/2 - ... the lazy walk
  // W = (I + A/(n-1))/2 has second eigenvalue (1 - 1/(n-1))/2.
  const double gap = graph::spectral_gap(graph::complete(10));
  const double expected = 1.0 - 0.5 * (1.0 - 1.0 / 9.0);
  EXPECT_NEAR(gap, expected, 1e-6);
}

TEST(SpectralGap, CycleMatchesCosine) {
  // C_n lazy walk: lambda_2 = (1 + cos(2 pi / n)) / 2.
  const int n = 16;
  const double gap = graph::spectral_gap(graph::cycle(n));
  const double expected = 1.0 - 0.5 * (1.0 + std::cos(2.0 * M_PI / n));
  EXPECT_NEAR(gap, expected, 1e-6);
}

TEST(SpectralGap, ExpanderBeatsCycle) {
  auto eng = rng::derive_stream(62, 0);
  const auto expander = graph::random_regular(128, 6, eng);
  const double expander_gap = graph::spectral_gap(expander);
  const double cycle_gap = graph::spectral_gap(graph::cycle(128));
  EXPECT_GT(expander_gap, 20.0 * cycle_gap);
}

TEST(SpectralGap, CheegerSandwich) {
  // gap/2 <= phi and phi^2/2 <= gap (lazy-walk Cheeger, within slack).
  for (const auto& g : {graph::cycle(14), graph::complete(10), graph::barbell(6, 2)}) {
    const double gap = graph::spectral_gap(g);
    const double phi = graph::conductance_exact(g);
    EXPECT_LE(gap / 2.0, phi + 1e-9) << g.name();
    EXPECT_LE(phi * phi / 2.0, gap + 1e-9) << g.name();
  }
}

TEST(SpectralOrder, SeparatesBarbellSides) {
  // The Fiedler order must put one clique before the other.
  const auto g = graph::barbell(6, 0);  // two 6-cliques joined by an edge
  const auto order = graph::spectral_order(g);
  // Count clique-0 nodes among the first six positions: a correct Fiedler
  // ordering puts one whole clique first, so this is 0 or 6.
  int clique0_in_front = 0;
  for (std::size_t pos = 0; pos < 6; ++pos) {
    if (order[pos] < 6) ++clique0_in_front;
  }
  EXPECT_TRUE(clique0_in_front == 0 || clique0_in_front == 6) << clique0_in_front;
}
