// Tests for the packed, memory-mapped graph store (graph/graph_store.hpp)
// and the edge-list reader's edge paths (graph/io.hpp): pack -> map ->
// adjacency equality across every generator family, the offset-width rule,
// checksum stability, error messages that name the offending path and
// byte/line, compact-id relabelling, and malformed-input rejection.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/sync.hpp"
#include "dynamics/churn.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/graph_store.hpp"
#include "graph/io.hpp"
#include "rng/rng.hpp"

namespace graph = rumor::graph;
namespace core = rumor::core;
namespace dynamics = rumor::dynamics;
namespace rng = rumor::rng;
using graph::Graph;
using graph::NodeId;

namespace {

/// A unique temp path for one test; removed by the fixture-less helper's
/// destructor so failures don't litter.
struct TempStore {
  std::string path;
  explicit TempStore(const std::string& tag)
      : path((std::filesystem::temp_directory_path() /
              ("rumor_test_store_" + tag + ".rgs"))
                 .string()) {
    std::remove(path.c_str());
  }
  ~TempStore() { std::remove(path.c_str()); }
};

void expect_graphs_identical(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.name(), b.name());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    ASSERT_EQ(a.degree(v), b.degree(v)) << "degree mismatch at " << v;
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()))
        << "neighbor mismatch at " << v;
  }
}

std::vector<Graph> generator_zoo() {
  rng::Engine eng = rng::derive_stream(901, 0);
  std::vector<Graph> zoo;
  zoo.push_back(graph::complete(16));
  zoo.push_back(graph::star(33));
  zoo.push_back(graph::double_star(20));
  zoo.push_back(graph::path(25));
  zoo.push_back(graph::cycle(24));
  zoo.push_back(graph::wheel(17));
  zoo.push_back(graph::complete_binary_tree(31));
  zoo.push_back(graph::complete_bipartite(7, 9));
  zoo.push_back(graph::torus(6));
  zoo.push_back(graph::torus3d(3));
  zoo.push_back(graph::hypercube(6));
  zoo.push_back(graph::random_regular(60, 4, eng));
  zoo.push_back(graph::largest_component(graph::erdos_renyi(80, 0.1, eng)));
  zoo.push_back(graph::largest_component(graph::chung_lu(100, {}, eng)));
  zoo.push_back(graph::preferential_attachment(70, 3, eng));
  zoo.push_back(graph::largest_component(graph::watts_strogatz(64, 4, 0.1, eng)));
  return zoo;
}

// --- Store round-trip --------------------------------------------------------

TEST(GraphStore, PackOpenAdjacencyEqualAcrossFamilies) {
  const std::vector<Graph> zoo = generator_zoo();
  for (std::size_t i = 0; i < zoo.size(); ++i) {
    const Graph& g = zoo[i];
    TempStore store("zoo" + std::to_string(i));
    graph::write_graph_store(g, store.path);
    const Graph mapped = graph::open_graph_store(store.path);
    EXPECT_TRUE(mapped.is_mapped());
    EXPECT_FALSE(g.is_mapped());
    expect_graphs_identical(g, mapped);
  }
}

TEST(GraphStore, MappedGraphSamplesIdenticalNeighbors) {
  // random_neighbor consumes the engine identically on both backends —
  // the root of the file-vs-RAM bit-determinism contract.
  const Graph g = graph::hypercube(8);
  TempStore store("sample");
  graph::write_graph_store(g, store.path);
  const Graph mapped = graph::open_graph_store(store.path);
  rng::Engine ea = rng::derive_stream(7, 0);
  rng::Engine eb = rng::derive_stream(7, 0);
  for (int i = 0; i < 2000; ++i) {
    const NodeId v = static_cast<NodeId>(i) % g.num_nodes();
    EXPECT_EQ(g.random_neighbor(v, ea), mapped.random_neighbor(v, eb));
  }
}

TEST(GraphStore, MappedGraphRunsEnginesBitIdentically) {
  rng::Engine gen = rng::derive_stream(31, 0);
  const Graph g = graph::random_regular(128, 6, gen);
  TempStore store("engines");
  graph::write_graph_store(g, store.path);
  const Graph mapped = graph::open_graph_store(store.path);
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    rng::Engine ea = rng::derive_stream(99, trial);
    rng::Engine eb = rng::derive_stream(99, trial);
    const auto ra = core::run_sync(g, 0, ea);
    const auto rb = core::run_sync(mapped, 0, eb);
    EXPECT_EQ(ra.rounds, rb.rounds);
    EXPECT_EQ(ra.completed, rb.completed);
    EXPECT_EQ(ra.informed_round, rb.informed_round);
  }
}

TEST(GraphStore, DynamicsOverlayAgreesOnMappedGraphs) {
  // Churn overlays consume the graph through the same public adjacency
  // interface; their evolved edge sets must match across backends.
  rng::Engine gen = rng::derive_stream(77, 0);
  const Graph g = graph::largest_component(graph::erdos_renyi(60, 0.15, gen));
  TempStore store("dyn");
  graph::write_graph_store(g, store.path);
  const Graph mapped = graph::open_graph_store(store.path);

  dynamics::DynamicsSpec spec;
  spec.churn.model = dynamics::ChurnModel::kMarkov;
  spec.churn.birth = 0.1;
  spec.churn.death = 0.1;
  spec.seed = 5;
  const auto edges_a = dynamics::base_edge_list(g);
  const auto edges_b = dynamics::base_edge_list(mapped);
  dynamics::DynamicGraphView va(g, spec, nullptr, /*stream_seed=*/5, /*trial=*/3, &edges_a);
  dynamics::DynamicGraphView vb(mapped, spec, nullptr, /*stream_seed=*/5, /*trial=*/3, &edges_b);
  for (std::uint64_t round = 1; round <= 8; ++round) {
    va.begin_round(round);
    vb.begin_round(round);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(va.degree(v), vb.degree(v)) << "round " << round << " node " << v;
    }
  }
}

// --- Header / checksum / width ----------------------------------------------

TEST(GraphStore, HeaderInfoMatchesPackedGraph) {
  const Graph g = graph::torus(7);
  TempStore store("hdr");
  graph::write_graph_store(g, store.path, "unit-test");
  const graph::GraphStoreInfo info = graph::read_graph_store_info(store.path);
  EXPECT_EQ(info.version, graph::kGraphStoreVersion);
  EXPECT_FALSE(info.wide_offsets);
  EXPECT_EQ(info.n, g.num_nodes());
  EXPECT_EQ(info.arcs, 2 * g.num_edges());
  EXPECT_EQ(info.num_edges(), g.num_edges());
  EXPECT_EQ(info.name, g.name());
  EXPECT_NE(info.checksum, 0u);
  EXPECT_NE(info.provenance.find("\"source\":\"unit-test\""), std::string::npos);
  // Exact layout: header + (n+1) compact offsets + arcs neighbors + strings.
  const std::uint64_t expect_size = graph::kGraphStoreHeaderBytes + (info.n + 1) * 4 +
                                    info.arcs * 4 + info.name.size() + info.provenance.size();
  EXPECT_EQ(info.file_size, expect_size);
  // The dump names every headline field.
  const std::string dump = graph::graph_store_info_dump(info, store.path);
  EXPECT_NE(dump.find("RUMORCSR v1"), std::string::npos);
  EXPECT_NE(dump.find(g.name()), std::string::npos);
  EXPECT_NE(dump.find("32-bit"), std::string::npos);
}

TEST(GraphStore, ChecksumStableAcrossRepacksAndDistinctAcrossGraphs) {
  const Graph g = graph::hypercube(5);
  TempStore a("cka");
  TempStore b("ckb");
  graph::write_graph_store(g, a.path, "first pack");
  graph::write_graph_store(g, b.path, "second pack, different provenance");
  const auto ia = graph::verify_graph_store(a.path);
  const auto ib = graph::verify_graph_store(b.path);
  // Provenance is excluded from the checksum: same graph => same checksum,
  // which is what lets campaign spec hashes survive repacking.
  EXPECT_EQ(ia.checksum, ib.checksum);

  TempStore c("ckc");
  graph::write_graph_store(graph::hypercube(6), c.path);
  EXPECT_NE(graph::read_graph_store_info(c.path).checksum, ia.checksum);
}

TEST(GraphStore, WideOffsetRuleBoundary) {
  EXPECT_FALSE(graph::graph_store_wide_offsets(0));
  EXPECT_FALSE(graph::graph_store_wide_offsets(0xffffffffULL));
  EXPECT_TRUE(graph::graph_store_wide_offsets(0x100000000ULL));
}

// --- Error paths: every message names the path and a byte offset -------------

TEST(GraphStore, MissingFileErrorNamesPath) {
  const std::string path = "/nonexistent/no_such_store.rgs";
  try {
    (void)graph::open_graph_store(path);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
  }
}

TEST(GraphStore, TruncatedHeaderErrorNamesPathAndOffset) {
  TempStore store("trunc");
  std::ofstream(store.path, std::ios::binary) << "RUMO";
  for (auto open : {+[](const std::string& p) { (void)graph::open_graph_store(p); },
                    +[](const std::string& p) { (void)graph::read_graph_store_info(p); }}) {
    try {
      open(store.path);
      FAIL() << "expected throw";
    } catch (const std::runtime_error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find(store.path), std::string::npos) << msg;
      EXPECT_NE(msg.find("truncated header"), std::string::npos) << msg;
      EXPECT_NE(msg.find("byte"), std::string::npos) << msg;
    }
  }
}

TEST(GraphStore, BadMagicErrorNamesByteZero) {
  TempStore store("magic");
  std::ofstream(store.path, std::ios::binary) << std::string(128, 'x');
  try {
    (void)graph::open_graph_store(store.path);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bad magic at byte 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find(store.path), std::string::npos) << msg;
  }
}

TEST(GraphStore, UnsupportedVersionRejected) {
  TempStore store("ver");
  graph::write_graph_store(graph::cycle(8), store.path);
  {
    std::fstream f(store.path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(8);  // version field
    const std::uint32_t bogus = 99;
    f.write(reinterpret_cast<const char*>(&bogus), sizeof bogus);
  }
  try {
    (void)graph::open_graph_store(store.path);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unsupported format version 99 at byte 8"), std::string::npos) << msg;
  }
}

TEST(GraphStore, SizeMismatchRejected) {
  TempStore store("size");
  graph::write_graph_store(graph::cycle(12), store.path);
  const auto full = std::filesystem::file_size(store.path);
  std::filesystem::resize_file(store.path, full - 5);
  try {
    (void)graph::open_graph_store(store.path);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("declares a layout of"), std::string::npos) << msg;
    EXPECT_NE(msg.find(store.path), std::string::npos) << msg;
  }
}

TEST(GraphStore, VerifyDetectsPayloadCorruption) {
  TempStore store("corrupt");
  graph::write_graph_store(graph::hypercube(4), store.path);
  ASSERT_NO_THROW((void)graph::verify_graph_store(store.path));
  {
    // Flip one payload byte (inside the neighbor array).
    std::fstream f(store.path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(graph::kGraphStoreHeaderBytes + 90);
    char b = 0;
    f.read(&b, 1);
    f.seekp(graph::kGraphStoreHeaderBytes + 90);
    b = static_cast<char>(b ^ 0x40);
    f.write(&b, 1);
  }
  // Opening still succeeds (open validates layout, not payload)...
  EXPECT_NO_THROW((void)graph::open_graph_store(store.path));
  // ...but verification catches it, naming the path.
  try {
    (void)graph::verify_graph_store(store.path);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("checksum mismatch"), std::string::npos) << msg;
    EXPECT_NE(msg.find(store.path), std::string::npos) << msg;
  }
}

// --- Edge-list reader edge paths ---------------------------------------------

TEST(EdgeListIo, CompactIdsRelabelInFirstAppearanceOrder) {
  // Sparse SNAP-style ids, including one far above 2^32.
  std::istringstream in(
      "999999999999 17\n"
      "17 4000000000\n"
      "4000000000 999999999999\n");
  const Graph g = graph::read_edge_list(in, "snap", /*compact_ids=*/true);
  ASSERT_EQ(g.num_nodes(), 3u);  // 999999999999 -> 0, 17 -> 1, 4000000000 -> 2
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
}

TEST(EdgeListIo, InlineCommentsBlankLinesAndExtraColumns) {
  std::istringstream in(
      "# full-line comment\n"
      "0 1 # inline comment\n"
      "\n"
      "   \t  \n"
      "1 2 0.75 extra-weight-column\n");
  const Graph g = graph::read_edge_list(in, "mixed");
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(EdgeListIo, MalformedLinesThrowNamingInputAndLine) {
  const struct {
    const char* text;
    const char* expect;
  } cases[] = {
      {"0 1\nfoo bar\n", "malformed node id 'foo'"},
      {"0 1\n2 x9\n", "malformed node id 'x9'"},
      {"0 1\n2 -3\n", "malformed node id '-3'"},
      {"0 1\n7\n", "expected two node ids"},
      {"0 1\n2 99999999999999999999\n", "out of 64-bit range"},
  };
  for (const auto& c : cases) {
    std::istringstream in(c.text);
    try {
      (void)graph::read_edge_list(in, "edges.txt");
      FAIL() << "expected throw for: " << c.text;
    } catch (const std::runtime_error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("edges.txt"), std::string::npos) << msg;
      EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
      EXPECT_NE(msg.find(c.expect), std::string::npos) << msg;
    }
  }
}

TEST(EdgeListIo, OversizedIdsRejectedWithoutCompaction) {
  // 2^32 - 1 itself is rejected: n = max id + 1 must fit a 32-bit NodeId.
  std::istringstream big(std::string("0 4294967295\n"));
  try {
    (void)graph::read_edge_list(big, "big.txt");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("big.txt"), std::string::npos) << msg;
    EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("compact_ids"), std::string::npos) << msg;
  }
  // The same line is fine with compaction.
  std::istringstream ok(std::string("0 4294967295\n"));
  const Graph g = graph::read_edge_list(ok, "big.txt", /*compact_ids=*/true);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(EdgeListIo, FileErrorsNamePath) {
  try {
    (void)graph::read_edge_list_file("/nonexistent/edges.txt");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/edges.txt"), std::string::npos);
  }
  // Errors inside a real file carry the path too (via the reader's name).
  TempStore bad("badlist");
  std::ofstream(bad.path) << "0 1\nnope\n";
  try {
    (void)graph::read_edge_list_file(bad.path);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(bad.path), std::string::npos) << msg;
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  }
}

TEST(EdgeListIo, WriteReadRoundTripThroughStore) {
  // Full pipeline: generator -> edge list -> read back -> pack -> map.
  rng::Engine eng = rng::derive_stream(5, 0);
  const Graph g = graph::random_regular(40, 4, eng);
  TempStore listing("roundtrip_list");
  graph::write_edge_list_file(g, listing.path);
  const Graph re = graph::read_edge_list_file(listing.path);
  ASSERT_EQ(re.num_nodes(), g.num_nodes());
  ASSERT_EQ(re.num_edges(), g.num_edges());
  TempStore store("roundtrip_store");
  graph::write_graph_store(re, store.path);
  const Graph mapped = graph::open_graph_store(store.path);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto na = g.neighbors(v);
    const auto nb = mapped.neighbors(v);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()));
  }
}

}  // namespace
