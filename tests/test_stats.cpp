// Tests for rumor::stats — Welford moments (including parallel merge),
// quantiles against hand-computed values, bootstrap CI coverage, histogram
// bucketing, and the regression fits used for growth-law estimation.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/rng.hpp"
#include "stats/regression.hpp"
#include "stats/summary.hpp"

namespace stats = rumor::stats;
namespace rng = rumor::rng;

TEST(RunningMoments, EmptyIsZero) {
  stats::RunningMoments m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
  EXPECT_DOUBLE_EQ(m.stderr_mean(), 0.0);
}

TEST(RunningMoments, HandComputedValues) {
  stats::RunningMoments m;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.add(x);
  EXPECT_EQ(m.count(), 8u);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_NEAR(m.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(m.min(), 2.0);
  EXPECT_DOUBLE_EQ(m.max(), 9.0);
}

TEST(RunningMoments, StableForLargeOffset) {
  // Catastrophic cancellation check: tiny variance on a huge mean.
  stats::RunningMoments m;
  for (int i = 0; i < 1000; ++i) m.add(1e9 + (i % 2 == 0 ? 0.5 : -0.5));
  EXPECT_NEAR(m.mean(), 1e9, 1e-3);
  EXPECT_NEAR(m.variance(), 0.25, 0.001);
}

TEST(RunningMoments, MergeMatchesSequential) {
  auto eng = rng::derive_stream(21, 0);
  stats::RunningMoments full;
  stats::RunningMoments a;
  stats::RunningMoments b;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng::exponential(eng, 0.3);
    full.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), full.count());
  EXPECT_NEAR(a.mean(), full.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), full.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), full.min());
  EXPECT_DOUBLE_EQ(a.max(), full.max());
}

TEST(RunningMoments, MergeWithEmpty) {
  stats::RunningMoments a;
  a.add(3.0);
  stats::RunningMoments empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  stats::RunningMoments b;
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(Quantile, Type1Definition) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.25), 10.0);
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.26), 20.0);
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.75), 30.0);
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 1.0), 40.0);
}

TEST(Quantile, UnsortedInput) {
  const std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 1.0), 5.0);
}

TEST(Quantile, SingleElement) {
  const std::vector<double> xs{42.0};
  for (double q : {0.0, 0.5, 1.0}) EXPECT_DOUBLE_EQ(stats::quantile(xs, q), 42.0);
}

TEST(QuantileSorted, AgreesWithQuantile) {
  std::vector<double> xs{1.0, 2.0, 3.0, 5.0, 8.0, 13.0};
  for (double q : {0.0, 0.1, 0.33, 0.5, 0.8, 1.0}) {
    EXPECT_DOUBLE_EQ(stats::quantile_sorted(xs, q), stats::quantile(xs, q)) << q;
  }
}

TEST(SpreadingTimeQuantile, MatchesPaperDefinition) {
  // T_q = min{t : Pr[T <= t] >= 1 - q}: with samples 1..10 and q = 0.2,
  // the 0.8-quantile (type 1) is 8.
  std::vector<double> xs;
  for (int i = 1; i <= 10; ++i) xs.push_back(i);
  EXPECT_DOUBLE_EQ(stats::spreading_time_quantile(xs, 0.2), 8.0);
  EXPECT_DOUBLE_EQ(stats::spreading_time_quantile(xs, 0.1), 9.0);
}

TEST(Bootstrap, MeanCiCoversTruthForNormalData) {
  auto eng = rng::derive_stream(22, 0);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) {
    xs.push_back(rng::exponential(eng, 1.0));  // mean 1
  }
  const auto ci = stats::bootstrap_mean_ci(xs, 0.99, 500, 1);
  EXPECT_LT(ci.lower, 1.0);
  EXPECT_GT(ci.upper, 1.0);
  EXPECT_LT(ci.upper - ci.lower, 0.3);
  EXPECT_NEAR(ci.point, 1.0, 0.1);
}

TEST(Bootstrap, QuantileCiCoversTruth) {
  auto eng = rng::derive_stream(22, 1);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(rng::uniform01(eng));
  const auto ci = stats::bootstrap_quantile_ci(xs, 0.9, 0.99, 500, 2);
  EXPECT_LT(ci.lower, 0.9);
  EXPECT_GT(ci.upper, 0.9);
}

TEST(Histogram, BucketsAndClamping) {
  stats::Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps into bin 0
  h.add(0.5);    // bin 0
  h.add(3.0);    // bin 1
  h.add(9.99);   // bin 4
  h.add(100.0);  // clamps into bin 4
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_low(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_high(1), 4.0);
}

TEST(FitLinear, ExactLine) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{3.0, 5.0, 7.0, 9.0};  // y = 2x + 1
  const auto fit = stats::fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLinear, ConstantY) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{4.0, 4.0, 4.0};
  const auto fit = stats::fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);
}

TEST(FitLinear, NoisyDataRSquaredBelowOne) {
  auto eng = rng::derive_stream(23, 0);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i + 10.0 * (rng::uniform01(eng) - 0.5));
  }
  const auto fit = stats::fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.99);
  EXPECT_LT(fit.r_squared, 1.0);
}

TEST(FitPowerLaw, RecoversExponent) {
  std::vector<double> x;
  std::vector<double> y;
  for (double v : {16.0, 32.0, 64.0, 128.0, 256.0}) {
    x.push_back(v);
    y.push_back(2.5 * std::pow(v, 1.0 / 3.0));  // the Acan gap exponent
  }
  const auto fit = stats::fit_power_law(x, y);
  EXPECT_NEAR(fit.slope, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(std::exp(fit.intercept), 2.5, 1e-9);
}

TEST(FitLogarithmic, RecoversCoefficient) {
  std::vector<double> x;
  std::vector<double> y;
  for (double v : {64.0, 256.0, 1024.0, 4096.0}) {
    x.push_back(v);
    y.push_back(1.7 * std::log(v) + 0.4);  // star-graph async law shape
  }
  const auto fit = stats::fit_logarithmic(x, y);
  EXPECT_NEAR(fit.slope, 1.7, 1e-9);
  EXPECT_NEAR(fit.intercept, 0.4, 1e-9);
}
