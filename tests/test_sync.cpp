// Tests for the synchronous engine — protocol semantics (push/pull/push-pull
// asymmetries on the star), structural invariants (monotone informed set,
// source at round 0, eccentricity lower bound), determinism, and the known
// spreading laws on canonical graphs.
#include <gtest/gtest.h>

#include <cmath>

#include "core/sync.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "rng/rng.hpp"
#include "sim/harness.hpp"

using namespace rumor;
using core::Mode;

namespace {

core::SyncResult run(const graph::Graph& g, graph::NodeId source, Mode mode,
                     std::uint64_t stream) {
  auto eng = rng::derive_stream(2024, stream);
  core::SyncOptions opts;
  opts.mode = mode;
  return core::run_sync(g, source, eng, opts);
}

}  // namespace

TEST(SyncEngine, TwoNodeGraphFinishesInOneRound) {
  const auto g = graph::path(2);
  for (Mode mode : {Mode::kPush, Mode::kPull, Mode::kPushPull}) {
    const auto r = run(g, 0, mode, static_cast<std::uint64_t>(mode));
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.rounds, 1u);
    EXPECT_EQ(r.informed_round[0], 0u);
    EXPECT_EQ(r.informed_round[1], 1u);
  }
}

TEST(SyncEngine, SourceInformedAtRoundZero) {
  const auto g = graph::cycle(20);
  const auto r = run(g, 7, Mode::kPushPull, 0);
  EXPECT_EQ(r.informed_round[7], 0u);
  for (graph::NodeId v = 0; v < 20; ++v) {
    if (v != 7) {
      EXPECT_GT(r.informed_round[v], 0u);
    }
  }
}

TEST(SyncEngine, AllNodesInformedOnCompletion) {
  const auto g = graph::hypercube(6);
  const auto r = run(g, 0, Mode::kPushPull, 1);
  ASSERT_TRUE(r.completed);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NE(r.informed_round[v], core::kNeverRound);
    EXPECT_LE(r.informed_round[v], r.rounds);
  }
}

TEST(SyncEngine, RoundsEqualMaxInformRound) {
  const auto g = graph::torus(8);
  const auto r = run(g, 0, Mode::kPushPull, 2);
  ASSERT_TRUE(r.completed);
  std::uint64_t max_round = 0;
  for (auto round : r.informed_round) max_round = std::max(max_round, round);
  EXPECT_EQ(r.rounds, max_round);
}

TEST(SyncEngine, EccentricityIsALowerBound) {
  // Information travels at most one hop per round.
  const auto g = graph::path(40);
  for (std::uint64_t s = 0; s < 5; ++s) {
    const auto r = run(g, 0, Mode::kPushPull, 10 + s);
    ASSERT_TRUE(r.completed);
    EXPECT_GE(r.rounds, graph::eccentricity(g, 0));
  }
}

TEST(SyncEngine, HistoryIsMonotoneAndStartsAtOne) {
  const auto g = graph::hypercube(7);
  auto eng = rng::derive_stream(2024, 20);
  core::SyncOptions opts;
  opts.record_history = true;
  const auto r = core::run_sync(g, 0, eng, opts);
  ASSERT_TRUE(r.completed);
  ASSERT_FALSE(r.informed_count_history.empty());
  EXPECT_EQ(r.informed_count_history.front(), 1u);
  EXPECT_EQ(r.informed_count_history.back(), g.num_nodes());
  for (std::size_t i = 1; i < r.informed_count_history.size(); ++i) {
    EXPECT_GE(r.informed_count_history[i], r.informed_count_history[i - 1]);
  }
}

TEST(SyncEngine, DeterministicGivenSeed) {
  auto gen_eng = rng::derive_stream(1, 1);
  const auto g = graph::erdos_renyi(300, 0.05, gen_eng);
  const auto a = run(g, 0, Mode::kPushPull, 33);
  const auto b = run(g, 0, Mode::kPushPull, 33);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.informed_round, b.informed_round);
}

TEST(SyncEngine, RespectsRoundCap) {
  const auto g = graph::path(100);
  auto eng = rng::derive_stream(2024, 40);
  core::SyncOptions opts;
  opts.max_ticks = 3;  // far too few for a path
  const auto r = core::run_sync(g, 0, eng, opts);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.rounds, 3u);
}

TEST(SyncEngine, DisconnectedGraphNeverCompletes) {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const auto g = std::move(b).build("disc");
  auto eng = rng::derive_stream(2024, 41);
  core::SyncOptions opts;
  opts.max_ticks = 50;
  const auto r = core::run_sync(g, 0, eng, opts);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.informed_round[2], core::kNeverRound);
  EXPECT_EQ(r.informed_round[3], core::kNeverRound);
  EXPECT_EQ(r.informed_round[1], 1u);  // only neighbor: deterministic round 1
}

// --- The paper's star-graph facts (Section 1) --------------------------------

TEST(SyncStar, PushPullFromLeafTakesAtMostTwoRounds) {
  // Round 1: the leaf source pushes to the hub (its only neighbor) AND the
  // hub cannot miss: every uninformed leaf contacts the hub; the hub gets
  // informed via the source's push. Round 2: every leaf pulls from the hub.
  const auto g = graph::star(64);
  for (std::uint64_t s = 0; s < 50; ++s) {
    const auto r = run(g, 1, Mode::kPushPull, 100 + s);
    ASSERT_TRUE(r.completed);
    EXPECT_LE(r.rounds, 2u);
  }
}

TEST(SyncStar, PushPullFromHubTakesOneRound) {
  const auto g = graph::star(64);
  for (std::uint64_t s = 0; s < 20; ++s) {
    const auto r = run(g, 0, Mode::kPushPull, 200 + s);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.rounds, 1u);
  }
}

TEST(SyncStar, PushOnlyIsCouponCollector) {
  // Push-only from the hub: each round informs one uniformly random leaf,
  // so the time is the coupon collector ~ (n-1) ln(n-1). With n = 33 the
  // mean is ~ 32 * H(32) ~ 130; check the gross scale, not the constant.
  const auto g = graph::star(33);
  sim::TrialConfig config;
  config.trials = 60;
  config.seed = 5;
  const auto sample = sim::measure_sync(g, 0, Mode::kPush, config);
  const double expected = 32.0 * std::log(32.0);
  EXPECT_GT(sample.mean(), 0.5 * expected);
  EXPECT_LT(sample.mean(), 2.0 * expected);
}

TEST(SyncStar, PullOnlyFromHubIsTwoRoundsWorstCaseSmall) {
  // Pull-only from the hub: every leaf pulls from the hub in round 1.
  const auto g = graph::star(16);
  const auto r = run(g, 0, Mode::kPull, 300);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.rounds, 1u);
}

TEST(SyncStar, PullOnlyFromLeafNeedsHubFirst) {
  // From a leaf, pull-only: the hub must pull from the source (probability
  // 1/(n-1) per round), then every leaf pulls in the following round. So
  // T >= 2 always, and the first phase is geometric.
  const auto g = graph::star(8);
  for (std::uint64_t s = 0; s < 30; ++s) {
    const auto r = run(g, 3, Mode::kPull, 400 + s);
    ASSERT_TRUE(r.completed);
    EXPECT_GE(r.rounds, 2u);
  }
}

// --- Known spreading laws -----------------------------------------------------

TEST(SyncLaws, CompleteGraphIsLogarithmic) {
  // Push-pull on K_n completes in ~ log3(n) + O(log log n) rounds; verify
  // the scale at two sizes.
  sim::TrialConfig config;
  config.trials = 60;
  config.seed = 6;
  const auto small = sim::measure_sync(graph::complete(64), 0, Mode::kPushPull, config);
  const auto large = sim::measure_sync(graph::complete(512), 0, Mode::kPushPull, config);
  EXPECT_LT(small.mean(), 12.0);
  EXPECT_LT(large.mean(), 16.0);
  EXPECT_GT(large.mean(), small.mean());
  EXPECT_LT(large.mean() - small.mean(), 6.0);  // +3 levels of log3
}

TEST(SyncLaws, PathIsLinear) {
  sim::TrialConfig config;
  config.trials = 40;
  config.seed = 7;
  const auto t128 = sim::measure_sync(graph::path(128), 0, Mode::kPushPull, config);
  const auto t256 = sim::measure_sync(graph::path(256), 0, Mode::kPushPull, config);
  EXPECT_NEAR(t256.mean() / t128.mean(), 2.0, 0.25);
}

TEST(SyncLaws, PushPullNeverSlowerThanPushOnStar) {
  sim::TrialConfig config;
  config.trials = 60;
  config.seed = 8;
  const auto g = graph::star(64);
  const auto push = sim::measure_sync(g, 1, Mode::kPush, config);
  const auto pp = sim::measure_sync(g, 1, Mode::kPushPull, config);
  EXPECT_LT(pp.mean(), push.mean() / 10.0);  // 2 vs ~ n ln n
}

TEST(SyncLaws, HypercubeScalesWithDimension) {
  sim::TrialConfig config;
  config.trials = 60;
  config.seed = 9;
  const auto d8 = sim::measure_sync(graph::hypercube(8), 0, Mode::kPushPull, config);
  const auto d10 = sim::measure_sync(graph::hypercube(10), 0, Mode::kPushPull, config);
  EXPECT_GT(d10.mean(), d8.mean());
  EXPECT_LT(d10.mean(), d8.mean() + 6.0);
}
