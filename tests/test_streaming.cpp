// Streaming-accumulator tests: the mergeable fixed-memory reductions that
// campaign sweeps use in place of full sample vectors (stats/streaming.hpp).
//
// Error tolerances asserted here are the module's documented contract:
//   * RunningMoments merge — exact up to floating-point associativity
//     (asserted to 1e-12 relative against the sequential pass);
//   * QuantileSketch (k = 256) — rank error under 2% of n for n up to 5e4,
//     including after 8-way merges (the deterministic alternating compactor
//     does far better than its worst-case bound; 2% is the asserted
//     ceiling), and *exact* type-1 quantiles while n <= k;
//   * ReservoirSample — contents are a pure function of the inserted
//     (tag, value) set: identical across insertion orders and merge shapes,
//     exhaustive when capacity >= n, and uniform (fraction tests below).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "dist/distributions.hpp"
#include "rng/rng.hpp"
#include "stats/streaming.hpp"
#include "stats/summary.hpp"

using namespace rumor;
using stats::QuantileSketch;
using stats::ReservoirSample;
using stats::RunningMoments;
using stats::StreamingSummary;

namespace {

std::vector<double> exponential_samples(std::size_t n, std::uint64_t seed) {
  const dist::Exponential law(1.0);
  auto eng = rng::derive_stream(seed, 0);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(law.sample(eng));
  return out;
}

/// Empirical rank (fraction of samples <= x) of `x` in `sorted`.
double rank_of(const std::vector<double>& sorted, double x) {
  const auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
  return static_cast<double>(it - sorted.begin()) / static_cast<double>(sorted.size());
}

constexpr double kRankTolerance = 0.02;  // the documented sketch ceiling at k=256

}  // namespace

// --- RunningMoments::merge ---------------------------------------------------

TEST(StreamingMoments, MergeMatchesSequentialAccumulation) {
  const auto samples = exponential_samples(10'000, 21);
  RunningMoments sequential;
  for (double x : samples) sequential.add(x);

  // Partition into uneven chunks, accumulate separately, merge in order.
  RunningMoments merged;
  const std::size_t cuts[] = {0, 17, 1000, 1001, 6000, samples.size()};
  for (std::size_t c = 0; c + 1 < std::size(cuts); ++c) {
    RunningMoments part;
    for (std::size_t i = cuts[c]; i < cuts[c + 1]; ++i) part.add(samples[i]);
    merged.merge(part);
  }

  EXPECT_EQ(merged.count(), sequential.count());
  EXPECT_NEAR(merged.mean(), sequential.mean(), 1e-12 * std::abs(sequential.mean()));
  EXPECT_NEAR(merged.variance(), sequential.variance(), 1e-10 * sequential.variance());
  EXPECT_EQ(merged.min(), sequential.min());
  EXPECT_EQ(merged.max(), sequential.max());
}

// --- QuantileSketch ----------------------------------------------------------

TEST(StreamingSketch, ExactWhileUnderCapacity) {
  // With n <= k nothing is ever compacted — including n == k exactly, the
  // boundary the experiment notes advertise — so the sketch must return
  // the exact type-1 quantile (bitwise equal to quantile_sorted).
  for (std::size_t n : {std::size_t{200}, std::size_t{256}}) {
    auto samples = exponential_samples(n, 22);
    QuantileSketch sketch(256);
    for (double x : samples) sketch.add(x);
    EXPECT_EQ(sketch.stored(), n);
    std::sort(samples.begin(), samples.end());
    for (double q : {0.0, 0.05, 0.25, 0.5, 0.9, 0.95, 1.0}) {
      EXPECT_EQ(sketch.quantile(q), stats::quantile_sorted(samples, q)) << "n=" << n << " q=" << q;
    }
  }
}

TEST(StreamingSketch, RankErrorBoundedOnLargeStream) {
  auto samples = exponential_samples(50'000, 23);
  QuantileSketch sketch(256);
  for (double x : samples) sketch.add(x);
  EXPECT_EQ(sketch.count(), samples.size());

  std::sort(samples.begin(), samples.end());
  for (double q : {0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    const double estimate = sketch.quantile(q);
    EXPECT_NEAR(rank_of(samples, estimate), q, kRankTolerance) << "q=" << q;
  }
}

TEST(StreamingSketch, MergeKeepsRankErrorBounded) {
  // 8-way split/merge (the campaign's block-partial shape).
  auto samples = exponential_samples(40'000, 24);
  std::vector<QuantileSketch> parts(8, QuantileSketch(256));
  for (std::size_t i = 0; i < samples.size(); ++i) parts[i % 8].add(samples[i]);
  QuantileSketch merged = parts[0];
  for (std::size_t p = 1; p < parts.size(); ++p) merged.merge(parts[p]);
  EXPECT_EQ(merged.count(), samples.size());

  std::sort(samples.begin(), samples.end());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    const double estimate = merged.quantile(q);
    EXPECT_NEAR(rank_of(samples, estimate), q, kRankTolerance) << "q=" << q;
  }
}

TEST(StreamingSketch, MemoryStaysLogarithmic) {
  const std::size_t k = 64;
  QuantileSketch sketch(k);
  const std::size_t n = 100'000;
  auto eng = rng::derive_stream(25, 0);
  for (std::size_t i = 0; i < n; ++i) sketch.add(rng::uniform01(eng));
  // Capacity-k buffers over ~log2(n/k) levels; assert the documented
  // envelope with one level of slack, far below the n samples it digested.
  const double levels = std::log2(static_cast<double>(n) / static_cast<double>(k)) + 2.0;
  EXPECT_LE(sketch.stored(), static_cast<std::size_t>(levels) * k);
}

// --- ReservoirSample ---------------------------------------------------------

TEST(StreamingReservoir, ContentsIndependentOfInsertionOrderAndMergeShape) {
  const auto samples = exponential_samples(2'000, 26);
  const std::size_t capacity = 100;

  ReservoirSample forward(capacity, 7);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    forward.add(samples[i], i);
  }
  ReservoirSample backward(capacity, 7);
  for (std::size_t i = samples.size(); i-- > 0;) {
    backward.add(samples[i], i);
  }
  ReservoirSample merged(capacity, 7);
  for (std::size_t chunk = 0; chunk < 4; ++chunk) {
    ReservoirSample part(capacity, 7);
    for (std::size_t i = chunk; i < samples.size(); i += 4) part.add(samples[i], i);
    merged.merge(part);
  }

  EXPECT_EQ(forward.entries(), backward.entries());
  EXPECT_EQ(forward.entries(), merged.entries());
  EXPECT_EQ(forward.count(), samples.size());
  EXPECT_EQ(forward.size(), capacity);
}

TEST(StreamingReservoir, RetainsEverythingUnderCapacity) {
  const auto samples = exponential_samples(300, 27);
  ReservoirSample reservoir(512, 1);
  for (std::size_t i = 0; i < samples.size(); ++i) reservoir.add(samples[i], i);
  ASSERT_EQ(reservoir.size(), samples.size());
  // values() orders by tag, i.e. insertion index — the exact sample vector.
  EXPECT_EQ(reservoir.values(), samples);
}

TEST(StreamingReservoir, SampleIsRoughlyUniform) {
  // Keep 400 of 4000 tagged values; the kept fraction from the first half
  // of the tag range is Binomial(400, 1/2)/400, so +-8% covers ~3 sigma.
  const std::size_t n = 4'000;
  ReservoirSample reservoir(400, 3);
  for (std::size_t i = 0; i < n; ++i) reservoir.add(static_cast<double>(i), i);
  std::size_t first_half = 0;
  for (const auto& [tag, value] : reservoir.entries()) {
    if (tag < n / 2) ++first_half;
  }
  const double fraction = static_cast<double>(first_half) / 400.0;
  EXPECT_NEAR(fraction, 0.5, 0.08);
}

// --- StreamingSummary --------------------------------------------------------

TEST(StreamingSummaryTest, AgreesWithExactSummaryOnSmallStreams) {
  // Under both sketch and reservoir capacity, every statistic the campaign
  // reports must coincide with the exact full-sample computation.
  auto samples = exponential_samples(250, 28);

  StreamingSummary::Options options;
  options.sketch_capacity = 256;
  options.reservoir_capacity = 512;
  StreamingSummary summary(options);
  for (std::size_t i = 0; i < samples.size(); ++i) summary.add(samples[i], i);

  RunningMoments exact_moments;
  for (double x : samples) exact_moments.add(x);
  std::sort(samples.begin(), samples.end());

  EXPECT_EQ(summary.count(), exact_moments.count());
  EXPECT_DOUBLE_EQ(summary.mean(), exact_moments.mean());
  EXPECT_DOUBLE_EQ(summary.stddev(), exact_moments.stddev());
  EXPECT_EQ(summary.min(), exact_moments.min());
  EXPECT_EQ(summary.max(), exact_moments.max());
  EXPECT_EQ(summary.median(), stats::quantile_sorted(samples, 0.5));
  EXPECT_EQ(summary.quantile(0.95), stats::quantile_sorted(samples, 0.95));
  EXPECT_EQ(summary.hp_time(0.05), stats::quantile_sorted(samples, 0.95));

  // The bootstrap CI resamples the (here exhaustive) reservoir sorted by
  // value — bit-identical to bootstrapping the sorted sample vector.
  const auto streamed_ci = summary.mean_ci();
  const auto exact_ci = stats::bootstrap_mean_ci(samples, 0.95, 400, 7);
  EXPECT_EQ(streamed_ci.lower, exact_ci.lower);
  EXPECT_EQ(streamed_ci.point, exact_ci.point);
  EXPECT_EQ(streamed_ci.upper, exact_ci.upper);
}

TEST(StreamingSummaryTest, MergePreservesEveryComponent) {
  const auto samples = exponential_samples(5'000, 29);
  StreamingSummary whole;
  std::vector<StreamingSummary> parts(4);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    whole.add(samples[i], i);
    parts[i % 4].add(samples[i], i);
  }
  StreamingSummary merged = parts[0];
  for (std::size_t p = 1; p < parts.size(); ++p) merged.merge(parts[p]);

  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12 * whole.mean());
  EXPECT_EQ(merged.min(), whole.min());
  EXPECT_EQ(merged.max(), whole.max());
  // Same multiset of (tag, value): identical bottom-k reservoir contents.
  EXPECT_EQ(merged.reservoir().entries(), whole.reservoir().entries());
  // Sketch states differ (different compaction history) but both stay
  // within the documented rank tolerance of the exact quantile.
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.25, 0.5, 0.9}) {
    EXPECT_NEAR(rank_of(sorted, merged.quantile(q)), q, kRankTolerance);
  }
}

// --- Empty-state contract & checkpoint round-trips ---------------------------
//
// Sharded campaigns legally produce accumulators that saw zero samples (a
// shard may own no blocks of a configuration), and checkpoint/resume folds
// restored states. Both contracts are bit-level: "no data" must surface as
// NaN, never a fabricated number, and state()/restore() must round-trip
// every observable exactly.

namespace {

std::uint64_t bits(double x) {
  std::uint64_t u = 0;
  static_assert(sizeof(u) == sizeof(x));
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

void expect_same_state(const StreamingSummary::State& a, const StreamingSummary::State& b) {
  EXPECT_EQ(a.moments.count, b.moments.count);
  EXPECT_EQ(bits(a.moments.mean), bits(b.moments.mean));
  EXPECT_EQ(bits(a.moments.m2), bits(b.moments.m2));
  EXPECT_EQ(bits(a.moments.min), bits(b.moments.min));
  EXPECT_EQ(bits(a.moments.max), bits(b.moments.max));
  EXPECT_EQ(a.sketch.count, b.sketch.count);
  ASSERT_EQ(a.sketch.levels.size(), b.sketch.levels.size());
  for (std::size_t l = 0; l < a.sketch.levels.size(); ++l) {
    EXPECT_EQ(a.sketch.levels[l].keep_odd, b.sketch.levels[l].keep_odd) << "level " << l;
    ASSERT_EQ(a.sketch.levels[l].items.size(), b.sketch.levels[l].items.size()) << "level " << l;
    for (std::size_t i = 0; i < a.sketch.levels[l].items.size(); ++i) {
      EXPECT_EQ(bits(a.sketch.levels[l].items[i]), bits(b.sketch.levels[l].items[i]));
    }
  }
  EXPECT_EQ(a.reservoir.count, b.reservoir.count);
  EXPECT_EQ(a.reservoir.entries, b.reservoir.entries);
}

}  // namespace

TEST(StreamingEmptyState, QuantilesAndBootstrapAreNaNOnZeroSamples) {
  const QuantileSketch sketch(256);
  EXPECT_TRUE(std::isnan(sketch.quantile(0.5)));
  EXPECT_TRUE(std::isnan(sketch.hp_time(0.05)));

  const StreamingSummary summary;
  EXPECT_EQ(summary.count(), 0u);
  EXPECT_TRUE(std::isnan(summary.median()));
  EXPECT_TRUE(std::isnan(summary.quantile(0.95)));
  EXPECT_TRUE(std::isnan(summary.hp_time(0.05)));
  const auto ci = summary.mean_ci();
  EXPECT_TRUE(std::isnan(ci.lower));
  EXPECT_TRUE(std::isnan(ci.point));
  EXPECT_TRUE(std::isnan(ci.upper));
}

TEST(StreamingEmptyState, MergingAnEmptyOperandIsAnExactIdentityBothWays) {
  const auto samples = exponential_samples(300, 31);
  StreamingSummary::Options options;
  options.reservoir_salt = 9;
  StreamingSummary full(options);
  for (std::size_t i = 0; i < samples.size(); ++i) full.add(samples[i], i);
  const auto before = full.state();

  // nonempty.merge(empty): bit-identical state afterwards — in particular
  // the sketch must not grow levels and the reservoir must keep capacity.
  full.merge(StreamingSummary(options));
  expect_same_state(full.state(), before);

  // empty.merge(nonempty): adopts the other verbatim.
  StreamingSummary adopted(options);
  adopted.merge(full);
  expect_same_state(adopted.state(), before);
}

TEST(StreamingEmptyState, StateRoundTripsBitExactlyThroughRestore) {
  // Push well past both capacities so levels, compaction selectors, and the
  // reservoir heap all carry non-trivial state.
  const auto samples = exponential_samples(5'000, 33);
  StreamingSummary::Options options;
  options.sketch_capacity = 128;
  options.reservoir_capacity = 64;
  options.reservoir_salt = 17;
  StreamingSummary original(options);
  for (std::size_t i = 0; i < samples.size(); ++i) original.add(samples[i], i);

  const StreamingSummary copy = StreamingSummary::restored(options, original.state());
  expect_same_state(copy.state(), original.state());
  EXPECT_EQ(bits(copy.mean()), bits(original.mean()));
  EXPECT_EQ(bits(copy.stddev()), bits(original.stddev()));
  for (double q : {0.05, 0.5, 0.95}) {
    EXPECT_EQ(bits(copy.quantile(q)), bits(original.quantile(q)));
  }
  const auto ci0 = original.mean_ci();
  const auto ci1 = copy.mean_ci();
  EXPECT_EQ(bits(ci0.lower), bits(ci1.lower));
  EXPECT_EQ(bits(ci0.point), bits(ci1.point));
  EXPECT_EQ(bits(ci0.upper), bits(ci1.upper));

  // Restored summaries must also *continue* identically: same future adds
  // produce the same future state (the resume contract in miniature).
  StreamingSummary a = original;
  StreamingSummary b = StreamingSummary::restored(options, original.state());
  for (std::uint64_t t = 9'000; t < 9'100; ++t) {
    a.add(static_cast<double>(t % 13), t);
    b.add(static_cast<double>(t % 13), t);
  }
  expect_same_state(a.state(), b.state());

  // An *empty* state round-trips too (a resumed shard that owned nothing).
  const StreamingSummary empty(options);
  const StreamingSummary empty_copy = StreamingSummary::restored(options, empty.state());
  expect_same_state(empty_copy.state(), empty.state());
  EXPECT_TRUE(std::isnan(empty_copy.median()));
}
