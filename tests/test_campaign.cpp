// Campaign-scheduler tests: the batched multi-configuration work queue of
// sim/campaign.hpp, its determinism contract, its parity with the
// per-configuration harness, the JSON spec front end, and the bounded-memory
// behavior that lets thousand-configuration sweeps run without holding
// sample vectors.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/rumor.hpp"
#include "graph/graph_store.hpp"
#include "obs/telemetry.hpp"
#include "rng/rng.hpp"
#include "sim/adversary.hpp"
#include "sim/campaign.hpp"
#include "sim/experiment.hpp"
#include "sim/harness.hpp"

using namespace rumor;

namespace {

std::shared_ptr<const graph::Graph> shared(graph::Graph g) {
  return std::make_shared<const graph::Graph>(std::move(g));
}

/// A small mixed campaign: three topologies, sync and async engines.
std::vector<sim::CampaignConfig> mixed_configs(std::uint64_t trials,
                                               std::size_t reservoir_capacity = 0) {
  static const auto kHypercube = shared(graph::hypercube(6));
  static const auto kStar = shared(graph::star(128));
  static const auto kCycle = shared(graph::cycle(96));
  std::vector<sim::CampaignConfig> configs;
  std::uint64_t seed = 500;
  for (const auto& g : {kHypercube, kStar, kCycle}) {
    for (const sim::EngineKind engine : {sim::EngineKind::kSync, sim::EngineKind::kAsync}) {
      sim::CampaignConfig cfg;
      cfg.id = g->name() + std::string("_") + sim::engine_name(engine);
      cfg.prebuilt = g;
      cfg.engine = engine;
      cfg.trials = trials;
      cfg.seed = ++seed;
      cfg.reservoir_capacity = reservoir_capacity;
      configs.push_back(std::move(cfg));
    }
  }
  return configs;
}

/// All reported statistics of one result, for exact cross-run comparison.
std::vector<double> fingerprint(const sim::CampaignResult& r) {
  const auto& s = r.summary;
  std::vector<double> out = {s.mean(),   s.stddev(),        s.min(),
                             s.max(),    s.median(),        s.quantile(0.95),
                             s.hp_time(r.hp_q)};
  for (const auto& [tag, value] : s.reservoir().entries()) {
    out.push_back(static_cast<double>(tag));
    out.push_back(value);
  }
  return out;
}

}  // namespace

// --- Parity with the per-configuration harness -------------------------------

TEST(Campaign, MatchesHarnessStatistics) {
  const auto g = shared(graph::hypercube(6));
  sim::CampaignConfig cfg;
  cfg.id = "hc6_sync";
  cfg.prebuilt = g;
  cfg.trials = 64;
  cfg.seed = 99;
  cfg.reservoir_capacity = 64;  // retain all samples for the exact check

  const auto results = sim::run_campaign({cfg}, {});
  ASSERT_EQ(results.size(), 1u);
  const auto& summary = results[0].summary;

  sim::TrialConfig trial_config;
  trial_config.trials = 64;
  trial_config.seed = 99;
  const auto exact = sim::measure_sync(*g, 0, core::Mode::kPushPull, trial_config);

  EXPECT_EQ(summary.count(), exact.size());
  EXPECT_NEAR(summary.mean(), exact.mean(), 1e-12 * exact.mean());
  EXPECT_EQ(summary.min(), exact.min());
  EXPECT_EQ(summary.max(), exact.max());
  // 64 trials sit inside the sketch capacity: quantiles are exact.
  EXPECT_EQ(summary.median(), exact.median());
  EXPECT_EQ(summary.quantile(0.95), exact.quantile(0.95));

  // A full-capacity reservoir, ordered by trial tag, is the per-trial
  // result vector of the harness, bitwise.
  sim::TrialConfig raw_config = trial_config;
  const auto raw = sim::run_trials(raw_config, [&](std::uint64_t, rng::Engine& eng) {
    return static_cast<double>(core::run_sync(*g, 0, eng).rounds);
  });
  EXPECT_EQ(summary.reservoir().values(), raw);
}

// --- Determinism contract ----------------------------------------------------

TEST(Campaign, BitDeterministicAcrossThreadCounts) {
  const auto configs = mixed_configs(48);
  sim::CampaignOptions options;
  options.block_size = 16;

  options.threads = 1;
  const auto serial = sim::run_campaign(configs, options);
  options.threads = 2;
  const auto two = sim::run_campaign(configs, options);
  options.threads = 8;
  const auto eight = sim::run_campaign(configs, options);

  ASSERT_EQ(serial.size(), configs.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    // Block partials merge in slot order, so every statistic — including
    // the sketch state behind the quantiles — is bit-identical.
    EXPECT_EQ(fingerprint(serial[i]), fingerprint(two[i])) << serial[i].id;
    EXPECT_EQ(fingerprint(serial[i]), fingerprint(eight[i])) << serial[i].id;
  }
}

TEST(Campaign, PerTrialResultsBitIdenticalAcrossBlockSizes) {
  // Full-capacity reservoirs recover exact (trial, value) pairs; those must
  // not depend on block size, thread count, or interleaving.
  const std::uint64_t trials = 48;
  const auto configs = mixed_configs(trials, /*reservoir_capacity=*/trials);

  std::vector<std::vector<std::vector<std::pair<std::uint64_t, double>>>> runs;
  for (const std::uint64_t block_size : {4u, 16u, 64u}) {
    sim::CampaignOptions options;
    options.block_size = block_size;
    options.threads = 8;
    const auto results = sim::run_campaign(configs, options);
    std::vector<std::vector<std::pair<std::uint64_t, double>>> entries;
    entries.reserve(results.size());
    for (const auto& r : results) entries.push_back(r.summary.reservoir().entries());
    runs.push_back(std::move(entries));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);

  // And they equal a serial harness re-run of each configuration.
  for (std::size_t c = 0; c < configs.size(); ++c) {
    for (const auto& [tag, value] : runs[0][c]) {
      auto eng = rng::derive_stream(configs[c].seed, tag);
      double expected = 0.0;
      if (configs[c].engine == sim::EngineKind::kSync) {
        expected = static_cast<double>(core::run_sync(*configs[c].prebuilt, 0, eng).rounds);
      } else {
        expected = core::run_async(*configs[c].prebuilt, 0, eng).time;
      }
      EXPECT_EQ(value, expected) << configs[c].id << " trial " << tag;
    }
  }
}

TEST(Campaign, MomentsStableAcrossBlockSizes) {
  // Merged moments are associativity-sensitive at the ulp level only; the
  // statistics must agree to far better than Monte-Carlo noise.
  const auto configs = mixed_configs(60);
  sim::CampaignOptions small_blocks;
  small_blocks.block_size = 4;
  sim::CampaignOptions big_blocks;
  big_blocks.block_size = 60;
  const auto a = sim::run_campaign(configs, small_blocks);
  const auto b = sim::run_campaign(configs, big_blocks);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].summary.mean(), b[i].summary.mean(), 1e-9 * (1.0 + b[i].summary.mean()));
    EXPECT_EQ(a[i].summary.min(), b[i].summary.min());
    EXPECT_EQ(a[i].summary.max(), b[i].summary.max());
  }
}

// --- Spread telemetry (curves) -----------------------------------------------

namespace {

/// Sync, async, and quasirandom cells over two topologies, all with spread
/// telemetry enabled (round grid for the round-based engines, a 0.5-unit
/// time grid for async).
std::vector<sim::CampaignConfig> curve_configs(std::uint64_t trials) {
  static const auto kHypercube = shared(graph::hypercube(6));
  static const auto kCycle = shared(graph::cycle(48));
  std::vector<sim::CampaignConfig> configs;
  std::uint64_t seed = 700;
  for (const auto& g : {kHypercube, kCycle}) {
    for (const sim::EngineKind engine : {sim::EngineKind::kSync, sim::EngineKind::kAsync,
                                         sim::EngineKind::kQuasirandom}) {
      sim::CampaignConfig cfg;
      cfg.id = g->name() + std::string("_") + sim::engine_name(engine) + "_curves";
      cfg.prebuilt = g;
      cfg.engine = engine;
      cfg.trials = trials;
      cfg.seed = ++seed;
      cfg.curves.enabled = true;
      cfg.curves.points = 48;
      cfg.curves.time_bucket = 0.5;
      configs.push_back(std::move(cfg));
    }
  }
  return configs;
}

/// The full serialized curve state plus contact totals, for exact
/// cross-run comparison (vector<double> equality is bitwise here: every
/// component is finite).
std::vector<double> curve_fingerprint(const sim::CampaignResult& r) {
  const auto s = r.curves.state();
  std::vector<double> out = {static_cast<double>(s.trials), static_cast<double>(s.max_len)};
  for (const auto& m : s.moments) {
    out.push_back(static_cast<double>(m.count));
    out.insert(out.end(), {m.mean, m.m2, m.min, m.max});
  }
  for (const auto& sk : s.sketches) {
    out.push_back(static_cast<double>(sk.count));
    for (const auto& level : sk.levels) {
      out.push_back(level.keep_odd ? 1.0 : 0.0);
      out.insert(out.end(), level.items.begin(), level.items.end());
    }
  }
  for (const std::uint64_t v : {r.contacts.contacts, r.contacts.useful_push,
                                r.contacts.useful_pull, r.contacts.wasted_push,
                                r.contacts.wasted_pull, r.contacts.empty_contacts,
                                r.contacts.ticks, r.contacts.informed_total}) {
    out.push_back(static_cast<double>(v));
  }
  return out;
}

}  // namespace

TEST(CampaignCurves, BitIdenticalAcrossThreadCountsStableAcrossBlockSizes) {
  const auto configs = curve_configs(48);
  sim::CampaignOptions serial_options;
  serial_options.threads = 1;
  serial_options.block_size = 8;
  const auto baseline = sim::run_campaign(configs, serial_options);

  // Same block partition, any thread count: partials fold in slot order,
  // so every curve component — moments, sketches, contacts — is
  // bit-identical.
  for (const unsigned threads : {2u, 8u}) {
    sim::CampaignOptions options;
    options.threads = threads;
    options.block_size = 8;
    const auto results = sim::run_campaign(configs, options);
    ASSERT_EQ(results.size(), baseline.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(curve_fingerprint(results[i]), curve_fingerprint(baseline[i]))
          << baseline[i].id << " threads=" << threads;
    }
  }

  // A different block partition regroups the Welford folds: integer
  // components (contacts, trials, max_len, per-point extremes) stay exact,
  // moments agree to far better than Monte-Carlo noise.
  for (const std::uint64_t block_size : {4u, 64u}) {
    sim::CampaignOptions options;
    options.threads = 8;
    options.block_size = block_size;
    const auto results = sim::run_campaign(configs, options);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      const auto& b = baseline[i];
      EXPECT_EQ(r.curves.trials(), b.curves.trials()) << r.id;
      EXPECT_EQ(r.curves.max_len(), b.curves.max_len()) << r.id;
      auto contact_fields = [](const stats::ContactTotals& c) {
        return std::array<std::uint64_t, 8>{c.contacts,       c.useful_push, c.useful_pull,
                                            c.wasted_push,    c.wasted_pull, c.empty_contacts,
                                            c.ticks,          c.informed_total};
      };
      EXPECT_EQ(contact_fields(r.contacts), contact_fields(b.contacts))
          << r.id << " block=" << block_size;
      for (std::size_t k = 0; k < r.curves.points(); ++k) {
        EXPECT_EQ(r.curves.moments_at(k).min(), b.curves.moments_at(k).min()) << r.id;
        EXPECT_EQ(r.curves.moments_at(k).max(), b.curves.moments_at(k).max()) << r.id;
        EXPECT_NEAR(r.curves.mean_at(k), b.curves.mean_at(k),
                    1e-9 * (1.0 + b.curves.mean_at(k))) << r.id << " point " << k;
      }
    }
  }
}

TEST(CampaignCurves, ConservationHoldsExactlyAndReportCarriesCurves) {
  const auto configs = curve_configs(32);
  const auto results = sim::run_campaign(configs, {});
  for (const auto& r : results) {
    ASSERT_TRUE(r.has_curves) << r.id;
    EXPECT_EQ(r.curves.trials(), r.trials) << r.id;
    // Every node beyond the source is informed by exactly one useful
    // transmission; all trials run to full informedness.
    EXPECT_EQ(r.contacts.informed_total, r.trials * r.n) << r.id;
    EXPECT_EQ(r.contacts.useful_push + r.contacts.useful_pull,
              r.contacts.informed_total - r.trials) << r.id;
    // The curve starts at the lone source; once the grid covers the
    // slowest trial it sits exactly at n (the cycle cells may outrun the
    // grid — saturation only applies where the grid reaches).
    EXPECT_EQ(r.curves.mean_at(0), 1.0) << r.id;
    if (r.curves.max_len() <= r.curves.points()) {
      EXPECT_EQ(r.curves.mean_at(r.curves.max_len() - 1), static_cast<double>(r.n)) << r.id;
    }

    const sim::Json report = sim::campaign_report(r, "curves_unit");
    const sim::Json* stats = report.find("stats");
    ASSERT_NE(stats, nullptr) << r.id;
    const sim::Json* curves = stats->find("curves");
    ASSERT_NE(curves, nullptr) << r.id;
    const bool time_grid = r.engine == "async";
    EXPECT_EQ(curves->find("grid")->as_string(), time_grid ? "time" : "rounds") << r.id;
    EXPECT_EQ(curves->find("mean")->elements().size(), r.curves.points()) << r.id;
    EXPECT_NE(curves->find("phases"), nullptr) << r.id;
    EXPECT_EQ(curves->find("contacts")->find("ticks")->as_number(),
              static_cast<double>(r.contacts.ticks)) << r.id;
  }
  // Curves off: the report must not grow a curves block.
  auto plain = curve_configs(8);
  plain.resize(1);
  plain[0].curves.enabled = false;
  const auto off = sim::run_campaign(plain, {});
  EXPECT_FALSE(off[0].has_curves);
  EXPECT_EQ(sim::campaign_report(off[0], "curves_unit").find("stats")->find("curves"), nullptr);
}

TEST(CampaignCurves, RejectsAuxEnginesAndRacedSources) {
  sim::CampaignConfig aux;
  aux.id = "aux_curves";
  aux.prebuilt = shared(graph::hypercube(5));
  aux.engine = sim::EngineKind::kAux;
  aux.trials = 4;
  aux.curves.enabled = true;
  EXPECT_THROW((void)sim::run_campaign({aux}, {}), std::runtime_error);

  sim::CampaignConfig race;
  race.id = "race_curves";
  race.prebuilt = shared(graph::star(32));
  race.source_policy = sim::SourcePolicy::kRace;
  race.race.screen_trials = 2;
  race.race.finalists = 1;
  race.trials = 4;
  race.curves.enabled = true;
  EXPECT_THROW((void)sim::run_campaign({race}, {}), std::runtime_error);

  sim::CampaignConfig zero_points;
  zero_points.id = "zero_points";
  zero_points.prebuilt = shared(graph::hypercube(5));
  zero_points.trials = 4;
  zero_points.curves.enabled = true;
  zero_points.curves.points = 0;
  EXPECT_THROW((void)sim::run_campaign({zero_points}, {}), std::runtime_error);
}

// --- Error handling ----------------------------------------------------------

TEST(Campaign, PropagatesTrialFailures) {
  // path(2) is connected, but a two-node path with an unreachable source
  // cap is hard to provoke; instead use trials=0 (rejected up front) and an
  // unknown family (thrown on the worker during lazy graph construction).
  sim::CampaignConfig zero;
  zero.prebuilt = shared(graph::complete(8));
  zero.trials = 0;
  EXPECT_THROW((void)sim::run_campaign({zero}, {}), std::runtime_error);

  sim::CampaignConfig bad_family;
  bad_family.graph.family = "no_such_family";
  bad_family.graph.n = 16;
  bad_family.trials = 4;
  sim::CampaignOptions parallel_options;
  parallel_options.threads = 4;
  EXPECT_THROW((void)sim::run_campaign({bad_family}, parallel_options), std::runtime_error);
}

TEST(Campaign, RejectsOutOfRangeSource) {
  // The engines only assert() source < n (compiled out in Release); the
  // campaign must reject spec-supplied sources at runtime instead.
  sim::CampaignConfig cfg;
  cfg.graph.family = "star";
  cfg.graph.n = 32;
  cfg.source = 64;
  cfg.trials = 4;
  EXPECT_THROW((void)sim::run_campaign({cfg}, {}), std::runtime_error);
}

// --- build_graph -------------------------------------------------------------

TEST(CampaignGraphSpec, BuildsEveryNamedFamily) {
  for (const char* family :
       {"complete", "star", "double_star", "path", "cycle", "wheel", "tree",
        "complete_bipartite", "torus", "torus3d", "hypercube", "erdos_renyi",
        "random_regular", "chung_lu", "preferential_attachment", "watts_strogatz"}) {
    sim::GraphSpec spec;
    spec.family = family;
    spec.n = 64;
    const auto g = sim::build_graph(spec, /*fallback_seed=*/11);
    EXPECT_GE(g.num_nodes(), 2u) << family;
    EXPECT_GE(g.num_edges(), g.num_nodes() - 1) << family;  // connected => n-1 edges minimum
  }
}

TEST(CampaignGraphSpec, RejectsBadSpecs) {
  sim::GraphSpec unknown;
  unknown.family = "banana";
  unknown.n = 16;
  EXPECT_THROW((void)sim::build_graph(unknown, 1), std::runtime_error);

  sim::GraphSpec tiny;
  tiny.family = "complete";
  tiny.n = 1;
  EXPECT_THROW((void)sim::build_graph(tiny, 1), std::runtime_error);
}

TEST(CampaignGraphSpec, GraphSeedIsReproducible) {
  sim::GraphSpec spec;
  spec.family = "random_regular";
  spec.n = 64;
  spec.degree = 4;
  spec.graph_seed = 77;
  const auto a = sim::build_graph(spec, 1);
  const auto b = sim::build_graph(spec, 2);  // fallback ignored: explicit seed wins
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (graph::NodeId v = 0; v < a.num_nodes(); ++v) {
    EXPECT_EQ(a.neighbors(v).size(), b.neighbors(v).size());
  }
}

// --- Spec parsing ------------------------------------------------------------

namespace {

sim::CampaignSpec parse(const std::string& text) {
  const auto doc = sim::Json::parse(text);
  EXPECT_TRUE(doc.has_value()) << text;
  return sim::parse_campaign_spec(*doc);
}

}  // namespace

TEST(CampaignSpecParsing, ExpandsArraysAsCrossProduct) {
  const auto spec = parse(R"({
    "name": "sweep",
    "defaults": {"trials": 10, "seed": 3, "mode": "push"},
    "configs": [
      {"graph": "star", "n": [64, 128, 256], "engine": ["sync", "async"]},
      {"graph": "cycle", "n": 32, "mode": ["push", "pull", "push-pull"]}
    ]})");
  ASSERT_TRUE(spec.error.empty()) << spec.error;
  EXPECT_EQ(spec.name, "sweep");
  ASSERT_EQ(spec.configs.size(), 9u);  // 3 sizes x 2 engines + 3 modes
  EXPECT_EQ(spec.configs[0].id, "star_n64_sync_push");
  EXPECT_EQ(spec.configs[1].id, "star_n64_async_push");
  EXPECT_EQ(spec.configs[0].trials, 10u);
  EXPECT_EQ(spec.configs[0].seed, 3u);
  EXPECT_EQ(spec.configs[8].mode, core::Mode::kPushPull);
  EXPECT_EQ(spec.configs[8].id, "cycle_n32_sync_push-pull");
}

TEST(CampaignSpecParsing, ExplicitViewOverridesDefaultsView) {
  const auto spec = parse(R"({
    "defaults": {"view": "per-node", "engine": "async"},
    "configs": [
      {"id": "global", "graph": "star", "n": 32, "view": "global-clock"},
      {"id": "per-node", "graph": "star", "n": 32}
    ]})");
  ASSERT_TRUE(spec.error.empty()) << spec.error;
  ASSERT_EQ(spec.configs.size(), 2u);
  EXPECT_EQ(spec.configs[0].view, core::AsyncView::kGlobalClock);
  EXPECT_EQ(spec.configs[1].view, core::AsyncView::kPerNodeClocks);
}

TEST(CampaignSpecParsing, DuplicateIdsAreRejectedNamingBothCells) {
  // Checkpoints, shards, and merge address configurations by id, so a
  // collision (auto-derived here: same graph/engine/mode, differing only in
  // seed) must be rejected rather than silently suffixed.
  const auto spec = parse(R"({"configs": [
      {"graph": "star", "n": 64},
      {"graph": "star", "n": 64, "seed": 9}
    ]})");
  ASSERT_FALSE(spec.error.empty());
  EXPECT_NE(spec.error.find("configs[1]"), std::string::npos) << spec.error;
  EXPECT_NE(spec.error.find("configs[0]"), std::string::npos) << spec.error;
  EXPECT_NE(spec.error.find("star_n64_sync_push-pull"), std::string::npos) << spec.error;

  // Explicit duplicate ids are rejected the same way.
  const auto explicit_dup = parse(R"({"configs": [
      {"id": "cell", "graph": "star", "n": 64},
      {"id": "cell", "graph": "cycle", "n": 32}
    ]})");
  ASSERT_FALSE(explicit_dup.error.empty());
  EXPECT_NE(explicit_dup.error.find("'cell'"), std::string::npos) << explicit_dup.error;

  // Distinct explicit ids resolve the collision.
  const auto fixed = parse(R"({"configs": [
      {"id": "a", "graph": "star", "n": 64},
      {"id": "b", "graph": "star", "n": 64, "seed": 9}
    ]})");
  ASSERT_TRUE(fixed.error.empty()) << fixed.error;
  ASSERT_EQ(fixed.configs.size(), 2u);
}

TEST(CampaignSpecParsing, RejectsMalformedSpecs) {
  EXPECT_FALSE(parse(R"([1, 2])").error.empty());                    // not an object
  EXPECT_FALSE(parse(R"({"configs": []})").error.empty());           // empty configs
  EXPECT_FALSE(parse(R"({"configs": [{"n": 64}]})").error.empty());  // missing graph
  EXPECT_FALSE(parse(R"({"configs": [{"graph": "star"}]})").error.empty());  // missing n
  EXPECT_FALSE(
      parse(R"({"configs": [{"graph": "star", "n": 64, "trails": 5}]})").error.empty());  // typo
  EXPECT_FALSE(parse(R"({"configs": [{"graph": "star", "n": 64, "engine": "warp"}]})")
                   .error.empty());  // unknown engine
  EXPECT_FALSE(parse(R"({"configs": [{"graph": "star", "n": 1}]})").error.empty());  // n < 2
}

TEST(CampaignSpecParsing, RejectsNegativeAndFractionalCounts) {
  // Negative doubles must never reach an unsigned cast (UB); fractional
  // trial counts are almost certainly user error.
  for (const char* bad : {R"({"configs": [{"graph": "star", "n": 64, "trials": -1}]})",
                          R"({"configs": [{"graph": "star", "n": 64, "seed": -3}]})",
                          R"({"configs": [{"graph": "star", "n": 64, "source": -1}]})",
                          R"({"configs": [{"graph": "star", "n": 64, "trials": 2.5}]})",
                          R"({"configs": [{"graph": "star", "n": 64, "hp_q": 1.5}]})",
                          R"({"configs": [{"graph": "star", "n": 64, "p": -0.2}]})"}) {
    EXPECT_FALSE(parse(bad).error.empty()) << bad;
  }
}

TEST(CampaignSpecParsing, RejectsUnknownAndMisplacedDefaultsKeys) {
  // The typo protection config entries get must cover shared values too.
  EXPECT_FALSE(parse(R"({"defaults": {"trails": 1000},
                         "configs": [{"graph": "star", "n": 64}]})").error.empty());
  EXPECT_FALSE(parse(R"({"defaults": {"graph": "star"},
                         "configs": [{"graph": "star", "n": 64}]})").error.empty());
  // A non-string id is an error on the entry it appears in.
  const auto spec = parse(R"({"configs": [{"graph": "star", "n": 64, "id": 7}]})");
  EXPECT_NE(spec.error.find("configs[0]"), std::string::npos) << spec.error;
}

// --- Scale: a thousand configurations under fixed memory ---------------------

TEST(CampaignScale, ThousandConfigurationsReduceToConstantSizeSummaries) {
  // 1000 configurations x 2 trials on small graphs. The point is not the
  // statistics but the mechanics: one shared queue schedules every block,
  // each configuration's graph is built lazily and freed on completion, and
  // what survives is ~1000 constant-size summaries (reservoir <= capacity,
  // sketch buffers bounded) rather than 1000 sample vectors.
  const char* families[] = {"path", "star", "cycle", "complete"};
  std::vector<sim::CampaignConfig> configs;
  configs.reserve(1000);
  for (std::size_t i = 0; i < 1000; ++i) {
    sim::CampaignConfig cfg;
    cfg.graph.family = families[i % 4];
    cfg.graph.n = 8 + (i % 25);
    cfg.engine = (i % 8 == 7) ? sim::EngineKind::kAsync : sim::EngineKind::kSync;
    cfg.trials = 2;
    cfg.seed = 1 + i;
    configs.push_back(std::move(cfg));
  }
  sim::CampaignOptions options;
  options.threads = 4;
  options.block_size = 1;
  options.reservoir_capacity = 16;
  const auto results = sim::run_campaign(configs, options);
  ASSERT_EQ(results.size(), 1000u);
  for (const auto& r : results) {
    EXPECT_EQ(r.summary.count(), 2u);
    EXPECT_GT(r.summary.mean(), 0.0);
    EXPECT_LE(r.summary.reservoir().size(), 16u);
    EXPECT_LE(r.summary.sketch().stored(), 2u);
    EXPECT_GE(r.n, 8u);
  }
}

// --- Worst-source racing (SourcePolicy::kRace) -------------------------------

namespace {

/// A race configuration over a prebuilt graph, mirroring what
/// find_worst_source_* builds internally.
sim::CampaignConfig race_config(std::shared_ptr<const graph::Graph> g, sim::EngineKind engine,
                                const sim::WorstSourceOptions& opts) {
  sim::CampaignConfig cfg;
  cfg.id = "race";
  cfg.prebuilt = std::move(g);
  cfg.engine = engine;
  cfg.source_policy = sim::SourcePolicy::kRace;
  cfg.race.screen_trials = opts.screen_trials;
  cfg.race.finalists = opts.finalists;
  cfg.race.final_trials = opts.final_trials;
  cfg.race.max_candidates = opts.max_candidates;
  cfg.seed = opts.seed;
  cfg.trials = opts.final_trials;
  return cfg;
}

}  // namespace

TEST(CampaignRace, MatchesFindWorstSourceOnStarAndLollipop) {
  // The acceptance bar: a campaign `source: "race"` cell and a direct
  // find_worst_source call must agree bit-for-bit — worst and best source
  // ids, and their refined means to the last bit.
  sim::WorstSourceOptions opts;
  opts.screen_trials = 6;
  opts.final_trials = 40;
  opts.max_candidates = 24;
  opts.seed = 17;
  for (const auto& g : {shared(graph::star(96)), shared(graph::lollipop(24, 24))}) {
    const auto direct = sim::find_worst_source_sync(*g, core::Mode::kPushPull, opts);
    const auto results = sim::run_campaign({race_config(g, sim::EngineKind::kSync, opts)}, {});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].source, direct.source) << g->name();
    EXPECT_EQ(results[0].summary.mean(), direct.mean_time) << g->name();
    EXPECT_EQ(results[0].best_source, direct.best_source) << g->name();
    EXPECT_EQ(results[0].best_mean, direct.best_mean_time) << g->name();
    EXPECT_EQ(results[0].summary.count(), opts.final_trials);
  }
}

TEST(CampaignRace, RacedSourceBitDeterministicAcrossThreadCounts) {
  // The race's screen and refine passes are scheduled as blocks on the
  // shared queue; per-candidate partials merge in slot order, so the raced
  // source AND its refined summary are bit-identical at any thread count —
  // even with ordinary fixed-source cells competing for the same workers.
  static const auto kLollipop = shared(graph::lollipop(24, 24));
  sim::WorstSourceOptions opts;
  opts.screen_trials = 6;
  opts.final_trials = 48;
  opts.max_candidates = 16;
  opts.seed = 5;

  std::vector<sim::CampaignConfig> configs = mixed_configs(32);
  configs.push_back(race_config(kLollipop, sim::EngineKind::kSync, opts));
  configs.push_back(race_config(kLollipop, sim::EngineKind::kAsync, opts));

  sim::CampaignOptions options;
  options.block_size = 8;
  options.threads = 1;
  const auto serial = sim::run_campaign(configs, options);
  options.threads = 2;
  const auto two = sim::run_campaign(configs, options);
  options.threads = 8;
  const auto eight = sim::run_campaign(configs, options);

  ASSERT_EQ(serial.size(), configs.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(fingerprint(serial[i]), fingerprint(two[i])) << serial[i].id;
    EXPECT_EQ(fingerprint(serial[i]), fingerprint(eight[i])) << serial[i].id;
    EXPECT_EQ(serial[i].source, two[i].source) << serial[i].id;
    EXPECT_EQ(serial[i].source, eight[i].source) << serial[i].id;
    EXPECT_EQ(serial[i].best_source, eight[i].best_source) << serial[i].id;
    EXPECT_EQ(serial[i].best_mean, eight[i].best_mean) << serial[i].id;
  }
  // The race actually raced: worst >= best, and on the lollipop the worst
  // sync source sits in the far half of the tail (nodes 36..47).
  const auto& sync_race = serial[serial.size() - 2];
  EXPECT_GE(sync_race.summary.mean(), sync_race.best_mean);
  EXPECT_GE(sync_race.source, 36u);
}

TEST(CampaignRace, SpecDrivenRaceMatchesFindWorstSource) {
  // End-to-end through the JSON spec front end (what `rumor_bench
  // --campaign` executes): a spec-built star must race to the same source
  // and mean as find_worst_source on an identically built star.
  const auto spec = parse(R"({"configs": [
      {"graph": "star", "n": 96, "source": "race", "trials": 40,
       "screen_trials": 6, "finalists": 4, "max_candidates": 24, "seed": 17}
    ]})");
  ASSERT_TRUE(spec.error.empty()) << spec.error;
  ASSERT_EQ(spec.configs.size(), 1u);
  EXPECT_EQ(spec.configs[0].source_policy, sim::SourcePolicy::kRace);
  EXPECT_EQ(spec.configs[0].id, "star_n96_sync_push-pull_race");

  sim::WorstSourceOptions opts;
  opts.screen_trials = 6;
  opts.final_trials = 40;
  opts.max_candidates = 24;
  opts.seed = 17;
  const auto direct = sim::find_worst_source_sync(graph::star(96), core::Mode::kPushPull, opts);
  for (const unsigned threads : {1u, 2u, 8u}) {
    sim::CampaignOptions options;
    options.threads = threads;
    const auto results = sim::run_campaign(spec.configs, options);
    EXPECT_EQ(results[0].source, direct.source) << "threads=" << threads;
    EXPECT_EQ(results[0].summary.mean(), direct.mean_time) << "threads=" << threads;
    EXPECT_EQ(results[0].best_source, direct.best_source) << "threads=" << threads;
    EXPECT_EQ(results[0].best_mean, direct.best_mean_time) << "threads=" << threads;
  }
}

TEST(CampaignRace, ReportCarriesRaceOutcome) {
  sim::WorstSourceOptions opts;
  opts.screen_trials = 4;
  opts.final_trials = 16;
  opts.max_candidates = 8;
  const auto results =
      sim::run_campaign({race_config(shared(graph::star(64)), sim::EngineKind::kSync, opts)}, {});
  const sim::Json report = sim::campaign_report(results[0], "unit");
  EXPECT_EQ(report.find("params")->find("source_policy")->as_string(), "race");
  const sim::Json* stats = report.find("stats");
  ASSERT_NE(stats, nullptr);
  for (const char* key : {"worst_source", "best_source", "best_mean"}) {
    EXPECT_NE(stats->find(key), nullptr) << key;
  }
  EXPECT_TRUE(sim::Json::parse(report.dump(2)).has_value());
}

TEST(CampaignRace, SingleCandidateRaceIsWellDefined) {
  // max_candidates == 1 is spec-reachable; the stratified stride must not
  // divide by zero. The single candidate is the min-degree node, and worst
  // == best by construction.
  const auto spec = parse(R"({"configs": [
      {"graph": "star", "n": 32, "source": "race", "trials": 8,
       "screen_trials": 2, "max_candidates": 1}
    ]})");
  ASSERT_TRUE(spec.error.empty()) << spec.error;
  const auto results = sim::run_campaign(spec.configs, {});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GE(results[0].source, 1u);  // a leaf, never the hub
  EXPECT_EQ(results[0].source, results[0].best_source);
  EXPECT_EQ(results[0].summary.mean(), results[0].best_mean);
}

TEST(CampaignRace, RejectsBadSourceValues) {
  // "source" must be a non-negative integer node id or "race"/"fixed";
  // race tuning keys must be positive where zero is meaningless.
  for (const char* bad :
       {R"({"configs": [{"graph": "star", "n": 64, "source": "worst"}]})",
        R"({"configs": [{"graph": "star", "n": 64, "source": -2}]})",
        R"({"configs": [{"graph": "star", "n": 64, "source": 1.5}]})",
        R"({"configs": [{"graph": "star", "n": 64, "source": true}]})",
        R"({"configs": [{"graph": "star", "n": 64, "source": "race", "screen_trials": 0}]})",
        R"({"configs": [{"graph": "star", "n": 64, "source": "race", "finalists": 0}]})"}) {
    EXPECT_FALSE(parse(bad).error.empty()) << bad;
  }
  // The happy strings parse.
  EXPECT_TRUE(parse(R"({"configs": [{"graph": "star", "n": 64, "source": "fixed"}]})")
                  .error.empty());
  EXPECT_TRUE(parse(R"({"defaults": {"source": "race"},
                        "configs": [{"graph": "star", "n": 64}]})").error.empty());
}

// --- Report schema -----------------------------------------------------------

TEST(CampaignReport, EmitsEstablishedSchema) {
  auto configs = mixed_configs(16);
  configs.resize(1);
  const auto results = sim::run_campaign(configs, {});
  const sim::Json report = sim::campaign_report(results[0], "unit");
  EXPECT_EQ(report.find("experiment")->as_string(), "unit/" + results[0].id);
  for (const char* key : {"params", "rows", "stats", "notes"}) {
    EXPECT_NE(report.find(key), nullptr) << key;
  }
  const sim::Json* rows = report.find("rows");
  ASSERT_TRUE(rows->is_array());
  ASSERT_EQ(rows->size(), 1u);
  for (const char* key : {"graph", "n", "trials", "mean", "stddev", "stderr", "min", "max",
                          "median", "p95", "hp_time", "mean_ci_lower", "mean_ci_upper"}) {
    EXPECT_NE(rows->elements()[0].find(key), nullptr) << key;
  }
  // The report must round-trip through the JSON layer (CI consumers parse it).
  EXPECT_TRUE(sim::Json::parse(report.dump(2)).has_value());
}

// --- File-backed graphs (packed mmap store) ----------------------------------

namespace {

/// Packs the graph `family_spec` describes and returns the store path.
std::string pack_spec_graph(const sim::GraphSpec& family_spec, const std::string& tag) {
  const std::string store =
      (std::filesystem::temp_directory_path() / ("rumor_test_campaign_" + tag + ".rgs")).string();
  graph::write_graph_store(sim::build_graph(family_spec, /*fallback_seed=*/1), store);
  return store;
}

}  // namespace

TEST(CampaignFileGraph, FileCellByteIdenticalToInMemoryAcrossThreads) {
  // The tentpole acceptance check: a graph: {kind:"file"} cell must produce
  // a report byte-identical to the same cell built in memory, at every
  // thread count.
  sim::GraphSpec family;
  family.family = "random_regular";
  family.n = 80;
  family.degree = 4;
  family.graph_seed = 9;
  const std::string store = pack_spec_graph(family, "cell");

  auto make_cfg = [&](bool file) {
    sim::CampaignConfig cfg;
    cfg.id = "cell";
    if (file) {
      cfg.graph.family = "file";
      cfg.graph.path = store;
    } else {
      cfg.graph = family;
    }
    cfg.trials = 40;
    cfg.seed = 5;
    return cfg;
  };
  for (const unsigned threads : {1u, 2u, 8u}) {
    sim::CampaignOptions options;
    options.threads = threads;
    options.block_size = 8;
    const auto mem = sim::run_campaign({make_cfg(false)}, options);
    const auto file = sim::run_campaign({make_cfg(true)}, options);
    EXPECT_EQ(sim::campaign_report(mem[0], "camp").dump(2),
              sim::campaign_report(file[0], "camp").dump(2))
        << "threads=" << threads;
  }
  std::remove(store.c_str());
}

TEST(CampaignFileGraph, SharedStoreMaterializesOnceAcrossConfigs) {
  // N configs naming one store share a single mapping: the obs graph_builds
  // counter must record 1 materialization, not N.
  sim::GraphSpec family;
  family.family = "hypercube";
  family.n = 64;
  const std::string store = pack_spec_graph(family, "shared");

  std::vector<sim::CampaignConfig> configs;
  int i = 0;
  for (const sim::EngineKind engine :
       {sim::EngineKind::kSync, sim::EngineKind::kAsync, sim::EngineKind::kSync}) {
    sim::CampaignConfig cfg;
    cfg.id = "shared" + std::to_string(i);
    cfg.graph.family = "file";
    cfg.graph.path = store;
    cfg.engine = engine;
    cfg.mode = i == 2 ? core::Mode::kPush : core::Mode::kPushPull;
    cfg.trials = 12;
    cfg.seed = 40 + static_cast<std::uint64_t>(i);
    ++i;
    configs.push_back(std::move(cfg));
  }

  obs::Telemetry::Options telemetry_options;
  obs::Telemetry tel(telemetry_options);
  sim::CampaignOptions options;
  options.threads = 2;
  options.block_size = 4;
  options.telemetry = &tel;
  const auto results = sim::run_campaign(configs, options);
  for (const auto& r : results) EXPECT_EQ(r.n, 64u);
  const auto snapshot = tel.snapshot();
  EXPECT_EQ(snapshot.totals.graph_builds, 1u);
  EXPECT_EQ(snapshot.totals.graph_frees, 0u);  // the shared mapping is never per-config freed
  std::remove(store.c_str());
}

TEST(CampaignSpecParsing, GraphObjectFormParsesFileAndFamilyKinds) {
  const auto spec = parse(R"({"configs": [
    {"graph": {"kind": "file", "path": "/data/web.rgs"}, "engine": ["sync", "async"]},
    {"graph": {"kind": "chung_lu", "beta": 2.1, "average_degree": 6}, "n": 500}
  ]})");
  ASSERT_TRUE(spec.error.empty()) << spec.error;
  ASSERT_EQ(spec.configs.size(), 3u);
  EXPECT_EQ(spec.configs[0].graph.family, "file");
  EXPECT_EQ(spec.configs[0].graph.path, "/data/web.rgs");
  EXPECT_EQ(spec.configs[0].id, "file-web_sync_push-pull");  // id from the file stem
  EXPECT_EQ(spec.configs[1].id, "file-web_async_push-pull");
  EXPECT_EQ(spec.configs[2].graph.family, "chung_lu");
  EXPECT_DOUBLE_EQ(spec.configs[2].graph.beta, 2.1);
  EXPECT_DOUBLE_EQ(spec.configs[2].graph.average_degree, 6.0);
  EXPECT_EQ(spec.configs[2].graph.n, 500u);
}

TEST(CampaignSpecParsing, RejectsBadGraphObjects) {
  const struct {
    const char* text;
    const char* expect;
  } cases[] = {
      {R"({"configs": [{"graph": {"path": "x.rgs"}, "n": 8}]})", "kind"},
      {R"({"configs": [{"graph": {"kind": "file"}}]})", "path"},
      {R"({"configs": [{"graph": {"kind": "file", "path": "x.rgs"}, "n": 8}]})", "'n'"},
      {R"({"configs": [{"graph": {"kind": "file", "path": "x.rgs", "degree": 3}}]})",
       "not allowed with kind 'file'"},
      {R"({"configs": [{"graph": {"kind": "star", "path": "x.rgs"}, "n": 8}]})",
       "only allowed with kind 'file'"},
      {R"({"configs": [{"graph": {"kind": "star", "bogus": 1}, "n": 8}]})", "bogus"},
      {R"({"configs": [{"graph": 7, "n": 8}]})", "must be a family name"},
  };
  for (const auto& c : cases) {
    const auto spec = parse(c.text);
    ASSERT_FALSE(spec.error.empty()) << c.text;
    EXPECT_NE(spec.error.find(c.expect), std::string::npos) << spec.error;
  }
}
