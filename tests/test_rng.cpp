// Tests for rumor::rng — engine determinism, stream independence, and the
// statistical correctness of every variate generator the protocols rely on.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <vector>

#include "rng/discrete.hpp"
#include "rng/rng.hpp"

namespace rng = rumor::rng;

TEST(SplitMix64, IsDeterministic) {
  rng::SplitMix64 a(42);
  rng::SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  rng::SplitMix64 a(1);
  rng::SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, KnownVector) {
  // Reference values from the public-domain reference implementation with
  // seed 1234567.
  rng::SplitMix64 sm(1234567);
  const std::uint64_t first = sm.next();
  rng::SplitMix64 sm2(1234567);
  EXPECT_EQ(first, sm2.next());
  EXPECT_NE(first, sm.next());  // state advanced
}

TEST(Xoshiro, IsDeterministic) {
  rng::Xoshiro256pp a(7);
  rng::Xoshiro256pp b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, JumpProducesDisjointStream) {
  rng::Xoshiro256pp a(7);
  rng::Xoshiro256pp b(7);
  b.jump();
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(a.next());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(seen.contains(b.next()));
}

TEST(Xoshiro, LongJumpDiffersFromJump) {
  rng::Xoshiro256pp a(7);
  rng::Xoshiro256pp b(7);
  a.jump();
  b.long_jump();
  EXPECT_NE(a.next(), b.next());
}

TEST(DeriveStream, DistinctStreamsAreIndependent) {
  auto a = rng::derive_stream(5, 0);
  auto b = rng::derive_stream(5, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(DeriveStream, SameStreamReproduces) {
  auto a = rng::derive_stream(5, 3);
  auto b = rng::derive_stream(5, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(UniformBelow, RespectsBound) {
  auto eng = rng::derive_stream(11, 0);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng::uniform_below(eng, 7), 7u);
  }
}

TEST(UniformBelow, BoundOneAlwaysZero) {
  auto eng = rng::derive_stream(11, 1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng::uniform_below(eng, 1), 0u);
}

TEST(UniformBelow, IsApproximatelyUniform) {
  auto eng = rng::derive_stream(11, 2);
  constexpr std::uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::array<int, kBound> counts{};
  for (int i = 0; i < kSamples; ++i) ++counts[rng::uniform_below(eng, kBound)];
  // Chi-squared with 9 dof; 99.9% critical value ~ 27.9.
  double chi2 = 0.0;
  const double expected = kSamples / static_cast<double>(kBound);
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 27.9);
}

TEST(UniformRange, CoversInclusiveEndpoints) {
  auto eng = rng::derive_stream(11, 3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng::uniform_range(eng, 3, 5);
    EXPECT_GE(x, 3u);
    EXPECT_LE(x, 5u);
    saw_lo |= (x == 3);
    saw_hi |= (x == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Uniform01, InHalfOpenUnitInterval) {
  auto eng = rng::derive_stream(12, 0);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng::uniform01(eng);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Uniform01, MeanIsHalf) {
  auto eng = rng::derive_stream(12, 1);
  double sum = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += rng::uniform01(eng);
  EXPECT_NEAR(sum / kSamples, 0.5, 0.005);
}

TEST(Uniform01OpenLow, NeverZero) {
  auto eng = rng::derive_stream(12, 2);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng::uniform01_open_low(eng), 0.0);
}

TEST(Exponential, MeanMatchesRate) {
  auto eng = rng::derive_stream(13, 0);
  constexpr int kSamples = 200000;
  for (double rate : {0.5, 1.0, 4.0}) {
    double sum = 0.0;
    for (int i = 0; i < kSamples; ++i) sum += rng::exponential(eng, rate);
    EXPECT_NEAR(sum / kSamples, 1.0 / rate, 3.0 / (rate * std::sqrt(kSamples)));
  }
}

TEST(Exponential, IsNonNegative) {
  auto eng = rng::derive_stream(13, 1);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng::exponential(eng, 1.0), 0.0);
}

TEST(Exponential, MemorylessTail) {
  // P[X > 1] should be e^{-1} for rate 1.
  auto eng = rng::derive_stream(13, 2);
  constexpr int kSamples = 200000;
  int over = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (rng::exponential(eng, 1.0) > 1.0) ++over;
  }
  EXPECT_NEAR(static_cast<double>(over) / kSamples, std::exp(-1.0), 0.005);
}

TEST(Geometric, SupportStartsAtOne) {
  auto eng = rng::derive_stream(14, 0);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng::geometric(eng, 0.3), 1u);
}

TEST(Geometric, ProbabilityOneIsAlwaysOne) {
  auto eng = rng::derive_stream(14, 1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng::geometric(eng, 1.0), 1u);
}

TEST(Geometric, MeanIsOneOverP) {
  auto eng = rng::derive_stream(14, 2);
  constexpr int kSamples = 200000;
  for (double p : {0.1, 0.5, 0.9}) {
    double sum = 0.0;
    for (int i = 0; i < kSamples; ++i) sum += static_cast<double>(rng::geometric(eng, p));
    EXPECT_NEAR(sum / kSamples, 1.0 / p, 0.05 / p);
  }
}

TEST(Geometric, FirstTrialProbability) {
  auto eng = rng::derive_stream(14, 3);
  constexpr int kSamples = 200000;
  const double p = 0.37;
  int ones = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (rng::geometric(eng, p) == 1) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / kSamples, p, 0.005);
}

TEST(Poisson, SmallMean) {
  auto eng = rng::derive_stream(15, 0);
  constexpr int kSamples = 200000;
  const double mean = 3.5;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = static_cast<double>(rng::poisson(eng, mean));
    sum += x;
    sumsq += x * x;
  }
  const double m = sum / kSamples;
  EXPECT_NEAR(m, mean, 0.03);
  EXPECT_NEAR(sumsq / kSamples - m * m, mean, 0.1);  // Var = mean for Poisson
}

TEST(Poisson, LargeMeanUsesRejectionPath) {
  auto eng = rng::derive_stream(15, 1);
  constexpr int kSamples = 100000;
  const double mean = 120.0;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = static_cast<double>(rng::poisson(eng, mean));
    sum += x;
    sumsq += x * x;
  }
  const double m = sum / kSamples;
  EXPECT_NEAR(m, mean, 0.5);
  EXPECT_NEAR(sumsq / kSamples - m * m, mean, 5.0);
}

TEST(Poisson, ZeroMeanIsZero) {
  auto eng = rng::derive_stream(15, 2);
  EXPECT_EQ(rng::poisson(eng, 0.0), 0u);
}

TEST(AliasTable, EmptyWeights) {
  rng::AliasTable table((std::vector<double>{}));
  EXPECT_TRUE(table.empty());
}

TEST(AliasTable, AllZeroWeights) {
  std::vector<double> w{0.0, 0.0};
  rng::AliasTable table(w);
  EXPECT_TRUE(table.empty());
}

TEST(AliasTable, SingleWeight) {
  std::vector<double> w{2.5};
  rng::AliasTable table(w);
  auto eng = rng::derive_stream(16, 0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.sample(eng), 0u);
}

TEST(AliasTable, MatchesWeights) {
  std::vector<double> w{1.0, 2.0, 3.0, 4.0};
  rng::AliasTable table(w);
  auto eng = rng::derive_stream(16, 1);
  constexpr int kSamples = 400000;
  std::array<int, 4> counts{};
  for (int i = 0; i < kSamples; ++i) ++counts[table.sample(eng)];
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / kSamples, w[i] / 10.0, 0.005);
  }
}

TEST(AliasTable, HandlesZeroWeightEntries) {
  std::vector<double> w{0.0, 5.0, 0.0};
  rng::AliasTable table(w);
  auto eng = rng::derive_stream(16, 2);
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(table.sample(eng), 1u);
}

TEST(SampleWeightedOnce, MatchesWeights) {
  std::vector<double> w{3.0, 1.0};
  auto eng = rng::derive_stream(16, 3);
  constexpr int kSamples = 100000;
  int zeros = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (rng::sample_weighted_once(eng, std::span<const double>(w)) == 0) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / kSamples, 0.75, 0.01);
}

TEST(Shuffle, IsAPermutation) {
  auto eng = rng::derive_stream(17, 0);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng::shuffle(eng, std::span<int>(v));
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Shuffle, FirstPositionIsUniform) {
  auto eng = rng::derive_stream(17, 1);
  constexpr int kSamples = 60000;
  std::array<int, 3> counts{};
  for (int i = 0; i < kSamples; ++i) {
    std::vector<int> v{0, 1, 2};
    rng::shuffle(eng, std::span<int>(v));
    ++counts[static_cast<std::size_t>(v[0])];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kSamples, 1.0 / 3.0, 0.01);
  }
}
