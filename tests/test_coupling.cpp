// Tests for the two coupling constructions:
//
//   * run_pull_coupling (Lemmas 9/10): joint execution of ppx/ppy/pp-a on
//     shared randomness; checks the proofs' pathwise affine inequalities and
//     that the coupled marginals match the standalone engines.
//   * run_block_coupling (Section 5): the Lemma 13 subset invariant, the
//     block accounting of Lemma 14, and the resulting Theorem 11 shape.
#include <gtest/gtest.h>

#include <cmath>

#include "core/coupling_blocks.hpp"
#include "core/coupling_pull.hpp"
#include "core/sync.hpp"
#include "dist/distributions.hpp"
#include "graph/generators.hpp"
#include "rng/rng.hpp"
#include "sim/harness.hpp"

using namespace rumor;

namespace {

graph::Graph test_graph(int which) {
  switch (which) {
    case 0: return graph::hypercube(6);
    case 1: return graph::complete(64);
    case 2: return graph::star(128);
    case 3: return graph::cycle(48);
    case 4: return graph::complete_binary_tree(127);
    default: return graph::torus(8);
  }
}

}  // namespace

// --- Pull coupling (Lemmas 9/10) ----------------------------------------------

TEST(PullCoupling, CompletesAndSourceAtZero) {
  auto eng = rng::derive_stream(5050, 0);
  const auto g = graph::hypercube(6);
  const auto run = core::run_pull_coupling(g, 0, eng);
  ASSERT_TRUE(run.completed);
  EXPECT_EQ(run.round_ppx[0], 0u);
  EXPECT_EQ(run.round_ppy[0], 0u);
  EXPECT_DOUBLE_EQ(run.time_ppa[0], 0.0);
  EXPECT_GT(run.ppx_rounds(), 0u);
  EXPECT_GT(run.ppy_rounds(), 0u);
  EXPECT_GT(run.ppa_time(), 0.0);
}

TEST(PullCoupling, DeterministicGivenSeed) {
  const auto g = graph::torus(6);
  auto a_eng = rng::derive_stream(5050, 1);
  auto b_eng = rng::derive_stream(5050, 1);
  const auto a = core::run_pull_coupling(g, 0, a_eng);
  const auto b = core::run_pull_coupling(g, 0, b_eng);
  EXPECT_EQ(a.round_ppx, b.round_ppx);
  EXPECT_EQ(a.round_ppy, b.round_ppy);
  EXPECT_EQ(a.time_ppa, b.time_ppa);
}

class PullCouplingInequalities : public ::testing::TestWithParam<int> {};

// Lemma 9's conclusion, per node and pathwise: r'_v <= 2 r_v + O(log n)
// with high probability. We run many coupled executions and require the
// affine bound (constant 12 on the log) to hold for every node in at least
// 98% of runs.
TEST_P(PullCouplingInequalities, PpyWithinAffineOfPpx) {
  const auto g = test_graph(GetParam());
  const double logn = std::log(static_cast<double>(g.num_nodes()));
  int violations = 0;
  constexpr int kRuns = 50;
  for (int i = 0; i < kRuns; ++i) {
    auto eng = rng::derive_stream(5151, static_cast<std::uint64_t>(i));
    const auto run = core::run_pull_coupling(g, 0, eng);
    ASSERT_TRUE(run.completed);
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      const double rx = static_cast<double>(run.round_ppx[v]);
      const double ry = static_cast<double>(run.round_ppy[v]);
      if (ry > 2.0 * rx + 12.0 * logn) {
        ++violations;
        break;
      }
    }
  }
  EXPECT_LE(violations, 1) << g.name();
}

// Lemma 10's conclusion: t_v <= 4 r'_v + O(log n) pathwise whp.
TEST_P(PullCouplingInequalities, AsyncWithinAffineOfPpy) {
  const auto g = test_graph(GetParam());
  const double logn = std::log(static_cast<double>(g.num_nodes()));
  int violations = 0;
  constexpr int kRuns = 50;
  for (int i = 0; i < kRuns; ++i) {
    auto eng = rng::derive_stream(5252, static_cast<std::uint64_t>(i));
    const auto run = core::run_pull_coupling(g, 0, eng);
    ASSERT_TRUE(run.completed);
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      const double ry = static_cast<double>(run.round_ppy[v]);
      if (run.time_ppa[v] > 4.0 * ry + 12.0 * logn) {
        ++violations;
        break;
      }
    }
  }
  EXPECT_LE(violations, 1) << g.name();
}

INSTANTIATE_TEST_SUITE_P(Graphs, PullCouplingInequalities, ::testing::Range(0, 6));

// The coupled ppx must have the same *marginal* law as the standalone ppx
// engine (and likewise ppy) — this is the "coupling is valid" claim of
// Lemma 9's proof, checked by two-sample KS.
TEST(PullCoupling, CoupledPpxMarginalMatchesStandalone) {
  const auto g = graph::hypercube(6);
  constexpr int kTrials = 400;
  std::vector<double> coupled;
  for (int i = 0; i < kTrials; ++i) {
    auto eng = rng::derive_stream(5353, static_cast<std::uint64_t>(i));
    const auto run = core::run_pull_coupling(g, 0, eng);
    coupled.push_back(static_cast<double>(run.ppx_rounds()));
  }
  sim::TrialConfig config;
  config.trials = kTrials;
  config.seed = 5354;
  const auto standalone = sim::measure_aux(g, 0, core::AuxKind::kPpx, config);
  const double ks =
      dist::ks_statistic(dist::Ecdf(coupled), dist::Ecdf(standalone.samples()));
  EXPECT_LT(ks, 0.14);  // 99.9% two-sample critical value at n=m=400
}

TEST(PullCoupling, CoupledPpyMarginalMatchesStandalone) {
  const auto g = graph::hypercube(6);
  constexpr int kTrials = 400;
  std::vector<double> coupled;
  for (int i = 0; i < kTrials; ++i) {
    auto eng = rng::derive_stream(5355, static_cast<std::uint64_t>(i));
    const auto run = core::run_pull_coupling(g, 0, eng);
    coupled.push_back(static_cast<double>(run.ppy_rounds()));
  }
  sim::TrialConfig config;
  config.trials = kTrials;
  config.seed = 5356;
  const auto standalone = sim::measure_aux(g, 0, core::AuxKind::kPpy, config);
  const double ks =
      dist::ks_statistic(dist::Ecdf(coupled), dist::Ecdf(standalone.samples()));
  EXPECT_LT(ks, 0.14);
}

// The coupled pp-a must match the direct asynchronous engine.
TEST(PullCoupling, CoupledAsyncMarginalMatchesEngine) {
  const auto g = graph::hypercube(6);
  constexpr int kTrials = 400;
  std::vector<double> coupled;
  for (int i = 0; i < kTrials; ++i) {
    auto eng = rng::derive_stream(5357, static_cast<std::uint64_t>(i));
    const auto run = core::run_pull_coupling(g, 0, eng);
    coupled.push_back(run.ppa_time());
  }
  sim::TrialConfig config;
  config.trials = kTrials;
  config.seed = 5358;
  const auto engine = sim::measure_async(g, 0, core::Mode::kPushPull, config);
  const double ks =
      dist::ks_statistic(dist::Ecdf(coupled), dist::Ecdf(engine.samples()));
  EXPECT_LT(ks, 0.14);
}

// --- Block coupling (Section 5) -------------------------------------------------

class BlockCouplingInvariants : public ::testing::TestWithParam<int> {};

TEST_P(BlockCouplingInvariants, CompletesAndSubsetInvariantHolds) {
  const auto g = test_graph(GetParam());
  for (int i = 0; i < 20; ++i) {
    auto eng = rng::derive_stream(6060, static_cast<std::uint64_t>(i));
    const auto stats = core::run_block_coupling(g, 0, eng);
    ASSERT_TRUE(stats.completed) << g.name();
    EXPECT_TRUE(stats.subset_invariant_held) << g.name() << " run " << i;  // Lemma 13
    EXPECT_GE(stats.steps, g.num_nodes() - 1u);  // each step informs <= 1 node
    EXPECT_GT(stats.rounds, 0u);
  }
}

TEST_P(BlockCouplingInvariants, BlockAccountingIsConsistent) {
  const auto g = test_graph(GetParam());
  auto eng = rng::derive_stream(6161, static_cast<std::uint64_t>(GetParam()));
  const auto stats = core::run_block_coupling(g, 0, eng);
  ASSERT_TRUE(stats.completed);
  // Every special block stems from a right-incompatible closure.
  EXPECT_LE(stats.special_blocks, stats.right_blocks);
  EXPECT_GE(stats.special_rounds, stats.special_blocks);  // each consumes >= 1 round
  // Rounds decompose into normal-block rounds (1 each) + special rounds.
  const std::uint64_t normal_blocks =
      stats.full_blocks + stats.left_blocks + stats.right_blocks;
  EXPECT_LE(stats.rounds, normal_blocks + stats.special_rounds + 1);
  // pp completes no later than pp-a under the coupling (Lemma 13).
  EXPECT_NE(stats.sync_rounds_to_complete, core::kNeverRound);
  EXPECT_LE(stats.sync_rounds_to_complete, stats.rounds);
}

INSTANTIATE_TEST_SUITE_P(Graphs, BlockCouplingInvariants, ::testing::Range(0, 6));

TEST(BlockCoupling, DeterministicGivenSeed) {
  const auto g = graph::torus(6);
  auto a_eng = rng::derive_stream(6262, 0);
  auto b_eng = rng::derive_stream(6262, 0);
  const auto a = core::run_block_coupling(g, 0, a_eng);
  const auto b = core::run_block_coupling(g, 0, b_eng);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_DOUBLE_EQ(a.async_time, b.async_time);
}

TEST(BlockCoupling, RespectsCustomBlockCapacity) {
  const auto g = graph::hypercube(5);
  auto eng = rng::derive_stream(6263, 0);
  core::BlockCouplingOptions opts;
  opts.block_capacity = 1;  // every block is full after one step
  const auto stats = core::run_block_coupling(g, 0, eng, opts);
  ASSERT_TRUE(stats.completed);
  // With capacity 1 nothing can be left/right-incompatible inside a block.
  EXPECT_EQ(stats.left_blocks, 0u);
  EXPECT_EQ(stats.right_blocks, 0u);
  // Every round comes from a full single-step block, except possibly the
  // final block, which the end of the run can truncate.
  EXPECT_GE(stats.rounds, stats.full_blocks);
  EXPECT_LE(stats.rounds, stats.full_blocks + 1);
}

// Lemma 14's shape: E[rho_tau] = O(E[tau]/sqrt(n) + sqrt(n)). We measure the
// averages and require the measured constant to be modest.
TEST(BlockCoupling, Lemma14RoundsBound) {
  const auto g = graph::hypercube(7);  // n = 128
  const double sqrt_n = std::sqrt(128.0);
  double avg_rounds = 0.0;
  double avg_budget = 0.0;
  constexpr int kRuns = 40;
  for (int i = 0; i < kRuns; ++i) {
    auto eng = rng::derive_stream(6364, static_cast<std::uint64_t>(i));
    const auto stats = core::run_block_coupling(g, 0, eng);
    ASSERT_TRUE(stats.completed);
    avg_rounds += static_cast<double>(stats.rounds);
    avg_budget += static_cast<double>(stats.steps) / sqrt_n + sqrt_n;
  }
  avg_rounds /= kRuns;
  avg_budget /= kRuns;
  EXPECT_LE(avg_rounds, 8.0 * avg_budget);
}

// The special-block analysis bounds E[rho_special] <= 2 sqrt(n) for *any* t.
TEST(BlockCoupling, SpecialRoundsAreOrderSqrtN) {
  const auto g = graph::complete(256);  // dense: the hardest case for specials
  double avg_special = 0.0;
  constexpr int kRuns = 30;
  for (int i = 0; i < kRuns; ++i) {
    auto eng = rng::derive_stream(6465, static_cast<std::uint64_t>(i));
    const auto stats = core::run_block_coupling(g, 0, eng);
    ASSERT_TRUE(stats.completed);
    avg_special += static_cast<double>(stats.special_rounds);
  }
  avg_special /= kRuns;
  EXPECT_LE(avg_special, 8.0 * std::sqrt(256.0));
}

// Theorem 11 shape via the coupling: E[T(pp)] = O(sqrt(n) E[T(pp-a)] + sqrt(n)).
TEST(BlockCoupling, Theorem11Shape) {
  const auto g = graph::hypercube(7);
  double avg_sync = 0.0;
  double avg_async = 0.0;
  constexpr int kRuns = 40;
  for (int i = 0; i < kRuns; ++i) {
    auto eng = rng::derive_stream(6566, static_cast<std::uint64_t>(i));
    const auto stats = core::run_block_coupling(g, 0, eng);
    ASSERT_TRUE(stats.completed);
    avg_sync += static_cast<double>(stats.sync_rounds_to_complete);
    avg_async += stats.async_time;
  }
  avg_sync /= kRuns;
  avg_async /= kRuns;
  const double sqrt_n = std::sqrt(128.0);
  EXPECT_LE(avg_sync, 8.0 * (sqrt_n * avg_async + sqrt_n));
}
