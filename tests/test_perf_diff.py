#!/usr/bin/env python3
"""CTest-invoked CLI checks for tools/perf_diff.py.

Covers the previously untested ``--normalize`` mode plus the exit-code
contract the CI perf-trajectory job relies on (0 = within tolerance,
1 = regression, 2 = bad input) and the hp-time columns of the spreading-time
gate. Fixture reports are generated here, in the experiment report schema.

Usage: test_perf_diff.py /path/to/perf_diff.py
"""

import json
import subprocess
import sys
import tempfile
import os


def e9_report(rows):
    return {
        "experiment": "e9_micro",
        "params": {"trials": 8},
        "rows": [
            {"primitive": name, "iterations": 1000, "ns_per_op": ns}
            for name, ns in rows.items()
        ],
    }


def e1_report(families):
    return {
        "experiment": "e1_overview",
        "params": {"trials": 8},
        "rows": [dict({"graph": name, "n": 64}, **metrics) for name, metrics in families.items()],
    }


def write(tmp, name, doc):
    path = os.path.join(tmp, name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return path


def run(perf_diff, *args):
    proc = subprocess.run(
        [sys.executable, perf_diff, *args], capture_output=True, text=True
    )
    return proc.returncode, proc.stdout + proc.stderr


def check(condition, message, output=""):
    if not condition:
        print(f"FAIL: {message}\n{output}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {message}")


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    perf_diff = sys.argv[1]

    with tempfile.TemporaryDirectory() as tmp:
        # Baseline machine: rng_next 2 ns, engine 10 ns -> relative cost 5.
        base = write(tmp, "base.json", [e9_report({"rng_next": 2.0, "engine": 10.0})])

        # A 3x-faster machine, same relative cost: raw ratio 0.33x, and the
        # normalized gate must agree at any tolerance.
        faster = write(tmp, "faster.json", [e9_report({"rng_next": 0.667, "engine": 3.33})])
        code, out = run(perf_diff, faster, base, "--normalize", "rng_next", "--tolerance", "1.1")
        check(code == 0, "hardware scaling cancels under --normalize", out)

        # A genuine relative regression hidden by fast hardware: rng_next
        # twice as fast, the engine the same speed -> raw 1.0x (passes even
        # at 2x) but relative cost doubled (10 vs 5) -> normalized fails.
        hidden = write(tmp, "hidden.json", [e9_report({"rng_next": 1.0, "engine": 10.0})])
        code, out = run(perf_diff, hidden, base, "--tolerance", "2.0")
        check(code == 0, "raw gate misses the relative regression", out)
        code, out = run(perf_diff, hidden, base, "--normalize", "rng_next", "--tolerance", "1.8")
        check(code == 1, "--normalize catches it (exit 1)", out)
        check("REGRESSION" in out, "regression is flagged in the table", out)

        # Normalizing by a primitive absent from a report is bad input (2),
        # and the diagnostic names the offending file, not just "current".
        code, out = run(perf_diff, hidden, base, "--normalize", "no_such_primitive")
        check(code == 2, "unknown --normalize primitive exits 2", out)
        check("hidden.json" in out, "normalize diagnostic names the report file", out)
        check("no_such_primitive" in out, "normalize diagnostic names the primitive", out)

        # A baseline primitive timed at 0 ns is corrupt input, not an
        # infinite regression: exit 2 naming path and primitive (this used
        # to exit 1 with an inf-ratio REGRESSION row).
        zero_ns = write(tmp, "zero_ns.json", [e9_report({"rng_next": 2.0, "engine": 0.0})])
        code, out = run(perf_diff, hidden, zero_ns)
        check(code == 2, "baseline ns_per_op == 0 exits 2, not 1", out)
        check("zero_ns.json" in out and "engine" in out,
              "zero-ns diagnostic names the file and primitive", out)

        # A zero-row report gates nothing: bad input (2), never a vacuous
        # "all 0 primitives within tolerance" pass.
        empty_e9 = write(tmp, "empty_e9.json", [e9_report({})])
        code, out = run(perf_diff, hidden, empty_e9)
        check(code == 2, "zero-row e9 baseline exits 2", out)
        check("empty_e9.json" in out and "no rows" in out,
              "zero-row diagnostic names the file", out)
        code, out = run(perf_diff, empty_e9, base)
        check(code == 2, "zero-row e9 current report exits 2", out)
        empty_e1 = write(tmp, "empty_e1.json", [e1_report({})])
        code, out = run(perf_diff, hidden, base, "--times", empty_e1)
        check(code == 2, "zero-row e1 times baseline exits 2", out)

        # Spreading times: means fine, hp-time quantile drifted -> exit 1.
        times_base = write(
            tmp,
            "times_base.json",
            [e1_report({"star": {"sync_mean": 4.0, "async_mean": 6.0,
                                 "sync_hp_time": 5.0, "async_hp_time": 8.0}})],
        )
        drifted = write(
            tmp,
            "drifted.json",
            [
                e9_report({"rng_next": 2.0, "engine": 10.0}),
                e1_report({"star": {"sync_mean": 4.0, "async_mean": 6.0,
                                    "sync_hp_time": 9.0, "async_hp_time": 8.0}}),
            ],
        )
        code, out = run(perf_diff, drifted, base, "--times", times_base, "--time-tolerance", "1.25")
        check(code == 1, "hp-time drift fails the times gate", out)
        check("sync_hp_time" in out, "the drifting metric is named", out)

        # Same report within tolerance everywhere -> exit 0.
        clean = write(
            tmp,
            "clean.json",
            [
                e9_report({"rng_next": 2.0, "engine": 10.0}),
                e1_report({"star": {"sync_mean": 4.0, "async_mean": 6.0,
                                    "sync_hp_time": 5.0, "async_hp_time": 8.0}}),
            ],
        )
        code, out = run(
            perf_diff, clean, base,
            "--normalize", "rng_next", "--tolerance", "1.1",
            "--times", times_base, "--time-tolerance", "1.25",
        )
        check(code == 0, "clean report passes every gate", out)

        # A baseline without hp-time columns still gates the means it has.
        old_times = write(
            tmp, "old_times.json", [e1_report({"star": {"sync_mean": 4.0, "async_mean": 6.0}})]
        )
        code, out = run(perf_diff, clean, base, "--times", old_times)
        check(code == 0, "means-only baseline stays compatible", out)

        # Missing files are bad input (2), never a silent pass.
        code, out = run(perf_diff, os.path.join(tmp, "nope.json"), base)
        check(code == 2, "missing report exits 2", out)

    print("test_perf_diff: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
