// Checkpoint / shard / merge tests for sim/checkpoint.hpp: the snapshot
// layer must extend the campaign determinism contract across interruptions
// (a resumed run is bit-identical to an unbroken one at any thread count),
// partition blocks across shards deterministically, and fold shard
// snapshots back into reports bit-identical to the unsharded run — while
// rejecting every identity mismatch loudly instead of merging garbage.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/graph_store.hpp"
#include "sim/campaign.hpp"
#include "sim/checkpoint.hpp"
#include "sim/experiment.hpp"

using namespace rumor;

namespace {

std::shared_ptr<const graph::Graph> shared(graph::Graph g) {
  return std::make_shared<const graph::Graph>(std::move(g));
}

/// A compact campaign exercising every block kind the snapshot layer
/// handles: two plain cells, a worst-source race, and a churn cell.
std::vector<sim::CampaignConfig> snapshot_configs() {
  static const auto kHypercube = shared(graph::hypercube(6));
  static const auto kStar = shared(graph::star(96));
  std::vector<sim::CampaignConfig> configs;

  sim::CampaignConfig plain;
  plain.id = "plain_hc";
  plain.prebuilt = kHypercube;
  plain.trials = 24;
  plain.seed = 501;
  configs.push_back(plain);

  sim::CampaignConfig async_cfg;
  async_cfg.id = "plain_star_async";
  async_cfg.prebuilt = kStar;
  async_cfg.engine = sim::EngineKind::kAsync;
  async_cfg.trials = 24;
  async_cfg.seed = 502;
  configs.push_back(async_cfg);

  sim::CampaignConfig race;
  race.id = "race_star";
  race.prebuilt = kStar;
  race.source_policy = sim::SourcePolicy::kRace;
  race.race.screen_trials = 6;
  race.race.finalists = 2;
  race.race.max_candidates = 6;
  race.trials = 16;
  race.seed = 503;
  configs.push_back(race);

  sim::CampaignConfig churn;
  churn.id = "churn_hc";
  churn.prebuilt = kHypercube;
  churn.dynamics.churn.model = dynamics::ChurnModel::kMarkov;
  churn.dynamics.churn.birth = 0.1;
  churn.dynamics.churn.death = 0.1;
  churn.trials = 16;
  churn.seed = 504;
  configs.push_back(churn);

  return configs;
}

sim::CampaignOptions snapshot_options(unsigned threads) {
  sim::CampaignOptions options;
  options.threads = threads;
  options.block_size = 8;
  return options;
}

/// All reported statistics of one result, for exact cross-run comparison.
std::vector<double> result_stats(const sim::CampaignResult& r) {
  const auto& s = r.summary;
  std::vector<double> out = {static_cast<double>(s.count()),
                             s.mean(),
                             s.stddev(),
                             s.min(),
                             s.max(),
                             s.median(),
                             s.quantile(0.95),
                             s.hp_time(r.hp_q)};
  for (const auto& [tag, value] : s.reservoir().entries()) {
    out.push_back(static_cast<double>(tag));
    out.push_back(value);
  }
  return out;
}

void expect_bitwise_equal(const std::vector<sim::CampaignResult>& got,
                          const std::vector<sim::CampaignResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id);
    EXPECT_EQ(got[i].graph_name, want[i].graph_name) << got[i].id;
    EXPECT_EQ(got[i].n, want[i].n) << got[i].id;
    EXPECT_EQ(got[i].trials, want[i].trials) << got[i].id;
    EXPECT_EQ(got[i].source, want[i].source) << got[i].id;
    EXPECT_EQ(got[i].best_source, want[i].best_source) << got[i].id;
    EXPECT_EQ(got[i].best_mean, want[i].best_mean) << got[i].id;
    EXPECT_EQ(result_stats(got[i]), result_stats(want[i])) << got[i].id;
  }
}

/// Expects `fn` to throw std::runtime_error whose message contains `needle`.
template <typename Fn>
void expect_throws_with(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected a runtime_error mentioning '" << needle << "'";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
  }
}

}  // namespace

// --- The shard partition rule ------------------------------------------------

TEST(CampaignCheckpoint, ShardRuleIsDeterministicAndCoversEveryShard) {
  // Pure function of its arguments.
  for (std::size_t slot = 0; slot < 16; ++slot) {
    EXPECT_EQ(sim::shard_of_block("cfg_a", slot, false, 4),
              sim::shard_of_block("cfg_a", slot, false, 4));
  }
  // whole_config ignores the slot: every block of a race stays together.
  for (std::size_t slot = 1; slot < 16; ++slot) {
    EXPECT_EQ(sim::shard_of_block("cfg_a", slot, true, 4),
              sim::shard_of_block("cfg_a", 0, true, 4));
  }
  // k = 1 owns everything.
  for (std::size_t slot = 0; slot < 16; ++slot) {
    EXPECT_EQ(sim::shard_of_block("cfg_a", slot, false, 1), 0u);
  }
  // Over many (config, slot) pairs every shard gets work and results stay
  // in range — the partition neither clumps onto one shard nor escapes k.
  std::set<std::uint32_t> seen;
  for (int cfg = 0; cfg < 8; ++cfg) {
    for (std::size_t slot = 0; slot < 32; ++slot) {
      const std::uint32_t s = sim::shard_of_block("cfg" + std::to_string(cfg), slot, false, 4);
      ASSERT_LT(s, 4u);
      seen.insert(s);
    }
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(CampaignCheckpoint, FingerprintReflectsEveryResultAffectingParameter) {
  const auto base = snapshot_configs();
  const std::string h = sim::campaign_fingerprint("snap", base);
  EXPECT_EQ(h.size(), 16u);
  EXPECT_EQ(h, sim::campaign_fingerprint("snap", snapshot_configs()));
  EXPECT_NE(h, sim::campaign_fingerprint("other-name", base));

  auto seed = base;
  seed[0].seed += 1;
  EXPECT_NE(h, sim::campaign_fingerprint("snap", seed));
  auto trials = base;
  trials[1].trials += 8;
  EXPECT_NE(h, sim::campaign_fingerprint("snap", trials));
  auto race = base;
  race[2].race.finalists += 1;
  EXPECT_NE(h, sim::campaign_fingerprint("snap", race));
  auto dyn = base;
  dyn[3].dynamics.churn.death = 0.2;
  EXPECT_NE(h, sim::campaign_fingerprint("snap", dyn));
}

// --- Stop / resume bit-identity ----------------------------------------------

TEST(CampaignCheckpoint, StopAndResumeIsBitIdenticalAcrossThreadCounts) {
  const auto configs = snapshot_configs();
  const auto baseline = sim::run_campaign(configs, snapshot_options(1));

  // An unbroken resumable run already matches the plain scheduler.
  const auto unbroken = sim::run_campaign_resumable(configs, snapshot_options(2), "snap");
  ASSERT_TRUE(unbroken.complete);
  expect_bitwise_equal(unbroken.results, baseline);

  for (const std::uint64_t stop_after : {std::uint64_t{1}, std::uint64_t{4}, std::uint64_t{9}}) {
    auto options = snapshot_options(2);
    options.stop_after_blocks = stop_after;
    const auto stopped = sim::run_campaign_resumable(configs, options, "snap");
    ASSERT_FALSE(stopped.complete);
    EXPECT_GE(stopped.blocks_done, stop_after);
    ASSERT_TRUE(stopped.snapshot.is_object());

    for (const unsigned threads : {1u, 2u, 8u}) {
      const auto resumed = sim::run_campaign_resumable(configs, snapshot_options(threads), "snap",
                                                       &stopped.snapshot);
      ASSERT_TRUE(resumed.complete) << "stop_after=" << stop_after << " threads=" << threads;
      expect_bitwise_equal(resumed.results, baseline);
    }
  }
}

TEST(CampaignCheckpoint, ResumingAFinishedSnapshotRestoresResultsVerbatim) {
  const auto configs = snapshot_configs();
  const auto done = sim::run_campaign_resumable(configs, snapshot_options(2), "snap");
  ASSERT_TRUE(done.complete);
  const auto resumed =
      sim::run_campaign_resumable(configs, snapshot_options(4), "snap", &done.snapshot);
  ASSERT_TRUE(resumed.complete);
  expect_bitwise_equal(resumed.results, done.results);
}

TEST(CampaignCheckpoint, CheckpointFileRoundTripsThroughDisk) {
  const auto configs = snapshot_configs();
  const std::string path = testing::TempDir() + "campaign_ck_roundtrip.json";
  std::remove(path.c_str());

  auto options = snapshot_options(2);
  options.checkpoint_file = path;
  options.checkpoint_every = 2;
  options.stop_after_blocks = 5;
  const auto stopped = sim::run_campaign_resumable(configs, options, "snap");
  ASSERT_FALSE(stopped.complete);

  std::ifstream file(path, std::ios::binary);
  ASSERT_TRUE(file.good()) << "checkpoint file missing: " << path;
  std::string text((std::istreambuf_iterator<char>(file)), std::istreambuf_iterator<char>());
  const auto doc = sim::Json::parse(text);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("format")->as_string(), sim::kSnapshotFormat);
  EXPECT_EQ(doc->find("finished")->type(), sim::Json::Type::kBool);
  EXPECT_FALSE(doc->find("finished")->as_bool());

  // No temp litter from the atomic writes.
  const std::string base = std::filesystem::path(path).filename().string();
  for (const auto& entry : std::filesystem::directory_iterator(testing::TempDir())) {
    EXPECT_NE(entry.path().filename().string().rfind(base + ".tmp", 0), 0u)
        << "leftover temp file: " << entry.path();
  }

  const auto resumed = sim::run_campaign_resumable(configs, snapshot_options(2), "snap", &*doc);
  ASSERT_TRUE(resumed.complete);
  expect_bitwise_equal(resumed.results, sim::run_campaign(configs, snapshot_options(1)));
  std::remove(path.c_str());
}

// --- Resume validation -------------------------------------------------------

TEST(CampaignCheckpoint, ResumeRejectsEveryIdentityMismatch) {
  const auto configs = snapshot_configs();
  auto options = snapshot_options(2);
  options.stop_after_blocks = 3;
  const auto stopped = sim::run_campaign_resumable(configs, options, "snap");
  ASSERT_FALSE(stopped.complete);
  const sim::Json& snap = stopped.snapshot;

  auto resume_with = [&](const sim::Json& doc) {
    return [&configs, doc] {
      (void)sim::run_campaign_resumable(configs, snapshot_options(1), "snap", &doc);
    };
  };

  sim::Json wrong_name = snap;
  wrong_name.set("campaign", "other");
  expect_throws_with(resume_with(wrong_name), "campaign");

  sim::Json wrong_hash = snap;
  wrong_hash.set("spec_hash", "0000000000000000");
  expect_throws_with(resume_with(wrong_hash), "spec hash");

  sim::Json wrong_block = snap;
  wrong_block.set("block_size", 16);
  expect_throws_with(resume_with(wrong_block), "block size");

  sim::Json wrong_shard = snap;
  wrong_shard.set("shard_index", 2);
  wrong_shard.set("shard_count", 2);
  expect_throws_with(resume_with(wrong_shard), "shard");

  sim::Json wrong_version = snap;
  wrong_version.set("version", sim::kSnapshotVersion + 1);
  expect_throws_with(resume_with(wrong_version), "version");

  sim::Json wrong_format = snap;
  wrong_format.set("format", "something-else");
  expect_throws_with(resume_with(wrong_format), "format");

  // A changed spec (different seed) under an unmodified snapshot must be
  // caught by the fingerprint even though the shape still matches.
  auto reseeded = configs;
  reseeded[0].seed += 1;
  expect_throws_with(
      [&] { (void)sim::run_campaign_resumable(reseeded, snapshot_options(1), "snap", &snap); },
      "spec hash");
}

TEST(CampaignCheckpoint, RecordedCampaignsRejectDuplicateConfigIds) {
  auto configs = snapshot_configs();
  configs[1].id = configs[0].id;
  expect_throws_with([&] { (void)sim::run_campaign_resumable(configs, snapshot_options(1), "snap"); },
                     configs[0].id);
  // The plain scheduler still accepts them: nothing addresses by id there.
  EXPECT_NO_THROW((void)sim::run_campaign(configs, snapshot_options(2)));
}

// --- Spread telemetry through the snapshot layer -----------------------------

namespace {

/// Two curve-enabled cells (round grid + time grid) small enough to stop
/// mid-run at block granularity.
std::vector<sim::CampaignConfig> curve_snapshot_configs() {
  static const auto kHypercube = shared(graph::hypercube(6));
  static const auto kStar = shared(graph::star(96));
  std::vector<sim::CampaignConfig> configs;

  sim::CampaignConfig sync_cfg;
  sync_cfg.id = "curves_hc_sync";
  sync_cfg.prebuilt = kHypercube;
  sync_cfg.trials = 24;
  sync_cfg.seed = 601;
  sync_cfg.curves.enabled = true;
  sync_cfg.curves.points = 32;
  configs.push_back(sync_cfg);

  sim::CampaignConfig async_cfg;
  async_cfg.id = "curves_star_async";
  async_cfg.prebuilt = kStar;
  async_cfg.engine = sim::EngineKind::kAsync;
  async_cfg.trials = 24;
  async_cfg.seed = 602;
  async_cfg.curves.enabled = true;
  async_cfg.curves.points = 32;
  async_cfg.curves.time_bucket = 0.25;
  configs.push_back(async_cfg);

  return configs;
}

/// The full serialized curve state plus contact totals, for exact
/// cross-run comparison.
std::vector<double> curve_stats(const sim::CampaignResult& r) {
  const auto s = r.curves.state();
  std::vector<double> out = {static_cast<double>(s.trials), static_cast<double>(s.max_len)};
  for (const auto& m : s.moments) {
    out.push_back(static_cast<double>(m.count));
    out.insert(out.end(), {m.mean, m.m2, m.min, m.max});
  }
  for (const auto& sk : s.sketches) {
    out.push_back(static_cast<double>(sk.count));
    for (const auto& level : sk.levels) {
      out.push_back(level.keep_odd ? 1.0 : 0.0);
      out.insert(out.end(), level.items.begin(), level.items.end());
    }
  }
  for (const std::uint64_t v : {r.contacts.contacts, r.contacts.useful_push,
                                r.contacts.useful_pull, r.contacts.wasted_push,
                                r.contacts.wasted_pull, r.contacts.empty_contacts,
                                r.contacts.ticks, r.contacts.informed_total}) {
    out.push_back(static_cast<double>(v));
  }
  return out;
}

}  // namespace

TEST(CampaignCheckpoint, CurvesSurviveStopResumeBitIdentically) {
  const auto configs = curve_snapshot_configs();
  const auto baseline = sim::run_campaign(configs, snapshot_options(1));

  auto options = snapshot_options(2);
  options.stop_after_blocks = 2;
  const auto stopped = sim::run_campaign_resumable(configs, options, "snap");
  ASSERT_FALSE(stopped.complete);

  for (const unsigned threads : {1u, 8u}) {
    const auto resumed = sim::run_campaign_resumable(configs, snapshot_options(threads), "snap",
                                                     &stopped.snapshot);
    ASSERT_TRUE(resumed.complete) << "threads=" << threads;
    expect_bitwise_equal(resumed.results, baseline);
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_EQ(curve_stats(resumed.results[i]), curve_stats(baseline[i]))
          << baseline[i].id << " threads=" << threads;
    }
  }

  // A finished snapshot restores the curves verbatim too.
  const auto done = sim::run_campaign_resumable(configs, snapshot_options(2), "snap");
  ASSERT_TRUE(done.complete);
  const auto restored =
      sim::run_campaign_resumable(configs, snapshot_options(4), "snap", &done.snapshot);
  ASSERT_TRUE(restored.complete);
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(curve_stats(restored.results[i]), curve_stats(baseline[i])) << baseline[i].id;
  }
}

TEST(CampaignShard, CurvesSurviveTwoShardMergeBitIdentically) {
  const auto configs = curve_snapshot_configs();
  const auto baseline = sim::run_campaign(configs, snapshot_options(1));

  std::vector<sim::Json> snapshots;
  for (std::uint32_t i = 1; i <= 2; ++i) {
    auto options = snapshot_options(2);
    options.shard_index = i;
    options.shard_count = 2;
    const auto outcome = sim::run_campaign_resumable(configs, options, "snap");
    ASSERT_TRUE(outcome.complete);
    snapshots.push_back(outcome.snapshot);
  }
  const auto merged = sim::merge_campaign_snapshots(configs, "snap", snapshots);
  expect_bitwise_equal(merged, baseline);
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    ASSERT_TRUE(merged[i].has_curves) << baseline[i].id;
    EXPECT_EQ(curve_stats(merged[i]), curve_stats(baseline[i])) << baseline[i].id;
  }
}

TEST(CampaignCheckpoint, CurveSpecIsPartOfTheSnapshotIdentity) {
  // A snapshot taken without curves must not resume a curve-enabled spec
  // (and vice versa): the fingerprint covers the curve grid.
  auto configs = curve_snapshot_configs();
  configs[0].curves.enabled = false;
  configs[1].curves.enabled = false;
  auto options = snapshot_options(2);
  options.stop_after_blocks = 1;
  const auto stopped = sim::run_campaign_resumable(configs, options, "snap");
  ASSERT_FALSE(stopped.complete);

  const auto curved = curve_snapshot_configs();
  expect_throws_with(
      [&] {
        (void)sim::run_campaign_resumable(curved, snapshot_options(1), "snap", &stopped.snapshot);
      },
      "spec hash");
}

// --- Sharding + merge --------------------------------------------------------

TEST(CampaignShard, ShardsMergeBitIdenticalToUnshardedRunForSeveralK) {
  const auto configs = snapshot_configs();
  const auto baseline = sim::run_campaign(configs, snapshot_options(1));

  for (const std::uint32_t k : {1u, 2u, 4u}) {
    std::vector<sim::Json> snapshots;
    for (std::uint32_t i = 1; i <= k; ++i) {
      auto options = snapshot_options(2);
      options.shard_index = i;
      options.shard_count = k;
      const auto outcome = sim::run_campaign_resumable(configs, options, "snap");
      ASSERT_TRUE(outcome.complete);
      snapshots.push_back(outcome.snapshot);
    }
    const auto merged = sim::merge_campaign_snapshots(configs, "snap", snapshots);
    expect_bitwise_equal(merged, baseline);
  }
}

TEST(CampaignShard, RaceConfigurationsAreOwnedWholesaleByOneShard) {
  const auto configs = snapshot_configs();
  std::vector<sim::Json> snapshots;
  for (std::uint32_t i = 1; i <= 2; ++i) {
    auto options = snapshot_options(2);
    options.shard_index = i;
    options.shard_count = 2;
    const auto outcome = sim::run_campaign_resumable(configs, options, "snap");
    ASSERT_TRUE(outcome.complete);
    snapshots.push_back(outcome.snapshot);
  }
  int done_in = 0;
  for (const sim::Json& snap : snapshots) {
    for (const sim::Json& entry : snap.find("configs")->elements()) {
      if (entry.find("id")->as_string() != "race_star") continue;
      const std::string phase = entry.find("phase")->as_string();
      if (phase == "done") ++done_in;
      else EXPECT_EQ(phase, "pending");
    }
  }
  EXPECT_EQ(done_in, 1);
}

TEST(CampaignShard, MergeRejectsBadShardSets) {
  const auto configs = snapshot_configs();
  std::vector<sim::Json> snapshots;
  for (std::uint32_t i = 1; i <= 2; ++i) {
    auto options = snapshot_options(2);
    options.shard_index = i;
    options.shard_count = 2;
    const auto outcome = sim::run_campaign_resumable(configs, options, "snap");
    ASSERT_TRUE(outcome.complete);
    snapshots.push_back(outcome.snapshot);
  }

  // Missing shard.
  expect_throws_with(
      [&] { (void)sim::merge_campaign_snapshots(configs, "snap", {snapshots[0]}); }, "shard");
  // Duplicate shard.
  expect_throws_with(
      [&] { (void)sim::merge_campaign_snapshots(configs, "snap", {snapshots[0], snapshots[0]}); },
      "shard");
  // Wrong campaign name.
  expect_throws_with(
      [&] { (void)sim::merge_campaign_snapshots(configs, "other", snapshots); }, "campaign");
  // Tampered spec hash.
  {
    auto bad = snapshots;
    bad[1].set("spec_hash", "0000000000000000");
    expect_throws_with([&] { (void)sim::merge_campaign_snapshots(configs, "snap", bad); },
                       "spec hash");
  }
  // Overlap: the same shard's work presented under both indices.
  {
    auto bad = snapshots;
    bad[1] = snapshots[0];
    bad[1].set("shard_index", 2);
    expect_throws_with([&] { (void)sim::merge_campaign_snapshots(configs, "snap", bad); },
                       "both shard");
  }
  // An unfinished shard must be refused outright.
  {
    auto options = snapshot_options(2);
    options.shard_index = 1;
    options.shard_count = 2;
    options.stop_after_blocks = 1;
    const auto stopped = sim::run_campaign_resumable(configs, options, "snap");
    ASSERT_FALSE(stopped.complete);
    expect_throws_with(
        [&] {
          (void)sim::merge_campaign_snapshots(configs, "snap", {stopped.snapshot, snapshots[1]});
        },
        "finished");
  }
}

TEST(CampaignShard, ShardedRunsResumeToo) {
  // A shard stopped mid-way and resumed must produce the same partial
  // snapshot (hence the same merged report) as an unbroken shard run.
  const auto configs = snapshot_configs();
  auto options = snapshot_options(2);
  options.shard_index = 1;
  options.shard_count = 2;
  const auto unbroken = sim::run_campaign_resumable(configs, options, "snap");
  ASSERT_TRUE(unbroken.complete);

  auto stop_options = options;
  stop_options.stop_after_blocks = 2;
  const auto stopped = sim::run_campaign_resumable(configs, stop_options, "snap");
  ASSERT_FALSE(stopped.complete);
  const auto resumed =
      sim::run_campaign_resumable(configs, options, "snap", &stopped.snapshot);
  ASSERT_TRUE(resumed.complete);
  // written_at is a wall-clock stamp (stale-shard diagnostics, advisory
  // only); pin it on both sides so the byte comparison covers the
  // deterministic payload.
  auto pin_written_at = [](sim::Json snapshot) {
    snapshot.set("written_at", 0);
    return snapshot.dump(2);
  };
  EXPECT_EQ(pin_written_at(resumed.snapshot), pin_written_at(unbroken.snapshot));
}

TEST(CampaignCheckpoint, FileGraphsFingerprintByContentNotPath) {
  // A packed store carries its identity in the header checksum, so a
  // campaign fingerprint must survive moving/renaming the file — and must
  // change when the file holds a different graph.
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path();
  const fs::path store_a = dir / "rumor_test_fp_a.rgs";
  const fs::path store_a_copy = dir / "rumor_test_fp_a_renamed.rgs";
  const fs::path store_b = dir / "rumor_test_fp_b.rgs";
  {
    sim::GraphSpec spec;
    spec.family = "random_regular";
    spec.n = 60;
    spec.degree = 4;
    spec.graph_seed = 11;
    graph::write_graph_store(sim::build_graph(spec, 1), store_a.string());
    fs::copy_file(store_a, store_a_copy, fs::copy_options::overwrite_existing);
    spec.graph_seed = 12;  // same family and shape, different sampled edges
    graph::write_graph_store(sim::build_graph(spec, 1), store_b.string());
  }
  auto fingerprint_of = [](const fs::path& path) {
    sim::CampaignConfig cfg;
    cfg.id = "cell";
    cfg.graph.family = "file";
    cfg.graph.path = path.string();
    cfg.trials = 8;
    cfg.seed = 3;
    return sim::campaign_fingerprint("snap", {cfg});
  };
  EXPECT_EQ(fingerprint_of(store_a), fingerprint_of(store_a_copy));
  EXPECT_NE(fingerprint_of(store_a), fingerprint_of(store_b));
  for (const fs::path& p : {store_a, store_a_copy, store_b}) fs::remove(p);
}
