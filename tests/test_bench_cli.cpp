// Smoke tests for the rumor_bench experiment registry: the driver binary
// must list all eighteen experiments (the fifteen paper experiments plus
// the e16/e17 dynamics and e18 empirical-graph extensions), run one by
// name with CLI overrides,
// and emit JSON that parses and carries the documented keys.
// Also unit-tests the sim::Json document type the reports are built from.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/experiment.hpp"

namespace sim = rumor::sim;

namespace {

#ifndef RUMOR_BENCH_BINARY
#error "RUMOR_BENCH_BINARY must point at the rumor_bench executable"
#endif
#ifndef RUMOR_MERGE_BINARY
#error "RUMOR_MERGE_BINARY must point at the campaign_merge executable"
#endif

/// Runs a command line and captures its stdout. `exit_code` receives the
/// program's actual exit status (pclose's raw wait status decoded), so
/// tests can assert the documented codes 0/1/2/3.
std::string run_tool(const std::string& binary, const std::string& args,
                     int* exit_code = nullptr) {
  const std::string cmd = binary + " " + args;
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "failed to launch " << cmd;
  if (pipe == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t got = 0;
  while ((got = fread(buf, 1, sizeof buf, pipe)) > 0) out.append(buf, got);
  const int status = pclose(pipe);
  if (exit_code != nullptr) {
    *exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
  return out;
}

std::string run_bench(const std::string& args, int* exit_code = nullptr) {
  return run_tool(RUMOR_BENCH_BINARY, args, exit_code);
}

}  // namespace

// --- Json unit tests ---------------------------------------------------------

TEST(Json, DumpParseRoundTrip) {
  sim::Json obj = sim::Json::object();
  obj.set("name", "e3_star");
  obj.set("count", 42);
  obj.set("ratio", 1.5);
  obj.set("ok", true);
  sim::Json arr = sim::Json::array();
  arr.push_back(1);
  arr.push_back("two");
  arr.push_back(sim::Json());
  obj.set("items", std::move(arr));

  for (int indent : {-1, 2}) {
    const auto parsed = sim::Json::parse(obj.dump(indent));
    ASSERT_TRUE(parsed.has_value()) << "indent=" << indent;
    EXPECT_EQ(parsed->find("name")->as_string(), "e3_star");
    EXPECT_EQ(parsed->find("count")->as_number(), 42.0);
    EXPECT_EQ(parsed->find("ratio")->as_number(), 1.5);
    EXPECT_TRUE(parsed->find("ok")->as_bool());
    ASSERT_EQ(parsed->find("items")->size(), 3u);
    EXPECT_TRUE(parsed->find("items")->elements()[2].is_null());
  }
}

TEST(Json, ObjectPreservesInsertionOrder) {
  sim::Json obj = sim::Json::object();
  obj.set("zebra", 1);
  obj.set("alpha", 2);
  obj.set("zebra", 3);  // overwrite keeps the original slot
  ASSERT_EQ(obj.entries().size(), 2u);
  EXPECT_EQ(obj.entries()[0].first, "zebra");
  EXPECT_EQ(obj.entries()[0].second.as_number(), 3.0);
  EXPECT_EQ(obj.entries()[1].first, "alpha");
}

TEST(Json, EscapesStrings) {
  sim::Json s = std::string("a\"b\\c\nd");
  const auto parsed = sim::Json::parse(s.dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->as_string(), "a\"b\\c\nd");
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_FALSE(sim::Json::parse("{").has_value());
  EXPECT_FALSE(sim::Json::parse("[1,]").has_value());
  EXPECT_FALSE(sim::Json::parse("{\"a\" 1}").has_value());
  EXPECT_FALSE(sim::Json::parse("42 garbage").has_value());
  EXPECT_FALSE(sim::Json::parse("").has_value());
}

TEST(Json, RejectsPathologicallyDeepNesting) {
  // A truncated/hostile "[[[[..." must return nullopt, not blow the stack.
  const std::string deep(100000, '[');
  EXPECT_FALSE(sim::Json::parse(deep).has_value());
  // Reasonable nesting still parses.
  std::string ok;
  for (int i = 0; i < 50; ++i) ok += '[';
  ok += '1';
  for (int i = 0; i < 50; ++i) ok += ']';
  EXPECT_TRUE(sim::Json::parse(ok).has_value());
}

// --- Registry smoke tests via the real binary --------------------------------

TEST(BenchCli, ListNamesAllEighteenExperiments) {
  int status = 0;
  const std::string out = run_bench("--list", &status);
  EXPECT_EQ(status, 0);
  for (const char* name :
       {"e1_overview", "e2_theorem1", "e3_star", "e4_theorem2", "e5_regular", "e6_blocks",
        "e7_chain", "e8_push", "e9_micro", "e10_expansion", "e11_faults", "e12_discretization",
        "e13_sources", "e14_averaging", "e15_quasirandom", "e16_churn", "e17_weighted",
        "e18_empirical"}) {
    EXPECT_NE(out.find(name), std::string::npos) << "missing " << name << " in:\n" << out;
  }
}

TEST(BenchCli, ListJsonParsesWithTitles) {
  const std::string out = run_bench("--list --json");
  const auto parsed = sim::Json::parse(out);
  ASSERT_TRUE(parsed.has_value()) << out;
  ASSERT_TRUE(parsed->is_array());
  ASSERT_EQ(parsed->size(), 18u);
  for (const auto& entry : parsed->elements()) {
    ASSERT_NE(entry.find("experiment"), nullptr);
    ASSERT_NE(entry.find("title"), nullptr);
    ASSERT_NE(entry.find("claim"), nullptr);
  }
}

TEST(BenchCli, TinyExperimentEmitsExpectedJson) {
  int status = 0;
  const std::string out = run_bench("e3_star --trials 8 --seed 7 --json", &status);
  EXPECT_EQ(status, 0);
  const auto parsed = sim::Json::parse(out);
  ASSERT_TRUE(parsed.has_value()) << "unparseable JSON:\n" << out;
  ASSERT_TRUE(parsed->is_object());

  const sim::Json* name = parsed->find("experiment");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->as_string(), "e3_star");

  const sim::Json* params = parsed->find("params");
  ASSERT_NE(params, nullptr);
  ASSERT_NE(params->find("trials"), nullptr);
  EXPECT_EQ(params->find("trials")->as_number(), 8.0);
  ASSERT_NE(params->find("seed"), nullptr);
  EXPECT_EQ(params->find("seed")->as_number(), 7.0);

  const sim::Json* rows = parsed->find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_TRUE(rows->is_array());
  ASSERT_GT(rows->size(), 0u);
  for (const auto& row : rows->elements()) {
    // Per-statistic values: every row carries the measured columns.
    for (const char* key : {"n", "sync_mean", "sync_max", "async_mean", "async_p99"}) {
      const sim::Json* v = row.find(key);
      ASSERT_NE(v, nullptr) << "row missing " << key;
      EXPECT_TRUE(v->is_number());
    }
    // The paper's star-graph law, visible even at 8 trials: sync <= 2.
    EXPECT_LE(row.find("sync_max")->as_number(), 2.0);
  }

  const sim::Json* stats = parsed->find("stats");
  ASSERT_NE(stats, nullptr);
  ASSERT_NE(stats->find("log_fit_slope"), nullptr);
}

TEST(BenchCli, UnknownExperimentFails) {
  int status = 0;
  run_bench("no_such_experiment --json 2>/dev/null", &status);
  EXPECT_NE(status, 0);
}

TEST(BenchCli, ListShowsClaimAndDefaults) {
  const std::string human = run_bench("--list");
  EXPECT_NE(human.find("claim: "), std::string::npos);
  EXPECT_NE(human.find("defaults: "), std::string::npos);

  const auto parsed = sim::Json::parse(run_bench("--list --json"));
  ASSERT_TRUE(parsed.has_value());
  for (const auto& entry : parsed->elements()) {
    const sim::Json* defaults = entry.find("defaults");
    ASSERT_NE(defaults, nullptr);
    EXPECT_FALSE(defaults->as_string().empty())
        << entry.find("experiment")->as_string() << " has no defaults line";
  }
}

// --- --out: atomic report files ----------------------------------------------

namespace {

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

}  // namespace

TEST(BenchCli, OutWritesCompleteReportFile) {
  const std::string path = testing::TempDir() + "bench_cli_out.json";
  std::remove(path.c_str());
  int status = 0;
  const std::string stdout_text =
      run_bench("e3_star --trials 8 --seed 7 --json --out " + path, &status);
  EXPECT_EQ(status, 0);
  EXPECT_TRUE(stdout_text.empty()) << "--out must divert the report off stdout";

  const auto parsed = sim::Json::parse(read_file(path));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("experiment")->as_string(), "e3_star");
  // The (pid-suffixed) temp file of the atomic write must not linger.
  for (const auto& entry : std::filesystem::directory_iterator(testing::TempDir())) {
    EXPECT_EQ(entry.path().filename().string().rfind("bench_cli_out.json.tmp", 0),
              std::string::npos)
        << "leftover temp file: " << entry.path();
  }
  std::remove(path.c_str());
}

TEST(BenchCli, OutToUnwritablePathFails) {
  int status = 0;
  run_bench("e3_star --trials 8 --json --out /no_such_dir/report.json 2>/dev/null", &status);
  EXPECT_NE(status, 0);
}

// --- --campaign: the spec-driven sweep front end ------------------------------

namespace {

std::string write_spec(const std::string& name, const std::string& contents) {
  const std::string path = testing::TempDir() + name;
  std::ofstream file(path, std::ios::trunc);
  file << contents;
  return path;
}

}  // namespace

TEST(BenchCli, CampaignRunsSpecAndEmitsPerConfigReports) {
  const std::string spec = write_spec("bench_cli_campaign.json", R"({
    "name": "clitest",
    "defaults": {"trials": 8, "seed": 5},
    "configs": [
      {"graph": "star", "n": [32, 64], "engine": ["sync", "async"]},
      {"graph": "hypercube", "n": 64}
    ]})");
  const std::string out = testing::TempDir() + "bench_cli_campaign_out.json";
  int status = 0;
  run_bench("--campaign " + spec + " --json --threads 2 --batch 4 --out " + out, &status);
  EXPECT_EQ(status, 0);

  const auto parsed = sim::Json::parse(read_file(out));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_array());
  ASSERT_EQ(parsed->size(), 5u);  // 2 sizes x 2 engines + 1 hypercube
  for (const auto& report : parsed->elements()) {
    ASSERT_NE(report.find("experiment"), nullptr);
    EXPECT_EQ(report.find("experiment")->as_string().rfind("clitest/", 0), 0u);
    ASSERT_NE(report.find("rows"), nullptr);
    ASSERT_EQ(report.find("rows")->size(), 1u);
    const sim::Json& row = report.find("rows")->elements().front();
    EXPECT_EQ(row.find("trials")->as_number(), 8.0);
    EXPECT_GT(row.find("mean")->as_number(), 0.0);
  }
  std::remove(spec.c_str());
  std::remove(out.c_str());
}

TEST(BenchCli, CampaignHonorsTrialsAndSeedOverrides) {
  const std::string spec = write_spec("bench_cli_override.json", R"({
    "defaults": {"trials": 64, "seed": 5},
    "configs": [{"graph": "star", "n": 32}]})");
  int status = 0;
  const std::string out = run_bench("--campaign " + spec + " --trials 4 --seed 11 --json", &status);
  EXPECT_EQ(status, 0);
  const auto parsed = sim::Json::parse(out);
  ASSERT_TRUE(parsed.has_value()) << out;
  EXPECT_EQ(parsed->find("params")->find("trials")->as_number(), 4.0);
  EXPECT_EQ(parsed->find("params")->find("seed")->as_number(), 11.0);
  std::remove(spec.c_str());
}

TEST(BenchCli, CampaignRaceCellReportsWorstSource) {
  // The CI smoke path: a `source: "race"` cell must run through the real
  // binary, report the race outcome in stats, and mark its params.
  const std::string spec = write_spec("bench_cli_race.json", R"({
    "name": "racetest",
    "configs": [
      {"graph": "star", "n": 48, "source": "race", "trials": 8,
       "screen_trials": 4, "finalists": 2, "max_candidates": 8, "seed": 3}
    ]})");
  int status = 0;
  const std::string out = run_bench("--campaign " + spec + " --json --threads 2", &status);
  EXPECT_EQ(status, 0);
  const auto parsed = sim::Json::parse(out);
  ASSERT_TRUE(parsed.has_value()) << out;
  EXPECT_EQ(parsed->find("experiment")->as_string(), "racetest/star_n48_sync_push-pull_race");
  EXPECT_EQ(parsed->find("params")->find("source_policy")->as_string(), "race");
  const sim::Json* stats = parsed->find("stats");
  ASSERT_NE(stats, nullptr);
  for (const char* key : {"worst_source", "best_source", "best_mean"}) {
    ASSERT_NE(stats->find(key), nullptr) << key;
  }
  EXPECT_LT(stats->find("worst_source")->as_number(), 48.0);
  std::remove(spec.c_str());
}

TEST(BenchCli, CampaignDynamicsCellCarriesParams) {
  // A churn+weighted cell through the real binary: the report must mark
  // its params with the dynamics block and stay machine-parseable.
  const std::string spec = write_spec("bench_cli_dynamics.json", R"({
    "name": "dyntest",
    "configs": [
      {"graph": "hypercube", "n": 64, "trials": 8, "seed": 3,
       "dynamics": {"churn": "markov", "birth": 0.2, "death": 0.2,
                    "weights": "heavy_tailed", "weight_alpha": 1.5}}
    ]})");
  int status = 0;
  const std::string out = run_bench("--campaign " + spec + " --json --threads 2", &status);
  EXPECT_EQ(status, 0);
  const auto parsed = sim::Json::parse(out);
  ASSERT_TRUE(parsed.has_value()) << out;
  EXPECT_EQ(parsed->find("experiment")->as_string(),
            "dyntest/hypercube_n64_sync_push-pull_markov_w-heavy_tailed");
  const sim::Json* dyn = parsed->find("params")->find("dynamics");
  ASSERT_NE(dyn, nullptr);
  EXPECT_EQ(dyn->find("churn")->as_string(), "markov");
  EXPECT_EQ(dyn->find("weights")->as_string(), "heavy_tailed");
  EXPECT_GT(parsed->find("rows")->elements().front().find("mean")->as_number(), 0.0);
  std::remove(spec.c_str());
}

TEST(BenchCli, CampaignRejectsBadSpecs) {
  int status = 0;
  run_bench("--campaign /no/such/spec.json 2>/dev/null", &status);
  EXPECT_NE(status, 0);

  const std::string malformed = write_spec("bench_cli_malformed.json", "{ not json");
  run_bench("--campaign " + malformed + " 2>/dev/null", &status);
  EXPECT_NE(status, 0);

  const std::string bad_key = write_spec("bench_cli_badkey.json",
                                         R"({"configs": [{"graph": "star", "n": 32, "trails": 2}]})");
  run_bench("--campaign " + bad_key + " 2>/dev/null", &status);
  EXPECT_NE(status, 0);
  std::remove(malformed.c_str());
  std::remove(bad_key.c_str());
}

TEST(BenchCli, CampaignConflictsWithExperimentSelection) {
  const std::string spec = write_spec("bench_cli_conflict.json",
                                      R"({"configs": [{"graph": "star", "n": 32}]})");
  int status = 0;
  run_bench("--campaign " + spec + " e3_star 2>/dev/null", &status);
  EXPECT_NE(status, 0);
  std::remove(spec.c_str());
}

// --- Checkpoints, shards, and merge ------------------------------------------

namespace {

/// One campaign exercising all three block kinds (plain trials across two
/// engines, a dynamics cell, and a worst-source race), small enough that a
/// full run takes well under a second. --batch 4 at 12 trials gives every
/// plain config three blocks, so --stop-after-blocks interrupts mid-config.
std::string write_checkpoint_spec(const std::string& name) {
  return write_spec(name, R"({
    "name": "cksuite",
    "defaults": {"trials": 12, "seed": 7},
    "configs": [
      {"graph": "star", "n": [32, 48], "engine": ["sync", "async"]},
      {"graph": "hypercube", "n": 64,
       "dynamics": {"churn": "markov", "birth": 0.2, "death": 0.2}},
      {"graph": "star", "n": 40, "source": "race", "trials": 8, "seed": 3,
       "screen_trials": 4, "finalists": 2, "max_candidates": 6}
    ]})");
}

void expect_no_temp_litter(const std::string& stem) {
  for (const auto& entry : std::filesystem::directory_iterator(testing::TempDir())) {
    EXPECT_EQ(entry.path().filename().string().rfind(stem + ".tmp", 0), std::string::npos)
        << "leftover temp file: " << entry.path();
  }
}

}  // namespace

TEST(BenchCliCheckpoint, KillAndResumeMatchesStraightRunByteForByte) {
  const std::string spec = write_checkpoint_spec("bench_cli_ck_spec.json");
  const std::string plain_out = testing::TempDir() + "bench_cli_ck_plain.json";
  const std::string resumed_out = testing::TempDir() + "bench_cli_ck_resumed.json";
  const std::string ck = testing::TempDir() + "bench_cli_ck_state.json";
  for (const auto& p : {plain_out, resumed_out, ck}) std::remove(p.c_str());

  int status = 0;
  run_bench("--campaign " + spec + " --json --threads 2 --batch 4 --out " + plain_out, &status);
  ASSERT_EQ(status, 0);

  // First leg: stop after 3 blocks. Exit 3 (not an error, not success), a
  // pointer to the checkpoint on stderr, and no report written.
  const std::string stopped = run_bench("--campaign " + spec +
                                            " --json --threads 2 --batch 4 --checkpoint " + ck +
                                            " --stop-after-blocks 3 --out " + resumed_out +
                                            " 2>&1",
                                        &status);
  ASSERT_EQ(status, 3) << stopped;
  EXPECT_NE(stopped.find("progress saved to"), std::string::npos) << stopped;
  EXPECT_NE(stopped.find("--resume"), std::string::npos) << stopped;
  ASSERT_TRUE(std::filesystem::exists(ck));
  EXPECT_FALSE(std::filesystem::exists(resumed_out)) << "a stopped run must not emit a report";

  // Keep killing and resuming, varying the thread count, until one leg
  // finishes. The final report must be byte-identical to the straight run.
  bool finished = false;
  for (int leg = 0; leg < 60 && !finished; ++leg) {
    const std::string threads = (leg % 2 == 0) ? "1" : "2";
    run_bench("--campaign " + spec + " --json --threads " + threads + " --resume " + ck +
                  " --checkpoint " + ck + " --stop-after-blocks 3 --out " + resumed_out +
                  " 2>/dev/null",
              &status);
    ASSERT_TRUE(status == 0 || status == 3) << "leg " << leg << " exited " << status;
    finished = status == 0;
  }
  ASSERT_TRUE(finished) << "campaign did not finish within the resume budget";
  EXPECT_EQ(read_file(resumed_out), read_file(plain_out))
      << "kill/resume must be bit-identical to the uninterrupted run";
  expect_no_temp_litter("bench_cli_ck_state.json");

  for (const auto& p : {spec, plain_out, resumed_out, ck}) std::remove(p.c_str());
}

TEST(BenchCliCheckpoint, ShardsThenMergeMatchesStraightRunByteForByte) {
  const std::string spec = write_checkpoint_spec("bench_cli_shard_spec.json");
  const std::string plain_out = testing::TempDir() + "bench_cli_shard_plain.json";
  const std::string s1 = testing::TempDir() + "bench_cli_shard1.json";
  const std::string s2 = testing::TempDir() + "bench_cli_shard2.json";
  const std::string merged_bench = testing::TempDir() + "bench_cli_shard_mb.json";
  const std::string merged_tool = testing::TempDir() + "bench_cli_shard_mt.json";

  int status = 0;
  run_bench("--campaign " + spec + " --json --threads 2 --batch 4 --out " + plain_out, &status);
  ASSERT_EQ(status, 0);

  // Each shard run emits a finished partial snapshot, not a report.
  run_bench("--campaign " + spec + " --json --threads 2 --batch 4 --shard 1/2 --out " + s1,
            &status);
  ASSERT_EQ(status, 0);
  run_bench("--campaign " + spec + " --json --threads 1 --batch 4 --shard 2/2 --out " + s2,
            &status);
  ASSERT_EQ(status, 0);
  const auto snap = sim::Json::parse(read_file(s1));
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->find("format")->as_string(), "rumor-campaign-checkpoint");

  // Both merge front ends agree with the unsharded run, byte for byte.
  run_bench("--campaign " + spec + " --json --merge " + s1 + " " + s2 + " --out " + merged_bench,
            &status);
  ASSERT_EQ(status, 0);
  EXPECT_EQ(read_file(merged_bench), read_file(plain_out))
      << "rumor_bench --merge must be bit-identical to the unsharded run";

  run_tool(RUMOR_MERGE_BINARY,
           "--campaign " + spec + " --out " + merged_tool + " " + s1 + " " + s2, &status);
  ASSERT_EQ(status, 0);
  EXPECT_EQ(read_file(merged_tool), read_file(plain_out))
      << "campaign_merge must be bit-identical to the unsharded run";

  // A merge with a shard missing is a validation failure (exit 1).
  run_tool(RUMOR_MERGE_BINARY, "--campaign " + spec + " " + s1 + " 2>/dev/null", &status);
  EXPECT_EQ(status, 1);

  for (const auto& p : {spec, plain_out, s1, s2, merged_bench, merged_tool}) {
    std::remove(p.c_str());
  }
}

TEST(BenchCliCheckpoint, FeatureFlagMisuseIsBadInput) {
  const std::string spec = write_checkpoint_spec("bench_cli_ck_misuse.json");
  int status = 0;

  // Checkpoint/shard/resume flags make no sense without --campaign.
  run_bench("e3_star --shard 1/2 2>/dev/null", &status);
  EXPECT_EQ(status, 2);
  run_bench("e3_star --checkpoint ck.json 2>/dev/null", &status);
  EXPECT_EQ(status, 2);

  // Malformed or out-of-range shard designators.
  for (const char* shard : {"3/2", "0/2", "2", "1/0", "a/b", "-1/2"}) {
    run_bench("--campaign " + spec + " --shard " + shard + " 2>/dev/null", &status);
    EXPECT_EQ(status, 2) << "--shard " << shard;
  }

  // A stop budget without a checkpoint file would discard the progress.
  run_bench("--campaign " + spec + " --stop-after-blocks 2 2>/dev/null", &status);
  EXPECT_EQ(status, 2);

  // --merge folds existing snapshots; running shards in the same invocation
  // is contradictory, and merging nothing is vacuous.
  run_bench("--campaign " + spec + " --merge --shard 1/2 x.json 2>/dev/null", &status);
  EXPECT_EQ(status, 2);
  run_bench("--campaign " + spec + " --merge 2>/dev/null", &status);
  EXPECT_EQ(status, 2);

  // A missing resume file is bad input, never a silent fresh start.
  run_bench("--campaign " + spec + " --resume /no/such/ck.json 2>/dev/null", &status);
  EXPECT_EQ(status, 2);

  std::remove(spec.c_str());
}

// --- Observability: --version, --progress, --trace, --telemetry --------------

TEST(BenchCliObservability, VersionPrintsBuildProvenance) {
  int status = 0;
  const std::string out = run_bench("--version", &status);
  EXPECT_EQ(status, 0);
  EXPECT_EQ(out.rfind("rumor_bench ", 0), 0u) << out;
  // sha, compiler, build type — same provenance every JSON report carries.
  EXPECT_NE(out.find('('), std::string::npos) << out;
}

TEST(BenchCliObservability, ProgressKeepsStdoutMachineParseable) {
  const std::string spec = write_spec("bench_cli_progress.json", R"({
    "name": "progresstest",
    "defaults": {"trials": 8, "seed": 5},
    "configs": [{"graph": "star", "n": [32, 48], "engine": ["sync", "async"]}]})");
  int status = 0;

  // stdout alone must stay a strict-parseable report stream.
  const std::string out =
      run_bench("--campaign " + spec + " --json --threads 2 --progress 2>/dev/null", &status);
  EXPECT_EQ(status, 0);
  const auto parsed = sim::Json::parse(out);
  ASSERT_TRUE(parsed.has_value()) << "--progress leaked into stdout:\n" << out;
  ASSERT_TRUE(parsed->is_array());
  EXPECT_EQ(parsed->size(), 4u);

  // The heartbeat (at least the final summary line) lands on stderr.
  const std::string err =
      run_bench("--campaign " + spec + " --json --threads 2 --progress 2>&1 1>/dev/null", &status);
  EXPECT_EQ(status, 0);
  EXPECT_NE(err.find("progress [progresstest]"), std::string::npos) << err;
  EXPECT_NE(err.find("done"), std::string::npos) << err;

  std::remove(spec.c_str());
}

TEST(BenchCliObservability, TraceWritesValidFileWithoutPerturbingTheReport) {
  const std::string spec = write_checkpoint_spec("bench_cli_trace_spec.json");
  const std::string plain_out = testing::TempDir() + "bench_cli_trace_plain.json";
  const std::string traced_out = testing::TempDir() + "bench_cli_trace_out.json";
  const std::string trace = testing::TempDir() + "bench_cli_trace.json";
  for (const auto& p : {plain_out, traced_out, trace}) std::remove(p.c_str());

  int status = 0;
  run_bench("--campaign " + spec + " --json --threads 2 --batch 4 --out " + plain_out, &status);
  ASSERT_EQ(status, 0);
  run_bench("--campaign " + spec + " --json --threads 2 --batch 4 --trace " + trace + " --out " +
                traced_out,
            &status);
  ASSERT_EQ(status, 0);

  // The observational contract, end to end through the real binary.
  EXPECT_EQ(read_file(traced_out), read_file(plain_out))
      << "--trace must not perturb the report";

  const auto doc = sim::Json::parse(read_file(trace));
  ASSERT_TRUE(doc.has_value()) << "trace file is not valid JSON";
  const sim::Json* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::size_t block_spans = 0;
  for (const auto& ev : events->elements()) {
    if (ev.find("ph")->as_string() == "X" &&
        ev.find("name")->as_string().rfind("block:", 0) == 0) {
      ++block_spans;
    }
  }
  const sim::Json* metrics = doc->find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(static_cast<double>(block_spans),
            metrics->find("totals")->find("blocks_executed")->as_number());

  for (const auto& p : {spec, plain_out, traced_out, trace}) std::remove(p.c_str());
}

TEST(BenchCliObservability, TelemetryStatsAreOptInAndParseable) {
  const std::string spec = write_spec("bench_cli_tel.json", R"({
    "name": "teltest",
    "configs": [{"graph": "star", "n": 32, "trials": 8, "seed": 5}]})");
  int status = 0;
  const std::string out =
      run_bench("--campaign " + spec + " --json --threads 2 --telemetry 2>/dev/null", &status);
  EXPECT_EQ(status, 0);
  const auto parsed = sim::Json::parse(out);
  ASSERT_TRUE(parsed.has_value()) << out;
  const sim::Json* telemetry = parsed->find("stats")->find("telemetry");
  ASSERT_NE(telemetry, nullptr) << "--telemetry must add stats.telemetry";
  EXPECT_EQ(telemetry->find("trials")->as_number(), 8.0);
  EXPECT_GE(telemetry->find("blocks")->as_number(), 1.0);
  EXPECT_GT(telemetry->find("campaign_wall_ms")->as_number(), 0.0);
  std::remove(spec.c_str());
}

TEST(BenchCliObservability, ObservabilityFlagMisuseIsBadInput) {
  int status = 0;
  // The flags describe a campaign run; without one they are bad input.
  run_bench("e3_star --progress 2>/dev/null", &status);
  EXPECT_EQ(status, 2);
  run_bench("e3_star --trace t.json 2>/dev/null", &status);
  EXPECT_EQ(status, 2);
  run_bench("e3_star --telemetry 2>/dev/null", &status);
  EXPECT_EQ(status, 2);
  // --trace needs a path.
  run_bench("--trace 2>/dev/null", &status);
  EXPECT_EQ(status, 2);
  // An unwritable trace path is a runtime failure, reported, exit 1.
  const std::string spec = write_spec("bench_cli_tracefail.json",
                                      R"({"configs": [{"graph": "star", "n": 32, "trials": 4}]})");
  run_bench("--campaign " + spec + " --json --trace /no_such_dir/t.json >/dev/null 2>/dev/null",
            &status);
  EXPECT_EQ(status, 1);
  std::remove(spec.c_str());
}

TEST(BenchCliObservability, StaleShardIsToleratedButReported) {
  // Shard snapshots carry a written_at wall-clock stamp. A merge where one
  // shard is hours older than the rest still succeeds — the stamp is
  // advisory — but the laggard is called out on stderr, because a stale
  // shard usually means someone forgot to re-run it after a spec change.
  const std::string spec = write_checkpoint_spec("bench_cli_stale_spec.json");
  const std::string s1 = testing::TempDir() + "bench_cli_stale1.json";
  const std::string s2 = testing::TempDir() + "bench_cli_stale2.json";
  const std::string merged = testing::TempDir() + "bench_cli_stale_merged.json";

  int status = 0;
  run_bench("--campaign " + spec + " --json --batch 4 --shard 1/2 --out " + s1, &status);
  ASSERT_EQ(status, 0);
  run_bench("--campaign " + spec + " --json --batch 4 --shard 2/2 --out " + s2, &status);
  ASSERT_EQ(status, 0);

  // Age shard 1 by rewriting its stamp two hours into the past.
  auto snap = sim::Json::parse(read_file(s1));
  ASSERT_TRUE(snap.has_value());
  const sim::Json* stamp = snap->find("written_at");
  ASSERT_NE(stamp, nullptr) << "snapshots must carry written_at";
  snap->set("written_at", stamp->as_number() - 7200.0);
  {
    std::ofstream file(s1, std::ios::trunc);
    file << snap->dump(2) << "\n";
  }

  const std::string err = run_tool(RUMOR_MERGE_BINARY,
                                   "--campaign " + spec + " --out " + merged + " " + s1 + " " +
                                       s2 + " 2>&1 1>/dev/null",
                                   &status);
  EXPECT_EQ(status, 0) << "a stale stamp must not fail the merge:\n" << err;
  EXPECT_NE(err.find("stale shard"), std::string::npos) << err;
  EXPECT_NE(err.find("bench_cli_stale1.json"), std::string::npos) << err;
  EXPECT_TRUE(std::filesystem::exists(merged));

  for (const auto& p : {spec, s1, s2, merged}) std::remove(p.c_str());
}

TEST(BenchCliObservability, EveryReportCarriesBuildInfo) {
  int status = 0;
  const std::string out = run_bench("e3_star --trials 8 --seed 7 --json", &status);
  EXPECT_EQ(status, 0);
  const auto parsed = sim::Json::parse(out);
  ASSERT_TRUE(parsed.has_value());
  const sim::Json* build = parsed->find("build_info");
  ASSERT_NE(build, nullptr) << "experiment reports must carry build_info";
  for (const char* key : {"git_sha", "compiler", "compiler_version", "build_type", "flags"}) {
    ASSERT_NE(build->find(key), nullptr) << key;
  }
}
