// Tests for the extension features: graph I/O, new generators
// (wheel / complete bipartite / 3-D torus / Watts-Strogatz), trajectory
// utilities, message-loss fault injection, multi-source spreading, the
// push coupling of Section 3, and the discretized-async ablation engine.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/rumor.hpp"
#include "dist/distributions.hpp"
#include "sim/harness.hpp"

using namespace rumor;

// --- New generators -------------------------------------------------------

TEST(GeneratorsExt, Wheel) {
  const auto g = graph::wheel(10);
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.degree(0), 9u);   // hub
  EXPECT_EQ(g.degree(3), 3u);   // rim: hub + 2 rim neighbors
  EXPECT_EQ(g.num_edges(), 18u);  // 9 spokes + 9 rim
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_EQ(graph::diameter(g), 2u);
}

TEST(GeneratorsExt, CompleteBipartite) {
  const auto g = graph::complete_bipartite(3, 5);
  EXPECT_EQ(g.num_nodes(), 8u);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_EQ(g.degree(0), 5u);
  EXPECT_EQ(g.degree(4), 3u);
  EXPECT_FALSE(g.has_edge(0, 1));  // no intra-side edges
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_EQ(graph::diameter(g), 2u);
}

TEST(GeneratorsExt, CompleteBipartiteOneSideIsStar) {
  const auto kb = graph::complete_bipartite(1, 7);
  const auto st = graph::star(8);
  EXPECT_EQ(kb.num_edges(), st.num_edges());
  EXPECT_EQ(kb.degree(0), st.degree(0));
}

TEST(GeneratorsExt, Torus3d) {
  const auto g = graph::torus3d(3);
  EXPECT_EQ(g.num_nodes(), 27u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(0), 6u);
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_EQ(graph::diameter(g), 3u);  // 1 wrap hop per axis
}

TEST(GeneratorsExt, WattsStrogatzNoRewireIsLattice) {
  auto eng = rng::derive_stream(71, 0);
  const auto g = graph::watts_strogatz(64, 4, 0.0, eng);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(0), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_EQ(graph::diameter(g), 16u);  // n / k
}

TEST(GeneratorsExt, WattsStrogatzRewiringShrinksDiameter) {
  auto eng = rng::derive_stream(71, 1);
  const auto lattice = graph::watts_strogatz(256, 4, 0.0, eng);
  const auto small_world = graph::largest_component(graph::watts_strogatz(256, 4, 0.3, eng));
  EXPECT_LT(graph::diameter(small_world), graph::diameter(lattice) / 2);
}

// --- Graph I/O --------------------------------------------------------------

TEST(GraphIo, RoundTripsThroughStream) {
  const auto g = graph::hypercube(4);
  std::stringstream ss;
  graph::write_edge_list(g, ss);
  const auto back = graph::read_edge_list(ss, "roundtrip");
  ASSERT_EQ(back.num_nodes(), g.num_nodes());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    for (graph::NodeId w : g.neighbors(v)) EXPECT_TRUE(back.has_edge(v, w));
  }
}

TEST(GraphIo, CompactsSparseIdsWhenAsked) {
  std::stringstream ss("# comment\n100 200\n200 300\n\n300 100\n");
  const auto g = graph::read_edge_list(ss, "sparse", /*compact_ids=*/true);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);  // a triangle
  EXPECT_TRUE(graph::is_connected(g));
}

TEST(GraphIo, PreservesIdsByDefault) {
  std::stringstream ss("0 5\n5 2\n");
  const auto g = graph::read_edge_list(ss);
  EXPECT_EQ(g.num_nodes(), 6u);  // max id + 1; ids 1,3,4 are isolated
  EXPECT_TRUE(g.has_edge(0, 5));
  EXPECT_TRUE(g.has_edge(5, 2));
}

TEST(GraphIo, IgnoresCommentsAndDuplicates) {
  std::stringstream ss("0 1 # inline comment\n1 0\n0 0\n1 2\n");
  const auto g = graph::read_edge_list(ss);
  EXPECT_EQ(g.num_edges(), 2u);  // dedup + dropped self-loop
}

TEST(GraphIo, ThrowsOnMalformedLine) {
  std::stringstream ss("0 1\n2\n");
  EXPECT_THROW((void)graph::read_edge_list(ss), std::runtime_error);
}

TEST(GraphIo, FileRoundTrip) {
  const auto g = graph::cycle(9);
  const std::string path = "/tmp/rumor_io_test.edges";
  graph::write_edge_list_file(g, path);
  const auto back = graph::read_edge_list_file(path);
  EXPECT_EQ(back.num_nodes(), 9u);
  EXPECT_EQ(back.num_edges(), 9u);
  std::remove(path.c_str());
}

// --- Trajectories ------------------------------------------------------------

TEST(Trajectory, RoundToFraction) {
  const std::vector<std::uint64_t> rounds{0, 1, 1, 2, 5};
  EXPECT_EQ(core::round_to_fraction(rounds, 0.2), 0u);
  EXPECT_EQ(core::round_to_fraction(rounds, 0.6), 1u);
  EXPECT_EQ(core::round_to_fraction(rounds, 0.8), 2u);
  EXPECT_EQ(core::round_to_fraction(rounds, 1.0), 5u);
}

TEST(Trajectory, TimeToFraction) {
  const std::vector<double> times{0.0, 0.5, 1.5, 9.0};
  EXPECT_DOUBLE_EQ(core::time_to_fraction(times, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(core::time_to_fraction(times, 1.0), 9.0);
}

TEST(Trajectory, AsyncTrajectoryIsSortedAndSkipsNever) {
  const std::vector<double> times{3.0, 0.0, core::kNeverTime, 1.0};
  const auto traj = core::async_trajectory(times);
  ASSERT_EQ(traj.size(), 3u);
  EXPECT_DOUBLE_EQ(traj[0], 0.0);
  EXPECT_DOUBLE_EQ(traj[2], 3.0);
}

TEST(Trajectory, ConsistentWithEngineResults) {
  const auto g = graph::hypercube(6);
  auto eng = rng::derive_stream(72, 0);
  const auto r = core::run_async(g, 0, eng);
  ASSERT_TRUE(r.completed);
  EXPECT_DOUBLE_EQ(core::time_to_fraction(r.informed_time, 1.0), r.time);
  EXPECT_LE(core::time_to_fraction(r.informed_time, 0.5), r.time);
}

// --- Fault injection -----------------------------------------------------------

TEST(Faults, LossSlowsSyncSpreading) {
  const auto g = graph::hypercube(7);
  sim::TrialConfig config;
  config.trials = 80;
  config.seed = 73;
  auto measure = [&](double loss) {
    auto samples = sim::run_trials(config, [&](std::uint64_t, rng::Engine& eng) {
      core::SyncOptions opts;
      opts.message_loss = loss;
      const auto r = core::run_sync(g, 0, eng, opts);
      return static_cast<double>(r.rounds);
    });
    return sim::SpreadingTimeSample(std::move(samples)).mean();
  };
  const double clean = measure(0.0);
  const double lossy = measure(0.5);
  EXPECT_GT(lossy, 1.2 * clean);
  EXPECT_LT(lossy, 4.0 * clean);  // ~2x expected: each exchange is a coin flip
}

TEST(Faults, LossSlowsAsyncByExpectedFactor) {
  // Thinning a Poisson contact process by (1 - p) rescales time by
  // 1/(1 - p); with p = 0.5 async times should roughly double.
  const auto g = graph::complete(64);
  sim::TrialConfig config;
  config.trials = 150;
  config.seed = 74;
  auto measure = [&](double loss) {
    auto samples = sim::run_trials(config, [&](std::uint64_t, rng::Engine& eng) {
      core::AsyncOptions opts;
      opts.message_loss = loss;
      const auto r = core::run_async(g, 0, eng, opts);
      return r.time;
    });
    return sim::SpreadingTimeSample(std::move(samples)).mean();
  };
  const double clean = measure(0.0);
  const double lossy = measure(0.5);
  EXPECT_NEAR(lossy / clean, 2.0, 0.35);
}

TEST(Faults, TotalLossNeverCompletes) {
  const auto g = graph::path(4);
  auto eng = rng::derive_stream(75, 0);
  core::SyncOptions opts;
  opts.message_loss = 1.0;
  opts.max_ticks = 50;
  const auto r = core::run_sync(g, 0, eng, opts);
  EXPECT_FALSE(r.completed);
}

// --- Multi-source ---------------------------------------------------------------

TEST(MultiSource, ExtraSourcesStartInformed) {
  const auto g = graph::path(64);
  auto eng = rng::derive_stream(76, 0);
  core::SyncOptions opts;
  opts.extra_sources = {32, 63};
  const auto r = core::run_sync(g, 0, eng, opts);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.informed_round[0], 0u);
  EXPECT_EQ(r.informed_round[32], 0u);
  EXPECT_EQ(r.informed_round[63], 0u);
}

TEST(MultiSource, MoreSourcesNeverSlowerOnPath) {
  // Path from one end takes ~n rounds; seeding the middle and far end cuts
  // the worst distance by ~4x.
  const auto g = graph::path(128);
  sim::TrialConfig config;
  config.trials = 40;
  config.seed = 77;
  auto measure = [&](std::vector<graph::NodeId> extras) {
    auto samples = sim::run_trials(config, [&](std::uint64_t, rng::Engine& eng) {
      core::SyncOptions opts;
      opts.extra_sources = extras;
      return static_cast<double>(core::run_sync(g, 0, eng, opts).rounds);
    });
    return sim::SpreadingTimeSample(std::move(samples)).mean();
  };
  const double single = measure({});
  const double triple = measure({64, 127});
  EXPECT_LT(triple, 0.5 * single);
}

TEST(MultiSource, AsyncExtraSourcesAtTimeZero) {
  const auto g = graph::cycle(32);
  auto eng = rng::derive_stream(78, 0);
  core::AsyncOptions opts;
  opts.extra_sources = {16};
  const auto r = core::run_async(g, 0, eng, opts);
  ASSERT_TRUE(r.completed);
  EXPECT_DOUBLE_EQ(r.informed_time[16], 0.0);
}

TEST(MultiSource, DuplicateSourcesAreIdempotent) {
  const auto g = graph::cycle(16);
  auto eng = rng::derive_stream(78, 1);
  core::SyncOptions opts;
  opts.extra_sources = {0, 5, 5};
  const auto r = core::run_sync(g, 0, eng, opts);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.informed_round[5], 0u);
}

// --- Push coupling (Section 3) -----------------------------------------------

TEST(PushCoupling, CompletesAndDeterministic) {
  const auto g = graph::hypercube(6);
  auto a_eng = rng::derive_stream(79, 0);
  auto b_eng = rng::derive_stream(79, 0);
  const auto a = core::run_push_coupling(g, 0, a_eng);
  const auto b = core::run_push_coupling(g, 0, b_eng);
  ASSERT_TRUE(a.completed);
  EXPECT_EQ(a.round_push, b.round_push);
  EXPECT_EQ(a.time_push_a, b.time_push_a);
}

TEST(PushCoupling, AsyncDominatedInExpectationPerNode) {
  // Section 3: E[t_v] <= E[r_v] under the coupling. Average both over many
  // runs and require the async mean to not exceed the sync mean beyond
  // noise, node by node (we check the aggregate and the worst node).
  const auto g = graph::hypercube(6);
  const graph::NodeId n = g.num_nodes();
  std::vector<double> sum_r(n, 0.0);
  std::vector<double> sum_t(n, 0.0);
  constexpr int kRuns = 300;
  for (int i = 0; i < kRuns; ++i) {
    auto eng = rng::derive_stream(80, static_cast<std::uint64_t>(i));
    const auto run = core::run_push_coupling(g, 0, eng);
    ASSERT_TRUE(run.completed);
    for (graph::NodeId v = 0; v < n; ++v) {
      sum_r[v] += static_cast<double>(run.round_push[v]);
      sum_t[v] += run.time_push_a[v];
    }
  }
  double worst_excess = 0.0;
  for (graph::NodeId v = 0; v < n; ++v) {
    worst_excess = std::max(worst_excess, (sum_t[v] - sum_r[v]) / kRuns);
  }
  // E[t_v] - E[r_v] <= 0 up to Monte-Carlo noise (~3 * sigma/sqrt(runs)).
  EXPECT_LE(worst_excess, 0.5);
}

TEST(PushCoupling, SyncMarginalMatchesEngine) {
  const auto g = graph::hypercube(6);
  constexpr int kTrials = 400;
  std::vector<double> coupled;
  for (int i = 0; i < kTrials; ++i) {
    auto eng = rng::derive_stream(81, static_cast<std::uint64_t>(i));
    coupled.push_back(static_cast<double>(core::run_push_coupling(g, 0, eng).push_rounds()));
  }
  sim::TrialConfig config;
  config.trials = kTrials;
  config.seed = 82;
  const auto engine = sim::measure_sync(g, 0, core::Mode::kPush, config);
  const double ks = dist::ks_statistic(dist::Ecdf(coupled), dist::Ecdf(engine.samples()));
  EXPECT_LT(ks, 0.14);
}

TEST(PushCoupling, AsyncMarginalMatchesEngine) {
  const auto g = graph::hypercube(6);
  constexpr int kTrials = 400;
  std::vector<double> coupled;
  for (int i = 0; i < kTrials; ++i) {
    auto eng = rng::derive_stream(83, static_cast<std::uint64_t>(i));
    coupled.push_back(core::run_push_coupling(g, 0, eng).push_a_time());
  }
  sim::TrialConfig config;
  config.trials = kTrials;
  config.seed = 84;
  const auto engine = sim::measure_async(g, 0, core::Mode::kPush, config);
  const double ks = dist::ks_statistic(dist::Ecdf(coupled), dist::Ecdf(engine.samples()));
  EXPECT_LT(ks, 0.14);
}

// --- Discretized async (ablation) ----------------------------------------------

TEST(Discretized, CompletesAndQuantizesTimes) {
  const auto g = graph::hypercube(6);
  auto eng = rng::derive_stream(85, 0);
  core::DiscretizedOptions opts;
  opts.dt = 0.25;
  const auto r = core::run_async_discretized(g, 0, eng, opts);
  ASSERT_TRUE(r.completed);
  for (double t : r.informed_time) {
    const double q = t / 0.25;
    EXPECT_NEAR(q, std::round(q), 1e-9) << t;  // multiples of dt
  }
}

TEST(Discretized, ConvergesToExactAsDtShrinks) {
  const auto g = graph::complete(64);
  constexpr int kTrials = 400;
  auto sample_disc = [&](double dt) {
    std::vector<double> out;
    for (int i = 0; i < kTrials; ++i) {
      auto eng = rng::derive_stream(86, static_cast<std::uint64_t>(i));
      core::DiscretizedOptions opts;
      opts.dt = dt;
      out.push_back(core::run_async_discretized(g, 0, eng, opts).time);
    }
    return out;
  };
  sim::TrialConfig config;
  config.trials = kTrials;
  config.seed = 87;
  const auto exact = sim::measure_async(g, 0, core::Mode::kPushPull, config);
  const dist::Ecdf exact_ecdf(exact.samples());
  const double ks_coarse = dist::ks_statistic(dist::Ecdf(sample_disc(2.0)), exact_ecdf);
  const double ks_fine = dist::ks_statistic(dist::Ecdf(sample_disc(0.05)), exact_ecdf);
  EXPECT_LT(ks_fine, 0.14);            // indistinguishable at fine dt
  EXPECT_GT(ks_coarse, 2.0 * ks_fine);  // visibly biased at coarse dt
}

TEST(Discretized, CoarseSlicesBiasSlow) {
  // Evaluating contacts against the slice-start state drops intra-slice
  // relay chains, so coarse dt systematically overestimates spreading time
  // (quantified by bench_e12). Check the direction of the bias on the
  // hypercube, where chains matter most.
  const auto g = graph::hypercube(7);
  constexpr int kTrials = 150;
  double coarse = 0.0;
  double fine = 0.0;
  for (int i = 0; i < kTrials; ++i) {
    auto e1 = rng::derive_stream(88, static_cast<std::uint64_t>(i));
    auto e2 = rng::derive_stream(89, static_cast<std::uint64_t>(i));
    coarse += core::run_async_discretized(g, 0, e1, {.dt = 2.0}).time;
    fine += core::run_async_discretized(g, 0, e2, {.dt = 0.05}).time;
  }
  EXPECT_GT(coarse / kTrials, 1.5 * (fine / kTrials));
}
